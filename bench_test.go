// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations for the design choices DESIGN.md calls out. Each benchmark
// measures the cost of computing its experiment from a shared simulated
// campaign and reports the experiment's headline number as a custom metric,
// so `go test -bench=. -benchmem` doubles as the reproduction harness.
package instability_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"instability"
	"instability/internal/analysis"
	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/core"
	"instability/internal/damping"
	"instability/internal/detect"
	"instability/internal/events"
	"instability/internal/exchange"
	"instability/internal/netaddr"
	"instability/internal/report"
	"instability/internal/rib"
	"instability/internal/router"
	"instability/internal/session"
	"instability/internal/store"
	"instability/internal/synchrony"
	"instability/internal/topology"
	"instability/internal/workload"
)

// campaign is the shared simulated measurement campaign: seven simulated
// weeks with a pathological flood, the infrastructure upgrade, and a
// collector outage.
type campaign struct {
	pipe     *instability.Pipeline
	gen      *workload.Generator
	cfg      workload.Config
	floodDay core.Date
	outages  map[core.Date]bool
}

var (
	campOnce sync.Once
	camp     *campaign
)

func getCampaign(b *testing.B) *campaign {
	b.Helper()
	campOnce.Do(func() {
		cfg := workload.DefaultConfig()
		cfg.Days = 49
		cfg.Incidents = []workload.Incident{
			{Kind: workload.PathologicalFlood, Day: 12, Magnitude: 1},
			{Kind: workload.InfrastructureUpgrade, Day: 25, Days: 5, Magnitude: 1},
			{Kind: workload.CollectorOutage, Day: 40, Magnitude: 1},
		}
		p := instability.NewPipeline()
		_, gen, err := instability.RunScenario(cfg, p)
		if err != nil {
			panic(err)
		}
		start := core.DateOf(cfg.Start)
		camp = &campaign{
			pipe: p, gen: gen, cfg: cfg,
			floodDay: start + 12,
			outages:  map[core.Date]bool{start + 40: true},
		}
	})
	return camp
}

func BenchmarkTable1(b *testing.B) {
	c := getCampaign(b)
	var res report.Table1Result
	for i := 0; i < b.N; i++ {
		res = report.Table1(c.pipe.Acc, c.floodDay)
	}
	maxWd := 0
	for _, row := range res.Rows {
		if row.Withdraw > maxWd {
			maxWd = row.Withdraw
		}
	}
	b.ReportMetric(float64(maxWd), "flood_withdrawals")
	if maxWd < 10000 {
		b.Fatalf("flood provider withdrawals %d, want the ISP-I signature", maxWd)
	}
}

func BenchmarkFig1(b *testing.B) {
	c := getCampaign(b)
	var res report.Fig1Result
	for i := 0; i < b.N; i++ {
		res = report.Fig1(c.gen.Topology())
	}
	if len(res.Exchanges) != 5 {
		b.Fatal("expected 5 exchange points")
	}
	b.ReportMetric(float64(res.Peers[0]), "maeeast_peers")
}

func BenchmarkFig2(b *testing.B) {
	c := getCampaign(b)
	var res report.Fig2Result
	for i := 0; i < b.N; i++ {
		res = report.Fig2(c.pipe.Acc)
	}
	var dup, diff int
	for _, m := range res.Months {
		cc := res.Counts[m]
		dup += cc[core.AADup] + cc[core.WADup]
		diff += cc[core.AADiff] + cc[core.WADiff]
	}
	if dup <= diff {
		b.Fatalf("duplicates %d should dominate diffs %d", dup, diff)
	}
	b.ReportMetric(float64(dup)/float64(diff), "dup_over_diff")
}

func BenchmarkFig3(b *testing.B) {
	c := getCampaign(b)
	var res report.Fig3Result
	for i := 0; i < b.N; i++ {
		res = report.Fig3(c.pipe.Acc, c.outages)
	}
	if len(res.Grid) != c.cfg.Days {
		b.Fatalf("grid rows %d", len(res.Grid))
	}
	b.ReportMetric(res.TrendSlope, "log_trend_per_day")
}

func BenchmarkFig4(b *testing.B) {
	c := getCampaign(b)
	week := core.DateOf(c.cfg.Start) + 15
	for week.Weekday() != time.Saturday {
		week++
	}
	var res report.Fig4Result
	for i := 0; i < b.N; i++ {
		res = report.Fig4(c.pipe.Acc, week)
	}
	if len(res.Series) != 7*core.TenMinBins {
		b.Fatal("bad week length")
	}
}

func BenchmarkFig5(b *testing.B) {
	c := getCampaign(b)
	var res report.Fig5Result
	for i := 0; i < b.N; i++ {
		res = report.Fig5(c.pipe.Acc, 7)
	}
	if !report.HasPeriod(res.FFTPeaks, 24, 0.2) && !report.HasPeriod(res.Significant, 24, 0.2) {
		b.Fatalf("24h cycle missing: %+v", res.FFTPeaks)
	}
	// The weekly cycle: 168h within 25%.
	weekly := report.HasPeriod(res.FFTPeaks, 168, 0.25) || report.HasPeriod(res.Significant, 168, 0.25)
	b.ReportMetric(boolMetric(weekly), "weekly_cycle_found")
	b.ReportMetric(boolMetric(true), "daily_cycle_found")
}

func BenchmarkFig6(b *testing.B) {
	c := getCampaign(b)
	var res report.Fig6Result
	for i := 0; i < b.N; i++ {
		res = report.Fig6(c.pipe.Acc)
	}
	worst := 0.0
	for _, r := range res.Correlation {
		if r > worst {
			worst = r
		}
	}
	if worst > 0.7 {
		b.Fatalf("update share too correlated with table share: %v", worst)
	}
	b.ReportMetric(worst, "max_size_correlation")
}

func BenchmarkFig7(b *testing.B) {
	c := getCampaign(b)
	var res report.Fig7Result
	for i := 0; i < b.N; i++ {
		res = report.Fig7(c.pipe.Acc)
	}
	if res.MedianAtFifty[core.AADiff] < 0.8 {
		b.Fatalf("AADiff mass from small contributors %v, want >=0.8", res.MedianAtFifty[core.AADiff])
	}
	b.ReportMetric(res.MedianAtTen[core.AADiff], "aadiff_share_leq10")
}

func BenchmarkFig8(b *testing.B) {
	c := getCampaign(b)
	var res report.Fig8Result
	for i := 0; i < b.N; i++ {
		res = report.Fig8(c.pipe.Acc)
	}
	if res.ThirtyAndSixty[core.AADup] < 0.35 {
		b.Fatalf("AADup 30s+1m mass %v", res.ThirtyAndSixty[core.AADup])
	}
	b.ReportMetric(res.ThirtyAndSixty[core.AADup], "aadup_30s1m_share")
	b.ReportMetric(res.ThirtyAndSixty[core.WADup], "wadup_30s1m_share")
}

func BenchmarkFig9(b *testing.B) {
	c := getCampaign(b)
	var res report.Fig9Result
	for i := 0; i < b.N; i++ {
		res = report.Fig9(c.pipe.Acc, c.outages)
	}
	var stable []float64
	for _, d := range res.Days[1:] { // skip the initial-dump day
		stable = append(stable, d.StableFrac)
	}
	med := analysis.Quantile(stable, 0.5)
	if med < 0.7 {
		b.Fatalf("median stable fraction %v, paper reports >0.8", med)
	}
	b.ReportMetric(med, "median_stable_frac")
}

func BenchmarkFig10(b *testing.B) {
	c := getCampaign(b)
	var res report.Fig10Result
	for i := 0; i < b.N; i++ {
		res = report.Fig10(c.pipe.CensusByDay)
	}
	if res.GrowthPerDay <= 0 {
		b.Fatal("multihoming growth not positive")
	}
	if res.FinalShare < 0.25 {
		b.Fatalf("multihomed share %v, paper reports >25%%", res.FinalShare)
	}
	b.ReportMetric(res.GrowthPerDay, "multihomed_growth_per_day")
	b.ReportMetric(res.FinalShare, "final_multihomed_share")
}

// BenchmarkScenarioGeneration measures the end-to-end generate+classify
// pipeline throughput (records per op reported as a metric).
func BenchmarkScenarioGeneration(b *testing.B) {
	cfg := workload.SmallConfig()
	cfg.Days = 7
	b.ReportAllocs()
	var records int
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		p := instability.NewPipeline()
		stats, _, err := instability.RunScenario(cfg, p)
		if err != nil {
			b.Fatal(err)
		}
		records = stats.Records
	}
	b.ReportMetric(float64(records), "records")
}

// BenchmarkClassifierThroughput measures raw classification speed.
func BenchmarkClassifierThroughput(b *testing.B) {
	cfg := workload.SmallConfig()
	cfg.Days = 2
	g, err := workload.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var recs []collector.Record
	g.Run(func(r collector.Record) { recs = append(recs, r) }, nil)
	b.ResetTimer()
	b.ReportAllocs()
	cls := core.NewClassifier()
	for i := 0; i < b.N; i++ {
		cls.Classify(recs[i%len(recs)])
	}
}

// ----------------------------------------------------------- ablations

// BenchmarkAblationStatelessVsStateful quantifies the §4.2 vendor fix: the
// WWDup count at a route server before and after the stateful software
// update.
func BenchmarkAblationStatelessVsStateful(b *testing.B) {
	episode := func(stateless bool) int {
		sim := events.New(7)
		cls := core.NewClassifier()
		ww := 0
		pt := exchange.New(sim, exchange.Config{Name: "AADS", Sink: func(r collector.Record) {
			if cls.Classify(r).Class == core.WWDup {
				ww++
			}
		}})
		x := router.New(sim, router.Config{AS: 690, ID: 1, Session: session.Config{MRAI: time.Second, CompareLastSent: true}})
		y := router.New(sim, router.Config{AS: 701, ID: 2, Session: session.Config{MRAI: time.Second, Stateless: stateless, CompareLastSent: !stateless}})
		pt.AttachClient(x, 5*time.Millisecond)
		pt.AttachClient(y, 5*time.Millisecond)
		sim.RunFor(10 * time.Second)
		for i := 0; i < 20; i++ {
			prefix := netaddr.MustPrefix(netaddr.Addr(0xc02a0000+uint32(i)<<8), 24)
			x.Originate(prefix, bgp.OriginIGP)
			sim.RunFor(time.Minute)
			x.WithdrawOrigin(prefix)
			sim.RunFor(time.Minute)
		}
		return ww
	}
	var before, after int
	for i := 0; i < b.N; i++ {
		before = episode(true)
		after = episode(false)
	}
	if before <= after || before == 0 {
		b.Fatalf("stateless %d vs stateful %d", before, after)
	}
	b.ReportMetric(float64(before), "wwdup_stateless")
	b.ReportMetric(float64(after), "wwdup_stateful")
}

// BenchmarkAblationJitter quantifies Floyd-Jacobson: unjittered timers
// synchronize, jittered ones do not.
func BenchmarkAblationJitter(b *testing.B) {
	var unj, jit synchrony.Result
	for i := 0; i < b.N; i++ {
		cfg := synchrony.DefaultConfig()
		cfg.Steps = 500
		unj = synchrony.Run(cfg, rand.New(rand.NewSource(1)))
		cfg.JitterFrac = 0.25
		jit = synchrony.Run(cfg, rand.New(rand.NewSource(1)))
	}
	if unj.PhaseCoherence < 0.9 || jit.PhaseCoherence > 0.6 {
		b.Fatalf("coherence unjittered %v jittered %v", unj.PhaseCoherence, jit.PhaseCoherence)
	}
	b.ReportMetric(unj.PhaseCoherence, "coherence_unjittered")
	b.ReportMetric(jit.PhaseCoherence, "coherence_jittered")
}

// BenchmarkAblationDamping measures suppression effectiveness and the
// reachability delay it introduces.
func BenchmarkAblationDamping(b *testing.B) {
	run := func(withDamping bool) (suppressed int, delay time.Duration) {
		sim := events.New(11)
		cfg := router.Config{AS: 200, ID: 2, Session: session.Config{MRAI: 0}}
		if withDamping {
			d := damping.DefaultConfig()
			cfg.Damping = &d
		}
		r := router.New(sim, cfg)
		feeder := router.New(sim, router.Config{AS: 100, ID: 1, Session: session.Config{MRAI: 0}})
		router.Connect(sim, feeder, r, time.Millisecond)
		sim.RunFor(5 * time.Second)
		prefix := netaddr.MustParsePrefix("192.42.113.0/24")
		for i := 0; i < 10; i++ {
			feeder.Originate(prefix, bgp.OriginIGP)
			sim.RunFor(30 * time.Second)
			feeder.WithdrawOrigin(prefix)
			sim.RunFor(30 * time.Second)
		}
		feeder.Originate(prefix, bgp.OriginIGP)
		for delay < 3*time.Hour {
			sim.RunFor(time.Minute)
			delay += time.Minute
			if _, _, ok := r.RIB().Best(prefix); ok {
				break
			}
		}
		return r.Metrics().DampedUpdates, delay
	}
	var supOn int
	var delayOn, delayOff time.Duration
	for i := 0; i < b.N; i++ {
		_, delayOff = run(false)
		supOn, delayOn = run(true)
	}
	if supOn == 0 || delayOn <= delayOff {
		b.Fatalf("damping ineffective: suppressed %d, delay %v vs %v", supOn, delayOn, delayOff)
	}
	b.ReportMetric(float64(supOn), "suppressed_updates")
	b.ReportMetric(delayOn.Minutes(), "reuse_delay_minutes")
}

// BenchmarkAblationCacheVsFullTable compares the two router architectures
// under identical update load.
func BenchmarkAblationCacheVsFullTable(b *testing.B) {
	run := func(arch router.Architecture) (invalidations int) {
		sim := events.New(9)
		victim := router.New(sim, router.Config{AS: 200, ID: 2, Arch: arch, Session: session.Config{MRAI: 0}})
		feeder := router.New(sim, router.Config{AS: 100, ID: 1, Session: session.Config{MRAI: 0}})
		router.Connect(sim, feeder, victim, time.Millisecond)
		sim.RunFor(5 * time.Second)
		for i := 0; i < 30; i++ {
			feeder.Originate(netaddr.MustParsePrefix("35.0.0.0/8"), bgp.OriginIGP)
			sim.RunFor(time.Second)
			feeder.WithdrawOrigin(netaddr.MustParsePrefix("35.0.0.0/8"))
			sim.RunFor(time.Second)
		}
		return victim.Metrics().CacheInvalidations
	}
	var cache, full int
	for i := 0; i < b.N; i++ {
		cache = run(router.RouteCache)
		full = run(router.FullTable)
	}
	if cache == 0 || full != 0 {
		b.Fatalf("cache %d full %d", cache, full)
	}
	b.ReportMetric(float64(cache), "cache_invalidations")
}

// BenchmarkAblationAggregation quantifies how CIDR aggregation shrinks the
// globally visible route set (the §4 argument for why poor aggregation
// inflates instability).
func BenchmarkAblationAggregation(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	topo := topology.Generate(topology.Config{
		Backbones: 6, Regionals: 10, Customers: 200, PrefixesPerCustomer: 8,
	}, rng)
	var raw, aggregated int
	for i := 0; i < b.N; i++ {
		raw, aggregated = 0, 0
		for _, asn := range topo.Order {
			a := topo.ASes[asn]
			raw += len(a.Prefixes)
			aggregated += len(rib.Aggregate(a.Prefixes))
		}
	}
	if aggregated >= raw {
		b.Fatalf("aggregation did not shrink the table: %d -> %d", raw, aggregated)
	}
	b.ReportMetric(float64(raw), "raw_prefixes")
	b.ReportMetric(float64(aggregated), "aggregated_prefixes")
}

// BenchmarkAblationRouteServer reports the session-count complexity claim.
func BenchmarkAblationRouteServer(b *testing.B) {
	var mesh, rs int
	for i := 0; i < b.N; i++ {
		mesh = exchange.BilateralSessions(60)
		rs = exchange.RouteServerSessions(60)
	}
	if mesh <= rs {
		b.Fatal("mesh should exceed route server sessions")
	}
	b.ReportMetric(float64(mesh), "mesh_sessions")
	b.ReportMetric(float64(rs), "routeserver_sessions")
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkRIBDefaultFreeTable exercises RIB operations at the paper's
// default-free table scale (42,000 prefixes).
func BenchmarkRIBDefaultFreeTable(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	table := rib.New(6000)
	peer := rib.PeerID{AS: 690, ID: 1}
	attrs := bgp.Attrs{Origin: bgp.OriginIGP, Path: bgp.PathFromASNs(690, 237), NextHop: 1}
	prefixes := make([]netaddr.Prefix, 42000)
	for i := range prefixes {
		prefixes[i] = netaddr.MustPrefix(netaddr.Addr(rng.Uint32()), 8+rng.Intn(17))
		table.Update(peer, prefixes[i], attrs)
	}
	alt := attrs
	alt.Path = bgp.PathFromASNs(701, 237)
	altPeer := rib.PeerID{AS: 701, ID: 2}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := prefixes[i%len(prefixes)]
		table.Update(altPeer, p, alt)
		table.Withdraw(altPeer, p)
	}
	b.ReportMetric(float64(table.Len()), "table_prefixes")
}

// ----------------------------------------------------------- irtlstore

var (
	storeRecsOnce sync.Once
	storeRecs     []collector.Record
)

// getStoreCampaign synthesizes one week of updates shared by the store
// benchmarks.
func getStoreCampaign(b *testing.B) []collector.Record {
	b.Helper()
	storeRecsOnce.Do(func() {
		cfg := workload.SmallConfig()
		cfg.Days = 7
		g, err := workload.New(cfg)
		if err != nil {
			panic(err)
		}
		g.Run(func(r collector.Record) { storeRecs = append(storeRecs, r) }, nil)
	})
	return storeRecs
}

// BenchmarkStoreIngest measures end-to-end ingest throughput: WAL append,
// memtable build, seal to compressed indexed segments. Each op ingests the
// whole week-long campaign into a fresh store.
func BenchmarkStoreIngest(b *testing.B) {
	recs := getStoreCampaign(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		s, err := store.Open(dir, store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		w := s.Writer()
		for _, rec := range recs {
			if err := w.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(recs)), "records_per_op")
}

// BenchmarkStoreQuery compares a full scan against an indexed query for a
// single origin AS over the same sealed multi-segment store. The pushdown
// sub-benchmark must decompress strictly fewer blocks — that is the point
// of the per-segment indexes — and the reported blocks_decompressed metric
// makes the difference visible in the bench output.
func BenchmarkStoreQuery(b *testing.B) {
	recs := getStoreCampaign(b)
	s, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	w := s.Writer()
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Seal(); err != nil {
		b.Fatal(err)
	}
	// Query the busiest origin so the pushdown case does nontrivial work.
	byOrigin := make(map[bgp.ASN]int)
	for _, rec := range recs {
		if rec.Type == collector.Announce {
			if o, ok := rec.Attrs.Path.Origin(); ok {
				byOrigin[o]++
			}
		}
	}
	var origin bgp.ASN
	for o, n := range byOrigin {
		if n > byOrigin[origin] {
			origin = o
		}
	}

	run := func(b *testing.B, open func() (*store.Reader, error)) store.ScanStats {
		b.Helper()
		b.ReportAllocs()
		var st store.ScanStats
		var matched int
		for i := 0; i < b.N; i++ {
			r, err := open()
			if err != nil {
				b.Fatal(err)
			}
			matched = 0
			for {
				if _, err := r.Next(); err != nil {
					break
				}
				matched++
			}
			st = r.Stats()
			r.Close()
		}
		if matched == 0 {
			b.Fatal("query matched nothing")
		}
		b.ReportMetric(float64(st.BlocksScanned), "blocks_decompressed")
		b.ReportMetric(float64(matched), "records_matched")
		b.ReportMetric(float64(matched)*float64(b.N)/b.Elapsed().Seconds(), "records_per_sec")
		return st
	}

	var full, pushed, par store.ScanStats
	b.Run("FullScan", func(b *testing.B) {
		full = run(b, func() (*store.Reader, error) { return s.Query(store.Query{}) })
	})
	b.Run("OriginPushdown", func(b *testing.B) {
		pushed = run(b, func() (*store.Reader, error) {
			return s.Query(store.Query{OriginAS: []bgp.ASN{origin}})
		})
	})
	// The concurrent scan path: same full-scan work fanned across a worker
	// pool, so records_per_sec here vs FullScan is the scan speedup.
	b.Run("ParallelScan", func(b *testing.B) {
		par = run(b, func() (*store.Reader, error) { return s.QueryParallel(store.Query{}, 8) })
	})
	if full.BlocksScanned > 0 && pushed.BlocksScanned >= full.BlocksScanned {
		b.Fatalf("pushdown decompressed %d blocks, full scan %d — index not helping",
			pushed.BlocksScanned, full.BlocksScanned)
	}
	if par.BlocksScanned != full.BlocksScanned || par.RecordsMatched != full.RecordsMatched {
		b.Fatalf("parallel scan did different work: %+v vs %+v", par, full)
	}
}

// feedRecords synthesizes the two-day record set shared by the Feed
// benchmarks. Records are copied out of the generator's reused day buffer.
func feedRecords(b *testing.B) []collector.Record {
	b.Helper()
	cfg := workload.SmallConfig()
	cfg.Days = 2
	g, err := workload.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var recs []collector.Record
	g.Run(func(r collector.Record) { recs = append(recs, r) }, nil)
	return recs
}

// BenchmarkPipelineFeed measures the full per-record analysis cost
// (classify + accumulate + RIB mirror).
func BenchmarkPipelineFeed(b *testing.B) {
	recs := feedRecords(b)
	p := instability.NewPipeline()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Feed(recs[i%len(recs)])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records_per_sec")
}

// BenchmarkPipelineFeedDetect is BenchmarkPipelineFeed with the anomaly
// detector attached to the Events hook — the delta between the two is the
// marginal per-record cost of detection on the classify hot path.
func BenchmarkPipelineFeedDetect(b *testing.B) {
	recs := feedRecords(b)
	p := instability.NewPipeline()
	det := detect.New(detect.Config{})
	p.Events = det.Add
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Feed(recs[i%len(recs)])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records_per_sec")
}

// BenchmarkPipelineFeedParallel measures the sharded pipeline's feed
// throughput at 1, 2, 4, and 8 shards. records_per_sec is the comparable
// number across shard counts (and against BenchmarkPipelineFeed): on a
// multi-core machine it scales with shards until the feeder saturates.
func BenchmarkPipelineFeedParallel(b *testing.B) {
	recs := feedRecords(b)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			pp := instability.NewParallelPipeline(instability.ParallelConfig{Shards: shards})
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pp.Feed(recs[i%len(recs)])
			}
			pp.Sync() // include draining the shard queues in the timing
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records_per_sec")
			pp.Close()
		})
	}
}
