module instability

go 1.22
