package instability_test

import (
	"fmt"
	"time"

	"instability"
	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/netaddr"
)

// Example classifies a tiny hand-built update stream: a first announcement,
// an exact duplicate (AADup), a withdrawal, an identical re-announcement
// (WADup), and a spurious withdrawal from a peer that never announced the
// prefix (WWDup) — the paper's §4 taxonomy in five records.
func Example() {
	t0 := time.Date(1996, 8, 1, 12, 0, 0, 0, time.UTC)
	peerX := netaddr.MustParseAddr("198.32.186.1")
	peerY := netaddr.MustParseAddr("198.32.186.7")
	prefix := netaddr.MustParsePrefix("192.42.113.0/24")
	attrs := bgp.Attrs{
		Origin:  bgp.OriginIGP,
		Path:    bgp.PathFromASNs(690, 237),
		NextHop: peerX,
	}

	stream := []instability.Record{
		{Time: t0, Type: collector.Announce, PeerAS: 690, PeerAddr: peerX, Prefix: prefix, Attrs: attrs},
		{Time: t0.Add(30 * time.Second), Type: collector.Announce, PeerAS: 690, PeerAddr: peerX, Prefix: prefix, Attrs: attrs},
		{Time: t0.Add(60 * time.Second), Type: collector.Withdraw, PeerAS: 690, PeerAddr: peerX, Prefix: prefix},
		{Time: t0.Add(90 * time.Second), Type: collector.Announce, PeerAS: 690, PeerAddr: peerX, Prefix: prefix, Attrs: attrs},
		{Time: t0.Add(91 * time.Second), Type: collector.Withdraw, PeerAS: 701, PeerAddr: peerY, Prefix: prefix},
	}

	p := instability.NewPipeline()
	for _, rec := range stream {
		ev := p.Feed(rec)
		fmt.Printf("%-4s from %s -> %s\n", rec.Type, rec.PeerAS, ev.Class)
	}
	// Output:
	// A    from AS690 -> Other
	// A    from AS690 -> AADup
	// W    from AS690 -> Other
	// A    from AS690 -> WADup
	// W    from AS701 -> WWDup
}
