// Store demonstrates the irtlstore as the campaign archive it is meant to
// be: a month of synthetic exchange traffic is ingested into a
// time-partitioned store, and a question the paper's workflow asks
// constantly — "give me the pathological withdrawals from this peer in this
// week" — is answered through the query API. The scan statistics show the
// per-segment indexes doing their job: most of the store is never
// decompressed.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/core"
	"instability/internal/store"
	"instability/internal/workload"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "irtlstore-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A small four-week campaign with a pathological flood in week two —
	// the kind of event the paper traces back to a single misbehaving peer.
	cfg := workload.SmallConfig()
	cfg.Days = 28
	cfg.Incidents = []workload.Incident{
		{Kind: workload.PathologicalFlood, Day: 9, Magnitude: 1},
	}
	g, err := workload.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Ingest the live stream straight into the store, and classify it on
	// the way through to find the WWDup-heaviest (peer, week) — the
	// question we will then put to the store's indexes.
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	w := s.Writer()
	cls := core.NewClassifier()
	type peerWeek struct {
		peer bgp.ASN
		week time.Time
	}
	wwdups := make(map[peerWeek]int)
	n := 0
	g.Run(func(rec collector.Record) {
		if err := w.Append(rec); err != nil {
			log.Fatal(err)
		}
		n++
		if cls.Classify(rec).Class == core.WWDup {
			week := rec.Time.Truncate(7 * 24 * time.Hour)
			wwdups[peerWeek{rec.PeerAS, week}]++
		}
	}, nil)
	if err := w.Seal(); err != nil {
		log.Fatal(err)
	}
	st := s.Stats()
	fmt.Printf("ingested %d records into %s\n", n, dir)
	fmt.Printf("store: %d daily segments, %d compressed blocks\n\n", st.Segments, st.Blocks)

	var worst peerWeek
	for pw, c := range wwdups {
		if c > wwdups[worst] {
			worst = pw
		}
	}
	fmt.Printf("WWDup-heaviest slice: peer AS%d, week of %s (%d WWDups seen live)\n",
		worst.peer, worst.week.Format("2006-01-02"), wwdups[worst])

	// Now answer it from the store: all withdrawals from that peer in that
	// week. The time range prunes segments, the peer posting lists prune
	// blocks, and only the surviving blocks are decompressed.
	q := store.Query{
		From:   worst.week,
		To:     worst.week.AddDate(0, 0, 7),
		PeerAS: []bgp.ASN{worst.peer},
		Types:  []collector.RecType{collector.Withdraw},
	}
	r, err := s.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	matched := 0
	var first, last collector.Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if matched == 0 {
			first = rec
		}
		last = rec
		matched++
	}
	scan := r.Stats()
	fmt.Printf("\nquery: withdrawals from AS%d in [%s, %s)\n",
		worst.peer, q.From.Format("2006-01-02"), q.To.Format("2006-01-02"))
	fmt.Printf("  %d records matched\n", matched)
	if matched > 0 {
		fmt.Printf("  first: %v\n  last:  %v\n", first, last)
	}
	fmt.Printf("  pushdown: scanned %d of %d segments, decompressed %d of %d blocks\n",
		scan.SegmentsScanned, scan.SegmentsTotal, scan.BlocksScanned, scan.BlocksTotal)
}
