// Spectral reproduces the paper's §5.1 time-series methodology on a
// generated six-week campaign: log-detrend the hourly instability series,
// estimate the spectrum by FFT correlogram and Burg maximum entropy, pick
// out the significant peaks against a white-noise 99% level, and decompose
// with singular-spectrum analysis — then print the correlogram so the 24-hour
// and weekly cycles are visible in the terminal.
package main

import (
	"fmt"
	"math/rand"
	"strings"

	"instability"
	"instability/internal/analysis"
	"instability/internal/workload"
)

func main() {
	cfg := workload.SmallConfig()
	cfg.Days = 42
	p := instability.NewPipeline()
	if _, _, err := instability.RunScenario(cfg, p); err != nil {
		panic(err)
	}
	_, hourly := p.Acc.HourlySeries()
	detrended, slope := analysis.LogDetrend(hourly)
	fmt.Printf("six simulated weeks, %d hourly samples, log-linear trend %+.4f/hour\n\n",
		len(hourly), slope)

	// Autocorrelation out to two weeks, printed like the paper's Figure 5a
	// companion plot.
	acf := analysis.Autocorrelation(detrended, 24*8)
	fmt.Println("autocorrelation (each row one lag-step of 6h):")
	for lag := 0; lag < len(acf); lag += 6 {
		bar := ""
		v := acf[lag]
		width := int(v * 30)
		if width > 0 {
			bar = strings.Repeat("+", width)
		} else {
			bar = strings.Repeat("-", -width)
		}
		marker := ""
		switch lag {
		case 24:
			marker = "  <- 24h"
		case 168:
			marker = "  <- 7d"
		}
		fmt.Printf("%4dh %+6.2f %s%s\n", lag, v, bar, marker)
	}

	freqs, power := analysis.CorrelogramFFT(detrended, 24*14)
	fmt.Println("\nFFT correlogram peaks (period in hours):")
	for _, pk := range analysis.TopPeaks(freqs, power, 5) {
		fmt.Printf("  %.1fh (power %.3f)\n", analysis.PeriodOf(pk.Freq), pk.Power)
	}

	mf, mp := analysis.MEMSpectrum(detrended, 72, 1024)
	fmt.Println("Burg maximum-entropy peaks:")
	for _, pk := range analysis.TopPeaks(mf, mp, 5) {
		fmt.Printf("  %.1fh (power %.3f)\n", analysis.PeriodOf(pk.Freq), pk.Power)
	}

	rng := rand.New(rand.NewSource(7))
	fmt.Println("peaks above the 99% white-noise level:")
	for _, pk := range analysis.SignificantPeaks(detrended, 5, 30, 0.99, rng) {
		fmt.Printf("  %.1fh\n", analysis.PeriodOf(pk.Freq))
	}

	fmt.Println("singular-spectrum components:")
	for i, c := range analysis.SSA(detrended, 24*8, 5) {
		fmt.Printf("  %d: %4.1f%% of variance @ %.1fh\n", i+1, c.VarianceShare*100, c.Period)
	}
}
