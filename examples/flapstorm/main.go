// Flapstorm reproduces §3's route flap storm mechanism with live simulated
// routers: a weak route-caching hub carries routes between a flapping feeder
// and an innocent bystander. The update load starves the hub's keepalives,
// the bystander declares it dead, withdraws its routes, and the session churn
// feeds back — exactly the oscillation that took down wide-area backbones.
package main

import (
	"fmt"
	"time"

	"instability/internal/bgp"
	"instability/internal/events"
	"instability/internal/netaddr"
	"instability/internal/router"
	"instability/internal/session"
)

func main() {
	sim := events.New(42)

	hub := router.New(sim, router.Config{
		AS: 200, ID: 2, Arch: router.RouteCache,
		CPU: router.CPUModel{
			PerUpdate:    8 * time.Millisecond, // a light 68000-class CPU
			PerCacheMiss: time.Millisecond,
			CrashBacklog: 45 * time.Second,
			RebootTime:   2 * time.Minute,
		},
		Session: session.Config{MRAI: 0, HoldTime: 30 * time.Second},
	})
	feeder := router.New(sim, router.Config{
		AS: 100, ID: 1, Session: session.Config{MRAI: 0, Stateless: true},
	})
	bystander := router.New(sim, router.Config{
		AS: 300, ID: 3, Session: session.Config{MRAI: 0, HoldTime: 30 * time.Second},
	})

	router.Connect(sim, feeder, hub, time.Millisecond)
	hb := router.Connect(sim, hub, bystander, time.Millisecond)
	sim.RunFor(5 * time.Second)
	fmt.Printf("sessions up: hub<->bystander established=%v\n", hb.Established())

	// The bystander's stable world: a few routes via the hub.
	for i := 0; i < 5; i++ {
		bystander.Originate(netaddr.MustPrefix(netaddr.Addr(0xc0000000+uint32(i)<<8), 24), bgp.OriginIGP)
	}
	sim.RunFor(5 * time.Second)

	fmt.Println("\nblasting 250 prefix changes/second through the hub (2x its capacity)...")
	var i int
	blaster := sim.Every(4*time.Millisecond, func() {
		p := netaddr.MustPrefix(netaddr.Addr(0x0a000000+uint32(i/2%2000)*256), 24)
		if i%2 == 0 {
			feeder.Originate(p, bgp.OriginIGP)
		} else {
			feeder.WithdrawOrigin(p)
		}
		i++
	})

	for minute := 1; minute <= 5; minute++ {
		sim.RunFor(time.Minute)
		fmt.Printf("t=%2dm hub backlog=%6.1fs crashed=%-5v bystander drops=%d hub cache invalidations=%d\n",
			minute, hub.Backlog().Seconds(), hub.Crashed(),
			bystander.Metrics().SessionDrops, hub.Metrics().CacheInvalidations)
	}
	blaster.Stop()

	fmt.Println("\nstorm subsides; waiting for recovery...")
	sim.RunFor(10 * time.Minute)
	fmt.Printf("recovered: hub<->bystander established=%v, hub crashes=%d, bystander session drops=%d\n",
		hb.Established(), hub.Metrics().Crashes, bystander.Metrics().SessionDrops)
}
