// Damping demonstrates the deployed countermeasure the paper discusses
// (§3): route flap damping holds down a persistently flapping prefix — and
// also shows its cost, delaying a legitimate announcement after the flapping
// stops.
package main

import (
	"fmt"
	"time"

	"instability/internal/bgp"
	"instability/internal/damping"
	"instability/internal/events"
	"instability/internal/netaddr"
	"instability/internal/router"
	"instability/internal/session"
)

func main() {
	sim := events.New(7)
	cfg := damping.DefaultConfig()
	fmt.Printf("damping: suppress at penalty %.0f, reuse below %.0f, half-life %v\n\n",
		cfg.SuppressThreshold, cfg.ReuseThreshold, cfg.HalfLife)

	protected := router.New(sim, router.Config{
		AS: 200, ID: 2, Damping: &cfg, Session: session.Config{MRAI: 0},
	})
	exposed := router.New(sim, router.Config{AS: 300, ID: 3, Session: session.Config{MRAI: 0}})
	flapper := router.New(sim, router.Config{AS: 100, ID: 1, Session: session.Config{MRAI: 0}})
	router.Connect(sim, flapper, protected, time.Millisecond)
	router.Connect(sim, flapper, exposed, time.Millisecond)
	sim.RunFor(5 * time.Second)

	prefix := netaddr.MustParsePrefix("192.42.113.0/24")
	fmt.Println("flapping", prefix, "every minute for 10 cycles...")
	for i := 0; i < 10; i++ {
		flapper.Originate(prefix, bgp.OriginIGP)
		sim.RunFor(30 * time.Second)
		flapper.WithdrawOrigin(prefix)
		sim.RunFor(30 * time.Second)
	}
	fmt.Printf("  damped router: %d updates suppressed, %d processed\n",
		protected.Metrics().DampedUpdates, protected.Metrics().UpdatesProcessed)
	fmt.Printf("  exposed router: 0 suppressed, %d processed\n",
		exposed.Metrics().UpdatesProcessed)

	fmt.Println("\nnetwork stabilizes; origin announces one final, legitimate route:")
	flapper.Originate(prefix, bgp.OriginIGP)
	sim.RunFor(time.Second)
	_, _, okProtected := protected.RIB().Best(prefix)
	_, _, okExposed := exposed.RIB().Best(prefix)
	fmt.Printf("  immediately: exposed has route=%v, damped has route=%v (held down)\n", okExposed, okProtected)

	// The suppressed route sits on the reuse list; once the penalty decays
	// below the reuse threshold the router installs it automatically.
	waited := time.Duration(0)
	for !okProtected && waited < 3*time.Hour {
		sim.RunFor(5 * time.Minute)
		waited += 5 * time.Minute
		_, _, okProtected = protected.RIB().Best(prefix)
	}
	fmt.Printf("  damped router accepted the route after ~%v of artificial unreachability\n", waited)
	fmt.Println("\ndamping suppressed the noise but delayed legitimate connectivity — the trade-off §3 describes.")
}
