// Quickstart: generate one simulated week of exchange-point traffic, run it
// through the classifier pipeline, and print the taxonomy breakdown and the
// headline claims of the paper in miniature.
package main

import (
	"fmt"

	"instability"
	"instability/internal/core"
	"instability/internal/report"
	"instability/internal/workload"
)

func main() {
	cfg := workload.SmallConfig()
	cfg.Days = 7

	p := instability.NewPipeline()
	stats, gen, err := instability.RunScenario(cfg, p)
	if err != nil {
		panic(err)
	}

	fmt.Printf("simulated %d days at %s: %d routes, %d update records\n\n",
		stats.Days, cfg.Exchange, gen.Routes(), stats.Records)

	tot := p.Acc.TotalCounts()
	fmt.Println("taxonomy breakdown (the paper's §4 classes):")
	all := 0
	for _, v := range tot {
		all += v
	}
	for _, c := range core.Classes() {
		fmt.Printf("  %-7s %9s  (%.1f%%)\n", c, report.FormatCount(tot[c]), 100*float64(tot[c])/float64(all))
	}

	instab := tot[core.AADiff] + tot[core.WADiff] + tot[core.WADup]
	path := tot[core.AADup] + tot[core.WWDup]
	fmt.Printf("\ninstability %s vs pathological %s — redundant updates dominate, as observed\n",
		report.FormatCount(instab), report.FormatCount(path))

	census := p.Table.TakeCensus()
	fmt.Printf("routing table: %d prefixes, %d multihomed (%.0f%%)\n",
		census.Prefixes, census.Multihomed, census.MultihomedShare()*100)
}
