// Exchangepoint builds a live miniature of the paper's measurement setup: a
// route server at an exchange with stateful and stateless client providers,
// logs every BGP update the way the Routing Arbiter collectors did, and
// classifies the log — showing WWDups appearing from the stateless vendor
// and vanishing after the "software upgrade" (the fix §4.2 reports).
package main

import (
	"fmt"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/core"
	"instability/internal/events"
	"instability/internal/exchange"
	"instability/internal/netaddr"
	"instability/internal/router"
	"instability/internal/session"
)

// episode runs one flap campaign against an exchange point whose second
// provider uses the given session profile, and returns classified counts.
func episode(stateless bool) [core.NumClasses]int {
	sim := events.New(1996)
	cls := core.NewClassifier()
	var counts [core.NumClasses]int
	pt := exchange.New(sim, exchange.Config{
		Name: "Mae-East",
		Sink: func(r collector.Record) { counts[cls.Classify(r).Class]++ },
	})

	// ISP-X originates and flaps the prefix; ISP-Y only hears it via the
	// route server.
	ispX := router.New(sim, router.Config{
		AS: 690, ID: 1,
		Session: session.Config{MRAI: time.Second, CompareLastSent: true},
	})
	ispY := router.New(sim, router.Config{
		AS: 701, ID: 2,
		Session: session.Config{MRAI: time.Second, Stateless: stateless, CompareLastSent: !stateless},
	})
	pt.AttachClient(ispX, 5*time.Millisecond)
	pt.AttachClient(ispY, 5*time.Millisecond)
	sim.RunFor(10 * time.Second)

	prefix := netaddr.MustParsePrefix("192.42.113.0/24")
	for i := 0; i < 8; i++ {
		ispX.Originate(prefix, bgp.OriginIGP)
		sim.RunFor(time.Minute)
		ispX.WithdrawOrigin(prefix)
		sim.RunFor(time.Minute)
	}
	return counts
}

func main() {
	fmt.Println("route server at Mae-East, ISP-X flapping 192.42.113/24, ISP-Y relaying")
	fmt.Println()

	before := episode(true)
	after := episode(false)

	fmt.Println("class     stateless ISP-Y   after stateful upgrade")
	for _, c := range core.Classes() {
		fmt.Printf("%-8s  %15d   %22d\n", c, before[c], after[c])
	}
	fmt.Println()
	fmt.Printf("WWDups: %d -> %d after the vendor's software update — the drop §4.2 reports\n",
		before[core.WWDup], after[core.WWDup])
	fmt.Printf("peering sessions at a 60-provider exchange: full mesh %d vs route server %d\n",
		exchange.BilateralSessions(60), exchange.RouteServerSessions(60))
}
