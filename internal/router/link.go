package router

import (
	"time"

	"instability/internal/events"
	"instability/internal/session"
)

// Link is a point-to-point adjacency between two routers: the simulated
// transport plus the reconnection logic that brings the transport back up
// when both sides' FSMs retry (and neither router is crashed).
type Link struct {
	sim          *events.Sim
	pipe         *session.Pipe
	a, b         *Router
	sa, sb       *session.Peer
	wantA, wantB bool
	// admin marks the link administratively disabled (fault injection);
	// reconnection attempts are refused until re-enabled.
	admin bool
}

// Connect wires routers a and b with a simulated transport of the given
// one-way delay and starts both session endpoints. The returned Link owns
// reconnection; call Fail/Restore for fault injection.
func Connect(sim *events.Sim, a, b *Router, delay time.Duration) *Link {
	l := &Link{sim: sim, a: a, b: b, pipe: session.NewPipe(sim, delay)}
	// Either side dropping the session closes the shared transport, so the
	// reconnection logic starts from a clean pipe.
	l.sa = a.AddPeer(b.AS(), b.ID(), l.pipe.SendA, func() { l.want(true) }, l.pipe.Down)
	l.sb = b.AddPeer(a.AS(), a.ID(), l.pipe.SendB, func() { l.want(false) }, l.pipe.Down)
	l.pipe.Bind(l.sa, l.sb)
	a.OnCrash(l.pipe.Down)
	b.OnCrash(l.pipe.Down)
	l.sa.Start()
	l.sb.Start()
	l.tryUp()
	return l
}

// Pipe exposes the underlying transport.
func (l *Link) Pipe() *session.Pipe { return l.pipe }

// Sessions returns the two session endpoints (a-side, b-side).
func (l *Link) Sessions() (*session.Peer, *session.Peer) { return l.sa, l.sb }

func (l *Link) want(aSide bool) {
	if aSide {
		l.wantA = true
	} else {
		l.wantB = true
	}
	l.tryUp()
}

func (l *Link) tryUp() {
	if l.pipe.IsUp() || l.admin || l.a.Crashed() || l.b.Crashed() {
		return
	}
	l.wantA, l.wantB = false, false
	// Small connection setup delay keeps bring-up off the current instant.
	l.sim.Schedule(10*time.Millisecond, func() {
		if !l.pipe.IsUp() && !l.admin && !l.a.Crashed() && !l.b.Crashed() {
			l.pipe.Up()
		}
	})
}

// Fail takes the link down (a leased-line cut, CSU loss of carrier). The
// sessions drop; reconnection is blocked until Restore.
func (l *Link) Fail() {
	l.admin = true
	l.pipe.Down()
}

// Restore re-enables the link; the next retry (or an immediate attempt)
// brings it back up.
func (l *Link) Restore() {
	l.admin = false
	l.tryUp()
}

// Flap fails the link and restores it after the outage duration.
func (l *Link) Flap(outage time.Duration) {
	l.Fail()
	l.sim.Schedule(outage, l.Restore)
}

// Established reports whether both endpoints are in the Established state.
func (l *Link) Established() bool {
	return l.sa.State() == session.Established && l.sb.State() == session.Established
}
