package router

import (
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/damping"
	"instability/internal/events"
	"instability/internal/netaddr"
	"instability/internal/session"
)

func pfx(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

func newRouter(sim *events.Sim, as bgp.ASN, id uint32) *Router {
	return New(sim, Config{
		AS:      as,
		ID:      netaddr.Addr(id),
		Session: session.Config{MRAI: time.Second, CompareLastSent: true},
	})
}

// triangle builds three routers in a line A—B—C and settles the sessions.
func triangle(t *testing.T, sim *events.Sim) (a, b, c *Router, ab, bc *Link) {
	t.Helper()
	a = newRouter(sim, 100, 1)
	b = newRouter(sim, 200, 2)
	c = newRouter(sim, 300, 3)
	ab = Connect(sim, a, b, 5*time.Millisecond)
	bc = Connect(sim, b, c, 5*time.Millisecond)
	sim.RunFor(5 * time.Second)
	if !ab.Established() || !bc.Established() {
		t.Fatal("sessions did not establish")
	}
	return a, b, c, ab, bc
}

func TestOriginationPropagates(t *testing.T) {
	sim := events.New(1)
	a, b, c, _, _ := triangle(t, sim)
	a.Originate(pfx("35.0.0.0/8"), bgp.OriginIGP)
	sim.RunFor(10 * time.Second)

	// B learned it directly with path [100].
	attrs, _, ok := b.RIB().Best(pfx("35.0.0.0/8"))
	if !ok {
		t.Fatal("B missing route")
	}
	if attrs.Path.Key() != "100" {
		t.Fatalf("B path %v", attrs.Path)
	}
	// C learned it via B with path [200 100].
	attrs, _, ok = c.RIB().Best(pfx("35.0.0.0/8"))
	if !ok {
		t.Fatal("C missing route")
	}
	if attrs.Path.Key() != "200 100" {
		t.Fatalf("C path %v", attrs.Path)
	}
	if attrs.NextHop != b.ID() {
		t.Fatalf("C nexthop %v, want %v (next-hop-self)", attrs.NextHop, b.ID())
	}
	_ = a
}

func TestWithdrawPropagates(t *testing.T) {
	sim := events.New(2)
	a, _, c, _, _ := triangle(t, sim)
	a.Originate(pfx("35.0.0.0/8"), bgp.OriginIGP)
	sim.RunFor(10 * time.Second)
	a.WithdrawOrigin(pfx("35.0.0.0/8"))
	sim.RunFor(10 * time.Second)
	if _, _, ok := c.RIB().Best(pfx("35.0.0.0/8")); ok {
		t.Fatal("C still holds withdrawn route")
	}
}

func TestLoopPreventionByASPath(t *testing.T) {
	sim := events.New(3)
	// Ring: A—B, B—C, C—A. A's route must not loop back into A.
	a := newRouter(sim, 100, 1)
	b := newRouter(sim, 200, 2)
	c := newRouter(sim, 300, 3)
	links := []*Link{
		Connect(sim, a, b, 5*time.Millisecond),
		Connect(sim, b, c, 5*time.Millisecond),
		Connect(sim, c, a, 5*time.Millisecond),
	}
	sim.RunFor(10 * time.Second)
	a.Originate(pfx("35.0.0.0/8"), bgp.OriginIGP)
	sim.RunFor(time.Minute)
	// Everything converges; A's own RIB keeps its local route as best.
	attrs, peer, ok := a.RIB().Best(pfx("35.0.0.0/8"))
	if !ok || peer.AS != 100 {
		t.Fatalf("A best %v from %v", attrs, peer)
	}
	// No oscillation: no further route updates flow once converged.
	updatesSent := func() int {
		n := 0
		for _, l := range links {
			sa, sb := l.Sessions()
			n += sa.Stats().UpdatesSent + sb.Stats().UpdatesSent
		}
		return n
	}
	before := updatesSent()
	sim.RunFor(10 * time.Minute)
	if after := updatesSent(); after != before {
		t.Fatalf("network did not converge: %d route updates in 10 idle minutes", after-before)
	}
}

func TestSessionLossWithdrawsLearnedRoutes(t *testing.T) {
	sim := events.New(4)
	a, b, c, ab, _ := triangle(t, sim)
	a.Originate(pfx("35.0.0.0/8"), bgp.OriginIGP)
	sim.RunFor(10 * time.Second)
	if _, _, ok := c.RIB().Best(pfx("35.0.0.0/8")); !ok {
		t.Fatal("setup: C missing route")
	}
	ab.Fail()
	sim.RunFor(time.Minute)
	if _, _, ok := b.RIB().Best(pfx("35.0.0.0/8")); ok {
		t.Fatal("B should have withdrawn A's routes on session loss")
	}
	if _, _, ok := c.RIB().Best(pfx("35.0.0.0/8")); ok {
		t.Fatal("withdrawal should cascade to C")
	}
	if b.Metrics().SessionDrops == 0 {
		t.Fatal("B session drop not counted")
	}
}

func TestLinkFlapAndRecovery(t *testing.T) {
	sim := events.New(5)
	a, _, c, ab, _ := triangle(t, sim)
	a.Originate(pfx("35.0.0.0/8"), bgp.OriginIGP)
	sim.RunFor(10 * time.Second)
	ab.Flap(30 * time.Second)
	// Within the ConnectRetry window plus margin everything restores.
	sim.RunFor(5 * time.Minute)
	if !ab.Established() {
		t.Fatal("link did not re-establish")
	}
	if _, _, ok := c.RIB().Best(pfx("35.0.0.0/8")); !ok {
		t.Fatal("route did not return after flap")
	}
}

func TestMultihomedFailover(t *testing.T) {
	sim := events.New(6)
	// Customer D originates a prefix and homes to both A and B; A and B both
	// peer with exchange router E.
	d := newRouter(sim, 400, 4)
	a := newRouter(sim, 100, 1)
	b := newRouter(sim, 200, 2)
	e := newRouter(sim, 500, 5)
	da := Connect(sim, d, a, 5*time.Millisecond)
	Connect(sim, d, b, 5*time.Millisecond)
	Connect(sim, a, e, 5*time.Millisecond)
	Connect(sim, b, e, 5*time.Millisecond)
	sim.RunFor(10 * time.Second)
	d.Originate(pfx("192.42.113.0/24"), bgp.OriginIGP)
	sim.RunFor(30 * time.Second)
	attrs, _, ok := e.RIB().Best(pfx("192.42.113.0/24"))
	if !ok {
		t.Fatal("E missing customer route")
	}
	if e.RIB().Candidates(pfx("192.42.113.0/24")) != 2 {
		t.Fatalf("E should hold both paths, has %d", e.RIB().Candidates(pfx("192.42.113.0/24")))
	}
	firstPath := attrs.Path.Key()
	// Cut the D—A link: E must fail over to the other path (a WADiff/AADiff
	// from E's viewpoint).
	da.Fail()
	sim.RunFor(time.Minute)
	attrs, _, ok = e.RIB().Best(pfx("192.42.113.0/24"))
	if !ok {
		t.Fatal("E lost the route entirely despite multihoming")
	}
	if attrs.Path.Key() == firstPath {
		t.Fatalf("E best path did not change after failover: %v", attrs.Path)
	}
	census := e.RIB().TakeCensus()
	if census.Multihomed != 0 { // only one path remains now
		t.Fatalf("census multihomed %d", census.Multihomed)
	}
}

func TestCrashUnderUpdateLoad(t *testing.T) {
	sim := events.New(7)
	victim := New(sim, Config{
		AS: 200, ID: 2, Arch: RouteCache,
		Session: session.Config{MRAI: 0},
	})
	feeder := New(sim, Config{
		AS: 100, ID: 1,
		Session: session.Config{MRAI: 0, Stateless: true},
	})
	l := Connect(sim, feeder, victim, time.Millisecond)
	sim.RunFor(5 * time.Second)
	if !l.Established() {
		t.Fatal("no establishment")
	}
	// Blast announcements well above the ~300/s capacity.
	var i int
	blaster := sim.Every(2*time.Millisecond, func() { // 500 prefix updates/s
		p := netaddr.MustPrefix(netaddr.Addr(0x0a000000+uint32(i%5000)*256), 24)
		feeder.Originate(p, bgp.OriginIGP)
		i++
	})
	sim.RunFor(2 * time.Minute)
	blaster.Stop()
	if victim.Metrics().Crashes == 0 {
		t.Fatalf("victim survived %d updates at 500/s (backlog %v)", victim.Metrics().UpdatesProcessed, victim.Backlog())
	}
	if !victim.Crashed() && victim.Metrics().Crashes < 1 {
		t.Fatal("crash state inconsistent")
	}
}

func TestSustainableLoadDoesNotCrash(t *testing.T) {
	sim := events.New(8)
	victim := New(sim, Config{AS: 200, ID: 2, Session: session.Config{MRAI: 0}})
	feeder := New(sim, Config{AS: 100, ID: 1, Session: session.Config{MRAI: 0}})
	l := Connect(sim, feeder, victim, time.Millisecond)
	sim.RunFor(5 * time.Second)
	if !l.Established() {
		t.Fatal("no establishment")
	}
	var i int
	feed := sim.Every(50*time.Millisecond, func() { // 20 updates/s
		p := netaddr.MustPrefix(netaddr.Addr(0x0a000000+uint32(i%100)*256), 24)
		feeder.Originate(p, bgp.OriginIGP)
		i++
	})
	sim.RunFor(2 * time.Minute)
	feed.Stop()
	if victim.Metrics().Crashes != 0 {
		t.Fatal("victim crashed under sustainable load")
	}
	if victim.Metrics().UpdatesProcessed == 0 {
		t.Fatal("no updates processed")
	}
}

func TestCacheArchitectureCountsInvalidations(t *testing.T) {
	sim := events.New(9)
	cacheRouter := New(sim, Config{AS: 200, ID: 2, Arch: RouteCache, Session: session.Config{MRAI: 0}})
	fullRouter := New(sim, Config{AS: 300, ID: 3, Arch: FullTable, Session: session.Config{MRAI: 0}})
	feeder := New(sim, Config{AS: 100, ID: 1, Session: session.Config{MRAI: 0}})
	Connect(sim, feeder, cacheRouter, time.Millisecond)
	Connect(sim, feeder, fullRouter, time.Millisecond)
	sim.RunFor(5 * time.Second)
	for i := 0; i < 50; i++ {
		feeder.Originate(pfx("35.0.0.0/8"), bgp.OriginIGP)
		sim.RunFor(time.Second)
		feeder.WithdrawOrigin(pfx("35.0.0.0/8"))
		sim.RunFor(time.Second)
	}
	if cacheRouter.Metrics().CacheInvalidations == 0 {
		t.Fatal("route-cache router recorded no invalidations")
	}
	if fullRouter.Metrics().CacheInvalidations != 0 {
		t.Fatal("full-table router should not record invalidations")
	}
}

func TestFlapStormIgnition(t *testing.T) {
	// A hub router carrying many routes is overloaded by a flapping feeder;
	// its keepalives starve and an *unrelated* peer drops the session —
	// the paper's route flap storm mechanism.
	sim := events.New(10)
	hub := New(sim, Config{
		AS: 200, ID: 2, Arch: RouteCache,
		CPU: CPUModel{
			PerUpdate:    8 * time.Millisecond, // weak 68000-class CPU
			PerCacheMiss: time.Millisecond,
			CrashBacklog: time.Hour, // keep it alive; we want starvation, not crash
			RebootTime:   time.Minute,
		},
		Session: session.Config{MRAI: 0, HoldTime: 30 * time.Second},
	})
	feeder := New(sim, Config{AS: 100, ID: 1, Session: session.Config{MRAI: 0, Stateless: true}})
	bystander := New(sim, Config{AS: 300, ID: 3, Session: session.Config{MRAI: 0, HoldTime: 30 * time.Second}})
	Connect(sim, feeder, hub, time.Millisecond)
	hb := Connect(sim, hub, bystander, time.Millisecond)
	sim.RunFor(5 * time.Second)
	if !hb.Established() {
		t.Fatal("setup failed")
	}
	var i int
	blaster := sim.Every(4*time.Millisecond, func() { // 250/s at 8ms each: 2x overload
		p := netaddr.MustPrefix(netaddr.Addr(0x0a000000+uint32(i/2%2000)*256), 24)
		if i%2 == 0 {
			feeder.Originate(p, bgp.OriginIGP)
		} else {
			feeder.WithdrawOrigin(p)
		}
		i++
	})
	sim.RunFor(3 * time.Minute)
	blaster.Stop()
	bys, _ := hb.Sessions()
	_ = bys
	if bystander.Metrics().SessionDrops == 0 {
		t.Fatalf("bystander never dropped the session (hub backlog %v)", hub.Backlog())
	}
}

func TestDampingSuppressesFlappingRoute(t *testing.T) {
	sim := events.New(11)
	cfg := damping.DefaultConfig()
	damped := New(sim, Config{AS: 200, ID: 2, Damping: &cfg, Session: session.Config{MRAI: 0}})
	feeder := New(sim, Config{AS: 100, ID: 1, Session: session.Config{MRAI: 0}})
	Connect(sim, feeder, damped, time.Millisecond)
	sim.RunFor(5 * time.Second)
	for i := 0; i < 10; i++ {
		feeder.Originate(pfx("192.42.113.0/24"), bgp.OriginIGP)
		sim.RunFor(30 * time.Second)
		feeder.WithdrawOrigin(pfx("192.42.113.0/24"))
		sim.RunFor(30 * time.Second)
	}
	if damped.Metrics().DampedUpdates == 0 {
		t.Fatal("no updates were damped")
	}
	// The flapping route ends suppressed: the final announce is held down...
	feeder.Originate(pfx("192.42.113.0/24"), bgp.OriginIGP)
	sim.RunFor(5 * time.Second)
	if _, _, ok := damped.RIB().Best(pfx("192.42.113.0/24")); ok {
		t.Fatal("suppressed route was installed")
	}
	// ...but sits on the reuse list and installs once the penalty decays.
	sim.RunFor(2 * time.Hour)
	if _, _, ok := damped.RIB().Best(pfx("192.42.113.0/24")); !ok {
		t.Fatal("suppressed route never reused after decay")
	}
}

func TestStatelessRouterEmitsExtraWithdrawals(t *testing.T) {
	// The paper's ISP-Y scenario: a provider's stateless routers relay
	// withdrawals back to peers that never received the announcement, so the
	// upstream (standing in for the route server) receives spurious
	// withdrawals from the stateless AS but none from the stateful one.
	sim := events.New(12)
	stateless := New(sim, Config{AS: 200, ID: 2, Session: session.Config{MRAI: time.Second, Stateless: true}})
	stateful := New(sim, Config{AS: 210, ID: 21, Session: session.Config{MRAI: time.Second, CompareLastSent: true}})
	up1 := New(sim, Config{AS: 100, ID: 1, Session: session.Config{MRAI: time.Second}})
	u1s := Connect(sim, up1, stateless, time.Millisecond)
	u2s := Connect(sim, up1, stateful, time.Millisecond)
	sim.RunFor(5 * time.Second)
	for i := 0; i < 20; i++ {
		up1.Originate(pfx("35.0.0.0/8"), bgp.OriginIGP)
		sim.RunFor(5 * time.Second)
		up1.WithdrawOrigin(pfx("35.0.0.0/8"))
		sim.RunFor(5 * time.Second)
	}
	fromStateless, _ := u1s.Sessions() // up1's endpoint toward the stateless AS
	fromStateful, _ := u2s.Sessions()
	if got := fromStateless.Stats().WdReceived; got < 20 {
		t.Fatalf("upstream received only %d withdrawals from the stateless AS", got)
	}
	if got := fromStateful.Stats().WdReceived; got != 0 {
		t.Fatalf("upstream received %d spurious withdrawals from the stateful AS", got)
	}
}

func TestCrashRebootRestoresOrigination(t *testing.T) {
	sim := events.New(13)
	// Calibrated so a flap burst exceeds capacity but the post-reboot full
	// table dump does not (otherwise the router enters a permanent crash
	// loop, which is itself a behavior the flap-storm test covers).
	r := New(sim, Config{
		AS: 100, ID: 1,
		CPU:     CPUModel{PerUpdate: 5 * time.Millisecond, CrashBacklog: 50 * time.Millisecond, RebootTime: time.Minute},
		Session: session.Config{MRAI: 0},
	})
	peer := New(sim, Config{AS: 200, ID: 2, Session: session.Config{MRAI: 0}})
	l := Connect(sim, r, peer, time.Millisecond)
	sim.RunFor(5 * time.Second)
	r.Originate(pfx("35.0.0.0/8"), bgp.OriginIGP)
	for i := 0; i < 5; i++ {
		peer.Originate(netaddr.MustPrefix(netaddr.Addr(0x0b000000+uint32(i)*65536), 16), bgp.OriginIGP)
		sim.RunFor(time.Second)
	}
	// Flap one prefix at 500 changes/s — far beyond the 200/s capacity.
	var i int
	burst := sim.Every(2*time.Millisecond, func() {
		if i%2 == 0 {
			peer.Originate(pfx("203.0.113.0/24"), bgp.OriginIGP)
		} else {
			peer.WithdrawOrigin(pfx("203.0.113.0/24"))
		}
		i++
	})
	sim.RunFor(2 * time.Second)
	burst.Stop()
	if r.Metrics().Crashes == 0 {
		t.Fatalf("router did not crash (backlog %v)", r.Backlog())
	}
	// After reboot + retries, the origination is visible at the peer again.
	sim.RunFor(10 * time.Minute)
	if !l.Established() {
		t.Fatal("session did not recover after reboot")
	}
	if _, _, ok := peer.RIB().Best(pfx("35.0.0.0/8")); !ok {
		t.Fatal("origination not restored after reboot")
	}
}
