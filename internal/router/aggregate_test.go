package router

import (
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/events"
	"instability/internal/session"
)

// aggregateSetup: two customers feed a provider that aggregates their /24s
// into one /22 toward an upstream.
func aggregateSetup(t *testing.T, suppress bool) (*events.Sim, *Router, *Router, *Router, *Router) {
	t.Helper()
	sim := events.New(51)
	provider := New(sim, Config{AS: 200, ID: 2, Session: session.Config{MRAI: 0, CompareLastSent: true}})
	provider.ConfigureAggregate(AggregateConfig{
		Supernet:           pfx("198.108.60.0/22"),
		SuppressComponents: suppress,
	})
	cust1 := newRouter(sim, 100, 1)
	cust2 := newRouter(sim, 110, 11)
	up := newRouter(sim, 300, 3)
	Connect(sim, cust1, provider, time.Millisecond)
	Connect(sim, cust2, provider, time.Millisecond)
	Connect(sim, provider, up, time.Millisecond)
	sim.RunFor(5 * time.Second)
	return sim, provider, cust1, cust2, up
}

func TestAggregateAnnouncedWithFirstComponent(t *testing.T) {
	sim, provider, cust1, _, up := aggregateSetup(t, true)
	if provider.AggregateActive(pfx("198.108.60.0/22")) {
		t.Fatal("aggregate active with no components")
	}
	cust1.Originate(pfx("198.108.60.0/24"), bgp.OriginIGP)
	sim.RunFor(10 * time.Second)
	if !provider.AggregateActive(pfx("198.108.60.0/22")) {
		t.Fatal("aggregate not activated")
	}
	attrs, _, ok := up.RIB().Best(pfx("198.108.60.0/22"))
	if !ok {
		t.Fatal("upstream missing aggregate")
	}
	if !attrs.AtomicAggregate || !attrs.HasAggregator || attrs.AggregatorAS != 200 {
		t.Fatalf("aggregate attributes wrong: %+v", attrs)
	}
	// The component itself is hidden.
	if _, _, ok := up.RIB().Best(pfx("198.108.60.0/24")); ok {
		t.Fatal("component leaked upstream")
	}
}

func TestAggregateHidesComponentInstability(t *testing.T) {
	sim, _, cust1, cust2, up := aggregateSetup(t, true)
	cust1.Originate(pfx("198.108.60.0/24"), bgp.OriginIGP)
	cust2.Originate(pfx("198.108.61.0/24"), bgp.OriginIGP)
	sim.RunFor(10 * time.Second)
	upSess := up.Session(200, 2)
	baseline := upSess.Stats().UpdatesReceived
	// Customer 1 flaps ten times; customer 2 keeps the aggregate alive, so
	// the upstream hears nothing at all.
	for i := 0; i < 10; i++ {
		cust1.WithdrawOrigin(pfx("198.108.60.0/24"))
		sim.RunFor(10 * time.Second)
		cust1.Originate(pfx("198.108.60.0/24"), bgp.OriginIGP)
		sim.RunFor(10 * time.Second)
	}
	if got := upSess.Stats().UpdatesReceived; got != baseline {
		t.Fatalf("upstream heard %d updates during hidden flapping", got-baseline)
	}
}

func TestAggregateWithdrawnWithLastComponent(t *testing.T) {
	sim, provider, cust1, cust2, up := aggregateSetup(t, true)
	cust1.Originate(pfx("198.108.60.0/24"), bgp.OriginIGP)
	cust2.Originate(pfx("198.108.61.0/24"), bgp.OriginIGP)
	sim.RunFor(10 * time.Second)
	cust1.WithdrawOrigin(pfx("198.108.60.0/24"))
	sim.RunFor(10 * time.Second)
	if !provider.AggregateActive(pfx("198.108.60.0/22")) {
		t.Fatal("aggregate should survive one component")
	}
	cust2.WithdrawOrigin(pfx("198.108.61.0/24"))
	sim.RunFor(10 * time.Second)
	if provider.AggregateActive(pfx("198.108.60.0/22")) {
		t.Fatal("aggregate should die with its last component")
	}
	if _, _, ok := up.RIB().Best(pfx("198.108.60.0/22")); ok {
		t.Fatal("upstream kept the dead aggregate")
	}
}

func TestAggregateSessionLossCountsComponents(t *testing.T) {
	sim, provider, cust1, cust2, _ := aggregateSetup(t, true)
	cust1.Originate(pfx("198.108.60.0/24"), bgp.OriginIGP)
	cust2.Originate(pfx("198.108.61.0/24"), bgp.OriginIGP)
	sim.RunFor(10 * time.Second)
	// Crash customer 2: its session dies; component must be deregistered.
	c2sess := provider.Session(110, 11)
	if c2sess == nil {
		t.Fatal("missing session")
	}
	c2sess.TransportDown(nil)
	sim.RunFor(time.Second)
	if !provider.AggregateActive(pfx("198.108.60.0/22")) {
		t.Fatal("aggregate should survive on cust1")
	}
	c1sess := provider.Session(100, 1)
	c1sess.TransportDown(nil)
	sim.RunFor(time.Second)
	if provider.AggregateActive(pfx("198.108.60.0/22")) {
		t.Fatal("aggregate should die when all component sessions drop")
	}
}

func TestSloppyAggregationLeaksComponents(t *testing.T) {
	// SuppressComponents=false: both aggregate and components are exported,
	// the poorly aggregated table growth the paper laments.
	sim, _, cust1, _, up := aggregateSetup(t, false)
	cust1.Originate(pfx("198.108.60.0/24"), bgp.OriginIGP)
	sim.RunFor(10 * time.Second)
	if _, _, ok := up.RIB().Best(pfx("198.108.60.0/22")); !ok {
		t.Fatal("aggregate missing")
	}
	if _, _, ok := up.RIB().Best(pfx("198.108.60.0/24")); !ok {
		t.Fatal("component should be visible in sloppy mode")
	}
	// And component flaps now leak upstream.
	upSess := up.Session(200, 2)
	before := upSess.Stats().UpdatesReceived
	cust1.WithdrawOrigin(pfx("198.108.60.0/24"))
	sim.RunFor(10 * time.Second)
	if upSess.Stats().UpdatesReceived == before {
		t.Fatal("sloppy aggregation should leak the withdrawal")
	}
}

func TestAggregateTableDumpHidesComponents(t *testing.T) {
	// A session established after the components are learned must receive
	// the aggregate but not the components.
	sim := events.New(52)
	provider := New(sim, Config{AS: 200, ID: 2, Session: session.Config{MRAI: 0, CompareLastSent: true}})
	provider.ConfigureAggregate(AggregateConfig{Supernet: pfx("198.108.60.0/22"), SuppressComponents: true})
	cust := newRouter(sim, 100, 1)
	Connect(sim, cust, provider, time.Millisecond)
	sim.RunFor(5 * time.Second)
	cust.Originate(pfx("198.108.60.0/24"), bgp.OriginIGP)
	sim.RunFor(10 * time.Second)

	late := newRouter(sim, 300, 3)
	Connect(sim, provider, late, time.Millisecond)
	sim.RunFor(10 * time.Second)
	if _, _, ok := late.RIB().Best(pfx("198.108.60.0/22")); !ok {
		t.Fatal("late peer missing aggregate")
	}
	if _, _, ok := late.RIB().Best(pfx("198.108.60.0/24")); ok {
		t.Fatal("late peer received hidden component")
	}
}
