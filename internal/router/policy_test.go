package router

import (
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/events"
	"instability/internal/netaddr"
	"instability/internal/policy"
	"instability/internal/session"
)

func TestImportPolicyFiltersRoutes(t *testing.T) {
	sim := events.New(31)
	recv := newRouter(sim, 200, 2)
	feeder := newRouter(sim, 100, 1)
	l := Connect(sim, feeder, recv, time.Millisecond)
	// Reject anything longer than /24 on import (the paper's draconian
	// prefix-length filter).
	recv.SetImportPolicy(100, 1, policy.PrefixLengthFilter(24))
	sim.RunFor(5 * time.Second)
	if !l.Established() {
		t.Fatal("no establishment")
	}
	feeder.Originate(pfx("35.0.0.0/8"), bgp.OriginIGP)
	feeder.Originate(pfx("192.42.113.128/25"), bgp.OriginIGP)
	sim.RunFor(10 * time.Second)
	if _, _, ok := recv.RIB().Best(pfx("35.0.0.0/8")); !ok {
		t.Fatal("/8 should be accepted")
	}
	if _, _, ok := recv.RIB().Best(pfx("192.42.113.128/25")); ok {
		t.Fatal("/25 should be filtered on import")
	}
}

func TestImportPolicySetsLocalPref(t *testing.T) {
	sim := events.New(32)
	recv := newRouter(sim, 200, 2)
	// Two upstreams; the longer path is preferred via import localpref.
	cheap := newRouter(sim, 100, 1)
	pricey := newRouter(sim, 110, 11)
	origin := newRouter(sim, 300, 3)
	Connect(sim, origin, cheap, time.Millisecond)
	Connect(sim, origin, pricey, time.Millisecond)
	Connect(sim, cheap, recv, time.Millisecond)
	Connect(sim, pricey, recv, time.Millisecond)
	recv.SetImportPolicy(100, 1, policy.CustomerPreference(300, 200, bgp.Community(200<<16|100)))
	sim.RunFor(10 * time.Second)
	origin.Originate(pfx("35.0.0.0/8"), bgp.OriginIGP)
	sim.RunFor(30 * time.Second)
	attrs, peer, ok := recv.RIB().Best(pfx("35.0.0.0/8"))
	if !ok {
		t.Fatal("route missing")
	}
	if peer.AS != 100 {
		t.Fatalf("best via %v, want the customer-preferred path", peer)
	}
	if !attrs.HasLocalPref || attrs.LocalPref != 200 {
		t.Fatalf("localpref not applied: %+v", attrs)
	}
}

func TestExportPolicyWithholdsRoutes(t *testing.T) {
	sim := events.New(33)
	mid := newRouter(sim, 200, 2)
	feeder := newRouter(sim, 100, 1)
	sink := newRouter(sim, 300, 3)
	Connect(sim, feeder, mid, time.Millisecond)
	ms := Connect(sim, mid, sink, time.Millisecond)
	// mid refuses to export anything longer than /16 to the sink.
	mid.SetExportPolicy(300, 3, policy.PrefixLengthFilter(16))
	sim.RunFor(5 * time.Second)
	feeder.Originate(pfx("35.0.0.0/8"), bgp.OriginIGP)
	feeder.Originate(pfx("192.42.113.0/24"), bgp.OriginIGP)
	sim.RunFor(10 * time.Second)
	// mid holds both; sink only the short one.
	if mid.RIB().Len() != 2 {
		t.Fatalf("mid table %d", mid.RIB().Len())
	}
	if _, _, ok := sink.RIB().Best(pfx("35.0.0.0/8")); !ok {
		t.Fatal("sink missing /8")
	}
	if _, _, ok := sink.RIB().Best(pfx("192.42.113.0/24")); ok {
		t.Fatal("sink received export-filtered /24")
	}
	_ = ms
}

func TestExportPolicyAppliesOnTableDump(t *testing.T) {
	// The export filter must also govern the initial dump to a session that
	// establishes after the routes are learned.
	sim := events.New(34)
	mid := newRouter(sim, 200, 2)
	feeder := newRouter(sim, 100, 1)
	Connect(sim, feeder, mid, time.Millisecond)
	sim.RunFor(5 * time.Second)
	feeder.Originate(pfx("35.0.0.0/8"), bgp.OriginIGP)
	feeder.Originate(pfx("192.42.113.0/24"), bgp.OriginIGP)
	sim.RunFor(10 * time.Second)

	sink := newRouter(sim, 300, 3)
	Connect(sim, mid, sink, time.Millisecond)
	mid.SetExportPolicy(300, 3, policy.PrefixLengthFilter(16))
	sim.RunFor(10 * time.Second)
	if _, _, ok := sink.RIB().Best(pfx("35.0.0.0/8")); !ok {
		t.Fatal("sink missing /8 from dump")
	}
	if _, _, ok := sink.RIB().Best(pfx("192.42.113.0/24")); ok {
		t.Fatal("dump leaked the filtered /24")
	}
}

func TestPolicyEvaluationCostCounted(t *testing.T) {
	sim := events.New(35)
	recv := newRouter(sim, 200, 2)
	feeder := newRouter(sim, 100, 1)
	Connect(sim, feeder, recv, time.Millisecond)
	pol := policy.MartianFilter()
	recv.SetImportPolicy(100, 1, pol)
	sim.RunFor(5 * time.Second)
	for i := 0; i < 10; i++ {
		feeder.Originate(netaddr.MustPrefix(netaddr.Addr(0x23000000+uint32(i)<<16), 16), bgp.OriginIGP)
	}
	sim.RunFor(10 * time.Second)
	if pol.Evaluations < 10 {
		t.Fatalf("policy evaluated %d times", pol.Evaluations)
	}
}

func TestSetPolicyUnknownPeerIsNoop(t *testing.T) {
	sim := events.New(36)
	r := newRouter(sim, 200, 2)
	r.SetImportPolicy(999, 9, policy.MartianFilter()) // must not panic
	r.SetExportPolicy(999, 9, policy.MartianFilter())
	_ = session.Config{}
}
