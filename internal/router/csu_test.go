package router

import (
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/events"
	"instability/internal/session"
)

func TestCSUPeriod(t *testing.T) {
	if got := DefaultCSU().Period(); got != 30*time.Second {
		t.Fatalf("default period %v, want 30s", got)
	}
	c := CSUConfig{DriftPPM: 2, SlipBudget: 120 * time.Microsecond}
	if got := c.Period(); got != time.Minute {
		t.Fatalf("2ppm period %v, want 1m", got)
	}
	if (CSUConfig{}).Period() != 0 {
		t.Fatal("same-clock CSUs should not oscillate")
	}
}

func TestCSUOscillatesLink(t *testing.T) {
	sim := events.New(41)
	a := newRouter(sim, 100, 1)
	b := newRouter(sim, 200, 2)
	l := Connect(sim, a, b, time.Millisecond)
	sim.RunFor(5 * time.Second)
	csu := AttachCSU(sim, l, DefaultCSU())
	sim.RunFor(5 * time.Minute)
	// ~10 slips in 5 minutes at a 30s period.
	if csu.Slips < 9 || csu.Slips > 11 {
		t.Fatalf("slips %d, want ~10", csu.Slips)
	}
	csu.Stop()
	before := csu.Slips
	sim.RunFor(5 * time.Minute)
	if csu.Slips != before {
		t.Fatal("stopped CSU kept slipping")
	}
}

func TestHealthyCSUDoesNothing(t *testing.T) {
	sim := events.New(42)
	a := newRouter(sim, 100, 1)
	b := newRouter(sim, 200, 2)
	l := Connect(sim, a, b, time.Millisecond)
	sim.RunFor(5 * time.Second)
	csu := AttachCSU(sim, l, CSUConfig{DriftPPM: 0, SlipBudget: 120 * time.Microsecond, Resync: time.Second})
	sim.RunFor(10 * time.Minute)
	if csu.Slips != 0 {
		t.Fatalf("healthy line slipped %d times", csu.Slips)
	}
	if !l.Established() {
		t.Fatal("healthy line lost the session")
	}
}

func TestCSUPeriodicWithdrawalsUpstream(t *testing.T) {
	// The CSU beat on the customer circuit turns into withdrawals and
	// re-announcements at the upstream with the beat's periodicity — the
	// exogenous 30/60s source feeding the Figure 8 bins.
	sim := events.New(43)
	cust := New(sim, Config{AS: 100, ID: 1, Session: session.Config{MRAI: 0, ConnectRetry: 5 * time.Second}})
	border := New(sim, Config{AS: 200, ID: 2, Session: session.Config{MRAI: 0, ConnectRetry: 5 * time.Second}})
	up := New(sim, Config{AS: 300, ID: 3, Session: session.Config{MRAI: 0}})
	custLink := Connect(sim, cust, border, time.Millisecond)
	Connect(sim, border, up, time.Millisecond)
	sim.RunFor(5 * time.Second)
	cust.Originate(pfx("192.42.113.0/24"), bgp.OriginIGP)
	sim.RunFor(5 * time.Second)
	if _, _, ok := up.RIB().Best(pfx("192.42.113.0/24")); !ok {
		t.Fatal("setup: upstream missing route")
	}

	// A slow 60-second beat so the 5s reconnect fits inside each cycle.
	csu := AttachCSU(sim, custLink, CSUConfig{DriftPPM: 2, SlipBudget: 120 * time.Microsecond, Resync: time.Second})
	var wdTimes []time.Duration
	prevWd := 0
	probe := sim.Every(time.Second, func() {
		s := up.Session(200, 2)
		if s == nil {
			return
		}
		if wd := s.Stats().WdReceived; wd != prevWd {
			prevWd = wd
			wdTimes = append(wdTimes, sim.Now().Sub(events.Epoch))
		}
	})
	sim.RunFor(10 * time.Minute)
	probe.Stop()
	csu.Stop()

	if len(wdTimes) < 5 {
		t.Fatalf("only %d withdrawal bursts upstream", len(wdTimes))
	}
	for i := 1; i < len(wdTimes); i++ {
		gap := wdTimes[i] - wdTimes[i-1]
		rem := gap % time.Minute
		if rem > 3*time.Second && rem < 57*time.Second {
			t.Fatalf("withdrawal gap %v off the 60s CSU beat", gap)
		}
	}
}
