package router

import (
	"instability/internal/bgp"
	"instability/internal/netaddr"
	"instability/internal/rib"
)

// AggregateConfig makes the router announce a CIDR supernet on behalf of its
// component routes, the way a well-run 1996 provider announced one block for
// all its customers. Per the paper's §4.1: "an autonomous system will
// maintain a path to an aggregate supernet prefix as long as a path to one
// or more of the component prefixes is available. This effectively limits
// the visibility of instability stemming from unstable customer circuits or
// routers to the scope of a single autonomous system."
type AggregateConfig struct {
	// Supernet is the announced aggregate.
	Supernet netaddr.Prefix
	// SuppressComponents stops the more-specific component routes from
	// being exported (proper aggregation); false announces both (the sloppy
	// kind that fills the default-free table anyway).
	SuppressComponents bool
}

type aggregateState struct {
	cfg AggregateConfig
	// components currently alive under the supernet.
	components map[netaddr.Prefix]bool
	active     bool
}

// ConfigureAggregate enables aggregation for the given supernet. Call before
// routes are learned.
func (r *Router) ConfigureAggregate(cfg AggregateConfig) {
	if r.aggregates == nil {
		r.aggregates = make(map[netaddr.Prefix]*aggregateState)
	}
	r.aggregates[cfg.Supernet] = &aggregateState{
		cfg:        cfg,
		components: make(map[netaddr.Prefix]bool),
	}
}

// AggregateActive reports whether the supernet is currently announced.
func (r *Router) AggregateActive(supernet netaddr.Prefix) bool {
	st := r.aggregates[supernet]
	return st != nil && st.active
}

// aggregateFor finds the aggregate covering p, if any (excluding the
// supernet itself, which is not its own component).
func (r *Router) aggregateFor(p netaddr.Prefix) *aggregateState {
	for super, st := range r.aggregates {
		if super != p && super.ContainsPrefix(p) {
			return st
		}
	}
	return nil
}

// noteComponent updates aggregate state after a component decision and
// originates or withdraws the supernet at the edge transitions. It reports
// whether the component's own propagation should be suppressed.
func (r *Router) noteComponent(d rib.Decision) (suppress bool) {
	st := r.aggregateFor(d.Prefix)
	if st == nil {
		return false
	}
	if d.HasBest {
		st.components[d.Prefix] = true
	} else {
		delete(st.components, d.Prefix)
	}
	switch {
	case !st.active && len(st.components) > 0:
		st.active = true
		attrs := bgp.Attrs{
			Origin:          bgp.OriginIGP,
			Path:            bgp.ASPath{},
			NextHop:         r.cfg.NextHopSelf,
			AtomicAggregate: true,
			HasAggregator:   true,
			AggregatorAS:    r.cfg.AS,
			AggregatorAddr:  r.cfg.ID,
		}
		r.originated[st.cfg.Supernet] = attrs
		self := rib.PeerID{AS: r.cfg.AS, ID: r.cfg.ID}
		ad := r.rib.Update(self, st.cfg.Supernet, attrs)
		r.propagate(ad, nil)
	case st.active && len(st.components) == 0:
		st.active = false
		delete(r.originated, st.cfg.Supernet)
		self := rib.PeerID{AS: r.cfg.AS, ID: r.cfg.ID}
		ad := r.rib.Withdraw(self, st.cfg.Supernet)
		r.propagate(ad, nil)
	}
	return st.cfg.SuppressComponents
}
