// Package router models a 1996-era Internet border router as a full BGP
// speaker: a RIB fed by peering sessions, the decision process, route
// propagation with AS-path prepending, and — central to the paper's §3 — a
// processing model of the route-caching architecture whose CPU starvation
// under update load delays keepalives, drops peering sessions, and at the
// extreme crashes the router, igniting route flap storms.
package router

import (
	"fmt"
	"time"

	"instability/internal/bgp"
	"instability/internal/damping"
	"instability/internal/events"
	"instability/internal/netaddr"
	"instability/internal/policy"
	"instability/internal/rib"
	"instability/internal/session"
)

// Architecture selects the forwarding design.
type Architecture int

// Forwarding architectures.
const (
	// RouteCache is the classic design: interface cards hold a route cache;
	// every best-route change invalidates entries and sustained instability
	// causes cache-miss storms handled by the central CPU.
	RouteCache Architecture = iota
	// FullTable is the newer design holding the complete table in forwarding
	// memory; updates do not disturb the fast path.
	FullTable
)

// CPUModel parameterizes the router's processing capacity.
type CPUModel struct {
	// PerUpdate is the CPU time consumed by one prefix update (policy
	// evaluation, table write).
	PerUpdate time.Duration
	// PerCacheMiss is the extra CPU time per forwarding cache miss caused by
	// an invalidation (RouteCache architecture only).
	PerCacheMiss time.Duration
	// CrashBacklog is the queued-work level at which the router becomes
	// completely unresponsive (the paper's informal experiments crashed a
	// high-end router at ~300 updates/second).
	CrashBacklog time.Duration
	// RebootTime is how long a crashed router stays down.
	RebootTime time.Duration
}

// DefaultCPU returns a model calibrated so that a sustained rate of about
// 300 updates/second exceeds capacity and crashes the router, matching the
// paper's §6 observation.
func DefaultCPU() CPUModel {
	return CPUModel{
		PerUpdate:    3500 * time.Microsecond, // ~285 updates/s capacity
		PerCacheMiss: 200 * time.Microsecond,
		CrashBacklog: 8 * time.Second,
		RebootTime:   3 * time.Minute,
	}
}

// Config parameterizes a router node.
type Config struct {
	AS   bgp.ASN
	ID   netaddr.Addr
	Arch Architecture
	CPU  CPUModel
	// Session is the vendor profile used for every peering session
	// (stateless vs stateful, jittered vs unjittered MRAI).
	Session session.Config
	// Damping, when non-nil, applies route flap damping to received routes.
	Damping *damping.Config
	// NextHopSelf is the next-hop address written into propagated routes.
	// Defaults to ID.
	NextHopSelf netaddr.Addr
	// Transparent propagates routes without prepending the local AS or
	// rewriting the next hop — the route-server behavior, which relays
	// post-policy routes on behalf of its clients.
	Transparent bool
	// Tap, when set, observes every received UPDATE before processing —
	// the collector instrumentation point.
	Tap func(from rib.PeerID, u bgp.Update)
	// PeerState, when set, observes session establishment and loss.
	PeerState func(peer rib.PeerID, up bool)
}

// Metrics counts the model's observable effects.
type Metrics struct {
	UpdatesProcessed   int
	CacheInvalidations int
	Crashes            int
	SessionDrops       int
	DampedUpdates      int
}

// Router is one node. All methods must be called from the simulator loop.
type Router struct {
	sim *events.Sim
	cfg Config
	rib *rib.RIB

	peers map[rib.PeerID]*neighbor

	originated map[netaddr.Prefix]bgp.Attrs

	// aggregates holds the configured supernet aggregations.
	aggregates map[netaddr.Prefix]*aggregateState

	damper *damping.Damper[dampKey]
	// suppressed holds the most recent announcement for each damped route,
	// installed when the penalty decays below the reuse threshold (RFC 2439
	// keeps suppressed routes on a reuse list rather than discarding them).
	suppressed map[dampKey]bgp.Attrs

	// Processing backlog model.
	backlog   time.Duration
	lastDrain time.Time
	crashed   bool
	metrics   Metrics

	// onCrash hooks let transports tear themselves down when the router
	// becomes unresponsive.
	onCrash []func()
}

type dampKey struct {
	peer   rib.PeerID
	prefix netaddr.Prefix
}

type neighbor struct {
	id   rib.PeerID
	sess *session.Peer
	// imp filters and rewrites routes learned from this peer; exp does the
	// same for routes advertised to it.
	imp, exp *policy.Policy
}

// New constructs a router on the simulator.
func New(sim *events.Sim, cfg Config) *Router {
	if cfg.NextHopSelf == 0 {
		cfg.NextHopSelf = cfg.ID
	}
	if cfg.CPU == (CPUModel{}) {
		cfg.CPU = DefaultCPU()
	}
	cfg.Session.LocalAS = cfg.AS
	cfg.Session.LocalID = cfg.ID
	r := &Router{
		sim:        sim,
		cfg:        cfg,
		rib:        rib.New(cfg.AS),
		peers:      make(map[rib.PeerID]*neighbor),
		originated: make(map[netaddr.Prefix]bgp.Attrs),
		lastDrain:  sim.Now(),
	}
	if cfg.Damping != nil {
		r.damper = damping.New[dampKey](*cfg.Damping)
		r.suppressed = make(map[dampKey]bgp.Attrs)
	}
	return r
}

// AS returns the router's autonomous system number.
func (r *Router) AS() bgp.ASN { return r.cfg.AS }

// ID returns the router's BGP identifier.
func (r *Router) ID() netaddr.Addr { return r.cfg.ID }

// RIB exposes the routing table for inspection.
func (r *Router) RIB() *rib.RIB { return r.rib }

// Metrics returns a copy of the router's counters.
func (r *Router) Metrics() Metrics { return r.metrics }

// Crashed reports whether the router is currently down.
func (r *Router) Crashed() bool { return r.crashed }

// AddPeer creates the session endpoint for a neighbor. The returned Peer
// must be wired to a transport (its Callbacks.Send is supplied here via the
// send argument) and started by the caller.
func (r *Router) AddPeer(peerAS bgp.ASN, peerID netaddr.Addr, send func(bgp.Message), connect, closeTransport func()) *session.Peer {
	id := rib.PeerID{AS: peerAS, ID: peerID}
	n := &neighbor{id: id}
	cfg := r.cfg.Session
	clock := session.SimClock(r.sim, fmt.Sprintf("router/%d/%v", r.cfg.AS, peerID))
	n.sess = session.New(cfg, clock, session.Callbacks{
		Send:           send,
		Connect:        connect,
		CloseTransport: closeTransport,
		Established:    func() { r.onEstablished(n) },
		Down:           func(err error) { r.onDown(n, err) },
		Update:         func(u bgp.Update) { r.onUpdate(n, u) },
		KeepaliveDelay: r.keepaliveDelay,
	})
	r.peers[id] = n
	return n.sess
}

// SetImportPolicy installs the import policy for a neighbor: every route
// learned from the peer passes through it before entering the RIB.
func (r *Router) SetImportPolicy(peerAS bgp.ASN, peerID netaddr.Addr, p *policy.Policy) {
	if n := r.peers[rib.PeerID{AS: peerAS, ID: peerID}]; n != nil {
		n.imp = p
	}
}

// SetExportPolicy installs the export policy for a neighbor: every route
// advertised to the peer passes through it first; rejected routes are
// withheld (and withdrawn if previously advertised).
func (r *Router) SetExportPolicy(peerAS bgp.ASN, peerID netaddr.Addr, p *policy.Policy) {
	if n := r.peers[rib.PeerID{AS: peerAS, ID: peerID}]; n != nil {
		n.exp = p
	}
}

// Session returns the session endpoint for a neighbor, if present.
func (r *Router) Session(peerAS bgp.ASN, peerID netaddr.Addr) *session.Peer {
	n := r.peers[rib.PeerID{AS: peerAS, ID: peerID}]
	if n == nil {
		return nil
	}
	return n.sess
}

// Originate injects a locally originated prefix (a customer network or the
// router's own aggregate) and propagates it to all peers.
func (r *Router) Originate(prefix netaddr.Prefix, origin bgp.OriginCode) {
	attrs := bgp.Attrs{Origin: origin, Path: bgp.ASPath{}, NextHop: r.cfg.NextHopSelf}
	r.originated[prefix] = attrs
	self := rib.PeerID{AS: r.cfg.AS, ID: r.cfg.ID}
	d := r.rib.Update(self, prefix, attrs)
	r.propagate(d, nil)
}

// WithdrawOrigin removes a locally originated prefix.
func (r *Router) WithdrawOrigin(prefix netaddr.Prefix) {
	delete(r.originated, prefix)
	self := rib.PeerID{AS: r.cfg.AS, ID: r.cfg.ID}
	d := r.rib.Withdraw(self, prefix)
	r.propagate(d, nil)
}

// onEstablished dumps the full table to a newly established peer — the
// "large state dump transmissions" of a recovering session.
func (r *Router) onEstablished(n *neighbor) {
	if r.cfg.PeerState != nil {
		r.cfg.PeerState(n.id, true)
	}
	r.rib.WalkBest(func(p netaddr.Prefix, attrs bgp.Attrs, from rib.PeerID) bool {
		if from == n.id { // no re-advertisement back to the source
			return true
		}
		if st := r.aggregateFor(p); st != nil && st.cfg.SuppressComponents {
			return true // hidden behind the aggregate
		}
		out := r.exportAttrs(attrs)
		if n.exp != nil {
			var ok bool
			if out, ok = n.exp.Apply(p, out); !ok {
				return true
			}
		}
		n.sess.Announce(p, out)
		return true
	})
}

// onDown handles loss of a peering session: all routes learned from the
// neighbor are withdrawn and the changes flood to the remaining peers.
func (r *Router) onDown(n *neighbor, _ error) {
	if r.cfg.PeerState != nil {
		r.cfg.PeerState(n.id, false)
	}
	r.metrics.SessionDrops++
	decisions := r.rib.WithdrawPeer(n.id)
	for _, d := range decisions {
		if r.noteComponent(d) {
			continue
		}
		r.propagate(d, &n.id)
	}
}

// onUpdate applies a received UPDATE: withdrawals and announcements feed the
// RIB; best-route changes propagate to the other peers; the processing cost
// feeds the CPU model.
func (r *Router) onUpdate(n *neighbor, u bgp.Update) {
	if r.crashed {
		return
	}
	if r.cfg.Tap != nil {
		r.cfg.Tap(n.id, u)
	}
	cost := time.Duration(len(u.Withdrawn)+len(u.Announced)) * r.cfg.CPU.PerUpdate
	for _, p := range u.Withdrawn {
		if r.damper != nil {
			key := dampKey{peer: n.id, prefix: p}
			r.damper.Record(key, damping.EventWithdraw, r.sim.Now())
			delete(r.suppressed, key)
		}
		d := r.rib.Withdraw(n.id, p)
		r.noteDecision(d, &cost)
		if r.noteComponent(d) {
			// The component sits under an active aggregate: its instability
			// stays inside this AS.
			r.metrics.UpdatesProcessed++
			continue
		}
		if r.cfg.Session.Stateless {
			// The stateless implementation relays a withdrawal for every
			// explicitly withdrawn prefix to every peer — including the one
			// it came from and peers that never heard the announcement. The
			// session layer sends these unconditionally, which is the WWDup
			// generator the paper traced to one vendor.
			r.broadcastWithdraw(p)
			if d.HasBest {
				// An alternate path exists; re-announce it after the
				// spurious withdrawal.
				r.announceToAll(d)
			}
		} else {
			r.propagate(d, &n.id)
		}
		r.metrics.UpdatesProcessed++
	}
	for _, p := range u.Announced {
		attrs := u.Attrs
		if n.imp != nil {
			var ok bool
			if attrs, ok = n.imp.Apply(p, u.Attrs); !ok {
				// Import-filtered: the candidate never enters the RIB (and
				// any stale candidate from this peer is cleared).
				d := r.rib.Withdraw(n.id, p)
				r.noteDecision(d, &cost)
				r.propagate(d, &n.id)
				r.metrics.UpdatesProcessed++
				continue
			}
		}
		if r.damper != nil {
			key := dampKey{peer: n.id, prefix: p}
			ev := damping.EventReannounce
			if prev, _, ok := r.rib.Best(p); ok && !prev.ForwardingEqual(u.Attrs) {
				ev = damping.EventAttrChange
			}
			if r.damper.Record(key, ev, r.sim.Now()) {
				r.metrics.DampedUpdates++
				r.suppressed[key] = attrs
				r.scheduleReuse(key)
				continue
			}
			delete(r.suppressed, key)
		}
		d := r.rib.Update(n.id, p, attrs)
		r.noteDecision(d, &cost)
		if r.noteComponent(d) {
			r.metrics.UpdatesProcessed++
			continue
		}
		r.propagate(d, &n.id)
		r.metrics.UpdatesProcessed++
	}
	r.charge(cost)
}

// noteDecision applies the cache-architecture cost of a best-route change.
func (r *Router) noteDecision(d rib.Decision, cost *time.Duration) {
	if r.cfg.Arch == RouteCache && d.Changed() {
		r.metrics.CacheInvalidations++
		*cost += r.cfg.CPU.PerCacheMiss
	}
}

// propagate forwards a best-route change to every peer. The peer the new
// best was learned from cannot be sent its own route back; it receives a
// withdrawal instead (clearing whatever we advertised it before — leaving it
// stale would seed ghost routes around topology cycles). A stateless vendor
// additionally emits explicit withdrawals for implicitly withdrawn
// (replaced) routes toward every peer, seeding WWDups downstream.
func (r *Router) propagate(d rib.Decision, _ *rib.PeerID) {
	if !d.Changed() && !d.PolicyChanged() {
		return
	}
	if r.cfg.Session.Stateless && d.HadBest {
		// The stateless implementation makes every implicit withdrawal
		// explicit, toward every peer.
		r.broadcastWithdraw(d.Prefix)
	}
	if d.HasBest {
		r.announceToAll(d)
		return
	}
	if !r.cfg.Session.Stateless {
		for _, n := range r.peers {
			if n.sess.State() == session.Established {
				n.sess.Withdraw(d.Prefix)
			}
		}
	}
}

// broadcastWithdraw queues a withdrawal of prefix toward every established
// peer (stateless vendor behavior).
func (r *Router) broadcastWithdraw(prefix netaddr.Prefix) {
	for _, n := range r.peers {
		if n.sess.State() == session.Established {
			n.sess.Withdraw(prefix)
		}
	}
}

// announceToAll queues the decision's new best route toward every
// established peer, applying each peer's export policy. The peer the best
// was learned from, and any peer whose policy rejects the route, receive a
// withdrawal instead (the session's Adj-RIB-Out suppresses it if that peer
// never held a route from us).
func (r *Router) announceToAll(d rib.Decision) {
	for id, n := range r.peers {
		if n.sess.State() != session.Established {
			continue
		}
		if id == d.NewPeer {
			// No advertising a route back to its source; clear anything we
			// told this peer previously.
			n.sess.Withdraw(d.Prefix)
			continue
		}
		out := r.exportAttrs(d.New)
		if n.exp != nil {
			var ok bool
			if out, ok = n.exp.Apply(d.Prefix, out); !ok {
				n.sess.Withdraw(d.Prefix)
				continue
			}
		}
		n.sess.Announce(d.Prefix, out)
	}
}

// scheduleReuse arranges for a suppressed route to be installed once its
// penalty decays below the reuse threshold.
func (r *Router) scheduleReuse(key dampKey) {
	reuse, ok := r.damper.ReuseTime(key, r.sim.Now())
	if !ok {
		return
	}
	r.sim.ScheduleAt(reuse.Add(time.Second), func() {
		attrs, held := r.suppressed[key]
		if !held {
			return
		}
		if r.damper.Suppressed(key, r.sim.Now()) {
			r.scheduleReuse(key) // penalty refreshed in the meantime
			return
		}
		delete(r.suppressed, key)
		d := r.rib.Update(key.peer, key.prefix, attrs)
		r.propagate(d, &key.peer)
	})
}

// OnCrash registers a hook invoked when the router crashes (used by links to
// take the transport down).
func (r *Router) OnCrash(fn func()) { r.onCrash = append(r.onCrash, fn) }

// exportAttrs rewrites attributes for external propagation: prepend our AS,
// set next-hop self, strip internal-only attributes.
func (r *Router) exportAttrs(a bgp.Attrs) bgp.Attrs {
	out := a
	if !r.cfg.Transparent {
		out.Path = a.Path.Prepend(r.cfg.AS)
		out.NextHop = r.cfg.NextHopSelf
	}
	out.HasLocalPref = false
	out.LocalPref = 0
	return out
}

// charge adds work to the CPU backlog and crashes the router if it exceeds
// the crash threshold.
func (r *Router) charge(cost time.Duration) {
	r.drain()
	r.backlog += cost
	if r.backlog > r.cfg.CPU.CrashBacklog && !r.crashed {
		r.crash()
	}
}

// drain credits elapsed virtual time against the backlog.
func (r *Router) drain() {
	now := r.sim.Now()
	elapsed := now.Sub(r.lastDrain)
	r.lastDrain = now
	r.backlog -= elapsed
	if r.backlog < 0 {
		r.backlog = 0
	}
}

// Backlog returns the current queued-work estimate.
func (r *Router) Backlog() time.Duration {
	r.drain()
	return r.backlog
}

// keepaliveDelay is handed to each session: an overloaded router delays its
// keepalives by the queueing backlog, which is precisely how peers come to
// flag it as down.
func (r *Router) keepaliveDelay() time.Duration {
	r.drain()
	return r.backlog
}

// crash makes the router unresponsive: every session drops, and after
// RebootTime the router restarts and re-initiates its sessions.
func (r *Router) crash() {
	r.crashed = true
	r.metrics.Crashes++
	r.backlog = 0
	for _, n := range r.peers {
		n.sess.TransportDown(errCrashed)
	}
	for _, fn := range r.onCrash {
		fn()
	}
	r.sim.Schedule(r.cfg.CPU.RebootTime, func() {
		r.crashed = false
		// Re-originate local prefixes; sessions restart via their own
		// ConnectRetry machinery.
		self := rib.PeerID{AS: r.cfg.AS, ID: r.cfg.ID}
		for p, a := range r.originated {
			r.rib.Update(self, p, a)
		}
	})
}

var errCrashed = fmt.Errorf("router: crashed under update load")
