package router

import (
	"time"

	"instability/internal/events"
)

// CSUConfig models the Channel Service Units terminating a leased line. The
// paper's §4.2: "Misconfigured CSUs may have clocks which derive from
// different sources. The drift between two clock sources can cause the line
// to oscillate between periods of normal service and corrupted data" — and
// router interface cards, sensitive to millisecond carrier loss, flag the
// link down each time.
//
// The model: the phase error between the two clocks grows at DriftPPM parts
// per million of real time; when it exceeds SlipBudget the line slips
// framing and carrier drops for Resync while the units realign (resetting
// the phase error). The oscillation period is therefore
//
//	SlipBudget / (DriftPPM * 1e-6)
//
// — with a 120 microsecond framing budget and 4 ppm of drift, exactly the
// 30-second period the measured update streams exhibit.
type CSUConfig struct {
	// DriftPPM is the clock frequency difference in parts per million.
	// Zero means both units share a clock source: no oscillation.
	DriftPPM float64
	// SlipBudget is the accumulated phase error that forces a resync.
	SlipBudget time.Duration
	// Resync is the carrier outage while the units realign.
	Resync time.Duration
}

// DefaultCSU returns the misconfigured-pair model producing a 30-second
// oscillation.
func DefaultCSU() CSUConfig {
	return CSUConfig{
		DriftPPM:   4,
		SlipBudget: 120 * time.Microsecond,
		Resync:     2 * time.Second,
	}
}

// Period returns the carrier-loss period (0 when the clocks agree).
func (c CSUConfig) Period() time.Duration {
	if c.DriftPPM <= 0 {
		return 0
	}
	return time.Duration(float64(c.SlipBudget) / (c.DriftPPM * 1e-6))
}

// CSU drives a Link with the clock-drift fault model.
type CSU struct {
	cfg  CSUConfig
	link *Link
	// Slips counts carrier losses.
	Slips   int
	stopped bool
}

// AttachCSU starts the oscillation model on a link. With zero drift it does
// nothing (healthy line).
func AttachCSU(sim *events.Sim, link *Link, cfg CSUConfig) *CSU {
	c := &CSU{cfg: cfg, link: link}
	period := cfg.Period()
	if period <= 0 {
		return c
	}
	var cycle func()
	cycle = func() {
		if c.stopped {
			return
		}
		c.Slips++
		link.Flap(cfg.Resync)
		sim.Schedule(period, cycle)
	}
	sim.Schedule(period, cycle)
	return c
}

// Stop halts the oscillation (the CSUs are reconfigured onto one clock
// source).
func (c *CSU) Stop() { c.stopped = true }
