package faults

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Plan is a deterministic fault schedule. Counted fields are 1-based ordinals
// over the Injector's lifetime ("the Nth write fails"); probability fields
// are per-operation chances drawn from the seeded RNG. The zero Plan injects
// nothing and makes the Injector a transparent accounting wrapper.
type Plan struct {
	// Seed drives every random choice (torn-write split points, bit
	// positions, probabilistic faults). The same Plan over the same
	// operation sequence reproduces the same faults exactly.
	Seed int64

	// FailOpenN fails the Nth Open/OpenFile/Create with ErrInjected.
	FailOpenN int
	// FailWriteN fails the Nth file write with ErrInjected; no bytes reach
	// the file.
	FailWriteN int
	// TornWriteN tears the Nth file write: a random strict prefix of the
	// buffer is persisted, then ErrInjected is returned — the classic
	// crash-mid-write shape from the ALICE analysis.
	TornWriteN int
	// FailSyncN fails the Nth Sync with ErrInjected (data already written
	// stays written, as on a real fsync error).
	FailSyncN int
	// CrashAtOp kills the filesystem at the Nth mutating operation (write,
	// sync, truncate, rename, remove, create). A crashing write persists a
	// random prefix first (torn); every later operation on the Injector and
	// its files returns ErrCrashed. Reopening the directory through a fresh
	// FS models process restart.
	CrashAtOp int

	// WriteErrProb fails each write with this probability.
	WriteErrProb float64
	// ShortWriteProb tears each write (random prefix + ErrInjected) with
	// this probability.
	ShortWriteProb float64

	// FlipReadBitN flips one random bit of the buffer returned by the Nth
	// ReadAt — a latent media error in a sealed segment.
	FlipReadBitN int
	// FlipReadBitProb flips one random bit per ReadAt with this probability.
	FlipReadBitProb float64

	// MaxOpDelay, when nonzero, sleeps a uniform random duration in
	// [0, MaxOpDelay) before each write and sync, widening crash windows in
	// concurrent tests.
	MaxOpDelay time.Duration
}

// Stats counts what an Injector observed and injected.
type Stats struct {
	Opens, Writes, Syncs, Reads int // operations seen
	OpenFiles                   int // opened minus closed (leak detector)
	Injected                    int // faults fired
	Crashed                     bool
}

// Injector wraps an FS and applies a Plan. All methods are safe for
// concurrent use; ordinal counters are global across all files opened
// through the Injector.
type Injector struct {
	inner FS
	mu    sync.Mutex
	rng   *rand.Rand
	plan  Plan

	opens, writes, syncs, reads, mutOps int
	openFiles                           int
	injected                            int
	crashed                             bool
}

// NewInjector returns an Injector applying plan to every operation routed
// through inner.
func NewInjector(inner FS, plan Plan) *Injector {
	return &Injector{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Stats snapshots the operation and fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return Stats{
		Opens: in.opens, Writes: in.writes, Syncs: in.syncs, Reads: in.reads,
		OpenFiles: in.openFiles, Injected: in.injected, Crashed: in.crashed,
	}
}

// Crashed reports whether the Plan's crash point has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// mutOp advances the mutating-operation counter and reports whether this
// operation is the crash point. Callers hold in.mu.
func (in *Injector) mutOp() (crashNow bool) {
	in.mutOps++
	if in.plan.CrashAtOp > 0 && in.mutOps == in.plan.CrashAtOp {
		in.crashed = true
		in.injected++
		return true
	}
	return false
}

func (in *Injector) openCommon(open func() (File, error)) (File, error) {
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return nil, ErrCrashed
	}
	in.opens++
	if in.plan.FailOpenN > 0 && in.opens == in.plan.FailOpenN {
		in.injected++
		in.mu.Unlock()
		return nil, ErrInjected
	}
	in.mu.Unlock()
	f, err := open()
	if err != nil {
		return nil, err
	}
	in.mu.Lock()
	in.openFiles++
	in.mu.Unlock()
	return &injFile{in: in, f: f}, nil
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return in.openCommon(func() (File, error) { return in.inner.OpenFile(name, flag, perm) })
}

func (in *Injector) Open(name string) (File, error) {
	return in.openCommon(func() (File, error) { return in.inner.Open(name) })
}

func (in *Injector) Create(name string) (File, error) {
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return nil, ErrCrashed
	}
	if in.mutOp() {
		in.mu.Unlock()
		return nil, ErrCrashed
	}
	in.mu.Unlock()
	return in.openCommon(func() (File, error) { return in.inner.Create(name) })
}

func (in *Injector) mutatePathOp(op func() error) error {
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return ErrCrashed
	}
	if in.mutOp() {
		in.mu.Unlock()
		return ErrCrashed
	}
	in.mu.Unlock()
	return op()
}

func (in *Injector) Rename(oldpath, newpath string) error {
	return in.mutatePathOp(func() error { return in.inner.Rename(oldpath, newpath) })
}

func (in *Injector) Remove(name string) error {
	return in.mutatePathOp(func() error { return in.inner.Remove(name) })
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return ErrCrashed
	}
	in.mu.Unlock()
	return in.inner.MkdirAll(path, perm)
}

func (in *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return nil, ErrCrashed
	}
	in.mu.Unlock()
	return in.inner.ReadDir(name)
}

// injFile routes one file's operations back through its Injector.
type injFile struct {
	in *Injector
	f  File
}

func (jf *injFile) Name() string { return jf.f.Name() }

func (jf *injFile) delayLocked() {
	if d := jf.in.plan.MaxOpDelay; d > 0 {
		time.Sleep(time.Duration(jf.in.rng.Int63n(int64(d))))
	}
}

func (jf *injFile) Write(p []byte) (int, error) {
	in := jf.in
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return 0, ErrCrashed
	}
	jf.delayLocked()
	in.writes++
	crash := in.mutOp()
	torn := crash ||
		(in.plan.TornWriteN > 0 && in.writes == in.plan.TornWriteN) ||
		(in.plan.ShortWriteProb > 0 && in.rng.Float64() < in.plan.ShortWriteProb)
	fail := (in.plan.FailWriteN > 0 && in.writes == in.plan.FailWriteN) ||
		(in.plan.WriteErrProb > 0 && in.rng.Float64() < in.plan.WriteErrProb)
	var keep int
	if torn && len(p) > 0 {
		keep = in.rng.Intn(len(p)) // strict prefix: at least one byte lost
	}
	if torn || fail {
		in.injected++
	}
	in.mu.Unlock()

	switch {
	case torn:
		if keep > 0 {
			jf.f.Write(p[:keep]) // best effort; the op still fails
		}
		if crash {
			return keep, ErrCrashed
		}
		return keep, ErrInjected
	case fail:
		return 0, ErrInjected
	default:
		return jf.f.Write(p)
	}
}

func (jf *injFile) Sync() error {
	in := jf.in
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return ErrCrashed
	}
	jf.delayLocked()
	in.syncs++
	if in.mutOp() {
		in.mu.Unlock()
		return ErrCrashed
	}
	if in.plan.FailSyncN > 0 && in.syncs == in.plan.FailSyncN {
		in.injected++
		in.mu.Unlock()
		return ErrInjected
	}
	in.mu.Unlock()
	return jf.f.Sync()
}

func (jf *injFile) Truncate(size int64) error {
	in := jf.in
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return ErrCrashed
	}
	if in.mutOp() {
		in.mu.Unlock()
		return ErrCrashed
	}
	in.mu.Unlock()
	return jf.f.Truncate(size)
}

func (jf *injFile) ReadAt(p []byte, off int64) (int, error) {
	in := jf.in
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return 0, ErrCrashed
	}
	in.reads++
	flip := (in.plan.FlipReadBitN > 0 && in.reads == in.plan.FlipReadBitN) ||
		(in.plan.FlipReadBitProb > 0 && in.rng.Float64() < in.plan.FlipReadBitProb)
	var bitByte, bit int
	if flip && len(p) > 0 {
		bitByte = in.rng.Intn(len(p))
		bit = in.rng.Intn(8)
		in.injected++
	}
	in.mu.Unlock()
	n, err := jf.f.ReadAt(p, off)
	if flip && n > 0 {
		if bitByte >= n {
			bitByte = n - 1
		}
		p[bitByte] ^= 1 << bit
	}
	return n, err
}

func (jf *injFile) Read(p []byte) (int, error) {
	in := jf.in
	in.mu.Lock()
	crashed := in.crashed
	in.mu.Unlock()
	if crashed {
		return 0, ErrCrashed
	}
	return jf.f.Read(p)
}

func (jf *injFile) Seek(offset int64, whence int) (int64, error) {
	return jf.f.Seek(offset, whence)
}

func (jf *injFile) Stat() (os.FileInfo, error) { return jf.f.Stat() }

func (jf *injFile) Close() error {
	in := jf.in
	in.mu.Lock()
	in.openFiles--
	in.mu.Unlock()
	// Close succeeds even after a crash: the handle accounting must stay
	// balanced, and a dead process's descriptors are reaped regardless.
	return jf.f.Close()
}

// ParseSpec builds a Plan from a comma-separated key=value chaos spec, the
// form the -chaos CLI flags take, e.g.
//
//	seed=42,flipread=0.001,failsync=3
//	seed=7,tornwrite=5,crashop=40
//
// Keys: seed, failopen, failwrite, tornwrite, failsync, crashop (ints);
// writeerr, shortwrite, flipreadp (probabilities in [0,1]); flipread (int N);
// opdelay (duration). Unknown keys are errors so typos fail loudly.
func ParseSpec(spec string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return p, fmt.Errorf("faults: bad spec element %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		case "failopen":
			p.FailOpenN, err = strconv.Atoi(v)
		case "failwrite":
			p.FailWriteN, err = strconv.Atoi(v)
		case "tornwrite":
			p.TornWriteN, err = strconv.Atoi(v)
		case "failsync":
			p.FailSyncN, err = strconv.Atoi(v)
		case "crashop":
			p.CrashAtOp, err = strconv.Atoi(v)
		case "flipread":
			p.FlipReadBitN, err = strconv.Atoi(v)
		case "writeerr":
			p.WriteErrProb, err = strconv.ParseFloat(v, 64)
		case "shortwrite":
			p.ShortWriteProb, err = strconv.ParseFloat(v, 64)
		case "flipreadp":
			p.FlipReadBitProb, err = strconv.ParseFloat(v, 64)
		case "opdelay":
			p.MaxOpDelay, err = time.ParseDuration(v)
		default:
			return p, fmt.Errorf("faults: unknown spec key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("faults: bad spec value %q: %v", kv, err)
		}
	}
	return p, nil
}
