// Package faults is the fault-injection plane: deterministic, seedable
// misbehavior for the storage and transport layers, so the failure modes the
// paper's infrastructure actually exhibits — crashing collectors, torn
// writes, flaky peering transports — are first-class, reproducible inputs to
// tests and chaos runs instead of things that only happen in production.
//
// Three facilities:
//
//   - FS / File: the filesystem surface internal/store performs all I/O
//     through. Disk is the passthrough implementation; Injector wraps any FS
//     and applies a Plan of write errors, short and torn writes, fsync
//     failures, whole-process crash points, and bit-flips on reads.
//   - Transport: seeded per-message chaos decisions (drop, duplicate, delay,
//     reset) for the simulated session pipe.
//   - Conn: a flaky net.Conn wrapper for live transports (bgpcollect -chaos).
//
// Everything is driven by an explicit seed, so a failing chaos run is a
// reproducible test case, in the spirit of the ALICE torn-write analysis
// (Pillai et al., OSDI '14) and the Chubby/Paxos resilience harnesses.
package faults

import (
	"errors"
	"io"
	"os"
)

// Injected faults are distinguishable from real I/O errors, so tests can
// assert that a failure was the planned one.
var (
	// ErrInjected is returned by operations the Plan fails deliberately.
	ErrInjected = errors.New("faults: injected I/O error")
	// ErrCrashed is returned by every operation after the Plan's crash
	// point fires: the simulated process is dead and nothing reaches disk.
	ErrCrashed = errors.New("faults: filesystem crashed")
)

// File is the handle surface the store needs from an open file. *os.File
// implements it.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Seeker
	io.Closer
	Name() string
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// FS is the filesystem surface the store performs all I/O through.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	Create(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
}

// Disk is the passthrough FS over the real filesystem.
type Disk struct{}

func (Disk) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (Disk) Open(name string) (File, error)               { return os.Open(name) }
func (Disk) Create(name string) (File, error)             { return os.Create(name) }
func (Disk) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (Disk) Remove(name string) error                     { return os.Remove(name) }
func (Disk) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (Disk) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
