package faults

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeN appends n writes of the given payload through fsys, returning the
// first error.
func writeN(t *testing.T, fsys FS, path string, n int, payload []byte) error {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	for i := 0; i < n; i++ {
		if _, err := f.Write(payload); err != nil {
			return err
		}
	}
	return f.Sync()
}

func TestInjectorFailWriteN(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(Disk{}, Plan{Seed: 1, FailWriteN: 3})
	err := writeN(t, in, filepath.Join(dir, "f"), 5, []byte("abcd"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "f"))
	if len(data) != 8 { // exactly two writes landed before the third failed
		t.Fatalf("file holds %d bytes, want 8", len(data))
	}
	if st := in.Stats(); st.Injected != 1 || st.Writes != 3 {
		t.Fatalf("stats = %+v, want 1 injected across 3 writes", st)
	}
}

func TestInjectorTornWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(Disk{}, Plan{Seed: 7, TornWriteN: 1})
	err := writeN(t, in, filepath.Join(dir, "f"), 1, []byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "f"))
	if len(data) >= 8 {
		t.Fatalf("torn write persisted %d bytes, want a strict prefix of 8", len(data))
	}
}

func TestInjectorCrashIsTerminal(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(Disk{}, Plan{Seed: 3, CrashAtOp: 2})
	path := filepath.Join(dir, "f")
	err := writeN(t, in, path, 5, []byte("x"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !in.Crashed() {
		t.Fatal("injector not marked crashed")
	}
	// Every later operation fails, including opens of other files.
	if _, err := in.Open(path); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Open err = %v, want ErrCrashed", err)
	}
	if err := in.Rename(path, path+"2"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Rename err = %v, want ErrCrashed", err)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	run := func() (int, Stats) {
		dir := t.TempDir()
		in := NewInjector(Disk{}, Plan{Seed: 42, ShortWriteProb: 0.3})
		n := 0
		for i := 0; i < 50; i++ {
			if err := writeN(t, in, filepath.Join(dir, "f"), 1, []byte("0123456789")); err == nil {
				n++
			}
		}
		return n, in.Stats()
	}
	n1, s1 := run()
	n2, s2 := run()
	if n1 != n2 || s1.Injected != s2.Injected {
		t.Fatalf("same seed diverged: %d/%+v vs %d/%+v", n1, s1, n2, s2)
	}
	if s1.Injected == 0 {
		t.Fatal("ShortWriteProb=0.3 over 50 writes injected nothing")
	}
}

func TestInjectorBitFlipRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("hello world"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(Disk{}, Plan{Seed: 9, FlipReadBitN: 1})
	f, err := in.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 11)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) == "hello world" {
		t.Fatal("first ReadAt returned unflipped data")
	}
	// The file itself is untouched and a second read is clean.
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello world" {
		t.Fatalf("second ReadAt = %q, want clean data", buf)
	}
}

func TestInjectorOpenFileAccounting(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(Disk{}, Plan{})
	f1, err := in.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := in.Create(filepath.Join(dir, "b"))
	if err != nil {
		t.Fatal(err)
	}
	if st := in.Stats(); st.OpenFiles != 2 {
		t.Fatalf("OpenFiles = %d, want 2", st.OpenFiles)
	}
	f1.Close()
	f2.Close()
	if st := in.Stats(); st.OpenFiles != 0 {
		t.Fatalf("OpenFiles after close = %d, want 0", st.OpenFiles)
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("seed=42, failsync=3,tornwrite=5,flipreadp=0.25,opdelay=2ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 42, FailSyncN: 3, TornWriteN: 5, FlipReadBitProb: 0.25, MaxOpDelay: 2 * time.Millisecond}
	if p != want {
		t.Fatalf("plan = %+v, want %+v", p, want)
	}
	if p, err := ParseSpec(""); err != nil || p != (Plan{}) {
		t.Fatalf("empty spec = %+v, %v", p, err)
	}
	for _, bad := range []string{"seed", "bogus=1", "seed=x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestTransportDeterminism(t *testing.T) {
	draw := func() (int, int, int) {
		tr := NewTransport(11)
		tr.DropProb, tr.DupProb, tr.ResetProb, tr.MaxExtraDelay = 0.2, 0.2, 0.05, time.Second
		for i := 0; i < 500; i++ {
			tr.Decide()
		}
		return tr.Drops, tr.Dups, tr.Resets
	}
	d1, u1, r1 := draw()
	d2, u2, r2 := draw()
	if d1 != d2 || u1 != u2 || r1 != r2 {
		t.Fatalf("same seed diverged: %d/%d/%d vs %d/%d/%d", d1, u1, r1, d2, u2, r2)
	}
	if d1 == 0 || u1 == 0 || r1 == 0 {
		t.Fatalf("500 draws injected nothing in some class: drops %d dups %d resets %d", d1, u1, r1)
	}
}
