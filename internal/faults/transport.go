package faults

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Decision is the fate of one in-flight transport message.
type Decision struct {
	Drop  bool          // lose the message
	Dup   bool          // deliver it twice
	Reset bool          // tear the whole link down instead of delivering
	Extra time.Duration // additional one-way delay
}

// Transport draws seeded per-message chaos decisions for a session pipe:
// drop, duplicate, delay, reset. The zero value injects nothing; all fields
// may be set before traffic starts. Decide is safe for concurrent use.
type Transport struct {
	// DropProb loses a message with this probability.
	DropProb float64
	// DupProb delivers a message twice with this probability.
	DupProb float64
	// ResetProb tears the link down (both FSMs see TransportDown) instead
	// of delivering, with this probability.
	ResetProb float64
	// MaxExtraDelay adds a uniform random delay in [0, MaxExtraDelay) to
	// each delivery.
	MaxExtraDelay time.Duration

	// Counters of injected faults, readable after a run.
	Drops, Dups, Resets int

	mu  sync.Mutex
	rng *rand.Rand
}

// NewTransport returns a Transport drawing from the given seed.
func NewTransport(seed int64) *Transport {
	return &Transport{rng: rand.New(rand.NewSource(seed))}
}

// Decide draws the fate of one message. Reset preempts drop and duplicate.
func (t *Transport) Decide() Decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rng == nil {
		t.rng = rand.New(rand.NewSource(0))
	}
	var d Decision
	if t.ResetProb > 0 && t.rng.Float64() < t.ResetProb {
		t.Resets++
		d.Reset = true
		return d
	}
	if t.DropProb > 0 && t.rng.Float64() < t.DropProb {
		t.Drops++
		d.Drop = true
		return d
	}
	if t.DupProb > 0 && t.rng.Float64() < t.DupProb {
		t.Dups++
		d.Dup = true
	}
	if t.MaxExtraDelay > 0 {
		d.Extra = time.Duration(t.rng.Int63n(int64(t.MaxExtraDelay)))
	}
	return d
}

// Conn wraps a live net.Conn with seeded chaos: random pre-read/write
// delays and spontaneous resets (the conn is closed and the op fails with
// ErrInjected). It exists so bgpcollect -chaos can batter its own dial and
// backoff paths against a cooperative peer without external tooling.
type Conn struct {
	net.Conn

	mu       sync.Mutex
	rng      *rand.Rand
	resetPer float64
	maxDelay time.Duration
}

// NewConn wraps c: each Read/Write first sleeps a uniform random duration in
// [0, maxDelay), then with probability resetPer closes the connection and
// fails with ErrInjected.
func NewConn(c net.Conn, seed int64, resetPer float64, maxDelay time.Duration) *Conn {
	return &Conn{Conn: c, rng: rand.New(rand.NewSource(seed)), resetPer: resetPer, maxDelay: maxDelay}
}

// chaos draws one delay/reset decision; it reports whether the op should
// fail after closing the conn.
func (c *Conn) chaos() bool {
	c.mu.Lock()
	var sleep time.Duration
	if c.maxDelay > 0 {
		sleep = time.Duration(c.rng.Int63n(int64(c.maxDelay)))
	}
	reset := c.resetPer > 0 && c.rng.Float64() < c.resetPer
	c.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if reset {
		c.Conn.Close()
	}
	return reset
}

func (c *Conn) Read(p []byte) (int, error) {
	if c.chaos() {
		return 0, ErrInjected
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	if c.chaos() {
		return 0, ErrInjected
	}
	return c.Conn.Write(p)
}
