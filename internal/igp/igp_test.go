package igp

import (
	"testing"
	"time"

	"instability/internal/events"
	"instability/internal/netaddr"
)

func pfx(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

// square builds a four-node ring: 1-2, 2-3, 3-4, 4-1.
func square(sim *events.Sim) (*Network, []*Node) {
	net := NewNetwork(sim)
	nodes := make([]*Node, 4)
	for i := range nodes {
		nodes[i] = net.AddNode(NodeID(i + 1))
	}
	net.Link(1, 2, 10)
	net.Link(2, 3, 10)
	net.Link(3, 4, 10)
	net.Link(4, 1, 10)
	sim.RunFor(5 * time.Second)
	return net, nodes
}

func TestSPFConvergence(t *testing.T) {
	sim := events.New(1)
	_, nodes := square(sim)
	for _, nd := range nodes {
		for other := NodeID(1); other <= 4; other++ {
			if !nd.Reachable(other) {
				t.Fatalf("node %d cannot reach %d", nd.ID(), other)
			}
		}
	}
	// Shortest path 1->3 goes around either side at cost 20.
	if d := nodes[0].reach[3]; d != 20 {
		t.Fatalf("dist(1,3) = %d", d)
	}
}

func TestExternalPropagation(t *testing.T) {
	sim := events.New(2)
	_, nodes := square(sim)
	nodes[0].AnnounceExternal(pfx("35.0.0.0/8"), External{Metric: 5})
	sim.RunFor(5 * time.Second)
	r, ok := nodes[2].Route(pfx("35.0.0.0/8"))
	if !ok {
		t.Fatal("external did not propagate")
	}
	if r.Origin != 1 || r.Metric != 25 { // 20 path + 5 external
		t.Fatalf("route %+v", r)
	}
	nodes[0].WithdrawExternal(pfx("35.0.0.0/8"))
	sim.RunFor(5 * time.Second)
	if _, ok := nodes[2].Route(pfx("35.0.0.0/8")); ok {
		t.Fatal("withdrawal did not propagate")
	}
}

func TestBestExternalByMetricThenOrigin(t *testing.T) {
	sim := events.New(3)
	_, nodes := square(sim)
	nodes[1].AnnounceExternal(pfx("10.0.0.0/8"), External{Metric: 50})
	nodes[3].AnnounceExternal(pfx("10.0.0.0/8"), External{Metric: 5})
	sim.RunFor(5 * time.Second)
	r, ok := nodes[0].Route(pfx("10.0.0.0/8"))
	if !ok || r.Origin != 4 { // node 4 offers 10+5 vs node 2's 10+50
		t.Fatalf("route %+v", r)
	}
	// Equal metrics tie-break on origin id.
	nodes[1].AnnounceExternal(pfx("10.0.0.0/8"), External{Metric: 5})
	sim.RunFor(5 * time.Second)
	r, _ = nodes[0].Route(pfx("10.0.0.0/8"))
	if r.Origin != 2 {
		t.Fatalf("tie-break: %+v", r)
	}
}

func TestLinkFailureReroutesAndPartitions(t *testing.T) {
	sim := events.New(4)
	net, nodes := square(sim)
	nodes[2].AnnounceExternal(pfx("141.213.0.0/16"), External{Metric: 1})
	sim.RunFor(5 * time.Second)
	if r, ok := nodes[0].Route(pfx("141.213.0.0/16")); !ok || r.Metric != 21 {
		t.Fatalf("initial route %+v ok=%v", r, ok)
	}
	// Cut 2-3: 1 now reaches 3 only via 4 (cost still 20); cut 3-4 too and
	// node 3 partitions away.
	net.Unlink(2, 3)
	sim.RunFor(5 * time.Second)
	if !nodes[0].Reachable(3) {
		t.Fatal("ring should survive one cut")
	}
	net.Unlink(3, 4)
	sim.RunFor(5 * time.Second)
	if nodes[0].Reachable(3) {
		t.Fatal("node 3 should be partitioned")
	}
	if _, ok := nodes[0].Route(pfx("141.213.0.0/16")); ok {
		t.Fatal("external from partitioned node should vanish")
	}
	// Healing restores it.
	net.Link(2, 3, 10)
	sim.RunFor(5 * time.Second)
	if _, ok := nodes[0].Route(pfx("141.213.0.0/16")); !ok {
		t.Fatal("route did not return after healing")
	}
}

func TestOnChangeCallback(t *testing.T) {
	sim := events.New(5)
	_, nodes := square(sim)
	var added, removed int
	nodes[3].OnChange = func(a []Route, r []netaddr.Prefix) {
		added += len(a)
		removed += len(r)
	}
	nodes[0].AnnounceExternal(pfx("35.0.0.0/8"), External{Metric: 5})
	sim.RunFor(5 * time.Second)
	if added != 1 {
		t.Fatalf("added %d", added)
	}
	nodes[0].WithdrawExternal(pfx("35.0.0.0/8"))
	sim.RunFor(5 * time.Second)
	if removed != 1 {
		t.Fatalf("removed %d", removed)
	}
}

func TestRefreshFloodsPeriodically(t *testing.T) {
	sim := events.New(6)
	net, _ := square(sim)
	before := net.Floods
	sim.RunFor(2 * time.Minute)
	// 4 nodes refresh every 30s, each flood delivers to 3 others: at least
	// 4 refreshes * 4 nodes * 3 deliveries.
	if net.Floods-before < 48 {
		t.Fatalf("refresh floods %d", net.Floods-before)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	sim := events.New(7)
	net := NewNetwork(sim)
	net.AddNode(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.AddNode(1)
}

func TestStaleLSAIgnored(t *testing.T) {
	sim := events.New(8)
	_, nodes := square(sim)
	// Install an old-sequence LSA directly; it must not regress the DB.
	stale := &LSA{Origin: 1, Seq: 0, Links: map[NodeID]uint32{}, Externals: map[netaddr.Prefix]External{}}
	nodes[1].install(stale)
	sim.RunFor(time.Second)
	if !nodes[1].Reachable(1) {
		t.Fatal("stale LSA clobbered the database")
	}
}
