package igp

import (
	"time"

	"instability/internal/bgp"
	"instability/internal/events"
	"instability/internal/netaddr"
	"instability/internal/rib"
	"instability/internal/router"
)

// Redistributor couples one IGP node with one BGP border router the way
// 1996-era configurations did: a periodic scanner (a fixed, unjittered timer
// at a 30-second multiple) diffs one protocol's table into the other.
//
// The conversion is lossy — an AS path cannot survive the trip through the
// IGP — so nothing structural prevents routing information from leaving via
// one border router and re-entering via another. The only safeguard is the
// route tag: BGP-sourced externals are stamped with InjectTag, and a
// correctly configured IGP→BGP scanner skips externals carrying it. Setting
// FilterInjected to false reproduces the misconfiguration the paper
// suspects.
type Redistributor struct {
	sim    *events.Sim
	node   *Node
	border *router.Router

	// ScanInterval is the redistribution timer (default 30 s, unjittered).
	ScanInterval time.Duration
	// InjectTag stamps BGP→IGP externals.
	InjectTag uint32
	// InjectMetric is the external metric for BGP-sourced routes.
	InjectMetric uint32
	// FilterInjected, when true, stops the IGP→BGP direction from picking
	// up externals that carry InjectTag — the loop-prevention measure.
	FilterInjected bool
	// IGPToBGP / BGPToIGP enable the two directions.
	IGPToBGP, BGPToIGP bool

	// inBGP tracks prefixes this redistributor originated into BGP;
	// inIGP tracks prefixes it injected into the IGP.
	inBGP map[netaddr.Prefix]bool
	inIGP map[netaddr.Prefix]bool

	// Scans counts scanner runs; Injected/Originated count current sizes.
	Scans int
}

// NewRedistributor wires node and border and starts the scan timer.
func NewRedistributor(sim *events.Sim, node *Node, border *router.Router) *Redistributor {
	r := &Redistributor{
		sim:            sim,
		node:           node,
		border:         border,
		ScanInterval:   30 * time.Second,
		InjectTag:      0xBAD,
		InjectMetric:   20,
		FilterInjected: true,
		IGPToBGP:       true,
		BGPToIGP:       true,
		inBGP:          make(map[netaddr.Prefix]bool),
		inIGP:          make(map[netaddr.Prefix]bool),
	}
	sim.Every(r.ScanInterval, r.scan)
	return r
}

// scan performs one redistribution pass in each enabled direction.
func (r *Redistributor) scan() {
	r.Scans++
	if r.IGPToBGP {
		r.scanIGPToBGP()
	}
	if r.BGPToIGP {
		r.scanBGPToIGP()
	}
}

// scanIGPToBGP originates BGP routes for IGP externals learned from other
// routers.
func (r *Redistributor) scanIGPToBGP() {
	want := make(map[netaddr.Prefix]bool)
	for p, rt := range r.node.Routes() {
		if rt.Origin == r.node.ID() {
			continue // own injections never re-export
		}
		if r.FilterInjected && rt.Tag == r.InjectTag {
			continue // BGP-sourced; the tag filter breaks the loop
		}
		want[p] = true
	}
	for p := range want {
		if !r.inBGP[p] {
			r.inBGP[p] = true
			r.border.Originate(p, bgp.OriginIncomplete)
		}
	}
	for p := range r.inBGP {
		if !want[p] {
			delete(r.inBGP, p)
			r.border.WithdrawOrigin(p)
		}
	}
}

// scanBGPToIGP injects the border router's BGP-learned best routes into the
// IGP as tagged externals.
func (r *Redistributor) scanBGPToIGP() {
	want := make(map[netaddr.Prefix]bool)
	r.border.RIB().WalkBest(func(p netaddr.Prefix, _ bgp.Attrs, from rib.PeerID) bool {
		if from.AS == r.border.AS() {
			return true // self-originated (including our own redistribution)
		}
		want[p] = true
		return true
	})
	for p := range want {
		if !r.inIGP[p] {
			r.inIGP[p] = true
			r.node.AnnounceExternal(p, External{Metric: r.InjectMetric, Tag: r.InjectTag})
		}
	}
	for p := range r.inIGP {
		if !want[p] {
			delete(r.inIGP, p)
			r.node.WithdrawExternal(p)
		}
	}
}

// OriginatedIntoBGP reports whether the scanner currently originates p.
func (r *Redistributor) OriginatedIntoBGP(p netaddr.Prefix) bool { return r.inBGP[p] }

// InjectedIntoIGP reports whether the scanner currently injects p.
func (r *Redistributor) InjectedIntoIGP(p netaddr.Prefix) bool { return r.inIGP[p] }

// DomainRedistributor carries external routes one way between two IGP
// flooding domains through a router that participates in both (src and dst
// are that router's presences in each domain). Mutual redistribution at two
// such routers is the textbook two-point loop: without tag filtering, a
// route injected A→B at one router returns B→A at the other and keeps
// itself alive after the original vanishes — undetectable by any AS-path
// mechanism because no BGP is involved at all.
type DomainRedistributor struct {
	sim      *events.Sim
	src, dst *Node

	// ScanInterval is the redistribution timer (default 30 s, unjittered).
	ScanInterval time.Duration
	// Tag stamps externals this redistributor injects into dst.
	Tag uint32
	// Metric is the injected external metric.
	Metric uint32
	// FilterTags lists tags that must not be redistributed (the loop
	// breaker: both directions' stamps belong here).
	FilterTags map[uint32]bool

	injected map[netaddr.Prefix]bool
	// Scans counts scanner runs.
	Scans int
}

// NewDomainRedistributor starts a one-way src→dst redistribution scanner.
// The phase offset staggers this scanner's 30-second ticks relative to
// others'; independent routers are never synchronized, and it is exactly the
// staggered case in which the two-point loop closes — a withdrawn route's
// forward injection disappears at one router, the partner's back-injection
// is observed before the other forward scanner fires, and the ghost locks
// in.
func NewDomainRedistributor(sim *events.Sim, src, dst *Node, tag uint32, phase time.Duration) *DomainRedistributor {
	r := &DomainRedistributor{
		sim: sim, src: src, dst: dst,
		ScanInterval: 30 * time.Second,
		Tag:          tag,
		Metric:       20,
		FilterTags:   make(map[uint32]bool),
		injected:     make(map[netaddr.Prefix]bool),
	}
	sim.Schedule(phase, func() {
		r.scan()
		sim.Every(r.ScanInterval, r.scan)
	})
	return r
}

func (r *DomainRedistributor) scan() {
	r.Scans++
	want := make(map[netaddr.Prefix]bool)
	for p, rt := range r.src.Routes() {
		if rt.Origin == r.src.ID() {
			continue // own reverse-direction injections never bounce back
		}
		if r.FilterTags[rt.Tag] {
			continue
		}
		want[p] = true
	}
	for p := range want {
		if !r.injected[p] {
			r.injected[p] = true
			r.dst.AnnounceExternal(p, External{Metric: r.Metric, Tag: r.Tag})
		}
	}
	for p := range r.injected {
		if !want[p] {
			delete(r.injected, p)
			r.dst.WithdrawExternal(p)
		}
	}
}

// Injected reports whether p is currently carried into dst.
func (r *DomainRedistributor) Injected(p netaddr.Prefix) bool { return r.injected[p] }
