package igp

import (
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/events"
	"instability/internal/router"
	"instability/internal/session"
)

// twoDomains builds the two-point mutual redistribution topology: domains A
// and B, routers X and Y present in both, plus a stub node in each domain.
//
//	A: a0 -- ax -- ay      B: bx -- b0 -- by   (X = ax/bx, Y = ay/by)
func twoDomains(sim *events.Sim, filtered bool) (a, b *Network, a0 *Node, drs []*DomainRedistributor) {
	a = NewNetwork(sim)
	b = NewNetwork(sim)
	a0 = a.AddNode(10)
	ax := a.AddNode(1)
	ay := a.AddNode(2)
	a.Link(10, 1, 10)
	a.Link(1, 2, 10)
	a.Link(10, 2, 10)
	bx := b.AddNode(1)
	by := b.AddNode(2)
	b.AddNode(10)
	b.Link(1, 10, 10)
	b.Link(10, 2, 10)
	b.Link(1, 2, 10)

	// Staggered scan phases: independent routers never tick in unison, and
	// the stagger is what lets the two-point loop close.
	const tagAB, tagBA = 100, 200
	xAB := NewDomainRedistributor(sim, ax, bx, tagAB, 0)
	yAB := NewDomainRedistributor(sim, ay, by, tagAB, 20*time.Second)
	xBA := NewDomainRedistributor(sim, bx, ax, tagBA, 10*time.Second)
	yBA := NewDomainRedistributor(sim, by, ay, tagBA, 25*time.Second)
	drs = []*DomainRedistributor{xAB, yAB, xBA, yBA}
	if filtered {
		for _, d := range drs {
			d.FilterTags[tagAB] = true
			d.FilterTags[tagBA] = true
		}
	}
	return a, b, a0, drs
}

func TestMutualRedistributionGhostRoute(t *testing.T) {
	sim := events.New(21)
	_, b, a0, _ := twoDomains(sim, false) // no tag filtering: misconfigured
	p := pfx("192.42.113.0/24")
	a0.AnnounceExternal(p, External{Metric: 1})
	sim.RunFor(3 * time.Minute)
	// The route reaches domain B through the redistribution.
	if _, ok := b.Node(10).Route(p); !ok {
		t.Fatal("route never reached domain B")
	}
	// The origin withdraws — but the mutual injections keep the prefix
	// alive in both domains: the ghost route no AS-path check can see.
	a0.WithdrawExternal(p)
	sim.RunFor(30 * time.Minute)
	if _, ok := b.Node(10).Route(p); !ok {
		t.Fatal("expected the ghost to persist in domain B")
	}
	if r, ok := a0.Route(p); !ok {
		t.Fatal("expected the ghost to persist in domain A")
	} else if r.Origin == a0.ID() {
		t.Fatal("ghost attributed to the (withdrawn) origin")
	}
}

func TestTagFilteringPreventsGhost(t *testing.T) {
	sim := events.New(22)
	_, b, a0, _ := twoDomains(sim, true) // correct configuration
	p := pfx("192.42.113.0/24")
	a0.AnnounceExternal(p, External{Metric: 1})
	sim.RunFor(3 * time.Minute)
	if _, ok := b.Node(10).Route(p); !ok {
		t.Fatal("route never reached domain B")
	}
	a0.WithdrawExternal(p)
	sim.RunFor(5 * time.Minute)
	if _, ok := b.Node(10).Route(p); ok {
		t.Fatal("ghost persisted despite tag filtering")
	}
	if _, ok := a0.Route(p); ok {
		t.Fatal("ghost persisted in domain A despite tag filtering")
	}
}

// bgpSetup wires an IGP domain's border router to an upstream BGP peer
// through the Redistributor.
func bgpSetup(t *testing.T, sim *events.Sim) (*Network, *Node, *Redistributor, *router.Router, *router.Router) {
	t.Helper()
	net := NewNetwork(sim)
	interior := net.AddNode(10)
	borderNode := net.AddNode(1)
	net.Link(10, 1, 10)

	border := router.New(sim, router.Config{AS: 200, ID: 21, Session: session.Config{MRAI: 0}})
	up := router.New(sim, router.Config{AS: 300, ID: 31, Session: session.Config{MRAI: 0}})
	l := router.Connect(sim, border, up, time.Millisecond)
	rd := NewRedistributor(sim, borderNode, border)
	sim.RunFor(5 * time.Second)
	if !l.Established() {
		t.Fatal("BGP session did not establish")
	}
	return net, interior, rd, border, up
}

func TestIGPRouteRedistributedIntoBGP(t *testing.T) {
	sim := events.New(23)
	_, interior, rd, _, up := bgpSetup(t, sim)
	p := pfx("141.213.0.0/16")
	interior.AnnounceExternal(p, External{Metric: 5})
	sim.RunFor(2 * time.Minute)
	if !rd.OriginatedIntoBGP(p) {
		t.Fatal("scanner did not originate the IGP route")
	}
	attrs, _, ok := up.RIB().Best(p)
	if !ok {
		t.Fatal("upstream missing redistributed route")
	}
	if attrs.Origin != bgp.OriginIncomplete {
		t.Fatalf("redistributed route should have origin '?', got %v", attrs.Origin)
	}
	// Withdrawal propagates on a later scan.
	interior.WithdrawExternal(p)
	sim.RunFor(2 * time.Minute)
	if _, _, ok := up.RIB().Best(p); ok {
		t.Fatal("upstream kept withdrawn route")
	}
}

func TestBGPRouteInjectedIntoIGPWithTag(t *testing.T) {
	sim := events.New(24)
	_, interior, rd, _, up := bgpSetup(t, sim)
	p := pfx("35.0.0.0/8")
	up.Originate(p, bgp.OriginIGP)
	sim.RunFor(2 * time.Minute)
	if !rd.InjectedIntoIGP(p) {
		t.Fatal("scanner did not inject the BGP route")
	}
	r, ok := interior.Route(p)
	if !ok {
		t.Fatal("interior missing injected route")
	}
	if r.Tag != rd.InjectTag {
		t.Fatalf("injected route tag %d, want %d", r.Tag, rd.InjectTag)
	}
	// The tag filter stops re-export: the border must not originate the
	// prefix back into BGP.
	sim.RunFor(2 * time.Minute)
	if rd.OriginatedIntoBGP(p) {
		t.Fatal("tag-filtered route was re-exported into BGP")
	}
}

func TestScanTimerQuantizesUpdatesTo30s(t *testing.T) {
	// A flapping interior route reaches BGP only at scan ticks, so the
	// upstream sees inter-update spacings at multiples of 30 s — one source
	// of the paper's Figure 8 periodicity.
	sim := events.New(25)
	_, interior, _, _, up := bgpSetup(t, sim)
	p := pfx("141.213.0.0/16")

	var updateTimes []time.Duration
	prevAnn, prevWd := 0, 0
	probe := sim.Every(time.Second, func() {
		s := up.Session(200, 21)
		if s == nil {
			return
		}
		st := s.Stats()
		if st.AnnReceived != prevAnn || st.WdReceived != prevWd {
			prevAnn, prevWd = st.AnnReceived, st.WdReceived
			updateTimes = append(updateTimes, sim.Now().Sub(events.Epoch))
		}
	})
	defer probe.Stop()

	// Flap at awkward, non-aligned times.
	flapper := sim.Every(47*time.Second, func() {
		if _, ok := interior.Externals()[p]; ok {
			interior.WithdrawExternal(p)
		} else {
			interior.AnnounceExternal(p, External{Metric: 5})
		}
	})
	sim.RunFor(20 * time.Minute)
	flapper.Stop()

	if len(updateTimes) < 5 {
		t.Fatalf("only %d updates observed", len(updateTimes))
	}
	for i := 1; i < len(updateTimes); i++ {
		gap := updateTimes[i] - updateTimes[i-1]
		// Allow the 1s probe resolution plus propagation.
		rem := gap % (30 * time.Second)
		if rem > 2*time.Second && rem < 28*time.Second {
			t.Fatalf("update gap %v not on the 30s scan grid", gap)
		}
	}
}
