// Package igp implements a small link-state interior gateway protocol in the
// OSPF mold: routers flood link-state advertisements describing their
// adjacencies and redistributed external routes, every router converges on an
// identical link-state database, and shortest paths come from Dijkstra's
// algorithm. LSAs are refreshed on the era's customary 30-second-multiple
// timers.
//
// The package exists to make the paper's §4.2 IGP/BGP hypothesis executable:
// "the conversion between protocols is lossy, path information is not
// preserved across protocols and routers will not be able to detect an
// inter-protocol routing update oscillation. This type of interaction is
// highly suspect as most IGP protocols utilize internal timers based on some
// multiple of 30 seconds." The Redistributor in this package scans between
// an IGP node and a BGP router on exactly such a timer; redistribute_test.go
// demonstrates both the ghost-route loop the tag filter prevents and the
// 30-second quantization of redistributed updates.
package igp

import (
	"fmt"
	"time"

	"instability/internal/events"
	"instability/internal/netaddr"
)

// NodeID identifies a router within the flooding domain.
type NodeID uint32

// External is a redistributed route carried in an LSA.
type External struct {
	// Metric is the external cost (type-2 semantics: dominates path cost).
	Metric uint32
	// Tag is the opaque route tag (RFC 1403-style) used to mark routes
	// injected from BGP so they are not re-exported — the loop-prevention
	// measure whose absence the experiment demonstrates.
	Tag uint32
}

// LSA is one router's link-state advertisement.
type LSA struct {
	Origin NodeID
	Seq    uint64
	// Links lists adjacency costs to neighbor routers.
	Links map[NodeID]uint32
	// Externals lists routes this router redistributes into the IGP.
	Externals map[netaddr.Prefix]External
}

func (l *LSA) clone() *LSA {
	c := &LSA{Origin: l.Origin, Seq: l.Seq,
		Links:     make(map[NodeID]uint32, len(l.Links)),
		Externals: make(map[netaddr.Prefix]External, len(l.Externals)),
	}
	for k, v := range l.Links {
		c.Links[k] = v
	}
	for k, v := range l.Externals {
		c.Externals[k] = v
	}
	return c
}

// Route is a computed external route at a node.
type Route struct {
	Prefix netaddr.Prefix
	// Origin is the router that injected the route.
	Origin NodeID
	// Metric is the total cost (path to origin + external metric).
	Metric uint32
	Tag    uint32
}

// Network is one IGP flooding domain (an autonomous system's interior).
type Network struct {
	sim   *events.Sim
	nodes map[NodeID]*Node
	// FloodDelay is the LSA propagation delay between any two routers.
	FloodDelay time.Duration
	// SPFDelay is the hold-down before recomputing routes after an LSDB
	// change (coalesces bursts).
	SPFDelay time.Duration
	// RefreshPeriod re-floods every LSA periodically (30 s, unjittered, as
	// the era's implementations did).
	RefreshPeriod time.Duration
	// Floods counts LSA deliveries, a load metric.
	Floods int
}

// NewNetwork creates a flooding domain with conventional timers.
func NewNetwork(sim *events.Sim) *Network {
	n := &Network{
		sim:           sim,
		nodes:         make(map[NodeID]*Node),
		FloodDelay:    50 * time.Millisecond,
		SPFDelay:      200 * time.Millisecond,
		RefreshPeriod: 30 * time.Second,
	}
	return n
}

// Node is one router in the domain.
type Node struct {
	net  *Network
	id   NodeID
	lsa  *LSA // own LSA (authoritative copy)
	lsdb map[NodeID]*LSA

	// routes is the post-SPF external routing table.
	routes map[netaddr.Prefix]Route
	// reach holds shortest-path costs to every reachable router.
	reach map[NodeID]uint32

	spfPending bool
	// OnChange, when set, fires after an SPF run that changed the external
	// table; added lists new/changed routes, removed lists lost prefixes.
	OnChange func(added []Route, removed []netaddr.Prefix)
}

// AddNode registers a router and starts its refresh timer.
func (n *Network) AddNode(id NodeID) *Node {
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("igp: duplicate node %d", id))
	}
	node := &Node{
		net:    n,
		id:     id,
		lsa:    &LSA{Origin: id, Seq: 1, Links: map[NodeID]uint32{}, Externals: map[netaddr.Prefix]External{}},
		lsdb:   make(map[NodeID]*LSA),
		routes: make(map[netaddr.Prefix]Route),
		reach:  map[NodeID]uint32{id: 0},
	}
	node.lsdb[id] = node.lsa.clone()
	n.nodes[id] = node
	n.sim.Every(n.RefreshPeriod, func() { node.flood() })
	return node
}

// Node returns the router with the given id, or nil.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// Link creates (or reprices) a bidirectional adjacency.
func (n *Network) Link(a, b NodeID, cost uint32) {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		panic("igp: link between unknown nodes")
	}
	na.lsa.Links[b] = cost
	nb.lsa.Links[a] = cost
	na.reoriginate()
	nb.reoriginate()
}

// Unlink removes an adjacency.
func (n *Network) Unlink(a, b NodeID) {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return
	}
	delete(na.lsa.Links, b)
	delete(nb.lsa.Links, a)
	na.reoriginate()
	nb.reoriginate()
}

// ID returns the node's router id.
func (nd *Node) ID() NodeID { return nd.id }

// AnnounceExternal injects (or updates) a redistributed route.
func (nd *Node) AnnounceExternal(p netaddr.Prefix, ext External) {
	if cur, ok := nd.lsa.Externals[p]; ok && cur == ext {
		return
	}
	nd.lsa.Externals[p] = ext
	nd.reoriginate()
}

// WithdrawExternal removes a redistributed route.
func (nd *Node) WithdrawExternal(p netaddr.Prefix) {
	if _, ok := nd.lsa.Externals[p]; !ok {
		return
	}
	delete(nd.lsa.Externals, p)
	nd.reoriginate()
}

// Externals returns a copy of the node's own injected routes.
func (nd *Node) Externals() map[netaddr.Prefix]External {
	out := make(map[netaddr.Prefix]External, len(nd.lsa.Externals))
	for k, v := range nd.lsa.Externals {
		out[k] = v
	}
	return out
}

// Route returns the computed external route for p.
func (nd *Node) Route(p netaddr.Prefix) (Route, bool) {
	r, ok := nd.routes[p]
	return r, ok
}

// Routes returns a copy of the full external table.
func (nd *Node) Routes() map[netaddr.Prefix]Route {
	out := make(map[netaddr.Prefix]Route, len(nd.routes))
	for k, v := range nd.routes {
		out[k] = v
	}
	return out
}

// Reachable reports whether the node currently has a path to other.
func (nd *Node) Reachable(other NodeID) bool {
	_, ok := nd.reach[other]
	return ok
}

// reoriginate bumps the node's LSA sequence and floods it.
func (nd *Node) reoriginate() {
	nd.lsa.Seq++
	nd.lsdb[nd.id] = nd.lsa.clone()
	nd.scheduleSPF()
	nd.flood()
}

// flood delivers the node's current LSA to every other router after the
// flood delay. (Flooding is modeled domain-wide rather than hop-by-hop; the
// LSDB convergence result is identical and the timing close enough for the
// protocols-interaction experiments.)
func (nd *Node) flood() {
	copyLSA := nd.lsa.clone()
	for id, other := range nd.net.nodes {
		if id == nd.id {
			continue
		}
		other := other
		nd.net.sim.Schedule(nd.net.FloodDelay, func() {
			nd.net.Floods++
			other.install(copyLSA)
		})
	}
}

// install applies a received LSA if newer.
func (nd *Node) install(l *LSA) {
	cur := nd.lsdb[l.Origin]
	if cur != nil && cur.Seq >= l.Seq {
		return
	}
	nd.lsdb[l.Origin] = l
	nd.scheduleSPF()
}

func (nd *Node) scheduleSPF() {
	if nd.spfPending {
		return
	}
	nd.spfPending = true
	nd.net.sim.Schedule(nd.net.SPFDelay, func() {
		nd.spfPending = false
		nd.runSPF()
	})
}

// runSPF recomputes shortest paths and the external table, firing OnChange
// with the delta.
func (nd *Node) runSPF() {
	// Dijkstra over the LSDB. Adjacencies must be advertised by both ends
	// to count (two-way connectivity check).
	dist := map[NodeID]uint32{nd.id: 0}
	visited := map[NodeID]bool{}
	for {
		var cur NodeID
		best := uint32(0)
		found := false
		for id, d := range dist {
			if !visited[id] && (!found || d < best) {
				cur, best, found = id, d, true
			}
		}
		if !found {
			break
		}
		visited[cur] = true
		lsa := nd.lsdb[cur]
		if lsa == nil {
			continue
		}
		for next, cost := range lsa.Links {
			nl := nd.lsdb[next]
			if nl == nil {
				continue
			}
			if _, twoWay := nl.Links[cur]; !twoWay {
				continue
			}
			if d, ok := dist[next]; !ok || best+cost < d {
				dist[next] = best + cost
			}
		}
	}
	nd.reach = dist

	// External routes: best (lowest metric, then lowest origin) among
	// reachable originators.
	newRoutes := make(map[netaddr.Prefix]Route)
	for origin, lsa := range nd.lsdb {
		d, reachable := dist[origin]
		if !reachable {
			continue
		}
		for p, ext := range lsa.Externals {
			cand := Route{Prefix: p, Origin: origin, Metric: d + ext.Metric, Tag: ext.Tag}
			if cur, ok := newRoutes[p]; !ok || cand.Metric < cur.Metric ||
				(cand.Metric == cur.Metric && cand.Origin < cur.Origin) {
				newRoutes[p] = cand
			}
		}
	}

	var added []Route
	var removed []netaddr.Prefix
	for p, r := range newRoutes {
		if old, ok := nd.routes[p]; !ok || old != r {
			added = append(added, r)
		}
	}
	for p := range nd.routes {
		if _, ok := newRoutes[p]; !ok {
			removed = append(removed, p)
		}
	}
	nd.routes = newRoutes
	if (len(added) > 0 || len(removed) > 0) && nd.OnChange != nil {
		nd.OnChange(added, removed)
	}
}
