// Package netsim instantiates a generated AS topology as live simulated
// routers: real BGP sessions over simulated transports, vendor profiles from
// the topology (stateless Adj-RIB-Out, unjittered timers), route servers
// with collector taps at the exchange points, and fault processes (CSU clock
// drift on customer circuits, scripted flapping). It is the full-fidelity
// counterpart of the statistical workload generator: too slow for nine
// simulated months at Internet scale, but exactly right for validating that
// the composed micro-mechanisms produce the classified update signatures the
// paper reports — which is what its integration tests do.
package netsim

import (
	"fmt"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/events"
	"instability/internal/exchange"
	"instability/internal/netaddr"
	"instability/internal/obs"
	"instability/internal/router"
	"instability/internal/session"
	"instability/internal/topology"
)

// Config parameterizes a live build.
type Config struct {
	// Topology sizes the AS graph (keep it small: every AS becomes a live
	// router).
	Topology topology.Config
	// Exchange selects which exchange point gets the instrumented route
	// server (default Mae-East).
	Exchange string
	// Seed drives topology generation and fault randomness.
	Seed int64
	// CSUFrac is the fraction of customer access circuits terminated by
	// drifting CSU pairs (each beats at 30 or 60 s).
	CSUFrac float64
	// LinkDelay is the one-way propagation delay on every link.
	LinkDelay time.Duration
	// Sink receives the route server's collector records. Optional.
	Sink func(collector.Record)
}

// Sim is a built network.
type Sim struct {
	Events  *events.Sim
	Topo    *topology.Topology
	Routers map[bgp.ASN]*router.Router
	Links   []*router.Link
	Point   *exchange.Point
	CSUs    []*router.CSU
	// ClientLinks maps each exchange peer to its access link into the route
	// server — the circuit the scripted session-reset storm bounces.
	ClientLinks map[bgp.ASN]*router.Link

	cfg Config

	// Progress gauges, set by PublishMetrics and refreshed from the
	// simulation's own goroutine after each advance (the event loop is
	// single-threaded, so gauge funcs reading live state would race; plain
	// gauges updated at step boundaries do not).
	obsSimTime *obs.Gauge
	obsLinks   *obs.Gauge
	obsEvents  *obs.Gauge
}

// Build generates the topology and instantiates every AS as a live router.
// Sessions start immediately; call Settle to run the establishment window
// and originate every prefix.
func Build(cfg Config) (*Sim, error) {
	if cfg.Exchange == "" {
		cfg.Exchange = "Mae-East"
	}
	if cfg.LinkDelay == 0 {
		cfg.LinkDelay = 5 * time.Millisecond
	}
	sim := events.New(cfg.Seed)
	topo := topology.Generate(cfg.Topology, sim.RNG("netsim/topology"))
	ep := topo.Exchange(cfg.Exchange)
	if ep == nil {
		return (*Sim)(nil), fmt.Errorf("netsim: unknown exchange %q", cfg.Exchange)
	}
	s := &Sim{
		Events:  sim,
		Topo:    topo,
		Routers: make(map[bgp.ASN]*router.Router, len(topo.Order)),
		cfg:     cfg,
	}

	// One border router per AS, session behavior from the vendor profile.
	for _, asn := range topo.Order {
		a := topo.ASes[asn]
		scfg := session.Config{
			MRAI:            30 * time.Second,
			Stateless:       a.Vendor.Stateless,
			CompareLastSent: !a.Vendor.Stateless,
		}
		if !a.Vendor.UnjitteredTimer {
			scfg.MRAIJitter = 0.25
		}
		s.Routers[asn] = router.New(sim, router.Config{
			AS:      asn,
			ID:      a.RouterID,
			Arch:    router.RouteCache,
			Session: scfg,
		})
	}

	// Provider links (customer/regional up to each provider), with CSU
	// oscillators on a fraction of customer circuits.
	rng := sim.RNG("netsim/faults")
	for _, asn := range topo.Order {
		a := topo.ASes[asn]
		for _, prov := range a.Providers {
			l := router.Connect(sim, s.Routers[asn], s.Routers[prov], cfg.LinkDelay)
			s.Links = append(s.Links, l)
			if a.Tier == topology.Customer && rng.Float64() < cfg.CSUFrac {
				csu := router.CSUConfig{
					DriftPPM:   2 + 2*float64(rng.Intn(2)), // 2 or 4 ppm: 60 or 30 s beat
					SlipBudget: 120 * time.Microsecond,
					Resync:     2 * time.Second,
				}
				s.CSUs = append(s.CSUs, router.AttachCSU(sim, l, csu))
			}
		}
	}

	// Backbone mesh (the private interconnects), so every backbone carries
	// the full table.
	bbs := topo.Backbones()
	for i := 0; i < len(bbs); i++ {
		for j := i + 1; j < len(bbs); j++ {
			s.Links = append(s.Links, router.Connect(sim, s.Routers[bbs[i].ASN], s.Routers[bbs[j].ASN], cfg.LinkDelay))
		}
	}

	// The instrumented exchange point.
	s.Point = exchange.New(sim, exchange.Config{
		Name:          cfg.Exchange,
		CollectorOnly: true, // pure measurement tap, as in the study
		Sink:          cfg.Sink,
	})
	s.ClientLinks = make(map[bgp.ASN]*router.Link, len(ep.Peers))
	for _, peerAS := range ep.Peers {
		l := s.Point.AttachClient(s.Routers[peerAS], cfg.LinkDelay)
		s.Links = append(s.Links, l)
		s.ClientLinks[peerAS] = l
	}
	return s, nil
}

// PublishMetrics registers the simulation's progress gauges in reg:
// simulated clock position, established link count, and events processed.
// The gauges refresh after each Settle/Run/FlapPrefix advance.
func (s *Sim) PublishMetrics(reg *obs.Registry) {
	s.obsSimTime = reg.Gauge("irtl_netsim_sim_seconds",
		"Simulated clock position (Unix seconds).")
	s.obsLinks = reg.Gauge("irtl_netsim_links_established",
		"Links with both BGP sessions established.")
	s.obsEvents = reg.Gauge("irtl_netsim_events_processed",
		"Discrete events processed by the simulation.")
	s.publish()
}

func (s *Sim) publish() {
	if s.obsSimTime == nil {
		return
	}
	s.obsSimTime.SetInt(s.Events.Now().Unix())
	s.obsLinks.SetInt(int64(s.EstablishedLinks()))
	s.obsEvents.SetInt(int64(s.Events.Processed()))
}

// Settle runs the session-establishment window and then originates every
// AS's prefixes, returning once the originations have had settle time to
// propagate.
func (s *Sim) Settle(establish, propagate time.Duration) {
	s.Events.RunFor(establish)
	for _, asn := range s.Topo.Order {
		a := s.Topo.ASes[asn]
		for _, p := range a.Prefixes {
			s.Routers[asn].Originate(p, bgp.OriginIGP)
		}
	}
	s.Events.RunFor(propagate)
	s.publish()
}

// Run advances the simulation.
func (s *Sim) Run(d time.Duration) {
	s.Events.RunFor(d)
	s.publish()
}

// FlapPrefix withdraws and re-announces one AS's prefix with the given
// period, count times (a scripted unstable circuit).
func (s *Sim) FlapPrefix(asn bgp.ASN, prefix netaddr.Prefix, period time.Duration, count int) {
	r := s.Routers[asn]
	for i := 0; i < count; i++ {
		r.WithdrawOrigin(prefix)
		s.Events.RunFor(period)
		r.Originate(prefix, bgp.OriginIGP)
		s.Events.RunFor(period)
	}
	s.publish()
}

// Hijack scripts a prefix hijack at full protocol fidelity: the attacker
// originates a prefix it does not own, so the route server sees a second
// origin AS for an established route (the MOAS conflict the detector's
// origin channel alarms on). After hold, the attacker withdraws and the
// legitimate route re-converges.
func (s *Sim) Hijack(attacker bgp.ASN, prefix netaddr.Prefix, hold time.Duration) {
	r := s.Routers[attacker]
	r.Originate(prefix, bgp.OriginIGP)
	s.Events.RunFor(hold)
	r.WithdrawOrigin(prefix)
	s.publish()
}

// SessionResetStorm bounces one exchange peer's access circuit: cycles
// outages of the given length, period apart. Each reset replays the peer's
// whole table through the route server — the WADup/AADup burst signature of
// a flapping session, scripted instead of emergent.
func (s *Sim) SessionResetStorm(peer bgp.ASN, cycles int, outage, period time.Duration) {
	l := s.ClientLinks[peer]
	if l == nil {
		return
	}
	for i := 0; i < cycles; i++ {
		l.Flap(outage)
		s.Events.RunFor(period)
	}
	s.publish()
}

// EstablishedLinks counts links with both sessions up.
func (s *Sim) EstablishedLinks() int {
	n := 0
	for _, l := range s.Links {
		if l.Established() {
			n++
		}
	}
	return n
}
