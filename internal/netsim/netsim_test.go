package netsim

import (
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/core"
	"instability/internal/netaddr"
	"instability/internal/topology"
)

func smallTopo() topology.Config {
	return topology.Config{
		Backbones:           4,
		Regionals:           4,
		Customers:           24,
		PrefixesPerCustomer: 2,
		MultihomedFrac:      0.3,
		StatelessFrac:       0.4,
		UnjitteredFrac:      0.5,
		SwampFrac:           0.3,
	}
}

// build runs a small live network through establishment and origination.
func build(t *testing.T, csuFrac float64, sink func(collector.Record)) *Sim {
	t.Helper()
	s, err := Build(Config{
		Topology: smallTopo(),
		Seed:     1996,
		CSUFrac:  csuFrac,
		Sink:     sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Settle(30*time.Second, 5*time.Minute)
	return s
}

func TestBuildEstablishesAndPropagates(t *testing.T) {
	var recs int
	s := build(t, 0, func(collector.Record) { recs++ })
	if got := s.EstablishedLinks(); got < len(s.Links)*9/10 {
		t.Fatalf("only %d/%d links established", got, len(s.Links))
	}
	// The route server converges on (nearly) the full prefix set: every
	// origination must reach the exchange through live propagation.
	total := s.Topo.TotalPrefixes()
	rsLen := s.Point.RouteServer().RIB().Len()
	if rsLen < total*9/10 {
		t.Fatalf("route server holds %d of %d prefixes", rsLen, total)
	}
	if recs == 0 {
		t.Fatal("no records collected")
	}
	// Multihomed origins show at the route server as multiple candidates.
	census := s.Point.RouteServer().RIB().TakeCensus()
	if census.Multihomed == 0 {
		t.Fatal("no multihoming visible at the exchange")
	}
}

func TestLiveFlapClassifiesAsPaperTaxonomy(t *testing.T) {
	cls := core.NewClassifier()
	var counts [core.NumClasses]int
	s := build(t, 0, func(r collector.Record) {
		counts[cls.Classify(r).Class]++
	})
	// Pick a single-homed customer and flap one of its prefixes.
	var victim *topology.AS
	for _, asn := range s.Topo.Order {
		a := s.Topo.ASes[asn]
		if a.Tier == topology.Customer && !a.Multihomed && len(a.Prefixes) > 0 {
			victim = a
			break
		}
	}
	if victim == nil {
		t.Fatal("no single-homed customer")
	}
	before := counts
	s.FlapPrefix(victim.ASN, victim.Prefixes[0], 2*time.Minute, 5)
	s.Run(5 * time.Minute)

	waDup := counts[core.WADup] - before[core.WADup]
	waDiff := counts[core.WADiff] - before[core.WADiff]
	if waDup+waDiff < 3 {
		t.Fatalf("flapping produced %d WADup + %d WADiff at the collector", waDup, waDiff)
	}
	// If any backbone at the exchange runs the stateless vendor, WWDups
	// appear too — the live reproduction of the ISP-Y pattern.
	statelessAtExchange := false
	for _, p := range s.Topo.Exchange("Mae-East").Peers {
		if s.Topo.ASes[p].Vendor.Stateless {
			statelessAtExchange = true
		}
	}
	if statelessAtExchange && counts[core.WWDup] == 0 {
		t.Fatal("stateless backbones at the exchange but no WWDups observed")
	}
}

func TestLiveCSUProducesThirtySecondMass(t *testing.T) {
	cls := core.NewClassifier()
	acc := core.NewAccumulator()
	s := build(t, 0.5, func(r collector.Record) {
		acc.Add(cls.Classify(r))
	})
	// Let the CSU beats run for a while.
	s.Run(30 * time.Minute)
	var on3060, total int
	for _, day := range acc.Days {
		for c := 0; c < core.NumClasses; c++ {
			for b, v := range day.InterArrival[c] {
				total += v
				if b == 2 || b == 3 { // 30s and 1m bins
					on3060 += v
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no inter-arrivals measured")
	}
	if frac := float64(on3060) / float64(total); frac < 0.25 {
		t.Fatalf("30s+1m inter-arrival share %.2f — CSU beat not visible", frac)
	}
}

func TestBuildUnknownExchange(t *testing.T) {
	_, err := Build(Config{Topology: smallTopo(), Exchange: "LINX"})
	if err == nil {
		t.Fatal("unknown exchange accepted")
	}
}

func TestDeterministicBuild(t *testing.T) {
	var a, b int
	s1 := build(t, 0.2, func(collector.Record) { a++ })
	s2 := build(t, 0.2, func(collector.Record) { b++ })
	if a != b {
		t.Fatalf("same seed produced %d vs %d records", a, b)
	}
	if s1.Topo.TotalPrefixes() != s2.Topo.TotalPrefixes() {
		t.Fatal("topologies differ")
	}
}

// TestScriptedHijackShowsMOAS pins the scripted-adversary signature: a
// hijack originated by an exchange peer surfaces at the collector as a
// second origin AS for an already-established prefix (the MOAS conflict the
// detector's origin channel alarms on), and withdrawing ends it.
func TestScriptedHijackShowsMOAS(t *testing.T) {
	origins := make(map[string]map[bgp.ASN]bool)
	s := build(t, 0, func(r collector.Record) {
		if r.Type != collector.Announce {
			return
		}
		key := r.Prefix.String()
		if origins[key] == nil {
			origins[key] = make(map[bgp.ASN]bool)
		}
		if o, ok := r.Attrs.Path.Origin(); ok {
			origins[key][o] = true
		}
	})
	// Victim: a customer prefix already converged at the route server.
	// Attacker: an exchange peer that is not the victim's origin.
	var victim netaddr.Prefix
	var victimAS bgp.ASN
	for _, asn := range s.Topo.Order {
		a := s.Topo.ASes[asn]
		if a.Tier == topology.Customer && len(a.Prefixes) > 0 && len(origins[a.Prefixes[0].String()]) == 1 {
			victim, victimAS = a.Prefixes[0], asn
			break
		}
	}
	if !victim.IsValid() {
		t.Fatal("no converged single-origin customer prefix")
	}
	var attacker bgp.ASN
	for _, p := range s.Topo.Exchange("Mae-East").Peers {
		if p != victimAS {
			attacker = p
			break
		}
	}
	s.Hijack(attacker, victim, 10*time.Minute)
	s.Run(5 * time.Minute)
	got := origins[victim.String()]
	if !got[attacker] {
		t.Fatalf("attacker AS%d origin never seen for %s (origins %v)", attacker, victim, got)
	}
	if len(got) < 2 {
		t.Fatalf("no MOAS conflict: origins %v", got)
	}
}

// TestScriptedSessionResetStorm pins the storm signature: bouncing one
// peer's access circuit replays its table through the route server as
// withdraw/re-announce bursts — the instability classes spike while the
// storm runs.
func TestScriptedSessionResetStorm(t *testing.T) {
	cls := core.NewClassifier()
	var counts [core.NumClasses]int
	s := build(t, 0, func(r collector.Record) {
		counts[cls.Classify(r).Class]++
	})
	peer := s.Topo.Exchange("Mae-East").Peers[0]
	before := counts
	s.SessionResetStorm(peer, 4, 45*time.Second, 4*time.Minute)
	s.Run(10 * time.Minute)
	burst := 0
	for _, c := range []core.Class{core.WADup, core.WADiff, core.AADup, core.WWDup} {
		burst += counts[c] - before[c]
	}
	if burst < 10 {
		t.Fatalf("session-reset storm produced only %d pathological/instability updates", burst)
	}
	if !s.ClientLinks[peer].Established() {
		t.Fatal("peer session did not re-establish after the storm")
	}
}
