package synchrony

import (
	"math"
	"math/rand"
	"testing"
)

func TestUnjitteredTimersSynchronize(t *testing.T) {
	cfg := DefaultConfig()
	res := Run(cfg, rand.New(rand.NewSource(1)))
	if res.PhaseCoherence < 0.9 {
		t.Fatalf("unjittered system did not synchronize: coherence %v", res.PhaseCoherence)
	}
	if res.SyncStep < 0 {
		t.Fatal("sync step not recorded")
	}
	if res.MaxClusterShare < 0.9 {
		t.Fatalf("cluster share %v", res.MaxClusterShare)
	}
}

func TestJitteredTimersStayUnsynchronized(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0.25
	res := Run(cfg, rand.New(rand.NewSource(2)))
	if res.PhaseCoherence > 0.6 {
		t.Fatalf("jittered system synchronized: coherence %v", res.PhaseCoherence)
	}
	if res.MaxClusterShare > 0.6 {
		t.Fatalf("jittered cluster share %v", res.MaxClusterShare)
	}
}

func TestSynchronizationIsAbrupt(t *testing.T) {
	// Floyd-Jacobson: the transition is abrupt, not gradual. Once coherence
	// first crosses 0.5 it should reach 0.9 within a small fraction of the
	// total run.
	cfg := DefaultConfig()
	res := Run(cfg, rand.New(rand.NewSource(3)))
	first50, first90 := -1, -1
	for i, c := range res.CoherenceSeries {
		if c > 0.5 && first50 < 0 {
			first50 = i
		}
		if c > 0.9 && first90 < 0 {
			first90 = i
			break
		}
	}
	if first50 < 0 || first90 < 0 {
		t.Fatal("never synchronized")
	}
	if rise := first90 - first50; rise > cfg.Steps/4 {
		t.Fatalf("transition too gradual: %d steps", rise)
	}
}

func TestCoherenceBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		cfg := DefaultConfig()
		cfg.Steps = 100
		cfg.JitterFrac = float64(trial) * 0.1
		res := Run(cfg, rng)
		for i, c := range res.CoherenceSeries {
			if c < 0 || c > 1+1e-9 || math.IsNaN(c) {
				t.Fatalf("coherence out of bounds at %d: %v", i, c)
			}
		}
	}
}

func TestMoreRoutersStillSynchronize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Routers = 60
	cfg.Steps = 4000
	res := Run(cfg, rand.New(rand.NewSource(5)))
	if res.PhaseCoherence < 0.8 {
		t.Fatalf("60-router unjittered system coherence %v", res.PhaseCoherence)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := Run(DefaultConfig(), rand.New(rand.NewSource(6)))
	b := Run(DefaultConfig(), rand.New(rand.NewSource(6)))
	if a.PhaseCoherence != b.PhaseCoherence || a.SyncStep != b.SyncStep {
		t.Fatal("same seed should reproduce exactly")
	}
}

func BenchmarkRun(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Steps = 200
	for i := 0; i < b.N; i++ {
		Run(cfg, rand.New(rand.NewSource(int64(i))))
	}
}
