// Package synchrony implements the Floyd–Jacobson Periodic Message model the
// paper invokes to explain how unjittered BGP interval timers could couple
// apparently independent routers into lock-step update transmission.
//
// Each router runs a nominally fixed-period timer. When the timer expires the
// router prepares and broadcasts its message; preparing or processing a
// message takes a (randomized) processing time. Two weak couplings follow,
// both from Floyd and Jacobson's analysis:
//
//   - Absorption: a router whose timer expires while it is busy processing a
//     neighbor's message transmits late, chained onto the end of the busy
//     period — so routers firing within a few processing times of each other
//     become locked into one cluster and keep firing together.
//   - Cluster lag: every member of a cluster of k routers processes its k-1
//     colleagues' messages before its timer restarts, so the cluster's
//     effective period exceeds the nominal period by about (k-1) processing
//     times. Larger clusters lag more, sweep through the phase space, and
//     absorb every router they pass — which is why the collapse into global
//     synchrony is abrupt rather than gradual.
//
// Per-cycle random jitter larger than the processing time scatters cluster
// members beyond the absorption window and the system stays incoherent —
// exactly the remedy Floyd and Jacobson prescribe and the unjittered vendor
// timer of the paper's §4.2 lacked.
package synchrony

import (
	"math"
	"math/rand"
)

// Config parameterizes the periodic message model.
type Config struct {
	// Routers is the number of periodic senders.
	Routers int
	// Period is the nominal timer period in seconds (the paper's 30 s BGP
	// interval timer).
	Period float64
	// ProcessDelay is the mean time to prepare or process one message (the
	// weak coupling strength).
	ProcessDelay float64
	// JitterFrac is the fraction of the period used as uniform random
	// jitter on each cycle (0 = the pathological unjittered timer).
	JitterFrac float64
	// Steps is the number of simulated periods per router.
	Steps int
}

// DefaultConfig mirrors the paper's setting: dozens of routers on a fixed
// 30-second timer.
func DefaultConfig() Config {
	return Config{
		Routers:      30,
		Period:       30,
		ProcessDelay: 0.35,
		JitterFrac:   0,
		Steps:        2000,
	}
}

// Result summarizes one run.
type Result struct {
	// PhaseCoherence is the final Kuramoto-style order parameter in [0,1]:
	// 1 means all routers fire in phase, ~1/sqrt(N) is the unsynchronized
	// baseline.
	PhaseCoherence float64
	// CoherenceSeries samples the order parameter roughly once per period.
	CoherenceSeries []float64
	// SyncStep is the first step (in periods) at which coherence exceeded
	// 0.9, or -1 if it never did.
	SyncStep int
	// MaxClusterShare is the largest fraction of routers firing within a
	// few processing times of each other at the end of the run.
	MaxClusterShare float64
}

// Run simulates the periodic message model: repeatedly the earliest-due
// cluster of routers fires as one chained event, each member re-arming one
// period plus the shared cluster lag later.
func Run(cfg Config, rng *rand.Rand) Result {
	n := cfg.Routers
	next := make([]float64, n)
	for i := range next {
		// Start uniformly spread over one period: maximally unsynchronized.
		next[i] = rng.Float64() * cfg.Period
	}
	window := 4 * cfg.ProcessDelay
	res := Result{SyncStep: -1}
	fires := 0
	sinceSample := 0
	totalFires := cfg.Steps * n
	members := make([]int, 0, n)
	for fires < totalFires {
		min := 0
		for i := 1; i < n; i++ {
			if next[i] < next[min] {
				min = i
			}
		}
		t := next[min]
		// Collect the cluster firing in this chained busy period.
		members = members[:0]
		members = append(members, min)
		for j := range next {
			if j != min && next[j] > t && next[j] <= t+window {
				members = append(members, j)
			}
		}
		k := float64(len(members))
		// Every member processes the k-1 colleague messages before its own
		// timer restarts: the cluster-size lag.
		lag := (k - 1) * cfg.ProcessDelay * (0.95 + 0.1*rng.Float64())
		for idx, j := range members {
			jitter := 0.0
			if cfg.JitterFrac > 0 {
				jitter = (rng.Float64()*2 - 1) * cfg.JitterFrac * cfg.Period
			}
			// Chained transmissions stay compact within half a processing
			// time of each other.
			chain := cfg.ProcessDelay * 0.5 * float64(idx) / math.Max(1, k-1)
			noise := cfg.ProcessDelay * (rng.Float64() - 0.5) * 0.2
			next[j] = t + cfg.Period + lag + chain + noise + jitter
		}
		fires += len(members)
		sinceSample += len(members)
		if sinceSample >= n {
			sinceSample = 0
			c := coherence(next, cfg.Period)
			res.CoherenceSeries = append(res.CoherenceSeries, c)
			if c > 0.9 && res.SyncStep < 0 {
				res.SyncStep = fires / n
			}
		}
	}
	res.PhaseCoherence = coherence(next, cfg.Period)
	res.MaxClusterShare = maxCluster(next, cfg.Period, window) / float64(n)
	return res
}

// coherence computes the Kuramoto order parameter of the routers' phases
// (next-fire times modulo the period).
func coherence(next []float64, period float64) float64 {
	var re, im float64
	for _, t := range next {
		phase := 2 * math.Pi * math.Mod(t, period) / period
		re += math.Cos(phase)
		im += math.Sin(phase)
	}
	n := float64(len(next))
	return math.Hypot(re, im) / n
}

// maxCluster returns the size of the largest set of routers whose phases
// fall within a window of width w.
func maxCluster(next []float64, period, w float64) float64 {
	if w <= 0 {
		w = period / 100
	}
	best := 0
	for i := range next {
		pi := math.Mod(next[i], period)
		count := 0
		for j := range next {
			pj := math.Mod(next[j], period)
			d := math.Abs(pi - pj)
			if d > period/2 {
				d = period - d
			}
			if d <= w {
				count++
			}
		}
		if count > best {
			best = count
		}
	}
	return float64(best)
}
