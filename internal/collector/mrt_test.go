package collector

import (
	"bytes"
	"encoding/binary"
	"io"
	"path/filepath"
	"testing"
	"time"
)

func TestMRTRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	w := NewMRTWriter(&buf)
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(recs) {
		t.Fatalf("count %d", w.Count())
	}
	r := NewMRTReader(&buf)
	var got []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records back, want %d", len(got), len(recs))
	}
	for i, want := range recs {
		g := got[i]
		if g.Type != want.Type || g.PeerAS != want.PeerAS || g.PeerAddr != want.PeerAddr || g.Prefix != want.Prefix {
			t.Fatalf("record %d: got %+v want %+v", i, g, want)
		}
		// MRT timestamps are second-granular.
		if g.Time.Unix() != want.Time.Unix() {
			t.Fatalf("record %d time %v vs %v", i, g.Time, want.Time)
		}
		if want.Type == Announce {
			if !g.Attrs.Path.Equal(want.Attrs.Path) || g.Attrs.NextHop != want.Attrs.NextHop {
				t.Fatalf("record %d attrs: %+v vs %+v", i, g.Attrs, want.Attrs)
			}
		}
	}
}

func TestMRTFileGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "updates.mrt.gz")
	w, err := CreateMRT(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords() {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenMRT(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 4 {
		t.Fatalf("%d records", n)
	}
}

func TestMRTWireHeaderFields(t *testing.T) {
	// Byte-level check of the common header and BGP4MP fields so the output
	// stays compatible with external MRT tooling.
	rec := sampleRecords()[1] // the Announce
	var buf bytes.Buffer
	w := NewMRTWriter(&buf)
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	_ = w.Close()
	b := buf.Bytes()
	if got := binary.BigEndian.Uint32(b[0:4]); int64(got) != rec.Time.Unix() {
		t.Fatalf("timestamp %d", got)
	}
	if binary.BigEndian.Uint16(b[4:6]) != 16 { // BGP4MP
		t.Fatal("type not BGP4MP")
	}
	if binary.BigEndian.Uint16(b[6:8]) != 1 { // BGP4MP_MESSAGE
		t.Fatal("subtype not MESSAGE")
	}
	bodyLen := binary.BigEndian.Uint32(b[8:12])
	if int(bodyLen) != len(b)-12 {
		t.Fatalf("length field %d vs body %d", bodyLen, len(b)-12)
	}
	if got := binary.BigEndian.Uint16(b[12:14]); got != 690 { // peer AS
		t.Fatalf("peer AS %d", got)
	}
	if got := binary.BigEndian.Uint16(b[18:20]); got != 1 { // AFI IPv4
		t.Fatalf("AFI %d", got)
	}
	// The embedded BGP message starts with the 16-byte all-ones marker.
	msg := b[12+16:]
	for i := 0; i < 16; i++ {
		if msg[i] != 0xff {
			t.Fatal("embedded BGP marker missing")
		}
	}
}

func TestMRTSkipsUnknownTypes(t *testing.T) {
	var buf bytes.Buffer
	// A TABLE_DUMP (type 12) entry with 4 junk bytes, then a valid record.
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(time.Now().Unix()))
	binary.BigEndian.PutUint16(hdr[4:6], 12)
	binary.BigEndian.PutUint32(hdr[8:12], 4)
	buf.Write(hdr[:])
	buf.Write([]byte{1, 2, 3, 4})
	w := NewMRTWriter(&buf)
	if err := w.Write(sampleRecords()[2]); err != nil {
		t.Fatal(err)
	}
	_ = w.Close()

	r := NewMRTReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != Withdraw {
		t.Fatalf("got %v", rec.Type)
	}
	if r.Skipped != 1 {
		t.Fatalf("skipped %d", r.Skipped)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestMRTTruncationRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewMRTWriter(&buf)
	for _, rec := range sampleRecords() {
		_ = w.Write(rec)
	}
	_ = w.Close()
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 7 {
		r := NewMRTReader(bytes.NewReader(full[:cut]))
		for {
			_, err := r.Next()
			if err != nil {
				break // EOF or corruption; must not panic or loop forever
			}
		}
	}
}

func TestMRTHugeLengthRejected(t *testing.T) {
	var hdr [12]byte
	binary.BigEndian.PutUint16(hdr[4:6], 16)
	binary.BigEndian.PutUint32(hdr[8:12], 1<<24)
	r := NewMRTReader(bytes.NewReader(hdr[:]))
	if _, err := r.Next(); err == nil {
		t.Fatal("absurd record length accepted")
	}
}

func BenchmarkMRTWrite(b *testing.B) {
	w := NewMRTWriter(io.Discard)
	rec := sampleRecords()[1]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
}
