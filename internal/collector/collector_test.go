package collector

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/netaddr"
)

func sampleRecords() []Record {
	t0 := time.Date(1996, 8, 1, 12, 0, 0, 0, time.UTC)
	return []Record{
		{
			Time: t0, Type: SessionUp,
			PeerAS: 690, PeerAddr: netaddr.MustParseAddr("198.32.186.1"),
		},
		{
			Time: t0.Add(time.Second), Type: Announce,
			PeerAS: 690, PeerAddr: netaddr.MustParseAddr("198.32.186.1"),
			Prefix: netaddr.MustParsePrefix("35.0.0.0/8"),
			Attrs: bgp.Attrs{
				Origin:  bgp.OriginIGP,
				Path:    bgp.PathFromASNs(690, 237),
				NextHop: netaddr.MustParseAddr("198.32.186.1"),
			},
		},
		{
			Time: t0.Add(31 * time.Second), Type: Withdraw,
			PeerAS: 701, PeerAddr: netaddr.MustParseAddr("198.32.186.7"),
			Prefix: netaddr.MustParsePrefix("192.42.113.0/24"),
		},
		{
			Time: t0.Add(time.Minute), Type: SessionDown,
			PeerAS: 701, PeerAddr: netaddr.MustParseAddr("198.32.186.7"),
		},
	}
}

func TestRoundTripBuffer(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "Mae-East")
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := WriteAll(w, recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(recs) {
		t.Fatalf("count %d", w.Count())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Exchange() != "Mae-East" {
		t.Fatalf("exchange %q", r.Exchange())
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch\ngot  %+v\nwant %+v", got, recs)
	}
}

func TestRoundTripGzipFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "updates.19960801.irtl.gz")
	w, err := Create(path, "AADS")
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := WriteAll(w, recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Exchange() != "AADS" {
		t.Fatalf("exchange %q", r.Exchange())
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("gzip round trip mismatch")
	}
	// Compression header sanity: the file must actually be gzip.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("file is not gzip-framed")
	}
}

func TestRoundTripPlainFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "updates.irtl")
	w, err := Create(path, "PacBell")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteAll(w, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := ReadAll(r)
	if err != nil || len(got) != 4 {
		t.Fatalf("got %d records, err %v", len(got), err)
	}
}

func TestRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE..garbage"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "X")
	_ = w.Close()
	b := buf.Bytes()
	b[4] = 99
	if _, err := NewReader(bytes.NewReader(b)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "X")
	_ = WriteAll(w, sampleRecords())
	_ = w.Close()
	full := buf.Bytes()
	// Chop mid-record: reading should yield some records then an error
	// (never a panic, never fabricated data).
	for cut := 7; cut < len(full); cut += 3 {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			continue
		}
		for {
			_, err := r.Next()
			if err == io.EOF || err != nil {
				break
			}
		}
	}
}

func TestCorruptTypeByte(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "X")
	_ = WriteAll(w, sampleRecords())
	_ = w.Close()
	b := buf.Bytes()
	b[7] = 200 // first record's type byte (after 7-byte header "IRTL",ver,len,"X")
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("corrupt type accepted")
	}
}

func TestLargeLogRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	t0 := time.Date(1996, 5, 25, 0, 0, 0, 0, time.UTC)
	recs := make([]Record, 5000)
	for i := range recs {
		r := Record{
			Time:     t0.Add(time.Duration(i) * 37 * time.Millisecond),
			PeerAS:   bgp.ASN(rng.Intn(3000) + 1),
			PeerAddr: netaddr.Addr(rng.Uint32()),
			Prefix:   netaddr.MustPrefix(netaddr.Addr(rng.Uint32()), 8+rng.Intn(17)),
		}
		if rng.Intn(2) == 0 {
			r.Type = Announce
			r.Attrs = bgp.Attrs{
				Origin:  bgp.OriginCode(rng.Intn(3)),
				Path:    bgp.PathFromASNs(bgp.ASN(rng.Intn(3000)+1), bgp.ASN(rng.Intn(3000)+1)),
				NextHop: netaddr.Addr(rng.Uint32()),
			}
		} else {
			r.Type = Withdraw
		}
		recs[i] = r
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "Mae-West")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteAll(w, recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records", len(got))
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Fatalf("record %d mismatch:\ngot  %+v\nwant %+v", i, got[i], recs[i])
		}
	}
}

func TestRecordString(t *testing.T) {
	recs := sampleRecords()
	a := recs[1].String()
	if a == "" || recs[2].String() == "" {
		t.Fatal("empty String()")
	}
	if want := "1996-08-01 12:00:01|A|AS690|35.0.0.0/8|198.32.186.1|690 237"; a != want {
		t.Fatalf("got %q want %q", a, want)
	}
	if RecType(9).String() == "" {
		t.Fatal("unknown type should print")
	}
}

func BenchmarkWriteRecord(b *testing.B) {
	w, err := NewWriter(io.Discard, "Mae-East")
	if err != nil {
		b.Fatal(err)
	}
	rec := sampleRecords()[1]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadRecord(b *testing.B) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "Mae-East")
	rec := sampleRecords()[1]
	for i := 0; i < 10000; i++ {
		_ = w.Write(rec)
	}
	_ = w.Close()
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	var r *Reader
	for i := 0; i < b.N; i++ {
		if i%10000 == 0 {
			var err error
			r, err = NewReader(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
		}
		if _, err := r.Next(); err != nil {
			b.Fatal(err)
		}
	}
}
