// Package collector implements the measurement apparatus of the study: the
// update records logged by route-server instrumentation at each exchange
// point, and a compact MRT-inspired binary log format with streaming reader
// and writer (gzip-framed on disk, as the Routing Arbiter archive was).
//
// A Record is deliberately exactly the information the paper's analyses
// consume: timestamp, exchange, peer identity, update type, prefix, and path
// attributes.
package collector

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"instability/internal/bgp"
	"instability/internal/netaddr"
)

// RecType is the kind of observation in a Record.
type RecType uint8

// Record types.
const (
	// Announce is a prefix announcement received from a peer.
	Announce RecType = 1
	// Withdraw is a prefix withdrawal received from a peer.
	Withdraw RecType = 2
	// SessionUp marks a peering session reaching Established.
	SessionUp RecType = 3
	// SessionDown marks a peering session loss.
	SessionDown RecType = 4
)

// String names the record type.
func (t RecType) String() string {
	switch t {
	case Announce:
		return "A"
	case Withdraw:
		return "W"
	case SessionUp:
		return "UP"
	case SessionDown:
		return "DOWN"
	}
	return fmt.Sprintf("RecType(%d)", uint8(t))
}

// Record is one logged observation at a collection point.
type Record struct {
	Time     time.Time
	Type     RecType
	PeerAS   bgp.ASN
	PeerAddr netaddr.Addr
	Prefix   netaddr.Prefix
	Attrs    bgp.Attrs // meaningful for Announce records only
}

// String renders a human-readable one-line form, similar to MRT dump tools.
func (r Record) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|%s|%s|%s", r.Time.UTC().Format("2006-01-02 15:04:05"), r.Type, r.PeerAS, r.Prefix)
	if r.Type == Announce {
		fmt.Fprintf(&sb, "|%s|%s", r.Attrs.NextHop, r.Attrs.Path)
	}
	return sb.String()
}

// Log file framing.
const (
	logMagic   = "IRTL" // Internet RouTing Log
	logVersion = 1
)

// Codec errors.
var (
	ErrBadMagic   = errors.New("collector: not an IRTL log file")
	ErrBadVersion = errors.New("collector: unsupported log version")
	ErrCorrupt    = errors.New("collector: corrupt record")
)

// Writer writes records to a binary log stream.
type Writer struct {
	w     *bufio.Writer
	gz    *gzip.Writer
	under io.Closer
	count int
	buf   []byte
}

// NewWriter starts a log stream on w with the given exchange-point name in
// the header.
func NewWriter(w io.Writer, exchange string) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if len(exchange) > 255 {
		return nil, fmt.Errorf("collector: exchange name too long")
	}
	if _, err := bw.WriteString(logMagic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(logVersion); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(byte(len(exchange))); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(exchange); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Create opens path for writing as a log file; names ending in ".gz" are
// gzip-compressed.
func Create(path, exchange string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		w, err := NewWriter(f, exchange)
		if err != nil {
			f.Close()
			return nil, err
		}
		w.under = f
		return w, nil
	}
	gz := gzip.NewWriter(f)
	w, err := NewWriter(gz, exchange)
	if err != nil {
		gz.Close()
		f.Close()
		return nil, err
	}
	w.gz = gz
	w.under = f
	return w, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	b := w.buf[:0]
	b = append(b, byte(r.Type))
	b = binary.BigEndian.AppendUint64(b, uint64(r.Time.UnixNano()))
	b = binary.BigEndian.AppendUint16(b, uint16(r.PeerAS))
	b = binary.BigEndian.AppendUint32(b, uint32(r.PeerAddr))
	b = append(b, byte(r.Prefix.Bits()))
	b = binary.BigEndian.AppendUint32(b, uint32(r.Prefix.Addr()))
	if r.Type == Announce {
		attrs, err := bgp.MarshalAttrs(r.Attrs)
		if err != nil {
			return err
		}
		if len(attrs) > 0xffff {
			return fmt.Errorf("collector: attributes too large")
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(attrs)))
		b = append(b, attrs...)
	} else {
		b = binary.BigEndian.AppendUint16(b, 0)
	}
	w.buf = b
	w.count++
	_, err := w.w.Write(b)
	return err
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.count }

// Close flushes buffers and closes any file or gzip layer opened by Create.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.gz != nil {
		if err := w.gz.Close(); err != nil {
			return err
		}
	}
	if w.under != nil {
		return w.under.Close()
	}
	return nil
}

// Reader streams records from a log.
type Reader struct {
	r        *bufio.Reader
	gz       *gzip.Reader
	under    io.Closer
	exchange string
}

// NewReader opens a log stream and parses its header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(hdr[:4]) != logMagic {
		return nil, ErrBadMagic
	}
	if hdr[4] != logVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, hdr[4])
	}
	name := make([]byte, hdr[5])
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("%w: header name: %v", ErrCorrupt, err)
	}
	return &Reader{r: br, exchange: string(name)}, nil
}

// Open opens path as a log file; ".gz" names are decompressed.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		r, err := NewReader(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		r.under = f
		return r, nil
	}
	gz, err := gzip.NewReader(bufio.NewReaderSize(f, fileReadBufSize))
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := NewReader(gz)
	if err != nil {
		gz.Close()
		f.Close()
		return nil, err
	}
	r.gz = gz
	r.under = f
	return r, nil
}

// fileReadBufSize is the read buffer interposed between a log file and its
// gzip layer. Without it the flate decoder issues its own small reads
// straight to the kernel — one syscall every few records. 256 KiB covers
// several compressed store-sized blocks (512 records each) per syscall.
const fileReadBufSize = 1 << 18

// Exchange returns the exchange-point name from the log header.
func (r *Reader) Exchange() string { return r.exchange }

// Next reads one record, returning io.EOF at a clean end of stream.
func (r *Reader) Next() (Record, error) {
	var rec Record
	var fixed [20]byte
	if _, err := io.ReadFull(r.r, fixed[:1]); err != nil {
		if err == io.EOF {
			return rec, io.EOF
		}
		return rec, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if _, err := io.ReadFull(r.r, fixed[1:]); err != nil {
		return rec, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	rec.Type = RecType(fixed[0])
	switch rec.Type {
	case Announce, Withdraw, SessionUp, SessionDown:
	default:
		return rec, fmt.Errorf("%w: type %d", ErrCorrupt, fixed[0])
	}
	rec.Time = time.Unix(0, int64(binary.BigEndian.Uint64(fixed[1:9]))).UTC()
	rec.PeerAS = bgp.ASN(binary.BigEndian.Uint16(fixed[9:11]))
	rec.PeerAddr = netaddr.Addr(binary.BigEndian.Uint32(fixed[11:15]))
	bits := int(fixed[15])
	addr := netaddr.Addr(binary.BigEndian.Uint32(fixed[16:20]))
	p, err := netaddr.PrefixFrom(addr, bits)
	if err != nil {
		return rec, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	rec.Prefix = p
	var lenb [2]byte
	if _, err := io.ReadFull(r.r, lenb[:]); err != nil {
		return rec, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	alen := int(binary.BigEndian.Uint16(lenb[:]))
	if alen > 0 {
		ab := make([]byte, alen)
		if _, err := io.ReadFull(r.r, ab); err != nil {
			return rec, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		rec.Attrs, err = bgp.UnmarshalAttrs(ab)
		if err != nil {
			return rec, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	return rec, nil
}

// Close closes any layers opened by Open.
func (r *Reader) Close() error {
	if r.gz != nil {
		if err := r.gz.Close(); err != nil {
			return err
		}
	}
	if r.under != nil {
		return r.under.Close()
	}
	return nil
}

// ReadAll decodes an entire log into memory.
func ReadAll(r *Reader) ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// WriteAll writes all records and keeps the writer open.
func WriteAll(w *Writer, recs []Record) error {
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// RecordReader is the common streaming interface over both log formats
// (native IRTL and MRT).
type RecordReader interface {
	// Next returns the next record, io.EOF at a clean end of stream.
	Next() (Record, error)
	// Close releases any file or compression layers.
	Close() error
}

// OpenAny opens path as whichever log format its name indicates: ".mrt" or
// ".mrt.gz" selects MRT, everything else the native format. The returned
// name is the exchange recorded in the header (empty for MRT, which carries
// none).
func OpenAny(path string) (RecordReader, string, error) {
	if strings.HasSuffix(path, ".mrt") || strings.HasSuffix(path, ".mrt.gz") {
		r, err := OpenMRT(path)
		if err != nil {
			return nil, "", err
		}
		return r, "", nil
	}
	r, err := Open(path)
	if err != nil {
		return nil, "", err
	}
	return r, r.Exchange(), nil
}
