package collector

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"instability/internal/bgp"
	"instability/internal/netaddr"
)

// MRT (RFC 6396) export/import: the interchange format of the real Routing
// Arbiter archives and of every BGP measurement tool since. Records are
// written as BGP4MP messages (AS2 form, IPv4 AFI) so that standard dump
// tools can read logs produced here, and real archive files in the same
// subset can be analyzed by this library.
//
// Mapping: Announce and Withdraw records become BGP4MP_MESSAGE entries
// containing a synthesized BGP UPDATE; SessionUp/SessionDown become
// BGP4MP_STATE_CHANGE entries (OpenConfirm→Established and
// Established→Idle respectively).

// MRT record types and subtypes used here.
const (
	mrtTypeBGP4MP          = 16
	mrtBGP4MPStateChange   = 0
	mrtBGP4MPMessage       = 1
	mrtAFIIPv4             = 1
	mrtStateIdle           = 1
	mrtStateOpenConfirm    = 5
	mrtStateEstablished    = 6
	mrtBGP4MPHeaderLen     = 16 // peerAS(2) localAS(2) ifidx(2) afi(2) peerIP(4) localIP(4)
	mrtCommonHeaderLen     = 12
	mrtMaxRecordLen        = 1 << 20
	mrtCollectorLocalAS    = 6000
	mrtCollectorLocalIPHex = 0xc620baFA // 198.32.186.250
)

// MRTWriter writes collector records as MRT BGP4MP entries.
type MRTWriter struct {
	w     *bufio.Writer
	gz    *gzip.Writer
	under io.Closer
	count int
}

// NewMRTWriter wraps w.
func NewMRTWriter(w io.Writer) *MRTWriter {
	return &MRTWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// CreateMRT opens path for writing; ".gz" names are compressed.
func CreateMRT(path string) (*MRTWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		w := NewMRTWriter(f)
		w.under = f
		return w, nil
	}
	gz := gzip.NewWriter(f)
	w := NewMRTWriter(gz)
	w.gz = gz
	w.under = f
	return w, nil
}

// Count returns the number of MRT entries written.
func (w *MRTWriter) Count() int { return w.count }

// Write encodes one record.
func (w *MRTWriter) Write(rec Record) error {
	var subtype uint16
	var body []byte
	hdr := make([]byte, 0, mrtBGP4MPHeaderLen)
	hdr = binary.BigEndian.AppendUint16(hdr, uint16(rec.PeerAS))
	hdr = binary.BigEndian.AppendUint16(hdr, mrtCollectorLocalAS)
	hdr = binary.BigEndian.AppendUint16(hdr, 0) // interface index
	hdr = binary.BigEndian.AppendUint16(hdr, mrtAFIIPv4)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(rec.PeerAddr))
	hdr = binary.BigEndian.AppendUint32(hdr, mrtCollectorLocalIPHex)

	switch rec.Type {
	case Announce:
		subtype = mrtBGP4MPMessage
		msg, err := bgp.Marshal(bgp.Update{Attrs: rec.Attrs, Announced: []netaddr.Prefix{rec.Prefix}})
		if err != nil {
			return err
		}
		body = append(hdr, msg...)
	case Withdraw:
		subtype = mrtBGP4MPMessage
		msg, err := bgp.Marshal(bgp.Update{Withdrawn: []netaddr.Prefix{rec.Prefix}})
		if err != nil {
			return err
		}
		body = append(hdr, msg...)
	case SessionUp:
		subtype = mrtBGP4MPStateChange
		body = append(hdr, 0, mrtStateOpenConfirm, 0, mrtStateEstablished)
	case SessionDown:
		subtype = mrtBGP4MPStateChange
		body = append(hdr, 0, mrtStateEstablished, 0, mrtStateIdle)
	default:
		return fmt.Errorf("collector: cannot encode record type %v as MRT", rec.Type)
	}

	var common [mrtCommonHeaderLen]byte
	binary.BigEndian.PutUint32(common[0:4], uint32(rec.Time.Unix()))
	binary.BigEndian.PutUint16(common[4:6], mrtTypeBGP4MP)
	binary.BigEndian.PutUint16(common[6:8], subtype)
	binary.BigEndian.PutUint32(common[8:12], uint32(len(body)))
	if _, err := w.w.Write(common[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(body); err != nil {
		return err
	}
	w.count++
	return nil
}

// Close flushes and closes any layers opened by CreateMRT.
func (w *MRTWriter) Close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.gz != nil {
		if err := w.gz.Close(); err != nil {
			return err
		}
	}
	if w.under != nil {
		return w.under.Close()
	}
	return nil
}

// MRTReader decodes the BGP4MP subset written by MRTWriter (and by real
// collectors using AS2 IPv4 BGP4MP entries). Unknown MRT types are skipped.
type MRTReader struct {
	r     *bufio.Reader
	gz    *gzip.Reader
	under io.Closer
	// queue holds records decoded from the current entry (an UPDATE may
	// carry several prefixes, each yielding one Record).
	queue []Record
	// Skipped counts entries of unsupported type.
	Skipped int
}

// NewMRTReader wraps r.
func NewMRTReader(r io.Reader) *MRTReader {
	return &MRTReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// OpenMRT opens an MRT file; ".gz" names are decompressed.
func OpenMRT(path string) (*MRTReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		r := NewMRTReader(f)
		r.under = f
		return r, nil
	}
	// Buffer the file reads so the flate layer never issues small syscalls
	// (see fileReadBufSize in collector.go).
	gz, err := gzip.NewReader(bufio.NewReaderSize(f, fileReadBufSize))
	if err != nil {
		f.Close()
		return nil, err
	}
	r := NewMRTReader(gz)
	r.gz = gz
	r.under = f
	return r, nil
}

// Next returns the next record, io.EOF at end of stream.
func (r *MRTReader) Next() (Record, error) {
	for {
		if len(r.queue) > 0 {
			rec := r.queue[0]
			r.queue = r.queue[1:]
			return rec, nil
		}
		if err := r.fill(); err != nil {
			return Record{}, err
		}
	}
}

func (r *MRTReader) fill() error {
	var common [mrtCommonHeaderLen]byte
	if _, err := io.ReadFull(r.r, common[:1]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if _, err := io.ReadFull(r.r, common[1:]); err != nil {
		return fmt.Errorf("%w: mrt header: %v", ErrCorrupt, err)
	}
	ts := time.Unix(int64(binary.BigEndian.Uint32(common[0:4])), 0).UTC()
	typ := binary.BigEndian.Uint16(common[4:6])
	subtype := binary.BigEndian.Uint16(common[6:8])
	length := binary.BigEndian.Uint32(common[8:12])
	if length > mrtMaxRecordLen {
		return fmt.Errorf("%w: mrt record of %d bytes", ErrCorrupt, length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r.r, body); err != nil {
		return fmt.Errorf("%w: mrt body: %v", ErrCorrupt, err)
	}
	if typ != mrtTypeBGP4MP || (subtype != mrtBGP4MPMessage && subtype != mrtBGP4MPStateChange) {
		r.Skipped++
		return nil
	}
	if len(body) < mrtBGP4MPHeaderLen {
		return fmt.Errorf("%w: bgp4mp header", ErrCorrupt)
	}
	peerAS := bgp.ASN(binary.BigEndian.Uint16(body[0:2]))
	afi := binary.BigEndian.Uint16(body[6:8])
	if afi != mrtAFIIPv4 {
		r.Skipped++
		return nil
	}
	peerIP := netaddr.Addr(binary.BigEndian.Uint32(body[8:12]))
	payload := body[mrtBGP4MPHeaderLen:]

	if subtype == mrtBGP4MPStateChange {
		if len(payload) != 4 {
			return fmt.Errorf("%w: state change body", ErrCorrupt)
		}
		newState := binary.BigEndian.Uint16(payload[2:4])
		typ := SessionDown
		if newState == mrtStateEstablished {
			typ = SessionUp
		}
		r.queue = append(r.queue, Record{Time: ts, Type: typ, PeerAS: peerAS, PeerAddr: peerIP})
		return nil
	}

	msg, err := bgp.Unmarshal(payload)
	if err != nil {
		return fmt.Errorf("%w: embedded bgp message: %v", ErrCorrupt, err)
	}
	u, ok := msg.(bgp.Update)
	if !ok {
		// OPENs/KEEPALIVEs inside BGP4MP_MESSAGE are legal in real archives;
		// they carry no route information.
		r.Skipped++
		return nil
	}
	for _, p := range u.Withdrawn {
		r.queue = append(r.queue, Record{Time: ts, Type: Withdraw, PeerAS: peerAS, PeerAddr: peerIP, Prefix: p})
	}
	for _, p := range u.Announced {
		r.queue = append(r.queue, Record{Time: ts, Type: Announce, PeerAS: peerAS, PeerAddr: peerIP, Prefix: p, Attrs: u.Attrs})
	}
	return nil
}

// Close closes layers opened by OpenMRT.
func (r *MRTReader) Close() error {
	if r.gz != nil {
		if err := r.gz.Close(); err != nil {
			return err
		}
	}
	if r.under != nil {
		return r.under.Close()
	}
	return nil
}
