// Package workload synthesizes the nine-month BGP update stream a Routing
// Arbiter route server would have logged at a public exchange point. The
// generator composes the mechanisms built elsewhere in this library —
// exogenous link failures, multihomed failovers, policy fluctuation,
// stateless-vendor WWDup floods, unjittered-timer AADup oscillation, usage-
// coupled failure rates, maintenance windows, and named incidents — into a
// timestamp-ordered collector.Record stream whose classified shape matches
// the paper's published figures.
//
// The full nine months of Mae-East traffic (billions of raw updates at 1997
// scale) is far beyond what a laptop-scale discrete-event run can push
// through real session machinery, so the generator emits the *observed*
// stream at the collector directly; the micro-mechanisms that justify each
// pattern are validated separately by the live router/session/exchange
// simulations in their own packages. This substitution is documented in
// DESIGN.md.
package workload

import (
	"fmt"
	"math"
	"time"

	"instability/internal/topology"
)

// IncidentKind names a scripted disturbance.
type IncidentKind int

// Incident kinds.
const (
	// PathologicalFlood reproduces the ISP-I episode: one provider's
	// misconfigured stateless routers emit millions of duplicate
	// withdrawals in a day (Table 1, the 30M-update day).
	PathologicalFlood IncidentKind = iota
	// InfrastructureUpgrade reproduces the major ISP upgrade at the end of
	// May 1996: days of elevated instability across the board (the dark
	// vertical band of Figure 3 and the spike of Figure 10).
	InfrastructureUpgrade
	// CollectorOutage drops the collector for part of a day (the white
	// regions of Figure 3 and the gap in Figure 10).
	CollectorOutage

	// The adversarial scenarios below are the detection benchmark suite
	// (ROADMAP "attack & anomaly scenarios"): each active day emits one
	// scripted episode plus a labeled ground-truth interval retrievable
	// via Generator.GroundTruth. They draw from a dedicated RNG, so
	// adding them to a config never perturbs the background stream.

	// PrefixHijack has one exchange peer originate a set of victim
	// prefixes with itself as origin AS (a multi-origin conflict), hold
	// them for the episode, then withdraw.
	PrefixHijack
	// RouteLeak has one peer re-announce a large set of other peers'
	// routes with itself prepended (origin preserved — no MOAS), the
	// classic full-table leak.
	RouteLeak
	// PathPoisoning rapidly oscillates the AS-path variants of a few
	// targeted routes on a 30-second timer: concentrated AADiff churn.
	PathPoisoning
	// SessionResetStorm repeatedly bounces one peer's session: full
	// withdraw of its routes, session down/up, identical re-announce.
	SessionResetStorm
	// WormPropagation couples the exchange-wide event rate to a logistic
	// infection ramp: global volume novelty with no single culprit.
	WormPropagation
)

// String returns the scenario name used in ground-truth labels and CLI
// flags (background incidents use their Go identifier).
func (k IncidentKind) String() string {
	switch k {
	case PathologicalFlood:
		return "flood"
	case InfrastructureUpgrade:
		return "upgrade"
	case CollectorOutage:
		return "outage"
	case PrefixHijack:
		return "hijack"
	case RouteLeak:
		return "leak"
	case PathPoisoning:
		return "poison"
	case SessionResetStorm:
		return "storm"
	case WormPropagation:
		return "worm"
	}
	return fmt.Sprintf("IncidentKind(%d)", int(k))
}

// AdversaryScenarios lists the adversarial kinds in order, keyed by the
// names accepted by ParseScenario and emitted in ground-truth labels.
var AdversaryScenarios = []IncidentKind{
	PrefixHijack, RouteLeak, PathPoisoning, SessionResetStorm, WormPropagation,
}

// ParseScenario resolves an adversarial scenario name ("hijack", "leak",
// "poison", "storm", "worm").
func ParseScenario(name string) (IncidentKind, error) {
	for _, k := range AdversaryScenarios {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown scenario %q (want hijack|leak|poison|storm|worm)", name)
}

// adversarial reports whether the kind is one of the scripted attack
// scenarios.
func (k IncidentKind) adversarial() bool { return k >= PrefixHijack }

// Incident is one scripted disturbance.
type Incident struct {
	Kind IncidentKind
	// Day is the offset from the scenario start (0-based).
	Day int
	// Days is the duration in days (minimum 1).
	Days int
	// Magnitude scales the disturbance (1 = the paper's canonical episode).
	Magnitude float64
}

// Config parameterizes a scenario.
type Config struct {
	// Topology describes the AS-level Internet; zero value uses
	// topology defaults at full scale.
	Topology topology.Config
	// Exchange is the collection point (default "Mae-East").
	Exchange string
	// Start is the first instant of the scenario (default the paper's
	// March 1 1996).
	Start time.Time
	// Days is the scenario length.
	Days int
	// Seed drives all randomness.
	Seed int64

	// EventsPerRouteDay is the mean number of legitimate exogenous events
	// (link failures, circuit flaps, failovers) per route per day before
	// modulation. The paper's point is that observed updates vastly exceed
	// this underlying rate.
	EventsPerRouteDay float64
	// PolicyPerRouteDay is the mean rate of pure policy fluctuation
	// (attribute-only changes) per route per day.
	PolicyPerRouteDay float64
	// FlapEpisodeFrac is the fraction of events that develop into a
	// multi-cycle flap episode with 30/60 s periodicity (CSU oscillation,
	// IGP/BGP interaction) rather than a single clean transition.
	FlapEpisodeFrac float64
	// WWDupPerWithdraw is the mean number of spurious duplicate
	// withdrawals other (stateless) peers emit per observed legitimate
	// withdrawal.
	WWDupPerWithdraw float64
	// AADupPerAnnounce is the mean number of duplicate announcements an
	// unjittered-timer peer emits per legitimate announcement.
	AADupPerAnnounce float64

	// DiurnalAmplitude in [0,1] scales the day/night swing; WeekendFactor
	// scales weekend activity; TrendPerDay is the multiplicative daily
	// growth (the linear trend detrended in Figure 3).
	DiurnalAmplitude float64
	WeekendFactor    float64
	TrendPerDay      float64
	// MaintenanceBoost multiplies the rate during the ~10:00 EST
	// maintenance window (the horizontal line of Figure 3).
	MaintenanceBoost float64
	// SaturdaySpikeProb is the chance a given Saturday carries a localized
	// burst (the paper's "Saturdays often have high amounts of temporally
	// localized instability").
	SaturdaySpikeProb float64

	// MultihomingGrowthPerDay is the number of newly multihomed prefixes
	// added per day (Figure 10's linear growth).
	MultihomingGrowthPerDay float64

	// Incidents scripts named disturbances.
	Incidents []Incident
}

// DefaultConfig returns the paper-scale seven-month Mae-East scenario
// (March through September 1996), sized down so the whole campaign runs in
// seconds: the topology carries a few thousand routes instead of 42,000 and
// rates are set so pathological updates outnumber instability roughly an
// order of magnitude, as observed.
func DefaultConfig() Config {
	return Config{
		Topology: topology.Config{
			Backbones:           8,
			Regionals:           24,
			Customers:           400,
			PrefixesPerCustomer: 6,
		},
		Exchange: "Mae-East",
		Start:    time.Date(1996, 3, 1, 0, 0, 0, 0, time.UTC),
		Days:     214, // March 1 .. September 30
		Seed:     1996,

		// Calibrated against §6: a typical day touches under 20% of routes
		// with forwarding instability (3-10% see a WADiff, 5-20% an AADiff,
		// >80% stay stable) while pathological duplicates dominate volume.
		EventsPerRouteDay: 0.15,
		PolicyPerRouteDay: 0.12,
		FlapEpisodeFrac:   0.35,
		WWDupPerWithdraw:  12,
		AADupPerAnnounce:  4,

		DiurnalAmplitude:  0.65,
		WeekendFactor:     0.45,
		TrendPerDay:       0.0035,
		MaintenanceBoost:  3.0,
		SaturdaySpikeProb: 0.4,

		MultihomingGrowthPerDay: 2,

		Incidents: []Incident{
			// The late-May infrastructure upgrade (paper Figure 3/10).
			{Kind: InfrastructureUpgrade, Day: 87, Days: 12, Magnitude: 1},
			// A canonical pathological flood (Table 1's ISP-I analog).
			{Kind: PathologicalFlood, Day: 40, Days: 1, Magnitude: 1},
			// Collector outages produce the missing-data gaps.
			{Kind: CollectorOutage, Day: 120, Days: 2, Magnitude: 1},
		},
	}
}

// SmallConfig returns a one-week scenario on a small topology for tests.
func SmallConfig() Config {
	cfg := DefaultConfig()
	cfg.Topology = topology.Config{
		Backbones:           6,
		Regionals:           8,
		Customers:           80,
		PrefixesPerCustomer: 3,
	}
	cfg.Days = 7
	cfg.Incidents = nil
	return cfg
}

// scenarioMagnitude is the canonical episode magnitude per scenario in
// the detection benchmark configs (worm runs hotter so the global ramp
// clears the volume floor decisively).
func scenarioMagnitude(kind IncidentKind) float64 {
	if kind == WormPropagation {
		return 1.5
	}
	return 1
}

// ScenarioConfig returns a deterministic detection benchmark: the
// SmallConfig background plus `episodes` consecutive daily episodes of
// one adversarial scenario, starting after the detector's warmup window.
// Saturday spikes are disabled so the only injected anomalies are the
// labeled ones.
func ScenarioConfig(kind IncidentKind, episodes int, seed int64) Config {
	cfg := SmallConfig()
	cfg.Seed = seed
	cfg.SaturdaySpikeProb = 0
	cfg.Days = episodes + 3
	cfg.Incidents = []Incident{
		{Kind: kind, Day: 2, Days: episodes, Magnitude: scenarioMagnitude(kind)},
	}
	return cfg
}

// AdversaryConfig returns the combined detection benchmark: all five
// adversarial scenarios on consecutive days over the SmallConfig
// background.
func AdversaryConfig(seed int64) Config {
	cfg := SmallConfig()
	cfg.Seed = seed
	cfg.SaturdaySpikeProb = 0
	cfg.Days = 9
	cfg.Incidents = []Incident{
		{Kind: PrefixHijack, Day: 2, Days: 1, Magnitude: 1},
		{Kind: RouteLeak, Day: 3, Days: 1, Magnitude: 1},
		{Kind: PathPoisoning, Day: 4, Days: 1, Magnitude: 1},
		{Kind: SessionResetStorm, Day: 5, Days: 1, Magnitude: 1},
		{Kind: WormPropagation, Day: 6, Days: 1, Magnitude: 1.5},
	}
	return cfg
}

func (c Config) withDefaults() Config {
	if c.Exchange == "" {
		c.Exchange = "Mae-East"
	}
	if c.Start.IsZero() {
		c.Start = time.Date(1996, 3, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Days == 0 {
		c.Days = 7
	}
	return c
}

// DiurnalProfile returns the configured time-of-day usage weights (144
// ten-minute slots, UTC), without incidents or weekend scaling — the
// "network usage" curve against which the paper correlates instability. It
// mirrors the base shape the generator samples event times from.
func (c Config) DiurnalProfile() []float64 {
	w := make([]float64, 144)
	for s := range w {
		hUTC := float64(s) / 6.0
		h := hUTC - 5 // EST
		for h < 0 {
			h += 24
		}
		var base float64
		switch {
		case h < 6:
			base = 0.25
		case h < 9:
			base = 0.55
		case h < 12:
			base = 0.95
		case h < 18:
			base = 1.25
		default:
			base = 1.05
		}
		sin := 1 + c.DiurnalAmplitude*math.Sin(2*math.Pi*(h-9)/24)
		w[s] = (1-c.DiurnalAmplitude)*1 + c.DiurnalAmplitude*base*sin
	}
	return w
}
