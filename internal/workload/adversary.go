package workload

import (
	"math"
	"sort"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/detect"
	"instability/internal/netaddr"
)

// advSeedMix decorrelates the adversarial RNG stream from the background
// generator's without touching it: the scenarios are scripted on top of
// an unchanged background for any given seed.
const advSeedMix = 0x5adc0de5adc0de

// adversaryDay emits one scripted episode of inc onto out and records its
// ground-truth interval. All randomness comes from g.advRng.
func (g *Generator) adversaryDay(inc Incident, dayStart time.Time, out []collector.Record) []collector.Record {
	mag := inc.Magnitude
	if mag <= 0 {
		mag = 1
	}
	switch inc.Kind {
	case PrefixHijack:
		return g.hijackDay(mag, dayStart, out)
	case RouteLeak:
		return g.leakDay(mag, dayStart, out)
	case PathPoisoning:
		return g.poisonDay(mag, dayStart, out)
	case SessionResetStorm:
		return g.stormDay(mag, dayStart, out)
	case WormPropagation:
		return g.wormDay(mag, dayStart, out)
	}
	return out
}

// exchangePeers returns the exchange's peer list (sorted by ASN at
// topology generation).
func (g *Generator) exchangePeers() []bgp.ASN {
	return g.topo.Exchange(g.cfg.Exchange).Peers
}

// victimPrefixes picks up to n distinct prefixes that the excluded peer
// neither announces nor originates, returning one representative route
// index per prefix (deterministic: first-seen order over g.routes).
func (g *Generator) victimPrefixes(exclude bgp.ASN, n int) []int {
	out := make([]int, 0, n)
	seen := make(map[netaddr.Prefix]bool)
	for i, st := range g.routes {
		if len(out) >= n {
			break
		}
		r := st.route
		if r.PeerAS == exclude || r.Origin == exclude || seen[r.Prefix] {
			continue
		}
		servedByExcluded := false
		for _, j := range g.byPrefix[r.Prefix.String()] {
			if g.routes[j].route.PeerAS == exclude {
				servedByExcluded = true
				break
			}
		}
		if servedByExcluded {
			continue
		}
		seen[r.Prefix] = true
		out = append(out, i)
	}
	return out
}

// peerRouteCounts tallies routes per exchange peer; maxPeer returns the
// peer carrying the most routes (ties to the lowest ASN).
func (g *Generator) maxPeer() bgp.ASN {
	counts := make(map[bgp.ASN]int)
	for _, st := range g.routes {
		counts[st.route.PeerAS]++
	}
	best := bgp.ASN(0)
	bestN := -1
	peers := append([]bgp.ASN(nil), g.exchangePeers()...)
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	for _, p := range peers {
		if n := counts[p]; n > bestN {
			best, bestN = p, n
		}
	}
	return best
}

// hijackDay scripts a prefix hijack: the attacker announces victim
// prefixes with itself as origin (MOAS conflict), refreshes them on a
// 90-second timer for the episode, then withdraws.
func (g *Generator) hijackDay(mag float64, dayStart time.Time, out []collector.Record) []collector.Record {
	adv := g.advRng
	peers := g.exchangePeers()
	attacker := peers[adv.Intn(len(peers))]
	n := int(24 * mag)
	if n < 6 {
		n = 6
	}
	victims := g.victimPrefixes(attacker, n)
	if len(victims) == 0 {
		return out
	}
	start := dayStart.Add(13*time.Hour + time.Duration(adv.Intn(3600))*time.Second)
	dur := 40 * time.Minute
	addr := g.topo.ASes[attacker].RouterID
	attrs := g.tab.Attrs(bgp.Attrs{
		Origin:  bgp.OriginIGP,
		Path:    bgp.PathFromASNs(attacker),
		NextHop: addr,
	}).Attrs()
	for t := start; t.Before(start.Add(dur)); t = t.Add(90 * time.Second) {
		for j, vi := range victims {
			out = append(out, collector.Record{
				Time: t.Add(time.Duration(j) * 40 * time.Millisecond), Type: collector.Announce,
				PeerAS: attacker, PeerAddr: addr,
				Prefix: g.routes[vi].route.Prefix, Attrs: attrs,
			})
		}
	}
	end := start.Add(dur)
	for j, vi := range victims {
		out = append(out, collector.Record{
			Time: end.Add(time.Duration(j) * 40 * time.Millisecond), Type: collector.Withdraw,
			PeerAS: attacker, PeerAddr: addr,
			Prefix: g.routes[vi].route.Prefix,
		})
	}
	g.truths = append(g.truths, detect.Truth{
		Scenario: PrefixHijack.String(),
		Start:    start, End: end.Add(time.Minute),
		Peer: attacker, Prefixes: len(victims),
	})
	return out
}

// leakDay scripts a route leak: the leaker re-announces a large set of
// other peers' routes with itself prepended (origin preserved), then
// withdraws them all half an hour later.
func (g *Generator) leakDay(mag float64, dayStart time.Time, out []collector.Record) []collector.Record {
	adv := g.advRng
	peers := g.exchangePeers()
	leaker := peers[adv.Intn(len(peers))]
	n := int(120 * mag)
	if n < 40 {
		n = 40
	}
	victims := g.victimPrefixes(leaker, n)
	if len(victims) == 0 {
		return out
	}
	start := dayStart.Add(11*time.Hour + time.Duration(adv.Intn(1800))*time.Second)
	spread := 20 * time.Minute
	addr := g.topo.ASes[leaker].RouterID
	for j, vi := range victims {
		r := g.routes[vi].route
		attrs := g.tab.Attrs(bgp.Attrs{
			Origin:  bgp.OriginIGP,
			Path:    r.Path.Prepend(leaker),
			NextHop: addr,
		}).Attrs()
		out = append(out, collector.Record{
			Time: start.Add(time.Duration(j) * spread / time.Duration(len(victims))), Type: collector.Announce,
			PeerAS: leaker, PeerAddr: addr,
			Prefix: r.Prefix, Attrs: attrs,
		})
	}
	end := start.Add(30 * time.Minute)
	for j, vi := range victims {
		out = append(out, collector.Record{
			Time: end.Add(time.Duration(j) * 25 * time.Millisecond), Type: collector.Withdraw,
			PeerAS: leaker, PeerAddr: addr,
			Prefix: g.routes[vi].route.Prefix,
		})
	}
	g.truths = append(g.truths, detect.Truth{
		Scenario: RouteLeak.String(),
		Start:    start, End: end.Add(time.Minute),
		Peer: leaker, Prefixes: len(victims),
	})
	return out
}

// poisonDay scripts path poisoning: a handful of one peer's routes cycle
// through their AS-path variants on the 30-second timer — concentrated
// AADiff churn on targeted (peer, prefix) keys.
func (g *Generator) poisonDay(mag float64, dayStart time.Time, out []collector.Record) []collector.Record {
	adv := g.advRng
	target := g.maxPeer()
	var targets []*routeState
	for _, st := range g.routes {
		if st.route.PeerAS == target && len(st.variants) > 1 {
			targets = append(targets, st)
			if len(targets) == 8 {
				break
			}
		}
	}
	if len(targets) == 0 {
		return out
	}
	start := dayStart.Add(16*time.Hour + time.Duration(adv.Intn(1800))*time.Second)
	ticks := int(60 * mag)
	if ticks < 20 {
		ticks = 20
	}
	for c := 0; c < ticks; c++ {
		t := start.Add(time.Duration(c) * 30 * time.Second)
		for j, st := range targets {
			st.cur = (st.cur + 1) % len(st.variants)
			out = append(out, g.announce(st, t.Add(time.Duration(j)*20*time.Millisecond)))
		}
	}
	g.truths = append(g.truths, detect.Truth{
		Scenario: PathPoisoning.String(),
		Start:    start, End: start.Add(time.Duration(ticks) * 30 * time.Second),
		Peer: target, Prefixes: len(targets),
	})
	return out
}

// stormDay scripts a session-reset storm: the busiest peer's session
// bounces repeatedly, each cycle a full withdraw, session down/up pair,
// and identical re-announce of its table.
func (g *Generator) stormDay(mag float64, dayStart time.Time, out []collector.Record) []collector.Record {
	adv := g.advRng
	peer := g.maxPeer()
	var mine []*routeState
	for _, st := range g.routes {
		if st.route.PeerAS == peer {
			mine = append(mine, st)
		}
	}
	if len(mine) == 0 {
		return out
	}
	cycles := int(6 * mag)
	if cycles < 3 {
		cycles = 3
	}
	period := 3 * time.Minute
	start := dayStart.Add(20*time.Hour + time.Duration(adv.Intn(900))*time.Second)
	addr := g.topo.ASes[peer].RouterID
	for c := 0; c < cycles; c++ {
		down := start.Add(time.Duration(c) * period)
		out = append(out, collector.Record{
			Time: down, Type: collector.SessionDown, PeerAS: peer, PeerAddr: addr,
		})
		for j, st := range mine {
			if st.up {
				out = append(out, g.withdraw(st, down.Add(time.Duration(1+j)*30*time.Millisecond)))
			}
		}
		up := down.Add(80 * time.Second)
		out = append(out, collector.Record{
			Time: up, Type: collector.SessionUp, PeerAS: peer, PeerAddr: addr,
		})
		for j, st := range mine {
			out = append(out, g.announce(st, up.Add(time.Duration(1+j)*30*time.Millisecond)))
		}
	}
	g.truths = append(g.truths, detect.Truth{
		Scenario: SessionResetStorm.String(),
		Start:    start, End: start.Add(time.Duration(cycles) * period),
		Peer: peer, Prefixes: len(mine),
	})
	return out
}

// wormDay couples the exchange-wide event rate to a logistic infection
// ramp: extra withdraw/re-announce and path-shift events across random
// routes, densest at the infection midpoint — volume novelty with no
// single responsible peer.
func (g *Generator) wormDay(mag float64, dayStart time.Time, out []collector.Record) []collector.Record {
	adv := g.advRng
	start := dayStart.Add(12*time.Hour + time.Duration(adv.Intn(600))*time.Second)
	dur := 4 * time.Hour
	// Worm outbreaks (Code Red, Nimda, Slammer) drove order-of-magnitude
	// BGP update surges; scale the extra volume accordingly.
	nExtra := poissonRand(adv, g.cfg.EventsPerRouteDay*float64(len(g.routes))*30*mag)
	for i := 0; i < nExtra; i++ {
		// Event times follow the logistic infection curve via its
		// inverse CDF, clamped to the episode.
		u := adv.Float64()
		if u < 1e-9 {
			u = 1e-9
		} else if u > 1-1e-9 {
			u = 1 - 1e-9
		}
		x := 0.5 + math.Log(u/(1-u))/10
		if x < 0 {
			x = 0
		} else if x > 1 {
			x = 1
		}
		t := start.Add(time.Duration(float64(dur) * x))
		st := g.routes[adv.Intn(len(g.routes))]
		switch {
		case !st.up:
			out = append(out, g.announce(st, t))
		case adv.Intn(3) == 0 && len(st.variants) > 1:
			st.cur = (st.cur + 1) % len(st.variants)
			out = append(out, g.announce(st, t))
		default:
			out = append(out, g.withdraw(st, t))
			out = append(out, g.announce(st, t.Add(30*time.Second)))
		}
	}
	g.truths = append(g.truths, detect.Truth{
		Scenario: WormPropagation.String(),
		Start:    start, End: start.Add(dur),
	})
	return out
}
