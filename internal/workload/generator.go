package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/detect"
	"instability/internal/intern"
	"instability/internal/topology"
)

// Generator synthesizes the observed update stream for one scenario.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	topo *topology.Topology
	// tab canonicalizes emitted attribute tuples: the stream is duplicate-
	// dominated by construction, so every repeat announcement shares one
	// Attrs value (path and communities included) instead of assembling a
	// fresh tuple per record.
	tab *intern.Table

	routes []*routeState
	// byPrefix groups route indexes by prefix (for multihoming growth and
	// upgrade incidents).
	byPrefix map[string][]int
	// statelessPeers are exchange peers running the stateless vendor; they
	// are the source of spurious withdrawals for prefixes they never
	// announced.
	statelessPeers []peerInfo

	stats Stats

	// Per-day scratch buffers, reused across generateDay calls so steady-
	// state emission does not reallocate the day's record and event slices.
	// None of this affects the RNG call sequence: reuse changes where bytes
	// land, never how many variates are drawn.
	dayBuf     []collector.Record
	cumBuf     []float64
	eventBuf   []pendingEvent
	propensity map[bgp.ASN]float64

	// advRng drives the adversarial scenarios only (nil unless one is
	// configured), so scripting an attack never perturbs the background
	// stream's RNG sequence. truths collects the labeled ground-truth
	// intervals those scenarios emit.
	advRng *rand.Rand
	truths []detect.Truth
}

// pendingEvent is one drawn-but-not-yet-expanded instability event.
type pendingEvent struct {
	idx    int
	t      time.Time
	policy bool
}

type peerInfo struct {
	as   bgp.ASN
	addr topology.AS // unused fields kept small; we only need ASN+router id
}

// routeState tracks one (peer, prefix) route's current announced state.
type routeState struct {
	route    topology.Route
	vendor   topology.VendorProfile
	variants []bgp.ASPath
	cur      int
	up       bool
	policyC  uint16
	// attrsCache holds the interned canonical Attrs for the current
	// (cur, policyC) pair. Records share it read-only; it is rebuilt and
	// re-interned only when the variant or policy counter moves, so steady
	// duplicate announcements emit with zero allocations.
	attrsCache  bgp.Attrs
	attrsCur    int
	attrsPolicy uint16
	attrsOK     bool
}

// Stats summarizes a run.
type Stats struct {
	Records      int
	Days         int
	OutageDays   map[int]bool
	FloodRecords int
	// AdversaryRecords counts records emitted by adversarial scenarios.
	AdversaryRecords int
}

// New builds a generator (and its topology) from cfg.
func New(cfg Config) (*Generator, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	topo := topology.Generate(cfg.Topology, rng)
	if topo.Exchange(cfg.Exchange) == nil {
		return nil, fmt.Errorf("workload: unknown exchange %q", cfg.Exchange)
	}
	g := &Generator{
		cfg:      cfg,
		rng:      rng,
		topo:     topo,
		tab:      intern.New(),
		byPrefix: make(map[string][]int),
		stats:    Stats{OutageDays: make(map[int]bool)},
	}
	for _, r := range topo.RoutesAt(cfg.Exchange) {
		vendor := topo.ASes[r.PeerAS].Vendor
		st := &routeState{
			route:  r,
			vendor: vendor,
			variants: []bgp.ASPath{
				r.Path,
				r.Path.Prepend(r.PeerAS), // single prepend variant
				r.Path.Prepend(r.PeerAS).Prepend(r.PeerAS), // double prepend
			},
		}
		g.routes = append(g.routes, st)
		g.byPrefix[r.Prefix.String()] = append(g.byPrefix[r.Prefix.String()], len(g.routes)-1)
	}
	for _, p := range topo.Exchange(cfg.Exchange).Peers {
		if topo.ASes[p].Vendor.Stateless {
			g.statelessPeers = append(g.statelessPeers, peerInfo{as: p, addr: *topo.ASes[p]})
		}
	}
	for _, inc := range cfg.Incidents {
		if inc.Kind.adversarial() {
			g.advRng = rand.New(rand.NewSource(cfg.Seed ^ advSeedMix))
			break
		}
	}
	return g, nil
}

// GroundTruth returns the labeled anomaly intervals emitted by the
// adversarial scenarios generated so far (complete after Run).
func (g *Generator) GroundTruth() []detect.Truth {
	out := make([]detect.Truth, len(g.truths))
	copy(out, g.truths)
	return out
}

// Topology exposes the generated topology.
func (g *Generator) Topology() *topology.Topology { return g.topo }

// Routes returns the number of (peer, prefix) routes at the exchange.
func (g *Generator) Routes() int { return len(g.routes) }

// Stats returns run statistics (valid after Run).
func (g *Generator) Stats() Stats { return g.stats }

// Run generates the scenario, delivering records in timestamp order to
// onRecord and calling onDayEnd after each simulated day. Either callback
// may be nil.
func (g *Generator) Run(onRecord func(collector.Record), onDayEnd func(day int, end time.Time)) Stats {
	emitDay := func(day int, recs []collector.Record) {
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })
		for _, r := range recs {
			g.stats.Records++
			if onRecord != nil {
				onRecord(r)
			}
		}
	}

	for day := 0; day < g.cfg.Days; day++ {
		recs := g.generateDay(day)
		emitDay(day, recs)
		if onDayEnd != nil {
			onDayEnd(day, g.cfg.Start.AddDate(0, 0, day+1))
		}
	}
	g.stats.Days = g.cfg.Days
	return g.stats
}

// announce emits an announcement record for route st with its current
// variant and policy value.
func (g *Generator) announce(st *routeState, t time.Time) collector.Record {
	st.up = true
	if !st.attrsOK || st.attrsCur != st.cur || st.attrsPolicy != st.policyC {
		attrs := bgp.Attrs{
			Origin:  bgp.OriginIGP,
			Path:    st.variants[st.cur],
			NextHop: st.route.PeerAddr,
		}
		if st.policyC > 0 {
			attrs.Communities = []bgp.Community{bgp.Community(uint32(st.route.PeerAS)<<16 | uint32(st.policyC))}
		}
		st.attrsCache = g.tab.Attrs(attrs).Attrs()
		st.attrsCur, st.attrsPolicy, st.attrsOK = st.cur, st.policyC, true
	}
	return collector.Record{
		Time: t, Type: collector.Announce,
		PeerAS: st.route.PeerAS, PeerAddr: st.route.PeerAddr,
		Prefix: st.route.Prefix, Attrs: st.attrsCache,
	}
}

func (g *Generator) withdraw(st *routeState, t time.Time) collector.Record {
	st.up = false
	return collector.Record{
		Time: t, Type: collector.Withdraw,
		PeerAS: st.route.PeerAS, PeerAddr: st.route.PeerAddr,
		Prefix: st.route.Prefix,
	}
}

// generateDay produces one day of records. The returned slice is valid until
// the next generateDay call: its backing array is reused day over day (the
// records themselves are consumed by value before the next day is built).
func (g *Generator) generateDay(day int) []collector.Record {
	cfg := g.cfg
	dayStart := cfg.Start.AddDate(0, 0, day)
	recs := g.dayBuf[:0]
	defer func() { g.dayBuf = recs[:0] }()

	// Day 0 opens with the initial table transfer.
	if day == 0 {
		t := dayStart
		for _, st := range g.routes {
			recs = append(recs, g.announce(st, t))
			t = t.Add(37 * time.Millisecond)
		}
	}

	// Scripted incidents in effect today.
	var upgrade, flood bool
	var floodMag float64
	var adversaries []Incident
	for _, inc := range cfg.Incidents {
		days := inc.Days
		if days < 1 {
			days = 1
		}
		if day < inc.Day || day >= inc.Day+days {
			continue
		}
		switch inc.Kind {
		case InfrastructureUpgrade:
			upgrade = true
		case PathologicalFlood:
			flood = true
			floodMag = inc.Magnitude
		case CollectorOutage:
			g.stats.OutageDays[day] = true
		default:
			if inc.Kind.adversarial() {
				adversaries = append(adversaries, inc)
			}
		}
	}

	// Usage modulation.
	weekday := dayStart.Weekday()
	dayFactor := math.Exp(cfg.TrendPerDay * float64(day))
	if weekday == time.Saturday || weekday == time.Sunday {
		dayFactor *= cfg.WeekendFactor
	}
	if upgrade {
		dayFactor *= 5
	}
	slotW := g.slotWeights(day, weekday)

	// Multihoming growth: new second paths appear for previously
	// single-homed prefixes (permanently), plus a temporary surge during
	// the upgrade incident.
	growth := int(cfg.MultihomingGrowthPerDay)
	if cfg.MultihomingGrowthPerDay > float64(growth) && g.rng.Float64() < cfg.MultihomingGrowthPerDay-float64(growth) {
		growth++
	}
	if upgrade {
		growth += int(20 * 1.0)
	}
	for i := 0; i < growth; i++ {
		if st := g.addSecondPath(); st != nil {
			recs = append(recs, g.announce(st, g.sampleTime(dayStart, slotW)))
		}
	}

	// Instability is not proportional to an AS's table share: customer
	// behavior, aggregation quality and router vendor make some providers'
	// route sets far noisier than others on any given day (the paper's
	// Figure 6 finds no size correlation). Model this with a heavy-tailed
	// per-peer propensity redrawn daily.
	if g.propensity == nil {
		g.propensity = make(map[bgp.ASN]float64)
	} else {
		clear(g.propensity)
	}
	propensity := g.propensity
	for _, peer := range g.topo.Exchange(cfg.Exchange).Peers {
		propensity[peer] = math.Exp(g.rng.NormFloat64() * 1.1)
	}
	if cap(g.cumBuf) < len(g.routes) {
		g.cumBuf = make([]float64, len(g.routes))
	}
	cum := g.cumBuf[:len(g.routes)]
	total := 0.0
	for i, st := range g.routes {
		total += propensity[st.route.PeerAS]
		cum[i] = total
	}
	pickRoute := func() int {
		r := g.rng.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	// Draw the day's events first, then expand them in time order so each
	// route's state transitions follow the clock.
	nEvents := g.poisson(cfg.EventsPerRouteDay * float64(len(g.routes)) * dayFactor)
	nPolicy := g.poisson(cfg.PolicyPerRouteDay * float64(len(g.routes)) * dayFactor)
	events := g.eventBuf[:0]
	for i := 0; i < nEvents; i++ {
		idx := pickRoute()
		t := g.quantize(g.routes[idx], g.sampleTime(dayStart, slotW))
		events = append(events, pendingEvent{idx: idx, t: t})
	}
	for i := 0; i < nPolicy; i++ {
		idx := pickRoute()
		t := g.quantize(g.routes[idx], g.sampleTime(dayStart, slotW))
		events = append(events, pendingEvent{idx: idx, t: t, policy: true})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].t.Before(events[j].t) })
	for _, ev := range events {
		st := g.routes[ev.idx]
		if ev.policy {
			if !st.up {
				continue
			}
			st.policyC++
			recs = append(recs, g.announce(st, ev.t))
			continue
		}
		recs = g.eventPattern(st, ev.t, dayStart, recs)
	}
	g.eventBuf = events[:0]

	// Pathological flood (the ISP-I episode): one stateless provider
	// repeatedly withdraws a large set of prefixes it never announced, on a
	// strict 30-second cycle for most of the day.
	if flood && len(g.statelessPeers) > 0 {
		p := g.statelessPeers[g.rng.Intn(len(g.statelessPeers))]
		nPrefixes := len(g.routes) / 3
		cycles := int(120 * floodMag) // repetitions over the day
		before := len(recs)
		for c := 0; c < cycles; c++ {
			base := dayStart.Add(6*time.Hour + time.Duration(c)*(30*time.Second)*time.Duration(1+len(g.routes)/1500))
			for j := 0; j < nPrefixes; j++ {
				st := g.routes[j%len(g.routes)]
				if st.route.PeerAS == p.as {
					continue
				}
				recs = append(recs, collector.Record{
					Time: base.Add(time.Duration(j) * 25 * time.Millisecond), Type: collector.Withdraw,
					PeerAS: p.as, PeerAddr: p.addr.RouterID,
					Prefix: st.route.Prefix,
				})
			}
		}
		g.stats.FloodRecords += len(recs) - before
	}

	// Collector outage: drop records inside the outage window (here the
	// whole day after 06:00, leaving partial data as in the real gaps).
	if g.stats.OutageDays[day] {
		cut := dayStart.Add(6 * time.Hour)
		kept := recs[:0]
		for _, r := range recs {
			if r.Time.Before(cut) {
				kept = append(kept, r)
			}
		}
		recs = kept
	}

	// Adversarial episodes ride on top of (and are never censored by)
	// the background machinery: one scripted episode per active day,
	// each recording its ground-truth interval.
	for _, inc := range adversaries {
		before := len(recs)
		recs = g.adversaryDay(inc, dayStart, recs)
		g.stats.AdversaryRecords += len(recs) - before
	}
	return recs
}

// eventPattern expands one exogenous event into its observed update
// sequence, including pathological amplification, appending onto out.
func (g *Generator) eventPattern(st *routeState, t time.Time, dayStart time.Time, out []collector.Record) []collector.Record {
	cfg := g.cfg
	end := dayStart.Add(24*time.Hour - time.Second)
	clamp := func(x time.Time) time.Time {
		if x.After(end) {
			return end
		}
		return x
	}

	emitWithdraw := func(at time.Time) {
		out = append(out, g.withdraw(st, at))
		// Stateless peers at the exchange relay spurious withdrawals for
		// the withdrawn prefix at their own 30-second timer beat.
		n := g.poisson(cfg.WWDupPerWithdraw)
		for i := 0; i < n && len(g.statelessPeers) > 0; i++ {
			p := g.statelessPeers[g.rng.Intn(len(g.statelessPeers))]
			if p.as == st.route.PeerAS {
				continue
			}
			// Beats stay on the 30 s grid and within the paper's sub-five-
			// minute persistence window.
			beat := time.Duration(1+i%9) * 30 * time.Second
			out = append(out, collector.Record{
				Time: clamp(at.Add(beat)), Type: collector.Withdraw,
				PeerAS: p.as, PeerAddr: p.addr.RouterID,
				Prefix: st.route.Prefix,
			})
		}
	}
	emitAnnounce := func(at time.Time) {
		out = append(out, g.announce(st, at))
		// Unjittered-timer vendors re-send duplicates on the next timer
		// intervals (the A1,A2,A1 artifact).
		if st.vendor.UnjitteredTimer {
			n := g.poisson(cfg.AADupPerAnnounce)
			for i := 0; i < n; i++ {
				dup := g.announce(st, clamp(at.Add(time.Duration(1+i)*30*time.Second)))
				out = append(out, dup)
			}
		}
	}

	if !st.up {
		// The route is currently down; the event restores it.
		emitAnnounce(t)
		return out
	}

	cycles := 1
	if g.rng.Float64() < cfg.FlapEpisodeFrac {
		// A persistent oscillation: the paper reports persistence mostly
		// under five minutes with 30/60 s periodicity.
		cycles = 2 + g.rng.Intn(4)
	}
	period := 30 * time.Second
	if g.rng.Intn(2) == 0 {
		period = 60 * time.Second
	}

	if len(st.variants) > 1 && g.rng.Float64() < 0.35 {
		// Implicit replacement (AADiff): the peer switches path variants in
		// place, possibly several times.
		for c := 0; c < cycles; c++ {
			st.cur = (st.cur + 1) % len(st.variants)
			emitAnnounce(clamp(t.Add(time.Duration(c) * period)))
		}
		return out
	}

	// Explicit outage: withdraw then re-announce. Most recoveries restore
	// the identical route (WADup); some come back on a different variant
	// (WADiff).
	for c := 0; c < cycles; c++ {
		down := clamp(t.Add(time.Duration(c) * 2 * period))
		up := clamp(down.Add(period))
		emitWithdraw(down)
		if g.rng.Float64() < 0.25 {
			st.cur = (st.cur + 1) % len(st.variants)
		}
		emitAnnounce(up)
	}
	return out
}

// addSecondPath promotes a single-homed prefix to multihomed by giving it a
// route via another exchange peer; returns the new route's state or nil when
// no candidate exists.
func (g *Generator) addSecondPath() *routeState {
	peers := g.topo.Exchange(g.cfg.Exchange).Peers
	if len(peers) < 2 {
		return nil
	}
	// Draw a random prefix with exactly one route.
	for tries := 0; tries < 16; tries++ {
		idx := g.rng.Intn(len(g.routes))
		st := g.routes[idx]
		key := st.route.Prefix.String()
		if len(g.byPrefix[key]) != 1 {
			continue
		}
		var newPeer bgp.ASN
		for ptries := 0; ptries < 8; ptries++ {
			p := peers[g.rng.Intn(len(peers))]
			if p != st.route.PeerAS {
				newPeer = p
				break
			}
		}
		if newPeer == 0 {
			return nil
		}
		peerAS := g.topo.ASes[newPeer]
		path := bgp.PathFromASNs(newPeer, st.route.Origin)
		nr := topology.Route{
			PeerAS:   newPeer,
			PeerAddr: peerAS.RouterID,
			Prefix:   st.route.Prefix,
			Path:     path,
			Origin:   st.route.Origin,
		}
		ns := &routeState{
			route:  nr,
			vendor: peerAS.Vendor,
			variants: []bgp.ASPath{
				path,
				path.Prepend(newPeer),
			},
		}
		g.routes = append(g.routes, ns)
		g.byPrefix[key] = append(g.byPrefix[key], len(g.routes)-1)
		return ns
	}
	return nil
}

// slotWeights builds the 144-slot (ten-minute) time-of-day sampling weights:
// the configured diurnal usage curve, a maintenance bump near 10:00 EST, and
// occasional Saturday bursts.
func (g *Generator) slotWeights(_ int, weekday time.Weekday) []float64 {
	w := g.cfg.DiurnalProfile()
	for s := range w {
		h := math.Mod(float64(s)/6.0-5+24, 24) // EST hour
		// Maintenance window ~10:00 EST.
		if h >= 9.75 && h < 10.25 {
			w[s] *= g.cfg.MaintenanceBoost
		}
	}
	if weekday == time.Saturday && g.rng.Float64() < g.cfg.SaturdaySpikeProb {
		spikeSlot := g.rng.Intn(144)
		for d := 0; d < 3; d++ {
			w[(spikeSlot+d)%144] *= 8
		}
	}
	return w
}

// sampleTime draws a time of day from the slot weights.
func (g *Generator) sampleTime(dayStart time.Time, w []float64) time.Time {
	total := 0.0
	for _, x := range w {
		total += x
	}
	r := g.rng.Float64() * total
	for s, x := range w {
		r -= x
		if r <= 0 {
			within := time.Duration(g.rng.Float64() * float64(10*time.Minute))
			return dayStart.Add(time.Duration(s)*10*time.Minute + within)
		}
	}
	return dayStart.Add(24*time.Hour - time.Second)
}

// quantize snaps event times to the 30-second timer grid for unjittered
// vendors — the origin of the paper's Figure 8 periodicity.
func (g *Generator) quantize(st *routeState, t time.Time) time.Time {
	if !st.vendor.UnjitteredTimer {
		return t
	}
	return t.Truncate(30 * time.Second)
}

// poisson draws a Poisson variate with mean lambda (normal approximation for
// large lambda).
func (g *Generator) poisson(lambda float64) int { return poissonRand(g.rng, lambda) }

func poissonRand(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
