package workload

import (
	"math"
	"testing"
	"time"

	"instability/internal/collector"
	"instability/internal/core"
)

// runSmall classifies a small scenario and returns the accumulator plus the
// classifier.
func runSmall(t *testing.T, mutate func(*Config)) (*core.Accumulator, *core.Classifier, *Generator) {
	t.Helper()
	cfg := SmallConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cls := core.NewClassifier()
	acc := core.NewAccumulator()
	var prev time.Time
	g.Run(func(r collector.Record) {
		if r.Time.Before(prev) {
			t.Fatalf("records out of order: %v after %v", r.Time, prev)
		}
		prev = r.Time
		acc.Add(cls.Classify(r))
	}, func(day int, end time.Time) {
		acc.EndDay(cls, core.DateOf(end.Add(-time.Second)))
	})
	return acc, cls, g
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := SmallConfig()
	g1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var recs1 []collector.Record
	g1.Run(func(r collector.Record) { recs1 = append(recs1, r) }, nil)
	g2, _ := New(cfg)
	i := 0
	mismatch := false
	g2.Run(func(r collector.Record) {
		if i >= len(recs1) || recs1[i].String() != r.String() {
			mismatch = true
		}
		i++
	}, nil)
	if mismatch || i != len(recs1) {
		t.Fatalf("same seed produced different streams (len %d vs %d)", len(recs1), i)
	}
	if len(recs1) == 0 {
		t.Fatal("no records")
	}
}

func TestGeneratorUnknownExchange(t *testing.T) {
	cfg := SmallConfig()
	cfg.Exchange = "LINX"
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown exchange accepted")
	}
}

func TestPathologyDominatesInstability(t *testing.T) {
	acc, _, _ := runSmall(t, nil)
	tot := acc.TotalCounts()
	instability := tot[core.AADiff] + tot[core.WADiff] + tot[core.WADup]
	pathological := tot[core.AADup] + tot[core.WWDup]
	if pathological <= instability {
		t.Fatalf("pathological %d should dominate instability %d", pathological, instability)
	}
	if tot[core.WWDup] == 0 || tot[core.AADup] == 0 {
		t.Fatalf("missing pathology classes: %v", tot)
	}
	// All instability classes must be represented.
	for _, c := range []core.Class{core.AADiff, core.WADiff, core.WADup} {
		if tot[c] == 0 {
			t.Fatalf("class %v absent: %v", c, tot)
		}
	}
}

func TestMajorityOfRoutesStable(t *testing.T) {
	acc, _, g := runSmall(t, nil)
	// Skip day 0 (initial table transfer skews coverage).
	dates := acc.Dates()
	for _, d := range dates[1:] {
		s := acc.Days[d]
		if s.TotalTable == 0 {
			continue
		}
		wadiff := s.RoutesAffected(func(c *[core.NumClasses]int) bool { return c[core.WADiff] > 0 })
		aadiff := s.RoutesAffected(func(c *[core.NumClasses]int) bool { return c[core.AADiff] > 0 })
		instab := s.RoutesAffected(func(c *[core.NumClasses]int) bool {
			return c[core.WADiff] > 0 || c[core.AADiff] > 0 || c[core.WADup] > 0
		})
		table := float64(s.TotalTable)
		if frac := float64(wadiff) / table; frac > 0.15 {
			t.Errorf("%v: WADiff touched %.0f%% of routes", d, frac*100)
		}
		if frac := float64(aadiff) / table; frac > 0.30 {
			t.Errorf("%v: AADiff touched %.0f%% of routes", d, frac*100)
		}
		if frac := float64(instab) / table; frac > 0.45 {
			t.Errorf("%v: instability touched %.0f%% of routes (want <45%%, paper: >80%% stable)", d, frac*100)
		}
	}
	_ = g
}

func TestThirtySecondPeriodicity(t *testing.T) {
	acc, _, _ := runSmall(t, nil)
	// Figure 8: the 30s and 1m bins dominate the inter-arrival histograms
	// of the pathological classes.
	var wwBins, aaBins [core.NumBins]int
	for _, s := range acc.Days {
		for b := 0; b < core.NumBins; b++ {
			wwBins[b] += s.InterArrival[core.WWDup][b]
			aaBins[b] += s.InterArrival[core.AADup][b]
		}
	}
	check := func(name string, bins [core.NumBins]int) {
		total, mass3060 := 0, 0
		for b, v := range bins {
			total += v
			if b == 2 || b == 3 { // 30s and 1m bins
				mass3060 += v
			}
		}
		if total == 0 {
			t.Fatalf("%s: empty histogram", name)
		}
		if frac := float64(mass3060) / float64(total); frac < 0.4 {
			t.Errorf("%s: 30s+1m bins carry %.0f%% of mass, want >=40%%", name, frac*100)
		}
	}
	check("WWDup", wwBins)
	check("AADup", aaBins)
}

func TestDiurnalCycle(t *testing.T) {
	acc, _, _ := runSmall(t, func(c *Config) { c.Days = 14 })
	_, hourly := acc.HourlySeries()
	if len(hourly) != 14*24 {
		t.Fatalf("hourly len %d", len(hourly))
	}
	// Aggregate by hour of day (UTC): EST night 00-06 is UTC 05-11.
	var byHour [24]float64
	for i, v := range hourly {
		byHour[i%24] += v
	}
	night := byHour[6] + byHour[7] + byHour[8] + byHour[9] // 01:00-05:00 EST
	day := byHour[17] + byHour[18] + byHour[19] + byHour[20]
	if day <= night*1.3 {
		t.Fatalf("no diurnal cycle: day %v vs night %v", day, night)
	}
}

func TestWeekendDip(t *testing.T) {
	acc, _, _ := runSmall(t, func(c *Config) {
		c.Days = 28
		c.SaturdaySpikeProb = 0 // isolate the weekday/weekend contrast
	})
	var weekSum, weekN, wkndSum, wkndN float64
	dates := acc.Dates()
	for _, d := range dates[1:] {
		s := acc.Days[d]
		v := float64(s.Instability())
		if wd := d.Weekday(); wd == time.Saturday || wd == time.Sunday {
			wkndSum += v
			wkndN++
		} else {
			weekSum += v
			weekN++
		}
	}
	if wkndN == 0 || weekN == 0 {
		t.Fatal("no weekend days in sample")
	}
	if wkndSum/wkndN >= 0.8*weekSum/weekN {
		t.Fatalf("weekend %v not below weekday %v", wkndSum/wkndN, weekSum/weekN)
	}
}

func TestPathologicalFloodIncident(t *testing.T) {
	accBase, _, _ := runSmall(t, func(c *Config) { c.Days = 3 })
	accFlood, _, gf := runSmall(t, func(c *Config) {
		c.Days = 3
		c.Incidents = []Incident{{Kind: PathologicalFlood, Day: 1, Magnitude: 1}}
	})
	if gf.Stats().FloodRecords == 0 {
		t.Fatal("flood generated no records")
	}
	baseTotal := accBase.TotalCounts()
	floodTotal := accFlood.TotalCounts()
	if floodTotal[core.WWDup] < 10*baseTotal[core.WWDup] {
		t.Fatalf("flood WWDup %d not an order of magnitude above base %d",
			floodTotal[core.WWDup], baseTotal[core.WWDup])
	}
}

func TestCollectorOutageDropsAfternoon(t *testing.T) {
	acc, _, g := runSmall(t, func(c *Config) {
		c.Days = 3
		c.Incidents = []Incident{{Kind: CollectorOutage, Day: 1, Magnitude: 1}}
	})
	if !g.Stats().OutageDays[1] {
		t.Fatal("outage day not recorded")
	}
	dates := acc.Dates()
	if len(dates) < 3 {
		t.Fatalf("days %v", dates)
	}
	outDay := acc.Days[dates[1]]
	// Slots after 06:00 UTC must be empty on the outage day.
	for slot := 40; slot < core.TenMinBins; slot++ {
		if outDay.TenMinAll[slot] != 0 {
			t.Fatalf("records present in slot %d of outage day", slot)
		}
	}
}

func TestUpgradeIncidentRaisesActivity(t *testing.T) {
	acc, _, _ := runSmall(t, func(c *Config) {
		c.Days = 6
		c.Incidents = []Incident{{Kind: InfrastructureUpgrade, Day: 3, Days: 2, Magnitude: 1}}
	})
	dates := acc.Dates()
	normal := float64(acc.Days[dates[1]].Instability()+acc.Days[dates[2]].Instability()) / 2
	upgrade := float64(acc.Days[dates[3]].Instability()+acc.Days[dates[4]].Instability()) / 2
	if upgrade < 2*normal {
		t.Fatalf("upgrade days %v not elevated above normal %v", upgrade, normal)
	}
}

func TestMultihomingGrowth(t *testing.T) {
	cfg := SmallConfig()
	cfg.Days = 10
	cfg.MultihomingGrowthPerDay = 5
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := g.Routes()
	g.Run(nil, nil)
	after := g.Routes()
	if after <= before {
		t.Fatal("no route growth")
	}
	if growth := after - before; growth < 30 || growth > 70 {
		t.Fatalf("growth %d over 10 days at 5/day", growth)
	}
}

func TestNoSinglePeerDominatesInstability(t *testing.T) {
	acc, _, _ := runSmall(t, func(c *Config) { c.Days = 10 })
	// Figure 6: instability share should roughly track table share; no peer
	// should contribute the majority of instability across the run.
	instByPeer := map[core.PeerKey]int{}
	total := 0
	for _, s := range acc.Days {
		for p, pd := range s.ByPeer {
			v := pd.Counts[core.AADiff] + pd.Counts[core.WADiff] + pd.Counts[core.WADup]
			instByPeer[p] += v
			total += v
		}
	}
	if total == 0 {
		t.Fatal("no instability")
	}
	for p, v := range instByPeer {
		if frac := float64(v) / float64(total); frac > 0.6 {
			t.Fatalf("peer %v contributes %.0f%% of instability", p, frac*100)
		}
	}
}

func TestInstabilityCorrelatesWithUsage(t *testing.T) {
	// §5.1: "the measured routing instability corresponds so closely to the
	// trends seen in Internet bandwidth usage". The generator couples event
	// rates to the usage curve; the classified hourly profile must correlate
	// strongly with the configured diurnal profile.
	acc, _, g := runSmall(t, func(c *Config) { c.Days = 21 })
	_, hourly := acc.HourlySeries()
	var byHour [24]float64
	for i, v := range hourly {
		byHour[i%24] += v
	}
	profile := g.cfg.DiurnalProfile()
	var usageByHour [24]float64
	for s, v := range profile {
		usageByHour[s/6] += v
	}
	r := pearson(byHour[:], usageByHour[:])
	if r < 0.7 {
		t.Fatalf("instability/usage correlation %v, want strong positive", r)
	}
}

func pearson(xs, ys []float64) float64 {
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(len(xs))
	my /= float64(len(ys))
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / mathSqrt(sxx*syy)
}

func mathSqrt(x float64) float64 { return math.Sqrt(x) }
