// Package events provides the deterministic discrete-event simulation kernel
// that drives every scenario in this library. Virtual time lets a nine-month
// measurement campaign like the paper's run in seconds, and seeding makes
// every run byte-for-byte reproducible.
package events

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Sim is a single-threaded discrete-event simulator. Handlers scheduled on
// the simulator run in strict timestamp order; ties are broken by scheduling
// order, so execution is deterministic.
type Sim struct {
	now     time.Time
	queue   eventHeap
	seq     uint64
	seed    int64
	streams map[string]*rand.Rand
	// Stop condition; when set, Run returns once now passes the horizon.
	horizon time.Time
	stopped bool
	// processed counts events executed, for progress accounting and runaway
	// detection in tests.
	processed uint64
}

// Timer is a handle for a scheduled event that can be cancelled.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the event was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled {
		return false
	}
	t.ev.cancelled = true
	return true
}

type event struct {
	at        time.Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Epoch is the default simulation start: the first day of the paper's
// seven-month analysis window.
var Epoch = time.Date(1996, time.March, 1, 0, 0, 0, 0, time.UTC)

// New returns a simulator starting at Epoch with the given master seed.
func New(seed int64) *Sim {
	return NewAt(seed, Epoch)
}

// NewAt returns a simulator starting at the given instant.
func NewAt(seed int64, start time.Time) *Sim {
	return &Sim{now: start, seed: seed, streams: make(map[string]*rand.Rand)}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.now }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Schedule runs fn after delay of virtual time. Negative delays run
// immediately (at the current instant, after already-queued events for that
// instant). It returns a cancellable Timer.
func (s *Sim) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleAt(s.now.Add(delay), fn)
}

// ScheduleAt runs fn at the given virtual instant. Instants in the past are
// clamped to now.
func (s *Sim) ScheduleAt(at time.Time, fn func()) *Timer {
	if fn == nil {
		panic("events: nil handler")
	}
	if at.Before(s.now) {
		at = s.now
	}
	e := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return &Timer{ev: e}
}

// Every schedules fn at a fixed period, starting one period from now. The
// returned Timer cancels the recurrence. Period must be positive.
func (s *Sim) Every(period time.Duration, fn func()) *Timer {
	if period <= 0 {
		panic(fmt.Sprintf("events: non-positive period %v", period))
	}
	t := &Timer{}
	var tick func()
	tick = func() {
		fn()
		if !t.ev.cancelled {
			t.ev = s.Schedule(period, tick).ev
		}
	}
	t.ev = s.Schedule(period, tick).ev
	return t
}

// Run executes events until the queue is empty or virtual time would pass
// until. It returns the number of events processed.
func (s *Sim) Run(until time.Time) uint64 {
	s.horizon = until
	s.stopped = false
	start := s.processed
	for len(s.queue) > 0 {
		e := s.queue[0]
		if e.at.After(until) {
			break
		}
		heap.Pop(&s.queue)
		if e.cancelled {
			continue
		}
		s.now = e.at
		e.fn()
		s.processed++
		if s.stopped {
			break
		}
	}
	if s.now.Before(until) && !s.stopped {
		s.now = until
	}
	return s.processed - start
}

// RunFor advances virtual time by d.
func (s *Sim) RunFor(d time.Duration) uint64 {
	return s.Run(s.now.Add(d))
}

// Stop halts Run after the current handler returns.
func (s *Sim) Stop() { s.stopped = true }

// Pending returns the number of live events in the queue.
func (s *Sim) Pending() int {
	n := 0
	for _, e := range s.queue {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// RNG returns the named deterministic random stream, creating it on first
// use. Distinct names yield independent streams derived from the master seed,
// so adding randomness to one subsystem does not perturb another.
func (s *Sim) RNG(name string) *rand.Rand {
	if r, ok := s.streams[name]; ok {
		return r
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	r := rand.New(rand.NewSource(s.seed ^ int64(h.Sum64())))
	s.streams[name] = r
	return r
}

// Jitter returns a duration uniformly distributed in [d*(1-frac), d*(1+frac)]
// drawn from the named stream. frac of 0 returns d unchanged; this is the
// knob that distinguishes jittered from unjittered protocol timers in the
// paper's self-synchronization discussion.
func (s *Sim) Jitter(name string, d time.Duration, frac float64) time.Duration {
	if frac <= 0 {
		return d
	}
	r := s.RNG(name)
	lo := float64(d) * (1 - frac)
	hi := float64(d) * (1 + frac)
	return time.Duration(lo + r.Float64()*(hi-lo))
}
