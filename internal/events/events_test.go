package events

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(3*time.Second, func() { got = append(got, 3) })
	s.Schedule(1*time.Second, func() { got = append(got, 1) })
	s.Schedule(2*time.Second, func() { got = append(got, 2) })
	s.RunFor(10 * time.Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order %v", got)
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { got = append(got, i) })
	}
	s.RunFor(2 * time.Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order %v", got)
		}
	}
}

func TestNowAdvancesToEventTime(t *testing.T) {
	s := New(1)
	var at time.Time
	s.Schedule(90*time.Second, func() { at = s.Now() })
	s.RunFor(5 * time.Minute)
	if want := Epoch.Add(90 * time.Second); !at.Equal(want) {
		t.Fatalf("handler ran at %v, want %v", at, want)
	}
	if !s.Now().Equal(Epoch.Add(5 * time.Minute)) {
		t.Fatalf("now %v", s.Now())
	}
}

func TestHorizonStopsBeforeLaterEvents(t *testing.T) {
	s := New(1)
	ran := false
	s.Schedule(time.Hour, func() { ran = true })
	n := s.RunFor(time.Minute)
	if n != 0 || ran {
		t.Fatal("event beyond horizon ran")
	}
	n = s.RunFor(2 * time.Hour)
	if n != 1 || !ran {
		t.Fatal("event did not run after extending horizon")
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	ran := false
	tm := s.Schedule(time.Second, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	s.RunFor(time.Minute)
	if ran {
		t.Fatal("cancelled event ran")
	}
	if s.Pending() != 0 {
		t.Fatalf("pending %d", s.Pending())
	}
}

func TestEvery(t *testing.T) {
	s := New(1)
	count := 0
	var tm *Timer
	tm = s.Every(30*time.Second, func() {
		count++
		if count == 5 {
			tm.Stop()
		}
	})
	s.RunFor(time.Hour)
	if count != 5 {
		t.Fatalf("count %d", count)
	}
}

func TestEveryPeriodicity(t *testing.T) {
	s := New(1)
	var times []time.Time
	s.Every(30*time.Second, func() { times = append(times, s.Now()) })
	s.RunFor(5 * time.Minute)
	if len(times) != 10 {
		t.Fatalf("%d ticks", len(times))
	}
	for i, at := range times {
		want := Epoch.Add(time.Duration(i+1) * 30 * time.Second)
		if !at.Equal(want) {
			t.Fatalf("tick %d at %v want %v", i, at, want)
		}
	}
}

func TestScheduleInsideHandler(t *testing.T) {
	s := New(1)
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 100 {
			s.Schedule(time.Second, recur)
		}
	}
	s.Schedule(time.Second, recur)
	s.RunFor(time.Hour)
	if depth != 100 {
		t.Fatalf("depth %d", depth)
	}
	if s.Processed() != 100 {
		t.Fatalf("processed %d", s.Processed())
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	ran2 := false
	s.Schedule(time.Second, func() { s.Stop() })
	s.Schedule(2*time.Second, func() { ran2 = true })
	s.RunFor(time.Minute)
	if ran2 {
		t.Fatal("event after Stop ran")
	}
	// A fresh Run resumes.
	s.RunFor(time.Minute)
	if !ran2 {
		t.Fatal("event did not run on resumed Run")
	}
}

func TestPastScheduleClamped(t *testing.T) {
	s := New(1)
	ran := false
	s.Schedule(time.Second, func() {
		s.ScheduleAt(s.Now().Add(-time.Hour), func() { ran = true })
	})
	s.RunFor(2 * time.Second)
	if !ran {
		t.Fatal("past-scheduled event should run at now")
	}
}

func TestRNGDeterminismAndIndependence(t *testing.T) {
	s1 := New(42)
	s2 := New(42)
	a1 := s1.RNG("a").Uint64()
	if a2 := s2.RNG("a").Uint64(); a1 != a2 {
		t.Fatal("same seed+name must match")
	}
	s3 := New(42)
	// Drawing from stream b first must not perturb stream a.
	_ = s3.RNG("b").Uint64()
	if a3 := s3.RNG("a").Uint64(); a3 != a1 {
		t.Fatal("streams are not independent")
	}
	if s1.RNG("a") != s1.RNG("a") {
		t.Fatal("RNG must be cached per name")
	}
	sDiff := New(43)
	if sDiff.RNG("a").Uint64() == a1 {
		t.Fatal("different seeds should differ (overwhelmingly likely)")
	}
}

func TestJitter(t *testing.T) {
	s := New(7)
	if got := s.Jitter("x", 30*time.Second, 0); got != 30*time.Second {
		t.Fatalf("zero jitter changed duration: %v", got)
	}
	for i := 0; i < 1000; i++ {
		d := s.Jitter("x", 30*time.Second, 0.25)
		if d < 22500*time.Millisecond || d > 37500*time.Millisecond {
			t.Fatalf("jitter out of range: %v", d)
		}
	}
}

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Schedule(time.Second, nil)
}

func TestNonPositivePeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Every(0, func() {})
}

func BenchmarkScheduleRun(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Duration(i%1000)*time.Millisecond, func() {})
	}
	s.RunFor(time.Hour)
}
