// Package exchange models a public Internet exchange point with a Routing
// Arbiter route server: the measurement vantage of the entire study. The
// route server peers with most providers at the exchange, performs policy
// computation on their behalf (reducing O(N^2) bilateral sessions to O(N)),
// and — for our purposes — logs every BGP update it receives in collector
// format.
package exchange

import (
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/events"
	"instability/internal/netaddr"
	"instability/internal/policy"
	"instability/internal/rib"
	"instability/internal/router"
	"instability/internal/session"
)

// RouteServerAS is the autonomous system number used by the route servers.
const RouteServerAS bgp.ASN = 6000

// Point is one exchange point: a route server plus the client routers
// peering with it.
type Point struct {
	Name string
	sim  *events.Sim
	rs   *router.Router
	// links by client AS.
	links map[bgp.ASN]*router.Link
	// sink receives every logged record.
	sink          func(collector.Record)
	collectorOnly bool
	// Records counts logged updates.
	Records int
}

// Config parameterizes the exchange point.
type Config struct {
	Name string
	// CollectorOnly stops the route server from relaying routes to clients:
	// it peers and logs but exports nothing (an export policy rejecting
	// everything is installed per client). The default relays post-policy
	// best routes transparently, as the Routing Arbiter servers did.
	CollectorOnly bool
	// Sink receives the log records. Required.
	Sink func(collector.Record)
}

// New creates an exchange point on the simulator.
func New(sim *events.Sim, cfg Config) *Point {
	p := &Point{Name: cfg.Name, sim: sim, links: make(map[bgp.ASN]*router.Link), sink: cfg.Sink}
	rcfg := router.Config{
		AS:          RouteServerAS,
		ID:          netaddr.MustParseAddr("198.32.186.250"),
		Arch:        router.FullTable,
		Transparent: true,
		// The route servers are Unix machines, not cache-based routers; give
		// them ample capacity so the measurement point never perturbs the
		// experiment.
		CPU: router.CPUModel{
			PerUpdate:    20 * time.Microsecond,
			CrashBacklog: time.Hour,
			RebootTime:   time.Minute,
		},
		Session: session.Config{MRAI: 30 * time.Second, MRAIJitter: 0.25, CompareLastSent: true},
		Tap:     p.tap,
		PeerState: func(peer rib.PeerID, up bool) {
			typ := collector.SessionDown
			if up {
				typ = collector.SessionUp
			}
			p.emit(collector.Record{
				Time: sim.Now(), Type: typ,
				PeerAS: peer.AS, PeerAddr: peer.ID,
			})
		},
	}
	p.rs = router.New(sim, rcfg)
	p.collectorOnly = cfg.CollectorOnly
	return p
}

// RouteServer exposes the underlying speaker (for RIB inspection).
func (p *Point) RouteServer() *router.Router { return p.rs }

// AttachClient links a client router to the route server with the given
// one-way delay and returns the link.
func (p *Point) AttachClient(client *router.Router, delay time.Duration) *router.Link {
	l := router.Connect(p.sim, client, p.rs, delay)
	p.links[client.AS()] = l
	if p.collectorOnly {
		p.rs.SetExportPolicy(client.AS(), client.ID(), &policy.Policy{DefaultReject: true})
	}
	return l
}

// Link returns the link for a client AS, or nil.
func (p *Point) Link(as bgp.ASN) *router.Link { return p.links[as] }

// Established reports whether all client sessions are up.
func (p *Point) Established() bool {
	for _, l := range p.links {
		if !l.Established() {
			return false
		}
	}
	return true
}

func (p *Point) tap(from rib.PeerID, u bgp.Update) {
	now := p.sim.Now()
	for _, prefix := range u.Withdrawn {
		p.emit(collector.Record{
			Time: now, Type: collector.Withdraw,
			PeerAS: from.AS, PeerAddr: from.ID, Prefix: prefix,
		})
	}
	for _, prefix := range u.Announced {
		p.emit(collector.Record{
			Time: now, Type: collector.Announce,
			PeerAS: from.AS, PeerAddr: from.ID, Prefix: prefix, Attrs: u.Attrs,
		})
	}
}

func (p *Point) emit(rec collector.Record) {
	p.Records++
	if p.sink != nil {
		p.sink(rec)
	}
}

// BilateralSessions returns the number of peering sessions an exchange with
// n routers needs under full-mesh bilateral peering: n(n-1)/2 two-party
// sessions (each router maintains n-1).
func BilateralSessions(n int) int { return n * (n - 1) / 2 }

// RouteServerSessions returns the number of sessions with a route server:
// one per client.
func RouteServerSessions(n int) int { return n }
