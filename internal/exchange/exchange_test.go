package exchange

import (
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/core"
	"instability/internal/events"
	"instability/internal/netaddr"
	"instability/internal/router"
	"instability/internal/session"
)

func pfx(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

func client(sim *events.Sim, as bgp.ASN, id uint32, stateless bool) *router.Router {
	return router.New(sim, router.Config{
		AS: as, ID: netaddr.Addr(id),
		Session: session.Config{MRAI: time.Second, Stateless: stateless, CompareLastSent: !stateless},
	})
}

func TestCollectorLogsAnnouncesAndWithdraws(t *testing.T) {
	sim := events.New(1)
	var recs []collector.Record
	pt := New(sim, Config{Name: "Mae-East", Sink: func(r collector.Record) { recs = append(recs, r) }})
	a := client(sim, 690, 1, false)
	pt.AttachClient(a, 5*time.Millisecond)
	sim.RunFor(10 * time.Second)
	if !pt.Established() {
		t.Fatal("client session did not establish")
	}
	a.Originate(pfx("35.0.0.0/8"), bgp.OriginIGP)
	sim.RunFor(5 * time.Second)
	a.WithdrawOrigin(pfx("35.0.0.0/8"))
	sim.RunFor(5 * time.Second)

	var up, ann, wd int
	for _, r := range recs {
		switch r.Type {
		case collector.SessionUp:
			up++
		case collector.Announce:
			ann++
			if r.PeerAS != 690 || r.Prefix != pfx("35.0.0.0/8") {
				t.Fatalf("bad announce record %+v", r)
			}
			if got, _ := r.Attrs.Path.First(); got != 690 {
				t.Fatalf("announce path %v", r.Attrs.Path)
			}
		case collector.Withdraw:
			wd++
		}
	}
	if up != 1 || ann != 1 || wd != 1 {
		t.Fatalf("records up=%d ann=%d wd=%d", up, ann, wd)
	}
	if pt.Records != len(recs) {
		t.Fatalf("record count mismatch")
	}
}

func TestRouteServerSeesMultipleClients(t *testing.T) {
	sim := events.New(2)
	var recs []collector.Record
	pt := New(sim, Config{Name: "AADS", Sink: func(r collector.Record) { recs = append(recs, r) }})
	a := client(sim, 690, 1, false)
	b := client(sim, 701, 2, false)
	pt.AttachClient(a, 5*time.Millisecond)
	pt.AttachClient(b, 5*time.Millisecond)
	sim.RunFor(10 * time.Second)
	a.Originate(pfx("35.0.0.0/8"), bgp.OriginIGP)
	b.Originate(pfx("141.213.0.0/16"), bgp.OriginIGP)
	sim.RunFor(5 * time.Second)
	rs := pt.RouteServer().RIB()
	if rs.Len() != 2 {
		t.Fatalf("route server table has %d prefixes", rs.Len())
	}
	if pt.Link(690) == nil || pt.Link(9999) != nil {
		t.Fatal("link lookup wrong")
	}
}

func TestStatelessClientFloodsWWDups(t *testing.T) {
	// The Table-1 scenario in miniature: a stateless client's spurious
	// withdrawals reach the route server and classify as WWDup.
	sim := events.New(3)
	cls := core.NewClassifier()
	var counts [core.NumClasses]int
	pt := New(sim, Config{Name: "AADS", Sink: func(r collector.Record) {
		counts[cls.Classify(r).Class]++
	}})
	// ISP-X ("good") is the only AS announcing the prefix; ISP-Y ("bad")
	// runs stateless routers and merely learns the route through the route
	// server. When the route is withdrawn, ISP-Y's stateless implementation
	// relays withdrawals to every peer — including back to the route server,
	// which never heard an announcement from ISP-Y at all.
	bad := client(sim, 701, 2, true)
	good := client(sim, 690, 1, false)
	pt.AttachClient(bad, 5*time.Millisecond)
	pt.AttachClient(good, 5*time.Millisecond)
	sim.RunFor(10 * time.Second)
	// Half-cycles must exceed the route server's own 30 s advertisement
	// interval so each state change actually reaches ISP-Y.
	for i := 0; i < 6; i++ {
		good.Originate(pfx("192.42.113.0/24"), bgp.OriginIGP)
		sim.RunFor(time.Minute)
		good.WithdrawOrigin(pfx("192.42.113.0/24"))
		sim.RunFor(time.Minute)
	}
	if counts[core.WWDup] < 3 {
		t.Fatalf("expected WWDup flood from the stateless client, got %v", counts)
	}
}

func TestSessionLossLogged(t *testing.T) {
	sim := events.New(4)
	var downs int
	pt := New(sim, Config{Name: "PacBell", Sink: func(r collector.Record) {
		if r.Type == collector.SessionDown {
			downs++
		}
	}})
	a := client(sim, 690, 1, false)
	l := pt.AttachClient(a, 5*time.Millisecond)
	sim.RunFor(10 * time.Second)
	l.Fail()
	sim.RunFor(time.Second)
	if downs != 1 {
		t.Fatalf("downs %d", downs)
	}
}

func TestPeeringSessionComplexity(t *testing.T) {
	if BilateralSessions(60) != 1770 {
		t.Fatalf("bilateral(60) = %d", BilateralSessions(60))
	}
	if RouteServerSessions(60) != 60 {
		t.Fatal("route server sessions wrong")
	}
	// The paper's O(N^2) vs O(N) claim.
	for n := 2; n < 100; n++ {
		if BilateralSessions(n) <= RouteServerSessions(n) && n > 3 {
			t.Fatalf("bilateral should exceed RS sessions at n=%d", n)
		}
	}
}

func TestCollectorOnlyModeDoesNotReadvertise(t *testing.T) {
	sim := events.New(5)
	pt := New(sim, Config{Name: "Sprint", CollectorOnly: true, Sink: func(collector.Record) {}})
	a := client(sim, 690, 1, false)
	b := client(sim, 701, 2, false)
	pt.AttachClient(a, 5*time.Millisecond)
	pt.AttachClient(b, 5*time.Millisecond)
	sim.RunFor(10 * time.Second)
	a.Originate(pfx("35.0.0.0/8"), bgp.OriginIGP)
	sim.RunFor(2 * time.Minute)
	// The route server logs and holds the route but never relays it.
	if pt.RouteServer().RIB().Len() != 1 {
		t.Fatal("route server should hold the route")
	}
	if _, _, ok := b.RIB().Best(pfx("35.0.0.0/8")); ok {
		t.Fatal("collector-only server relayed a route")
	}
}

func TestDefaultModeReadvertisesTransparently(t *testing.T) {
	sim := events.New(6)
	pt := New(sim, Config{Name: "Sprint", Sink: func(collector.Record) {}})
	a := client(sim, 690, 1, false)
	b := client(sim, 701, 2, false)
	pt.AttachClient(a, 5*time.Millisecond)
	pt.AttachClient(b, 5*time.Millisecond)
	sim.RunFor(10 * time.Second)
	a.Originate(pfx("35.0.0.0/8"), bgp.OriginIGP)
	sim.RunFor(2 * time.Minute)
	attrs, _, ok := b.RIB().Best(pfx("35.0.0.0/8"))
	if !ok {
		t.Fatal("route not relayed")
	}
	// Transparent: the route server's AS does not appear in the path.
	if attrs.Path.Contains(RouteServerAS) {
		t.Fatalf("route server prepended itself: %v", attrs.Path)
	}
}
