package store

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/faults"
	"instability/internal/netaddr"
)

// readSegmentFiles returns the raw bytes of every sealed segment in dir,
// keyed by file name.
func readSegmentFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := make(map[string][]byte)
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		files[name] = b
	}
	return files
}

// TestSealedBytesIdenticalAcrossWorkers pins the parallel seal contract:
// segment files written with one block-compression worker and with eight are
// byte-for-byte identical, through both the seal and the compaction (merge
// rewrite) paths. Everything downstream — fingerprints, caches, replication
// by rsync — is allowed to assume worker count never shows in the bytes.
func TestSealedBytesIdenticalAcrossWorkers(t *testing.T) {
	recs := hourlyWorkload(3, 400)
	build := func(workers int) map[string][]byte {
		dir := t.TempDir()
		opts := testOptions()
		opts.SealWorkers = workers
		s, err := Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		w := s.Writer()
		// Two seals per window, then a compaction, so the merged segments
		// exercise the parallel rewrite as well.
		half := len(recs) / 2
		if err := w.AppendBatch(recs[:half]); err != nil {
			t.Fatal(err)
		}
		if err := w.Seal(); err != nil {
			t.Fatal(err)
		}
		if err := w.AppendBatch(recs[half:]); err != nil {
			t.Fatal(err)
		}
		if err := w.Seal(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return readSegmentFiles(t, dir)
	}
	serial := build(1)
	parallel := build(8)
	if len(serial) == 0 {
		t.Fatal("no segments written")
	}
	if len(serial) != len(parallel) {
		t.Fatalf("segment sets differ: %d serial vs %d parallel", len(serial), len(parallel))
	}
	for name, sb := range serial {
		pb, ok := parallel[name]
		if !ok {
			t.Fatalf("segment %s missing from parallel store", name)
		}
		if !bytes.Equal(sb, pb) {
			t.Fatalf("segment %s differs between 1 and 8 seal workers (%d vs %d bytes)",
				name, len(sb), len(pb))
		}
	}
}

// TestBackgroundSealRaceHammer batters a store with concurrent batch
// appenders while background auto-seals detach, seal, and publish under
// them and eight readers scan the moving overlay. Run under -race this is
// the memory-safety check for the seal pipeline; the final content check is
// the visibility one (no record ever missing or doubled, whatever stage of
// the pipeline it was caught in).
func TestBackgroundSealRaceHammer(t *testing.T) {
	opts := testOptions()
	opts.AutoSealRecords = 256
	opts.BlockCacheBytes = 1 << 20
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := hourlyWorkload(2, 2000)
	w := s.Writer()

	const appenders = 4
	var wg sync.WaitGroup
	done := make(chan struct{})
	errc := make(chan error, appenders+8)
	chunk := (len(recs) + appenders - 1) / appenders
	for a := 0; a < appenders; a++ {
		lo := a * chunk
		hi := min(lo+chunk, len(recs))
		wg.Add(1)
		go func(part []collector.Record) {
			defer wg.Done()
			for len(part) > 0 {
				n := min(100, len(part))
				if err := w.AppendBatch(part[:n]); err != nil {
					errc <- err
					return
				}
				part = part[n:]
			}
		}(recs[lo:hi])
	}
	var readers sync.WaitGroup
	for r := 0; r < 8; r++ {
		readers.Add(1)
		go func(serial bool) {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var rd *Reader
				var err error
				if serial {
					rd, err = s.Query(Query{})
				} else {
					rd, err = s.QueryParallel(Query{}, 4)
				}
				if err != nil {
					errc <- err
					return
				}
				got, err := rd.ReadAll()
				rd.Close()
				if err != nil {
					errc <- err
					return
				}
				if len(got) > len(recs) {
					errc <- errors.New("query returned more records than appended")
					return
				}
			}
		}(r%2 == 0)
	}
	wg.Wait()
	close(done)
	readers.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	got, _ := queryAll(t, s, Query{})
	assertSameRecords(t, got, recs)
	if st := s.Stats(); st.MemRecords != 0 || st.SealingRecords != 0 {
		t.Fatalf("store not quiescent after Seal: %+v", st)
	}
}

// TestSealFailureRequeues drives a seal into a transient write error and
// checks the failure contract: the error surfaces from Seal, every detached
// record returns to the memtable (still query-visible, still counted), and
// the next Seal lands them all with the rotated WAL files cleaned up behind
// it.
func TestSealFailureRequeues(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Window: time.Hour, BlockRecords: 16, FlushEvery: 1000}
	// Write 1 is the explicit WAL flush; write 2 is the segment body.
	opts.FS = faults.NewInjector(faults.Disk{}, faults.Plan{Seed: 11, FailWriteN: 2})
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := s.Writer()
	const n = 40
	for i := 0; i < n; i++ {
		if err := w.Append(faultRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err == nil {
		t.Fatal("seal should fail on the injected segment write error")
	}
	got, _ := queryAll(t, s, Query{})
	if len(got) != n {
		t.Fatalf("after failed seal %d of %d records visible", len(got), n)
	}
	st := s.Stats()
	if st.MemRecords != n || st.Segments != 0 {
		t.Fatalf("failed seal should requeue everything: %+v", st)
	}
	if err := w.Seal(); err != nil {
		t.Fatalf("retry seal: %v", err)
	}
	st = s.Stats()
	if st.MemRecords != 0 || st.Records != n {
		t.Fatalf("retry seal did not land the requeued records: %+v", st)
	}
	got, _ = queryAll(t, s, Query{})
	if len(got) != n {
		t.Fatalf("after retry seal %d of %d records visible", len(got), n)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") {
			t.Fatalf("rotated WAL %s not cleaned up after successful seal", e.Name())
		}
	}
}

// TestRotatedWALRecovery pins the crash window unique to background sealing:
// the WAL has been rotated and some segments renamed, but the process dies
// before the rotated file is deleted. Reopening must replay the rotated WAL,
// dedupe the sealed prefix by sequence range, and recover the rest — then
// delete or retain the rotated file according to whether it is still needed.
func TestRotatedWALRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Window: time.Hour, BlockRecords: 16, FlushEvery: 4}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	w := s.Writer()
	const n = 30
	for i := 0; i < n; i++ {
		if err := w.Append(faultRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	// Resurrect the crash window by hand: put a rotated WAL holding every
	// record back in the directory, as if the seal died after its segment
	// renames but before WAL cleanup.
	var frames []byte
	for i := 0; i < n; i++ {
		rec := faultRecord(i)
		frames, err = appendWALFrame(frames, s.windowStart(rec.Time), uint64(i+1), rec, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rot := filepath.Join(dir, walRotName(0))
	if err := os.WriteFile(rot, frames, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := queryAll(t, s2, Query{})
	verifyRecoveredPrefix(t, got, n)
	if len(got) != n {
		t.Fatalf("recovered %d of %d records", len(got), n)
	}
	if st := s2.Stats(); st.MemRecords != 0 {
		t.Fatalf("fully covered rotated WAL replayed into memtable: %+v", st)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(rot); !os.IsNotExist(err) {
		t.Fatalf("fully covered rotated WAL should be deleted at open, stat err=%v", err)
	}

	// Same again, but with a tail the segments do not cover: the extra
	// records must land in the memtable and the rotated file must survive
	// until a seal covers it.
	extra := appendExtraFrames(t, s2, frames, n, 10)
	if err := os.WriteFile(rot, extra, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = queryAll(t, s3, Query{})
	if len(got) != n+10 {
		t.Fatalf("recovered %d of %d records", len(got), n+10)
	}
	if st := s3.Stats(); st.MemRecords != 10 {
		t.Fatalf("partially covered rotated WAL: want 10 memtable records, got %+v", st)
	}
	if _, err := os.Stat(rot); err != nil {
		t.Fatalf("partially covered rotated WAL must survive open: %v", err)
	}
	if err := s3.Writer().Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(rot); !os.IsNotExist(err) {
		t.Fatalf("rotated WAL should be deleted once sealed over, stat err=%v", err)
	}
	got, _ = queryAll(t, s3, Query{})
	verifyRecoveredPrefix(t, got, n+10)
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
}

// appendExtraFrames extends a frame buffer with `extra` more fault records
// continuing the sequence from n.
func appendExtraFrames(t *testing.T, s *Store, frames []byte, n, extra int) []byte {
	t.Helper()
	out := append([]byte(nil), frames...)
	var err error
	for i := n; i < n+extra; i++ {
		rec := faultRecord(i)
		out, err = appendWALFrame(out, s.windowStart(rec.Time), uint64(i+1), rec, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestCrashLoopBackgroundSeal is the crash harness aimed at the background
// seal pipeline: auto-seal fires every 25 records, so the randomized kill
// points land inside detach, rotation, block compression, segment rename,
// publish, and WAL cleanup — concurrent with the appending thread. The
// recovery contract is unchanged: no acknowledged record lost, none
// duplicated, recovery prefix-consistent.
func TestCrashLoopBackgroundSeal(t *testing.T) {
	trials := *crashloopTrials
	if testing.Short() {
		trials = 40
	}
	rng := rand.New(rand.NewSource(*crashloopSeed + 9))
	for trial := 0; trial < trials; trial++ {
		crashOp := 1 + rng.Intn(170)
		seed := rng.Int63()
		t.Run("", func(t *testing.T) {
			dir := t.TempDir()
			inj := faults.NewInjector(faults.Disk{}, faults.Plan{Seed: seed, CrashAtOp: crashOp})
			opts := faultOptions()
			opts.Sync = true
			opts.FS = inj
			opts.AutoSealRecords = 25

			acked, appended := runBackgroundCrashScript(t, dir, opts)

			s, err := Open(dir, faultOptions())
			if err != nil {
				t.Fatalf("crashOp=%d seed=%d: reopen: %v", crashOp, seed, err)
			}
			defer s.Close()
			recs, _ := queryAllParallel(t, s, Query{}, 4)
			verifyRecoveredPrefix(t, recs, acked)
			if !inj.Stats().Crashed && len(recs) != appended {
				t.Fatalf("crashOp=%d never fired but recovered %d of %d records",
					crashOp, len(recs), appended)
			}
		})
	}
}

// runBackgroundCrashScript appends 130 records with flush-acks every 10
// while background auto-seals run underneath, compacting once near the end.
// The store is abandoned without Close — but only after joining any seal
// still in flight, as even a crashing process's goroutines stop at its
// file descriptors.
func runBackgroundCrashScript(t *testing.T, dir string, opts Options) (acked, appended int) {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		if errors.Is(err, faults.ErrCrashed) {
			return 0, 0
		}
		t.Fatalf("initial open: %v", err)
	}
	defer func() {
		s.joinSeal() // crashed batches finish fast: every op fails
		s.mu.Lock()
		s.wal.close()
		s.closed = true
		s.mu.Unlock()
	}()
	w := s.Writer()
	for appended < 130 {
		if err := w.Append(faultRecord(appended)); err != nil {
			return acked, appended
		}
		appended++
		if appended%10 == 0 {
			if err := w.Flush(); err != nil {
				return acked, appended
			}
			acked = appended
		}
		if appended == 100 {
			if _, err := s.Compact(); err != nil {
				return acked, appended
			}
		}
	}
	if err := s.joinSeal(); err != nil {
		return acked, appended
	}
	if err := w.Flush(); err != nil {
		return acked, appended
	}
	acked = appended
	return acked, appended
}

// TestCloseDuringParkedAppends pins the backpressure/Close contract:
// appenders parked at the 2x auto-seal threshold must always wake when a
// concurrent Close sweeps the store, must not hand Close fresh seal batches
// to join (under sustained appends that livelocks the close), and every
// append acked before the close must be sealed and readable after reopen.
func TestCloseDuringParkedAppends(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.AutoSealRecords = 64 // tiny threshold so appenders park constantly
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	w := s.Writer()
	const workers = 8
	acked := make([]int64, workers)
	var wg sync.WaitGroup
	base := time.Date(1996, 3, 1, 0, 0, 0, 0, time.UTC)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Unbounded supply: keep appending until Close cuts us off.
			for i := 0; ; i++ {
				prefix := netaddr.MustPrefix(netaddr.Addr(0xc6000000|uint32(g)<<16|uint32(i%200)<<8), 24)
				rec := mkRecord(base.Add(time.Duration(i)*time.Millisecond), bgp.ASN(100+g), bgp.ASN(7000+g), prefix, true)
				if err := w.Append(rec); err != nil {
					if !strings.Contains(err.Error(), "after Close") {
						t.Errorf("append: %v", err)
					}
					return
				}
				acked[g]++
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond) // let the backpressure path engage
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not return under sustained parked appends")
	}
	wg.Wait()
	var total int64
	for _, n := range acked {
		total += n
	}
	if total == 0 {
		t.Fatal("no appends acked before Close")
	}
	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().Records; got != total {
		t.Fatalf("reopened store has %d sealed records, want %d acked", got, total)
	}
}

// sealFaultFS fails segment creates, optionally holding the first one until
// released — a persistently failing data disk under a healthy WAL.
type sealFaultFS struct {
	faults.FS
	mu      sync.Mutex
	gate    chan struct{} // first create blocks here until closed
	entered chan struct{} // closed when the first create arrives
}

func (f *sealFaultFS) Create(name string) (faults.File, error) {
	if !strings.Contains(filepath.Base(name), segPrefix) {
		return f.FS.Create(name)
	}
	f.mu.Lock()
	gate, entered := f.gate, f.entered
	f.gate, f.entered = nil, nil
	f.mu.Unlock()
	if entered != nil {
		close(entered)
	}
	if gate != nil {
		<-gate
	}
	return nil, errors.New("segment disk full")
}

// TestParkedAppendSurfacesSealError pins the other half of the backpressure
// contract: an appender parked on a seal batch that fails must wake with the
// batch's error, not ack silently while background retries cycle the failed
// windows through detach/requeue forever and stale WALs accumulate.
func TestParkedAppendSurfacesSealError(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{})
	fs := &sealFaultFS{FS: faults.Disk{}, gate: gate, entered: entered}
	opts := testOptions()
	opts.FS = fs
	opts.AutoSealRecords = 16
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(1996, 3, 1, 0, 0, 0, 0, time.UTC)
	w := s.Writer()
	appendErr := make(chan error, 1)
	go func() {
		for i := 0; i < 100000; i++ {
			prefix := netaddr.MustPrefix(netaddr.Addr(0xc6000000|uint32(i%200)<<8), 24)
			rec := mkRecord(base.Add(time.Duration(i)*time.Millisecond), 100, 7000, prefix, true)
			if err := w.Append(rec); err != nil {
				appendErr <- err
				return
			}
		}
		appendErr <- nil
	}()
	// The first auto-seal is parked inside Create; once the appender has run
	// a full threshold ahead it parks on the batch. Release the create so the
	// batch fails under the parked appender.
	<-entered
	for {
		s.mu.Lock()
		parked := s.memN >= 2*opts.AutoSealRecords
		s.mu.Unlock()
		if parked {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	select {
	case err := <-appendErr:
		if err == nil {
			t.Fatal("append stream completed without surfacing the seal failure")
		}
		if !strings.Contains(err.Error(), "segment disk full") {
			t.Fatalf("append error = %v, want the seal failure", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("appender never surfaced the seal failure")
	}
	s.mu.Lock()
	s.wal.close()
	s.closed = true
	s.mu.Unlock()
}
