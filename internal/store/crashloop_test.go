package store

import (
	"errors"
	"flag"
	"math/rand"
	"testing"

	"instability/internal/faults"
)

var (
	crashloopSeed = flag.Int64("crashloop-seed", 1,
		"seed for the crash-loop harness; CI pins it so failures reproduce")
	crashloopTrials = flag.Int("crashloop-trials", 200,
		"randomized kill points the crash-loop harness runs")
)

// TestCrashLoop is the acceptance harness for the durability contract: it
// repeatedly runs a deterministic ingest/seal/compact script against a
// filesystem that drops dead at a randomized mutating operation (tearing the
// write in flight, as a power cut would), then reopens the directory on a
// healthy filesystem and checks the recovered store.
//
// The contract checked on every reopen:
//
//   - no acknowledged record is lost: everything appended before the last
//     successful Flush or Seal (with Sync on, both imply fsync) is recovered;
//   - no record is duplicated, even when the crash lands between a seal and
//     the WAL truncate (the seq-range dedupe window);
//   - recovery is prefix-consistent: the surviving records are exactly the
//     first k appends for some k, never a gappy subset.
func TestCrashLoop(t *testing.T) {
	trials := *crashloopTrials
	if testing.Short() {
		trials = 40
	}
	rng := rand.New(rand.NewSource(*crashloopSeed))
	for trial := 0; trial < trials; trial++ {
		crashOp := 1 + rng.Intn(140)
		seed := rng.Int63()
		t.Run("", func(t *testing.T) {
			dir := t.TempDir()
			inj := faults.NewInjector(faults.Disk{}, faults.Plan{Seed: seed, CrashAtOp: crashOp})
			opts := faultOptions()
			opts.Sync = true
			opts.FS = inj

			acked, appended := runCrashScript(t, dir, opts)

			s, err := Open(dir, faultOptions())
			if err != nil {
				t.Fatalf("crashOp=%d seed=%d: reopen: %v", crashOp, seed, err)
			}
			defer s.Close()
			recs, _ := queryAllParallel(t, s, Query{}, 4)
			verifyRecoveredPrefix(t, recs, acked)
			if !inj.Stats().Crashed && len(recs) != appended {
				t.Fatalf("crashOp=%d never fired but recovered %d of %d records",
					crashOp, len(recs), appended)
			}
		})
	}
}

// runCrashScript drives a fixed ingest -> flush -> seal -> compact script
// until the filesystem dies (or the script completes), returning how many
// records were acknowledged as durable and how many were appended in total.
// The store is abandoned without Close, as a crashed process leaves it.
func runCrashScript(t *testing.T, dir string, opts Options) (acked, appended int) {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		if errors.Is(err, faults.ErrCrashed) {
			return 0, 0
		}
		t.Fatalf("initial open: %v", err)
	}
	defer func() {
		// Release file handles only; no seal, no flush — crash semantics.
		s.wal.close()
		s.closed = true
	}()
	w := s.Writer()
	for appended < 130 {
		if err := w.Append(faultRecord(appended)); err != nil {
			return acked, appended
		}
		appended++
		if appended%10 == 0 {
			if err := w.Flush(); err != nil {
				return acked, appended
			}
			acked = appended
		}
		switch appended {
		case 30, 60, 90:
			if err := w.Seal(); err != nil {
				return acked, appended
			}
			acked = appended
		case 100:
			if _, err := s.Compact(); err != nil {
				return acked, appended
			}
		}
	}
	if err := w.Flush(); err != nil {
		return acked, appended
	}
	acked = appended
	return acked, appended
}

// TestCrashLoopDeterminism pins that a crash trial is reproducible: the same
// seed and kill point leave byte-identical surviving record sets, which is
// what makes a CI failure from the randomized harness debuggable.
func TestCrashLoopDeterminism(t *testing.T) {
	run := func() ([]int, int) {
		dir := t.TempDir()
		inj := faults.NewInjector(faults.Disk{}, faults.Plan{Seed: 7, CrashAtOp: 23})
		opts := faultOptions()
		opts.Sync = true
		opts.FS = inj
		acked, _ := runCrashScript(t, dir, opts)
		s, err := Open(dir, faultOptions())
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		recs, _ := queryAll(t, s, Query{})
		idx := make([]int, len(recs))
		for i, rec := range recs {
			idx[i] = faultRecordIndex(t, rec)
		}
		return idx, acked
	}
	idx1, acked1 := run()
	idx2, acked2 := run()
	if acked1 != acked2 || len(idx1) != len(idx2) {
		t.Fatalf("crash trial not deterministic: %d/%d acked, %d/%d recovered",
			acked1, acked2, len(idx1), len(idx2))
	}
	for i := range idx1 {
		if idx1[i] != idx2[i] {
			t.Fatalf("recovered sets diverge at %d: %d vs %d", i, idx1[i], idx2[i])
		}
	}
}
