// Package store implements irtlstore, an embedded time-partitioned BGP
// update store. It gives the analysis tools random access into what would
// otherwise be a nine-month flat log: updates are ingested through a
// WAL-backed writer, partitioned into immutable sealed segments (one or more
// per configurable time window), and queried back through an indexed reader
// that pushes predicates down to the segment and block level so most of the
// store is never decompressed.
//
// # On-disk layout
//
// A store is a directory:
//
//	wal.log          append-only write-ahead log of unsealed records
//	wal-<n>.log      rotated WALs backing a seal in flight (deleted once
//	                 every record they hold is in a sealed segment)
//	seg-<seq>.irts   sealed immutable segments
//
// Each WAL entry is length-prefixed and CRC-checked, so a torn tail from a
// crash is detected and discarded. Entries carry a per-window sequence
// number; a sealed segment records the [FirstSeq, LastSeq] range of its
// window that it covers, which makes crash recovery exact: on open, WAL
// entries whose sequence number is already covered by a sealed segment are
// skipped (no duplicates), and the rest are replayed into the memtable (no
// losses).
//
// A segment file holds delta-encoded, flate-compressed blocks of records
// sorted by timestamp, followed by an index section and a fixed footer:
//
//	"IRTS" version            header
//	block*                    compressed record blocks
//	index                     per-block metadata (offset, times, count),
//	                          posting lists (peer AS -> blocks,
//	                          origin AS -> blocks), prefix bloom filter
//	footer                    index offset, window, time range, seq range,
//	                          replaced-segment list, record count
//
// # Queries
//
// A Query carries time range, peer AS, origin AS, prefix, and record type
// predicates. The reader skips whole segments by time range, posting lists,
// and the prefix bloom filter, then skips individual blocks the same way;
// only surviving blocks are decompressed. ScanStats reports exactly how much
// work was avoided, so pushdown wins are measurable rather than asserted.
package store

import (
	"cmp"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"instability/internal/collector"
	"instability/internal/faults"
)

// Options tunes a store. The zero value is usable; fields are defaulted by
// withDefaults.
type Options struct {
	// Window is the time-partition width; records are grouped into windows
	// of this duration (aligned to Unix epoch) and sealed one segment per
	// window per seal. Default 24h.
	Window time.Duration
	// BlockRecords caps the number of records per compressed block.
	// Default 512.
	BlockRecords int
	// FlushEvery is the number of appended records the writer batches in
	// memory before writing them to the WAL in one group commit. Default
	// 256. Flush and Seal always drain the batch regardless.
	FlushEvery int
	// AutoSealRecords seals the memtable automatically once it holds this
	// many records, bounding memory during bulk ingest. 0 disables
	// auto-sealing (Seal/Close only).
	AutoSealRecords int
	// Sync fsyncs WAL group commits and sealed segments. Off by default:
	// the tests and tools that batter the store do not need metal-level
	// durability, and the crash-recovery contract (no duplicates, no loss
	// of synced data) is unaffected.
	Sync bool
	// BloomBitsPerKey sizes the per-segment prefix bloom filter. Default 10
	// (~1% false positives).
	BloomBitsPerKey int
	// BlockCacheBytes is the byte budget of the store-wide cache of
	// decompressed, columnar-decoded segment blocks, shared by every reader
	// of this store. 0 (the zero value) disables the cache: each scan
	// inflates and decodes its own blocks, as before the cache existed.
	BlockCacheBytes int64
	// NoMmap disables memory-mapped segment reads, forcing the ReadAt
	// fallback path everywhere. Mapping is also skipped automatically when
	// the store reads through an injected filesystem (Options.FS not the
	// real disk) or the platform has no mmap support.
	NoMmap bool
	// SealWorkers is the number of goroutines that encode and compress
	// segment blocks during seals and compactions. Blocks are independent, so
	// the sealed bytes are identical at any worker count; only the wall time
	// changes. Defaults to GOMAXPROCS; 1 forces the serial path.
	SealWorkers int
	// FS is the filesystem the store performs all I/O through. Nil means
	// the real disk; tests and chaos runs install a faults.Injector to
	// exercise write errors, torn writes, fsync failures, crashes, and
	// read bit-flips deterministically.
	FS faults.FS
	// formatVersion selects the segment block format for newly written
	// segments. Unexported: production stores always write the current
	// version; tests set it to segVersionV1 to produce compatibility
	// fixtures. Defaults to segVersionV2.
	formatVersion byte
	// syncSeal forces seals to run inline under the store lock, the
	// pre-pipeline behavior. Unexported: only benchmarks and tests use it,
	// to measure what background sealing buys.
	syncSeal bool
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 24 * time.Hour
	}
	if o.BlockRecords <= 0 {
		o.BlockRecords = 512
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = 256
	}
	if o.BloomBitsPerKey <= 0 {
		o.BloomBitsPerKey = 10
	}
	if o.FS == nil {
		o.FS = faults.Disk{}
	}
	if o.SealWorkers <= 0 {
		o.SealWorkers = runtime.GOMAXPROCS(0)
	}
	if o.formatVersion == 0 {
		o.formatVersion = segVersionV2
	}
	return o
}

// Store is an open irtlstore directory. All methods are safe for concurrent
// use.
type Store struct {
	dir  string
	opts Options
	fs   faults.FS

	mu      sync.Mutex
	segs    []*segment // sorted by (windowStart, seq)
	nextSeg uint64     // next segment file number
	wal     *wal
	mem     map[int64]*memWindow // windowStart (unixnano) -> unsealed records
	memN    int
	closed  bool
	closing bool // Close in progress: stops finishSeal from chaining batches

	// sealing is the in-flight background seal batch, nil when idle; queries
	// overlay its unpublished windows so detached records stay visible.
	sealing *sealBatch
	// sealedSeq is the per-window sealed sequence high-water mark, maintained
	// at publish time so opening a new memtable window is a map probe, not a
	// scan over every segment.
	sealedSeq map[int64]uint64
	// walSeq numbers rotated WAL files; staleWALs are rotated files whose
	// records are back in the memtable (failed seal, or partial coverage
	// found at Open) and must survive until a later seal covers them.
	walSeq    uint64
	staleWALs []string

	// gen is the segment-set generation: it advances whenever the set of
	// sealed segments changes (seal, compaction), and is readable without
	// the store lock. Result caches key on it; see Generation.
	gen atomic.Uint64

	// enc memoizes attribute wire encodings across WAL appends, seals, and
	// compactions (guarded by mu); dec canonicalizes attributes decoded from
	// v2 segment dictionaries so repeated scans share storage.
	enc *attrEncoder
	dec *decodeInterner

	// cache is the shared decompressed-block cache, nil when disabled.
	cache *blockCache
	// mmapOK records whether sealed segments may be memory-mapped: mmap is
	// on by default on supported platforms, but only against the real disk —
	// an injected filesystem must keep seeing every read.
	mmapOK bool
	mapped int // segments currently mapped (guarded by mu)

	writer Writer
}

// mmapSegment is the mapping entry point, indirect so tests can force the
// failure path and assert the ReadAt fallback serves identical results.
var mmapSegment = mmapOpen

// memWindow is the unsealed tail of one time window.
type memWindow struct {
	firstSeq uint64 // sequence number of recs[0] within this window
	recs     []collector.Record
}

// Open opens (creating if necessary) the store directory at dir and recovers
// any unsealed records from its WAL.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:  dir,
		opts: opts,
		fs:   fsys,
		mem:  make(map[int64]*memWindow),
		enc:  newAttrEncoder(),
		dec:  newDecodeInterner(),
	}
	s.writer = Writer{s: s}
	if opts.BlockCacheBytes > 0 {
		s.cache = newBlockCache(opts.BlockCacheBytes)
	}
	_, onDisk := fsys.(faults.Disk)
	s.mmapOK = onDisk && !opts.NoMmap

	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			fsys.Remove(filepath.Join(dir, name)) // half-written seal or compact
			continue
		}
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		seg, err := openSegment(fsys, filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("store: segment %s: %w", name, err)
		}
		seg.di = s.dec
		s.segs = append(s.segs, seg)
	}
	s.dropReplaced()
	sortSegments(s.segs)
	for _, g := range s.segs {
		if g.seq >= s.nextSeg {
			s.nextSeg = g.seq + 1
		}
		s.mapSegmentLocked(g)
	}

	// Replay WALs oldest-first: rotated files left by a crash mid-seal, then
	// the live WAL. Entries already covered by a sealed segment of their
	// window are duplicates from a crash between segment rename and WAL
	// deletion; skip them. The rest become the recovered memtable. A rotated
	// file whose every entry was covered is deleted now; one still backing
	// memtable records is kept as stale until a later seal covers it.
	s.sealedSeq = s.sealedSeqs()
	var rotated []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") {
			rotated = append(rotated, name)
		}
	}
	slices.Sort(rotated)
	for _, name := range rotated {
		var seq uint64
		if _, err := fmt.Sscanf(name, "wal-%d.log", &seq); err != nil {
			continue
		}
		if seq >= s.walSeq {
			s.walSeq = seq + 1
		}
		path := filepath.Join(dir, name)
		rw, ents, err := openWAL(fsys, path)
		if err != nil {
			return nil, err
		}
		rw.close()
		kept, err := s.replayWALEntries(ents)
		if err != nil {
			return nil, err
		}
		if kept == 0 {
			fsys.Remove(path)
		} else {
			s.staleWALs = append(s.staleWALs, path)
		}
	}
	w, entries2, err := openWAL(fsys, filepath.Join(dir, walName))
	if err != nil {
		return nil, err
	}
	s.wal = w
	if _, err := s.replayWALEntries(entries2); err != nil {
		return nil, err
	}
	s.gen.Store(s.nextSeg)
	obsSealWorkers.SetInt(int64(opts.SealWorkers))
	obsSegments.SetInt(int64(len(s.segs)))
	obsMemRecords.SetInt(int64(s.memN))
	obsWALBytes.SetInt(s.wal.size())
	return s, nil
}

// Generation returns the store's segment-set generation counter. It is
// monotone for the life of the process and advances exactly when the set of
// sealed segments changes — a seal or a compaction — so any result computed
// from sealed data is valid for as long as the generation it was computed
// under remains current. The serving layer keys its aggregate cache on it.
// Memtable appends do not advance the generation: a read-only serving
// process never observes memtable changes after Open, and a writing process
// seals before its data is queried remotely.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// sealedSeqs returns, per window, the highest sequence number covered by a
// sealed segment. Open uses it once to prime the incrementally-maintained
// sealedSeq map.
func (s *Store) sealedSeqs() map[int64]uint64 {
	m := make(map[int64]uint64)
	for _, g := range s.segs {
		if g.lastSeq > m[g.windowStart] {
			m[g.windowStart] = g.lastSeq
		}
	}
	return m
}

// replayWALEntries folds recovered WAL entries into the memtable, skipping
// entries a sealed segment already covers. kept counts the entries that
// became memtable records.
func (s *Store) replayWALEntries(entries []walEntry) (kept int, err error) {
	for _, ent := range entries {
		if ent.seq <= s.sealedSeq[ent.window] {
			continue
		}
		mw := s.mem[ent.window]
		if mw == nil {
			mw = &memWindow{firstSeq: ent.seq}
			s.mem[ent.window] = mw
		}
		if got := mw.firstSeq + uint64(len(mw.recs)); ent.seq != got {
			return kept, fmt.Errorf("store: WAL sequence gap in window %d: have %d, want %d", ent.window, ent.seq, got)
		}
		mw.recs = append(mw.recs, ent.rec)
		s.memN++
		kept++
	}
	return kept, nil
}

// dropReplaced removes segments that a surviving compacted segment claims to
// replace (a crash between compaction's rename and its deletes leaves both
// on disk).
func (s *Store) dropReplaced() {
	replaced := make(map[uint64]bool)
	for _, g := range s.segs {
		for _, seq := range g.replaces {
			replaced[seq] = true
		}
	}
	if len(replaced) == 0 {
		return
	}
	kept := s.segs[:0]
	for _, g := range s.segs {
		if replaced[g.seq] {
			s.fs.Remove(g.path)
			continue
		}
		kept = append(kept, g)
	}
	s.segs = kept
}

// mapSegmentLocked memory-maps one sealed segment when mapping is enabled.
// Mapping is strictly an optimization: on any failure the segment simply
// stays on the ReadAt path, and the failure is counted, not surfaced.
func (s *Store) mapSegmentLocked(g *segment) {
	if !s.mmapOK || g.mm != nil {
		return
	}
	data, err := mmapSegment(g.path, g.size)
	if err != nil {
		obsMmapFailures.Inc()
		return
	}
	g.mm = newSegMap(data)
	s.mapped++
	obsMmapSegments.SetInt(int64(s.mapped))
}

// unmapSegmentLocked releases the store's reference on a segment's mapping.
// Readers that acquired the mapping before this keep it alive until they
// drain; the pages are returned when the last reference drops.
func (s *Store) unmapSegmentLocked(g *segment) {
	if g.mm == nil {
		return
	}
	g.mm.release()
	g.mm = nil
	s.mapped--
	obsMmapSegments.SetInt(int64(s.mapped))
}

// dropSegmentLocked retires one replaced segment from the read path: its
// mapping reference is released and its cached blocks are dropped, so the
// cache budget is never spent on blocks no query can reach again.
func (s *Store) dropSegmentLocked(g *segment) {
	s.unmapSegmentLocked(g)
	if s.cache != nil {
		s.cache.dropSegment(g.fp)
	}
}

func sortSegments(segs []*segment) {
	slices.SortFunc(segs, func(a, b *segment) int {
		if c := cmp.Compare(a.windowStart, b.windowStart); c != 0 {
			return c
		}
		return cmp.Compare(a.seq, b.seq)
	})
}

// Writer returns the ingest half of the store.
func (s *Store) Writer() *Writer { return &s.writer }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// windowStart aligns t down to the store's partition width.
func (s *Store) windowStart(t time.Time) int64 {
	w := int64(s.opts.Window)
	n := t.UnixNano()
	r := n % w
	if r < 0 {
		r += w
	}
	return n - r
}

// Stats describes the current shape of the store.
type Stats struct {
	Segments   int   // sealed segment files
	SegmentsV1 int   // segments in block format v1 (inline attributes)
	SegmentsV2 int   // segments in block format v2 (attribute dictionary)
	Blocks     int   // compressed blocks across all segments
	Records    int64 // records in sealed segments
	MemRecords int   // unsealed records (memtable + any in-flight seal)
	// SealingRecords is the subset of MemRecords detached into a background
	// seal that has not published yet (0 when no seal is in flight).
	SealingRecords int
	Windows        int    // distinct time windows with any data
	DiskBytes      int64  // total size of segment files
	WALBytes       int64  // current WAL size
	Generation     uint64 // segment-set generation counter (see Store.Generation)
	Fingerprint    uint64 // content hash of the sealed segment set

	MmapSegments int             // segments currently served from a memory mapping
	BlockCache   BlockCacheStats // shared decompressed-block cache
}

// Stats reports store-level statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st Stats
	windows := make(map[int64]bool)
	st.Segments = len(s.segs)
	for _, g := range s.segs {
		st.Blocks += len(g.index.blocks)
		st.Records += int64(g.count)
		st.DiskBytes += g.size
		windows[g.windowStart] = true
		if g.ver >= segVersionV2 {
			st.SegmentsV2++
		} else {
			st.SegmentsV1++
		}
	}
	for w, mw := range s.mem {
		if len(mw.recs) > 0 {
			windows[w] = true
		}
	}
	if b := s.sealing; b != nil {
		for _, sw := range b.windows[b.published:] {
			windows[sw.window] = true
			st.SealingRecords += len(sw.recs)
		}
	}
	st.MemRecords = s.memN + st.SealingRecords
	st.Windows = len(windows)
	st.WALBytes = s.wal.size()
	st.Generation = s.gen.Load()
	st.Fingerprint = s.fingerprintLocked()
	st.MmapSegments = s.mapped
	st.BlockCache = s.cache.stats()
	return st
}

// fingerprintLocked hashes the identity of every sealed segment — file
// number, sequence range, record count — into one value. Two stores (or one
// store at two times) with the same fingerprint hold the same sealed segment
// set; unlike the generation counter it survives process restarts, so it is
// the cross-process spelling of "same data".
func (s *Store) fingerprintLocked() uint64 {
	h := fnv.New64a()
	var b [8]byte
	word := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	for _, g := range s.segs {
		word(g.seq)
		word(uint64(g.windowStart))
		word(g.firstSeq)
		word(g.lastSeq)
		word(uint64(g.count))
	}
	return h.Sum64()
}

// Close seals any unsealed records — joining a background seal already in
// flight — and releases the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closing = true
	err := s.sealSyncLocked()
	if cerr := s.wal.close(); err == nil {
		err = cerr
	}
	for _, g := range s.segs {
		s.unmapSegmentLocked(g)
	}
	s.closed = true
	return err
}
