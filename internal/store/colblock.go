package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/netaddr"
)

// colBlock is the decoded, columnar form of one segment block: every record
// field lives in its own dense array, and announce attributes are a small
// per-block dictionary referenced by index. Scans filter the columns as
// arrays — time range by binary search, then one compaction pass per set
// predicate — and materialize collector.Record values only for rows that
// survive, so a selective query never constructs the records it filters out.
//
// A colBlock is immutable once decoded; the shared block cache hands the
// same instance to any number of concurrent readers.
type colBlock struct {
	times    []int64 // ascending unixnano timestamps
	types    []collector.RecType
	peers    []bgp.ASN
	addrs    []netaddr.Addr
	prefixes []netaddr.Prefix
	attr     []int32 // per-row dictionary index, -1 = no attributes

	dict []bgp.Attrs
	// dictOrigin/dictHasOrig memoize Path.Origin() per dictionary entry, so
	// an origin predicate is one array probe per candidate row instead of an
	// AS-path walk per record per query.
	dictOrigin  []bgp.ASN
	dictHasOrig []bool

	// bytes is the approximate resident size of the decoded block, the unit
	// the cache budget is accounted in.
	bytes int64
}

func (cb *colBlock) rows() int { return len(cb.times) }

// reset truncates every column for reuse, dropping attribute references so a
// pooled scratch block never pins another block's interned tuples.
func (cb *colBlock) reset() {
	cb.times = cb.times[:0]
	cb.types = cb.types[:0]
	cb.peers = cb.peers[:0]
	cb.addrs = cb.addrs[:0]
	cb.prefixes = cb.prefixes[:0]
	cb.attr = cb.attr[:0]
	clear(cb.dict)
	cb.dict = cb.dict[:0]
	cb.dictOrigin = cb.dictOrigin[:0]
	cb.dictHasOrig = cb.dictHasOrig[:0]
	cb.bytes = 0
}

// colRowBytes is the fixed per-row footprint across the columns; the
// dictionary is accounted separately from its wire size.
const colRowBytes = 8 + 1 + 2 + 4 + 8 + 4

// decodeColBlock parses the inflated bytes b of block bi into cb. The
// decoded columns own their memory: nothing aliases b, so the caller's
// inflate buffer is free for reuse the moment this returns. Attribute tuples
// are canonicalized through the segment's interner when it has one, so every
// block of a store referencing the same tuple shares one value.
func decodeColBlock(g *segment, bi int, b []byte, cb *colBlock) error {
	bm := g.index.blocks[bi]
	cb.reset()
	v2 := g.ver >= segVersionV2
	if v2 {
		dictN, n := binary.Uvarint(b)
		if n <= 0 || dictN > uint64(len(b)) {
			return fmt.Errorf("%w: block %d dictionary count", ErrCorrupt, bi)
		}
		b = b[n:]
		for j := uint64(0); j < dictN; j++ {
			alen, n := binary.Uvarint(b)
			if n <= 0 || alen > uint64(len(b)-n) {
				return fmt.Errorf("%w: block %d dictionary entry %d", ErrCorrupt, bi, j)
			}
			b = b[n:]
			if err := cb.appendDict(g, b[:alen]); err != nil {
				return fmt.Errorf("%w: block %d dictionary entry %d: %v", ErrCorrupt, bi, j, err)
			}
			b = b[alen:]
			cb.bytes += int64(alen)
		}
	}

	prev := bm.minTime
	for i := int32(0); i < bm.count; i++ {
		dt, n := binary.Uvarint(b)
		if n <= 0 {
			return fmt.Errorf("%w: block %d record %d time", ErrCorrupt, bi, i)
		}
		b = b[n:]
		prev += int64(dt)
		var rec collector.Record
		var err error
		b, err = decodeRecordCore(b, &rec)
		if err != nil {
			return fmt.Errorf("%w: block %d record %d: %v", ErrCorrupt, bi, i, err)
		}
		ai := int32(-1)
		if v2 {
			if rec.Type == collector.Announce {
				idx, n := binary.Uvarint(b)
				if n <= 0 || idx >= uint64(len(cb.dict)) {
					return fmt.Errorf("%w: block %d record %d: attribute dictionary index", ErrCorrupt, bi, i)
				}
				b = b[n:]
				ai = int32(idx)
			}
		} else {
			// v1 rows carry inline attribute bytes; each one becomes its own
			// dictionary entry so both formats scan through the same kernels.
			alen, n := binary.Uvarint(b)
			if n <= 0 || alen > uint64(len(b)-n) {
				return fmt.Errorf("%w: block %d record %d: attribute length", ErrCorrupt, bi, i)
			}
			b = b[n:]
			if alen > 0 {
				if err := cb.appendDict(g, b[:alen]); err != nil {
					return fmt.Errorf("%w: block %d record %d: %v", ErrCorrupt, bi, i, err)
				}
				b = b[alen:]
				cb.bytes += int64(alen)
				ai = int32(len(cb.dict) - 1)
			}
		}
		cb.times = append(cb.times, prev)
		cb.types = append(cb.types, rec.Type)
		cb.peers = append(cb.peers, rec.PeerAS)
		cb.addrs = append(cb.addrs, rec.PeerAddr)
		cb.prefixes = append(cb.prefixes, rec.Prefix)
		cb.attr = append(cb.attr, ai)
	}
	if len(b) != 0 {
		return fmt.Errorf("%w: block %d trailing bytes", ErrCorrupt, bi)
	}
	cb.bytes += int64(cb.rows()) * colRowBytes
	cb.bytes += int64(len(cb.dict)) * 48 // Attrs headers + origin columns
	return nil
}

// appendDict decodes one attribute tuple from wire bytes w (not retained)
// and appends it, with its memoized origin, to the dictionary columns.
func (cb *colBlock) appendDict(g *segment, w []byte) error {
	var a bgp.Attrs
	var err error
	if g.di != nil {
		a, err = g.di.internWire(w)
	} else {
		a, err = bgp.UnmarshalAttrs(w)
	}
	if err != nil {
		return err
	}
	origin, ok := a.Path.Origin()
	cb.dict = append(cb.dict, a)
	cb.dictOrigin = append(cb.dictOrigin, origin)
	cb.dictHasOrig = append(cb.dictHasOrig, ok)
	return nil
}

// record materializes row i.
func (cb *colBlock) record(i int) collector.Record {
	rec := collector.Record{
		Time:     time.Unix(0, cb.times[i]).UTC(),
		Type:     cb.types[i],
		PeerAS:   cb.peers[i],
		PeerAddr: cb.addrs[i],
		Prefix:   cb.prefixes[i],
	}
	if ai := cb.attr[i]; ai >= 0 {
		rec.Attrs = cb.dict[ai]
	}
	return rec
}

// timeRange returns the half-open row range [lo, hi) whose timestamps fall
// in the query's [From, To) window, by binary search over the sorted time
// column.
func (cb *colBlock) timeRange(q *Query) (int, int) {
	lo, hi := 0, cb.rows()
	if !q.From.IsZero() {
		lo = searchTimes(cb.times, q.From.UnixNano())
	}
	if !q.To.IsZero() {
		hi = searchTimes(cb.times, q.To.UnixNano())
	}
	return lo, hi
}

// searchTimes returns the first index with times[i] >= t.
func searchTimes(times []int64, t int64) int {
	lo, hi := 0, len(times)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if times[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// appendMatching materializes the rows of cb satisfying q onto dst and
// returns it. The selection scratch *selBuf is reused across calls; neither
// it nor dst alias the block. The predicate semantics are exactly
// Query.match's: the merge layer's record-level re-check is a no-op for rows
// this returns.
func (cb *colBlock) appendMatching(q *Query, selBuf *[]int32, dst []collector.Record) []collector.Record {
	lo, hi := cb.timeRange(q)
	if lo >= hi {
		return dst
	}
	if len(q.Types) == 0 && len(q.PeerAS) == 0 && len(q.OriginAS) == 0 && !q.hasPrefix() {
		// Pure time-range scan: materialize the row range directly.
		for i := lo; i < hi; i++ {
			dst = append(dst, cb.record(i))
		}
		return dst
	}

	// Seed the selection from the row range, then narrow it with one
	// compaction pass per set predicate — each pass touches one column.
	sel := (*selBuf)[:0]
	if len(q.Types) > 0 {
		for i := lo; i < hi; i++ {
			if containsType(q.Types, cb.types[i]) {
				sel = append(sel, int32(i))
			}
		}
	} else {
		for i := lo; i < hi; i++ {
			sel = append(sel, int32(i))
		}
	}
	if len(q.PeerAS) > 0 {
		kept := sel[:0]
		for _, i := range sel {
			if containsASN(q.PeerAS, cb.peers[i]) {
				kept = append(kept, i)
			}
		}
		sel = kept
	}
	if len(q.OriginAS) > 0 {
		kept := sel[:0]
		for _, i := range sel {
			ai := cb.attr[i]
			if cb.types[i] == collector.Announce && ai >= 0 && cb.dictHasOrig[ai] &&
				containsASN(q.OriginAS, cb.dictOrigin[ai]) {
				kept = append(kept, i)
			}
		}
		sel = kept
	}
	if q.hasPrefix() {
		kept := sel[:0]
		for _, i := range sel {
			if cb.prefixes[i] == q.Prefix {
				kept = append(kept, i)
			}
		}
		sel = kept
	}
	*selBuf = sel
	for _, i := range sel {
		dst = append(dst, cb.record(int(i)))
	}
	return dst
}

// blockScanner bundles the per-consumer scratch state of the columnar read
// path: the inflate buffers, an uncached decode target, and the selection
// buffer the predicate kernels compact. Serial streams and parallel scan
// workers each own one for their lifetime.
type blockScanner struct {
	br      *blockReader
	scratch *colBlock
	sel     []int32
}

var blockScannerPool = sync.Pool{New: func() any {
	return &blockScanner{br: new(blockReader), scratch: new(colBlock)}
}}

func getBlockScanner() *blockScanner { return blockScannerPool.Get().(*blockScanner) }

func putBlockScanner(bs *blockScanner) {
	trimBlockReader(bs.br)
	bs.scratch.reset()
	blockScannerPool.Put(bs)
}

// fetch returns the columnar form of block bi of g — through the store's
// shared cache when it has one (hit reports whether the block was served
// without touching disk), or decoded into the scanner's private scratch when
// caching is off. mm is the segment mapping the caller holds a reference on
// (nil to read through f).
func (bs *blockScanner) fetch(g *segment, f io.ReaderAt, mm *segMap, cache *blockCache, bi int) (*colBlock, bool, error) {
	if cache == nil {
		raw, err := g.inflateBlock(bs.br, f, mm, bi)
		if err != nil {
			return nil, false, err
		}
		if err := decodeColBlock(g, bi, raw, bs.scratch); err != nil {
			return nil, false, err
		}
		return bs.scratch, false, nil
	}
	return cache.getOrLoad(blockKey{seg: g.fp, block: int32(bi)}, func() (*colBlock, error) {
		raw, err := g.inflateBlock(bs.br, f, mm, bi)
		if err != nil {
			return nil, err
		}
		cb := new(colBlock)
		if err := decodeColBlock(g, bi, raw, cb); err != nil {
			return nil, err
		}
		return cb, nil
	})
}
