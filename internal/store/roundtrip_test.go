package store

import (
	"io"
	"path/filepath"
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/workload"
)

// synthesize runs the workload generator for a few days and returns the
// observed stream — the same campaign machinery the paper's tools consume.
func synthesize(t *testing.T, days int) []collector.Record {
	t.Helper()
	cfg := workload.SmallConfig()
	cfg.Days = days
	g, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var recs []collector.Record
	g.Run(func(r collector.Record) { recs = append(recs, r) }, nil)
	if len(recs) == 0 {
		t.Fatal("generator produced no records")
	}
	return recs
}

// ingest appends every record from r into a fresh store and seals it.
func ingest(t *testing.T, dir string, r collector.RecordReader, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Writer().AppendAll(r); err != nil {
		t.Fatal(err)
	}
	if err := s.Writer().Seal(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRoundTripCollectorLog is the end-to-end property: a synthetic
// workload written through collector.Writer, read back, ingested into the
// store, and queried with no predicates must come back record for record.
func TestRoundTripCollectorLog(t *testing.T) {
	recs := synthesize(t, 3)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "campaign.irtl.gz")

	lw, err := collector.Create(logPath, "Mae-East")
	if err != nil {
		t.Fatal(err)
	}
	if err := collector.WriteAll(lw, recs); err != nil {
		t.Fatal(err)
	}
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}

	lr, err := collector.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	fileRecs, err := collector.ReadAll(lr)
	if err != nil {
		t.Fatal(err)
	}
	lr.Close()

	lr2, err := collector.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	s := ingest(t, filepath.Join(dir, "store"), lr2, Options{})
	lr2.Close()
	defer s.Close()

	got, _ := queryAll(t, s, Query{})
	assertSameRecords(t, got, fileRecs)

	// The store must hold the stream with day-partitioned segments.
	if st := s.Stats(); st.Windows < 3 || st.Segments < 3 {
		t.Fatalf("expected >=3 daily windows, got %+v", st)
	}
}

// TestRoundTripMRT covers the MRT-sourced path: records written as RFC 6396
// BGP4MP entries (second-resolution timestamps), read back, ingested, and
// queried must equal the MRT-decoded stream exactly.
func TestRoundTripMRT(t *testing.T) {
	recs := synthesize(t, 2)
	dir := t.TempDir()
	mrtPath := filepath.Join(dir, "campaign.mrt.gz")

	mw, err := collector.CreateMRT(mrtPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := mw.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}

	mr, err := collector.OpenMRT(mrtPath)
	if err != nil {
		t.Fatal(err)
	}
	var mrtRecs []collector.Record
	for {
		rec, err := mr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		mrtRecs = append(mrtRecs, rec)
	}
	mr.Close()
	if len(mrtRecs) != len(recs) {
		t.Fatalf("MRT round trip lost records: %d of %d", len(mrtRecs), len(recs))
	}

	mr2, err := collector.OpenMRT(mrtPath)
	if err != nil {
		t.Fatal(err)
	}
	s := ingest(t, filepath.Join(dir, "store"), mr2, Options{})
	mr2.Close()
	defer s.Close()

	got, _ := queryAll(t, s, Query{})
	assertSameRecords(t, got, mrtRecs)
}

// TestRoundTripDerivedQueries is the property-test half: for predicates
// derived from the stream itself, the store's answer must equal an
// in-memory filter of the reference stream — same records, same order.
func TestRoundTripDerivedQueries(t *testing.T) {
	recs := synthesize(t, 2)
	s := ingest(t, t.TempDir(), sliceReader(recs), Options{})
	defer s.Close()

	day0 := recs[0].Time.Truncate(24 * time.Hour)
	var someOrigin bgp.ASN
	for _, rec := range recs {
		if o, ok := originOf(rec); ok {
			someOrigin = o
			break
		}
	}
	queries := []Query{
		{From: day0.Add(6 * time.Hour), To: day0.Add(30 * time.Hour)},
		{PeerAS: []bgp.ASN{recs[0].PeerAS}},
		{OriginAS: []bgp.ASN{someOrigin}},
		{Prefix: recs[len(recs)/2].Prefix},
		{Types: []collector.RecType{collector.Withdraw}, From: day0.Add(12 * time.Hour)},
		{PeerAS: []bgp.ASN{recs[0].PeerAS}, OriginAS: []bgp.ASN{someOrigin},
			Types: []collector.RecType{collector.Announce}},
	}
	for qi, q := range queries {
		var want []collector.Record
		for _, rec := range recs {
			if q.match(rec) {
				want = append(want, rec)
			}
		}
		got, _ := queryAll(t, s, q)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d records, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if !recordsEqual(got[i], want[i]) {
				t.Fatalf("query %d record %d mismatch", qi, i)
			}
		}
	}
}

// sliceReader adapts a record slice to collector.RecordReader.
type sliceRecordReader struct {
	recs []collector.Record
	pos  int
}

func sliceReader(recs []collector.Record) *sliceRecordReader {
	return &sliceRecordReader{recs: recs}
}

func (r *sliceRecordReader) Next() (collector.Record, error) {
	if r.pos >= len(r.recs) {
		return collector.Record{}, io.EOF
	}
	rec := r.recs[r.pos]
	r.pos++
	return rec, nil
}

func (r *sliceRecordReader) Close() error { return nil }
