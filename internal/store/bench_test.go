package store

import (
	"context"
	"io"
	"testing"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/obs"
)

// benchStore builds a sealed multi-segment store once per benchmark run.
func benchStore(b *testing.B) *Store {
	b.Helper()
	s, err := Open(b.TempDir(), testOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	w := s.Writer()
	for _, rec := range hourlyWorkload(4, 400) {
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Seal(); err != nil {
		b.Fatal(err)
	}
	return s
}

func drainReader(b *testing.B, r *Reader) int {
	b.Helper()
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		n++
	}
	return n
}

// BenchmarkStoreQuery measures one full indexed scan, untraced versus inside
// an active trace. With no span in the context every tracing hook in the
// read path (StartChild, segmentSpan, the EXPLAIN annotations on Close) is a
// nil no-op, so Untraced allocs/op is the pre-tracing baseline — the delta
// tracing adds when disabled is zero (pinned by
// TestQueryUntracedTracingAllocsZero).
func BenchmarkStoreQuery(b *testing.B) {
	s := benchStore(b)
	q := Query{}

	b.Run("Untraced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := s.QueryCtx(context.Background(), q)
			if err != nil {
				b.Fatal(err)
			}
			drainReader(b, r)
			r.Close()
		}
	})

	b.Run("Traced", func(b *testing.B) {
		tracer := &obs.Tracer{}
		tracer.Enable(obs.TraceConfig{SampleRate: 0, SlowThreshold: -1})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx, root := tracer.Start(context.Background(), "bench")
			r, err := s.QueryCtx(ctx, q)
			if err != nil {
				b.Fatal(err)
			}
			drainReader(b, r)
			r.Close()
			root.Finish()
		}
	})
}

// benchCachedStore is benchStore with the shared block cache enabled.
func benchCachedStore(b *testing.B) *Store {
	b.Helper()
	opts := testOptions()
	opts.BlockCacheBytes = 64 << 20
	s, err := Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	w := s.Writer()
	for _, rec := range hourlyWorkload(4, 400) {
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Seal(); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkStoreQueryCache measures the same full scan cold (cache purged
// every iteration, so every block is read, inflated, and decoded) versus
// warm (every block served from the shared cache). The B/op gap is the
// per-query cost the cache removes for repeated identical queries.
func BenchmarkStoreQueryCache(b *testing.B) {
	s := benchCachedStore(b)
	q := Query{}

	b.Run("Cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.cache.purge()
			r, err := s.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			drainReader(b, r)
			r.Close()
		}
	})

	b.Run("Warm", func(b *testing.B) {
		r, err := s.Query(q) // prime
		if err != nil {
			b.Fatal(err)
		}
		drainReader(b, r)
		r.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := s.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			drainReader(b, r)
			r.Close()
		}
	})
}

// BenchmarkStoreQuerySelective measures a selective predicate (one origin AS
// out of four hours' worth) on a warm cache: the columnar kernels filter the
// cached columns and materialize only the surviving rows.
func BenchmarkStoreQuerySelective(b *testing.B) {
	s := benchCachedStore(b)
	q := Query{OriginAS: []bgp.ASN{7001}}
	r, err := s.Query(q) // prime
	if err != nil {
		b.Fatal(err)
	}
	drainReader(b, r)
	r.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := s.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		drainReader(b, r)
		r.Close()
	}
}

// BenchmarkColumnarFilter is the kernel in isolation: one decoded block,
// predicate applied column-wise, zero matching rows — the per-block floor of
// a selective scan with everything hot.
func BenchmarkColumnarFilter(b *testing.B) {
	s := benchStore(b)
	s.mu.Lock()
	g := s.segs[0]
	s.mu.Unlock()
	f, err := s.fs.Open(g.path)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	bs := getBlockScanner()
	defer putBlockScanner(bs)
	raw, err := g.inflateBlock(bs.br, f, nil, 0)
	if err != nil {
		b.Fatal(err)
	}
	cb := new(colBlock)
	if err := decodeColBlock(g, 0, raw, cb); err != nil {
		b.Fatal(err)
	}
	q := &Query{PeerAS: []bgp.ASN{9999}}
	dst := make([]collector.Record, 0, cb.rows())
	sel := make([]int32, 0, cb.rows())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = cb.appendMatching(q, &sel, dst[:0])
	}
	if len(dst) != 0 {
		b.Fatal("predicate unexpectedly matched")
	}
}

// TestQueryUntracedTracingAllocsZero pins the zero-allocation contract of
// the tracing seam the read path threads through: with no active span, the
// exact obs calls QueryCtx/segStream/Close make must not allocate.
func TestQueryUntracedTracingAllocsZero(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		_, sp := obs.StartChild(ctx, "store_scan") // QueryCtx root hook
		seg := segmentSpan(sp, nil, 0)             // per-segment child hook
		seg.Annotate("quarantined_block", "x")     // quarantine annotation
		seg.Finish()                               // segStream close
		Explain{}.annotate(sp)                     // Reader.Close EXPLAIN attach
		sp.SetError(nil)
		sp.Finish()
	})
	if allocs != 0 {
		t.Fatalf("untraced read path allocates %.1f per query from tracing hooks, want 0", allocs)
	}
}
