package store

import (
	"context"
	"fmt"
	"io"
	"slices"
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/obs"
)

// benchStore builds a sealed multi-segment store once per benchmark run.
func benchStore(b *testing.B) *Store {
	b.Helper()
	s, err := Open(b.TempDir(), testOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	w := s.Writer()
	for _, rec := range hourlyWorkload(4, 400) {
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Seal(); err != nil {
		b.Fatal(err)
	}
	return s
}

func drainReader(b *testing.B, r *Reader) int {
	b.Helper()
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		n++
	}
	return n
}

// BenchmarkStoreQuery measures one full indexed scan, untraced versus inside
// an active trace. With no span in the context every tracing hook in the
// read path (StartChild, segmentSpan, the EXPLAIN annotations on Close) is a
// nil no-op, so Untraced allocs/op is the pre-tracing baseline — the delta
// tracing adds when disabled is zero (pinned by
// TestQueryUntracedTracingAllocsZero).
func BenchmarkStoreQuery(b *testing.B) {
	s := benchStore(b)
	q := Query{}

	b.Run("Untraced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := s.QueryCtx(context.Background(), q)
			if err != nil {
				b.Fatal(err)
			}
			drainReader(b, r)
			r.Close()
		}
	})

	b.Run("Traced", func(b *testing.B) {
		tracer := &obs.Tracer{}
		tracer.Enable(obs.TraceConfig{SampleRate: 0, SlowThreshold: -1})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx, root := tracer.Start(context.Background(), "bench")
			r, err := s.QueryCtx(ctx, q)
			if err != nil {
				b.Fatal(err)
			}
			drainReader(b, r)
			r.Close()
			root.Finish()
		}
	})
}

// benchCachedStore is benchStore with the shared block cache enabled.
func benchCachedStore(b *testing.B) *Store {
	b.Helper()
	opts := testOptions()
	opts.BlockCacheBytes = 64 << 20
	s, err := Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	w := s.Writer()
	for _, rec := range hourlyWorkload(4, 400) {
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Seal(); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkStoreQueryCache measures the same full scan cold (cache purged
// every iteration, so every block is read, inflated, and decoded) versus
// warm (every block served from the shared cache). The B/op gap is the
// per-query cost the cache removes for repeated identical queries.
func BenchmarkStoreQueryCache(b *testing.B) {
	s := benchCachedStore(b)
	q := Query{}

	b.Run("Cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.cache.purge()
			r, err := s.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			drainReader(b, r)
			r.Close()
		}
	})

	b.Run("Warm", func(b *testing.B) {
		r, err := s.Query(q) // prime
		if err != nil {
			b.Fatal(err)
		}
		drainReader(b, r)
		r.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := s.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			drainReader(b, r)
			r.Close()
		}
	})
}

// BenchmarkStoreQuerySelective measures a selective predicate (one origin AS
// out of four hours' worth) on a warm cache: the columnar kernels filter the
// cached columns and materialize only the surviving rows.
func BenchmarkStoreQuerySelective(b *testing.B) {
	s := benchCachedStore(b)
	q := Query{OriginAS: []bgp.ASN{7001}}
	r, err := s.Query(q) // prime
	if err != nil {
		b.Fatal(err)
	}
	drainReader(b, r)
	r.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := s.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		drainReader(b, r)
		r.Close()
	}
}

// BenchmarkColumnarFilter is the kernel in isolation: one decoded block,
// predicate applied column-wise, zero matching rows — the per-block floor of
// a selective scan with everything hot.
func BenchmarkColumnarFilter(b *testing.B) {
	s := benchStore(b)
	s.mu.Lock()
	g := s.segs[0]
	s.mu.Unlock()
	f, err := s.fs.Open(g.path)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	bs := getBlockScanner()
	defer putBlockScanner(bs)
	raw, err := g.inflateBlock(bs.br, f, nil, 0)
	if err != nil {
		b.Fatal(err)
	}
	cb := new(colBlock)
	if err := decodeColBlock(g, 0, raw, cb); err != nil {
		b.Fatal(err)
	}
	q := &Query{PeerAS: []bgp.ASN{9999}}
	dst := make([]collector.Record, 0, cb.rows())
	sel := make([]int32, 0, cb.rows())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = cb.appendMatching(q, &sel, dst[:0])
	}
	if len(dst) != 0 {
		b.Fatal("predicate unexpectedly matched")
	}
}

// BenchmarkStoreSeal measures pure seal throughput — memtable to sealed,
// indexed segments — at one worker (the pre-pipeline serial write path) and
// at eight. The output bytes are identical at any worker count (pinned by
// TestSealedBytesIdenticalAcrossWorkers), so records/sec is the whole story:
// block encoding and deflate dominate a seal, and they parallelize across
// blocks.
func BenchmarkStoreSeal(b *testing.B) {
	recs := hourlyWorkload(4, 2000)
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				opts := testOptions()
				opts.SealWorkers = workers
				opts.syncSeal = true // time the seal itself, not goroutine handoff
				s, err := Open(b.TempDir(), opts)
				if err != nil {
					b.Fatal(err)
				}
				w := s.Writer()
				if err := w.AppendBatch(recs); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := w.Seal(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
		})
	}
}

// BenchmarkIngestToSealed is the end-to-end ingest path under auto-seal:
// batched appends with WAL flushes, background seals overlapping further
// appends, and a final seal. This is what `bgpstore ingest` does, so the
// records/sec here is the wire-to-sealed ceiling of the tool.
func BenchmarkIngestToSealed(b *testing.B) {
	recs := hourlyWorkload(4, 4000)
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				opts := testOptions()
				opts.SealWorkers = workers
				opts.AutoSealRecords = 2048
				opts.FlushEvery = 256
				s, err := Open(b.TempDir(), opts)
				if err != nil {
					b.Fatal(err)
				}
				w := s.Writer()
				b.StartTimer()
				for off := 0; off < len(recs); off += 256 {
					end := min(off+256, len(recs))
					if err := w.AppendBatch(recs[off:end]); err != nil {
						b.Fatal(err)
					}
				}
				if err := w.Seal(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
		})
	}
}

// BenchmarkSealStall measures the longest window a seal occupies the store
// lock. Opening a query is the lock-bound step — QueryCtx snapshots the
// segment set and memtable under s.mu and the scan itself runs lock-free —
// so the longest single lock occupancy is exactly the worst stall a seal
// imposes on a reader: a query arriving at the start of that window waits it
// out. Both modes seal an identical 65536-record memtable. Sync seals inline
// under the store lock (the pre-pipeline behavior, kept behind the
// unexported syncSeal option exactly for this A/B), so the occupancy is the
// whole sort+encode+compress+rename+publish. Background splits the same seal
// into its lock-held spans — the detach (WAL flush+rotate, snapshot swap)
// and one publish per window — with the sort/encode/compress running off the
// lock; the occupancies are timed directly around those spans, replicating
// runSeal step by step, so the number is deterministic and not polluted by
// goroutine wakeup latency or kernel timeslicing on small hosts.
// max-stall-ms bounds how long a dashboard query can hang during ingest.
func BenchmarkSealStall(b *testing.B) {
	recs := hourlyWorkload(2, 32768)
	fill := func(b *testing.B, sync bool) *Store {
		b.Helper()
		opts := testOptions()
		opts.FlushEvery = 256
		opts.syncSeal = sync
		s, err := Open(b.TempDir(), opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Writer().AppendBatch(recs); err != nil {
			b.Fatal(err)
		}
		return s
	}

	b.Run("Sync", func(b *testing.B) {
		var worst time.Duration
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := fill(b, true)
			b.StartTimer()
			start := time.Now()
			if err := s.Writer().Seal(); err != nil {
				b.Fatal(err)
			}
			if d := time.Since(start); d > worst {
				worst = d
			}
			b.StopTimer()
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(worst.Nanoseconds())/1e6, "max-stall-ms")
		b.ReportMetric(0, "ns/op")
	})

	b.Run("Background", func(b *testing.B) {
		var worst time.Duration
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := fill(b, false)
			b.StartTimer()
			// The lock-held span an append pays when it crosses the
			// auto-seal threshold: flush, WAL rotation, memtable detach.
			s.mu.Lock()
			start := time.Now()
			bat, err := s.detachSealLocked()
			d := time.Since(start)
			s.mu.Unlock()
			if err != nil {
				b.Fatal(err)
			}
			if bat == nil {
				b.Fatal("nothing detached")
			}
			if d > worst {
				worst = d
			}
			// runSeal, step by step: sort/encode/compress run off the lock;
			// only each publish re-acquires it, and that span is the stall.
			for wi := range bat.windows {
				sw := &bat.windows[wi]
				sorted := slices.Clone(sw.recs)
				slices.SortStableFunc(sorted, func(a, b collector.Record) int {
					return a.Time.Compare(b.Time)
				})
				seg, err := writeSegment(s.fs, s.dir, sw.seq, sw.window, sw.firstSeq, sorted, nil, s.opts)
				if err != nil {
					b.Fatal(err)
				}
				start := time.Now()
				s.publishSealed(bat, wi, seg, false)
				if d := time.Since(start); d > worst {
					worst = d
				}
			}
			s.finishSeal(bat, nil, false)
			b.StopTimer()
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(worst.Nanoseconds())/1e6, "max-stall-ms")
		b.ReportMetric(0, "ns/op")
	})
}

// TestQueryUntracedTracingAllocsZero pins the zero-allocation contract of
// the tracing seam the read path threads through: with no active span, the
// exact obs calls QueryCtx/segStream/Close make must not allocate.
func TestQueryUntracedTracingAllocsZero(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		_, sp := obs.StartChild(ctx, "store_scan") // QueryCtx root hook
		seg := segmentSpan(sp, nil, 0)             // per-segment child hook
		seg.Annotate("quarantined_block", "x")     // quarantine annotation
		seg.Finish()                               // segStream close
		Explain{}.annotate(sp)                     // Reader.Close EXPLAIN attach
		sp.SetError(nil)
		sp.Finish()
	})
	if allocs != 0 {
		t.Fatalf("untraced read path allocates %.1f per query from tracing hooks, want 0", allocs)
	}
}
