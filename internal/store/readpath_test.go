package store

import (
	"errors"
	"sync"
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
)

// buildReadpathStore seals the hourly workload into several segments per
// window (two seals per hour of data), so compaction has real work and the
// cache sees a multi-segment store.
func buildReadpathStore(t *testing.T, dir string, opts Options, hours, perHour int) (*Store, []collector.Record) {
	t.Helper()
	recs := hourlyWorkload(hours, perHour)
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	w := s.Writer()
	for i, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		if (i+1)%(perHour/2) == 0 {
			if err := w.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	return s, recs
}

// readpathQueries is the predicate mix the equivalence tests sweep: full
// scan, time slice, peer, origin, type, prefix, and combinations.
func readpathQueries(recs []collector.Record) []Query {
	mid := recs[len(recs)/2].Time
	return []Query{
		{},
		{From: mid.Add(-30 * time.Minute), To: mid.Add(90 * time.Minute)},
		{PeerAS: []bgp.ASN{101}},
		{OriginAS: []bgp.ASN{7001, 7003}},
		{Types: []collector.RecType{collector.Withdraw}},
		{Prefix: recs[7].Prefix},
		{From: mid, PeerAS: []bgp.ASN{102, 103}, Types: []collector.RecType{collector.Announce}},
	}
}

// TestMmapEnabledByDefault asserts that a store on the real disk maps every
// sealed segment, keeps mapping across seals and compactions, and reports it
// in Stats.
func TestMmapEnabledByDefault(t *testing.T) {
	s, recs := buildReadpathStore(t, t.TempDir(), testOptions(), 4, 200)
	defer s.Close()
	st := s.Stats()
	if st.Segments == 0 || st.MmapSegments != st.Segments {
		t.Fatalf("MmapSegments = %d, want %d (all segments mapped)", st.MmapSegments, st.Segments)
	}
	got, _ := queryAll(t, s, Query{})
	assertSameRecords(t, got, recs)
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.MmapSegments != st.Segments {
		t.Fatalf("after compact: MmapSegments = %d, want %d", st.MmapSegments, st.Segments)
	}
	got, _ = queryAll(t, s, Query{})
	assertSameRecords(t, got, recs)
}

// TestNoMmapOption asserts the escape hatch: -no-mmap stores never map and
// return identical results through the ReadAt path.
func TestNoMmapOption(t *testing.T) {
	opts := testOptions()
	opts.NoMmap = true
	s, recs := buildReadpathStore(t, t.TempDir(), opts, 3, 150)
	defer s.Close()
	if st := s.Stats(); st.MmapSegments != 0 {
		t.Fatalf("NoMmap store mapped %d segments", st.MmapSegments)
	}
	for _, q := range readpathQueries(recs) {
		got, _ := queryAll(t, s, q)
		var want []collector.Record
		for _, rec := range recs {
			if q.match(rec) {
				want = append(want, rec)
			}
		}
		assertSameRecords(t, got, want)
	}
}

// TestMmapFailureFallsBack forces every mapping attempt to fail through the
// test hook and asserts the store silently serves everything via ReadAt.
func TestMmapFailureFallsBack(t *testing.T) {
	defer func() { mmapSegment = mmapOpen }()
	mmapSegment = func(path string, size int64) ([]byte, error) {
		return nil, errors.New("forced mmap failure")
	}
	s, recs := buildReadpathStore(t, t.TempDir(), testOptions(), 3, 150)
	defer s.Close()
	if st := s.Stats(); st.MmapSegments != 0 {
		t.Fatalf("MmapSegments = %d after forced mmap failures, want 0", st.MmapSegments)
	}
	got, _ := queryAll(t, s, Query{})
	assertSameRecords(t, got, recs)
	par, _ := queryAllParallel(t, s, Query{}, 4)
	assertSameRecords(t, par, recs)
}

// TestReadPathEquivalence is the bit-identical contract across every read
// configuration: serial/parallel × cache-on/cache-off × mmap/no-mmap must
// produce exactly the same record sequence for a spread of predicates.
func TestReadPathEquivalence(t *testing.T) {
	base := testOptions()
	cached := base
	cached.BlockCacheBytes = 8 << 20
	cachedNoMmap := cached
	cachedNoMmap.NoMmap = true

	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	opts := []Options{base, cached, cachedNoMmap}
	stores := make([]*Store, len(opts))
	var recs []collector.Record
	for i := range opts {
		stores[i], recs = buildReadpathStore(t, dirs[i], opts[i], 4, 200)
		defer stores[i].Close()
	}

	for qi, q := range readpathQueries(recs) {
		var want []collector.Record
		for _, rec := range recs {
			if q.match(rec) {
				want = append(want, rec)
			}
		}
		for si, s := range stores {
			got, _ := queryAll(t, s, q)
			if len(got) != len(want) {
				t.Fatalf("query %d store %d: serial got %d records, want %d", qi, si, len(got), len(want))
			}
			assertSameRecords(t, got, want)
			par, _ := queryAllParallel(t, s, q, 4)
			assertSameRecords(t, par, want)
			// Run the cached stores again so the second pass is served from
			// the cache and must still be identical.
			again, _ := queryAll(t, s, q)
			assertSameRecords(t, again, want)
		}
	}
	if live := recBufsLive.Load(); live != 0 {
		t.Fatalf("recBufsLive = %d after equivalence sweep, want 0", live)
	}
}

// TestBlockCacheHitAccounting asserts the Explain/ScanStats split: a cold
// query reads from disk and misses; an identical warm query is served from
// the cache byte-for-byte, with zero disk reads and zero decompression.
func TestBlockCacheHitAccounting(t *testing.T) {
	opts := testOptions()
	opts.BlockCacheBytes = 32 << 20
	s, recs := buildReadpathStore(t, t.TempDir(), opts, 3, 200)
	defer s.Close()

	cold, coldSt := queryAll(t, s, Query{})
	assertSameRecords(t, cold, recs)
	if coldSt.BlocksCacheMiss != coldSt.BlocksScanned || coldSt.BlocksCacheHit != 0 {
		t.Fatalf("cold scan: hit=%d miss=%d scanned=%d, want all misses",
			coldSt.BlocksCacheHit, coldSt.BlocksCacheMiss, coldSt.BlocksScanned)
	}
	if coldSt.BytesReadDisk == 0 || coldSt.BytesDecompressed == 0 || coldSt.BytesFromCache != 0 {
		t.Fatalf("cold scan bytes: disk=%d decompressed=%d cache=%d",
			coldSt.BytesReadDisk, coldSt.BytesDecompressed, coldSt.BytesFromCache)
	}

	warm, warmSt := queryAll(t, s, Query{})
	assertSameRecords(t, warm, recs)
	if warmSt.BlocksCacheHit != warmSt.BlocksScanned || warmSt.BlocksCacheMiss != 0 {
		t.Fatalf("warm scan: hit=%d miss=%d scanned=%d, want all hits",
			warmSt.BlocksCacheHit, warmSt.BlocksCacheMiss, warmSt.BlocksScanned)
	}
	if warmSt.BytesReadDisk != 0 || warmSt.BytesDecompressed != 0 || warmSt.BytesFromCache == 0 {
		t.Fatalf("warm scan bytes: disk=%d decompressed=%d cache=%d, want cache only",
			warmSt.BytesReadDisk, warmSt.BytesDecompressed, warmSt.BytesFromCache)
	}
	// RecordsScanned semantics are unchanged by the cache.
	if warmSt.RecordsScanned != coldSt.RecordsScanned {
		t.Fatalf("RecordsScanned warm %d != cold %d", warmSt.RecordsScanned, coldSt.RecordsScanned)
	}

	bc := s.Stats().BlockCache
	if !bc.Enabled || bc.Hits == 0 || bc.Misses == 0 || bc.UsedBytes == 0 {
		t.Fatalf("BlockCacheStats not populated: %+v", bc)
	}
}

// TestBlockCacheEviction pins the byte budget: a cache far smaller than the
// store must evict under pressure, never exceed its budget, and still serve
// correct results.
func TestBlockCacheEviction(t *testing.T) {
	opts := testOptions()
	opts.BlockCacheBytes = 8 << 10 // a handful of decoded blocks at most
	s, recs := buildReadpathStore(t, t.TempDir(), opts, 4, 300)
	defer s.Close()

	for i := 0; i < 3; i++ {
		got, _ := queryAll(t, s, Query{})
		assertSameRecords(t, got, recs)
	}
	bc := s.Stats().BlockCache
	if bc.Evictions == 0 {
		t.Fatalf("no evictions under byte pressure: %+v", bc)
	}
	if bc.UsedBytes > bc.BudgetBytes {
		t.Fatalf("cache over budget: used %d > budget %d", bc.UsedBytes, bc.BudgetBytes)
	}
	s.cache.mu.Lock()
	var sum int64
	for _, el := range s.cache.entries {
		sum += el.Value.(*cacheEntry).cb.bytes
	}
	if sum != s.cache.used {
		s.cache.mu.Unlock()
		t.Fatalf("cache accounting drift: entries sum %d, used %d", sum, s.cache.used)
	}
	s.cache.mu.Unlock()
}

// TestBlockCacheOversizedBlockNotCached: a single block bigger than the whole
// budget is served but never inserted.
func TestBlockCacheOversizedBlockNotCached(t *testing.T) {
	opts := testOptions()
	opts.BlockCacheBytes = 64 // smaller than any decoded block
	s, recs := buildReadpathStore(t, t.TempDir(), opts, 1, 100)
	defer s.Close()
	got, st := queryAll(t, s, Query{})
	assertSameRecords(t, got, recs)
	if st.BlocksCacheHit != 0 {
		t.Fatalf("hits against a cache nothing fits in: %d", st.BlocksCacheHit)
	}
	if bc := s.Stats().BlockCache; bc.Entries != 0 || bc.UsedBytes != 0 {
		t.Fatalf("oversized blocks were cached: %+v", bc)
	}
}

// TestCompactionDropsCacheEntries asserts structural invalidation: after a
// compaction replaces segments, none of their fingerprints remain in the
// cache, and the merged segment serves fresh, correct results.
func TestCompactionDropsCacheEntries(t *testing.T) {
	opts := testOptions()
	opts.BlockCacheBytes = 32 << 20
	s, recs := buildReadpathStore(t, t.TempDir(), opts, 3, 200)
	defer s.Close()

	if _, _ = queryAll(t, s, Query{}); s.Stats().BlockCache.Entries == 0 {
		t.Fatal("cache empty after full scan")
	}
	genBefore := s.Generation()
	s.mu.Lock()
	oldFPs := make(map[uint64]bool, len(s.segs))
	for _, g := range s.segs {
		oldFPs[g.fp] = true
	}
	s.mu.Unlock()

	cs, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.SegmentsMerged == 0 {
		t.Fatal("compaction found nothing to merge; test store must have multi-segment windows")
	}
	if s.Generation() == genBefore {
		t.Fatal("compaction did not advance the generation")
	}

	s.cache.mu.Lock()
	for key := range s.cache.entries {
		s.mu.Lock()
		live := false
		for _, g := range s.segs {
			if g.fp == key.seg {
				live = true
			}
		}
		s.mu.Unlock()
		if !live {
			s.cache.mu.Unlock()
			t.Fatalf("cache entry %v belongs to a retired segment", key)
		}
	}
	s.cache.mu.Unlock()

	got, _ := queryAll(t, s, Query{})
	assertSameRecords(t, got, recs)
}

// TestReadersShareCacheUnderCompaction is the -race hammer: concurrent
// serial and parallel readers share the cache while compaction repeatedly
// advances the segment-set generation underneath them. Every reader must see
// exactly the full record set, and every pooled buffer must come home.
func TestReadersShareCacheUnderCompaction(t *testing.T) {
	opts := testOptions()
	opts.BlockCacheBytes = 1 << 20 // small enough to keep evicting under load
	s, recs := buildReadpathStore(t, t.TempDir(), opts, 4, 250)
	defer s.Close()

	const readers = 8
	const rounds = 6
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				var r *Reader
				var err error
				if i%2 == 0 {
					r, err = s.Query(Query{})
				} else {
					r, err = s.QueryParallel(Query{}, 4)
				}
				if err != nil {
					errc <- err
					return
				}
				got, err := r.ReadAll()
				r.Close()
				if err != nil {
					errc <- err
					return
				}
				// The compactor goroutine also appends and seals new
				// records, so a reader sees at least the base set.
				if len(got) < len(recs) {
					errc <- errors.New("reader saw a partial record set")
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Re-seal a few appends between compactions so each pass has work
		// and the generation keeps moving.
		w := s.Writer()
		base := recs[len(recs)-1].Time
		for j := 0; j < rounds; j++ {
			if _, err := s.Compact(); err != nil {
				errc <- err
				return
			}
			rec := mkRecord(base.Add(time.Duration(j+1)*time.Hour), 200, 7999, recs[0].Prefix, true)
			if err := w.Append(rec); err != nil {
				errc <- err
				return
			}
			if err := w.Seal(); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if live := recBufsLive.Load(); live != 0 {
		t.Fatalf("recBufsLive = %d after hammer, want 0", live)
	}
}

// TestColumnarKernelZeroAlloc pins the headline claim of the columnar scan:
// filtering a block whose rows all fail the predicate materializes no
// records and allocates nothing.
func TestColumnarKernelZeroAlloc(t *testing.T) {
	s, _ := buildReadpathStore(t, t.TempDir(), testOptions(), 1, 200)
	defer s.Close()
	s.mu.Lock()
	g := s.segs[0]
	s.mu.Unlock()
	f, err := s.fs.Open(g.path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bs := getBlockScanner()
	defer putBlockScanner(bs)
	raw, err := g.inflateBlock(bs.br, f, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	cb := new(colBlock)
	if err := decodeColBlock(g, 0, raw, cb); err != nil {
		t.Fatal(err)
	}

	noMatch := &Query{PeerAS: []bgp.ASN{9999}} // no row carries this peer
	dst := make([]collector.Record, 0, cb.rows())
	sel := make([]int32, 0, cb.rows())
	if got := cb.appendMatching(noMatch, &sel, dst[:0]); len(got) != 0 {
		t.Fatalf("predicate matched %d rows, want 0", len(got))
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst = cb.appendMatching(noMatch, &sel, dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("filtered-out scan allocated %.1f allocs/run, want 0", allocs)
	}

	// A partially selective predicate materializes exactly the surviving
	// rows and, with capacity in place, still allocates nothing.
	some := &Query{Types: []collector.RecType{collector.Withdraw}}
	dst = cb.appendMatching(some, &sel, dst[:0])
	want := 0
	for i := 0; i < cb.rows(); i++ {
		if cb.types[i] == collector.Withdraw {
			want++
		}
	}
	if len(dst) != want {
		t.Fatalf("withdraw filter materialized %d rows, want %d", len(dst), want)
	}
	allocs = testing.AllocsPerRun(100, func() {
		dst = cb.appendMatching(some, &sel, dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("selective scan allocated %.1f allocs/run, want 0", allocs)
	}
}

// TestRecordsMaterializedAccounting: a selective query must report fewer
// materialized records than scanned rows — the gap is the work the columnar
// kernels skipped.
func TestRecordsMaterializedAccounting(t *testing.T) {
	s, recs := buildReadpathStore(t, t.TempDir(), testOptions(), 3, 200)
	defer s.Close()
	q := Query{OriginAS: []bgp.ASN{7001}}
	got, st := queryAll(t, s, q)
	var want []collector.Record
	for _, rec := range recs {
		if q.match(rec) {
			want = append(want, rec)
		}
	}
	assertSameRecords(t, got, want)
	if st.RecordsMaterialized != st.RecordsMatched {
		t.Fatalf("RecordsMaterialized %d != RecordsMatched %d (columnar filter should be exact)",
			st.RecordsMaterialized, st.RecordsMatched)
	}
	if st.RecordsMaterialized >= st.RecordsScanned {
		t.Fatalf("selective query materialized %d of %d scanned rows; columnar filtering had no effect",
			st.RecordsMaterialized, st.RecordsScanned)
	}
}

// TestTrimBlockReaderReleasesOversized pins the pooled-buffer fix: a
// blockReader that inflated a pathologically large block must not pin its
// buffers once returned to the pool.
func TestTrimBlockReaderReleasesOversized(t *testing.T) {
	br := &blockReader{cb: make([]byte, maxRetainedBlockBytes+1)}
	br.raw.Grow(maxRetainedBlockBytes + 1)
	trimBlockReader(br)
	if br.cb != nil {
		t.Fatalf("oversized compressed buffer retained: cap %d", cap(br.cb))
	}
	if br.raw.Cap() > maxRetainedBlockBytes {
		t.Fatalf("oversized inflate buffer retained: cap %d", br.raw.Cap())
	}
	small := &blockReader{cb: make([]byte, 1024)}
	small.raw.Grow(1024)
	trimBlockReader(small)
	if small.cb == nil || small.raw.Cap() == 0 {
		t.Fatal("right-sized buffers must be retained for reuse")
	}
}

// TestSingleflightLoadsOnce: concurrent cold scans of the same store must
// not decode the same block twice per cache generation — total misses stay
// bounded by the number of blocks loaded.
func TestSingleflightLoadsOnce(t *testing.T) {
	opts := testOptions()
	opts.BlockCacheBytes = 32 << 20
	s, recs := buildReadpathStore(t, t.TempDir(), opts, 2, 300)
	defer s.Close()

	const readers = 8
	var wg sync.WaitGroup
	errc := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := s.Query(Query{})
			if err != nil {
				errc <- err
				return
			}
			got, err := r.ReadAll()
			r.Close()
			if err != nil {
				errc <- err
				return
			}
			if len(got) != len(recs) {
				errc <- errors.New("short read under singleflight")
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	bc := s.Stats().BlockCache
	blocks := s.Stats().Blocks
	// Every block is decoded at most once; every other lookup is a hit
	// (resident or flight-wait). Misses == loads == blocks.
	if bc.Misses != uint64(blocks) {
		t.Fatalf("misses = %d, want %d (one load per block)", bc.Misses, blocks)
	}
	if bc.Hits == 0 {
		t.Fatal("no hits across concurrent identical scans")
	}
}
