package store

import (
	"container/heap"
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"instability/internal/collector"
	"instability/internal/faults"
	"instability/internal/obs"
)

// Parallel query execution. QueryParallel produces the exact record sequence
// of Query — same candidate blocks, same per-segment block order, same heap
// merge keys — but fans block decompression across a bounded worker pool.
// The consumer (Reader.Next) stays single-threaded; only the expensive part
// of a scan, ReadAt + inflate + record decode, runs concurrently.
//
// Ordering is preserved by construction rather than by re-sorting: each
// parSegStream submits its candidate blocks to the pool in block order and
// keeps a FIFO of single-slot result channels, so blocks are consumed in the
// order they were submitted no matter which worker finishes first. The merge
// heap then interleaves streams by (timestamp, segment seq) exactly as the
// serial path does.

// scanLookahead is how many blocks a stream keeps in flight beyond the one
// being consumed. Two is enough to hide decompression latency behind the
// merge without holding many decoded blocks in memory per stream.
const scanLookahead = 2

type blockTask struct {
	seg *segment
	f   io.ReaderAt
	// mm is the mapping reference the submitting stream holds; the stream
	// outlives every task it submitted (close drains them), so a worker
	// never touches mapped pages after their release. Workers must use this,
	// never seg.mm — the latter is store-lock state compaction mutates.
	mm    *segMap
	q     *Query
	cache *blockCache
	bi    int
	out   chan<- blockResult // cap 1: workers never block on delivery
}

type blockResult struct {
	recs []collector.Record // pooled buffer; nil-length results still own it
	hit  bool               // block came from the shared cache
	err  error
}

// recBufPool recycles decoded-record buffers across parallel scans: the
// merge consumer returns each fully consumed slice and workers decode the
// next block into a recycled one, so steady-state scanning holds a bounded
// set of live buffers instead of allocating one per block per query.
var recBufPool = sync.Pool{New: func() any { return new([]collector.Record) }}

// recBufsLive is the get/put balance of recBufPool. It returns to zero when
// every code path — including every error path — hands its buffer back; the
// leak-check tests assert exactly that.
var recBufsLive atomic.Int64

func getRecBuf() []collector.Record {
	recBufsLive.Add(1)
	return *recBufPool.Get().(*[]collector.Record)
}

func putRecBuf(b []collector.Record) {
	recBufsLive.Add(-1)
	b = b[:0]
	recBufPool.Put(&b)
}

// scanPool is a fixed set of decompression workers shared by all streams of
// one parallel reader. Each worker owns a blockReader for its lifetime, so
// buffer reuse needs no per-block pool traffic.
type scanPool struct {
	tasks chan blockTask
	wg    sync.WaitGroup
}

func newScanPool(workers, queue int) *scanPool {
	p := &scanPool{tasks: make(chan blockTask, queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			bs := getBlockScanner()
			defer putBlockScanner(bs)
			for t := range p.tasks {
				cb, hit, err := bs.fetch(t.seg, t.f, t.mm, t.cache, t.bi)
				if err != nil {
					t.out <- blockResult{err: err}
					continue
				}
				// The pooled buffer is taken only on success and travels with
				// the result; the consumer (or the stream's close) returns it.
				buf := getRecBuf()
				recs := cb.appendMatching(t.q, &bs.sel, buf[:0])
				t.out <- blockResult{recs: recs, hit: hit}
			}
		}()
	}
	return p
}

func (p *scanPool) submit(t blockTask) { p.tasks <- t }

// shutdown stops accepting tasks and waits for the workers to exit. Queued
// tasks are still executed; their results land in buffered channels whose
// streams drain them at close. A task whose file was already closed fails
// with os.ErrClosed, which the draining stream discards — ReadAt on a closed
// file is defined behavior, not a race.
func (p *scanPool) shutdown() {
	close(p.tasks)
	p.wg.Wait()
}

// QueryParallel is Query with the segment scan fanned across workers. The
// result order and ScanStats accounting are identical to Query; workers <= 1
// (or a scan with at most one candidate block) falls back to the serial
// reader. The returned Reader must be Closed to release the worker pool.
//
// Failure behavior matches Query: corrupt blocks are quarantined (skipped
// and counted), I/O errors surface as a sticky partial-scan error from Next,
// and an error during setup closes every segment file already opened and
// drains every in-flight worker before returning.
func (s *Store) QueryParallel(q Query, workers int) (*Reader, error) {
	return s.QueryParallelCtx(context.Background(), q, workers)
}

// QueryParallelCtx is QueryParallel carrying a request context; see QueryCtx
// for the tracing contract.
func (s *Store) QueryParallelCtx(ctx context.Context, q Query, workers int) (*Reader, error) {
	if workers <= 1 {
		return s.QueryCtx(ctx, q)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	obsQueries.Inc()
	obsParallelScans.Inc()
	_, span := obs.StartChild(ctx, "store_scan")
	r := &Reader{q: q, gen: s.Generation(), workers: workers, span: span}
	r.stats.SegmentsTotal = len(s.segs)
	for _, g := range s.segs {
		r.stats.BlocksTotal += len(g.index.blocks)
	}

	type candidate struct {
		seg    *segment
		blocks []int
	}
	var cands []candidate
	totalBlocks := 0
	for _, g := range s.segs {
		blocks, scan := g.candidateBlocks(q)
		if !scan {
			continue
		}
		r.stats.SegmentsScanned++
		if len(blocks) == 0 {
			continue
		}
		r.stats.BlocksSelected += len(blocks)
		cands = append(cands, candidate{seg: g, blocks: blocks})
		totalBlocks += len(blocks)
	}

	if totalBlocks > 1 {
		if workers > totalBlocks {
			workers = totalBlocks
		}
		r.workers = workers
		obsScanWorkers.SetInt(int64(workers))
		r.pool = newScanPool(workers, 2*workers)
		for _, c := range cands {
			f, err := s.fs.Open(c.seg.path)
			if err != nil {
				// r.Close drains the streams (and their in-flight blocks)
				// already set up, then shuts the pool down.
				r.err = err
				r.Close()
				return nil, err
			}
			c.seg.mm.acquire()
			sc := &parSegStream{seg: c.seg, f: f, mm: c.seg.mm, q: &r.q, cache: s.cache,
				pool: r.pool, blocks: c.blocks, order: c.seg.seq,
				span: segmentSpan(span, c.seg, len(c.blocks))}
			sc.fill()
			if err := sc.advance(); err != nil {
				r.retire(sc)
				r.err = err
				r.Close()
				return nil, err
			}
			if sc.ok {
				r.streams = append(r.streams, sc)
			} else {
				r.retire(sc)
			}
		}
	} else {
		// One block total: the pool would only add handoff overhead.
		for _, c := range cands {
			f, err := s.fs.Open(c.seg.path)
			if err != nil {
				r.err = err
				r.Close()
				return nil, err
			}
			c.seg.mm.acquire()
			sc := &segStream{seg: c.seg, f: f, mm: c.seg.mm, q: &r.q, cache: s.cache,
				bs: getBlockScanner(), blocks: c.blocks, order: c.seg.seq, quarantine: true,
				span: segmentSpan(span, c.seg, len(c.blocks))}
			if err := sc.advance(); err != nil {
				r.retire(sc)
				r.err = err
				r.Close()
				return nil, err
			}
			if sc.ok {
				r.streams = append(r.streams, sc)
			} else {
				r.retire(sc)
			}
		}
	}

	if mem := s.memSnapshotLocked(q, &r.stats); len(mem) > 0 {
		ms := &memStream{recs: mem, order: ^uint64(0)}
		ms.advance()
		r.streams = append(r.streams, ms)
	}
	heap.Init(&r.streams)
	return r, nil
}

// parSegStream iterates the candidate blocks of one segment, with the block
// decompression delegated to the reader's scanPool. All methods run on the
// merge consumer goroutine; only the pool workers touch the segment file.
type parSegStream struct {
	seg       *segment
	f         faults.File
	mm        *segMap     // acquired mapping reference, handed to every task
	q         *Query
	cache     *blockCache // nil when the store runs cache-off
	pool      *scanPool
	blocks    []int
	nextSub   int                // next index into blocks to submit
	pending   []chan blockResult // FIFO of in-flight block results
	pendingBi []int              // block index of each pending result
	recs      []collector.Record
	pooled    bool // recs came from recBufPool and must go back
	ri        int
	cur       collector.Record
	ok        bool
	order     uint64

	acc  scanDelta
	span *obs.TraceSpan // per-segment trace span; nil when untraced
}

// fill tops the in-flight window up to scanLookahead+1 submitted blocks.
func (sc *parSegStream) fill() {
	for len(sc.pending) <= scanLookahead && sc.nextSub < len(sc.blocks) {
		out := make(chan blockResult, 1)
		sc.pool.submit(blockTask{seg: sc.seg, f: sc.f, mm: sc.mm, q: sc.q, cache: sc.cache,
			bi: sc.blocks[sc.nextSub], out: out})
		sc.pending = append(sc.pending, out)
		sc.pendingBi = append(sc.pendingBi, sc.blocks[sc.nextSub])
		sc.nextSub++
	}
}

func (sc *parSegStream) head() (collector.Record, bool) { return sc.cur, sc.ok }

func (sc *parSegStream) advance() error {
	for {
		if sc.ri < len(sc.recs) {
			sc.cur = sc.recs[sc.ri]
			sc.ri++
			sc.ok = true
			return nil
		}
		if len(sc.pending) == 0 {
			sc.ok = false
			return nil
		}
		t0 := time.Now()
		res := <-sc.pending[0]
		obsScanMergeWait.ObserveSince(t0)
		bi := sc.pendingBi[0]
		sc.pending = sc.pending[1:]
		sc.pendingBi = sc.pendingBi[1:]
		if res.err != nil {
			if isCorrupt(res.err) {
				quarantineBlock(sc.seg.path, bi, res.err)
				sc.acc.quarantined++
				sc.span.AnnotateInt("quarantined_block", int64(bi))
				sc.fill()
				continue
			}
			sc.ok = false
			return fmt.Errorf("segment %s: %w", sc.seg.path, res.err)
		}
		sc.acc.noteBlock(sc.seg, bi, res.hit, sc.cache != nil, len(res.recs))
		// The previous block's records are all consumed (copied out by
		// value), so its buffer goes back to the workers.
		if sc.pooled {
			putRecBuf(sc.recs)
		}
		sc.recs, sc.ri, sc.pooled = res.recs, 0, true
		sc.fill()
	}
}

func (sc *parSegStream) key() (int64, uint64) { return sc.cur.Time.UnixNano(), sc.order }

func (sc *parSegStream) drain() scanDelta {
	d := sc.acc
	sc.acc = scanDelta{}
	return d
}

// close releases the stream's file and reclaims every pooled buffer it still
// owns. In-flight results are received, not abandoned: the workers are alive
// until the reader shuts the pool down (which happens only after all streams
// close), and every submitted task delivers exactly one result into its
// single-slot channel, so this drain never blocks indefinitely and no buffer
// is stranded in an unread channel.
func (sc *parSegStream) close() {
	sc.span.Finish()
	sc.span = nil
	for _, ch := range sc.pending {
		res := <-ch
		// Successful results own a pooled buffer even when zero rows matched
		// the columnar filter; only error results travel bufferless.
		if res.err == nil {
			putRecBuf(res.recs)
		}
	}
	sc.pending, sc.pendingBi = nil, nil
	if sc.pooled {
		putRecBuf(sc.recs)
		sc.recs, sc.pooled = nil, false
	}
	sc.mm.release()
	sc.mm = nil
	if sc.f != nil {
		sc.f.Close()
		sc.f = nil
	}
}
