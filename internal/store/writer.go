package store

import (
	"fmt"
	"io"
	"slices"
	"time"

	"instability/internal/collector"
	"instability/internal/obs"
)

// Writer is the ingest half of a Store: appends are WAL-logged and batched
// in a per-window memtable until a seal turns them into immutable segments.
// Writer is safe for concurrent use; concurrent appends share group commits.
type Writer struct {
	s *Store

	pending  []byte // encoded WAL frames awaiting a group commit
	pendingN int
	appended int64
}

// Append logs one record. The record becomes visible to queries immediately
// and durable at the next Flush (or automatically every FlushEvery appends).
func (w *Writer) Append(rec collector.Record) error {
	s := w.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.closing {
		return fmt.Errorf("store: writer used after Close")
	}
	if err := w.appendLocked(rec); err != nil {
		return err
	}
	return w.maintainLocked()
}

// AppendBatch logs a batch of records under one lock acquisition and at most
// one WAL group commit, however large the batch. For bulk ingest this is the
// fast path: the per-record cost drops to frame encoding plus one memtable
// append, with lock traffic, flush checks, and fsyncs paid once per batch.
func (w *Writer) AppendBatch(recs []collector.Record) error {
	s := w.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.closing {
		return fmt.Errorf("store: writer used after Close")
	}
	for _, rec := range recs {
		if err := w.appendLocked(rec); err != nil {
			return err
		}
	}
	if len(recs) > 0 {
		obsBatchRecords.Observe(float64(len(recs)))
	}
	return w.maintainLocked()
}

// appendLocked encodes one record into the pending WAL buffer and memtable.
func (w *Writer) appendLocked(rec collector.Record) error {
	s := w.s
	window := s.windowStart(rec.Time)
	mw := s.mem[window]
	if mw == nil {
		mw = &memWindow{firstSeq: s.nextWindowSeqLocked(window)}
		s.mem[window] = mw
	}
	seq := mw.firstSeq + uint64(len(mw.recs))
	frames, err := appendWALFrame(w.pending, window, seq, rec, s.enc)
	if err != nil {
		return err
	}
	w.pending = frames
	w.pendingN++
	mw.recs = append(mw.recs, rec)
	s.memN++
	w.appended++
	obsAppends.Inc()
	return nil
}

// maintainLocked applies the flush and auto-seal policies after appends.
// An auto-seal triggered here runs on a background goroutine: the append
// returns as soon as the memtable windows are detached, and only when ingest
// has outrun the sealer by a full threshold does it park until the in-flight
// batch lands (the stall is measured, not silent).
func (w *Writer) maintainLocked() error {
	s := w.s
	obsMemRecords.SetInt(int64(s.unsealedLocked()))
	if w.pendingN >= s.opts.FlushEvery {
		if err := w.flushLocked(); err != nil {
			return err
		}
	}
	if s.opts.AutoSealRecords <= 0 || s.memN < s.opts.AutoSealRecords {
		return nil
	}
	if s.opts.syncSeal {
		return s.sealSyncLocked()
	}
	if s.sealing == nil {
		if _, err := s.startSealLocked(); err != nil {
			return err
		}
	}
	// Backpressure: ingest may run a full threshold ahead of the sealer, then
	// waits for the in-flight batch so memory stays bounded at ~2 thresholds.
	for s.sealing != nil && s.memN >= 2*s.opts.AutoSealRecords {
		b := s.sealing
		if err := w.flushLocked(); err != nil {
			return err
		}
		t0 := time.Now()
		s.mu.Unlock()
		<-b.done
		s.mu.Lock()
		obsSealStallSeconds.ObserveSince(t0)
		if b.err != nil {
			// The batch we waited out failed and requeued its windows.
			// Background retries never report to anyone, so a persistent
			// fault would silently cycle detach/requeue while stale WALs
			// pile up; surface the seal error to ingest instead (the
			// records stay queued and WAL-covered).
			return b.err
		}
		if s.closed || s.closing {
			// A concurrent Close seals everything, this append included.
			// Starting another batch here would hand Close a fresh seal to
			// join every time it wakes — under sustained appends it never
			// drains. Stand down and let Close's sweep finish the job.
			return nil
		}
		if s.sealing == nil && s.memN >= s.opts.AutoSealRecords {
			if _, err := s.startSealLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// AppendAll appends every record from a stream (e.g. a collector log being
// ingested) and returns the number appended. Records are coalesced into
// AppendBatch-sized groups so the stream gets batched WAL commits for free.
func (w *Writer) AppendAll(r collector.RecordReader) (int, error) {
	n := 0
	batch := make([]collector.Record, 0, appendAllBatch)
	for {
		rec, err := r.Next()
		if err != nil {
			if err == io.EOF {
				if len(batch) > 0 {
					if berr := w.AppendBatch(batch); berr != nil {
						return n, berr
					}
					n += len(batch)
				}
				return n, nil
			}
			return n, err
		}
		batch = append(batch, rec)
		if len(batch) == cap(batch) {
			if err := w.AppendBatch(batch); err != nil {
				return n, err
			}
			n += len(batch)
			batch = batch[:0]
		}
	}
}

// appendAllBatch is the record group size AppendAll hands to AppendBatch —
// aligned with the default segment block size so one ingest batch fills one
// compression block.
const appendAllBatch = 512

// nextWindowSeqLocked returns the first free sequence number of a window the
// memtable has no entry for: one past whatever is sealed or detached into an
// in-flight seal. The sealed high-water mark is a map lookup maintained at
// publish time, not a scan over every segment.
func (s *Store) nextWindowSeqLocked(window int64) uint64 {
	next := s.sealedSeq[window] + 1
	if b := s.sealing; b != nil {
		for _, sw := range b.windows[b.published:] {
			if sw.window == window {
				if end := sw.firstSeq + uint64(len(sw.recs)); end > next {
					next = end
				}
			}
		}
	}
	return next
}

// Flush group-commits any buffered appends to the WAL.
func (w *Writer) Flush() error {
	s := w.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return w.flushLocked()
}

func (w *Writer) flushLocked() error {
	s := w.s
	if len(w.pending) == 0 {
		return nil
	}
	t0 := time.Now()
	if err := s.wal.append(w.pending, s.opts.Sync); err != nil {
		return err
	}
	obsWALAppendSeconds.ObserveSince(t0)
	obsWALBytes.SetInt(s.wal.size())
	w.pending = w.pending[:0]
	w.pendingN = 0
	return nil
}

// Seal flushes the WAL and turns the entire memtable into sealed segments,
// one per nonempty time window. It joins any in-flight background seal first
// and returns only when everything appended before the call is sealed and no
// longer depends on any WAL file.
func (w *Writer) Seal() error {
	s := w.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealSyncLocked()
}

// sealBatch is one background seal in flight: the memtable windows detached
// from the store, the WAL files that cover exactly their records, and the
// publish cursor. windows[:published] are sealed segments live in s.segs;
// windows[published:] are still only in this snapshot, and queries overlay
// them so visibility never regresses mid-seal.
type sealBatch struct {
	windows   []sealWindow
	published int      // guarded by Store.mu
	wals      []string // rotated WAL files to delete once all windows publish
	err       error    // terminal batch error, readable after done closes
	done      chan struct{}
}

// sealWindow is one detached memtable window awaiting seal. recs is the
// append-ordered snapshot and is immutable from detach on: the sealer sorts
// a clone, queries overlay it as-is, and a failed seal requeues it verbatim.
type sealWindow struct {
	window   int64
	firstSeq uint64
	seq      uint64 // segment file number reserved at detach
	recs     []collector.Record
}

// remaining counts the batch's not-yet-published records (mu held).
func (b *sealBatch) remaining() int {
	n := 0
	for _, sw := range b.windows[b.published:] {
		n += len(sw.recs)
	}
	return n
}

// unsealedLocked is the record count queries must overlay from memory: the
// live memtable plus any detached-but-unpublished seal snapshot.
func (s *Store) unsealedLocked() int {
	n := s.memN
	if s.sealing != nil {
		n += s.sealing.remaining()
	}
	return n
}

// detachSealLocked flushes pending appends, rotates the WAL, and detaches
// every nonempty memtable window into a sealBatch. It returns nil when there
// is nothing to seal. After it returns, the memtable is empty and new appends
// land in a fresh WAL; the batch alone references the detached records and
// the rotated WAL files that make them durable.
func (s *Store) detachSealLocked() (*sealBatch, error) {
	if err := s.writer.flushLocked(); err != nil {
		return nil, err
	}
	if s.memN == 0 {
		return nil, nil
	}
	rotated, err := s.rotateWALLocked()
	if err != nil {
		return nil, err
	}
	b := &sealBatch{done: make(chan struct{})}
	// Stale WALs from earlier failed seals (or recovered at Open) cover
	// records that were requeued into the memtable, so this batch subsumes
	// them: they become deletable exactly when it fully publishes.
	b.wals = append(b.wals, s.staleWALs...)
	s.staleWALs = nil
	if rotated != "" {
		b.wals = append(b.wals, rotated)
	}
	windows := make([]int64, 0, len(s.mem))
	for wd := range s.mem {
		windows = append(windows, wd)
	}
	slices.Sort(windows)
	for _, wd := range windows {
		mw := s.mem[wd]
		if len(mw.recs) == 0 {
			continue
		}
		b.windows = append(b.windows, sealWindow{
			window:   wd,
			firstSeq: mw.firstSeq,
			seq:      s.nextSeg,
			recs:     mw.recs,
		})
		s.nextSeg++
	}
	clear(s.mem)
	s.memN = 0
	s.sealing = b
	obsSealActive.SetInt(1)
	return b, nil
}

// startSealLocked detaches the memtable and launches the seal on a background
// goroutine. Returns the in-flight batch, nil when there was nothing to seal.
func (s *Store) startSealLocked() (*sealBatch, error) {
	b, err := s.detachSealLocked()
	if err != nil || b == nil {
		return b, err
	}
	go s.runSeal(b, false)
	return b, nil
}

// runSeal seals a detached batch: per window, sort a clone of the snapshot,
// write the segment (block compression fans across the seal worker pool),
// and publish it under a short lock. Windows publish incrementally, so a
// failure partway keeps every already-published segment and requeues only
// the rest. locked reports whether the caller already holds s.mu (the
// synchronous syncSeal path); the background path takes it per publish.
func (s *Store) runSeal(b *sealBatch, locked bool) {
	t0 := time.Now()
	span := obs.StartSpan("store_seal")
	var err error
	records := 0
	for i := range b.windows {
		sw := &b.windows[i]
		t1 := time.Now()
		recs := slices.Clone(sw.recs)
		slices.SortStableFunc(recs, func(a, b collector.Record) int {
			return a.Time.Compare(b.Time)
		})
		obsSealSortSeconds.ObserveSince(t1)
		t2 := time.Now()
		var seg *segment
		seg, err = writeSegment(s.fs, s.dir, sw.seq, sw.window, sw.firstSeq, recs, nil, s.opts)
		if err != nil {
			break
		}
		obsSealWriteSeconds.ObserveSince(t2)
		s.publishSealed(b, i, seg, locked)
		records += len(recs)
	}
	span.Add(int64(records))
	span.End()
	if err == nil {
		obsSealSeconds.ObserveSince(t0)
	}
	s.finishSeal(b, err, locked)
}

// publishSealed makes one sealed segment live: it enters the segment list,
// the window's sealed high-water mark advances, and the batch's publish
// cursor moves past it — all under one short lock hold, which is the only
// moment a seal blocks queries.
func (s *Store) publishSealed(b *sealBatch, i int, seg *segment, locked bool) {
	t0 := time.Now()
	if !locked {
		s.mu.Lock()
	}
	seg.di = s.dec
	s.segs = append(s.segs, seg)
	sortSegments(s.segs)
	s.mapSegmentLocked(seg)
	if seg.lastSeq > s.sealedSeq[seg.windowStart] {
		s.sealedSeq[seg.windowStart] = seg.lastSeq
	}
	b.published = i + 1
	s.gen.Add(1)
	obsSegments.SetInt(int64(len(s.segs)))
	obsMemRecords.SetInt(int64(s.unsealedLocked()))
	if !locked {
		s.mu.Unlock()
	}
	obsSealPublishSeconds.ObserveSince(t0)
	obsSealedRecords.Add(seg.count)
	obsSealedSegments.Inc()
}

// finishSeal retires a batch. On success the rotated WAL files it covers are
// deleted — every record they held is now in a renamed, sealed segment, the
// ordering the crash-safety argument rests on. On failure the unpublished
// windows are requeued into the memtable (their WAL files are kept as stale
// until a later seal covers them), so no acked record is ever dropped. If
// auto-seal pressure built up while this batch ran, the next one starts
// immediately.
func (s *Store) finishSeal(b *sealBatch, err error, locked bool) {
	if !locked {
		s.mu.Lock()
	}
	if err != nil {
		b.err = err
		for _, sw := range b.windows[b.published:] {
			s.requeueWindowLocked(sw)
		}
		s.staleWALs = append(s.staleWALs, b.wals...)
	} else {
		for _, path := range b.wals {
			s.fs.Remove(path)
		}
	}
	s.sealing = nil
	obsSealActive.SetInt(0)
	obsMemRecords.SetInt(int64(s.unsealedLocked()))
	if err == nil && !locked && !s.closing &&
		s.opts.AutoSealRecords > 0 && s.memN >= s.opts.AutoSealRecords {
		// A start error here is deliberately dropped: the next append's
		// maintainLocked retries and surfaces it.
		s.startSealLocked()
	}
	if !locked {
		s.mu.Unlock()
	}
	close(b.done)
}

// requeueWindowLocked returns one unpublished detached window to the
// memtable after a failed seal. Appends may have opened a fresh memWindow
// for the same time window in the meantime (its firstSeq continues where the
// snapshot ended), so the detached records are prepended to keep the
// window's sequence numbering contiguous and its append order intact.
func (s *Store) requeueWindowLocked(sw sealWindow) {
	if mw := s.mem[sw.window]; mw != nil {
		mw.recs = append(sw.recs[:len(sw.recs):len(sw.recs)], mw.recs...)
		mw.firstSeq = sw.firstSeq
	} else {
		s.mem[sw.window] = &memWindow{firstSeq: sw.firstSeq, recs: sw.recs}
	}
	s.memN += len(sw.recs)
}

// joinSeal blocks until no seal is in flight, including any follow-up batch
// finishSeal chained. Tests use it to reach a quiescent store without the
// full Seal side effect of flushing the live memtable.
func (s *Store) joinSeal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.joinSealLocked()
}

// joinSealLocked waits out any in-flight background seal, releasing the lock
// while it runs. Returns the batch's error, if it failed.
func (s *Store) joinSealLocked() error {
	for s.sealing != nil {
		b := s.sealing
		s.mu.Unlock()
		<-b.done
		s.mu.Lock()
		if b.err != nil {
			return b.err
		}
	}
	return nil
}

// sealSyncLocked is the synchronous seal: join any in-flight batch, then
// seal and wait until the memtable is empty (appends racing the wait are
// swept into follow-up batches). Seal, Close, and the syncSeal option all
// funnel here.
func (s *Store) sealSyncLocked() error {
	for {
		if err := s.joinSealLocked(); err != nil {
			return err
		}
		if err := s.writer.flushLocked(); err != nil {
			return err
		}
		if s.memN == 0 {
			return nil
		}
		if s.opts.syncSeal {
			// Inline variant: the whole seal runs under the lock, exactly the
			// pre-pipeline behavior. Kept for A/B stall measurement.
			b, err := s.detachSealLocked()
			if err != nil {
				return err
			}
			if b == nil {
				return nil
			}
			s.runSeal(b, true)
			if b.err != nil {
				return b.err
			}
			continue
		}
		b, err := s.startSealLocked()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		s.mu.Unlock()
		<-b.done
		s.mu.Lock()
		if b.err != nil {
			return b.err
		}
	}
}

// Count returns the number of records appended through this writer.
func (w *Writer) Count() int64 {
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	return w.appended
}

// windowOf is a small helper for callers that want to know which partition a
// timestamp lands in (used by stats displays).
func (s *Store) WindowOf(t time.Time) time.Time {
	return time.Unix(0, s.windowStart(t)).UTC()
}
