package store

import (
	"fmt"
	"io"
	"sort"
	"time"

	"instability/internal/collector"
)

// Writer is the ingest half of a Store: appends are WAL-logged and batched
// in a per-window memtable until a seal turns them into immutable segments.
// Writer is safe for concurrent use; concurrent appends share group commits.
type Writer struct {
	s *Store

	pending  []byte // encoded WAL frames awaiting a group commit
	pendingN int
	appended int64
}

// Append logs one record. The record becomes visible to queries immediately
// and durable at the next Flush (or automatically every FlushEvery appends).
func (w *Writer) Append(rec collector.Record) error {
	s := w.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: writer used after Close")
	}
	if err := w.appendLocked(rec); err != nil {
		return err
	}
	return w.maintainLocked()
}

// AppendBatch logs a batch of records under one lock acquisition and at most
// one WAL group commit, however large the batch. For bulk ingest this is the
// fast path: the per-record cost drops to frame encoding plus one memtable
// append, with lock traffic, flush checks, and fsyncs paid once per batch.
func (w *Writer) AppendBatch(recs []collector.Record) error {
	s := w.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: writer used after Close")
	}
	for _, rec := range recs {
		if err := w.appendLocked(rec); err != nil {
			return err
		}
	}
	if len(recs) > 0 {
		obsBatchRecords.Observe(float64(len(recs)))
	}
	return w.maintainLocked()
}

// appendLocked encodes one record into the pending WAL buffer and memtable.
func (w *Writer) appendLocked(rec collector.Record) error {
	s := w.s
	window := s.windowStart(rec.Time)
	mw := s.mem[window]
	if mw == nil {
		mw = &memWindow{firstSeq: s.nextWindowSeqLocked(window)}
		s.mem[window] = mw
	}
	seq := mw.firstSeq + uint64(len(mw.recs))
	frames, err := appendWALFrame(w.pending, window, seq, rec, s.enc)
	if err != nil {
		return err
	}
	w.pending = frames
	w.pendingN++
	mw.recs = append(mw.recs, rec)
	s.memN++
	w.appended++
	obsAppends.Inc()
	return nil
}

// maintainLocked applies the flush and auto-seal policies after appends.
func (w *Writer) maintainLocked() error {
	s := w.s
	obsMemRecords.SetInt(int64(s.memN))
	if w.pendingN >= s.opts.FlushEvery {
		if err := w.flushLocked(); err != nil {
			return err
		}
	}
	if s.opts.AutoSealRecords > 0 && s.memN >= s.opts.AutoSealRecords {
		return s.sealLocked()
	}
	return nil
}

// AppendAll appends every record from a stream (e.g. a collector log being
// ingested) and returns the number appended. Records are coalesced into
// AppendBatch-sized groups so the stream gets batched WAL commits for free.
func (w *Writer) AppendAll(r collector.RecordReader) (int, error) {
	n := 0
	batch := make([]collector.Record, 0, appendAllBatch)
	for {
		rec, err := r.Next()
		if err != nil {
			if err == io.EOF {
				if len(batch) > 0 {
					if berr := w.AppendBatch(batch); berr != nil {
						return n, berr
					}
					n += len(batch)
				}
				return n, nil
			}
			return n, err
		}
		batch = append(batch, rec)
		if len(batch) == cap(batch) {
			if err := w.AppendBatch(batch); err != nil {
				return n, err
			}
			n += len(batch)
			batch = batch[:0]
		}
	}
}

// appendAllBatch is the record group size AppendAll hands to AppendBatch —
// aligned with the default segment block size so one ingest batch fills one
// compression block.
const appendAllBatch = 512

// nextWindowSeqLocked returns the first free sequence number of a window the
// memtable has no entry for: one past whatever is already sealed.
func (s *Store) nextWindowSeqLocked(window int64) uint64 {
	var max uint64
	for _, g := range s.segs {
		if g.windowStart == window && g.lastSeq > max {
			max = g.lastSeq
		}
	}
	return max + 1
}

// Flush group-commits any buffered appends to the WAL.
func (w *Writer) Flush() error {
	s := w.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return w.flushLocked()
}

func (w *Writer) flushLocked() error {
	s := w.s
	if len(w.pending) == 0 {
		return nil
	}
	t0 := time.Now()
	if err := s.wal.append(w.pending, s.opts.Sync); err != nil {
		return err
	}
	obsWALAppendSeconds.ObserveSince(t0)
	obsWALBytes.SetInt(s.wal.size())
	w.pending = w.pending[:0]
	w.pendingN = 0
	return nil
}

// Seal flushes the WAL and turns the entire memtable into sealed segments,
// one per nonempty time window, then truncates the WAL. After a seal the
// data no longer depends on the WAL at all.
func (w *Writer) Seal() error {
	s := w.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealLocked()
}

func (s *Store) sealLocked() error {
	if err := s.writer.flushLocked(); err != nil {
		return err
	}
	if s.memN == 0 {
		return nil
	}
	t0 := time.Now()
	sealedRecords := s.memN
	windows := make([]int64, 0, len(s.mem))
	for wd, mw := range s.mem {
		if len(mw.recs) > 0 {
			windows = append(windows, wd)
		}
	}
	sort.Slice(windows, func(i, j int) bool { return windows[i] < windows[j] })
	for _, wd := range windows {
		mw := s.mem[wd]
		sort.SliceStable(mw.recs, func(i, j int) bool { return mw.recs[i].Time.Before(mw.recs[j].Time) })
		seg, err := writeSegment(s.fs, s.dir, s.nextSeg, wd, mw.firstSeq, mw.recs, nil, s.opts, s.enc)
		if err != nil {
			return err
		}
		seg.di = s.dec
		s.nextSeg++
		s.segs = append(s.segs, seg)
		s.mapSegmentLocked(seg)
		s.memN -= len(mw.recs)
		delete(s.mem, wd)
	}
	sortSegments(s.segs)
	s.gen.Store(s.nextSeg)
	obsSealSeconds.ObserveSince(t0)
	obsSealedRecords.Add(int64(sealedRecords - s.memN))
	obsSealedSegments.Add(int64(len(windows)))
	obsSegments.SetInt(int64(len(s.segs)))
	obsMemRecords.SetInt(int64(s.memN))
	// Every WAL entry is now covered by a sealed segment; a crash before
	// this truncate is handled by sequence-range dedupe on reopen.
	if err := s.wal.reset(s.opts.Sync); err != nil {
		return err
	}
	obsWALBytes.SetInt(0)
	return nil
}

// Count returns the number of records appended through this writer.
func (w *Writer) Count() int64 {
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	return w.appended
}

// windowOf is a small helper for callers that want to know which partition a
// timestamp lands in (used by stats displays).
func (s *Store) WindowOf(t time.Time) time.Time {
	return time.Unix(0, s.windowStart(t)).UTC()
}
