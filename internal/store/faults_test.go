package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/faults"
	"instability/internal/netaddr"
)

// faultBase is the timestamp of record index 0 in the fault tests. Every
// record's index is encoded in its timestamp (base + index seconds), so a
// recovered store can be checked for loss, duplication, and gaps without any
// side channel.
var faultBase = time.Date(1996, 6, 1, 0, 0, 0, 0, time.UTC)

func faultRecord(i int) collector.Record {
	peer := bgp.ASN(100 + i%4)
	origin := bgp.ASN(7000 + i%8)
	prefix := netaddr.MustPrefix(netaddr.Addr(0xc6000000+uint32(i)<<8), 24)
	return mkRecord(faultBase.Add(time.Duration(i)*time.Second), peer, origin, prefix, i%3 != 0)
}

func faultRecordIndex(t *testing.T, rec collector.Record) int {
	t.Helper()
	d := rec.Time.Sub(faultBase)
	if d < 0 || d%time.Second != 0 {
		t.Fatalf("record timestamp %v is not an index encoding", rec.Time)
	}
	return int(d / time.Second)
}

// faultOptions keeps every fault-test record in one time window so sequence
// numbers are totally ordered and the recovered set must be a contiguous
// index prefix.
func faultOptions() Options {
	return Options{Window: time.Hour, BlockRecords: 16, FlushEvery: 4}
}

// verifyRecoveredPrefix asserts the store's durability contract after a
// fault: the recovered records are exactly {0, 1, ..., k-1} for some k — no
// duplicates, no gaps — and k covers at least every acknowledged record.
func verifyRecoveredPrefix(t *testing.T, got []collector.Record, acked int) {
	t.Helper()
	seen := make(map[int]bool, len(got))
	max := -1
	for _, rec := range got {
		idx := faultRecordIndex(t, rec)
		if seen[idx] {
			t.Fatalf("record %d recovered twice", idx)
		}
		seen[idx] = true
		if idx > max {
			max = idx
		}
	}
	if len(seen) != max+1 {
		t.Fatalf("recovered set has gaps: %d records but max index %d", len(seen), max)
	}
	if len(seen) < acked {
		t.Fatalf("lost acknowledged records: recovered %d, acknowledged %d", len(seen), acked)
	}
}

// TestWALTornTailThenAppend is the regression test for physical torn-tail
// truncation: a WAL whose tail is garbage (or a half-written frame) must be
// truncated back to the last intact frame on open, and appends after the
// recovery must land on a clean frame boundary and survive the next open.
func TestWALTornTailThenAppend(t *testing.T) {
	cases := []struct {
		name string
		// mangle damages the WAL file and returns how many of the 10
		// flushed records should survive recovery.
		mangle func(t *testing.T, path string, sizes []int64) int
	}{
		{
			name: "garbage-tail",
			mangle: func(t *testing.T, path string, sizes []int64) int {
				f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
				if err != nil {
					t.Fatal(err)
				}
				// A plausible length prefix with no frame behind it.
				if _, err := f.Write([]byte{0x00, 0x00, 0x01, 0xff, 'x', 'y'}); err != nil {
					t.Fatal(err)
				}
				f.Close()
				return 10
			},
		},
		{
			name: "torn-frame",
			mangle: func(t *testing.T, path string, sizes []int64) int {
				// Cut 3 bytes off the last frame: its CRC cannot verify.
				if err := os.Truncate(path, sizes[9]-3); err != nil {
					t.Fatal(err)
				}
				return 9
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := faultOptions()
			opts.FlushEvery = 1 // every append is its own group commit
			s, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			w := s.Writer()
			sizes := make([]int64, 10) // WAL size after each append
			for i := 0; i < 10; i++ {
				if err := w.Append(faultRecord(i)); err != nil {
					t.Fatal(err)
				}
				sizes[i] = s.wal.size()
			}
			// Abandon the store without sealing, as a crash would.
			if err := s.wal.close(); err != nil {
				t.Fatal(err)
			}
			s.closed = true

			walPath := filepath.Join(dir, walName)
			want := tc.mangle(t, walPath, sizes)

			s2, err := Open(dir, opts)
			if err != nil {
				t.Fatalf("reopen over torn tail: %v", err)
			}
			if got := s2.Stats().MemRecords; got != want {
				t.Fatalf("recovered %d records, want %d", got, want)
			}
			// The tear must be physically gone, not just skipped: the file
			// ends at the last intact frame.
			fi, err := os.Stat(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() != sizes[want-1] {
				t.Fatalf("WAL not truncated: size %d, want %d", fi.Size(), sizes[want-1])
			}
			// Appends after the truncation must start on the clean boundary.
			w2 := s2.Writer()
			for i := 0; i < 5; i++ {
				if err := w2.Append(faultRecord(20 + i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s2.wal.close(); err != nil {
				t.Fatal(err)
			}
			s2.closed = true

			s3, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s3.Close()
			recs, _ := queryAll(t, s3, Query{})
			if len(recs) != want+5 {
				t.Fatalf("after torn-tail recovery and append: %d records, want %d", len(recs), want+5)
			}
		})
	}
}

// buildFaultStore seals n indexed records into a single segment and returns
// the reopened store (so nothing is cached from the write path).
func buildFaultStore(t *testing.T, dir string, n int) *Store {
	t.Helper()
	s, err := Open(dir, faultOptions())
	if err != nil {
		t.Fatal(err)
	}
	w := s.Writer()
	for i := 0; i < n; i++ {
		if err := w.Append(faultRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir, faultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// corruptBlock flips bytes in the middle of one block's compressed data on
// disk, leaving the index and every other block intact.
func corruptBlock(t *testing.T, g *segment, bi int) {
	t.Helper()
	bm := g.index.blocks[bi]
	f, err := os.OpenFile(g.path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 8)
	at := bm.offset + int64(bm.clen)/3
	if _, err := f.ReadAt(buf, at); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] ^= 0xff
	}
	if _, err := f.WriteAt(buf, at); err != nil {
		t.Fatal(err)
	}
}

// TestQuarantineCorruptBlock is the acceptance test for degraded reads: a
// query over a store with one bit-rotted sealed block must return every
// other block's records, count the skipped block in ScanStats and in the
// irtl_store_quarantined_blocks process counter, and report no error.
func TestQuarantineCorruptBlock(t *testing.T) {
	const n = 200
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			s := buildFaultStore(t, t.TempDir(), n)
			defer s.Close()
			if len(s.segs) != 1 {
				t.Fatalf("want 1 segment, got %d", len(s.segs))
			}
			g := s.segs[0]
			if len(g.index.blocks) < 3 {
				t.Fatalf("want >=3 blocks, got %d", len(g.index.blocks))
			}
			const bad = 1
			lost := int(g.index.blocks[bad].count)
			corruptBlock(t, g, bad)

			c0 := obsQuarantinedBlocks.Value()
			r, err := s.QueryParallel(Query{}, workers)
			if err != nil {
				t.Fatal(err)
			}
			recs, err := r.ReadAll()
			if err != nil {
				t.Fatalf("query over corrupt block must not fail: %v", err)
			}
			st := r.Stats()
			r.Close()
			if len(recs) != n-lost {
				t.Fatalf("got %d records, want %d (all but the corrupt block's %d)", len(recs), n-lost, lost)
			}
			// Every surviving record is intact and none is from the bad block.
			seen := make(map[int]bool)
			for _, rec := range recs {
				seen[faultRecordIndex(t, rec)] = true
			}
			for i := 0; i < n; i++ {
				inBad := i >= bad*int(g.index.blocks[0].count) && i < bad*int(g.index.blocks[0].count)+lost
				if seen[i] == inBad {
					t.Fatalf("record %d: seen=%v, in corrupt block=%v", i, seen[i], inBad)
				}
			}
			if st.BlocksQuarantined != 1 {
				t.Fatalf("BlocksQuarantined = %d, want 1", st.BlocksQuarantined)
			}
			if got := obsQuarantinedBlocks.Value() - c0; got != 1 {
				t.Fatalf("irtl_store_quarantined_blocks moved by %d, want 1", got)
			}
		})
	}
}

// TestCompactRefusesCorruptBlock pins the other half of the quarantine
// policy: compaction must fail on a corrupt input block rather than rewrite
// the window without it, which would turn detectable damage into silent
// record loss.
func TestCompactRefusesCorruptBlock(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, faultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := s.Writer()
	for i := 0; i < 60; i++ {
		if err := w.Append(faultRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	for i := 60; i < 120; i++ {
		if err := w.Append(faultRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	if len(s.segs) != 2 {
		t.Fatalf("want 2 segments in one window, got %d", len(s.segs))
	}
	corruptBlock(t, s.segs[0], 0)
	if _, err := s.Compact(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Compact over corrupt block: err = %v, want ErrCorrupt", err)
	}
	if len(s.segs) != 2 {
		t.Fatalf("failed compaction changed the segment set: %d segments", len(s.segs))
	}
	// The damage stays visible to queries as a quarantined block.
	recs, st := queryAllParallel(t, s, Query{}, 4)
	if st.BlocksQuarantined != 1 {
		t.Fatalf("BlocksQuarantined = %d, want 1", st.BlocksQuarantined)
	}
	if len(recs) >= 120 {
		t.Fatalf("query returned %d records over a corrupt block, want fewer than 120", len(recs))
	}
}

// TestPartialScanErrorSticky asserts the non-corruption failure mode: an I/O
// error mid-scan (here, a segment truncated under a live store, so ReadAt
// hits EOF) surfaces as a partial-scan error from Next, repeats on every
// later Next, and still lets the reader close cleanly.
func TestPartialScanErrorSticky(t *testing.T) {
	dir := t.TempDir()
	if err := buildFaultStore(t, dir, 200).Close(); err != nil {
		t.Fatal(err)
	}
	// This test is about the ReadAt failure mode, so mapping must be off: a
	// memory-mapped segment keeps serving the pages captured at map time and
	// never notices the truncation below.
	opts := faultOptions()
	opts.NoMmap = true
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := s.segs[0]
	// Cut the file mid-way through the block region: early blocks read fine,
	// a later ReadAt comes up short with plain EOF, which is not corruption.
	last := g.index.blocks[len(g.index.blocks)-1]
	if err := os.Truncate(g.path, last.offset+2); err != nil {
		t.Fatal(err)
	}
	r, err := s.Query(Query{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var scanErr error
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			t.Fatal("scan over truncated segment reached EOF without error")
		}
		if err != nil {
			scanErr = err
			break
		}
		n++
	}
	if errors.Is(scanErr, ErrCorrupt) {
		t.Fatalf("EOF mid-block classified as corruption: %v", scanErr)
	}
	if n == 0 {
		t.Fatal("no records returned before the partial-scan error")
	}
	if _, err := r.Next(); err == nil || err.Error() != scanErr.Error() {
		t.Fatalf("partial-scan error not sticky: first %v, then %v", scanErr, err)
	}
}

// TestScanNoLeaksUnderFaults asserts the two leak invariants of the scan
// paths under injected failures: the pooled record-buffer balance returns to
// its starting point, and every file opened through the injector is closed —
// including on setup errors, early closes, and corrupt-block scans.
func TestScanNoLeaksUnderFaults(t *testing.T) {
	dir := t.TempDir()
	buildFaultStore(t, dir, 300).Close()

	bufs0 := recBufsLive.Load()
	check := func(t *testing.T, inj *faults.Injector) {
		t.Helper()
		if got := recBufsLive.Load(); got != bufs0 {
			t.Fatalf("record buffer balance %d, want %d", got, bufs0)
		}
		if inj != nil {
			if st := inj.Stats(); st.OpenFiles != 0 {
				t.Fatalf("%d files left open", st.OpenFiles)
			}
		}
	}

	t.Run("clean-full-scan", func(t *testing.T) {
		inj := faults.NewInjector(faults.Disk{}, faults.Plan{})
		opts := faultOptions()
		opts.FS = inj
		s, err := Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		recs, _ := queryAllParallel(t, s, Query{}, 4)
		if len(recs) != 300 {
			t.Fatalf("got %d records, want 300", len(recs))
		}
		s.Close()
		check(t, inj)
	})

	t.Run("early-close", func(t *testing.T) {
		s, err := Open(dir, faultOptions())
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.QueryParallel(Query{}, 4)
		if err != nil {
			t.Fatal(err)
		}
		// Consume a few records, then abandon the scan with blocks still in
		// flight; Close must drain the workers and reclaim their buffers.
		for i := 0; i < 3; i++ {
			if _, err := r.Next(); err != nil {
				t.Fatal(err)
			}
		}
		r.Close()
		s.Close()
		check(t, nil)
	})

	t.Run("corrupt-block-scan", func(t *testing.T) {
		cdir := t.TempDir()
		s := buildFaultStore(t, cdir, 300)
		corruptBlock(t, s.segs[0], 2)
		recs, _ := queryAllParallel(t, s, Query{}, 4)
		if len(recs) >= 300 {
			t.Fatalf("corrupt block not skipped: %d records", len(recs))
		}
		s.Close()
		check(t, nil)
	})

	// Sweep the Nth-open failure through every open the query path performs,
	// hitting each setup error branch in Query and QueryParallel in turn.
	t.Run("open-fault-sweep", func(t *testing.T) {
		for failN := 1; failN <= 12; failN++ {
			inj := faults.NewInjector(faults.Disk{}, faults.Plan{FailOpenN: failN})
			opts := faultOptions()
			opts.FS = inj
			s, err := Open(dir, opts)
			if err != nil {
				if !errors.Is(err, faults.ErrInjected) {
					t.Fatalf("failN=%d: open: %v", failN, err)
				}
				check(t, inj)
				continue
			}
			for _, workers := range []int{1, 4} {
				r, err := s.QueryParallel(Query{}, workers)
				if err == nil {
					if _, err := r.ReadAll(); err != nil && !errors.Is(err, faults.ErrInjected) {
						t.Fatalf("failN=%d workers=%d: scan: %v", failN, workers, err)
					}
					r.Close()
				} else if !errors.Is(err, faults.ErrInjected) {
					t.Fatalf("failN=%d workers=%d: query: %v", failN, workers, err)
				}
			}
			s.Close()
			check(t, inj)
		}
	})
}

// TestFaultMatrix drives the full ingest -> seal -> compact -> query
// pipeline under a table of injected write faults — torn writes, failed
// writes, and fsync failures at varying ordinals — and asserts that after
// every run the store reopens cleanly on an undamaged filesystem with a
// duplicate-free contiguous prefix covering all acknowledged records.
func TestFaultMatrix(t *testing.T) {
	type tc struct {
		name string
		plan faults.Plan
	}
	var cases []tc
	for _, n := range []int{1, 2, 3, 5, 8, 13, 21, 34} {
		cases = append(cases,
			tc{fmt.Sprintf("tornwrite-%d", n), faults.Plan{Seed: int64(n), TornWriteN: n}},
			tc{fmt.Sprintf("failwrite-%d", n), faults.Plan{Seed: int64(n), FailWriteN: n}},
			tc{fmt.Sprintf("failsync-%d", n), faults.Plan{Seed: int64(n), FailSyncN: n}},
		)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := faults.NewInjector(faults.Disk{}, tc.plan)
			opts := faultOptions()
			opts.Sync = true
			opts.FS = inj

			acked := 0
			appended := 0
			// The pipeline stops at the first error, as a crashing process
			// would; everything before the fault must still be recoverable.
			func() {
				s, err := Open(dir, opts)
				if err != nil {
					return
				}
				defer func() {
					s.wal.close()
					s.closed = true
				}()
				w := s.Writer()
				step := func(err error) bool { return err == nil }
				for appended < 90 {
					if !step(w.Append(faultRecord(appended))) {
						return
					}
					appended++
					if appended%10 == 0 {
						if !step(w.Flush()) {
							return
						}
						acked = appended
					}
					if appended == 40 || appended == 80 {
						if !step(w.Seal()) {
							return
						}
						acked = appended
					}
				}
				if _, err := s.Compact(); err != nil {
					return
				}
				if r, err := s.QueryParallel(Query{}, 4); err == nil {
					r.ReadAll()
					r.Close()
				}
			}()

			// Reopen on the undamaged filesystem, as a restart would.
			s, err := Open(dir, faultOptions())
			if err != nil {
				t.Fatalf("reopen after %s: %v", tc.name, err)
			}
			defer s.Close()
			recs, _ := queryAllParallel(t, s, Query{}, 4)
			verifyRecoveredPrefix(t, recs, acked)
			if inj.Stats().Injected == 0 && len(recs) != appended {
				t.Fatalf("no fault fired but recovered %d of %d records", len(recs), appended)
			}
		})
	}
}
