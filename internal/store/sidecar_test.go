package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

type sideEntry struct {
	N int    `json:"n"`
	S string `json:"s"`
}

func readSideEntries(t *testing.T, path string) []sideEntry {
	t.Helper()
	var out []sideEntry
	n, err := ReadSidecarLog(path, func(payload []byte) error {
		var e sideEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			return err
		}
		out = append(out, e)
		return nil
	})
	if err != nil {
		t.Fatalf("ReadSidecarLog: %v", err)
	}
	if n != len(out) {
		t.Fatalf("ReadSidecarLog count %d, got %d entries", n, len(out))
	}
	return out
}

func TestSidecarLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alerts.log")
	l, err := OpenSidecarLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(sideEntry{N: i, S: "entry"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := readSideEntries(t, path)
	if len(got) != 5 {
		t.Fatalf("got %d entries, want 5", len(got))
	}
	for i, e := range got {
		if e.N != i || e.S != "entry" {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
}

func TestSidecarLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alerts.log")
	l, err := OpenSidecarLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(sideEntry{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// A crash mid-append leaves a torn frame: a length header promising
	// more bytes than the file holds.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 99, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Reads stop at the torn frame; reopening truncates it and appends
	// land on a clean boundary.
	if got := readSideEntries(t, path); len(got) != 3 {
		t.Fatalf("got %d entries before reopen, want 3", len(got))
	}
	l, err = OpenSidecarLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sideEntry{N: 3}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := readSideEntries(t, path)
	if len(got) != 4 || got[3].N != 3 {
		t.Fatalf("after reopen got %+v, want 4 entries ending in n=3", got)
	}
}

func TestSidecarLogCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alerts.log")
	l, err := OpenSidecarLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := l.Append(sideEntry{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Append(sideEntry{N: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the last frame's payload: its checksum fails and
	// the reader must stop after the two intact entries.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := readSideEntries(t, path); len(got) != 2 {
		t.Fatalf("got %d entries, want 2 (corrupt tail dropped)", len(got))
	}
}

func TestSidecarLogMissingFile(t *testing.T) {
	n, err := ReadSidecarLog(filepath.Join(t.TempDir(), "nope.log"), func([]byte) error { return nil })
	if err != nil || n != 0 {
		t.Fatalf("missing file: n=%d err=%v, want 0,nil", n, err)
	}
}
