package store

import (
	"fmt"
	"strings"

	"instability/internal/obs"
)

// Explain is the per-query EXPLAIN profile: what the index pruned, what the
// scan actually read, and what came back — the attribution layer between "a
// query ran" (irtl_store_queries_total) and "this query was slow". It rides
// on the query's trace span, the serve plane's slow-query log and
// /v1/statz recent-queries, and `bgpstore query -explain`.
type Explain struct {
	Generation        uint64 `json:"generation"`
	Workers           int    `json:"workers"`
	SegmentsTotal     int    `json:"segments_total"`
	SegmentsScanned   int    `json:"segments_scanned"`
	SegmentsPruned    int    `json:"segments_pruned"`
	BlocksTotal       int    `json:"blocks_total"`
	BlocksSelected    int    `json:"blocks_selected"`
	BlocksPruned      int    `json:"blocks_pruned"`
	BlocksScanned     int    `json:"blocks_scanned"`
	BlocksCacheHit    int    `json:"blocks_cache_hit"`
	BlocksCacheMiss   int    `json:"blocks_cache_miss"`
	BlocksQuarantined int    `json:"blocks_quarantined,omitempty"`
	BlocksV1          int    `json:"blocks_v1,omitempty"`
	BlocksV2          int    `json:"blocks_v2,omitempty"`
	RecordsScanned    int    `json:"records_scanned"`
	// RecordsMaterialized is how many record structs the columnar kernels
	// actually built; RecordsScanned - RecordsMaterialized rows were filtered
	// out at the column level without ever becoming records.
	RecordsMaterialized int   `json:"records_materialized"`
	RecordsMatched      int   `json:"records_matched"`
	MemRecords          int   `json:"mem_records,omitempty"`
	BytesReadDisk       int64 `json:"bytes_read_disk"`
	BytesDecompressed   int64 `json:"bytes_decompressed"`
	BytesFromCache      int64 `json:"bytes_from_cache"`
}

// Explain returns the query's EXPLAIN profile from the accounting gathered
// so far; final once the reader hits io.EOF (or is closed).
func (r *Reader) Explain() Explain {
	st := r.stats
	return Explain{
		Generation:        r.gen,
		Workers:           r.workers,
		SegmentsTotal:     st.SegmentsTotal,
		SegmentsScanned:   st.SegmentsScanned,
		SegmentsPruned:    st.SegmentsTotal - st.SegmentsScanned,
		BlocksTotal:       st.BlocksTotal,
		BlocksSelected:    st.BlocksSelected,
		BlocksPruned:      st.BlocksTotal - st.BlocksSelected,
		BlocksScanned:       st.BlocksScanned,
		BlocksCacheHit:      st.BlocksCacheHit,
		BlocksCacheMiss:     st.BlocksCacheMiss,
		BlocksQuarantined:   st.BlocksQuarantined,
		BlocksV1:            st.BlocksV1,
		BlocksV2:            st.BlocksV2,
		RecordsScanned:      st.RecordsScanned,
		RecordsMaterialized: st.RecordsMaterialized,
		RecordsMatched:      st.RecordsMatched,
		MemRecords:          st.MemRecords,
		BytesReadDisk:       st.BytesReadDisk,
		BytesDecompressed:   st.BytesDecompressed,
		BytesFromCache:      st.BytesFromCache,
	}
}

// String renders the profile for the CLI (`bgpstore query -explain`).
func (e Explain) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "generation %d, %d worker(s)\n", e.Generation, e.Workers)
	fmt.Fprintf(&sb, "segments: %d total, %d pruned, %d scanned\n",
		e.SegmentsTotal, e.SegmentsPruned, e.SegmentsScanned)
	fmt.Fprintf(&sb, "blocks:   %d total, %d pruned, %d selected, %d scanned (%d v1, %d v2, %d quarantined)\n",
		e.BlocksTotal, e.BlocksPruned, e.BlocksSelected, e.BlocksScanned,
		e.BlocksV1, e.BlocksV2, e.BlocksQuarantined)
	fmt.Fprintf(&sb, "cache:    %d hit, %d miss\n", e.BlocksCacheHit, e.BlocksCacheMiss)
	fmt.Fprintf(&sb, "records:  %d scanned + %d memtable, %d materialized, %d matched\n",
		e.RecordsScanned, e.MemRecords, e.RecordsMaterialized, e.RecordsMatched)
	fmt.Fprintf(&sb, "bytes:    %d disk, %d decompressed, %d from cache",
		e.BytesReadDisk, e.BytesDecompressed, e.BytesFromCache)
	return sb.String()
}

// annotate attaches the profile to a trace span. Nil-safe.
func (e Explain) annotate(sp *obs.TraceSpan) {
	if sp == nil {
		return
	}
	sp.AnnotateInt("generation", int64(e.Generation))
	sp.AnnotateInt("workers", int64(e.Workers))
	sp.AnnotateInt("segments_total", int64(e.SegmentsTotal))
	sp.AnnotateInt("segments_pruned", int64(e.SegmentsPruned))
	sp.AnnotateInt("segments_scanned", int64(e.SegmentsScanned))
	sp.AnnotateInt("blocks_total", int64(e.BlocksTotal))
	sp.AnnotateInt("blocks_pruned", int64(e.BlocksPruned))
	sp.AnnotateInt("blocks_scanned", int64(e.BlocksScanned))
	sp.AnnotateInt("blocks_cache_hit", int64(e.BlocksCacheHit))
	sp.AnnotateInt("blocks_cache_miss", int64(e.BlocksCacheMiss))
	sp.AnnotateInt("blocks_quarantined", int64(e.BlocksQuarantined))
	sp.AnnotateInt("blocks_v1", int64(e.BlocksV1))
	sp.AnnotateInt("blocks_v2", int64(e.BlocksV2))
	sp.AnnotateInt("records_scanned", int64(e.RecordsScanned))
	sp.AnnotateInt("records_materialized", int64(e.RecordsMaterialized))
	sp.AnnotateInt("records_matched", int64(e.RecordsMatched))
	sp.AnnotateInt("mem_records", int64(e.MemRecords))
	sp.AnnotateInt("bytes_read_disk", e.BytesReadDisk)
	sp.AnnotateInt("bytes_decompressed", e.BytesDecompressed)
	sp.AnnotateInt("bytes_from_cache", e.BytesFromCache)
}
