package store

import (
	"io"
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
)

func queryAllParallel(t *testing.T, s *Store, q Query, workers int) ([]collector.Record, ScanStats) {
	t.Helper()
	r, err := s.QueryParallel(q, workers)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs, r.Stats()
}

// buildScanStore seals a multi-segment store with some records left
// unsealed in the memtable, so parallel scans cover every stream kind.
func buildScanStore(t *testing.T) (*Store, []collector.Record) {
	t.Helper()
	recs := hourlyWorkload(6, 300)
	s, err := Open(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	w := s.Writer()
	sealAt := len(recs) - 200 // tail stays in the memtable
	for i, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		if i == sealAt {
			if err := w.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := s.Stats(); st.Segments < 2 || st.MemRecords == 0 {
		t.Fatalf("want multi-segment store with unsealed tail, got %+v", st)
	}
	return s, recs
}

// TestQueryParallelEquivalence is the ordered-merge contract: the parallel
// scan must return exactly the serial reader's record sequence and pushdown
// accounting, for full scans, indexed queries, and worker counts beyond the
// block count.
func TestQueryParallelEquivalence(t *testing.T) {
	s, recs := buildScanStore(t)
	queries := []Query{
		{},
		{OriginAS: []bgp.ASN{7002}},
		{PeerAS: []bgp.ASN{101}},
		{From: recs[200].Time, To: recs[1200].Time},
	}
	for qi, q := range queries {
		want, wantStats := queryAll(t, s, q)
		for _, workers := range []int{2, 4, 64} {
			got, gotStats := queryAllParallel(t, s, q, workers)
			assertSameRecords(t, got, want)
			if gotStats != wantStats {
				t.Fatalf("query %d workers %d: stats %+v, serial %+v", qi, workers, gotStats, wantStats)
			}
		}
	}
}

// TestQueryParallelFallback: one worker must take the serial path, and a
// query whose pruning leaves nothing must return a clean empty result.
func TestQueryParallelFallback(t *testing.T) {
	s, recs := buildScanStore(t)
	want, _ := queryAll(t, s, Query{})
	got, _ := queryAllParallel(t, s, Query{}, 1)
	assertSameRecords(t, got, want)

	empty, st := queryAllParallel(t, s, Query{From: recs[len(recs)-1].Time.Add(48 * time.Hour)}, 4)
	if len(empty) != 0 || st.BlocksScanned != 0 {
		t.Fatalf("future-window query returned %d records, stats %+v", len(empty), st)
	}
}

// TestQueryParallelEarlyClose closes a parallel reader mid-stream: the
// worker pool must drain without the consumer, and the store must remain
// fully queryable afterwards.
func TestQueryParallelEarlyClose(t *testing.T) {
	s, recs := buildScanStore(t)
	r, err := s.QueryParallel(Query{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		// A closed reader has no streams left; Next must report EOF.
		t.Fatalf("Next after Close: %v", err)
	}
	got, _ := queryAllParallel(t, s, Query{}, 4)
	assertSameRecords(t, got, recs)
}

// TestAppendBatch checks that batched ingest is byte-equivalent to
// record-at-a-time ingest: same query results before sealing (memtable +
// WAL path) and after (segment path), same writer accounting.
func TestAppendBatch(t *testing.T) {
	recs := hourlyWorkload(3, 250)

	single, err := Open(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	sw := single.Writer()
	for _, rec := range recs {
		if err := sw.Append(rec); err != nil {
			t.Fatal(err)
		}
	}

	batched, err := Open(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()
	bw := batched.Writer()
	for i := 0; i < len(recs); i += 97 { // deliberately unaligned batches
		end := i + 97
		if end > len(recs) {
			end = len(recs)
		}
		if err := bw.AppendBatch(recs[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if sw.Count() != bw.Count() {
		t.Fatalf("appended %d batched vs %d single", bw.Count(), sw.Count())
	}

	// Unsealed: everything visible from the memtable.
	gotMem, _ := queryAll(t, batched, Query{})
	wantMem, _ := queryAll(t, single, Query{})
	assertSameRecords(t, gotMem, wantMem)

	// Sealed: identical segment contents.
	if err := sw.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Seal(); err != nil {
		t.Fatal(err)
	}
	got, _ := queryAll(t, batched, Query{})
	want, _ := queryAll(t, single, Query{})
	assertSameRecords(t, got, want)
}

// TestAppendBatchDurability: a batch followed by Flush must survive a crash
// (reopen without Seal or Close) through WAL replay.
func TestAppendBatchDurability(t *testing.T) {
	recs := hourlyWorkload(1, 120)
	dir := t.TempDir()
	s, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	w := s.Writer()
	if err := w.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Crash: the handle is abandoned; nothing is sealed or closed.
	_ = s

	re, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, _ := queryAll(t, re, Query{})
	assertSameRecords(t, got, recs)
}
