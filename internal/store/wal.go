package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"instability/internal/collector"
	"instability/internal/faults"
)

const walName = "wal.log"

// walRotName names a rotated WAL file. Rotation numbers are zero-padded so
// lexicographic directory order is replay order.
func walRotName(seq uint64) string { return fmt.Sprintf("wal-%08d.log", seq) }

// rotateWALLocked moves the live WAL aside under a rotation name and opens a
// fresh one, so a background seal can cover the rotated file's records while
// new appends keep landing durably. The rotated file is deleted only after
// every record it holds is in a renamed segment (see finishSeal); a crash at
// any point leaves either the rename undone (the file replays as wal.log
// would have) or done (it replays as a rotated WAL, deduped by sequence
// range). Returns "" when the live WAL is empty and nothing was rotated.
func (s *Store) rotateWALLocked() (string, error) {
	if s.wal.size() == 0 {
		return "", nil
	}
	active := filepath.Join(s.dir, walName)
	rotated := filepath.Join(s.dir, walRotName(s.walSeq))
	if err := s.fs.Rename(active, rotated); err != nil {
		return "", err
	}
	w, _, err := openWAL(s.fs, active)
	if err != nil {
		// Roll the rename back so the store still has a live WAL; the seal
		// that wanted the rotation aborts.
		s.fs.Rename(rotated, active)
		return "", err
	}
	s.walSeq++
	old := s.wal
	s.wal = w
	old.close()
	obsWALBytes.SetInt(0)
	return rotated, nil
}

// walEntry is one logged append: the record plus its (window, sequence)
// position, which is what makes recovery dedupe exact.
type walEntry struct {
	window int64 // window start, unixnano
	seq    uint64
	rec    collector.Record
}

// wal is the append-only write-ahead log. Entries are framed as
//
//	u32 payloadLen | payload | u32 crc32(payload)
//
// so a torn tail (crash mid-write) is detected by length or checksum and
// discarded on open.
type wal struct {
	f   faults.File
	off int64 // current append offset
}

// openWAL opens (creating if absent) the WAL at path and replays its intact
// entries. A torn or corrupt tail is physically truncated away — not merely
// skipped — so the next append lands on a clean frame boundary instead of
// burying readable entries behind garbage; everything before the tear is
// returned.
func openWAL(fsys faults.FS, path string) (*wal, []walEntry, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	var entries []walEntry
	off := int64(0)
	b := data
	for len(b) >= 4 {
		plen := int(binary.BigEndian.Uint32(b))
		if plen <= 0 || len(b) < 4+plen+4 {
			break // torn tail
		}
		payload := b[4 : 4+plen]
		crc := binary.BigEndian.Uint32(b[4+plen:])
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt tail
		}
		ent, err := decodeWALPayload(payload)
		if err != nil {
			break
		}
		entries = append(entries, ent)
		step := int64(4 + plen + 4)
		off += step
		b = b[step:]
	}
	// Drop whatever followed the last intact entry so appends resume from a
	// clean frame boundary.
	if off < int64(len(data)) {
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &wal{f: f, off: off}, entries, nil
}

// append writes pre-encoded frames in one write (group commit).
func (w *wal) append(frames []byte, sync bool) error {
	if len(frames) == 0 {
		return nil
	}
	if _, err := w.f.Write(frames); err != nil {
		return err
	}
	w.off += int64(len(frames))
	if sync {
		return w.f.Sync()
	}
	return nil
}

func (w *wal) size() int64 { return w.off }

func (w *wal) close() error { return w.f.Close() }

// appendWALFrame encodes one entry as a framed payload onto b. The payload is
// built in place on b behind a length placeholder that is patched afterward,
// so no per-record scratch buffer is allocated; enc supplies memoized
// attribute bytes for the record.
func appendWALFrame(b []byte, window int64, seq uint64, rec collector.Record, enc *attrEncoder) ([]byte, error) {
	lenAt := len(b)
	b = append(b, 0, 0, 0, 0) // payload length, patched below
	pStart := len(b)
	b = binary.BigEndian.AppendUint64(b, uint64(window))
	b = binary.BigEndian.AppendUint64(b, seq)
	b, err := appendRecordAbs(b, rec, enc)
	if err != nil {
		return nil, err
	}
	payload := b[pStart:]
	binary.BigEndian.PutUint32(b[lenAt:], uint32(len(payload)))
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(payload)), nil
}

func decodeWALPayload(p []byte) (walEntry, error) {
	var ent walEntry
	if len(p) < 16 {
		return ent, fmt.Errorf("%w: WAL payload", ErrCorrupt)
	}
	ent.window = int64(binary.BigEndian.Uint64(p))
	ent.seq = binary.BigEndian.Uint64(p[8:])
	rec, rest, err := decodeRecordAbs(p[16:])
	if err != nil {
		return ent, err
	}
	if len(rest) != 0 {
		return ent, fmt.Errorf("%w: trailing bytes in WAL payload", ErrCorrupt)
	}
	ent.rec = rec
	return ent, nil
}
