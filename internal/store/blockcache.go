package store

import (
	"container/list"
	"sync"
)

// blockCache is the store-wide cache of decompressed, columnar-decoded
// segment blocks, shared by every reader — serial scans, parallel scan
// workers, and compaction-adjacent queries all hit the same entries. It is a
// strict byte-budget LRU keyed by (segment fingerprint, block index):
// segments are immutable, so an entry can never be stale — compaction
// retires a segment's entries explicitly (dropSegment), and a restarted
// process re-keys naturally because fingerprints are content-derived.
//
// Loads are single-flight: when two scans miss the same cold block
// concurrently, one inflates and decodes it while the other waits for the
// result, so a thundering herd of identical dashboard queries costs one
// decompression per block, not one per reader.
type blockCache struct {
	budget int64

	mu      sync.Mutex
	lru     *list.List // front = most recently used; values are *cacheEntry
	entries map[blockKey]*list.Element
	flights map[blockKey]*cacheFlight
	used    int64

	hits, misses, evictions uint64
}

// blockKey identifies one decoded block. The segment half is the segment's
// content fingerprint (seq, window, sequence range, count), not its path, so
// a recycled file name can never alias a different block.
type blockKey struct {
	seg   uint64
	block int32
}

type cacheEntry struct {
	key blockKey
	cb  *colBlock
}

// cacheFlight is one in-progress load; waiters block on done. dropped is set
// (under the cache mutex) when dropSegment retires the flight's segment
// mid-load: the result is still served to every waiter but must not be
// inserted — the segment is gone from the store, so the entry could never be
// hit again and would squat on budget until LRU pressure happens to evict it.
type cacheFlight struct {
	done    chan struct{}
	cb      *colBlock
	err     error
	dropped bool
}

func newBlockCache(budget int64) *blockCache {
	return &blockCache{
		budget:  budget,
		lru:     list.New(),
		entries: make(map[blockKey]*list.Element),
		flights: make(map[blockKey]*cacheFlight),
	}
}

// getOrLoad returns the cached block for key, or runs load exactly once
// (across all concurrent callers) to produce, cache, and return it. hit
// reports whether the caller was served without doing the work itself — a
// resident entry or another caller's in-flight load. Failed loads are never
// cached; every waiter of a failed flight observes the same error.
func (c *blockCache) getOrLoad(key blockKey, load func() (*colBlock, error)) (*colBlock, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		obsBlockCacheHits.Inc()
		return el.Value.(*cacheEntry).cb, true, nil
	}
	if fl, ok := c.flights[key]; ok {
		c.hits++
		c.mu.Unlock()
		obsBlockCacheHits.Inc()
		<-fl.done
		if fl.err != nil {
			return nil, false, fl.err
		}
		return fl.cb, true, nil
	}
	fl := &cacheFlight{done: make(chan struct{})}
	c.flights[key] = fl
	c.misses++
	c.mu.Unlock()
	obsBlockCacheMisses.Inc()

	cb, err := load()
	fl.cb, fl.err = cb, err

	c.mu.Lock()
	delete(c.flights, key)
	if err == nil && !fl.dropped {
		c.insertLocked(key, cb)
	}
	c.mu.Unlock()
	close(fl.done)
	if err != nil {
		return nil, false, err
	}
	return cb, false, nil
}

// insertLocked adds one decoded block and evicts from the LRU tail until the
// budget holds again. A block bigger than the whole budget is served but
// never cached — inserting it would only evict everything else on its way to
// being evicted itself.
func (c *blockCache) insertLocked(key blockKey, cb *colBlock) {
	if cb.bytes > c.budget {
		return
	}
	if _, ok := c.entries[key]; ok {
		return // lost a race with an identical load; keep the resident entry
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, cb: cb})
	c.used += cb.bytes
	for c.used > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
		obsBlockCacheEvictions.Inc()
	}
	c.publishLocked()
}

func (c *blockCache) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, ent.key)
	c.used -= ent.cb.bytes
}

// dropSegment retires every entry of one segment. Compaction calls it for
// each segment it replaces: the keys could never be queried again (the
// segment is gone from the store), so leaving them to age out of the LRU
// would waste budget on unreachable blocks.
func (c *blockCache) dropSegment(fp uint64) {
	c.mu.Lock()
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*cacheEntry).key.seg == fp {
			c.removeLocked(el)
		}
	}
	// Loads for this segment still in flight must not insert on completion;
	// their waiters are served, but the entry would be unreachable.
	for key, fl := range c.flights {
		if key.seg == fp {
			fl.dropped = true
		}
	}
	c.publishLocked()
	c.mu.Unlock()
}

// purge empties the cache (tests and cold-cache benchmarks).
func (c *blockCache) purge() {
	c.mu.Lock()
	c.lru.Init()
	clear(c.entries)
	c.used = 0
	c.publishLocked()
	c.mu.Unlock()
}

// publishLocked refreshes the process-level gauges from this cache's state.
func (c *blockCache) publishLocked() {
	obsBlockCacheBytes.SetInt(c.used)
	obsBlockCacheEntries.SetInt(int64(len(c.entries)))
}

// BlockCacheStats describes the shared decompressed-block cache, surfaced
// through Store.Stats and the serving plane's /v1/statz.
type BlockCacheStats struct {
	Enabled     bool   `json:"enabled"`
	BudgetBytes int64  `json:"budget_bytes"`
	UsedBytes   int64  `json:"used_bytes"`
	Entries     int    `json:"entries"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Evictions   uint64 `json:"evictions"`
}

func (c *blockCache) stats() BlockCacheStats {
	if c == nil {
		return BlockCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return BlockCacheStats{
		Enabled:     true,
		BudgetBytes: c.budget,
		UsedBytes:   c.used,
		Entries:     len(c.entries),
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
	}
}
