package store

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/netaddr"
)

// Query selects records from the store. The zero value matches everything.
// All set predicates are ANDed.
type Query struct {
	// From and To bound the half-open time range [From, To). A zero time
	// leaves that side unbounded.
	From, To time.Time
	// PeerAS restricts to records heard from any of these peers.
	PeerAS []bgp.ASN
	// OriginAS restricts to announcements whose AS path originates at any
	// of these ASes. Setting it implies Announce-only: withdrawals and
	// session events carry no origin.
	OriginAS []bgp.ASN
	// Prefix restricts to records for exactly this prefix. The zero Prefix
	// means no prefix predicate (an exact query for 0.0.0.0/0 is not
	// expressible, which no analysis needs).
	Prefix netaddr.Prefix
	// Types restricts to these record types.
	Types []collector.RecType
}

func (q Query) hasPrefix() bool { return q.Prefix != netaddr.Prefix{} }

func (q Query) timeOverlaps(minT, maxT int64) bool {
	if !q.From.IsZero() && maxT < q.From.UnixNano() {
		return false
	}
	if !q.To.IsZero() && minT >= q.To.UnixNano() {
		return false
	}
	return true
}

// match is the record-level predicate, applied after block pushdown.
func (q Query) match(rec collector.Record) bool {
	if !q.From.IsZero() && rec.Time.Before(q.From) {
		return false
	}
	if !q.To.IsZero() && !rec.Time.Before(q.To) {
		return false
	}
	if len(q.Types) > 0 && !containsType(q.Types, rec.Type) {
		return false
	}
	if len(q.PeerAS) > 0 && !containsASN(q.PeerAS, rec.PeerAS) {
		return false
	}
	if len(q.OriginAS) > 0 {
		origin, ok := originOf(rec)
		if !ok || !containsASN(q.OriginAS, origin) {
			return false
		}
	}
	if q.hasPrefix() && rec.Prefix != q.Prefix {
		return false
	}
	return true
}

func containsASN(l []bgp.ASN, as bgp.ASN) bool {
	for _, v := range l {
		if v == as {
			return true
		}
	}
	return false
}

func containsType(l []collector.RecType, t collector.RecType) bool {
	for _, v := range l {
		if v == t {
			return true
		}
	}
	return false
}

// ParseQuery builds a Query from the CLI flag spellings shared by bgpstore,
// bgpreplay, and bgpanalyze: RFC 3339 or "2006-01-02[ 15:04:05]" times,
// comma-separated AS lists, a prefix in CIDR form, and comma-separated type
// names (A, W, UP, DOWN). Empty strings leave the predicate unset.
func ParseQuery(from, to, peers, origins, prefix, types string) (Query, error) {
	var q Query
	var err error
	if q.From, err = parseTime(from); err != nil {
		return q, fmt.Errorf("store: bad -from: %v", err)
	}
	if q.To, err = parseTime(to); err != nil {
		return q, fmt.Errorf("store: bad -to: %v", err)
	}
	if q.PeerAS, err = parseASList(peers); err != nil {
		return q, fmt.Errorf("store: bad -peer: %v", err)
	}
	if q.OriginAS, err = parseASList(origins); err != nil {
		return q, fmt.Errorf("store: bad -origin: %v", err)
	}
	if prefix != "" {
		if q.Prefix, err = netaddr.ParsePrefix(prefix); err != nil {
			return q, fmt.Errorf("store: bad -prefix: %v", err)
		}
	}
	if types != "" {
		for _, s := range strings.Split(types, ",") {
			switch strings.ToUpper(strings.TrimSpace(s)) {
			case "A", "ANNOUNCE":
				q.Types = append(q.Types, collector.Announce)
			case "W", "WITHDRAW":
				q.Types = append(q.Types, collector.Withdraw)
			case "UP":
				q.Types = append(q.Types, collector.SessionUp)
			case "DOWN":
				q.Types = append(q.Types, collector.SessionDown)
			default:
				return q, fmt.Errorf("store: bad -type %q (want A, W, UP, DOWN)", s)
			}
		}
	}
	return q, nil
}

func parseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	for _, layout := range []string{time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UTC(), nil
		}
	}
	return time.Time{}, fmt.Errorf("unrecognized time %q", s)
}

func parseASList(s string) ([]bgp.ASN, error) {
	if s == "" {
		return nil, nil
	}
	var out []bgp.ASN
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad AS %q", part)
		}
		out = append(out, bgp.ASN(v))
	}
	return out, nil
}
