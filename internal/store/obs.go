package store

import "instability/internal/obs"

// Store instrumentation, shared by every open store in the process. Ingest
// metrics cost one atomic op per record on the hot path; everything heavier
// (WAL group commits, seals, compactions, query pushdown totals) is
// recorded at batch boundaries.
var (
	obsAppends = obs.Default().Counter("irtl_store_append_records_total",
		"Records appended through store writers.")
	obsWALAppendSeconds = obs.Default().Histogram("irtl_store_wal_append_seconds",
		"WAL group-commit latency (one observation per flush).", nil)
	obsBatchRecords = obs.Default().Histogram("irtl_store_append_batch_records",
		"Records per AppendBatch call.",
		[]float64{1, 8, 32, 128, 512, 2048, 8192})
	obsWALBytes = obs.Default().Gauge("irtl_store_wal_bytes",
		"Current WAL size in bytes.")
	obsMemRecords = obs.Default().Gauge("irtl_store_mem_records",
		"Unsealed records in the memtable.")
	obsSegments = obs.Default().Gauge("irtl_store_segments",
		"Sealed segment files on disk.")

	obsSealSeconds = obs.Default().Histogram("irtl_store_seal_seconds",
		"Time to seal the memtable into segments (one observation per seal).", nil)
	obsSealedRecords = obs.Default().Counter("irtl_store_sealed_records_total",
		"Records written into sealed segments.")
	obsSealedSegments = obs.Default().Counter("irtl_store_sealed_segments_total",
		"Segments produced by seals.")
	obsSealActive = obs.Default().Gauge("irtl_store_seal_active",
		"Whether a background seal batch is in flight (0 or 1).")
	obsSealWorkers = obs.Default().Gauge("irtl_store_seal_workers",
		"Block encode/compress workers configured for seals and compactions.")
	obsSealStallSeconds = obs.Default().Histogram("irtl_store_seal_stall_seconds",
		"Time an append stalled on seal backpressure (ingest a full threshold ahead).", nil)
	obsSealSortSeconds = obs.Default().Histogram("irtl_store_seal_sort_seconds",
		"Time sorting one detached window's snapshot before block encoding.", nil)
	obsSealWriteSeconds = obs.Default().Histogram("irtl_store_seal_write_seconds",
		"Time encoding, compressing, and writing one sealed segment.", nil)
	obsSealPublishSeconds = obs.Default().Histogram("irtl_store_seal_publish_seconds",
		"Store-lock hold time publishing one sealed segment (the only moment a seal blocks queries).", nil)

	obsCompactSeconds = obs.Default().Histogram("irtl_store_compact_seconds",
		"Compaction pass latency.", nil)
	obsCompactRecords = obs.Default().Counter("irtl_store_compact_records_total",
		"Records rewritten by compaction.")

	obsDictEntries = obs.Default().Counter("irtl_store_dict_entries_total",
		"Attribute dictionary entries written into v2 segment blocks.")
	obsDictBytesSaved = obs.Default().Counter("irtl_store_dict_bytes_saved_total",
		"Uncompressed bytes saved by v2 dictionary encoding vs inline attributes.")

	obsQueries = obs.Default().Counter("irtl_store_queries_total",
		"Queries opened against stores.")
	obsQuerySegments = obs.Default().Counter("irtl_store_query_segments_total",
		"Segments present at query time (denominator of the segment skip ratio).")
	obsQuerySegmentsScanned = obs.Default().Counter("irtl_store_query_segments_scanned_total",
		"Segments not skipped by segment-level pruning.")
	obsQueryBlocks = obs.Default().Counter("irtl_store_query_blocks_total",
		"Blocks present at query time (denominator of the block skip ratio).")
	obsQueryBlocksScanned = obs.Default().Counter("irtl_store_query_blocks_scanned_total",
		"Blocks actually decompressed by queries.")
	obsQueryRecordsScanned = obs.Default().Counter("irtl_store_query_records_scanned_total",
		"Records decoded from scanned blocks.")
	obsQueryRecordsMatched = obs.Default().Counter("irtl_store_query_records_matched_total",
		"Records that satisfied the full query predicate.")
	obsQueryBytesRead = obs.Default().Counter("irtl_store_query_bytes_read_total",
		"Compressed segment bytes read from disk or mappings by queries.")
	obsQueryBytesDecompressed = obs.Default().Counter("irtl_store_query_bytes_decompressed_total",
		"Decompressed bytes produced by query block scans.")
	obsQueryBytesFromCache = obs.Default().Counter("irtl_store_query_bytes_from_cache_total",
		"Decompressed bytes served to queries from the shared block cache.")
	obsQueryRecordsMaterialized = obs.Default().Counter("irtl_store_query_records_materialized_total",
		"Record structs materialized by columnar block scans (rows surviving the column filters).")

	obsBlockCacheHits = obs.Default().Counter("irtl_store_blockcache_hits_total",
		"Block cache lookups served from a resident or in-flight entry.")
	obsBlockCacheMisses = obs.Default().Counter("irtl_store_blockcache_misses_total",
		"Block cache lookups that had to load from disk.")
	obsBlockCacheEvictions = obs.Default().Counter("irtl_store_blockcache_evictions_total",
		"Decoded blocks evicted from the cache under byte pressure.")
	obsBlockCacheBytes = obs.Default().Gauge("irtl_store_blockcache_bytes",
		"Decoded bytes resident in the shared block cache.")
	obsBlockCacheEntries = obs.Default().Gauge("irtl_store_blockcache_entries",
		"Decoded blocks resident in the shared block cache.")

	obsMmapSegments = obs.Default().Gauge("irtl_store_mmap_segments",
		"Sealed segments currently served through a memory mapping.")
	obsMmapFailures = obs.Default().Counter("irtl_store_mmap_failures_total",
		"Segment mapping attempts that fell back to the ReadAt path.")

	obsQuarantinedBlocks = obs.Default().Counter("irtl_store_quarantined_blocks",
		"Corrupt segment blocks skipped (quarantined) by queries instead of failing the scan.")

	obsParallelScans = obs.Default().Counter("irtl_store_parallel_scans_total",
		"Queries executed through the parallel scan path.")
	obsScanWorkers = obs.Default().Gauge("irtl_store_scan_workers",
		"Decompression workers used by the most recent parallel scan.")
	obsScanMergeWait = obs.Default().Histogram("irtl_store_scan_merge_wait_seconds",
		"Time the merge consumer spent waiting for an in-flight block.", nil)
)

// publishScanStats folds one finished query's pushdown accounting into the
// process counters, so skip ratios are visible live, not only per query.
func publishScanStats(st ScanStats) {
	obsQuerySegments.Add(int64(st.SegmentsTotal))
	obsQuerySegmentsScanned.Add(int64(st.SegmentsScanned))
	obsQueryBlocks.Add(int64(st.BlocksTotal))
	obsQueryBlocksScanned.Add(int64(st.BlocksScanned))
	obsQueryRecordsScanned.Add(int64(st.RecordsScanned + st.MemRecords))
	obsQueryRecordsMaterialized.Add(int64(st.RecordsMaterialized))
	obsQueryRecordsMatched.Add(int64(st.RecordsMatched))
	obsQueryBytesRead.Add(st.BytesReadDisk)
	obsQueryBytesDecompressed.Add(st.BytesDecompressed)
	obsQueryBytesFromCache.Add(st.BytesFromCache)
}
