package store

import (
	"math/rand"
	"sync"
	"testing"
)

// usedConsistent recomputes the cache's byte accounting from its resident
// entries and checks it against the running total.
func usedConsistent(t *testing.T, c *blockCache) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum int64
	for el := c.lru.Front(); el != nil; el = el.Next() {
		sum += el.Value.(*cacheEntry).cb.bytes
	}
	if c.used != sum {
		t.Fatalf("used = %d, resident entries sum to %d", c.used, sum)
	}
	if c.used < 0 {
		t.Fatalf("used went negative: %d", c.used)
	}
	if len(c.entries) != c.lru.Len() {
		t.Fatalf("entries map has %d keys, LRU has %d elements", len(c.entries), c.lru.Len())
	}
}

// TestBlockCacheOversizedServedNotCached pins the oversized-block contract:
// a block bigger than the whole budget is served to the caller but never
// enters the cache, and serving it leaves the byte accounting untouched.
func TestBlockCacheOversizedServedNotCached(t *testing.T) {
	c := newBlockCache(100)
	key := blockKey{seg: 1, block: 0}
	loads := 0
	load := func() (*colBlock, error) {
		loads++
		return &colBlock{bytes: 150}, nil
	}
	for i := 0; i < 2; i++ {
		cb, hit, err := c.getOrLoad(key, load)
		if err != nil || cb == nil {
			t.Fatalf("load %d: cb=%v err=%v", i, cb, err)
		}
		if hit {
			t.Fatalf("load %d: oversized block reported as cache hit", i)
		}
		usedConsistent(t, c)
	}
	if loads != 2 {
		t.Fatalf("oversized block loaded %d times, want 2 (never cached)", loads)
	}
	if st := c.stats(); st.UsedBytes != 0 || st.Entries != 0 {
		t.Fatalf("oversized block left residue: %+v", st)
	}
}

// TestBlockCacheDropSegmentMidFlight pins the dropSegment/singleflight race:
// when a segment is retired while one of its blocks is still loading, the
// finished load is served to its waiters but must not be inserted — the
// entry would be unreachable (the segment is gone from the store) and would
// squat on budget until eviction pressure happened to reach it.
func TestBlockCacheDropSegmentMidFlight(t *testing.T) {
	c := newBlockCache(1 << 20)
	key := blockKey{seg: 7, block: 3}
	inLoad := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		cb, _, err := c.getOrLoad(key, func() (*colBlock, error) {
			close(inLoad)
			<-release
			return &colBlock{bytes: 64}, nil
		})
		if err != nil || cb == nil {
			t.Errorf("getOrLoad: cb=%v err=%v", cb, err)
		}
	}()
	<-inLoad
	c.dropSegment(7)
	close(release)
	<-done
	if st := c.stats(); st.UsedBytes != 0 || st.Entries != 0 {
		t.Fatalf("dropped segment's block was cached anyway: %+v", st)
	}
	usedConsistent(t, c)

	// A block of a live segment loaded at the same time must still land.
	if _, _, err := c.getOrLoad(blockKey{seg: 8, block: 0}, func() (*colBlock, error) {
		return &colBlock{bytes: 64}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := c.stats(); st.UsedBytes != 64 || st.Entries != 1 {
		t.Fatalf("live segment's block missing: %+v", st)
	}
}

// TestBlockCacheAccountingUnderChurn hammers the cache with concurrent
// loads (some oversized), repeated segment drops, and purges, then checks
// the bytes-used ledger still matches the resident entries exactly.
func TestBlockCacheAccountingUnderChurn(t *testing.T) {
	c := newBlockCache(4096)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				seg := uint64(rng.Intn(4))
				key := blockKey{seg: seg, block: int32(rng.Intn(8))}
				size := int64(1 + rng.Intn(96))
				if rng.Intn(20) == 0 {
					size = 8192 // oversized: served, never cached
				}
				if _, _, err := c.getOrLoad(key, func() (*colBlock, error) {
					return &colBlock{bytes: size}, nil
				}); err != nil {
					t.Errorf("getOrLoad: %v", err)
					return
				}
				switch {
				case i%251 == 0:
					c.dropSegment(seg)
				case i%503 == 0:
					c.purge()
				}
			}
		}(w)
	}
	wg.Wait()
	usedConsistent(t, c)
	st := c.stats()
	if st.UsedBytes < 0 || st.UsedBytes > 4096 {
		t.Fatalf("used bytes %d outside [0, budget]", st.UsedBytes)
	}
}
