//go:build linux || darwin

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mmapOpen maps the file at path read-only and shared: every store process
// (and every reader within one) sees the same physical page-cache pages, so
// repeated scans of a sealed segment cost zero syscalls and zero copies up
// to the flate source.
func mmapOpen(path string, size int64) ([]byte, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, fmt.Errorf("store: mmap: bad size %d", size)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	// The mapping outlives the descriptor; closing it immediately keeps the
	// store's open-fd count independent of segment count.
	defer f.Close()
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(data []byte) error { return syscall.Munmap(data) }
