package store

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"instability/internal/faults"
)

// SidecarLog is a small append-only journal that rides alongside a store —
// the detector's alert stream persists through one. Entries are JSON
// payloads in the WAL's frame format,
//
//	u32 payloadLen | payload | u32 crc32(payload)
//
// so a torn tail (crash mid-write) is detected by length or checksum and
// physically truncated on open, and appends always land on a clean frame
// boundary. Volume is tiny (alerts, not updates), so every append syncs.
type SidecarLog struct {
	mu  sync.Mutex
	f   faults.File
	off int64
}

// OpenSidecarLog opens (creating if absent) the sidecar log at path,
// truncating any torn or corrupt tail.
func OpenSidecarLog(path string) (*SidecarLog, error) {
	return OpenSidecarLogFS(faults.Disk{}, path)
}

// OpenSidecarLogFS is OpenSidecarLog through an explicit filesystem (fault
// injection tests).
func OpenSidecarLogFS(fsys faults.FS, path string) (*SidecarLog, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	off, _, err := scanSidecar(f, nil)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &SidecarLog{f: f, off: off}, nil
}

// scanSidecar walks the intact frames of an open sidecar file, calling each
// (when non-nil) with every payload, and returns the offset just past the
// last intact frame.
func scanSidecar(f faults.File, each func(payload []byte) error) (int64, int, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, 0, err
	}
	off := int64(0)
	n := 0
	b := data
	for len(b) >= 4 {
		plen := int(binary.BigEndian.Uint32(b))
		if plen <= 0 || len(b) < 4+plen+4 {
			break // torn tail
		}
		payload := b[4 : 4+plen]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(b[4+plen:]) {
			break // corrupt tail
		}
		if each != nil {
			if err := each(payload); err != nil {
				return off, n, err
			}
		}
		n++
		step := int64(4 + plen + 4)
		off += step
		b = b[step:]
	}
	return off, n, nil
}

// Append marshals v and appends it as one framed, synced entry. Safe for
// concurrent use.
func (l *SidecarLog) Append(v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	frame := make([]byte, 0, len(payload)+8)
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	l.off += int64(len(frame))
	return l.f.Sync()
}

// Close releases the log file.
func (l *SidecarLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// ReadSidecarLog replays every intact entry of the sidecar log at path into
// each, stopping at the first torn or corrupt frame (the tail a crashed
// writer left). A missing file is an empty log, not an error. Returns the
// number of entries read.
func ReadSidecarLog(path string, each func(payload []byte) error) (int, error) {
	f, err := faults.Disk{}.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	_, n, err := scanSidecar(f, each)
	return n, err
}
