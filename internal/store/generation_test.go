package store

import (
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/netaddr"
)

func genTestRecord(t time.Time, peer bgp.ASN, pfx string) collector.Record {
	p, err := netaddr.ParsePrefix(pfx)
	if err != nil {
		panic(err)
	}
	return collector.Record{
		Time:   t,
		Type:   collector.Announce,
		PeerAS: peer,
		Prefix: p,
		Attrs: bgp.Attrs{
			Origin:  bgp.OriginIGP,
			Path:    bgp.PathFromASNs(peer, 3561),
			NextHop: netaddr.Addr(0x0a000001),
		},
	}
}

// TestGeneration pins the cache-invalidation contract: the generation is
// stable across reads and memtable appends, advances on every seal and on a
// merging compaction, and never moves backwards.
func TestGeneration(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	g0 := s.Generation()
	base := time.Date(1996, 5, 1, 0, 0, 0, 0, time.UTC)
	w := s.Writer()
	if err := w.Append(genTestRecord(base, 690, "192.0.2.0/24")); err != nil {
		t.Fatal(err)
	}
	if got := s.Generation(); got != g0 {
		t.Fatalf("generation moved on memtable append: %d -> %d", g0, got)
	}
	if _, err := s.Query(Query{}); err != nil {
		t.Fatal(err)
	}
	if got := s.Generation(); got != g0 {
		t.Fatalf("generation moved on query: %d -> %d", g0, got)
	}

	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	g1 := s.Generation()
	if g1 <= g0 {
		t.Fatalf("generation did not advance on seal: %d -> %d", g0, g1)
	}
	if st := s.Stats(); st.Generation != g1 {
		t.Fatalf("Stats.Generation = %d, want %d", st.Generation, g1)
	}

	// A second seal of the same window adds a segment: new generation, new
	// fingerprint.
	fp1 := s.Stats().Fingerprint
	if err := w.Append(genTestRecord(base.Add(time.Minute), 701, "198.51.100.0/24")); err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	g2 := s.Generation()
	if g2 <= g1 {
		t.Fatalf("generation did not advance on second seal: %d -> %d", g1, g2)
	}
	if fp2 := s.Stats().Fingerprint; fp2 == fp1 {
		t.Fatalf("fingerprint unchanged across segment-set change: %#x", fp2)
	}

	// Compaction merges the window's two segments: the set changes again.
	cs, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.SegmentsMerged != 2 {
		t.Fatalf("compaction merged %d segments, want 2", cs.SegmentsMerged)
	}
	if g3 := s.Generation(); g3 <= g2 {
		t.Fatalf("generation did not advance on compaction: %d -> %d", g2, g3)
	}

	// An empty seal and a no-op compaction leave the segment set — and so
	// the generation — alone.
	g3 := s.Generation()
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.Generation(); got != g3 {
		t.Fatalf("generation moved on no-op seal/compact: %d -> %d", g3, got)
	}
}

// TestQueryKeyCanonical verifies that spelled-differently-but-equal queries
// share a key and that every predicate participates in it.
func TestQueryKeyCanonical(t *testing.T) {
	pfx, _ := netaddr.ParsePrefix("192.0.2.0/24")
	from := time.Date(1996, 5, 1, 0, 0, 0, 0, time.UTC)
	a := Query{From: from, PeerAS: []bgp.ASN{701, 690, 690}, Types: []collector.RecType{collector.Withdraw, collector.Announce}}
	b := Query{From: from, PeerAS: []bgp.ASN{690, 701}, Types: []collector.RecType{collector.Announce, collector.Withdraw, collector.Withdraw}}
	if a.Key() != b.Key() {
		t.Fatalf("equivalent queries have different keys:\n%q\n%q", a.Key(), b.Key())
	}
	distinct := []Query{
		{},
		{From: from},
		{To: from},
		{PeerAS: []bgp.ASN{690}},
		{OriginAS: []bgp.ASN{690}},
		{Prefix: pfx},
		{Types: []collector.RecType{collector.Announce}},
	}
	seen := make(map[string]int)
	for i, q := range distinct {
		k := q.Key()
		if j, dup := seen[k]; dup {
			t.Fatalf("queries %d and %d share key %q", i, j, k)
		}
		seen[k] = i
	}
}

// TestRecordWireRoundTrip pins the exported codec used by the serve binary
// protocol to the store's own record encoding.
func TestRecordWireRoundTrip(t *testing.T) {
	recs := []collector.Record{
		genTestRecord(time.Date(1996, 5, 1, 12, 0, 0, 0, time.UTC), 690, "192.0.2.0/24"),
		{Time: time.Unix(1000, 42).UTC(), Type: collector.Withdraw, PeerAS: 701, Prefix: mustParsePrefix("10.0.0.0/8")},
		{Time: time.Unix(2000, 0).UTC(), Type: collector.SessionDown, PeerAS: 1239},
	}
	var b []byte
	var err error
	for _, rec := range recs {
		if b, err = AppendRecordWire(b, rec); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range recs {
		var got collector.Record
		got, b, err = DecodeRecordWire(b)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.String() != want.String() || !got.Time.Equal(want.Time) {
			t.Fatalf("record %d: got %v, want %v", i, got, want)
		}
	}
	if len(b) != 0 {
		t.Fatalf("%d trailing bytes after decode", len(b))
	}
	if _, _, err := DecodeRecordWire([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated record decoded without error")
	}
}

func mustParsePrefix(s string) netaddr.Prefix {
	p, err := netaddr.ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}
