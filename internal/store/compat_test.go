package store

import (
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/netaddr"
)

// fixtureRecords is the deterministic record set inside the checked-in v1
// segment fixture. Changing it invalidates testdata/seg-v1.irts; regenerate
// with:
//
//	STORE_WRITE_FIXTURE=1 go test ./internal/store -run TestWriteV1Fixture
func fixtureRecords() []collector.Record {
	start := time.Date(1996, 5, 1, 12, 0, 0, 0, time.UTC)
	var recs []collector.Record
	for i := 0; i < 300; i++ {
		ts := start.Add(time.Duration(i) * time.Second)
		peer := bgp.ASN(100 + i%3)
		origin := bgp.ASN(7000 + i%5)
		prefix := netaddr.MustPrefix(netaddr.Addr(0xc6000000+uint32(i%40)<<8), 24)
		recs = append(recs, mkRecord(ts, peer, origin, prefix, i%4 != 0))
	}
	return recs
}

const v1FixtureName = "seg-v1.irts"

// TestWriteV1Fixture regenerates the checked-in v1 fixture. It is a no-op
// unless STORE_WRITE_FIXTURE is set, so normal runs never rewrite testdata.
func TestWriteV1Fixture(t *testing.T) {
	if os.Getenv("STORE_WRITE_FIXTURE") == "" {
		t.Skip("set STORE_WRITE_FIXTURE=1 to regenerate the v1 fixture")
	}
	dir := t.TempDir()
	opts := testOptions()
	opts.formatVersion = segVersionV1
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Writer().AppendBatch(fixtureRecords()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one sealed segment, got %v (%v)", segs, err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := copyFile(segs[0], filepath.Join("testdata", v1FixtureName)); err != nil {
		t.Fatal(err)
	}
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// openV1Fixture copies the checked-in v1 segment into a fresh store directory
// and opens it (under whatever options the caller wants layered on top).
func openV1Fixture(t *testing.T, opts Options) *Store {
	t.Helper()
	dir := t.TempDir()
	if err := copyFile(filepath.Join("testdata", v1FixtureName), filepath.Join(dir, segName(1))); err != nil {
		t.Fatalf("fixture missing (regenerate with STORE_WRITE_FIXTURE=1): %v", err)
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestV1SegmentFixture is the forward-compatibility contract: a store sealed
// by the v1 (inline attributes) block format must read back identically under
// the current code, through both the serial and parallel scan paths.
func TestV1SegmentFixture(t *testing.T) {
	s := openV1Fixture(t, testOptions())
	if st := s.Stats(); st.SegmentsV1 != 1 || st.SegmentsV2 != 0 {
		t.Fatalf("want one v1 segment, got %+v", st)
	}
	want := fixtureRecords()

	got, _ := queryAll(t, s, Query{})
	assertSameRecords(t, got, want)

	r, err := s.QueryParallel(Query{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	gotPar, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, gotPar, want)

	// Indexed predicates work on v1 segments too (the index format is
	// version-independent).
	origin := bgp.ASN(7002)
	var wantOrigin []collector.Record
	for _, rec := range want {
		if o, ok := originOf(rec); ok && o == origin {
			wantOrigin = append(wantOrigin, rec)
		}
	}
	gotOrigin, _ := queryAll(t, s, Query{OriginAS: []bgp.ASN{origin}})
	assertSameRecords(t, gotOrigin, wantOrigin)
}

// TestCompactRewritesV1ToV2 checks that compaction migrates old segments: two
// v1 segments of one window merge into a single v2 segment holding the same
// records.
func TestCompactRewritesV1ToV2(t *testing.T) {
	dir := t.TempDir()
	optsV1 := testOptions()
	optsV1.formatVersion = segVersionV1
	s, err := Open(dir, optsV1)
	if err != nil {
		t.Fatal(err)
	}
	recs := fixtureRecords() // single one-hour window
	w := s.Writer()
	if err := w.AppendBatch(recs[:150]); err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(recs[150:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with default options: new writes (the compaction rewrite) use
	// the current format.
	s2, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.SegmentsV1 != 2 {
		t.Fatalf("want two v1 segments before compaction, got %+v", st)
	}
	cst, err := s2.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cst.SegmentsMerged != 2 || cst.SegmentsAfter != 1 {
		t.Fatalf("unexpected compaction shape: %+v", cst)
	}
	if st := s2.Stats(); st.SegmentsV1 != 0 || st.SegmentsV2 != 1 {
		t.Fatalf("compaction did not rewrite to v2: %+v", st)
	}
	got, _ := queryAll(t, s2, Query{})
	assertSameRecords(t, got, recs)
}
