package store

import (
	"sort"
	"strconv"
	"strings"

	"instability/internal/bgp"
	"instability/internal/collector"
)

// The store's record codec, exported for transports. The serving layer's
// binary protocol streams records in exactly the WAL encoding — absolute
// nanosecond timestamp, then the v1 record tail with inline attributes — so
// a remote reader decodes with the same code paths (and the same corruption
// checks) as crash recovery does.

// AppendRecordWire appends the wire encoding of rec to b and returns the
// extended slice.
func AppendRecordWire(b []byte, rec collector.Record) ([]byte, error) {
	return appendRecordAbs(b, rec, nil)
}

// DecodeRecordWire decodes one record from the front of b, returning the
// remaining bytes. Damaged input fails with an error wrapping ErrCorrupt.
func DecodeRecordWire(b []byte) (collector.Record, []byte, error) {
	return decodeRecordAbs(b)
}

// Key returns a canonical string form of the query: equal queries (after
// list deduplication and ordering) map to equal keys regardless of how their
// predicates were spelled. Result caches use it, combined with the store
// generation, as the identity of a cached answer.
func (q Query) Key() string {
	var sb strings.Builder
	sb.WriteString("f=")
	if !q.From.IsZero() {
		sb.WriteString(strconv.FormatInt(q.From.UnixNano(), 10))
	}
	sb.WriteString(";t=")
	if !q.To.IsZero() {
		sb.WriteString(strconv.FormatInt(q.To.UnixNano(), 10))
	}
	sb.WriteString(";p=")
	writeASSet(&sb, q.PeerAS)
	sb.WriteString(";o=")
	writeASSet(&sb, q.OriginAS)
	sb.WriteString(";x=")
	if q.hasPrefix() {
		sb.WriteString(strconv.FormatUint(uint64(q.Prefix.Addr()), 10))
		sb.WriteByte('/')
		sb.WriteString(strconv.Itoa(q.Prefix.Bits()))
	}
	sb.WriteString(";y=")
	types := append([]collector.RecType(nil), q.Types...)
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for i, t := range types {
		if i > 0 && types[i-1] == t {
			continue
		}
		sb.WriteString(strconv.Itoa(int(t)))
		sb.WriteByte(',')
	}
	return sb.String()
}

func writeASSet(sb *strings.Builder, l []bgp.ASN) {
	s := append([]bgp.ASN(nil), l...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	for i, as := range s {
		if i > 0 && s[i-1] == as {
			continue
		}
		sb.WriteString(strconv.FormatUint(uint64(as), 10))
		sb.WriteByte(',')
	}
}
