package store

import (
	"testing"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/netaddr"
)

// fuzzDict is the fixed two-entry attribute dictionary the v2 decode fuzzer
// resolves indexes against.
func fuzzDict() []bgp.Attrs {
	return []bgp.Attrs{
		{Origin: bgp.OriginIGP, Path: bgp.PathFromASNs(3561, 701), NextHop: 0x0a000001},
		{
			Origin:      bgp.OriginEGP,
			Path:        bgp.PathFromASNs(1239, 690),
			NextHop:     0xc0a80101,
			Communities: []bgp.Community{0x02bd0001},
		},
	}
}

func fuzzSeedRecords(tb testing.TB) [][]byte {
	dict := fuzzDict()
	recs := []collector.Record{
		{
			Type: collector.Announce, PeerAS: 3561, PeerAddr: 0x0a000001,
			Prefix: mustPrefix(tb, 0xc0a80000, 16), Attrs: dict[0],
		},
		{
			Type: collector.Withdraw, PeerAS: 690, PeerAddr: 0x0a000002,
			Prefix: mustPrefix(tb, 0x0a000000, 8),
		},
		{Type: collector.SessionUp, PeerAS: 1239, PeerAddr: 0x0a000003, Prefix: mustPrefix(tb, 0, 0)},
	}
	var out [][]byte
	for _, rec := range recs {
		v1, err := appendRecordTail(nil, rec, nil)
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, v1, appendRecordTailV2(nil, rec, 0))
	}
	return out
}

func mustPrefix(tb testing.TB, addr netaddr.Addr, bits int) netaddr.Prefix {
	tb.Helper()
	p, err := netaddr.PrefixFrom(addr, bits)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// FuzzDecodeRecordTail exercises the v1 (inline attributes) record decoder on
// arbitrary bytes: it must reject or round-trip, never panic. Anything that
// decodes is re-encoded and decoded again, and both decodes must agree.
func FuzzDecodeRecordTail(f *testing.F) {
	for _, b := range fuzzSeedRecords(f) {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var rec collector.Record
		rest, err := decodeRecordTail(data, &rec)
		if err != nil {
			return
		}
		used := len(data) - len(rest)
		enc, err := appendRecordTail(nil, rec, nil)
		if err != nil {
			t.Fatalf("decoded record failed to re-encode: %v", err)
		}
		var rec2 collector.Record
		rest2, err := decodeRecordTail(enc, &rec2)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-encoded record failed to decode cleanly: %v (%d trailing)", err, len(rest2))
		}
		if !sameRecord(rec, rec2) {
			t.Fatalf("round-trip changed record: %+v != %+v", rec, rec2)
		}
		if used <= 0 {
			t.Fatalf("decode consumed %d bytes", used)
		}
	})
}

// FuzzDecodeRecordTailV2 exercises the v2 (dictionary index) record decoder
// against a fixed two-entry dictionary. Out-of-range indexes must fail as
// ErrCorrupt; in-range decodes must round-trip through appendRecordTailV2.
func FuzzDecodeRecordTailV2(f *testing.F) {
	for _, b := range fuzzSeedRecords(f) {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dict := fuzzDict()
		var rec collector.Record
		_, err := decodeRecordTailV2(data, &rec, dict)
		if err != nil {
			return
		}
		idx := -1
		if rec.Type == collector.Announce {
			for i := range dict {
				if rec.Attrs.PolicyEqual(dict[i]) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Fatalf("decoded attrs not in dictionary: %+v", rec.Attrs)
			}
		}
		enc := appendRecordTailV2(nil, rec, idx)
		var rec2 collector.Record
		rest, err := decodeRecordTailV2(enc, &rec2, dict)
		if err != nil || len(rest) != 0 {
			t.Fatalf("re-encoded record failed to decode cleanly: %v (%d trailing)", err, len(rest))
		}
		if !sameRecord(rec, rec2) {
			t.Fatalf("round-trip changed record: %+v != %+v", rec, rec2)
		}
	})
}

func sameRecord(a, b collector.Record) bool {
	return a.Type == b.Type && a.PeerAS == b.PeerAS && a.PeerAddr == b.PeerAddr &&
		a.Prefix == b.Prefix && a.Attrs.PolicyEqual(b.Attrs) &&
		a.Attrs.NextHop == b.Attrs.NextHop
}
