package store

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"instability/internal/bgp"
	"instability/internal/netaddr"
)

// blockMeta describes one compressed block inside a segment.
type blockMeta struct {
	offset  int64 // file offset of the compressed bytes
	clen    int32 // compressed length
	ulen    int32 // uncompressed length
	count   int32 // records in the block
	minTime int64 // unixnano of the first record
	maxTime int64 // unixnano of the last record
}

// postings maps an AS to the ascending list of block ids containing at least
// one matching record. Two instances index each segment: by peer AS and by
// origin AS.
type postings map[bgp.ASN][]int32

func (p postings) add(as bgp.ASN, block int32) {
	l := p[as]
	if n := len(l); n > 0 && l[n-1] == block {
		return
	}
	p[as] = append(p[as], block)
}

// blockSet returns the union of the posting lists for the given ASes, nil if
// none of them appear in the segment.
func (p postings) blockSet(ases []bgp.ASN) map[int32]bool {
	var set map[int32]bool
	for _, as := range ases {
		for _, b := range p[as] {
			if set == nil {
				set = make(map[int32]bool)
			}
			set[b] = true
		}
	}
	return set
}

// bloom is a split double-hashing Bloom filter over prefix keys.
type bloom struct {
	bits []uint64
	k    uint8
}

func newBloom(n, bitsPerKey int) *bloom {
	m := n * bitsPerKey
	if m < 64 {
		m = 64
	}
	words := (m + 63) / 64
	return &bloom{bits: make([]uint64, words), k: 7}
}

// prefixKey is the hashed identity of a prefix.
func prefixKey(p netaddr.Prefix) uint64 {
	h := fnv.New64a()
	var b [5]byte
	b[0] = byte(p.Bits())
	binary.BigEndian.PutUint32(b[1:], uint32(p.Addr()))
	h.Write(b[:])
	return h.Sum64()
}

func (f *bloom) add(key uint64) {
	m := uint64(len(f.bits)) * 64
	h1, h2 := key, key>>17|key<<47
	for i := uint8(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		f.bits[bit/64] |= 1 << (bit % 64)
	}
}

func (f *bloom) contains(key uint64) bool {
	if len(f.bits) == 0 {
		return true
	}
	m := uint64(len(f.bits)) * 64
	h1, h2 := key, key>>17|key<<47
	for i := uint8(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// segIndex is the decoded index section of a segment.
type segIndex struct {
	blocks  []blockMeta
	peers   postings
	origins postings
	filter  *bloom
}

func (ix *segIndex) encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(ix.blocks)))
	for _, bm := range ix.blocks {
		b = binary.BigEndian.AppendUint64(b, uint64(bm.offset))
		b = binary.BigEndian.AppendUint32(b, uint32(bm.clen))
		b = binary.BigEndian.AppendUint32(b, uint32(bm.ulen))
		b = binary.BigEndian.AppendUint32(b, uint32(bm.count))
		b = binary.BigEndian.AppendUint64(b, uint64(bm.minTime))
		b = binary.BigEndian.AppendUint64(b, uint64(bm.maxTime))
	}
	b = appendPostings(b, ix.peers)
	b = appendPostings(b, ix.origins)
	b = binary.BigEndian.AppendUint32(b, uint32(len(ix.filter.bits)*64))
	b = append(b, ix.filter.k)
	for _, w := range ix.filter.bits {
		b = binary.BigEndian.AppendUint64(b, w)
	}
	return b
}

func appendPostings(b []byte, p postings) []byte {
	ases := make([]int, 0, len(p))
	for as := range p {
		ases = append(ases, int(as))
	}
	sort.Ints(ases)
	b = binary.BigEndian.AppendUint32(b, uint32(len(ases)))
	for _, as := range ases {
		list := p[bgp.ASN(as)]
		b = binary.BigEndian.AppendUint16(b, uint16(as))
		b = binary.BigEndian.AppendUint32(b, uint32(len(list)))
		for _, blk := range list {
			b = binary.BigEndian.AppendUint32(b, uint32(blk))
		}
	}
	return b
}

func decodeIndex(b []byte) (*segIndex, error) {
	ix := &segIndex{}
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: index block count", ErrCorrupt)
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	const bmLen = 8 + 4 + 4 + 4 + 8 + 8
	if len(b) < n*bmLen {
		return nil, fmt.Errorf("%w: index block metas", ErrCorrupt)
	}
	ix.blocks = make([]blockMeta, n)
	for i := range ix.blocks {
		ix.blocks[i] = blockMeta{
			offset:  int64(binary.BigEndian.Uint64(b)),
			clen:    int32(binary.BigEndian.Uint32(b[8:])),
			ulen:    int32(binary.BigEndian.Uint32(b[12:])),
			count:   int32(binary.BigEndian.Uint32(b[16:])),
			minTime: int64(binary.BigEndian.Uint64(b[20:])),
			maxTime: int64(binary.BigEndian.Uint64(b[28:])),
		}
		b = b[bmLen:]
	}
	var err error
	if ix.peers, b, err = decodePostings(b); err != nil {
		return nil, err
	}
	if ix.origins, b, err = decodePostings(b); err != nil {
		return nil, err
	}
	if len(b) < 5 {
		return nil, fmt.Errorf("%w: bloom header", ErrCorrupt)
	}
	mbits := int(binary.BigEndian.Uint32(b))
	k := b[4]
	b = b[5:]
	words := mbits / 64
	if mbits%64 != 0 || len(b) < words*8 {
		return nil, fmt.Errorf("%w: bloom bits", ErrCorrupt)
	}
	f := &bloom{bits: make([]uint64, words), k: k}
	for i := range f.bits {
		f.bits[i] = binary.BigEndian.Uint64(b[i*8:])
	}
	ix.filter = f
	return ix, nil
}

func decodePostings(b []byte) (postings, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("%w: postings count", ErrCorrupt)
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	p := make(postings, n)
	for i := 0; i < n; i++ {
		if len(b) < 6 {
			return nil, nil, fmt.Errorf("%w: postings entry", ErrCorrupt)
		}
		as := bgp.ASN(binary.BigEndian.Uint16(b))
		cnt := int(binary.BigEndian.Uint32(b[2:]))
		b = b[6:]
		if len(b) < cnt*4 {
			return nil, nil, fmt.Errorf("%w: postings list", ErrCorrupt)
		}
		list := make([]int32, cnt)
		for j := range list {
			list[j] = int32(binary.BigEndian.Uint32(b[j*4:]))
		}
		b = b[cnt*4:]
		p[as] = list
	}
	return p, b, nil
}
