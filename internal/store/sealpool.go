package store

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"sync"

	"instability/internal/collector"
)

// encodedBlock is one block's finished wire form: the deflate-compressed
// bytes and the uncompressed length for blockMeta. Blocks are encoded
// independently (possibly concurrently) and stitched into the segment in
// submission order.
type encodedBlock struct {
	comp []byte
	ulen int
	err  error
}

// sealScratch is the per-worker reusable state for encoding segment blocks:
// an attribute encoder (attrEncoder is not safe for concurrent use, so each
// worker owns one — its wire bytes are deterministic, keeping parallel output
// byte-identical to serial), the v2 dictionary build maps, and the raw and
// compressed block buffers.
type sealScratch struct {
	enc      *attrEncoder
	dictOf   map[uint32]int // handle ID -> dictionary index
	dictWire [][]byte
	recIdx   []int
	raw      bytes.Buffer
	scratch  []byte
}

var sealScratchPool = sync.Pool{New: func() any {
	return &sealScratch{
		enc:     newAttrEncoder(),
		dictOf:  make(map[uint32]int, 32),
		scratch: make([]byte, 0, 64),
	}
}}

func getSealScratch() *sealScratch   { return sealScratchPool.Get().(*sealScratch) }
func putSealScratch(sc *sealScratch) { sealScratchPool.Put(sc) }

// flateWriterPool recycles deflate compressors across blocks and seals: a
// flate.Writer carries ~600 KiB of match-finder state, so Reset-reuse beats
// flate.NewWriter per block by a wide margin in both allocations and time.
var flateWriterPool = sync.Pool{New: func() any {
	fw, err := flate.NewWriter(nil, flate.DefaultCompression)
	if err != nil {
		// Only reachable for an invalid level constant.
		panic(err)
	}
	return fw
}}

// encodeSegmentBlock encodes and compresses one block of time-sorted records
// into its segment wire form. The result depends only on (version, block), so
// any assignment of blocks to workers produces identical segment bytes.
func encodeSegmentBlock(sc *sealScratch, version byte, block []collector.Record) encodedBlock {
	raw := &sc.raw
	raw.Reset()
	scratch := sc.scratch
	defer func() { sc.scratch = scratch }()

	if version >= segVersionV2 {
		// First pass: build the block's attribute dictionary. inline tallies
		// what v1 would have spent, for the bytes-saved metric.
		clear(sc.dictOf)
		sc.dictWire = sc.dictWire[:0]
		sc.recIdx = sc.recIdx[:0]
		inline, dictBytes := 0, 0
		for _, rec := range block {
			di := -1
			if rec.Type == collector.Announce {
				h, w, err := sc.enc.encode(rec.Attrs)
				if err != nil {
					return encodedBlock{err: err}
				}
				j, ok := sc.dictOf[h.ID]
				if !ok {
					j = len(sc.dictWire)
					sc.dictOf[h.ID] = j
					sc.dictWire = append(sc.dictWire, w)
					dictBytes += len(w)
				}
				inline += len(w)
				di = j
			}
			sc.recIdx = append(sc.recIdx, di)
		}
		scratch = binary.AppendUvarint(scratch[:0], uint64(len(sc.dictWire)))
		for _, w := range sc.dictWire {
			scratch = binary.AppendUvarint(scratch, uint64(len(w)))
			scratch = append(scratch, w...)
		}
		raw.Write(scratch)
		obsDictEntries.Add(int64(len(sc.dictWire)))
		obsDictBytesSaved.Add(int64(inline - dictBytes))
	}

	prev := block[0].Time.UnixNano()
	for ri, rec := range block {
		t := rec.Time.UnixNano()
		if t < prev {
			return encodedBlock{err: fmt.Errorf("store: records not time-sorted at seal")}
		}
		scratch = binary.AppendUvarint(scratch[:0], uint64(t-prev))
		prev = t
		if version >= segVersionV2 {
			scratch = appendRecordTailV2(scratch, rec, sc.recIdx[ri])
		} else {
			var err error
			scratch, err = appendRecordTail(scratch, rec, sc.enc)
			if err != nil {
				return encodedBlock{err: err}
			}
		}
		raw.Write(scratch)
	}

	var cbuf bytes.Buffer
	cbuf.Grow(raw.Len() / 2)
	fw := flateWriterPool.Get().(*flate.Writer)
	fw.Reset(&cbuf)
	if _, err := fw.Write(raw.Bytes()); err != nil {
		flateWriterPool.Put(fw)
		return encodedBlock{err: err}
	}
	if err := fw.Close(); err != nil {
		flateWriterPool.Put(fw)
		return encodedBlock{err: err}
	}
	flateWriterPool.Put(fw)
	return encodedBlock{comp: cbuf.Bytes(), ulen: raw.Len()}
}
