package store

import (
	"container/heap"
	"slices"
	"time"

	"instability/internal/collector"
)

// CompactStats reports what a compaction pass did.
type CompactStats struct {
	SegmentsBefore   int
	SegmentsAfter    int
	SegmentsMerged   int // inputs consumed by merges
	RecordsRewritten int64
}

// Compact merges the segments of every time window that has more than one
// (the residue of incremental seals or repeated ingests) into a single
// segment per window. The merge is crash-safe: the merged segment's footer
// names the segments it replaces, the new file is renamed into place first,
// and a crash before the old files are deleted is repaired on the next Open.
func (s *Store) Compact() (CompactStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t0 := time.Now()
	var st CompactStats
	// A background seal publishing mid-pass would add segments behind the
	// group snapshot below; wait it out so the pass sees a stable set.
	if err := s.joinSealLocked(); err != nil {
		return st, err
	}
	st.SegmentsBefore = len(s.segs)

	groups := make(map[int64][]*segment)
	for _, g := range s.segs {
		groups[g.windowStart] = append(groups[g.windowStart], g)
	}
	windows := make([]int64, 0, len(groups))
	for wd, gs := range groups {
		if len(gs) > 1 {
			windows = append(windows, wd)
		}
	}
	slices.Sort(windows)

	for _, wd := range windows {
		gs := groups[wd]
		merged, err := s.mergeWindowLocked(wd, gs)
		if err != nil {
			return st, err
		}
		st.SegmentsMerged += len(gs)
		st.RecordsRewritten += merged.count

		old := make(map[uint64]bool, len(gs))
		for _, g := range gs {
			old[g.seq] = true
		}
		kept := s.segs[:0]
		for _, g := range s.segs {
			if old[g.seq] {
				s.dropSegmentLocked(g)
				s.fs.Remove(g.path)
				continue
			}
			kept = append(kept, g)
		}
		s.segs = append(kept, merged)
		s.mapSegmentLocked(merged)
		sortSegments(s.segs)
		s.gen.Add(1)
	}
	st.SegmentsAfter = len(s.segs)
	obsCompactSeconds.ObserveSince(t0)
	obsCompactRecords.Add(st.RecordsRewritten)
	obsSegments.SetInt(int64(len(s.segs)))
	return st, nil
}

// mergeWindowLocked streams the records of one window's segments in time
// order into a single replacement segment.
func (s *Store) mergeWindowLocked(window int64, gs []*segment) (*segment, error) {
	var streams recHeap
	closeAll := func() {
		for _, st := range streams {
			st.close()
		}
	}
	for _, g := range gs {
		blocks := make([]int, len(g.index.blocks))
		for i := range blocks {
			blocks[i] = i
		}
		// Note: no quarantine here. A compaction that hit a corrupt block
		// and skipped it would rewrite the window without those records,
		// converting detectable damage into silent loss; the merge fails
		// instead and leaves the inputs in place. The merge also bypasses
		// the block cache (cache left nil): a full rewrite would evict the
		// query working set for blocks that are about to be retired anyway.
		f, err := s.fs.Open(g.path)
		if err != nil {
			closeAll()
			return nil, err
		}
		g.mm.acquire()
		sc := &segStream{seg: g, f: f, mm: g.mm, q: &Query{}, bs: getBlockScanner(),
			blocks: blocks, order: g.seq}
		if err := sc.advance(); err != nil {
			sc.close()
			closeAll()
			return nil, err
		}
		streams = append(streams, sc)
	}
	heap.Init(&streams)

	var out []collector.Record
	for len(streams) > 0 {
		st := streams[0]
		rec, ok := st.head()
		if !ok {
			heap.Pop(&streams)
			st.close()
			continue
		}
		if err := st.advance(); err != nil {
			closeAll()
			return nil, err
		}
		heap.Fix(&streams, 0)
		out = append(out, rec)
	}

	var firstSeq, lastSeq uint64
	replaces := make([]uint64, 0, len(gs))
	for i, g := range gs {
		if i == 0 || g.firstSeq < firstSeq {
			firstSeq = g.firstSeq
		}
		if g.lastSeq > lastSeq {
			lastSeq = g.lastSeq
		}
		replaces = append(replaces, g.seq)
	}
	// Seal-assigned sequence ranges within a window are contiguous across
	// its segments, so the merged range is exactly [firstSeq, lastSeq] and
	// writeSegment's firstSeq+len-1 arithmetic reproduces lastSeq. The
	// rewrite's block compression fans across the seal worker pool.
	merged, err := writeSegment(s.fs, s.dir, s.nextSeg, window, firstSeq, out, replaces, s.opts)
	if err != nil {
		return nil, err
	}
	merged.di = s.dec
	s.nextSeg++
	return merged, nil
}
