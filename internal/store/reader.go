package store

import (
	"container/heap"
	"context"
	"fmt"
	"io"
	"log"
	"slices"

	"instability/internal/collector"
	"instability/internal/faults"
	"instability/internal/obs"
)

// ScanStats reports how much work a query actually did, making predicate
// pushdown measurable: a filtered query over a multi-segment store should
// show BlocksScanned (decompressed) well below BlocksTotal.
type ScanStats struct {
	SegmentsTotal     int // sealed segments in the store at query time
	SegmentsScanned   int // segments not skipped by segment-level pruning
	BlocksTotal       int // blocks across all segments
	BlocksSelected    int // blocks the per-block index selected as candidates
	BlocksScanned     int // blocks actually scanned (from disk or cache)
	BlocksCacheHit    int // scanned blocks served from the shared block cache
	BlocksCacheMiss   int // scanned blocks the cache had to load from disk
	BlocksQuarantined int // corrupt blocks skipped instead of failing the scan
	BlocksV1          int // scanned blocks in v1 (inline-attr) format
	BlocksV2          int // scanned blocks in v2 (dictionary) format
	RecordsScanned    int // records the scanned blocks hold
	// RecordsMaterialized counts record structs actually constructed by the
	// columnar kernels — rows that survived the column filters. The gap to
	// RecordsScanned is work the columnar scan skipped.
	RecordsMaterialized int
	RecordsMatched      int   // records that satisfied the full predicate
	MemRecords          int   // unsealed records considered from the memtable
	BytesReadDisk       int64 // compressed bytes read from files or mappings
	BytesDecompressed   int64 // bytes actually inflated by this query
	BytesFromCache      int64 // decompressed bytes served from the block cache
}

// Reader streams the result of a Query in timestamp order. It implements
// collector.RecordReader, so query results plug directly into the
// classifier pipeline and the replay tool.
type Reader struct {
	q       Query
	stats   ScanStats
	streams recHeap
	pool    *scanPool // non-nil only for QueryParallel readers
	err     error     // sticky terminal scan error
	closed  bool
	gen     uint64         // store generation at query time
	workers int            // scan workers (1 = serial)
	span    *obs.TraceSpan // "store_scan" child of the request trace; nil when untraced
}

// Query opens a reader over everything currently in the store — sealed
// segments and the unsealed memtable — that may match q. Results are merged
// in timestamp order (ties broken by segment age, then log order).
func (s *Store) Query(q Query) (*Reader, error) {
	return s.QueryCtx(context.Background(), q)
}

// QueryCtx is Query carrying a request context: when ctx holds an active
// trace span, the scan appears in the trace as a "store_scan" child (one
// grandchild per scanned segment) annotated with the EXPLAIN profile at
// Close. An untraced ctx costs nothing.
func (s *Store) QueryCtx(ctx context.Context, q Query) (*Reader, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obsQueries.Inc()
	_, span := obs.StartChild(ctx, "store_scan")
	r := &Reader{q: q, gen: s.Generation(), workers: 1, span: span}
	r.stats.SegmentsTotal = len(s.segs)
	for _, g := range s.segs {
		r.stats.BlocksTotal += len(g.index.blocks)
	}

	for _, g := range s.segs {
		blocks, scan := g.candidateBlocks(q)
		if !scan {
			continue
		}
		r.stats.SegmentsScanned++
		if len(blocks) == 0 {
			continue
		}
		r.stats.BlocksSelected += len(blocks)
		f, err := s.fs.Open(g.path)
		if err != nil {
			r.err = err
			r.Close()
			return nil, err
		}
		g.mm.acquire()
		sc := &segStream{seg: g, f: f, mm: g.mm, q: &r.q, cache: s.cache,
			bs: getBlockScanner(), blocks: blocks, order: g.seq, quarantine: true,
			span: segmentSpan(span, g, len(blocks))}
		if err := sc.advance(); err != nil {
			r.retire(sc)
			r.err = err
			r.Close()
			return nil, err
		}
		if sc.ok {
			r.streams = append(r.streams, sc)
		} else {
			r.retire(sc)
		}
	}

	// Snapshot matching memtable records; they sort after sealed segments
	// on timestamp ties (they are strictly newer appends).
	if mem := s.memSnapshotLocked(q, &r.stats); len(mem) > 0 {
		ms := &memStream{recs: mem, order: ^uint64(0)}
		ms.advance()
		r.streams = append(r.streams, ms)
	}
	heap.Init(&r.streams)
	return r, nil
}

// Next returns the next matching record, io.EOF at the end of the result.
//
// A non-corruption I/O failure mid-scan (corrupt blocks are quarantined, not
// errored) ends the result: the error is sticky, every later Next returns
// the same partial-scan error, and the records already returned remain a
// valid prefix of the merged sequence. The Reader must still be Closed.
func (r *Reader) Next() (collector.Record, error) {
	if r.err != nil {
		return collector.Record{}, r.err
	}
	for len(r.streams) > 0 {
		st := r.streams[0]
		rec, ok := st.head()
		if !ok {
			heap.Pop(&r.streams)
			r.retire(st)
			continue
		}
		if err := st.advance(); err != nil {
			r.err = fmt.Errorf("store: partial scan: %w", err)
			return collector.Record{}, r.err
		}
		heap.Fix(&r.streams, 0)
		r.stats.fold(st.drain())
		if !r.q.match(rec) {
			continue
		}
		r.stats.RecordsMatched++
		return rec, nil
	}
	return collector.Record{}, io.EOF
}

// ReadAll drains the reader.
func (r *Reader) ReadAll() ([]collector.Record, error) {
	var out []collector.Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Stats returns the scan counters accumulated so far; final after the
// reader returns io.EOF.
func (r *Reader) Stats() ScanStats { return r.stats }

// Close releases the reader's open segment files, publishes the query's
// pushdown accounting to the process metrics, and — when the query runs
// inside a trace — finishes the "store_scan" span with the EXPLAIN profile
// attached.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	for _, st := range r.streams {
		r.retire(st)
	}
	publishScanStats(r.stats)
	r.streams = nil
	if r.pool != nil {
		// Workers deliver into single-slot buffered channels, so they never
		// block on abandoned results and the pool drains without a reader.
		r.pool.shutdown()
		r.pool = nil
	}
	if r.span != nil {
		r.Explain().annotate(r.span)
		r.span.SetError(r.err)
		r.span.Finish()
	}
	return nil
}

// retire folds a stream's undrained accounting into the reader's stats and
// closes it, so blocks scanned or quarantined during a stream's final
// advance (or before an early Close) are never under-reported.
func (r *Reader) retire(st stream) {
	r.stats.fold(st.drain())
	st.close()
}

// memSnapshotLocked copies the unsealed records matching q, sorted by time,
// counting every considered record into stats.MemRecords. Unsealed means the
// live memtable plus any windows a background seal has detached but not yet
// published: a record stays query-visible through every stage of the seal
// pipeline, flipping from this overlay to the sealed segment under the same
// lock hold. Detached records precede live ones of the same window, so the
// stable sort reproduces append order on timestamp ties exactly as when both
// halves lived in one memtable slice.
func (s *Store) memSnapshotLocked(q Query, stats *ScanStats) []collector.Record {
	var mem []collector.Record
	if b := s.sealing; b != nil {
		for _, sw := range b.windows[b.published:] {
			for _, rec := range sw.recs {
				stats.MemRecords++
				if q.match(rec) {
					mem = append(mem, rec)
				}
			}
		}
	}
	for _, mw := range s.mem {
		for _, rec := range mw.recs {
			stats.MemRecords++
			if q.match(rec) {
				mem = append(mem, rec)
			}
		}
	}
	slices.SortStableFunc(mem, func(a, b collector.Record) int {
		return a.Time.Compare(b.Time)
	})
	return mem
}

// candidateBlocks applies segment- and block-level pruning. scan=false means
// the whole segment is skipped without touching its file.
func (g *segment) candidateBlocks(q Query) (blocks []int, scan bool) {
	if !q.timeOverlaps(g.minTime, g.maxTime) {
		return nil, false
	}
	if q.hasPrefix() && !g.index.filter.contains(prefixKey(q.Prefix)) {
		return nil, false
	}
	var peerSet, originSet map[int32]bool
	if len(q.PeerAS) > 0 {
		if peerSet = g.index.peers.blockSet(q.PeerAS); peerSet == nil {
			return nil, false
		}
	}
	if len(q.OriginAS) > 0 {
		if originSet = g.index.origins.blockSet(q.OriginAS); originSet == nil {
			return nil, false
		}
		// An origin predicate can only be satisfied by announcements; if
		// the type filter excludes them the query is empty, handled by the
		// record-level match (blocks still pruned by postings here).
	}
	for i, bm := range g.index.blocks {
		if !q.timeOverlaps(bm.minTime, bm.maxTime) {
			continue
		}
		if peerSet != nil && !peerSet[int32(i)] {
			continue
		}
		if originSet != nil && !originSet[int32(i)] {
			continue
		}
		blocks = append(blocks, i)
	}
	return blocks, true
}

// scanDelta is incremental scan accounting drained from a stream into
// Reader.stats: records/blocks scanned, quarantined blocks, disk/cache/
// decompressed bytes, and the format-version split of the scanned blocks.
type scanDelta struct {
	scanned      int
	materialized int
	blocks       int
	hits, misses int
	quarantined  int
	bytesDisk    int64
	bytesOut     int64
	bytesCache   int64
	v1, v2       int
}

// noteBlock accumulates one successfully scanned block. hit reports whether
// the decoded block came out of the shared cache (no disk read, no inflate);
// cached whether a cache was in play at all, so hit/miss counters stay zero
// on cache-off scans. n is the number of records the block's columnar filter
// materialized.
func (d *scanDelta) noteBlock(g *segment, bi int, hit, cached bool, n int) {
	bm := g.index.blocks[bi]
	d.blocks++
	d.scanned += int(bm.count)
	d.materialized += n
	if hit {
		d.hits++
		d.bytesCache += int64(bm.ulen)
	} else {
		if cached {
			d.misses++
		}
		d.bytesDisk += int64(bm.clen)
		d.bytesOut += int64(bm.ulen)
	}
	if g.ver >= segVersionV2 {
		d.v2++
	} else {
		d.v1++
	}
}

// fold adds a drained delta into the query's ScanStats.
func (st *ScanStats) fold(d scanDelta) {
	st.RecordsScanned += d.scanned
	st.RecordsMaterialized += d.materialized
	st.BlocksScanned += d.blocks
	st.BlocksCacheHit += d.hits
	st.BlocksCacheMiss += d.misses
	st.BlocksQuarantined += d.quarantined
	st.BytesReadDisk += d.bytesDisk
	st.BytesDecompressed += d.bytesOut
	st.BytesFromCache += d.bytesCache
	st.BlocksV1 += d.v1
	st.BlocksV2 += d.v2
}

// segmentSpan opens the per-segment trace span under the scan span. Nil in,
// nil out: untraced queries pay nothing.
func segmentSpan(parent *obs.TraceSpan, g *segment, blocks int) *obs.TraceSpan {
	if parent == nil {
		return nil
	}
	sp := parent.StartChild("segment")
	sp.Annotate("path", g.path)
	sp.AnnotateInt("blocks_selected", int64(blocks))
	return sp
}

// stream is one sorted source feeding the merge heap.
type stream interface {
	head() (collector.Record, bool)
	// advance moves to the next record (the head at call time is consumed).
	advance() error
	// less orders streams by current head; ties broken by stream order.
	key() (t int64, order uint64)
	// drain returns and resets the scan accounting accumulated since the
	// last call, for incremental accounting into Reader.stats.
	drain() scanDelta
	close()
}

// quarantineBlock records one corrupt block skipped by a query: the process
// counter moves immediately (so a live scrape sees damage as it is found)
// and the segment is named in the log, since a quarantined block means bad
// media or a torn seal that an operator should know about.
func quarantineBlock(path string, bi int, err error) {
	obsQuarantinedBlocks.Inc()
	log.Printf("store: quarantined corrupt block %d of %s: %v", bi, path, err)
}

// segStream iterates the candidate blocks of one segment: each block is
// fetched in columnar form (through the shared cache when the store has one),
// filtered column-wise, and only the surviving rows are materialized into the
// stream's record buffer.
type segStream struct {
	seg    *segment
	f      faults.File
	mm     *segMap     // acquired mapping reference, nil on the ReadAt path
	q      *Query      // predicates the columnar kernels filter by
	cache  *blockCache // shared block cache, nil when disabled
	bs     *blockScanner
	blocks []int
	bi     int
	recs   []collector.Record
	ri     int
	cur    collector.Record
	ok     bool
	order  uint64
	// quarantine skips corrupt blocks instead of failing the scan. Queries
	// set it; compaction merges leave it off, because silently dropping a
	// block while rewriting segments would turn detectable damage into
	// permanent record loss.
	quarantine bool

	acc  scanDelta      // accounting since last drain into Reader.stats
	span *obs.TraceSpan // per-segment trace span; nil when untraced
}

func (sc *segStream) head() (collector.Record, bool) { return sc.cur, sc.ok }

func (sc *segStream) advance() error {
	for {
		if sc.ri < len(sc.recs) {
			sc.cur = sc.recs[sc.ri]
			sc.ri++
			sc.ok = true
			return nil
		}
		if sc.bi >= len(sc.blocks) {
			sc.ok = false
			return nil
		}
		// sc.recs is fully consumed here (ri == len), so its backing array
		// is reused for the next block — one record buffer per stream, total.
		bi := sc.blocks[sc.bi]
		cb, hit, err := sc.bs.fetch(sc.seg, sc.f, sc.mm, sc.cache, bi)
		if err != nil {
			if sc.quarantine && isCorrupt(err) {
				quarantineBlock(sc.seg.path, bi, err)
				sc.acc.quarantined++
				sc.span.AnnotateInt("quarantined_block", int64(bi))
				sc.bi++
				continue
			}
			sc.ok = false
			return fmt.Errorf("segment %s: %w", sc.seg.path, err)
		}
		sc.bi++
		sc.recs = cb.appendMatching(sc.q, &sc.bs.sel, sc.recs[:0])
		sc.ri = 0
		sc.acc.noteBlock(sc.seg, bi, hit, sc.cache != nil, len(sc.recs))
	}
}

func (sc *segStream) key() (int64, uint64) { return sc.cur.Time.UnixNano(), sc.order }

func (sc *segStream) drain() scanDelta {
	d := sc.acc
	sc.acc = scanDelta{}
	return d
}

func (sc *segStream) close() {
	sc.span.Finish()
	sc.span = nil
	if sc.bs != nil {
		putBlockScanner(sc.bs)
		sc.bs = nil
	}
	sc.mm.release()
	sc.mm = nil
	if sc.f != nil {
		sc.f.Close()
		sc.f = nil
	}
}

// memStream iterates the memtable snapshot.
type memStream struct {
	recs  []collector.Record
	pos   int
	cur   collector.Record
	ok    bool
	order uint64
}

func (ms *memStream) head() (collector.Record, bool) { return ms.cur, ms.ok }

func (ms *memStream) advance() error {
	if ms.pos < len(ms.recs) {
		ms.cur = ms.recs[ms.pos]
		ms.pos++
		ms.ok = true
	} else {
		ms.ok = false
	}
	return nil
}

func (ms *memStream) key() (int64, uint64) { return ms.cur.Time.UnixNano(), ms.order }

func (ms *memStream) drain() scanDelta { return scanDelta{} }

func (ms *memStream) close() {}

// recHeap is a min-heap of streams ordered by (head time, stream order).
type recHeap []stream

func (h recHeap) Len() int { return len(h) }

func (h recHeap) Less(i, j int) bool {
	ti, oi := h[i].key()
	tj, oj := h[j].key()
	// Exhausted streams sort last so Next can retire them.
	_, iok := h[i].head()
	_, jok := h[j].head()
	if iok != jok {
		return iok
	}
	if ti != tj {
		return ti < tj
	}
	return oi < oj
}

func (h recHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *recHeap) Push(x any) { *h = append(*h, x.(stream)) }

func (h *recHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
