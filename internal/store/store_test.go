package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/netaddr"
)

// mkRecord builds a valid announce or withdraw record. Announces carry a
// path terminating at origin, so origin-AS indexing is exercised.
func mkRecord(ts time.Time, peer, origin bgp.ASN, prefix netaddr.Prefix, announce bool) collector.Record {
	rec := collector.Record{
		Time:     ts.UTC(),
		PeerAS:   peer,
		PeerAddr: netaddr.Addr(0xc0000000 | uint32(peer)),
		Prefix:   prefix,
	}
	if announce {
		rec.Type = collector.Announce
		rec.Attrs = bgp.Attrs{
			Origin:  bgp.OriginIGP,
			Path:    bgp.PathFromASNs(peer, 3000, origin),
			NextHop: netaddr.Addr(0x0a000000 | uint32(peer)),
		}
	} else {
		rec.Type = collector.Withdraw
	}
	return rec
}

// hourlyWorkload builds `hours` hours of records where each origin AS is
// active in exactly one hour, so origin queries have something to skip.
func hourlyWorkload(hours, perHour int) []collector.Record {
	start := time.Date(1996, 3, 1, 0, 0, 0, 0, time.UTC)
	var recs []collector.Record
	for h := 0; h < hours; h++ {
		origin := bgp.ASN(7000 + h)
		for i := 0; i < perHour; i++ {
			ts := start.Add(time.Duration(h)*time.Hour + time.Duration(i)*time.Second)
			peer := bgp.ASN(100 + i%4)
			prefix := netaddr.MustPrefix(netaddr.Addr(0xc6000000+uint32(h)<<16+uint32(i)<<8), 24)
			recs = append(recs, mkRecord(ts, peer, origin, prefix, i%3 != 0))
		}
	}
	return recs
}

func recordsEqual(a, b collector.Record) bool {
	return a.Time.Equal(b.Time) && a.Type == b.Type && a.PeerAS == b.PeerAS &&
		a.PeerAddr == b.PeerAddr && a.Prefix == b.Prefix && a.Attrs.PolicyEqual(b.Attrs)
}

func assertSameRecords(t *testing.T, got, want []collector.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if !recordsEqual(got[i], want[i]) {
			t.Fatalf("record %d mismatch:\n got  %v\n want %v", i, got[i], want[i])
		}
	}
}

func queryAll(t *testing.T, s *Store, q Query) ([]collector.Record, ScanStats) {
	t.Helper()
	r, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs, r.Stats()
}

func testOptions() Options {
	return Options{Window: time.Hour, BlockRecords: 64, FlushEvery: 32}
}

// TestPushdownSkipsBlocks is the acceptance check for indexed queries: a
// single-origin query over a multi-segment store must decompress strictly
// fewer blocks than a full scan, while returning exactly the right records.
func TestPushdownSkipsBlocks(t *testing.T) {
	recs := hourlyWorkload(6, 300)
	s, err := Open(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := s.Writer()
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Segments < 2 {
		t.Fatalf("want a multi-segment store, got %d segments", st.Segments)
	}

	full, fullStats := queryAll(t, s, Query{})
	assertSameRecords(t, full, recs)
	if fullStats.BlocksScanned != fullStats.BlocksTotal || fullStats.BlocksTotal == 0 {
		t.Fatalf("full scan should read every block: %+v", fullStats)
	}

	origin := bgp.ASN(7002)
	var want []collector.Record
	for _, rec := range recs {
		if o, ok := originOf(rec); ok && o == origin {
			want = append(want, rec)
		}
	}
	got, stats := queryAll(t, s, Query{OriginAS: []bgp.ASN{origin}})
	assertSameRecords(t, got, want)
	if stats.BlocksScanned >= fullStats.BlocksScanned {
		t.Fatalf("pushdown did not skip blocks: filtered %d vs full %d", stats.BlocksScanned, fullStats.BlocksScanned)
	}
	if stats.SegmentsScanned >= fullStats.SegmentsScanned {
		t.Fatalf("pushdown did not skip segments: filtered %d vs full %d", stats.SegmentsScanned, fullStats.SegmentsScanned)
	}

	// Peer and prefix pushdown also prune (peer postings cover all blocks
	// here, so assert only correctness; the bloom filter must skip whole
	// segments for an absent prefix).
	missing := netaddr.MustParsePrefix("10.99.0.0/16")
	got, stats = queryAll(t, s, Query{Prefix: missing})
	if len(got) != 0 {
		t.Fatalf("absent prefix returned %d records", len(got))
	}
	if stats.BlocksScanned == fullStats.BlocksTotal {
		t.Fatalf("bloom filter skipped nothing: %+v", stats)
	}
}

// TestQueryFilters cross-checks every predicate against an in-memory
// reference filter, including queries over the unsealed memtable.
func TestQueryFilters(t *testing.T) {
	recs := hourlyWorkload(4, 200)
	s, err := Open(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := s.Writer()
	for i, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		if i == len(recs)/2 {
			if err := w.Seal(); err != nil { // half sealed, half memtable
				t.Fatal(err)
			}
		}
	}

	start := time.Date(1996, 3, 1, 0, 0, 0, 0, time.UTC)
	queries := []Query{
		{},
		{PeerAS: []bgp.ASN{101}},
		{OriginAS: []bgp.ASN{7001, 7003}},
		{Types: []collector.RecType{collector.Withdraw}},
		{From: start.Add(90 * time.Minute), To: start.Add(3 * time.Hour)},
		{Prefix: recs[17].Prefix},
		{PeerAS: []bgp.ASN{102}, Types: []collector.RecType{collector.Announce}, From: start.Add(time.Hour)},
		{OriginAS: []bgp.ASN{7000}, Types: []collector.RecType{collector.Withdraw}}, // contradiction: empty
	}
	for qi, q := range queries {
		var want []collector.Record
		for _, rec := range recs {
			if q.match(rec) {
				want = append(want, rec)
			}
		}
		got, _ := queryAll(t, s, q)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d records, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if !recordsEqual(got[i], want[i]) {
				t.Fatalf("query %d record %d mismatch", qi, i)
			}
		}
	}
}

// TestCrashRecovery kills a writer mid-batch (handle dropped without Close)
// and verifies the reopened store has every flushed record exactly once:
// sealed data plus the WAL tail, no losses, no duplicates.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	recs := hourlyWorkload(2, 250)
	sealedN := 300

	s, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	w := s.Writer()
	for _, rec := range recs[:sealedN] {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[sealedN:] {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Crash: the handle is abandoned; nothing is sealed or closed.

	s2, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.MemRecords != len(recs)-sealedN {
		t.Fatalf("recovered %d WAL records, want %d", st.MemRecords, len(recs)-sealedN)
	}
	got, _ := queryAll(t, s2, Query{})
	assertSameRecords(t, got, recs)
}

// TestCrashBeforeWALTruncate simulates the worst crash point: the seal wrote
// its segments but died before truncating the WAL, so every sealed record is
// still in the log. Sequence-range dedupe must discard all of them.
func TestCrashBeforeWALTruncate(t *testing.T) {
	dir := t.TempDir()
	recs := hourlyWorkload(2, 200)

	s, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	w := s.Writer()
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	walCopy, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Resurrect the pre-seal WAL, as if the truncate never happened.
	if err := os.WriteFile(filepath.Join(dir, walName), walCopy, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.MemRecords != 0 {
		t.Fatalf("stale WAL entries resurrected: %d memtable records", st.MemRecords)
	}
	got, _ := queryAll(t, s2, Query{})
	assertSameRecords(t, got, recs)
}

// TestWALTornTail verifies that garbage after the last intact WAL entry (a
// crash mid-write) is discarded without losing the entries before it.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	recs := hourlyWorkload(1, 100)

	s, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	w := s.Writer()
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Crash mid-write: a partial frame lands at the tail.
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x01, 0x40, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, _ := queryAll(t, s2, Query{})
	assertSameRecords(t, got, recs)

	// And the store keeps working: more appends and a seal after recovery.
	w2 := s2.Writer()
	extra := mkRecord(recs[len(recs)-1].Time.Add(time.Second), 300, 7100, netaddr.MustParsePrefix("192.42.113.0/24"), true)
	if err := w2.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := w2.Seal(); err != nil {
		t.Fatal(err)
	}
	got, _ = queryAll(t, s2, Query{})
	assertSameRecords(t, got, append(append([]collector.Record(nil), recs...), extra))
}

// TestCompact merges the residue of incremental seals into one segment per
// window and leaves query results identical.
func TestCompact(t *testing.T) {
	dir := t.TempDir()
	recs := hourlyWorkload(2, 240)
	s, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := s.Writer()
	for i, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		if (i+1)%100 == 0 {
			if err := w.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if before.Segments <= before.Windows {
		t.Fatalf("want fragmented store, got %d segments over %d windows", before.Segments, before.Windows)
	}
	wantRecs, _ := queryAll(t, s, Query{})

	cst, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Segments != after.Windows {
		t.Fatalf("compaction left %d segments over %d windows", after.Segments, after.Windows)
	}
	if cst.SegmentsAfter != after.Segments || cst.RecordsRewritten != int64(len(recs)) {
		t.Fatalf("compact stats %+v inconsistent with store %+v", cst, after)
	}
	got, _ := queryAll(t, s, Query{})
	assertSameRecords(t, got, wantRecs)

	// The compacted store must survive a reopen (footers, indexes, naming).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, _ = queryAll(t, s2, Query{})
	assertSameRecords(t, got, wantRecs)
}

// TestCompactCrashRepair verifies the replaces-list repair path: if a crash
// leaves both a compacted segment and a segment it replaced on disk, Open
// deletes the stale one instead of double-counting its records.
func TestCompactCrashRepair(t *testing.T) {
	dir := t.TempDir()
	recs := hourlyWorkload(1, 200)
	s, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	w := s.Writer()
	for i, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		if i == len(recs)/2 {
			if err := w.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	// Preserve the pre-compaction segments, then compact and re-plant one.
	var stale []string
	entries, _ := os.ReadDir(dir)
	backup := make(map[string][]byte)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == segSuffix {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			backup[e.Name()] = b
			stale = append(stale, e.Name())
		}
	}
	if len(stale) != 2 {
		t.Fatalf("expected 2 pre-compaction segments, got %d", len(stale))
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, stale[0]), backup[stale[0]], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, _ := queryAll(t, s2, Query{})
	assertSameRecords(t, got, recs)
	if _, err := os.Stat(filepath.Join(dir, stale[0])); !os.IsNotExist(err) {
		t.Fatalf("stale replaced segment not deleted on open: %v", err)
	}
}

// TestAutoSeal bounds memtable growth during bulk ingest.
func TestAutoSeal(t *testing.T) {
	opts := testOptions()
	opts.AutoSealRecords = 128
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := hourlyWorkload(1, 500)
	w := s.Writer()
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Auto-seals run in the background; join them so the bound below is the
	// steady-state memtable, not a batch caught mid-flight.
	if err := s.joinSeal(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.MemRecords >= opts.AutoSealRecords {
		t.Fatalf("memtable grew to %d despite auto-seal at %d", st.MemRecords, opts.AutoSealRecords)
	}
	if st.Segments == 0 {
		t.Fatal("auto-seal produced no segments")
	}
	got, _ := queryAll(t, s, Query{})
	assertSameRecords(t, got, recs)
}

// TestParseQuery exercises the shared CLI query parser.
func TestParseQuery(t *testing.T) {
	q, err := ParseQuery("1996-03-01", "1996-03-02 06:00:00", "690,701", "7000", "198.32.0.0/16", "A,W")
	if err != nil {
		t.Fatal(err)
	}
	if q.From.IsZero() || q.To.IsZero() || len(q.PeerAS) != 2 || len(q.OriginAS) != 1 ||
		!q.hasPrefix() || len(q.Types) != 2 {
		t.Fatalf("parsed query incomplete: %+v", q)
	}
	if _, err := ParseQuery("yesterday", "", "", "", "", ""); err == nil {
		t.Fatal("bad time accepted")
	}
	if _, err := ParseQuery("", "", "notanas", "", "", ""); err == nil {
		t.Fatal("bad AS accepted")
	}
	if _, err := ParseQuery("", "", "", "", "", "X"); err == nil {
		t.Fatal("bad type accepted")
	}
}

// TestConcurrentAppend hammers one writer from several goroutines while a
// reader queries mid-ingest; run under -race this is the concurrency check.
func TestConcurrentAppend(t *testing.T) {
	s, err := Open(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := hourlyWorkload(2, 400)
	w := s.Writer()
	const workers = 4
	errc := make(chan error, workers)
	for g := 0; g < workers; g++ {
		go func(g int) {
			for i := g; i < len(recs); i += workers {
				if err := w.Append(recs[i]); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(g)
	}
	// Concurrent queries must never see torn state.
	for i := 0; i < 10; i++ {
		r, err := s.Query(Query{PeerAS: []bgp.ASN{101}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.ReadAll(); err != nil {
			t.Fatal(err)
		}
		r.Close()
	}
	for g := 0; g < workers; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	got, _ := queryAll(t, s, Query{})
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	if n := w.Count(); n != int64(len(recs)) {
		t.Fatalf("writer count %d, want %d", n, len(recs))
	}
}

func TestStatsShape(t *testing.T) {
	s, err := Open(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := hourlyWorkload(3, 100)
	w := s.Writer()
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Segments != 3 || st.Windows != 3 || st.Records != int64(len(recs)) ||
		st.MemRecords != 0 || st.DiskBytes == 0 || st.WALBytes != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
	if got := s.WindowOf(recs[0].Time); got != time.Date(1996, 3, 1, 0, 0, 0, 0, time.UTC) {
		t.Fatalf("WindowOf = %v", got)
	}
	_ = fmt.Sprintf("%+v", st)
}
