package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/intern"
	"instability/internal/netaddr"
)

// ErrCorrupt reports a damaged segment or WAL structure.
var ErrCorrupt = errors.New("store: corrupt data")

// isCorrupt distinguishes data damage (quarantinable: skip the block, keep
// the scan) from I/O failure (fail the scan with a partial-scan error).
func isCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }

// attrEncoder memoizes the wire encoding of attribute tuples: the same
// duplicate-dominated stream that motivates interning means the writer would
// otherwise re-marshal identical path attributes for nearly every record.
// One encoder belongs to one Store and is guarded by the store mutex (every
// WAL append, seal, and compaction already runs under it).
type attrEncoder struct {
	tab  *intern.Table
	wire [][]byte // wire form by handle ID, filled lazily
}

func newAttrEncoder() *attrEncoder { return &attrEncoder{tab: intern.New()} }

// encode interns a and returns its handle plus its cached wire form. The
// returned bytes are shared and must not be modified.
func (e *attrEncoder) encode(a bgp.Attrs) (*intern.Handle, []byte, error) {
	h := e.tab.Attrs(a)
	for int(h.ID) >= len(e.wire) {
		e.wire = append(e.wire, nil)
	}
	w := e.wire[h.ID]
	if w == nil {
		var err error
		w, err = bgp.MarshalAttrs(h.Attrs())
		if err != nil {
			return nil, nil, err
		}
		e.wire[h.ID] = w
	}
	return h, w, nil
}

// decodeInterner canonicalizes attribute tuples decoded from segment blocks,
// so repeated scans of the same store return shared Attrs instead of a fresh
// deep copy per dictionary entry per scan. Entries are memoized straight from
// their wire bytes: after the first decode of a tuple, later blocks resolve
// it with one map probe and zero allocations (Go elides the string(w)
// conversion in the map lookup). It is shared by every scan worker of a
// store; the lock is taken once per dictionary entry (per block), never per
// record, so contention is negligible.
type decodeInterner struct {
	mu     sync.Mutex
	tab    *intern.Table
	byWire map[string]bgp.Attrs
}

func newDecodeInterner() *decodeInterner {
	return &decodeInterner{tab: intern.New(), byWire: make(map[string]bgp.Attrs)}
}

// internWire decodes the attribute wire bytes w (not retained) and returns
// the canonical shared form of the tuple.
func (d *decodeInterner) internWire(w []byte) (bgp.Attrs, error) {
	d.mu.Lock()
	if a, ok := d.byWire[string(w)]; ok {
		d.mu.Unlock()
		return a, nil
	}
	a, err := bgp.UnmarshalAttrs(w)
	if err != nil {
		d.mu.Unlock()
		return bgp.Attrs{}, err
	}
	a = d.tab.Attrs(a).Attrs()
	d.byWire[string(append([]byte(nil), w...))] = a
	d.tab.FlushStats()
	d.mu.Unlock()
	return a, nil
}

// appendRecordTail encodes everything after the timestamp: type, peer,
// prefix, attributes inline (block format v1, and the WAL). enc, when
// non-nil, supplies memoized attribute bytes so duplicate attribute sets are
// marshaled once per store rather than once per record.
func appendRecordTail(b []byte, rec collector.Record, enc *attrEncoder) ([]byte, error) {
	b = appendRecordCore(b, rec)
	if rec.Type == collector.Announce {
		var attrs []byte
		var err error
		if enc != nil {
			_, attrs, err = enc.encode(rec.Attrs)
		} else {
			attrs, err = bgp.MarshalAttrs(rec.Attrs)
		}
		if err != nil {
			return nil, err
		}
		b = binary.AppendUvarint(b, uint64(len(attrs)))
		b = append(b, attrs...)
	} else {
		b = binary.AppendUvarint(b, 0)
	}
	return b, nil
}

// appendRecordTailV2 encodes a record tail in block format v2: announce
// records reference a per-block attribute dictionary entry by index instead
// of carrying inline attribute bytes; non-announce records carry nothing.
func appendRecordTailV2(b []byte, rec collector.Record, dictIdx int) []byte {
	b = appendRecordCore(b, rec)
	if rec.Type == collector.Announce {
		b = binary.AppendUvarint(b, uint64(dictIdx))
	}
	return b
}

// appendRecordCore encodes the fields common to both block formats.
func appendRecordCore(b []byte, rec collector.Record) []byte {
	b = append(b, byte(rec.Type))
	b = binary.AppendUvarint(b, uint64(rec.PeerAS))
	b = binary.AppendUvarint(b, uint64(rec.PeerAddr))
	b = append(b, byte(rec.Prefix.Bits()))
	return binary.AppendUvarint(b, uint64(rec.Prefix.Addr()))
}

// decodeRecordTail is the inverse of appendRecordTail (block format v1); it
// fills everything but rec.Time and returns the remaining bytes.
func decodeRecordTail(b []byte, rec *collector.Record) ([]byte, error) {
	b, err := decodeRecordCore(b, rec)
	if err != nil {
		return nil, err
	}
	alen, n := binary.Uvarint(b)
	if n <= 0 || alen > uint64(len(b)-n) {
		return nil, fmt.Errorf("%w: attribute length", ErrCorrupt)
	}
	b = b[n:]
	if alen > 0 {
		rec.Attrs, err = bgp.UnmarshalAttrs(b[:alen])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		b = b[alen:]
	} else {
		rec.Attrs = bgp.Attrs{}
	}
	return b, nil
}

// decodeRecordTailV2 is the inverse of appendRecordTailV2. Announce records
// resolve their attributes from dict — the shared per-block dictionary — so
// every record of a block referencing the same tuple shares one Attrs value.
func decodeRecordTailV2(b []byte, rec *collector.Record, dict []bgp.Attrs) ([]byte, error) {
	b, err := decodeRecordCore(b, rec)
	if err != nil {
		return nil, err
	}
	if rec.Type != collector.Announce {
		rec.Attrs = bgp.Attrs{}
		return b, nil
	}
	idx, n := binary.Uvarint(b)
	if n <= 0 || idx >= uint64(len(dict)) {
		return nil, fmt.Errorf("%w: attribute dictionary index", ErrCorrupt)
	}
	rec.Attrs = dict[idx]
	return b[n:], nil
}

// decodeRecordCore decodes the fields common to both block formats.
func decodeRecordCore(b []byte, rec *collector.Record) ([]byte, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: record type", ErrCorrupt)
	}
	rec.Type = collector.RecType(b[0])
	b = b[1:]
	switch rec.Type {
	case collector.Announce, collector.Withdraw, collector.SessionUp, collector.SessionDown:
	default:
		return nil, fmt.Errorf("%w: record type %d", ErrCorrupt, rec.Type)
	}
	peerAS, n := binary.Uvarint(b)
	if n <= 0 || peerAS > 0xffff {
		return nil, fmt.Errorf("%w: peer AS", ErrCorrupt)
	}
	rec.PeerAS = bgp.ASN(peerAS)
	b = b[n:]
	peerAddr, n := binary.Uvarint(b)
	if n <= 0 || peerAddr > 0xffffffff {
		return nil, fmt.Errorf("%w: peer address", ErrCorrupt)
	}
	rec.PeerAddr = netaddr.Addr(peerAddr)
	b = b[n:]
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: prefix length", ErrCorrupt)
	}
	bits := int(b[0])
	b = b[1:]
	addr, n := binary.Uvarint(b)
	if n <= 0 || addr > 0xffffffff {
		return nil, fmt.Errorf("%w: prefix address", ErrCorrupt)
	}
	b = b[n:]
	p, err := netaddr.PrefixFrom(netaddr.Addr(addr), bits)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	rec.Prefix = p
	return b, nil
}

// appendRecordAbs encodes a record with an absolute nanosecond timestamp
// (WAL form; always inline attributes).
func appendRecordAbs(b []byte, rec collector.Record, enc *attrEncoder) ([]byte, error) {
	b = binary.BigEndian.AppendUint64(b, uint64(rec.Time.UnixNano()))
	return appendRecordTail(b, rec, enc)
}

// decodeRecordAbs is the inverse of appendRecordAbs.
func decodeRecordAbs(b []byte) (collector.Record, []byte, error) {
	var rec collector.Record
	if len(b) < 8 {
		return rec, nil, fmt.Errorf("%w: record time", ErrCorrupt)
	}
	rec.Time = time.Unix(0, int64(binary.BigEndian.Uint64(b))).UTC()
	rest, err := decodeRecordTail(b[8:], &rec)
	return rec, rest, err
}

// originOf extracts the origin AS of an announcement (the last AS of its
// path). Non-announcements, and announcements with empty or SET-terminated
// paths, have no origin; ok is false.
func originOf(rec collector.Record) (bgp.ASN, bool) {
	if rec.Type != collector.Announce {
		return 0, false
	}
	return rec.Attrs.Path.Origin()
}
