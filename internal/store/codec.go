package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/netaddr"
)

// ErrCorrupt reports a damaged segment or WAL structure.
var ErrCorrupt = errors.New("store: corrupt data")

// appendRecordTail encodes everything after the timestamp: type, peer,
// prefix, attributes. Shared by the WAL (absolute time) and block (delta
// time) codecs.
func appendRecordTail(b []byte, rec collector.Record) ([]byte, error) {
	b = append(b, byte(rec.Type))
	b = binary.AppendUvarint(b, uint64(rec.PeerAS))
	b = binary.AppendUvarint(b, uint64(rec.PeerAddr))
	b = append(b, byte(rec.Prefix.Bits()))
	b = binary.AppendUvarint(b, uint64(rec.Prefix.Addr()))
	if rec.Type == collector.Announce {
		attrs, err := bgp.MarshalAttrs(rec.Attrs)
		if err != nil {
			return nil, err
		}
		b = binary.AppendUvarint(b, uint64(len(attrs)))
		b = append(b, attrs...)
	} else {
		b = binary.AppendUvarint(b, 0)
	}
	return b, nil
}

// decodeRecordTail is the inverse of appendRecordTail; it fills everything
// but rec.Time and returns the remaining bytes.
func decodeRecordTail(b []byte, rec *collector.Record) ([]byte, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: record type", ErrCorrupt)
	}
	rec.Type = collector.RecType(b[0])
	b = b[1:]
	switch rec.Type {
	case collector.Announce, collector.Withdraw, collector.SessionUp, collector.SessionDown:
	default:
		return nil, fmt.Errorf("%w: record type %d", ErrCorrupt, rec.Type)
	}
	peerAS, n := binary.Uvarint(b)
	if n <= 0 || peerAS > 0xffff {
		return nil, fmt.Errorf("%w: peer AS", ErrCorrupt)
	}
	rec.PeerAS = bgp.ASN(peerAS)
	b = b[n:]
	peerAddr, n := binary.Uvarint(b)
	if n <= 0 || peerAddr > 0xffffffff {
		return nil, fmt.Errorf("%w: peer address", ErrCorrupt)
	}
	rec.PeerAddr = netaddr.Addr(peerAddr)
	b = b[n:]
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: prefix length", ErrCorrupt)
	}
	bits := int(b[0])
	b = b[1:]
	addr, n := binary.Uvarint(b)
	if n <= 0 || addr > 0xffffffff {
		return nil, fmt.Errorf("%w: prefix address", ErrCorrupt)
	}
	b = b[n:]
	p, err := netaddr.PrefixFrom(netaddr.Addr(addr), bits)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	rec.Prefix = p
	alen, n := binary.Uvarint(b)
	if n <= 0 || alen > uint64(len(b)-n) {
		return nil, fmt.Errorf("%w: attribute length", ErrCorrupt)
	}
	b = b[n:]
	if alen > 0 {
		rec.Attrs, err = bgp.UnmarshalAttrs(b[:alen])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		b = b[alen:]
	} else {
		rec.Attrs = bgp.Attrs{}
	}
	return b, nil
}

// appendRecordAbs encodes a record with an absolute nanosecond timestamp
// (WAL form).
func appendRecordAbs(b []byte, rec collector.Record) ([]byte, error) {
	b = binary.BigEndian.AppendUint64(b, uint64(rec.Time.UnixNano()))
	return appendRecordTail(b, rec)
}

// decodeRecordAbs is the inverse of appendRecordAbs.
func decodeRecordAbs(b []byte) (collector.Record, []byte, error) {
	var rec collector.Record
	if len(b) < 8 {
		return rec, nil, fmt.Errorf("%w: record time", ErrCorrupt)
	}
	rec.Time = time.Unix(0, int64(binary.BigEndian.Uint64(b))).UTC()
	rest, err := decodeRecordTail(b[8:], &rec)
	return rec, rest, err
}

// originOf extracts the origin AS of an announcement (the last AS of its
// path). Non-announcements, and announcements with empty or SET-terminated
// paths, have no origin; ok is false.
func originOf(rec collector.Record) (bgp.ASN, bool) {
	if rec.Type != collector.Announce {
		return 0, false
	}
	return rec.Attrs.Path.Origin()
}
