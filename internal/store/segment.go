package store

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"

	"instability/internal/collector"
	"instability/internal/faults"
)

// Segment file naming and framing.
const (
	segPrefix = "seg-"
	segSuffix = ".irts"
	segMagic  = "IRTS"
	// segVersionV1 blocks carry inline attribute bytes per record.
	// segVersionV2 blocks open with an attribute dictionary written once;
	// announce records reference entries by varint index, so the duplicate
	// attribute sets that dominate real streams are stored and decoded once
	// per block instead of once per record. New segments are written v2; v1
	// segments remain fully readable.
	segVersionV1 = 1
	segVersionV2 = 2
	segHdrLen    = 5 // magic + version
	// segTailLen is the fixed trailer: u32 footer length + magic + version.
	segTailLen = 4 + 4 + 1
)

// segment is an open handle on one sealed immutable segment: its footer and
// index stay in memory, record blocks stay on disk (or in the shared page
// cache, when mapped) until a query needs them.
type segment struct {
	path string
	seq  uint64 // segment file number
	size int64
	ver  byte // block format version (segVersionV1 or segVersionV2)
	// fp is the segment's content fingerprint (seq, window, sequence range,
	// count): the cache key half that identifies this segment's blocks.
	fp uint64
	// di, when set by the owning store, canonicalizes dictionary entries at
	// decode time so repeated scans share attribute storage.
	di *decodeInterner
	// mm is the segment's memory mapping, nil when unmapped (mmap disabled,
	// unsupported, failed, or the store reads through a fault injector).
	// Accessed only under the store lock; readers take a reference at query
	// setup and carry their own *segMap pointer.
	mm *segMap

	windowStart int64 // time partition this segment belongs to (unixnano)
	minTime     int64 // first record timestamp
	maxTime     int64 // last record timestamp
	firstSeq    uint64
	lastSeq     uint64
	count       int64
	replaces    []uint64 // segment seqs this compacted segment supersedes

	index *segIndex
}

func segName(seq uint64) string { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }

// writeSegment seals recs (already sorted by time) into a new segment file
// in dir. The write is crash-safe: the file is assembled under a .tmp name
// and renamed into place.
//
// Block encoding and compression fan out across opts.SealWorkers goroutines:
// blocks are independent (each carries its own attribute dictionary), so the
// expensive encode+deflate runs concurrently and the blocks are stitched back
// in order. The output is byte-identical at any worker count — each block's
// bytes depend only on its own records, exactly as in the serial loop.
func writeSegment(fsys faults.FS, dir string, seq uint64, windowStart int64, firstSeq uint64, recs []collector.Record, replaces []uint64, opts Options) (*segment, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("store: sealing empty segment")
	}
	version := opts.formatVersion
	if version == 0 {
		version = segVersionV2
	}

	nBlocks := (len(recs) + opts.BlockRecords - 1) / opts.BlockRecords
	encoded := make([]encodedBlock, nBlocks)
	workers := opts.SealWorkers
	if workers > nBlocks {
		workers = nBlocks
	}
	if workers <= 1 {
		sc := getSealScratch()
		for bi := range encoded {
			start := bi * opts.BlockRecords
			end := min(start+opts.BlockRecords, len(recs))
			encoded[bi] = encodeSegmentBlock(sc, version, recs[start:end])
			if encoded[bi].err != nil {
				putSealScratch(sc)
				return nil, encoded[bi].err
			}
		}
		putSealScratch(sc)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				sc := getSealScratch()
				defer putSealScratch(sc)
				for {
					bi := int(next.Add(1)) - 1
					if bi >= nBlocks {
						return
					}
					start := bi * opts.BlockRecords
					end := min(start+opts.BlockRecords, len(recs))
					encoded[bi] = encodeSegmentBlock(sc, version, recs[start:end])
				}
			}()
		}
		wg.Wait()
		for bi := range encoded {
			if encoded[bi].err != nil {
				return nil, encoded[bi].err
			}
		}
	}

	// Stitch: blocks in submission order, then the index — built serially
	// from the raw records so posting lists and the bloom filter fold in the
	// same order the serial loop used. Index work is map probes and hashes,
	// cheap next to deflate; it does not need to parallelize.
	ix := &segIndex{
		peers:   make(postings),
		origins: make(postings),
		filter:  newBloom(len(recs), opts.BloomBitsPerKey),
	}
	var buf bytes.Buffer
	buf.WriteString(segMagic)
	buf.WriteByte(version)
	for bi := range encoded {
		start := bi * opts.BlockRecords
		end := min(start+opts.BlockRecords, len(recs))
		block := recs[start:end]
		blockID := int32(bi)
		ix.blocks = append(ix.blocks, blockMeta{
			offset:  int64(buf.Len()),
			clen:    int32(len(encoded[bi].comp)),
			ulen:    int32(encoded[bi].ulen),
			count:   int32(len(block)),
			minTime: block[0].Time.UnixNano(),
			maxTime: block[len(block)-1].Time.UnixNano(),
		})
		buf.Write(encoded[bi].comp)
		encoded[bi].comp = nil
		for _, rec := range block {
			ix.peers.add(rec.PeerAS, blockID)
			if origin, ok := originOf(rec); ok {
				ix.origins.add(origin, blockID)
			}
			ix.filter.add(prefixKey(rec.Prefix))
		}
	}

	indexOff := int64(buf.Len())
	buf.Write(ix.encode(nil))

	// Footer body, then the fixed trailer.
	footer := make([]byte, 0, 64)
	footer = binary.BigEndian.AppendUint64(footer, uint64(indexOff))
	footer = binary.BigEndian.AppendUint64(footer, uint64(windowStart))
	footer = binary.BigEndian.AppendUint64(footer, uint64(recs[0].Time.UnixNano()))
	footer = binary.BigEndian.AppendUint64(footer, uint64(recs[len(recs)-1].Time.UnixNano()))
	footer = binary.BigEndian.AppendUint64(footer, firstSeq)
	footer = binary.BigEndian.AppendUint64(footer, firstSeq+uint64(len(recs))-1)
	footer = binary.BigEndian.AppendUint64(footer, uint64(len(recs)))
	footer = binary.BigEndian.AppendUint16(footer, uint16(len(replaces)))
	for _, r := range replaces {
		footer = binary.BigEndian.AppendUint64(footer, r)
	}
	buf.Write(footer)
	tail := make([]byte, 0, segTailLen)
	tail = binary.BigEndian.AppendUint32(tail, uint32(len(footer)))
	tail = append(tail, segMagic...)
	tail = append(tail, version)
	buf.Write(tail)

	path := filepath.Join(dir, segName(seq))
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return nil, err
	}
	if opts.Sync {
		if err := f.Sync(); err != nil {
			f.Close()
			fsys.Remove(tmp)
			return nil, err
		}
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return nil, err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return nil, err
	}
	g := &segment{
		path:        path,
		seq:         seq,
		size:        int64(buf.Len()),
		ver:         version,
		windowStart: windowStart,
		minTime:     recs[0].Time.UnixNano(),
		maxTime:     recs[len(recs)-1].Time.UnixNano(),
		firstSeq:    firstSeq,
		lastSeq:     firstSeq + uint64(len(recs)) - 1,
		count:       int64(len(recs)),
		replaces:    replaces,
		index:       ix,
	}
	g.fp = g.fingerprint()
	return g, nil
}

// openSegment reads a segment's footer and index into memory.
func openSegment(fsys faults.FS, path string) (*segment, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < segHdrLen+segTailLen {
		return nil, fmt.Errorf("%w: segment too short", ErrCorrupt)
	}
	var hdr [segHdrLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, err
	}
	if string(hdr[:4]) != segMagic || hdr[4] < segVersionV1 || hdr[4] > segVersionV2 {
		return nil, fmt.Errorf("%w: bad segment header", ErrCorrupt)
	}
	var tail [segTailLen]byte
	if _, err := f.ReadAt(tail[:], size-segTailLen); err != nil {
		return nil, err
	}
	if string(tail[4:8]) != segMagic || tail[8] != hdr[4] {
		return nil, fmt.Errorf("%w: bad segment trailer", ErrCorrupt)
	}
	flen := int64(binary.BigEndian.Uint32(tail[:4]))
	if flen < 58 || flen > size-segHdrLen-segTailLen {
		return nil, fmt.Errorf("%w: bad footer length", ErrCorrupt)
	}
	footer := make([]byte, flen)
	if _, err := f.ReadAt(footer, size-segTailLen-flen); err != nil {
		return nil, err
	}
	g := &segment{path: path, size: size, ver: hdr[4]}
	indexOff := int64(binary.BigEndian.Uint64(footer))
	g.windowStart = int64(binary.BigEndian.Uint64(footer[8:]))
	g.minTime = int64(binary.BigEndian.Uint64(footer[16:]))
	g.maxTime = int64(binary.BigEndian.Uint64(footer[24:]))
	g.firstSeq = binary.BigEndian.Uint64(footer[32:])
	g.lastSeq = binary.BigEndian.Uint64(footer[40:])
	g.count = int64(binary.BigEndian.Uint64(footer[48:]))
	nRepl := int(binary.BigEndian.Uint16(footer[56:]))
	if int64(58+8*nRepl) != flen {
		return nil, fmt.Errorf("%w: footer replaces list", ErrCorrupt)
	}
	for i := 0; i < nRepl; i++ {
		g.replaces = append(g.replaces, binary.BigEndian.Uint64(footer[58+8*i:]))
	}
	if indexOff < segHdrLen || indexOff > size-segTailLen-flen {
		return nil, fmt.Errorf("%w: index offset", ErrCorrupt)
	}
	ixBytes := make([]byte, size-segTailLen-flen-indexOff)
	if _, err := f.ReadAt(ixBytes, indexOff); err != nil {
		return nil, err
	}
	if g.index, err = decodeIndex(ixBytes); err != nil {
		return nil, err
	}

	// The file number is authoritative from the name, so compaction's
	// replaces list can be matched against directory contents.
	var seq uint64
	if _, err := fmt.Sscanf(filepath.Base(path), segPrefix+"%d"+segSuffix, &seq); err != nil {
		return nil, fmt.Errorf("%w: segment name %q", ErrCorrupt, filepath.Base(path))
	}
	g.seq = seq
	g.fp = g.fingerprint()
	return g, nil
}

// fingerprint hashes the segment's identity — file number, window, sequence
// range, record count — with the same scheme the store-level fingerprint
// folds per segment, so one segment's cache keys are stable for its
// immutable lifetime and distinct from every other segment's.
func (g *segment) fingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	word := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	word(g.seq)
	word(uint64(g.windowStart))
	word(g.firstSeq)
	word(g.lastSeq)
	word(uint64(g.count))
	return h.Sum64()
}

// segMap is a reference-counted read-only memory mapping of one sealed
// segment file. The store holds one reference for as long as the segment is
// live; every stream scanning through the mapping holds another for its own
// lifetime. Compaction can therefore retire a segment (and the store can
// close) while scans are mid-flight: the pages are unmapped only when the
// last reference drops, never under a reader.
type segMap struct {
	data []byte
	refs atomic.Int64
}

func newSegMap(data []byte) *segMap {
	m := &segMap{data: data}
	m.refs.Store(1)
	return m
}

// acquire takes a reference. Callers hold the store lock and the segment is
// live there, so the store's own reference pins the count above zero.
func (m *segMap) acquire() {
	if m != nil {
		m.refs.Add(1)
	}
}

// release drops one reference, unmapping on the last. Nil-safe.
func (m *segMap) release() {
	if m == nil {
		return
	}
	if m.refs.Add(-1) == 0 {
		munmap(m.data)
		m.data = nil
	}
}

// blockReader is the reusable scratch state for decompressing one segment
// block: the compressed-bytes buffer (ReadAt path only), a resettable source
// reader, the inflate output buffer, and the flate reader itself. Columnar
// decoding copies everything out of these buffers, so a blockReader is free
// for reuse the moment the block it inflated has been decoded.
type blockReader struct {
	cb  []byte
	src bytes.Reader
	raw bytes.Buffer
	fr  io.ReadCloser // always implements flate.Resetter
}

// maxRetainedBlockBytes caps the buffer capacity a pooled blockReader may
// keep between uses. One pathological block (a huge time window sealed into
// a single block) would otherwise pin a buffer of its size in every pool
// entry it passed through for the life of the process.
const maxRetainedBlockBytes = 1 << 20

// trimBlockReader drops oversized scratch buffers before br is pooled.
func trimBlockReader(br *blockReader) {
	if cap(br.cb) > maxRetainedBlockBytes {
		br.cb = nil
	}
	if br.raw.Cap() > maxRetainedBlockBytes {
		br.raw = bytes.Buffer{}
	}
}

// inflateBlock decompresses block bi and returns the raw block bytes, valid
// until br's next use. The compressed source is a zero-copy slice of the
// segment mapping when the caller holds one (mm non-nil); otherwise the
// bytes are read through f into br's buffer. f must support concurrent
// ReadAt (os.File does).
func (g *segment) inflateBlock(br *blockReader, f io.ReaderAt, mm *segMap, bi int) (_ []byte, err error) {
	// A failed read or inflate can leave the flate reader mid-stream; poison
	// it so a recycled blockReader never leaks one block's state into the
	// next (the next use rebuilds instead of trusting Reset on a wedged
	// reader).
	defer func() {
		if err != nil {
			br.fr = nil
		}
	}()
	bm := g.index.blocks[bi]
	var cb []byte
	if mm != nil {
		end := bm.offset + int64(bm.clen)
		if bm.offset < 0 || end > int64(len(mm.data)) {
			return nil, fmt.Errorf("%w: block %d bounds", ErrCorrupt, bi)
		}
		cb = mm.data[bm.offset:end]
	} else {
		if cap(br.cb) < int(bm.clen) {
			br.cb = make([]byte, bm.clen)
		}
		cb = br.cb[:bm.clen]
		if _, err := f.ReadAt(cb, bm.offset); err != nil {
			return nil, err
		}
	}
	br.src.Reset(cb)
	if br.fr == nil {
		br.fr = flate.NewReader(&br.src)
	} else if err := br.fr.(flate.Resetter).Reset(&br.src, nil); err != nil {
		return nil, err
	}
	br.raw.Reset()
	br.raw.Grow(int(bm.ulen))
	if _, err := io.Copy(&br.raw, br.fr); err != nil {
		return nil, fmt.Errorf("%w: block %d: %v", ErrCorrupt, bi, err)
	}
	// A Close error here is a truncated or damaged flate stream, i.e.
	// corruption, not an I/O failure — classify it so quarantine applies.
	if err := br.fr.Close(); err != nil {
		return nil, fmt.Errorf("%w: block %d: %v", ErrCorrupt, bi, err)
	}
	return br.raw.Bytes(), nil
}
