//go:build !linux && !darwin

package store

import "errors"

// errMmapUnsupported makes every mapping attempt fail cleanly on platforms
// without a wired-up mmap, which routes all reads through the ReadAt
// fallback path — the same path -no-mmap selects everywhere.
var errMmapUnsupported = errors.New("store: mmap unsupported on this platform")

func mmapOpen(path string, size int64) ([]byte, error) { return nil, errMmapUnsupported }

func munmap(data []byte) error { return nil }
