// Package policy implements the route-policy machinery that 1996 border
// routers evaluated on every update: ordered match/action rule lists over
// prefixes, prefix lengths, AS paths and communities. The paper's §4 notes
// that "each route may be matched against a potentially extensive list of
// policy filters" — the per-update cost that makes pathological update
// volume expensive — and §3 mentions ISPs "filtering all route
// announcements longer than a given prefix length" as a blunt stability
// tool; both are expressible here.
package policy

import (
	"fmt"
	"strings"

	"instability/internal/bgp"
	"instability/internal/netaddr"
)

// Match selects routes. Zero-valued fields match everything, so the zero
// Match is a catch-all.
type Match struct {
	// Exact matches only this precise prefix.
	Exact *netaddr.Prefix
	// Within matches prefixes contained in this block.
	Within *netaddr.Prefix
	// MinLen/MaxLen bound the prefix mask length (inclusive); both zero
	// means any length.
	MinLen, MaxLen int
	// PathContains requires the AS path to traverse this AS.
	PathContains bgp.ASN
	// OriginAS requires the route to originate at this AS.
	OriginAS bgp.ASN
	// HasCommunity requires this community tag.
	HasCommunity bgp.Community
	// MaxPathLen rejects longer AS paths when positive.
	MaxPathLen int
}

// Matches reports whether the route satisfies every non-zero criterion.
func (m Match) Matches(prefix netaddr.Prefix, attrs bgp.Attrs) bool {
	if m.Exact != nil && *m.Exact != prefix {
		return false
	}
	if m.Within != nil && !m.Within.ContainsPrefix(prefix) {
		return false
	}
	if m.MinLen > 0 && prefix.Bits() < m.MinLen {
		return false
	}
	if m.MaxLen > 0 && prefix.Bits() > m.MaxLen {
		return false
	}
	if m.PathContains != 0 && !attrs.Path.Contains(m.PathContains) {
		return false
	}
	if m.OriginAS != 0 {
		origin, ok := attrs.Path.Origin()
		if !ok || origin != m.OriginAS {
			return false
		}
	}
	if m.HasCommunity != 0 {
		found := false
		for _, c := range attrs.Communities {
			if c == m.HasCommunity {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if m.MaxPathLen > 0 && attrs.Path.Len() > m.MaxPathLen {
		return false
	}
	return true
}

// Action transforms (or rejects) a matched route.
type Action struct {
	// Reject drops the route.
	Reject bool
	// SetLocalPref overrides LOCAL_PREF when non-nil.
	SetLocalPref *uint32
	// SetMED overrides MED when non-nil.
	SetMED *uint32
	// AddCommunity appends a community tag.
	AddCommunity bgp.Community
	// StripCommunities removes all community tags.
	StripCommunities bool
	// Prepend prepends the given AS this many times (AS-path padding, the
	// crude traffic-engineering knob of the era).
	Prepend   int
	PrependAS bgp.ASN
}

// apply returns the transformed attributes; reject short-circuits.
func (a Action) apply(attrs bgp.Attrs) (bgp.Attrs, bool) {
	if a.Reject {
		return attrs, false
	}
	out := attrs
	if a.SetLocalPref != nil {
		out.HasLocalPref, out.LocalPref = true, *a.SetLocalPref
	}
	if a.SetMED != nil {
		out.HasMED, out.MED = true, *a.SetMED
	}
	if a.StripCommunities {
		out.Communities = nil
	}
	if a.AddCommunity != 0 {
		out.Communities = append(append([]bgp.Community(nil), out.Communities...), a.AddCommunity)
	}
	for i := 0; i < a.Prepend; i++ {
		out.Path = out.Path.Prepend(a.PrependAS)
	}
	return out, true
}

// Rule is one match/action pair.
type Rule struct {
	Name   string
	Match  Match
	Action Action
}

// Policy is an ordered rule list. The first matching rule decides; when no
// rule matches, DefaultReject decides.
type Policy struct {
	Rules []Rule
	// DefaultReject drops routes no rule matched (deny-by-default import
	// policies).
	DefaultReject bool
	// Evaluations counts routes processed — the CPU-cost proxy the paper's
	// update-volume discussion turns on.
	Evaluations int
}

// Apply evaluates the policy on one route, returning the (possibly
// rewritten) attributes and whether the route is accepted.
func (p *Policy) Apply(prefix netaddr.Prefix, attrs bgp.Attrs) (bgp.Attrs, bool) {
	p.Evaluations++
	for i := range p.Rules {
		if p.Rules[i].Match.Matches(prefix, attrs) {
			return p.Rules[i].Action.apply(attrs)
		}
	}
	if p.DefaultReject {
		return attrs, false
	}
	return attrs, true
}

// String summarizes the rule list.
func (p *Policy) String() string {
	var sb strings.Builder
	for i, r := range p.Rules {
		verb := "accept"
		if r.Action.Reject {
			verb = "reject"
		}
		name := r.Name
		if name == "" {
			name = fmt.Sprintf("rule%d", i)
		}
		fmt.Fprintf(&sb, "%s: %s\n", name, verb)
	}
	if p.DefaultReject {
		sb.WriteString("default: reject\n")
	} else {
		sb.WriteString("default: accept\n")
	}
	return sb.String()
}

// PrefixLengthFilter builds the draconian stability policy the paper
// mentions: reject every announcement more specific than maxLen.
func PrefixLengthFilter(maxLen int) *Policy {
	return &Policy{Rules: []Rule{{
		Name:   fmt.Sprintf("reject-longer-than-%d", maxLen),
		Match:  Match{MinLen: maxLen + 1},
		Action: Action{Reject: true},
	}}}
}

// MartianFilter rejects the never-routable address blocks every sane 1996
// border filtered (RFC 1918 space, loopback, class D/E, default).
func MartianFilter() *Policy {
	martians := []string{
		"0.0.0.0/8", "10.0.0.0/8", "127.0.0.0/8",
		"172.16.0.0/12", "192.168.0.0/16", "224.0.0.0/3",
	}
	var rules []Rule
	for _, m := range martians {
		pfx := netaddr.MustParsePrefix(m)
		rules = append(rules, Rule{
			Name:   "martian-" + m,
			Match:  Match{Within: &pfx},
			Action: Action{Reject: true},
		})
	}
	// Also reject a bare default route from peers.
	def := netaddr.MustParsePrefix("0.0.0.0/0")
	rules = append(rules, Rule{
		Name:   "no-default",
		Match:  Match{Exact: &def},
		Action: Action{Reject: true},
	})
	return &Policy{Rules: rules}
}

// CustomerPreference tags and prefers routes from a customer AS — the
// standard commercial policy of preferring routes you are paid to carry.
func CustomerPreference(customer bgp.ASN, localPref uint32, tag bgp.Community) *Policy {
	lp := localPref
	return &Policy{Rules: []Rule{{
		Name:   fmt.Sprintf("prefer-customer-%v", customer),
		Match:  Match{PathContains: customer},
		Action: Action{SetLocalPref: &lp, AddCommunity: tag},
	}}}
}
