package policy

import (
	"strings"
	"testing"
	"testing/quick"

	"instability/internal/bgp"
	"instability/internal/netaddr"
)

func pfx(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

func attrs(path ...bgp.ASN) bgp.Attrs {
	return bgp.Attrs{Origin: bgp.OriginIGP, Path: bgp.PathFromASNs(path...), NextHop: 1}
}

func TestEmptyPolicyAcceptsUnchanged(t *testing.T) {
	p := &Policy{}
	a := attrs(690, 237)
	got, ok := p.Apply(pfx("35.0.0.0/8"), a)
	if !ok || !got.PolicyEqual(a) {
		t.Fatal("empty policy should accept unchanged")
	}
	if p.Evaluations != 1 {
		t.Fatal("evaluation not counted")
	}
}

func TestDefaultReject(t *testing.T) {
	p := &Policy{DefaultReject: true}
	if _, ok := p.Apply(pfx("35.0.0.0/8"), attrs(690)); ok {
		t.Fatal("deny-by-default accepted")
	}
}

func TestFirstMatchWins(t *testing.T) {
	lp := uint32(200)
	p := &Policy{Rules: []Rule{
		{Match: Match{PathContains: 690}, Action: Action{SetLocalPref: &lp}},
		{Match: Match{PathContains: 690}, Action: Action{Reject: true}},
	}}
	got, ok := p.Apply(pfx("35.0.0.0/8"), attrs(690, 237))
	if !ok || !got.HasLocalPref || got.LocalPref != 200 {
		t.Fatalf("first rule should win: %+v %v", got, ok)
	}
}

func TestMatchCriteria(t *testing.T) {
	within := pfx("10.0.0.0/8")
	cases := []struct {
		name   string
		m      Match
		prefix netaddr.Prefix
		attrs  bgp.Attrs
		want   bool
	}{
		{"within-hit", Match{Within: &within}, pfx("10.1.0.0/16"), attrs(690), true},
		{"within-miss", Match{Within: &within}, pfx("11.0.0.0/8"), attrs(690), false},
		{"minlen", Match{MinLen: 25}, pfx("10.0.0.0/24"), attrs(690), false},
		{"minlen-hit", Match{MinLen: 24}, pfx("10.0.0.0/24"), attrs(690), true},
		{"maxlen", Match{MaxLen: 16}, pfx("10.0.0.0/24"), attrs(690), false},
		{"path-hit", Match{PathContains: 237}, pfx("10.0.0.0/8"), attrs(690, 237), true},
		{"path-miss", Match{PathContains: 7}, pfx("10.0.0.0/8"), attrs(690, 237), false},
		{"origin-hit", Match{OriginAS: 237}, pfx("10.0.0.0/8"), attrs(690, 237), true},
		{"origin-miss", Match{OriginAS: 690}, pfx("10.0.0.0/8"), attrs(690, 237), false},
		{"origin-empty-path", Match{OriginAS: 690}, pfx("10.0.0.0/8"), bgp.Attrs{}, false},
		{"maxpathlen", Match{MaxPathLen: 1}, pfx("10.0.0.0/8"), attrs(690, 237), false},
		{"maxpathlen-hit", Match{MaxPathLen: 2}, pfx("10.0.0.0/8"), attrs(690, 237), true},
	}
	for _, c := range cases {
		if got := c.m.Matches(c.prefix, c.attrs); got != c.want {
			t.Errorf("%s: got %v", c.name, got)
		}
	}
	withCommunity := attrs(690)
	withCommunity.Communities = []bgp.Community{42}
	if !(Match{HasCommunity: 42}).Matches(pfx("10.0.0.0/8"), withCommunity) {
		t.Error("community match failed")
	}
	if (Match{HasCommunity: 7}).Matches(pfx("10.0.0.0/8"), withCommunity) {
		t.Error("community mismatch accepted")
	}
}

func TestActions(t *testing.T) {
	lp, med := uint32(200), uint32(50)
	p := &Policy{Rules: []Rule{{
		Match: Match{},
		Action: Action{
			SetLocalPref: &lp, SetMED: &med,
			AddCommunity: bgp.Community(690<<16 | 100),
			Prepend:      2, PrependAS: 690,
		},
	}}}
	got, ok := p.Apply(pfx("35.0.0.0/8"), attrs(690, 237))
	if !ok {
		t.Fatal("rejected")
	}
	if !got.HasLocalPref || got.LocalPref != 200 || !got.HasMED || got.MED != 50 {
		t.Fatalf("pref/med not set: %+v", got)
	}
	if len(got.Communities) != 1 {
		t.Fatalf("communities %v", got.Communities)
	}
	if got.Path.Key() != "690 690 690 237" {
		t.Fatalf("prepend: %v", got.Path)
	}
}

func TestStripCommunities(t *testing.T) {
	a := attrs(690)
	a.Communities = []bgp.Community{1, 2}
	p := &Policy{Rules: []Rule{{Action: Action{StripCommunities: true, AddCommunity: 9}}}}
	got, _ := p.Apply(pfx("35.0.0.0/8"), a)
	if len(got.Communities) != 1 || got.Communities[0] != 9 {
		t.Fatalf("communities %v", got.Communities)
	}
	if len(a.Communities) != 2 {
		t.Fatal("input mutated")
	}
}

func TestActionDoesNotMutateInput(t *testing.T) {
	a := attrs(690, 237)
	a.Communities = []bgp.Community{1}
	p := &Policy{Rules: []Rule{{Action: Action{AddCommunity: 5, Prepend: 1, PrependAS: 9}}}}
	p.Apply(pfx("35.0.0.0/8"), a)
	if a.Path.Key() != "690 237" || len(a.Communities) != 1 {
		t.Fatalf("input mutated: %v %v", a.Path, a.Communities)
	}
}

func TestPrefixLengthFilter(t *testing.T) {
	p := PrefixLengthFilter(24)
	if _, ok := p.Apply(pfx("10.0.0.0/25"), attrs(690)); ok {
		t.Fatal("/25 accepted")
	}
	if _, ok := p.Apply(pfx("10.0.0.0/24"), attrs(690)); !ok {
		t.Fatal("/24 rejected")
	}
	if _, ok := p.Apply(pfx("10.0.0.0/8"), attrs(690)); !ok {
		t.Fatal("/8 rejected")
	}
}

func TestMartianFilter(t *testing.T) {
	p := MartianFilter()
	rejected := []string{
		"10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/16", "172.16.0.0/12",
		"172.20.0.0/16", "127.0.0.0/8", "224.0.0.0/4", "0.0.0.0/0",
	}
	for _, s := range rejected {
		if _, ok := p.Apply(pfx(s), attrs(690)); ok {
			t.Errorf("martian %s accepted", s)
		}
	}
	accepted := []string{"35.0.0.0/8", "192.42.113.0/24", "141.213.0.0/16", "172.32.0.0/16"}
	for _, s := range accepted {
		if _, ok := p.Apply(pfx(s), attrs(690)); !ok {
			t.Errorf("legitimate %s rejected", s)
		}
	}
}

func TestCustomerPreference(t *testing.T) {
	p := CustomerPreference(237, 200, bgp.Community(690<<16|100))
	got, ok := p.Apply(pfx("35.0.0.0/8"), attrs(690, 237))
	if !ok || got.LocalPref != 200 || len(got.Communities) != 1 {
		t.Fatalf("customer route not preferred: %+v", got)
	}
	got, ok = p.Apply(pfx("141.213.0.0/16"), attrs(690, 1239))
	if !ok || got.HasLocalPref {
		t.Fatalf("non-customer route modified: %+v", got)
	}
}

func TestPolicyString(t *testing.T) {
	p := PrefixLengthFilter(24)
	s := p.String()
	if !strings.Contains(s, "reject-longer-than-24") || !strings.Contains(s, "default: accept") {
		t.Fatalf("render: %q", s)
	}
	p2 := &Policy{DefaultReject: true, Rules: []Rule{{}}}
	if !strings.Contains(p2.String(), "default: reject") {
		t.Fatal("default reject not rendered")
	}
}

func TestZeroMatchMatchesEverythingQuick(t *testing.T) {
	f := func(addr uint32, bits8 uint8, asns []uint16) bool {
		bits := int(bits8 % 33)
		prefix := netaddr.MustPrefix(netaddr.Addr(addr), bits)
		path := make([]bgp.ASN, len(asns))
		for i, a := range asns {
			path[i] = bgp.ASN(a)
		}
		return (Match{}).Matches(prefix, attrs(path...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPolicyApply(b *testing.B) {
	p := MartianFilter()
	a := attrs(690, 1239, 237)
	prefix := pfx("35.0.0.0/8")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Apply(prefix, a)
	}
}
