package serve

import (
	"container/list"
	"sync"
)

// resultCache holds serialized aggregate responses under a byte budget with
// LRU eviction. Keys embed the store generation they were computed under, so
// a stale entry can never be returned for a current-generation lookup; when
// the server observes a generation change it additionally sweeps the old
// entries out so the budget is not squatted by unreachable results.
type resultCache struct {
	mu   sync.Mutex
	max  int64
	size int64
	ll   *list.List // front = most recently used
	m    map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key  string
	gen  uint64
	body []byte
}

// cacheEntryOverhead approximates the bookkeeping bytes per entry (list
// element, map bucket share, entry struct) charged against the budget.
const cacheEntryOverhead = 128

func newResultCache(maxBytes int64) *resultCache {
	if maxBytes <= 0 {
		return nil // nil cache: every lookup misses, puts are dropped
	}
	return &resultCache{max: maxBytes, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) ([]byte, bool) {
	if c == nil {
		obsCacheMisses.Inc()
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		obsCacheMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	obsCacheHits.Inc()
	return el.Value.(*cacheEntry).body, true
}

func (c *resultCache) put(key string, gen uint64, body []byte) {
	if c == nil {
		return
	}
	cost := int64(len(key)+len(body)) + cacheEntryOverhead
	if cost > c.max {
		return // larger than the whole budget: not cacheable
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		old := el.Value.(*cacheEntry)
		c.size += int64(len(body)) - int64(len(old.body))
		old.body, old.gen = body, gen
		c.ll.MoveToFront(el)
	} else {
		c.m[key] = c.ll.PushFront(&cacheEntry{key: key, gen: gen, body: body})
		c.size += cost
	}
	for c.size > c.max {
		c.evictLocked(c.ll.Back())
	}
	obsCacheBytes.SetInt(c.size)
}

// dropOldGens evicts every entry not computed under gen. Called when the
// server notices the store sealed or compacted.
func (c *resultCache) dropOldGens(gen uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Back(); el != nil; {
		prev := el.Prev()
		if el.Value.(*cacheEntry).gen != gen {
			c.evictLocked(el)
		}
		el = prev
	}
	obsCacheBytes.SetInt(c.size)
}

func (c *resultCache) evictLocked(el *list.Element) {
	if el == nil {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.m, ent.key)
	c.size -= int64(len(ent.key)+len(ent.body)) + cacheEntryOverhead
	c.evictions++
	obsCacheEvictions.Inc()
}

// counts snapshots the hit/miss/eviction counters (per-cache, unlike the
// process metrics, so tests and /v1/statz see this server alone).
func (c *resultCache) counts() (hits, misses, evictions uint64, bytes int64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.size
}

// flightGroup coalesces concurrent identical computations: the first caller
// of a key runs fn, every concurrent duplicate blocks and shares the result.
// This is the request-batching stage in front of the store — a dashboard
// fleet refreshing the same panel costs one QueryParallel, not N.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	body []byte
	err  error
}

func newFlightGroup() *flightGroup { return &flightGroup{m: make(map[string]*flightCall)} }

// do runs fn under key, coalescing with any identical in-flight call.
// shared reports whether this caller piggybacked on another's computation.
func (g *flightGroup) do(key string, fn func() ([]byte, error)) (body []byte, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		obsCoalesced.Inc()
		<-c.done
		return c.body, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.body, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.body, false, c.err
}
