package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"instability/internal/faults"
	"instability/internal/obs"
	"instability/internal/store"
)

// enableTestTracing turns the process tracer on for one test and restores
// the disabled state afterwards.
func enableTestTracing(t *testing.T) {
	t.Helper()
	obs.EnableTracing(obs.TraceConfig{SampleRate: 1, SlowThreshold: -1, RingSize: 64})
	t.Cleanup(func() { obs.DefaultTracer().Disable() })
}

// findTrace polls the ring for the trace with the given ID and remoteness
// (the client and server halves of one request share an ID but are separate
// Trace objects; the server's is marked Remote).
func findTrace(t *testing.T, id uint64, remote bool) *obs.Trace {
	t.Helper()
	var found *obs.Trace
	waitFor(t, func() bool {
		for _, tr := range obs.DefaultTracer().Traces() {
			if tr.ID == id && tr.Remote == remote {
				found = tr
				return true
			}
		}
		return false
	})
	return found
}

func spanNames(tr *obs.Trace) map[string]*obs.TraceSpan {
	m := make(map[string]*obs.TraceSpan)
	for _, sp := range tr.Spans() {
		if _, ok := m[sp.Name]; !ok {
			m[sp.Name] = sp
		}
	}
	return m
}

func hasIntAttr(sp *obs.TraceSpan, key string) (int64, bool) {
	for _, a := range sp.Attrs() {
		if a.Key == key && a.IsInt {
			return a.Int, true
		}
	}
	return 0, false
}

// TestTracePropagationBinary is the tentpole acceptance over the binary
// protocol: one traced remote query produces a client trace and a server
// trace sharing one trace ID, the server root hangs off the client's
// remote_query span, the admission/cache/scan/encode stages appear as
// children, and the store_scan span carries the EXPLAIN counters that also
// ride back on the end frame.
func TestTracePropagationBinary(t *testing.T) {
	enableTestTracing(t)
	st := newTestStore(t, 300, store.Options{})
	srv := startServer(t, Options{Store: st, SlowQuery: -1})

	ctx, root := obs.DefaultTracer().Start(context.Background(), "client")
	c := &Client{Addr: srv.Addr().String()}
	rr, err := c.QueryCtx(ctx, QuerySpec{Peer: "690"})
	if err != nil {
		t.Fatal(err)
	}
	recs := drainRemote(t, rr)
	ex := rr.Explain()
	if ex == nil {
		t.Fatal("end frame carried no EXPLAIN profile")
	}
	if ex.RecordsMatched != len(recs) {
		t.Fatalf("EXPLAIN records_matched %d, streamed %d", ex.RecordsMatched, len(recs))
	}
	if ex.SegmentsTotal == 0 || ex.BlocksScanned == 0 || ex.BytesReadDisk == 0 {
		t.Fatalf("EXPLAIN not populated: %+v", *ex)
	}
	root.Finish()

	clientTr := findTrace(t, root.TraceID(), false)
	serverTr := findTrace(t, root.TraceID(), true)

	rq, ok := spanNames(clientTr)["remote_query"]
	if !ok {
		t.Fatal("client trace has no remote_query span")
	}
	if serverTr.Root().Name != "serve_query" || serverTr.Root().Parent != rq.ID {
		t.Fatalf("server root %q parent %x, want serve_query under client span %x",
			serverTr.Root().Name, serverTr.Root().Parent, rq.ID)
	}
	names := spanNames(serverTr)
	for _, want := range []string{"admission", "cache", "scan", "encode", "store_scan"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("server trace missing %q span (have %v)", want, keys(names))
		}
	}
	if matched, ok := hasIntAttr(names["store_scan"], "records_matched"); !ok || matched != int64(len(recs)) {
		t.Fatalf("store_scan records_matched = %d/%v, want %d", matched, ok, len(recs))
	}
	// Every span's parent resolves inside its own trace (the root's parent is
	// the remote client span).
	ids := map[uint64]bool{serverTr.Root().Parent: true}
	for _, sp := range serverTr.Spans() {
		ids[sp.ID] = true
	}
	for _, sp := range serverTr.Spans() {
		if !ids[sp.Parent] {
			t.Fatalf("span %q has dangling parent %x", sp.Name, sp.Parent)
		}
	}
}

// TestTracePropagationHTTP covers the header-propagated protocol: the
// aggregate path joins via X-Irtl-Trace and shows cache and scan children,
// and a repeat query is answered from the cache inside the same trace shape.
func TestTracePropagationHTTP(t *testing.T) {
	enableTestTracing(t)
	st := newTestStore(t, 300, store.Options{})
	srv := startServer(t, Options{Store: st, CacheBytes: 1 << 20, SlowQuery: -1})
	c := &Client{Addr: srv.Addr().String()}

	ctx, root := obs.DefaultTracer().Start(context.Background(), "dashboard")
	if _, err := c.AggregateCtx(ctx, KindClasses, QuerySpec{}, 0); err != nil {
		t.Fatal(err)
	}
	root.Finish()

	clientTr := findTrace(t, root.TraceID(), false)
	serverTr := findTrace(t, root.TraceID(), true)
	ra, ok := spanNames(clientTr)["remote_aggregate"]
	if !ok {
		t.Fatal("client trace has no remote_aggregate span")
	}
	if serverTr.Root().Name != "serve_aggregate" || serverTr.Root().Parent != ra.ID {
		t.Fatalf("server root %q parent %x, want serve_aggregate under %x",
			serverTr.Root().Name, serverTr.Root().Parent, ra.ID)
	}
	names := spanNames(serverTr)
	for _, want := range []string{"admission", "cache", "scan", "store_scan"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("aggregate trace missing %q span (have %v)", want, keys(names))
		}
	}

	// Repeat: the cache answers; the trace still shows the cache stage, now a
	// hit, with no scan beneath it.
	ctx2, root2 := obs.DefaultTracer().Start(context.Background(), "dashboard")
	if _, err := c.AggregateCtx(ctx2, KindClasses, QuerySpec{}, 0); err != nil {
		t.Fatal(err)
	}
	root2.Finish()
	hitTr := findTrace(t, root2.TraceID(), true)
	hitNames := spanNames(hitTr)
	csp, ok := hitNames["cache"]
	if !ok {
		t.Fatal("cached aggregate trace has no cache span")
	}
	hit := false
	for _, a := range csp.Attrs() {
		if a.Key == "result" && a.Str == "hit" {
			hit = true
		}
	}
	if !hit {
		t.Fatal("repeat aggregate's cache span not annotated result=hit")
	}
	if _, ok := hitNames["store_scan"]; ok {
		t.Fatal("cache hit still scanned the store")
	}

	// The NDJSON record stream propagates the same way.
	ctx3, root3 := obs.DefaultTracer().Start(context.Background(), "curl")
	if _, err := c.QueryHTTPCtx(ctx3, QuerySpec{Peer: "690"}); err != nil {
		t.Fatal(err)
	}
	root3.Finish()
	recTr := findTrace(t, root3.TraceID(), true)
	if recTr.Root().Name != "serve_query" || recTr.Root().Parent != root3.SpanID() {
		t.Fatalf("records trace root %q parent %x, want serve_query under %x",
			recTr.Root().Name, recTr.Root().Parent, root3.SpanID())
	}
}

// TestTraceChaos: with fault injection flipping read bytes, traces stay
// well-formed and the quarantined blocks surface as EXPLAIN counters and
// span annotations.
func TestTraceChaos(t *testing.T) {
	enableTestTracing(t)
	plan, err := faults.ParseSpec("seed=7,flipreadp=0.02")
	if err != nil {
		t.Fatal(err)
	}
	st := newTestStore(t, 600, store.Options{FS: faults.NewInjector(faults.Disk{}, plan)})
	srv := startServer(t, Options{Store: st, SlowQuery: -1})
	c := &Client{Addr: srv.Addr().String()}

	quarantined := 0
	var traceIDs []uint64
	for i := 0; i < 8; i++ {
		ctx, root := obs.DefaultTracer().Start(context.Background(), "chaos-client")
		rr, err := c.QueryCtx(ctx, QuerySpec{})
		if err != nil {
			t.Fatal(err)
		}
		drainRemote(t, rr)
		if ex := rr.Explain(); ex != nil {
			quarantined += ex.BlocksQuarantined
		}
		root.Finish()
		traceIDs = append(traceIDs, root.TraceID())
	}
	if quarantined == 0 {
		t.Fatal("chaos plan produced no quarantined blocks; raise flipreadp")
	}

	sawQuarantineNote := false
	for _, id := range traceIDs {
		tr := findTrace(t, id, true)
		ids := map[uint64]bool{tr.Root().Parent: true}
		for _, sp := range tr.Spans() {
			ids[sp.ID] = true
		}
		for _, sp := range tr.Spans() {
			if !ids[sp.Parent] {
				t.Fatalf("chaos trace %x: span %q dangling parent", id, sp.Name)
			}
			for _, a := range sp.Attrs() {
				if a.Key == "quarantined_block" {
					sawQuarantineNote = true
				}
			}
		}
	}
	if !sawQuarantineNote {
		t.Fatal("no segment span annotated a quarantined block")
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the slow-query
// log while requests are still completing.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestSlowQueryLog: with a nanosecond threshold every request emits one
// parseable NDJSON profile line with stage timings and the EXPLAIN payload,
// and /v1/statz surfaces the same profiles as recent queries.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	st := newTestStore(t, 300, store.Options{})
	srv := startServer(t, Options{
		Store:        st,
		CacheBytes:   1 << 20,
		SlowQuery:    time.Nanosecond,
		SlowQueryLog: &buf,
	})
	c := &Client{Addr: srv.Addr().String(), Token: "batch"}

	rr, err := c.Query(QuerySpec{Peer: "690"})
	if err != nil {
		t.Fatal(err)
	}
	recs := drainRemote(t, rr)
	if _, err := c.Aggregate(KindClasses, QuerySpec{}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Aggregate(KindClasses, QuerySpec{}, 0); err != nil { // cache hit
		t.Fatal(err)
	}

	var lines []string
	waitFor(t, func() bool {
		lines = nonEmptyLines(buf.String())
		return len(lines) >= 3
	})

	var profiles []QueryProfile
	for _, line := range lines {
		var p QueryProfile
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("slow-query line does not parse: %v\n%s", err, line)
		}
		profiles = append(profiles, p)
	}
	bin := profiles[0]
	if bin.Proto != "binary" || bin.Kind != "records" || bin.Query != "peer=690" {
		t.Fatalf("binary profile: %+v", bin)
	}
	if bin.DurationMs <= 0 || bin.Records != len(recs) {
		t.Fatalf("binary profile counters: %+v", bin)
	}
	for _, stage := range []string{"admission", "scan", "encode"} {
		if _, ok := bin.Stages[stage]; !ok {
			t.Fatalf("binary profile missing stage %q: %v", stage, bin.Stages)
		}
	}
	if bin.Explain == nil || bin.Explain.RecordsMatched != len(recs) {
		t.Fatalf("binary profile EXPLAIN: %+v", bin.Explain)
	}
	agg1, agg2 := profiles[1], profiles[2]
	if agg1.Kind != KindClasses || agg1.CacheHit || agg1.Explain == nil {
		t.Fatalf("first aggregate profile: %+v", agg1)
	}
	if !agg2.CacheHit {
		t.Fatalf("repeat aggregate profile not marked cache_hit: %+v", agg2)
	}

	stz, err := c.Statz()
	if err != nil {
		t.Fatal(err)
	}
	if len(stz.RecentQueries) < 3 {
		t.Fatalf("statz retains %d recent queries, want >= 3", len(stz.RecentQueries))
	}
	// Newest first: the cache-hit aggregate leads.
	if !stz.RecentQueries[0].CacheHit {
		t.Fatalf("recent queries not newest-first: %+v", stz.RecentQueries[0])
	}
}

// TestCacheEvictionAccounting pins the eviction counters and the byte gauge:
// LRU eviction under the budget and generation sweeps both count, and the
// size returns to zero when everything is swept.
func TestCacheEvictionAccounting(t *testing.T) {
	body := bytes.Repeat([]byte("x"), 256)
	c := newResultCache(3 * (256 + 8 + cacheEntryOverhead))
	c.put("gen1|a", 1, body)
	c.put("gen1|b", 1, body)
	c.put("gen1|c", 1, body)
	if _, _, ev, _ := c.counts(); ev != 0 {
		t.Fatalf("evictions before overflow: %d", ev)
	}
	c.put("gen1|d", 1, body) // budget overflow: LRU (a) goes
	if _, ok := c.get("gen1|a"); ok {
		t.Fatal("LRU entry survived overflow")
	}
	_, _, ev, size := c.counts()
	if ev != 1 {
		t.Fatalf("evictions after overflow: %d, want 1", ev)
	}
	if size <= 0 {
		t.Fatalf("cache size %d after puts", size)
	}
	c.put("gen2|e", 2, body)
	c.dropOldGens(2) // generation sweep: every gen-1 entry goes
	if _, ok := c.get("gen2|e"); !ok {
		t.Fatal("current-generation entry swept")
	}
	_, _, ev2, _ := c.counts()
	if ev2 <= ev+1 {
		t.Fatalf("generation sweep evicted %d entries, want several", ev2-ev)
	}
	c.dropOldGens(3)
	if _, _, _, size := c.counts(); size != 0 {
		t.Fatalf("cache size %d after full sweep, want 0", size)
	}
}

func keys(m map[string]*obs.TraceSpan) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}
