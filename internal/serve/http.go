package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"instability/internal/detect"
	"instability/internal/obs"
	"instability/internal/store"
)

// HTTP surface:
//
//	GET /v1/records?from=&to=&peer=&origin=&prefix=&type=&limit=
//	    stream matching records as NDJSON (one RecordJSON per line)
//	GET /v1/aggregate?kind=classes|daily|top_origins|peer_matrix&top=K&...
//	    cached aggregate as one JSON document
//	GET /v1/statz   store + serving-plane status
//	GET /healthz    liveness
//
// The API token rides in "Authorization: Bearer <token>" or "X-Irtl-Token".
// Shed requests answer 429 with a JSON body naming the reason, matching the
// binary protocol's busy/quota error frames.

func marshalJSON(v any) ([]byte, error) { return json.Marshal(v) }

// unmarshalStrict decodes JSON rejecting unknown fields, so a typoed query
// key fails loudly instead of silently matching everything.
func unmarshalStrict(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *Server) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/records", s.handleRecords)
	mux.HandleFunc("/v1/aggregate", s.handleAggregate)
	mux.HandleFunc("/v1/statz", s.handleStatz)
	mux.HandleFunc("/v1/alerts", s.handleAlerts)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// tokenOf extracts the API token identifying the tenant.
func tokenOf(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
		return strings.TrimPrefix(auth, "Bearer ")
	}
	if tok := r.Header.Get("X-Irtl-Token"); tok != "" {
		return tok
	}
	return r.URL.Query().Get("token")
}

// specOf builds a QuerySpec from URL parameters (same names as the CLI
// flags).
func specOf(r *http.Request) (QuerySpec, error) {
	v := r.URL.Query()
	spec := QuerySpec{
		From:   v.Get("from"),
		To:     v.Get("to"),
		Peer:   v.Get("peer"),
		Origin: v.Get("origin"),
		Prefix: v.Get("prefix"),
		Type:   v.Get("type"),
	}
	if l := v.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 {
			return spec, fmt.Errorf("serve: bad limit %q", l)
		}
		spec.Limit = n
	}
	return spec, nil
}

// httpError writes a JSON error body with the right status: 429 for sheds,
// 400 for bad queries, 500 otherwise.
func httpError(w http.ResponseWriter, err error) {
	we := wireError{Code: codeInternal, Msg: err.Error()}
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBusy):
		we.Code, status = codeBusy, http.StatusTooManyRequests
	case errors.Is(err, ErrQuota):
		we.Code, status = codeQuota, http.StatusTooManyRequests
	case errors.Is(err, errBadRequest):
		we.Code, status = codeBadQuery, http.StatusBadRequest
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(we)
}

// errBadRequest marks client errors (bad predicates, unknown kinds) for
// status mapping.
var errBadRequest = errors.New("serve: bad request")

func badRequest(err error) error { return fmt.Errorf("%w: %v", errBadRequest, err) }

// admitHTTP runs the shared front door for one HTTP request under an
// "admission" child span, recording per-tenant metrics and the stage time on
// the profile either way.
func (s *Server) admitHTTP(ctx context.Context, prof *QueryProfile, r *http.Request) (release func(), lat *obs.Histogram, err error) {
	token := tokenOf(r)
	tenant := tenantLabel(s.opts.Quotas, token)
	prof.Tenant = tenant
	reqs, lat := requestMetrics(tenant, "http")
	reqs.Inc()
	ta := time.Now()
	_, asp := obs.StartChild(ctx, "admission")
	asp.AnnotateInt("queue_depth", s.adm.queueDepth())
	release, err = s.adm.admit(token, s.closed)
	asp.SetError(err)
	asp.Finish()
	prof.addStage("admission", time.Since(ta))
	return release, lat, err
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	ctx, root := obs.DefaultTracer().JoinHeader(r.Context(), "serve_query", r.Header.Get(obs.TraceHeader))
	root.Annotate("proto", "http")
	prof := &QueryProfile{Proto: "http", Kind: "records"}
	if root != nil {
		prof.TraceID = fmt.Sprintf("%016x", root.TraceID())
	}
	defer func() {
		root.Finish()
		s.profiles.record(prof, t0)
	}()

	release, lat, err := s.admitHTTP(ctx, prof, r)
	if err != nil {
		prof.setError(err)
		root.SetError(err)
		httpError(w, err)
		return
	}
	defer release()
	defer func() { lat.ObserveSince(t0) }()

	spec, err := specOf(r)
	if err != nil {
		prof.setError(err)
		root.SetError(err)
		httpError(w, badRequest(err))
		return
	}
	prof.Query = spec.String()
	root.Annotate("query", spec.String())
	q, err := spec.Parse()
	if err != nil {
		prof.setError(err)
		root.SetError(err)
		httpError(w, badRequest(err))
		return
	}
	span := obs.StartSpan("serve_query")
	defer span.End()

	// Record streams bypass the cache; the span records the decision.
	_, csp := obs.StartChild(ctx, "cache")
	csp.Annotate("result", "uncacheable_stream")
	csp.Finish()

	ts := time.Now()
	sctx, ssp := obs.StartChild(ctx, "scan")
	rd, err := s.st.QueryParallelCtx(sctx, q, s.opts.Workers)
	if err != nil {
		ssp.SetError(err)
		ssp.Finish()
		prof.addStage("scan", time.Since(ts))
		prof.setError(err)
		root.SetError(err)
		httpError(w, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.Header().Set("Irtl-Generation", strconv.FormatUint(s.generation(), 10))
	te := time.Now()
	_, esp := obs.StartChild(ctx, "encode")
	enc := json.NewEncoder(w)
	sent := 0
loop:
	for {
		select {
		case <-s.closed:
			break loop // flush what we have; the client sees a truncated stream
		default:
		}
		rec, nerr := rd.Next()
		if nerr != nil {
			// io.EOF is the clean end; a partial-scan error after records
			// have been streamed can only be reported by ending the body.
			break
		}
		rj, jerr := ToJSON(rec)
		if jerr != nil {
			break
		}
		if enc.Encode(rj) != nil {
			break // client went away
		}
		sent++
		obsRecordsStreamed.Inc()
		if spec.Limit > 0 && sent >= spec.Limit {
			break
		}
	}
	esp.AnnotateInt("records", int64(sent))
	esp.Finish()
	prof.addStage("encode", time.Since(te))
	span.Add(int64(sent))
	prof.Records = sent

	rd.Close() // finishes the store_scan span with the EXPLAIN profile
	ex := rd.Explain()
	prof.Explain = &ex
	ssp.Finish()
	prof.addStage("scan", time.Since(ts))
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	ctx, root := obs.DefaultTracer().JoinHeader(r.Context(), "serve_aggregate", r.Header.Get(obs.TraceHeader))
	root.Annotate("proto", "http")
	prof := &QueryProfile{Proto: "http"}
	if root != nil {
		prof.TraceID = fmt.Sprintf("%016x", root.TraceID())
	}
	defer func() {
		root.Finish()
		s.profiles.record(prof, t0)
	}()

	release, lat, err := s.admitHTTP(ctx, prof, r)
	if err != nil {
		prof.setError(err)
		root.SetError(err)
		httpError(w, err)
		return
	}
	defer release()
	defer func() { lat.ObserveSince(t0) }()

	kind := r.URL.Query().Get("kind")
	if kind == "" {
		kind = KindClasses
	}
	prof.Kind = kind
	root.Annotate("kind", kind)
	top := 0
	if ts := r.URL.Query().Get("top"); ts != "" {
		if top, err = strconv.Atoi(ts); err != nil || top < 0 {
			err = badRequest(fmt.Errorf("bad top %q", ts))
			prof.setError(err)
			root.SetError(err)
			httpError(w, err)
			return
		}
	}
	spec, err := specOf(r)
	if err != nil {
		prof.setError(err)
		root.SetError(err)
		httpError(w, badRequest(err))
		return
	}
	prof.Query = spec.String()
	root.Annotate("query", spec.String())
	q, err := spec.Parse()
	if err != nil {
		prof.setError(err)
		root.SetError(err)
		httpError(w, badRequest(err))
		return
	}
	if !validKind(kind) {
		err = badRequest(fmt.Errorf("unknown kind %q (want %v)", kind, Kinds()))
		prof.setError(err)
		root.SetError(err)
		httpError(w, err)
		return
	}
	body, err := s.aggregate(ctx, prof, kind, top, q)
	if err != nil {
		prof.setError(err)
		root.SetError(err)
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(body)
}

func validKind(kind string) bool {
	for _, k := range Kinds() {
		if k == kind {
			return true
		}
	}
	return false
}

// Statz is the /v1/statz document.
type Statz struct {
	Store          store.Stats `json:"store"`
	Generation     uint64      `json:"generation"`
	ActiveSessions int64       `json:"active_sessions"`
	QueueDepth     int64       `json:"queue_depth"`
	CacheHits      uint64      `json:"cache_hits"`
	CacheMisses    uint64      `json:"cache_misses"`
	CacheEvictions uint64      `json:"cache_evictions"`
	CacheBytes     int64       `json:"cache_bytes"`
	// BlockCache is the store's shared decompressed-block cache (distinct
	// from the aggregate result cache the fields above describe).
	BlockCache    store.BlockCacheStats `json:"block_cache"`
	Quotas        string                `json:"quotas"`
	RecentQueries []QueryProfile        `json:"recent_queries,omitempty"`
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	hits, misses, evictions, bytes := s.cache.counts()
	st := s.st.Stats()
	doc := Statz{
		Store:          st,
		Generation:     s.generation(),
		ActiveSessions: s.ActiveSessions(),
		QueueDepth:     s.adm.queueDepth(),
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheEvictions: evictions,
		CacheBytes:     bytes,
		BlockCache:     st.BlockCache,
		Quotas:         quotasString(s.opts.Quotas, s.opts.DefaultQuota),
		RecentQueries:  s.profiles.recent(),
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(doc)
}

// AlertsDoc is the /v1/alerts response: the detector's anomaly episodes,
// live ones first when a live detector is wired, then whatever the alert
// sidecar log holds.
type AlertsDoc struct {
	Alerts []detect.Alert `json:"alerts"`
	// Source notes where the alerts came from: "live", "log", "live+log",
	// or "none" when the server has no detector wired at all.
	Source string `json:"source"`
}

// handleAlerts serves the detector's alert stream: the live detector
// callback when the serving process hosts one, the alert sidecar log when an
// ingest process wrote one, or both.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	doc := AlertsDoc{Alerts: []detect.Alert{}, Source: "none"}
	if s.opts.Alerts != nil {
		doc.Alerts = append(doc.Alerts, s.opts.Alerts()...)
		doc.Source = "live"
	}
	if s.opts.AlertLog != "" {
		n, err := store.ReadSidecarLog(s.opts.AlertLog, func(payload []byte) error {
			var a detect.Alert
			if err := json.Unmarshal(payload, &a); err != nil {
				return err
			}
			doc.Alerts = append(doc.Alerts, a)
			return nil
		})
		if err != nil {
			http.Error(w, fmt.Sprintf("alert log: %v", err), http.StatusInternalServerError)
			return
		}
		_ = n
		if doc.Source == "live" {
			doc.Source = "live+log"
		} else {
			doc.Source = "log"
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(doc)
}
