package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"instability/internal/obs"
	"instability/internal/store"
)

// HTTP surface:
//
//	GET /v1/records?from=&to=&peer=&origin=&prefix=&type=&limit=
//	    stream matching records as NDJSON (one RecordJSON per line)
//	GET /v1/aggregate?kind=classes|daily|top_origins|peer_matrix&top=K&...
//	    cached aggregate as one JSON document
//	GET /v1/statz   store + serving-plane status
//	GET /healthz    liveness
//
// The API token rides in "Authorization: Bearer <token>" or "X-Irtl-Token".
// Shed requests answer 429 with a JSON body naming the reason, matching the
// binary protocol's busy/quota error frames.

func marshalJSON(v any) ([]byte, error) { return json.Marshal(v) }

// unmarshalStrict decodes JSON rejecting unknown fields, so a typoed query
// key fails loudly instead of silently matching everything.
func unmarshalStrict(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *Server) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/records", s.handleRecords)
	mux.HandleFunc("/v1/aggregate", s.handleAggregate)
	mux.HandleFunc("/v1/statz", s.handleStatz)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// tokenOf extracts the API token identifying the tenant.
func tokenOf(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
		return strings.TrimPrefix(auth, "Bearer ")
	}
	if tok := r.Header.Get("X-Irtl-Token"); tok != "" {
		return tok
	}
	return r.URL.Query().Get("token")
}

// specOf builds a QuerySpec from URL parameters (same names as the CLI
// flags).
func specOf(r *http.Request) (QuerySpec, error) {
	v := r.URL.Query()
	spec := QuerySpec{
		From:   v.Get("from"),
		To:     v.Get("to"),
		Peer:   v.Get("peer"),
		Origin: v.Get("origin"),
		Prefix: v.Get("prefix"),
		Type:   v.Get("type"),
	}
	if l := v.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 {
			return spec, fmt.Errorf("serve: bad limit %q", l)
		}
		spec.Limit = n
	}
	return spec, nil
}

// httpError writes a JSON error body with the right status: 429 for sheds,
// 400 for bad queries, 500 otherwise.
func httpError(w http.ResponseWriter, err error) {
	we := wireError{Code: codeInternal, Msg: err.Error()}
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBusy):
		we.Code, status = codeBusy, http.StatusTooManyRequests
	case errors.Is(err, ErrQuota):
		we.Code, status = codeQuota, http.StatusTooManyRequests
	case errors.Is(err, errBadRequest):
		we.Code, status = codeBadQuery, http.StatusBadRequest
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(we)
}

// errBadRequest marks client errors (bad predicates, unknown kinds) for
// status mapping.
var errBadRequest = errors.New("serve: bad request")

func badRequest(err error) error { return fmt.Errorf("%w: %v", errBadRequest, err) }

// admitHTTP runs the shared front door for one HTTP request and returns the
// release func, recording per-tenant metrics either way.
func (s *Server) admitHTTP(r *http.Request) (release func(), lat *obs.Histogram, err error) {
	token := tokenOf(r)
	tenant := tenantLabel(s.opts.Quotas, token)
	reqs, lat := requestMetrics(tenant, "http")
	reqs.Inc()
	release, err = s.adm.admit(token, s.closed)
	return release, lat, err
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	release, lat, err := s.admitHTTP(r)
	if err != nil {
		httpError(w, err)
		return
	}
	defer release()
	defer func() { lat.ObserveSince(t0) }()

	spec, err := specOf(r)
	if err != nil {
		httpError(w, badRequest(err))
		return
	}
	q, err := spec.Parse()
	if err != nil {
		httpError(w, badRequest(err))
		return
	}
	span := obs.StartSpan("serve_query")
	defer span.End()
	rd, err := s.st.QueryParallel(q, s.opts.Workers)
	if err != nil {
		httpError(w, err)
		return
	}
	defer rd.Close()

	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.Header().Set("Irtl-Generation", strconv.FormatUint(s.generation(), 10))
	enc := json.NewEncoder(w)
	sent := 0
	for {
		select {
		case <-s.closed:
			return // flush what we have; the client sees a truncated stream
		default:
		}
		rec, nerr := rd.Next()
		if nerr != nil {
			// io.EOF is the clean end; a partial-scan error after records
			// have been streamed can only be reported by ending the body.
			break
		}
		rj, jerr := ToJSON(rec)
		if jerr != nil {
			break
		}
		if enc.Encode(rj) != nil {
			return // client went away
		}
		sent++
		obsRecordsStreamed.Inc()
		if spec.Limit > 0 && sent >= spec.Limit {
			break
		}
	}
	span.Add(int64(sent))
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	release, lat, err := s.admitHTTP(r)
	if err != nil {
		httpError(w, err)
		return
	}
	defer release()
	defer func() { lat.ObserveSince(t0) }()

	kind := r.URL.Query().Get("kind")
	if kind == "" {
		kind = KindClasses
	}
	top := 0
	if ts := r.URL.Query().Get("top"); ts != "" {
		if top, err = strconv.Atoi(ts); err != nil || top < 0 {
			httpError(w, badRequest(fmt.Errorf("bad top %q", ts)))
			return
		}
	}
	spec, err := specOf(r)
	if err != nil {
		httpError(w, badRequest(err))
		return
	}
	q, err := spec.Parse()
	if err != nil {
		httpError(w, badRequest(err))
		return
	}
	if !validKind(kind) {
		httpError(w, badRequest(fmt.Errorf("unknown kind %q (want %v)", kind, Kinds())))
		return
	}
	body, err := s.aggregate(kind, top, q)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(body)
}

func validKind(kind string) bool {
	for _, k := range Kinds() {
		if k == kind {
			return true
		}
	}
	return false
}

// Statz is the /v1/statz document.
type Statz struct {
	Store          store.Stats `json:"store"`
	Generation     uint64      `json:"generation"`
	ActiveSessions int64       `json:"active_sessions"`
	CacheHits      uint64      `json:"cache_hits"`
	CacheMisses    uint64      `json:"cache_misses"`
	CacheEvictions uint64      `json:"cache_evictions"`
	CacheBytes     int64       `json:"cache_bytes"`
	Quotas         string      `json:"quotas"`
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	hits, misses, evictions, bytes := s.cache.counts()
	st := s.st.Stats()
	doc := Statz{
		Store:          st,
		Generation:     s.generation(),
		ActiveSessions: s.ActiveSessions(),
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheEvictions: evictions,
		CacheBytes:     bytes,
		Quotas:         quotasString(s.opts.Quotas, s.opts.DefaultQuota),
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(doc)
}
