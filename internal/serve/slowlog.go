package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"instability/internal/store"
)

// The slow-query log: every request builds a QueryProfile — trace ID,
// tenant, query key, per-stage millis, and the store's EXPLAIN counters —
// and profiles whose total duration crosses the server's threshold are
// emitted as one NDJSON line each, so "why was this query slow" is
// answerable from the log alone, without a tracing UI. The most recent
// profiles (slow or not) are also retained in a small ring surfaced by
// /v1/statz, giving operators a live recent-queries view.

// QueryProfile is one request's attribution record. Stage timing is measured
// directly in the handlers (plain clock deltas), so profiles work even with
// tracing disabled; TraceID is present when a trace was active.
type QueryProfile struct {
	Time       string             `json:"time"`
	TraceID    string             `json:"trace_id,omitempty"`
	Tenant     string             `json:"tenant"`
	Proto      string             `json:"proto"` // "binary" or "http"
	Kind       string             `json:"kind"`  // "records" or an aggregate kind
	Query      string             `json:"query"`
	DurationMs float64            `json:"duration_ms"`
	Stages     map[string]float64 `json:"stages_ms,omitempty"`
	Records    int                `json:"records,omitempty"`
	CacheHit   bool               `json:"cache_hit,omitempty"`
	Coalesced  bool               `json:"coalesced,omitempty"`
	Explain    *store.Explain     `json:"explain,omitempty"`
	Err        string             `json:"error,omitempty"`
}

// addStage records one stage's wall time in milliseconds.
func (p *QueryProfile) addStage(name string, d time.Duration) {
	if p.Stages == nil {
		p.Stages = make(map[string]float64, 4)
	}
	p.Stages[name] += float64(d) / float64(time.Millisecond)
}

// setError records err on the profile; nil is a no-op.
func (p *QueryProfile) setError(err error) {
	if err != nil {
		p.Err = err.Error()
	}
}

// profileRecent is how many finished profiles /v1/statz retains.
const profileRecent = 32

// profileLog owns the slow-query NDJSON writer and the recent-profiles ring.
type profileLog struct {
	threshold time.Duration // emit profiles at or over this; negative = never
	mu        sync.Mutex
	w         io.Writer
	ring      [profileRecent]*QueryProfile
	next      int
}

func newProfileLog(threshold time.Duration, w io.Writer) *profileLog {
	if threshold == 0 {
		threshold = time.Second
	}
	if w == nil {
		w = os.Stderr
	}
	return &profileLog{threshold: threshold, w: w}
}

// record finishes a profile: stamps duration and time, rings it for statz,
// and emits the NDJSON line when the request was slow.
func (pl *profileLog) record(p *QueryProfile, start time.Time) {
	d := time.Since(start)
	p.DurationMs = float64(d) / float64(time.Millisecond)
	p.Time = start.UTC().Format(time.RFC3339Nano)
	slow := pl.threshold >= 0 && d >= pl.threshold
	if slow {
		obsSlowQueries.Inc()
	}
	pl.mu.Lock()
	pl.ring[pl.next] = p
	pl.next = (pl.next + 1) % profileRecent
	if slow {
		line, err := json.Marshal(p)
		if err == nil {
			fmt.Fprintf(pl.w, "%s\n", line)
		}
	}
	pl.mu.Unlock()
}

// recent returns the retained profiles, newest first.
func (pl *profileLog) recent() []QueryProfile {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	out := make([]QueryProfile, 0, profileRecent)
	for i := 1; i <= profileRecent; i++ {
		p := pl.ring[(pl.next-i+profileRecent)%profileRecent]
		if p != nil {
			out = append(out, *p)
		}
	}
	return out
}
