package serve

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Shed errors. Both mean "try again later", but they are distinguishable:
// ErrBusy is the server protecting itself (worker pool and queue full),
// ErrQuota is the tenant exceeding its own allowance while the server may be
// otherwise idle.
var (
	ErrBusy  = errors.New("serve: overloaded, request shed")
	ErrQuota = errors.New("serve: tenant quota exceeded")
)

// Quota is a per-tenant token bucket: Rate tokens per second, holding at
// most Burst. The zero Quota is unlimited.
type Quota struct {
	Rate  float64
	Burst float64
}

func (q Quota) unlimited() bool { return q.Rate <= 0 && q.Burst <= 0 }

// ParseQuotas parses the -tenant-quotas CLI spelling: a comma-separated list
// of tenant=rate:burst entries, where the tenant "*" sets the default quota
// applied to tokens not named in the list, e.g.
//
//	dashboards=50:100,batch=2:10,*=5:5
//
// An empty spec means no quotas: every tenant is unlimited.
func ParseQuotas(spec string) (map[string]Quota, Quota, error) {
	quotas := make(map[string]Quota)
	var def Quota
	if strings.TrimSpace(spec) == "" {
		return quotas, def, nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, def, fmt.Errorf("serve: bad quota %q (want tenant=rate:burst)", part)
		}
		rs, bs, ok := strings.Cut(val, ":")
		if !ok {
			return nil, def, fmt.Errorf("serve: bad quota %q (want tenant=rate:burst)", part)
		}
		rate, err := strconv.ParseFloat(rs, 64)
		if err != nil || rate <= 0 {
			return nil, def, fmt.Errorf("serve: bad quota rate in %q", part)
		}
		burst, err := strconv.ParseFloat(bs, 64)
		if err != nil || burst < 1 {
			return nil, def, fmt.Errorf("serve: bad quota burst in %q", part)
		}
		q := Quota{Rate: rate, Burst: burst}
		if name == "*" {
			def = q
		} else {
			quotas[name] = q
		}
	}
	return quotas, def, nil
}

// String renders the quota table back into the CLI spelling, sorted for
// deterministic display.
func quotasString(quotas map[string]Quota, def Quota) string {
	names := make([]string, 0, len(quotas))
	for n := range quotas {
		names = append(names, n)
	}
	sort.Strings(names)
	var parts []string
	for _, n := range names {
		q := quotas[n]
		parts = append(parts, fmt.Sprintf("%s=%g:%g", n, q.Rate, q.Burst))
	}
	if !def.unlimited() {
		parts = append(parts, fmt.Sprintf("*=%g:%g", def.Rate, def.Burst))
	}
	if len(parts) == 0 {
		return "unlimited"
	}
	return strings.Join(parts, ",")
}

// bucket is one tenant's token bucket, lazily refilled on take.
type bucket struct {
	tokens float64
	last   time.Time
}

// admission is the front door: a bounded worker pool (slots), a bounded wait
// queue in front of it, and per-tenant token buckets. A request is admitted
// when it holds both a token and a slot; it is shed immediately — never
// hung — when the queue is full, the wait times out, or its tenant bucket is
// empty.
type admission struct {
	slots     chan struct{}
	maxQueue  int64
	queueWait time.Duration
	queued    atomic.Int64
	active    atomic.Int64

	mu      sync.Mutex
	now     func() time.Time
	quotas  map[string]Quota
	def     Quota
	buckets map[string]*bucket
}

func newAdmission(maxSessions, maxQueue int, queueWait time.Duration, quotas map[string]Quota, def Quota, now func() time.Time) *admission {
	if maxSessions < 1 {
		maxSessions = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	if queueWait <= 0 {
		queueWait = 2 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	if quotas == nil {
		quotas = make(map[string]Quota)
	}
	return &admission{
		slots:     make(chan struct{}, maxSessions),
		maxQueue:  int64(maxQueue),
		queueWait: queueWait,
		now:       now,
		quotas:    quotas,
		def:       def,
		buckets:   make(map[string]*bucket),
	}
}

// queueDepth reports requests currently waiting for a worker slot (trace
// annotation and statz).
func (a *admission) queueDepth() int64 { return a.queued.Load() }

// quotaFor returns the quota applied to a token.
func (a *admission) quotaFor(token string) Quota {
	if q, ok := a.quotas[token]; ok {
		return q
	}
	return a.def
}

// takeToken draws one token from the tenant's bucket, refilling it by the
// time elapsed since the last draw. It reports false when the bucket is dry.
func (a *admission) takeToken(token string) bool {
	q := a.quotaFor(token)
	if q.unlimited() {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[token]
	now := a.now()
	if b == nil {
		b = &bucket{tokens: q.Burst, last: now}
		a.buckets[token] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * q.Rate
		if b.tokens > q.Burst {
			b.tokens = q.Burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// admit gates one request: quota first (cheap, per-tenant), then a worker
// slot, queueing up to maxQueue waiters for at most queueWait. On success it
// returns a release func that must be called exactly once.
func (a *admission) admit(token string, closed <-chan struct{}) (release func(), err error) {
	if !a.takeToken(token) {
		obsShedQuota.Inc()
		return nil, ErrQuota
	}
	grant := func() func() {
		a.active.Add(1)
		obsSessions.Inc()
		var once sync.Once
		return func() {
			once.Do(func() {
				<-a.slots
				a.active.Add(-1)
				obsSessions.Dec()
			})
		}
	}
	// Fast path: a free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		return grant(), nil
	default:
	}
	// Queue-depth shed: beyond maxQueue waiters the server is past the point
	// where waiting helps anyone; fail fast instead of building a convoy.
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		obsShedQueue.Inc()
		return nil, ErrBusy
	}
	defer a.queued.Add(-1)
	t := time.NewTimer(a.queueWait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return grant(), nil
	case <-t.C:
		obsShedQueue.Inc()
		return nil, ErrBusy
	case <-closed:
		obsShedShutdown.Inc()
		return nil, ErrBusy
	}
}
