// Package serve is the multi-tenant query/serving plane over the store: a
// long-running network service that turns the embedded, one-process irtlstore
// into something a dashboard fleet can hammer.
//
// One listener speaks two protocols — HTTP/JSON for browsers, dashboards,
// and curl, and a length-prefixed binary protocol (reusing the store's
// record codec) for the analysis CLIs — told apart by the first bytes of
// each connection. Every request passes through the same read path:
//
//	admission (worker pool + queue shed + per-tenant token buckets)
//	  → batcher (singleflight coalescing of identical in-flight aggregates)
//	    → result cache (generation-keyed, byte-budgeted LRU)
//	      → store (QueryParallel, predicate pushdown, ordered merge)
//
// Aggregate answers (class totals, daily series, top origins, the per-peer
// density matrix) are cached under the store's segment-set generation, so a
// hot dashboard panel is served from memory until a seal or compaction
// actually changes the data — never after. Record streams are never cached;
// they stream block by block from the store's merge reader. Every stage
// publishes irtl_serve_* metrics through internal/obs.
package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"instability/internal/collector"
	"instability/internal/detect"
	"instability/internal/obs"
	"instability/internal/store"
)

// Options configures a Server. Store is required; everything else defaults.
type Options struct {
	// Store is the open store being served. The server does not close it;
	// the owning process does, once, after the server has drained.
	Store *store.Store
	// MaxSessions bounds concurrently executing reader sessions (the worker
	// pool). Default 32.
	MaxSessions int
	// MaxQueue bounds requests waiting for a session slot; request
	// MaxQueue+1 is shed immediately. Default 2*MaxSessions.
	MaxQueue int
	// QueueWait bounds how long an admitted-to-queue request waits for a
	// slot before being shed. Default 2s.
	QueueWait time.Duration
	// Quotas are per-tenant token buckets keyed on the API token;
	// DefaultQuota applies to tokens not in the map (zero = unlimited).
	Quotas       map[string]Quota
	DefaultQuota Quota
	// CacheBytes is the result-cache budget; 0 disables caching.
	CacheBytes int64
	// Workers is the per-query store scan parallelism. Default GOMAXPROCS.
	Workers int
	// DrainTimeout bounds how long Close waits for in-flight requests
	// before force-closing their connections. Default 5s.
	DrainTimeout time.Duration
	// SlowQuery is the slow-query threshold: any request at or over it emits
	// one NDJSON QueryProfile line. Zero means 1s; negative disables the log
	// (profiles are still gathered for /v1/statz).
	SlowQuery time.Duration
	// SlowQueryLog receives the NDJSON lines. Nil means os.Stderr.
	SlowQueryLog io.Writer
	// FrameTimeout is the binary protocol's read idle limit: the deadline is
	// pushed out on every read that makes progress, so a slow-but-live
	// client can take arbitrarily long to deliver a request frame while a
	// stalled one is disconnected after this much silence. Default 30s.
	FrameTimeout time.Duration
	// AlertLog, when set, is appended to /v1/alerts responses: the path of a
	// detector alert sidecar log written by the ingest process.
	AlertLog string
	// Alerts, when set, serves /v1/alerts from this callback instead of (or
	// layered over) AlertLog — the live detector's alert list.
	Alerts func() []detect.Alert

	// now overrides the clock for token-bucket tests.
	now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 32
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 2 * o.MaxSessions
	}
	if o.MaxQueue < 0 {
		o.MaxQueue = 0
	}
	if o.QueueWait <= 0 {
		o.QueueWait = 2 * time.Second
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	if o.FrameTimeout <= 0 {
		o.FrameTimeout = 30 * time.Second
	}
	return o
}

// Server is a running serving plane over one store.
type Server struct {
	opts     Options
	st       *store.Store
	adm      *admission
	cache    *resultCache
	flight   *flightGroup
	profiles *profileLog
	lastGen  atomic.Uint64

	ln      net.Listener
	httpLn  *chanListener
	httpSrv *http.Server

	wg     sync.WaitGroup // accept loop + binary handlers
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed chan struct{}
	once   sync.Once
}

// New builds a server over opts.Store.
func New(opts Options) (*Server, error) {
	if opts.Store == nil {
		return nil, errors.New("serve: Options.Store is required")
	}
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		st:       opts.Store,
		adm:      newAdmission(opts.MaxSessions, opts.MaxQueue, opts.QueueWait, opts.Quotas, opts.DefaultQuota, opts.now),
		cache:    newResultCache(opts.CacheBytes),
		flight:   newFlightGroup(),
		profiles: newProfileLog(opts.SlowQuery, opts.SlowQueryLog),
		conns:    make(map[net.Conn]struct{}),
		closed:   make(chan struct{}),
	}
	s.lastGen.Store(s.st.Generation())
	return s, nil
}

// Serve accepts connections on ln until Close, routing each by its first
// bytes: the binary protocol preamble goes to the frame handler, anything
// else to the HTTP server. It returns after the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		return errors.New("serve: Serve called twice")
	}
	s.ln = ln
	s.httpLn = newChanListener(ln.Addr())
	s.httpSrv = &http.Server{Handler: s.httpHandler(), ReadHeaderTimeout: 10 * time.Second}
	s.mu.Unlock()

	go s.httpSrv.Serve(s.httpLn)

	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return err
			}
		}
		s.wg.Add(1)
		go s.route(conn)
	}
}

// Addr returns the listen address once Serve has been called.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ActiveSessions reports currently admitted sessions (tests poll it).
func (s *Server) ActiveSessions() int64 { return s.adm.active.Load() }

// CacheCounts snapshots this server's cache counters.
func (s *Server) CacheCounts() (hits, misses, evictions uint64, bytes int64) {
	return s.cache.counts()
}

// frameConn applies an idle deadline to reads: while armed, every Read
// pushes the conn's read deadline out by timeout, so a slow-but-live client
// may take arbitrarily long to deliver a frame — only timeout of complete
// silence disconnects it. Disarmed it is a passthrough. It is used from the
// single goroutine that owns the connection's read side.
type frameConn struct {
	net.Conn
	timeout time.Duration // 0 = disarmed
}

func (fc *frameConn) Read(p []byte) (int, error) {
	if fc.timeout > 0 {
		fc.Conn.SetReadDeadline(time.Now().Add(fc.timeout))
	}
	return fc.Conn.Read(p)
}

func (fc *frameConn) arm(d time.Duration) { fc.timeout = d }

func (fc *frameConn) disarm() {
	fc.timeout = 0
	fc.Conn.SetReadDeadline(time.Time{})
}

// route sniffs one accepted connection and dispatches it.
func (s *Server) route(conn net.Conn) {
	defer s.wg.Done()
	s.track(conn, true)

	// The preamble gets the idle-deadline treatment too: each read resets
	// the clock, a wholly silent client is cut after 10s.
	fc := &frameConn{Conn: conn}
	fc.arm(10 * time.Second)
	br := bufio.NewReaderSize(fc, 1<<15)
	preamble, err := br.Peek(len(protoMagic) + 1)
	if err != nil {
		s.track(conn, false)
		conn.Close()
		return
	}
	if string(preamble[:len(protoMagic)]) == protoMagic {
		defer s.track(conn, false)
		defer conn.Close()
		br.Discard(len(protoMagic) + 1)
		ver := preamble[len(protoMagic)]
		if ver != protoVersionV1 && ver != protoVersion {
			writeJSONFrame(conn, frameError, wireError{Code: codeBadQuery,
				Msg: fmt.Sprintf("unsupported protocol version %d", ver)})
			return
		}
		fc.arm(s.opts.FrameTimeout)
		s.handleBinary(fc, br, ver)
		return
	}
	fc.disarm()
	// HTTP: hand the connection (with the sniffed bytes still unread) to
	// the embedded http.Server, which owns its lifecycle from here.
	s.track(conn, false)
	if !s.httpLn.deliver(&bufConn{Conn: conn, r: br}) {
		conn.Close()
	}
}

// track adds or removes a connection from the force-close set.
func (s *Server) track(conn net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

// generation returns the store's current generation, sweeping the cache when
// it observes a change (a seal or compaction happened since the last look).
func (s *Server) generation() uint64 {
	gen := s.st.Generation()
	if s.lastGen.Swap(gen) != gen {
		s.cache.dropOldGens(gen)
	}
	return gen
}

// handleBinary speaks the frame protocol on one connection: one request, one
// streamed response. ver is the negotiated protocol version; v2 requests
// carry a trace prefix the handler joins, so the remote caller's query,
// admission wait, scan, and encode appear as one tree.
func (s *Server) handleBinary(conn *frameConn, br *bufio.Reader, ver byte) {
	// The idle deadline armed by route covers the request frame: every read
	// that delivers bytes pushes it out, so only a stalled client times out,
	// however slowly a live one trickles.
	typ, payload, err := readFrame(br)
	conn.disarm()
	if err != nil || typ != frameRequest {
		writeJSONFrame(conn, frameError, wireError{Code: codeBadQuery, Msg: "expected request frame"})
		return
	}
	var traceID, parentSpan uint64
	var sampled bool
	if ver >= protoVersion {
		if traceID, parentSpan, sampled, payload, err = parseTraceCtx(payload); err != nil {
			writeJSONFrame(conn, frameError, wireError{Code: codeBadQuery, Msg: err.Error()})
			return
		}
	}
	var req wireRequest
	if err := unmarshalStrict(payload, &req); err != nil {
		writeJSONFrame(conn, frameError, wireError{Code: codeBadQuery, Msg: err.Error()})
		return
	}

	tenant := tenantLabel(s.opts.Quotas, req.Token)
	reqs, lat := requestMetrics(tenant, "binary")
	reqs.Inc()
	t0 := time.Now()
	defer func() { lat.ObserveSince(t0) }()

	ctx, root := obs.DefaultTracer().Join(context.Background(), "serve_query", traceID, parentSpan, sampled)
	root.Annotate("proto", "binary")
	root.Annotate("tenant", tenant)
	root.Annotate("query", req.Query.String())
	prof := &QueryProfile{Tenant: tenant, Proto: "binary", Kind: "records", Query: req.Query.String()}
	if root != nil {
		prof.TraceID = fmt.Sprintf("%016x", root.TraceID())
	}
	defer func() {
		root.Finish()
		s.profiles.record(prof, t0)
	}()

	ta := time.Now()
	_, asp := obs.StartChild(ctx, "admission")
	asp.AnnotateInt("queue_depth", s.adm.queueDepth())
	release, err := s.adm.admit(req.Token, s.closed)
	asp.SetError(err)
	asp.Finish()
	prof.addStage("admission", time.Since(ta))
	if err != nil {
		prof.setError(err)
		root.SetError(err)
		writeJSONFrame(conn, frameError, shedError(err))
		return
	}
	defer release()

	q, err := req.Query.Parse()
	if err != nil {
		prof.setError(err)
		root.SetError(err)
		writeJSONFrame(conn, frameError, wireError{Code: codeBadQuery, Msg: err.Error()})
		return
	}
	span := obs.StartSpan("serve_query")
	defer span.End()

	// Record streams are never cached; the cache span records the decision so
	// the trace shows the stage was consulted, not skipped.
	_, csp := obs.StartChild(ctx, "cache")
	csp.Annotate("result", "uncacheable_stream")
	csp.Finish()

	gen := s.generation()
	ts := time.Now()
	sctx, ssp := obs.StartChild(ctx, "scan")
	r, err := s.st.QueryParallelCtx(sctx, q, s.opts.Workers)
	if err != nil {
		ssp.SetError(err)
		ssp.Finish()
		prof.addStage("scan", time.Since(ts))
		prof.setError(err)
		root.SetError(err)
		writeJSONFrame(conn, frameError, wireError{Code: codeInternal, Msg: err.Error()})
		return
	}

	te := time.Now()
	_, esp := obs.StartChild(ctx, "encode")
	bw := bufio.NewWriterSize(conn, 1<<16)
	sent, serr := s.streamBinary(bw, conn, r, req.Query.Limit)
	esp.AnnotateInt("records", int64(sent))
	esp.SetError(serr)
	esp.Finish()
	prof.addStage("encode", time.Since(te))
	span.Add(int64(sent))
	prof.Records = sent

	r.Close() // finishes the store_scan span with the EXPLAIN profile
	ex := r.Explain()
	prof.Explain = &ex
	ssp.Finish()
	prof.addStage("scan", time.Since(ts))

	if serr != nil {
		// The connection may already be dead; a best-effort error frame.
		prof.setError(serr)
		root.SetError(serr)
		writeJSONFrame(bw, frameError, wireError{Code: codeInternal, Msg: serr.Error()})
		bw.Flush()
		return
	}
	if err := writeJSONFrame(bw, frameEnd, wireEnd{Records: sent, Generation: gen, Stats: r.Stats(), Explain: &ex}); err != nil {
		return
	}
	bw.Flush()
}

// streamBinary drains the reader into batched record frames, honoring limit
// and shutdown. Each batch write carries a deadline so a stalled client
// cannot pin a worker slot forever.
func (s *Server) streamBinary(bw *bufio.Writer, conn net.Conn, r *store.Reader, limit int) (int, error) {
	var batch []byte
	var count uint64
	sent := 0
	flushBatch := func() error {
		if count == 0 {
			return nil
		}
		payload := appendUvarintFront(batch, count)
		conn.SetWriteDeadline(time.Now().Add(time.Minute))
		err := writeFrame(bw, frameBatch, payload)
		conn.SetWriteDeadline(time.Time{})
		batch, count = batch[:0], 0
		return err
	}
	for {
		select {
		case <-s.closed:
			return sent, errors.New("server shutting down")
		default:
		}
		rec, err := r.Next()
		if err == io.EOF {
			return sent, flushBatch()
		}
		if err != nil {
			return sent, err
		}
		if batch, err = store.AppendRecordWire(batch, rec); err != nil {
			return sent, err
		}
		count++
		sent++
		obsRecordsStreamed.Inc()
		if limit > 0 && sent >= limit {
			return sent, flushBatch()
		}
		if count >= batchRecords {
			if err := flushBatch(); err != nil {
				return sent, err
			}
		}
	}
}

// appendUvarintFront prepends a uvarint count to a record payload. The
// record bytes were appended starting at offset 0; rather than shifting
// them, the count is written into a small header slice and the two are
// joined. One small copy per batch.
func appendUvarintFront(records []byte, count uint64) []byte {
	var hdr [10]byte
	n := 0
	for v := count; ; n++ {
		if v < 0x80 {
			hdr[n] = byte(v)
			n++
			break
		}
		hdr[n] = byte(v) | 0x80
		v >>= 7
	}
	out := make([]byte, 0, n+len(records))
	out = append(out, hdr[:n]...)
	return append(out, records...)
}

// aggregate answers an aggregate query through singleflight and the cache,
// returning the serialized JSON body shared by both protocols. The cache
// lookup, singleflight outcome, and store scan all land on the request's
// trace and profile.
func (s *Server) aggregate(ctx context.Context, prof *QueryProfile, kind string, top int, q store.Query) ([]byte, error) {
	gen := s.generation()
	key := aggregateCacheKey(gen, kind, top, q)
	tc := time.Now()
	_, csp := obs.StartChild(ctx, "cache")
	if body, ok := s.cache.get(key); ok {
		csp.Annotate("result", "hit")
		csp.Finish()
		prof.addStage("cache", time.Since(tc))
		prof.CacheHit = true
		return body, nil
	}
	csp.Annotate("result", "miss")
	csp.Finish()
	prof.addStage("cache", time.Since(tc))

	tagg := time.Now()
	var ex *store.Explain
	body, shared, err := s.flight.do(key, func() ([]byte, error) {
		span, sctx := obs.StartSpanCtx(ctx, "serve_aggregate")
		defer span.End()
		tsc := time.Now()
		_, ssp := obs.StartChild(sctx, "scan")
		r, qerr := s.st.QueryParallelCtx(sctx, q, s.opts.Workers)
		if qerr != nil {
			ssp.SetError(qerr)
			ssp.Finish()
			prof.addStage("scan", time.Since(tsc))
			return nil, qerr
		}
		agg, aerr := computeAggregate(readerOnly{r}, kind, top)
		r.Close()
		e := r.Explain()
		ex = &e
		ssp.Finish()
		prof.addStage("scan", time.Since(tsc))
		if aerr != nil {
			return nil, aerr
		}
		agg.Generation = gen
		span.Add(int64(agg.Records))
		te := time.Now()
		_, esp := obs.StartChild(sctx, "encode")
		body, merr := marshalJSON(agg)
		esp.Finish()
		prof.addStage("encode", time.Since(te))
		if merr != nil {
			return nil, merr
		}
		s.cache.put(key, gen, body)
		return body, nil
	})
	prof.addStage("aggregate", time.Since(tagg))
	prof.Coalesced = shared
	if ex != nil {
		prof.Explain = ex
	}
	if shared {
		obs.SpanFromContext(ctx).Annotate("coalesced", "true")
	}
	return body, err
}

// readerOnly adapts a store.Reader to collector.RecordReader without letting
// the aggregate path close it (the caller owns Close).
type readerOnly struct{ r *store.Reader }

func (ro readerOnly) Next() (collector.Record, error) { return ro.r.Next() }
func (ro readerOnly) Close() error                    { return nil }

// Close shuts the server down gracefully: stop accepting, let in-flight
// requests finish for up to DrainTimeout, then force-close what remains. It
// never closes the store — the owner does, once, after Close returns.
func (s *Server) Close() error {
	s.once.Do(func() {
		close(s.closed)
		s.mu.Lock()
		ln, httpSrv, httpLn := s.ln, s.httpSrv, s.httpLn
		s.mu.Unlock()
		if ln != nil {
			ln.Close()
		}
		if httpLn != nil {
			httpLn.close()
		}
		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(s.opts.DrainTimeout):
			log.Printf("serve: drain timeout after %v; force-closing connections", s.opts.DrainTimeout)
			s.mu.Lock()
			for c := range s.conns {
				c.Close()
			}
			s.mu.Unlock()
			<-done
		}
		if httpSrv != nil {
			httpSrv.Close()
		}
	})
	return nil
}

// chanListener adapts the sniffing accept loop to http.Server.Serve: routed
// HTTP connections are delivered through a channel.
type chanListener struct {
	ch   chan net.Conn
	addr net.Addr
	done chan struct{}
	once sync.Once
}

func newChanListener(addr net.Addr) *chanListener {
	return &chanListener{ch: make(chan net.Conn), addr: addr, done: make(chan struct{})}
}

func (l *chanListener) deliver(c net.Conn) bool {
	select {
	case l.ch <- c:
		return true
	case <-l.done:
		return false
	}
}

func (l *chanListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *chanListener) Close() error {
	l.close()
	return nil
}

func (l *chanListener) close()         { l.once.Do(func() { close(l.done) }) }
func (l *chanListener) Addr() net.Addr { return l.addr }

// bufConn is a net.Conn whose reads go through the bufio.Reader that already
// holds the sniffed bytes.
type bufConn struct {
	net.Conn
	r *bufio.Reader
}

func (c *bufConn) Read(p []byte) (int, error) { return c.r.Read(p) }
