package serve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"instability/internal/collector"
	"instability/internal/store"
)

// Client talks to a bgpserve instance. Record streams use the binary
// protocol (one TCP connection per query); aggregates and status use the
// HTTP surface of the same address. The zero value is unusable — set Addr.
type Client struct {
	// Addr is the server's host:port.
	Addr string
	// Token is the API token identifying this tenant; empty is the
	// anonymous tenant.
	Token string
	// DialTimeout bounds connection establishment. Default 10s.
	DialTimeout time.Duration
}

func (c *Client) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return 10 * time.Second
}

// Query opens a streaming remote query. The returned reader implements
// collector.RecordReader, so a remote slice drops into every pipeline a
// local store query does. A shed request fails with an error wrapping
// ErrBusy or ErrQuota.
func (c *Client) Query(spec QuerySpec) (*RemoteReader, error) {
	conn, err := net.DialTimeout("tcp", c.Addr, c.dialTimeout())
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(conn)
	bw.WriteString(protoMagic)
	bw.WriteByte(protoVersion)
	payload, err := json.Marshal(wireRequest{Token: c.Token, Query: spec})
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := writeFrame(bw, frameRequest, payload); err != nil {
		conn.Close()
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	return &RemoteReader{conn: conn, br: bufio.NewReaderSize(conn, 1<<16)}, nil
}

// RemoteReader streams records from one remote query.
type RemoteReader struct {
	conn net.Conn
	br   *bufio.Reader

	buf  []byte // undecoded remainder of the current batch
	left uint64 // records remaining in the current batch
	end  *wireEnd
	err  error
}

// Next returns the next record, io.EOF at the clean end of the stream. After
// io.EOF, Stats and Generation report the server's scan accounting.
func (r *RemoteReader) Next() (collector.Record, error) {
	for {
		if r.err != nil {
			return collector.Record{}, r.err
		}
		if r.end != nil {
			return collector.Record{}, io.EOF
		}
		if r.left > 0 {
			rec, rest, err := store.DecodeRecordWire(r.buf)
			if err != nil {
				r.err = fmt.Errorf("serve: corrupt record stream: %w", err)
				return collector.Record{}, r.err
			}
			r.buf = rest
			r.left--
			return rec, nil
		}
		typ, payload, err := readFrame(r.br)
		if err != nil {
			r.err = fmt.Errorf("serve: reading frame: %w", err)
			return collector.Record{}, r.err
		}
		switch typ {
		case frameBatch:
			n, used := binary.Uvarint(payload)
			if used <= 0 {
				r.err = fmt.Errorf("serve: corrupt batch header")
				return collector.Record{}, r.err
			}
			r.buf, r.left = payload[used:], n
		case frameEnd:
			var end wireEnd
			if err := json.Unmarshal(payload, &end); err != nil {
				r.err = fmt.Errorf("serve: corrupt end frame: %w", err)
				return collector.Record{}, r.err
			}
			r.end = &end
		case frameError:
			var we wireError
			if err := json.Unmarshal(payload, &we); err != nil {
				r.err = fmt.Errorf("serve: corrupt error frame: %w", err)
			} else {
				r.err = we.error()
			}
			return collector.Record{}, r.err
		default:
			r.err = fmt.Errorf("serve: unexpected frame type %d", typ)
			return collector.Record{}, r.err
		}
	}
}

// Stats returns the server-side scan accounting; valid after io.EOF.
func (r *RemoteReader) Stats() store.ScanStats {
	if r.end == nil {
		return store.ScanStats{}
	}
	return r.end.Stats
}

// Generation returns the store generation the result was computed under;
// valid after io.EOF.
func (r *RemoteReader) Generation() uint64 {
	if r.end == nil {
		return 0
	}
	return r.end.Generation
}

// Close releases the connection.
func (r *RemoteReader) Close() error { return r.conn.Close() }

// Aggregate fetches one cached aggregate over HTTP. top bounds ranked kinds
// (0 = server default).
func (c *Client) Aggregate(kind string, spec QuerySpec, top int) (*Aggregate, error) {
	v := url.Values{}
	v.Set("kind", kind)
	if top > 0 {
		v.Set("top", strconv.Itoa(top))
	}
	setSpec(v, spec)
	body, err := c.httpGet("/v1/aggregate?" + v.Encode())
	if err != nil {
		return nil, err
	}
	var agg Aggregate
	if err := json.Unmarshal(body, &agg); err != nil {
		return nil, fmt.Errorf("serve: bad aggregate response: %w", err)
	}
	return &agg, nil
}

// Statz fetches the server's status document.
func (c *Client) Statz() (*Statz, error) {
	body, err := c.httpGet("/v1/statz")
	if err != nil {
		return nil, err
	}
	var st Statz
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("serve: bad statz response: %w", err)
	}
	return &st, nil
}

// QueryHTTP streams a record query over the HTTP NDJSON endpoint. It exists
// so tests (and HTTP-only tenants) can prove protocol equivalence; CLIs use
// the binary Query.
func (c *Client) QueryHTTP(spec QuerySpec) ([]collector.Record, error) {
	v := url.Values{}
	setSpec(v, spec)
	if spec.Limit > 0 {
		v.Set("limit", strconv.Itoa(spec.Limit))
	}
	req, err := http.NewRequest("GET", "http://"+c.Addr+"/v1/records?"+v.Encode(), nil)
	if err != nil {
		return nil, err
	}
	c.auth(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeHTTPError(resp)
	}
	var out []collector.Record
	dec := json.NewDecoder(resp.Body)
	for {
		var rj RecordJSON
		if err := dec.Decode(&rj); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("serve: bad record stream: %w", err)
		}
		rec, err := rj.Record()
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func setSpec(v url.Values, spec QuerySpec) {
	set := func(k, val string) {
		if val != "" {
			v.Set(k, val)
		}
	}
	set("from", spec.From)
	set("to", spec.To)
	set("peer", spec.Peer)
	set("origin", spec.Origin)
	set("prefix", spec.Prefix)
	set("type", spec.Type)
}

func (c *Client) httpClient() *http.Client {
	return &http.Client{Timeout: 5 * time.Minute}
}

func (c *Client) auth(req *http.Request) {
	if c.Token != "" {
		req.Header.Set("X-Irtl-Token", c.Token)
	}
}

func (c *Client) httpGet(path string) ([]byte, error) {
	req, err := http.NewRequest("GET", "http://"+c.Addr+path, nil)
	if err != nil {
		return nil, err
	}
	c.auth(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeHTTPError(resp)
	}
	return io.ReadAll(resp.Body)
}

func decodeHTTPError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var we wireError
	if json.Unmarshal(body, &we) == nil && we.Code != "" {
		return we.error()
	}
	return fmt.Errorf("serve: HTTP %d: %s", resp.StatusCode, body)
}
