package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"instability/internal/collector"
	"instability/internal/obs"
	"instability/internal/store"
)

// Client talks to a bgpserve instance. Record streams use the binary
// protocol (one TCP connection per query); aggregates and status use the
// HTTP surface of the same address. The zero value is unusable — set Addr.
type Client struct {
	// Addr is the server's host:port.
	Addr string
	// Token is the API token identifying this tenant; empty is the
	// anonymous tenant.
	Token string
	// DialTimeout bounds connection establishment. Default 10s.
	DialTimeout time.Duration
}

func (c *Client) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return 10 * time.Second
}

// Query opens a streaming remote query. The returned reader implements
// collector.RecordReader, so a remote slice drops into every pipeline a
// local store query does. A shed request fails with an error wrapping
// ErrBusy or ErrQuota.
func (c *Client) Query(spec QuerySpec) (*RemoteReader, error) {
	return c.QueryCtx(context.Background(), spec)
}

// QueryCtx is Query carrying a trace: when ctx holds an active span, the
// request is sent with this client's trace identity in the v2 preamble, so
// the server's admission/scan/encode spans land in the caller's trace, and a
// "remote_query" child span covers the dial and request write.
func (c *Client) QueryCtx(ctx context.Context, spec QuerySpec) (*RemoteReader, error) {
	_, sp := obs.StartChild(ctx, "remote_query")
	sp.Annotate("addr", c.Addr)
	sp.Annotate("query", spec.String())
	conn, err := net.DialTimeout("tcp", c.Addr, c.dialTimeout())
	if err != nil {
		sp.SetError(err)
		sp.Finish()
		return nil, err
	}
	bw := bufio.NewWriter(conn)
	bw.WriteString(protoMagic)
	bw.WriteByte(protoVersion)
	// v2 request payload: 17-byte trace prefix (all zeros when untraced),
	// then the JSON request.
	payload := appendTraceCtx(nil, sp)
	body, err := json.Marshal(wireRequest{Token: c.Token, Query: spec})
	if err != nil {
		sp.SetError(err)
		sp.Finish()
		conn.Close()
		return nil, err
	}
	payload = append(payload, body...)
	if err := writeFrame(bw, frameRequest, payload); err == nil {
		err = bw.Flush()
	}
	if err != nil {
		sp.SetError(err)
		sp.Finish()
		conn.Close()
		return nil, err
	}
	return &RemoteReader{conn: conn, br: bufio.NewReaderSize(conn, 1<<16), span: sp}, nil
}

// RemoteReader streams records from one remote query.
type RemoteReader struct {
	conn net.Conn
	br   *bufio.Reader
	span *obs.TraceSpan // remote_query; finished on Close

	buf  []byte // undecoded remainder of the current batch
	left uint64 // records remaining in the current batch
	end  *wireEnd
	err  error
}

// Next returns the next record, io.EOF at the clean end of the stream. After
// io.EOF, Stats and Generation report the server's scan accounting.
func (r *RemoteReader) Next() (collector.Record, error) {
	for {
		if r.err != nil {
			return collector.Record{}, r.err
		}
		if r.end != nil {
			return collector.Record{}, io.EOF
		}
		if r.left > 0 {
			rec, rest, err := store.DecodeRecordWire(r.buf)
			if err != nil {
				r.err = fmt.Errorf("serve: corrupt record stream: %w", err)
				return collector.Record{}, r.err
			}
			r.buf = rest
			r.left--
			return rec, nil
		}
		typ, payload, err := readFrame(r.br)
		if err != nil {
			r.err = fmt.Errorf("serve: reading frame: %w", err)
			return collector.Record{}, r.err
		}
		switch typ {
		case frameBatch:
			n, used := binary.Uvarint(payload)
			if used <= 0 {
				r.err = fmt.Errorf("serve: corrupt batch header")
				return collector.Record{}, r.err
			}
			r.buf, r.left = payload[used:], n
		case frameEnd:
			var end wireEnd
			if err := json.Unmarshal(payload, &end); err != nil {
				r.err = fmt.Errorf("serve: corrupt end frame: %w", err)
				return collector.Record{}, r.err
			}
			r.end = &end
		case frameError:
			var we wireError
			if err := json.Unmarshal(payload, &we); err != nil {
				r.err = fmt.Errorf("serve: corrupt error frame: %w", err)
			} else {
				r.err = we.error()
			}
			return collector.Record{}, r.err
		default:
			r.err = fmt.Errorf("serve: unexpected frame type %d", typ)
			return collector.Record{}, r.err
		}
	}
}

// Stats returns the server-side scan accounting; valid after io.EOF.
func (r *RemoteReader) Stats() store.ScanStats {
	if r.end == nil {
		return store.ScanStats{}
	}
	return r.end.Stats
}

// Generation returns the store generation the result was computed under;
// valid after io.EOF.
func (r *RemoteReader) Generation() uint64 {
	if r.end == nil {
		return 0
	}
	return r.end.Generation
}

// Explain returns the server-side query profile, or nil before the end frame
// arrives (or when talking to a server that does not send one).
func (r *RemoteReader) Explain() *store.Explain {
	if r.end == nil {
		return nil
	}
	return r.end.Explain
}

// Close releases the connection and finishes the remote_query span.
func (r *RemoteReader) Close() error {
	if r.span != nil {
		if r.end != nil {
			r.span.AnnotateInt("records", int64(r.end.Records))
		}
		r.span.Finish()
		r.span = nil
	}
	return r.conn.Close()
}

// Aggregate fetches one cached aggregate over HTTP. top bounds ranked kinds
// (0 = server default).
func (c *Client) Aggregate(kind string, spec QuerySpec, top int) (*Aggregate, error) {
	return c.AggregateCtx(context.Background(), kind, spec, top)
}

// AggregateCtx is Aggregate carrying a trace: an active span in ctx is
// propagated to the server in the X-Irtl-Trace header.
func (c *Client) AggregateCtx(ctx context.Context, kind string, spec QuerySpec, top int) (*Aggregate, error) {
	ctx, sp := obs.StartChild(ctx, "remote_aggregate")
	defer sp.Finish()
	sp.Annotate("addr", c.Addr)
	sp.Annotate("kind", kind)
	v := url.Values{}
	v.Set("kind", kind)
	if top > 0 {
		v.Set("top", strconv.Itoa(top))
	}
	setSpec(v, spec)
	body, err := c.httpGetCtx(ctx, "/v1/aggregate?"+v.Encode())
	if err != nil {
		sp.SetError(err)
		return nil, err
	}
	var agg Aggregate
	if err := json.Unmarshal(body, &agg); err != nil {
		return nil, fmt.Errorf("serve: bad aggregate response: %w", err)
	}
	sp.AnnotateInt("records", int64(agg.Records))
	return &agg, nil
}

// Statz fetches the server's status document.
func (c *Client) Statz() (*Statz, error) {
	body, err := c.httpGet("/v1/statz")
	if err != nil {
		return nil, err
	}
	var st Statz
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("serve: bad statz response: %w", err)
	}
	return &st, nil
}

// QueryHTTP streams a record query over the HTTP NDJSON endpoint. It exists
// so tests (and HTTP-only tenants) can prove protocol equivalence; CLIs use
// the binary Query.
func (c *Client) QueryHTTP(spec QuerySpec) ([]collector.Record, error) {
	return c.QueryHTTPCtx(context.Background(), spec)
}

// QueryHTTPCtx is QueryHTTP propagating an active trace via X-Irtl-Trace.
func (c *Client) QueryHTTPCtx(ctx context.Context, spec QuerySpec) ([]collector.Record, error) {
	v := url.Values{}
	setSpec(v, spec)
	if spec.Limit > 0 {
		v.Set("limit", strconv.Itoa(spec.Limit))
	}
	req, err := http.NewRequest("GET", "http://"+c.Addr+"/v1/records?"+v.Encode(), nil)
	if err != nil {
		return nil, err
	}
	c.auth(req)
	c.traceHeader(ctx, req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeHTTPError(resp)
	}
	var out []collector.Record
	dec := json.NewDecoder(resp.Body)
	for {
		var rj RecordJSON
		if err := dec.Decode(&rj); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("serve: bad record stream: %w", err)
		}
		rec, err := rj.Record()
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func setSpec(v url.Values, spec QuerySpec) {
	set := func(k, val string) {
		if val != "" {
			v.Set(k, val)
		}
	}
	set("from", spec.From)
	set("to", spec.To)
	set("peer", spec.Peer)
	set("origin", spec.Origin)
	set("prefix", spec.Prefix)
	set("type", spec.Type)
}

func (c *Client) httpClient() *http.Client {
	return &http.Client{Timeout: 5 * time.Minute}
}

func (c *Client) auth(req *http.Request) {
	if c.Token != "" {
		req.Header.Set("X-Irtl-Token", c.Token)
	}
}

// traceHeader attaches the ctx's active span identity, if any, so the server
// joins the caller's trace.
func (c *Client) traceHeader(ctx context.Context, req *http.Request) {
	if h := obs.SpanFromContext(ctx).Header(); h != "" {
		req.Header.Set(obs.TraceHeader, h)
	}
}

func (c *Client) httpGet(path string) ([]byte, error) {
	return c.httpGetCtx(context.Background(), path)
}

func (c *Client) httpGetCtx(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequest("GET", "http://"+c.Addr+path, nil)
	if err != nil {
		return nil, err
	}
	c.auth(req)
	c.traceHeader(ctx, req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeHTTPError(resp)
	}
	return io.ReadAll(resp.Body)
}

func decodeHTTPError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var we wireError
	if json.Unmarshal(body, &we) == nil && we.Code != "" {
		return we.error()
	}
	return fmt.Errorf("serve: HTTP %d: %s", resp.StatusCode, body)
}
