package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"instability/internal/obs"
	"instability/internal/store"
)

// The binary protocol. A connection opens with a five-byte preamble —
// "IRTQ" plus a version byte — which is also how the shared listener tells
// binary clients from HTTP ones (no HTTP method starts with this magic).
// Everything after the preamble is length-prefixed frames:
//
//	u32 payload length (big endian) | u8 frame type | payload
//
// The client sends one frameRequest whose payload is a JSON wireRequest
// (token + the CLI query spelling, so the server parses predicates with
// exactly store.ParseQuery). The server answers with zero or more
// frameBatch frames — a uvarint record count followed by that many records
// in the store's wire codec (store.AppendRecordWire) — terminated by one
// frameEnd carrying the scan stats, or one frameError. Batching amortizes
// the frame header and the syscall: a dashboard-sized result is a handful
// of writes, not one per record.
//
// Protocol version 2 prepends a fixed 17-byte trace-context prefix to the
// frameRequest payload — u64 trace ID, u64 parent span ID (both big endian),
// u8 flags (bit 0 = sampled) — so a remote query joins the caller's trace.
// All-zero bytes mean "no trace". The server accepts v1 (no prefix) and v2.
const (
	protoMagic     = "IRTQ"
	protoVersionV1 = 1
	protoVersion   = 2

	frameRequest = 1
	frameBatch   = 2
	frameEnd     = 3
	frameError   = 4

	// traceCtxLen is the v2 request trace prefix length.
	traceCtxLen = 17

	// maxFramePayload bounds a frame so a corrupt or hostile length prefix
	// cannot make the peer allocate unbounded memory.
	maxFramePayload = 16 << 20

	// batchRecords is how many records the server packs per frameBatch,
	// aligned with the store's block size so one decompressed block fills
	// about one frame.
	batchRecords = 512
)

// Error codes carried by frameError payloads.
const (
	codeBusy     = "busy"
	codeQuota    = "quota"
	codeBadQuery = "bad_query"
	codeInternal = "internal"
	codeShutdown = "shutdown"
)

// wireRequest is the frameRequest payload.
type wireRequest struct {
	Token string    `json:"token,omitempty"`
	Query QuerySpec `json:"query"`
}

// wireEnd is the frameEnd payload: the result is complete and these are its
// scan economics. Explain is present from v2 servers.
type wireEnd struct {
	Records    int             `json:"records"`
	Generation uint64          `json:"generation"`
	Stats      store.ScanStats `json:"stats"`
	Explain    *store.Explain  `json:"explain,omitempty"`
}

// wireError is the frameError payload.
type wireError struct {
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

// appendTraceCtx appends the 17-byte v2 trace prefix for sp (all zeros when
// sp is nil or untraced).
func appendTraceCtx(dst []byte, sp *obs.TraceSpan) []byte {
	var buf [traceCtxLen]byte
	binary.BigEndian.PutUint64(buf[0:8], sp.TraceID())
	binary.BigEndian.PutUint64(buf[8:16], sp.SpanID())
	if sp.Sampled() {
		buf[16] = obs.TraceFlagSampled
	}
	return append(dst, buf[:]...)
}

// parseTraceCtx splits a v2 request payload into its trace context and the
// JSON remainder.
func parseTraceCtx(payload []byte) (traceID, spanID uint64, sampled bool, rest []byte, err error) {
	if len(payload) < traceCtxLen {
		return 0, 0, false, nil, fmt.Errorf("serve: request shorter than trace prefix")
	}
	traceID = binary.BigEndian.Uint64(payload[0:8])
	spanID = binary.BigEndian.Uint64(payload[8:16])
	sampled = payload[16]&obs.TraceFlagSampled != 0
	return traceID, spanID, sampled, payload[traceCtxLen:], nil
}

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func writeJSONFrame(w io.Writer, typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(w, typ, payload)
}

func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("serve: frame of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("serve: truncated frame: %w", err)
	}
	return hdr[4], payload, nil
}

// shedError maps an admission error to its wire code.
func shedError(err error) wireError {
	switch err {
	case ErrBusy:
		return wireError{Code: codeBusy, Msg: err.Error()}
	case ErrQuota:
		return wireError{Code: codeQuota, Msg: err.Error()}
	default:
		return wireError{Code: codeInternal, Msg: err.Error()}
	}
}

// errorFor maps a wire code back to the client-side error.
func (we wireError) error() error {
	switch we.Code {
	case codeBusy, codeShutdown:
		return fmt.Errorf("%w (%s)", ErrBusy, we.Msg)
	case codeQuota:
		return fmt.Errorf("%w (%s)", ErrQuota, we.Msg)
	default:
		return fmt.Errorf("serve: remote error (%s): %s", we.Code, we.Msg)
	}
}
