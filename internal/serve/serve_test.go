package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/faults"
	"instability/internal/netaddr"
	"instability/internal/store"
)

// testRecord builds one synthetic update for the e2e stores.
func testRecord(t time.Time, i int) collector.Record {
	peers := []bgp.ASN{690, 701, 1239}
	peer := peers[i%len(peers)]
	pfx, err := netaddr.ParsePrefix(fmt.Sprintf("10.%d.%d.0/24", i/250, i%250))
	if err != nil {
		panic(err)
	}
	rec := collector.Record{Time: t, PeerAS: peer, Prefix: pfx}
	if i%7 == 3 {
		rec.Type = collector.Withdraw
		return rec
	}
	rec.Type = collector.Announce
	rec.Attrs = bgp.Attrs{
		Origin:  bgp.OriginIGP,
		Path:    bgp.PathFromASNs(peer, bgp.ASN(3561+i%5)),
		NextHop: netaddr.Addr(0x0a000001),
	}
	return rec
}

// newTestStore builds a store with both sealed segments and unsealed memtable
// records, so queries exercise the merged read path the server serves from.
func newTestStore(tb testing.TB, n int, opts store.Options) *store.Store {
	tb.Helper()
	if opts.Window == 0 {
		opts.Window = time.Hour
	}
	s, err := store.Open(tb.TempDir(), opts)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { s.Close() })
	base := time.Date(1996, 5, 1, 0, 0, 0, 0, time.UTC)
	w := s.Writer()
	for i := 0; i < n; i++ {
		if err := w.Append(testRecord(base.Add(time.Duration(i)*time.Minute), i)); err != nil {
			tb.Fatal(err)
		}
		if i == 2*n/3 { // seal two thirds; the rest stays in the memtable
			if err := w.Seal(); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return s
}

// startServer runs a server on an ephemeral port and tears it down with the
// test.
func startServer(tb testing.TB, opts Options) *Server {
	tb.Helper()
	srv, err := New(opts)
	if err != nil {
		tb.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go srv.Serve(ln)
	tb.Cleanup(func() { srv.Close() })
	waitFor(tb, func() bool { return srv.Addr() != nil })
	return srv
}

// wireBytes encodes records in the store codec — the strongest possible
// equality: two result sets are the same iff their bytes are.
func wireBytes(tb testing.TB, recs []collector.Record) []byte {
	tb.Helper()
	var b []byte
	var err error
	for _, rec := range recs {
		if b, err = store.AppendRecordWire(b, rec); err != nil {
			tb.Fatal(err)
		}
	}
	return b
}

// localQuery runs the embedded query the server's answers must match.
func localQuery(tb testing.TB, s *store.Store, spec QuerySpec) []collector.Record {
	tb.Helper()
	q, err := spec.Parse()
	if err != nil {
		tb.Fatal(err)
	}
	r, err := s.Query(q)
	if err != nil {
		tb.Fatal(err)
	}
	defer r.Close()
	var recs []collector.Record
	for {
		rec, err := r.Next()
		if err != nil {
			return recs
		}
		recs = append(recs, rec)
	}
}

func drainRemote(tb testing.TB, rr *RemoteReader) []collector.Record {
	tb.Helper()
	defer rr.Close()
	var recs []collector.Record
	for {
		rec, err := rr.Next()
		if errors.Is(err, io.EOF) {
			return recs
		}
		if err != nil {
			tb.Fatalf("remote stream: %v", err)
		}
		recs = append(recs, rec)
	}
}

// TestServeEndToEnd is the acceptance test: N tenants hammer the server
// concurrently over both protocols and every result is bit-identical to the
// embedded store query; aggregates hit the cache on repeat and are
// invalidated when the segment set changes.
func TestServeEndToEnd(t *testing.T) {
	const nrecs = 900
	st := newTestStore(t, nrecs, store.Options{})
	srv := startServer(t, Options{
		Store:      st,
		CacheBytes: 1 << 20,
		Quotas:     map[string]Quota{"dash": {Rate: 1000, Burst: 1000}},
	})
	addr := srv.Addr().String()

	specs := []QuerySpec{
		{},
		{Peer: "690"},
		{From: "1996-05-01 02:00:00", To: "1996-05-01 08:00:00"},
		{Type: "W"},
		{Origin: "3562", Type: "A"},
	}
	want := make([][]byte, len(specs))
	wantN := make([]int, len(specs))
	for i, spec := range specs {
		recs := localQuery(t, st, spec)
		want[i] = wireBytes(t, recs)
		wantN[i] = len(recs)
	}
	if wantN[0] != nrecs || wantN[1] == 0 || wantN[2] == 0 || wantN[3] == 0 || wantN[4] == 0 {
		t.Fatalf("degenerate fixtures: local match counts %v", wantN)
	}
	gen := st.Generation()

	// Four tenants, each querying every spec over both protocols at once.
	var wg sync.WaitGroup
	for _, tenant := range []string{"dash", "dash", "anon", ""} {
		for i, spec := range specs {
			wg.Add(1)
			go func(tenant string, i int, spec QuerySpec) {
				defer wg.Done()
				c := &Client{Addr: addr, Token: tenant}

				rr, err := c.Query(spec)
				if err != nil {
					t.Errorf("binary query %d: %v", i, err)
					return
				}
				recs := drainRemote(t, rr)
				if got := wireBytes(t, recs); !bytes.Equal(got, want[i]) {
					t.Errorf("binary query %d: %d records, not bit-identical to embedded query (%d records)",
						i, len(recs), wantN[i])
				}
				if rr.Generation() != gen {
					t.Errorf("binary query %d: generation %d, want %d", i, rr.Generation(), gen)
				}
				if rr.Stats().RecordsMatched != wantN[i] {
					t.Errorf("binary query %d: stats matched %d, want %d", i, rr.Stats().RecordsMatched, wantN[i])
				}

				hrecs, err := c.QueryHTTP(spec)
				if err != nil {
					t.Errorf("http query %d: %v", i, err)
					return
				}
				if got := wireBytes(t, hrecs); !bytes.Equal(got, want[i]) {
					t.Errorf("http query %d: %d records, not bit-identical to embedded query (%d records)",
						i, len(hrecs), wantN[i])
				}
			}(tenant, i, spec)
		}
	}
	wg.Wait()

	// Limit applies to streams.
	c := &Client{Addr: addr}
	rr, err := c.Query(QuerySpec{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if recs := drainRemote(t, rr); len(recs) != 10 {
		t.Fatalf("limit 10 returned %d records", len(recs))
	}

	// Aggregates: the second identical query is a cache hit, and concurrent
	// identical queries still agree with the first answer.
	agg1, err := c.Aggregate(KindClasses, QuerySpec{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if agg1.Records != nrecs || agg1.Generation != gen {
		t.Fatalf("aggregate: records %d gen %d, want %d/%d", agg1.Records, agg1.Generation, nrecs, gen)
	}
	hits0, _, _, _ := srv.CacheCounts()
	agg2, err := c.Aggregate(KindClasses, QuerySpec{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	hits1, _, _, cbytes := srv.CacheCounts()
	if hits1 <= hits0 {
		t.Fatalf("repeat aggregate did not hit the cache (hits %d -> %d)", hits0, hits1)
	}
	if cbytes <= 0 {
		t.Fatal("cache holds no bytes after a cached aggregate")
	}
	if agg2.Records != agg1.Records || len(agg2.Classes) != len(agg1.Classes) {
		t.Fatalf("cached aggregate diverged: %+v vs %+v", agg2, agg1)
	}
	for _, kind := range []string{KindDaily, KindTopOrigins, KindPeerMatrix} {
		if _, err := c.Aggregate(kind, QuerySpec{}, 5); err != nil {
			t.Fatalf("aggregate %s: %v", kind, err)
		}
	}
	if _, err := c.Aggregate("nope", QuerySpec{}, 0); err == nil {
		t.Fatal("unknown aggregate kind accepted")
	}

	// Invalidation: sealing a new record advances the generation; the next
	// aggregate recomputes against the new segment set — never a stale answer.
	w := st.Writer()
	if err := w.Append(testRecord(time.Date(1996, 5, 2, 0, 0, 0, 0, time.UTC), 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	if st.Generation() == gen {
		t.Fatal("seal did not advance the generation")
	}
	agg3, err := c.Aggregate(KindClasses, QuerySpec{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if agg3.Records != nrecs+1 {
		t.Fatalf("post-seal aggregate saw %d records, want %d (stale cache?)", agg3.Records, nrecs+1)
	}
	if agg3.Generation != st.Generation() {
		t.Fatalf("post-seal aggregate generation %d, want %d", agg3.Generation, st.Generation())
	}

	// Statz reflects the serving plane.
	stz, err := c.Statz()
	if err != nil {
		t.Fatal(err)
	}
	if stz.Generation != st.Generation() || stz.Store.Records == 0 {
		t.Fatalf("statz = %+v", stz)
	}
}

// TestServeSheds proves admission failures surface as clean, typed errors on
// both protocols: quota exhaustion and a saturated worker pool.
func TestServeSheds(t *testing.T) {
	st := newTestStore(t, 60, store.Options{})
	srv := startServer(t, Options{
		Store:       st,
		MaxSessions: 1,
		MaxQueue:    0, // no waiting: a busy pool sheds instantly
		QueueWait:   50 * time.Millisecond,
		Quotas:      map[string]Quota{"limited": {Rate: 0.0001, Burst: 2}},
	})
	addr := srv.Addr().String()

	// Quota shed: the burst is 2, the third request is refused on both
	// protocols with ErrQuota.
	c := &Client{Addr: addr, Token: "limited"}
	for i := 0; i < 2; i++ {
		rr, err := c.Query(QuerySpec{Limit: 1})
		if err != nil {
			t.Fatalf("burst query %d: %v", i, err)
		}
		drainRemote(t, rr)
	}
	rr, err := c.Query(QuerySpec{Limit: 1})
	if err == nil {
		_, err = rr.Next()
		rr.Close()
	}
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("binary over-quota error = %v, want ErrQuota", err)
	}
	if _, err := c.QueryHTTP(QuerySpec{Limit: 1}); !errors.Is(err, ErrQuota) {
		t.Fatalf("http over-quota error = %v, want ErrQuota", err)
	}

	// Busy shed: occupy the single worker slot directly, then any request is
	// refused with ErrBusy.
	release, err := srv.adm.admit("", srv.closed)
	if err != nil {
		t.Fatal(err)
	}
	anon := &Client{Addr: addr}
	rr, err = anon.Query(QuerySpec{Limit: 1})
	if err == nil {
		_, err = rr.Next()
		rr.Close()
	}
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("binary busy error = %v, want ErrBusy", err)
	}
	if _, err := anon.QueryHTTP(QuerySpec{Limit: 1}); !errors.Is(err, ErrBusy) {
		t.Fatalf("http busy error = %v, want ErrBusy", err)
	}
	release()
	waitFor(t, func() bool { return srv.ActiveSessions() == 0 })

	// With the slot free the same request succeeds.
	rr, err = anon.Query(QuerySpec{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	drainRemote(t, rr)
}

// TestServeChaos runs the server over a fault-injected store under admission
// pressure: every request either succeeds (possibly degraded) or fails with a
// clean typed error, and shutdown leaks neither goroutines nor fds.
func TestServeChaos(t *testing.T) {
	g0 := runtime.NumGoroutine()
	fd0 := openFDs(t)

	plan, err := faults.ParseSpec("seed=7,flipreadp=0.005")
	if err != nil {
		t.Fatal(err)
	}
	st := newTestStore(t, 600, store.Options{FS: faults.NewInjector(faults.Disk{}, plan)})
	srv := startServer(t, Options{
		Store:        st,
		MaxSessions:  2,
		MaxQueue:     2,
		QueueWait:    100 * time.Millisecond,
		CacheBytes:   1 << 20,
		Quotas:       map[string]Quota{"limited": {Rate: 1, Burst: 5}},
		DrainTimeout: 2 * time.Second,
	})
	addr := srv.Addr().String()

	const requests = 24
	var wg sync.WaitGroup
	var ok, shed, failed int64
	var mu sync.Mutex
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			token := ""
			if i%2 == 0 {
				token = "limited"
			}
			c := &Client{Addr: addr, Token: token}
			var err error
			if i%3 == 0 {
				_, err = c.Aggregate(KindClasses, QuerySpec{}, 0)
			} else if i%3 == 1 {
				_, err = c.QueryHTTP(QuerySpec{Peer: "690"})
			} else {
				var rr *RemoteReader
				if rr, err = c.Query(QuerySpec{Peer: "701"}); err == nil {
					for err == nil {
						_, err = rr.Next()
					}
					if errors.Is(err, io.EOF) {
						err = nil
					}
					rr.Close()
				}
			}
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, ErrBusy) || errors.Is(err, ErrQuota):
				shed++
			default:
				failed++
				t.Errorf("request %d: unclean error: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if ok == 0 {
		t.Fatal("no request succeeded under chaos")
	}
	t.Logf("chaos: %d ok, %d shed, %d failed of %d", ok, shed, failed, requests)

	// Shutdown: drains cleanly and returns the process to its baseline.
	srv.Close()
	if tr, okT := http.DefaultTransport.(*http.Transport); okT {
		tr.CloseIdleConnections()
	}
	waitFor(t, func() bool { return runtime.NumGoroutine() <= g0+2 })
	if fd0 > 0 {
		waitFor(t, func() bool { return openFDs(t) <= fd0+2 })
	}
}

// openFDs counts this process's open file descriptors (0 when /proc is
// unavailable, disabling the check).
func openFDs(tb testing.TB) int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0
	}
	return len(ents)
}

// TestServeGracefulClose: Close with nothing in flight returns promptly and
// further connections are refused.
func TestServeGracefulClose(t *testing.T) {
	st := newTestStore(t, 30, store.Options{})
	srv := startServer(t, Options{Store: st, DrainTimeout: time.Second})
	addr := srv.Addr().String()

	c := &Client{Addr: addr}
	rr, err := c.Query(QuerySpec{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	drainRemote(t, rr)

	t0 := time.Now()
	srv.Close()
	if d := time.Since(t0); d > 900*time.Millisecond {
		t.Fatalf("idle Close took %v", d)
	}
	if _, err := c.Query(QuerySpec{}); err == nil {
		t.Fatal("query succeeded after Close")
	}
}

// BenchmarkServeQuery measures one aggregate round trip cold (cache disabled:
// every request runs QueryParallel) versus cached (every request after the
// first is a memory hit).
func BenchmarkServeQuery(b *testing.B) {
	run := func(b *testing.B, cacheBytes int64) {
		st := newTestStore(b, 3000, store.Options{})
		srv := startServer(b, Options{Store: st, CacheBytes: cacheBytes})
		c := &Client{Addr: srv.Addr().String()}
		if _, err := c.Aggregate(KindClasses, QuerySpec{}, 0); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Aggregate(KindClasses, QuerySpec{}, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, 0) })
	b.Run("cached", func(b *testing.B) { run(b, 1<<20) })
}

// TestSlowClientTrickleSurvives pins the idle-deadline fix: a client that
// trickles its request one byte at a time — total transfer time far past the
// old fixed 10s/30s read deadlines, scaled down here — keeps the connection
// alive, because every byte of progress resets the clock.
func TestSlowClientTrickleSurvives(t *testing.T) {
	st := newTestStore(t, 30, store.Options{})
	srv := startServer(t, Options{Store: st, FrameTimeout: 250 * time.Millisecond})

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payload, err := json.Marshal(wireRequest{Query: QuerySpec{Limit: 5}})
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte(protoMagic)
	msg = append(msg, protoVersionV1)
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = frameRequest
	msg = append(msg, hdr[:]...)
	msg = append(msg, payload...)

	// One byte per write, each gap a healthy fraction of FrameTimeout: the
	// whole request takes several multiples of the timeout to arrive.
	for _, b := range msg {
		if _, err := conn.Write([]byte{b}); err != nil {
			t.Fatalf("trickle write: %v", err)
		}
		time.Sleep(40 * time.Millisecond)
	}

	typ, _, err := readFrame(conn)
	if err != nil {
		t.Fatalf("trickling client was disconnected: %v", err)
	}
	if typ == frameError {
		t.Fatalf("got error frame, want a result stream")
	}
}

// TestStalledClientDisconnects is the other half of the contract: a client
// that goes silent mid-frame is cut off once FrameTimeout of zero progress
// elapses, instead of pinning a connection slot forever.
func TestStalledClientDisconnects(t *testing.T) {
	st := newTestStore(t, 30, store.Options{})
	srv := startServer(t, Options{Store: st, FrameTimeout: 200 * time.Millisecond})

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Preamble plus a frame header promising bytes that never come.
	msg := []byte(protoMagic)
	msg = append(msg, protoVersionV1)
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], 64)
	hdr[4] = frameRequest
	msg = append(msg, hdr[:]...)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	t0 := time.Now()
	for {
		if _, _, err := readFrame(conn); err != nil {
			break // server closed (or error frame then close) — both end here
		}
	}
	if d := time.Since(t0); d > 3*time.Second {
		t.Fatalf("stalled client still connected after %v", d)
	}
}
