package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestParseQuotas(t *testing.T) {
	quotas, def, err := ParseQuotas("dashboards=50:100,batch=2:10,*=5:5")
	if err != nil {
		t.Fatal(err)
	}
	if q := quotas["dashboards"]; q.Rate != 50 || q.Burst != 100 {
		t.Fatalf("dashboards quota = %+v", q)
	}
	if q := quotas["batch"]; q.Rate != 2 || q.Burst != 10 {
		t.Fatalf("batch quota = %+v", q)
	}
	if def.Rate != 5 || def.Burst != 5 {
		t.Fatalf("default quota = %+v", def)
	}
	if _, _, err := ParseQuotas(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	for _, bad := range []string{"x", "x=1", "x=0:5", "x=1:0", "x=a:b", "=1:2"} {
		if _, _, err := ParseQuotas(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// TestAdmissionQuota drives the token bucket with a fake clock: burst is
// consumable immediately, then requests shed until the refill.
func TestAdmissionQuota(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	a := newAdmission(8, 8, time.Second, map[string]Quota{"t": {Rate: 1, Burst: 2}}, Quota{}, now)
	closed := make(chan struct{})

	for i := 0; i < 2; i++ {
		release, err := a.admit("t", closed)
		if err != nil {
			t.Fatalf("burst request %d shed: %v", i, err)
		}
		release()
	}
	if _, err := a.admit("t", closed); !errors.Is(err, ErrQuota) {
		t.Fatalf("dry bucket admitted (err = %v)", err)
	}
	clock = clock.Add(time.Second) // refill one token
	release, err := a.admit("t", closed)
	if err != nil {
		t.Fatalf("post-refill request shed: %v", err)
	}
	release()

	// Unknown tokens use the (here unlimited) default quota.
	release, err = a.admit("stranger", closed)
	if err != nil {
		t.Fatalf("unlimited tenant shed: %v", err)
	}
	release()
}

// TestAdmissionQueueShed fills the worker pool and the queue: the next
// request is shed immediately, not hung.
func TestAdmissionQueueShed(t *testing.T) {
	a := newAdmission(1, 1, 50*time.Millisecond, nil, Quota{}, nil)
	closed := make(chan struct{})

	release, err := a.admit("", closed)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.active.Load(); got != 1 {
		t.Fatalf("active = %d, want 1", got)
	}

	// One waiter may queue (it will time out); launch it and give it time to
	// enter the queue.
	queuedErr := make(chan error, 1)
	go func() {
		_, err := a.admit("", closed)
		queuedErr <- err
	}()
	waitFor(t, func() bool { return a.queued.Load() == 1 })

	// The queue is full: this request is shed with no waiting.
	t0 := time.Now()
	if _, err := a.admit("", closed); !errors.Is(err, ErrBusy) {
		t.Fatalf("over-queue request not shed (err = %v)", err)
	}
	if d := time.Since(t0); d > 40*time.Millisecond {
		t.Fatalf("queue-full shed took %v, want immediate", d)
	}
	// The queued waiter times out and sheds too.
	if err := <-queuedErr; !errors.Is(err, ErrBusy) {
		t.Fatalf("queued waiter error = %v, want ErrBusy", err)
	}

	// Releasing the slot (idempotently) frees it for the next request.
	release()
	release()
	r2, err := a.admit("", closed)
	if err != nil {
		t.Fatalf("post-release request shed: %v", err)
	}
	r2()
	if got := a.active.Load(); got != 0 {
		t.Fatalf("active = %d after releases, want 0", got)
	}
}

func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 2s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestResultCache pins the LRU budget and the generation sweep.
func TestResultCache(t *testing.T) {
	entry := func(i int) (string, []byte) {
		return fmt.Sprintf("key-%02d", i), make([]byte, 100)
	}
	perEntry := int64(len("key-00")+100) + cacheEntryOverhead
	c := newResultCache(3 * perEntry)

	for i := 0; i < 3; i++ {
		k, b := entry(i)
		c.put(k, 1, b)
	}
	if _, ok := c.get("key-00"); !ok {
		t.Fatal("key-00 missing before budget exceeded")
	}
	// A fourth entry evicts the LRU — key-01, since key-00 was just touched.
	k, b := entry(3)
	c.put(k, 1, b)
	if _, ok := c.get("key-01"); ok {
		t.Fatal("LRU entry survived over-budget put")
	}
	if _, ok := c.get("key-00"); !ok {
		t.Fatal("recently used entry evicted")
	}

	// Oversized bodies are refused, not cached.
	c.put("huge", 1, make([]byte, 10_000))
	if _, ok := c.get("huge"); ok {
		t.Fatal("over-budget body cached")
	}

	// Generation sweep: entries from other generations vanish.
	c.put("new-gen", 2, []byte("x"))
	c.dropOldGens(2)
	for _, k := range []string{"key-00", "key-02", "key-03"} {
		if _, ok := c.get(k); ok {
			t.Fatalf("stale-generation entry %q survived sweep", k)
		}
	}
	if _, ok := c.get("new-gen"); !ok {
		t.Fatal("current-generation entry swept")
	}
	hits, misses, evictions, size := c.counts()
	if hits == 0 || misses == 0 || evictions < 4 || size <= 0 {
		t.Fatalf("counts = hits %d, misses %d, evictions %d, size %d", hits, misses, evictions, size)
	}

	// The nil cache (disabled) absorbs everything quietly.
	var nc *resultCache
	nc.put("k", 1, []byte("v"))
	if _, ok := nc.get("k"); ok {
		t.Fatal("nil cache returned a hit")
	}
	nc.dropOldGens(1)
}

// TestFlightGroup proves concurrent identical computations coalesce into one.
func TestFlightGroup(t *testing.T) {
	g := newFlightGroup()
	var calls int
	started := make(chan struct{})
	proceed := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	shares := make(chan bool, waiters+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, shared, err := g.do("k", func() ([]byte, error) {
			calls++
			close(started)
			<-proceed
			return []byte("answer"), nil
		})
		if err != nil || string(body) != "answer" {
			t.Errorf("leader: body %q err %v", body, err)
		}
		shares <- shared
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, shared, err := g.do("k", func() ([]byte, error) {
				t.Error("duplicate computation ran")
				return nil, nil
			})
			if err != nil || string(body) != "answer" {
				t.Errorf("follower: body %q err %v", body, err)
			}
			shares <- shared
		}()
	}
	// Followers must be registered before the leader finishes; poll the map.
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.m) == 1
	})
	time.Sleep(5 * time.Millisecond) // let followers reach the wait
	close(proceed)
	wg.Wait()
	close(shares)

	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	sharedCount := 0
	for s := range shares {
		if s {
			sharedCount++
		}
	}
	if sharedCount == 0 {
		t.Fatal("no caller reported a shared result")
	}

	// After completion the key is free again: a new call recomputes.
	body, shared, err := g.do("k", func() ([]byte, error) { return []byte("fresh"), nil })
	if err != nil || shared || string(body) != "fresh" {
		t.Fatalf("post-flight call: body %q shared %v err %v", body, shared, err)
	}
}
