package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"instability"
	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/core"
	"instability/internal/netaddr"
	"instability/internal/store"
)

// QuerySpec is the transport form of a store query: the exact CLI spellings
// the analysis tools already use (-from/-to/-peer/-origin/-prefix/-type), so
// a remote query parses — and therefore matches — identically to a local
// one. Limit bounds record streams; it does not apply to aggregates.
type QuerySpec struct {
	From   string `json:"from,omitempty"`
	To     string `json:"to,omitempty"`
	Peer   string `json:"peer,omitempty"`
	Origin string `json:"origin,omitempty"`
	Prefix string `json:"prefix,omitempty"`
	Type   string `json:"type,omitempty"`
	Limit  int    `json:"limit,omitempty"`
}

// Parse resolves the spec into a store query.
func (qs QuerySpec) Parse() (store.Query, error) {
	return store.ParseQuery(qs.From, qs.To, qs.Peer, qs.Origin, qs.Prefix, qs.Type)
}

// String renders the spec in the CLI flag spelling, for slow-query log lines
// and trace annotations. The zero spec renders as "all".
func (qs QuerySpec) String() string {
	var parts []string
	add := func(k, v string) {
		if v != "" {
			parts = append(parts, k+"="+v)
		}
	}
	add("from", qs.From)
	add("to", qs.To)
	add("peer", qs.Peer)
	add("origin", qs.Origin)
	add("prefix", qs.Prefix)
	add("type", qs.Type)
	if qs.Limit > 0 {
		parts = append(parts, "limit="+strconv.Itoa(qs.Limit))
	}
	if len(parts) == 0 {
		return "all"
	}
	return strings.Join(parts, " ")
}

// RecordJSON is the lossless JSON form of a collector record used by the
// HTTP streaming endpoint: numeric fields stay numeric (no string parsing on
// either side) and path attributes travel as the BGP wire encoding, so a
// record round-trips bit-identically through either protocol.
type RecordJSON struct {
	T        int64  `json:"t"` // UnixNano
	Type     string `json:"type"`
	PeerAS   uint16 `json:"peer_as"`
	PeerAddr uint32 `json:"peer_addr,omitempty"`
	PfxAddr  uint32 `json:"pfx_addr"`
	PfxBits  int    `json:"pfx_bits"`
	Attrs    []byte `json:"attrs,omitempty"` // bgp.MarshalAttrs, base64 in JSON
}

// ToJSON converts a record to its JSON transport form.
func ToJSON(rec collector.Record) (RecordJSON, error) {
	rj := RecordJSON{
		T:        rec.Time.UnixNano(),
		Type:     rec.Type.String(),
		PeerAS:   uint16(rec.PeerAS),
		PeerAddr: uint32(rec.PeerAddr),
		PfxAddr:  uint32(rec.Prefix.Addr()),
		PfxBits:  rec.Prefix.Bits(),
	}
	if rec.Type == collector.Announce {
		attrs, err := bgp.MarshalAttrs(rec.Attrs)
		if err != nil {
			return rj, err
		}
		rj.Attrs = attrs
	}
	return rj, nil
}

// Record converts the JSON transport form back to a collector record.
func (rj RecordJSON) Record() (collector.Record, error) {
	var rec collector.Record
	switch rj.Type {
	case "A":
		rec.Type = collector.Announce
	case "W":
		rec.Type = collector.Withdraw
	case "UP":
		rec.Type = collector.SessionUp
	case "DOWN":
		rec.Type = collector.SessionDown
	default:
		return rec, fmt.Errorf("serve: bad record type %q", rj.Type)
	}
	rec.Time = nanoTime(rj.T)
	rec.PeerAS = bgp.ASN(rj.PeerAS)
	rec.PeerAddr = netaddr.Addr(rj.PeerAddr)
	p, err := netaddr.PrefixFrom(netaddr.Addr(rj.PfxAddr), rj.PfxBits)
	if err != nil {
		return rec, err
	}
	rec.Prefix = p
	if len(rj.Attrs) > 0 {
		if rec.Attrs, err = bgp.UnmarshalAttrs(rj.Attrs); err != nil {
			return rec, err
		}
	}
	return rec, nil
}

// Aggregate kinds: the dashboard queries the cache exists for.
const (
	// KindClasses is the taxonomy breakdown of the slice (paper Table/Fig
	// totals): per-class counts plus the instability/pathological split.
	KindClasses = "classes"
	// KindDaily is the per-day per-class totals (Figure 2's series).
	KindDaily = "daily"
	// KindTopOrigins ranks origin ASes by announcements in the slice
	// (the paper's "small number of ASes dominate" result).
	KindTopOrigins = "top_origins"
	// KindPeerMatrix is the per-peer class density matrix (Table 1's rows):
	// for each peer AS seen, its per-class counts and announce/withdraw
	// split.
	KindPeerMatrix = "peer_matrix"
)

// Kinds lists the supported aggregate kinds.
func Kinds() []string {
	return []string{KindClasses, KindDaily, KindTopOrigins, KindPeerMatrix}
}

// Aggregate is the answer to one aggregate query. Exactly one of the
// kind-specific fields is populated.
type Aggregate struct {
	Kind       string `json:"kind"`
	Generation uint64 `json:"generation"`
	Records    int    `json:"records"`

	Classes    map[string]int `json:"classes,omitempty"`
	Daily      []DayClasses   `json:"daily,omitempty"`
	TopOrigins []OriginCount  `json:"top_origins,omitempty"`
	PeerMatrix []PeerClasses  `json:"peer_matrix,omitempty"`
}

// DayClasses is one day's class totals.
type DayClasses struct {
	Date    string         `json:"date"`
	Classes map[string]int `json:"classes"`
}

// OriginCount is one origin AS's announcement count.
type OriginCount struct {
	AS        uint16 `json:"as"`
	Announces int    `json:"announces"`
}

// PeerClasses is one peer's row of the density matrix.
type PeerClasses struct {
	AS          uint16         `json:"as"`
	Addr        uint32         `json:"addr"`
	Classes     map[string]int `json:"classes"`
	Announces   int            `json:"announces"`
	Withdrawals int            `json:"withdrawals"`
}

// computeAggregate drains the reader into the requested aggregate. The
// classifier-backed kinds run the exact pipeline the CLIs use, so a cached
// dashboard answer is the same number bgpanalyze would print.
func computeAggregate(r collector.RecordReader, kind string, top int) (*Aggregate, error) {
	agg := &Aggregate{Kind: kind}
	switch kind {
	case KindClasses, KindDaily, KindPeerMatrix:
		p := instability.NewPipeline()
		n, err := instability.ClassifyLog(r, p)
		if err != nil {
			return nil, err
		}
		agg.Records = n
		fillFromPipeline(agg, p, kind)
	case KindTopOrigins:
		if top <= 0 {
			top = 10
		}
		counts := make(map[bgp.ASN]int)
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			agg.Records++
			if rec.Type != collector.Announce {
				continue
			}
			if origin, ok := rec.Attrs.Path.Origin(); ok {
				counts[origin]++
			}
		}
		agg.TopOrigins = topOrigins(counts, top)
	default:
		return nil, fmt.Errorf("serve: unknown aggregate kind %q (want %v)", kind, Kinds())
	}
	return agg, nil
}

func fillFromPipeline(agg *Aggregate, p *instability.Pipeline, kind string) {
	switch kind {
	case KindClasses:
		agg.Classes = classMap(p.Acc.TotalCounts())
	case KindDaily:
		for _, d := range p.Acc.Dates() {
			day := p.Acc.Days[d]
			m := make(map[string]int, core.NumClasses)
			for _, c := range core.Classes() {
				m[c.String()] = day.Counts[c]
			}
			agg.Daily = append(agg.Daily, DayClasses{Date: d.String(), Classes: m})
		}
	case KindPeerMatrix:
		byPeer := make(map[core.PeerKey]*PeerClasses)
		for _, d := range p.Acc.Dates() {
			for pk, pd := range p.Acc.Days[d].ByPeer {
				row := byPeer[pk]
				if row == nil {
					row = &PeerClasses{AS: uint16(pk.AS), Addr: uint32(pk.Addr), Classes: make(map[string]int)}
					byPeer[pk] = row
				}
				for _, c := range core.Classes() {
					row.Classes[c.String()] += pd.Counts[c]
				}
				row.Announces += pd.Announcements
				row.Withdrawals += pd.Withdrawals
			}
		}
		for _, row := range byPeer {
			agg.PeerMatrix = append(agg.PeerMatrix, *row)
		}
		sort.Slice(agg.PeerMatrix, func(i, j int) bool {
			if agg.PeerMatrix[i].AS != agg.PeerMatrix[j].AS {
				return agg.PeerMatrix[i].AS < agg.PeerMatrix[j].AS
			}
			return agg.PeerMatrix[i].Addr < agg.PeerMatrix[j].Addr
		})
	}
}

func classMap(tot [core.NumClasses]int) map[string]int {
	m := make(map[string]int, len(tot))
	for _, c := range core.Classes() {
		m[c.String()] = tot[c]
	}
	return m
}

func nanoTime(n int64) time.Time { return time.Unix(0, n).UTC() }

func topOrigins(counts map[bgp.ASN]int, top int) []OriginCount {
	out := make([]OriginCount, 0, len(counts))
	for as, n := range counts {
		out = append(out, OriginCount{AS: uint16(as), Announces: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Announces != out[j].Announces {
			return out[i].Announces > out[j].Announces
		}
		return out[i].AS < out[j].AS
	})
	if len(out) > top {
		out = out[:top]
	}
	return out
}

// aggregateCacheKey is the identity of one cached aggregate: generation,
// kind, top bound, and the canonical query key.
func aggregateCacheKey(gen uint64, kind string, top int, q store.Query) string {
	return "g" + strconv.FormatUint(gen, 10) + "|" + kind + "|" + strconv.Itoa(top) + "|" + q.Key()
}
