package serve

import "instability/internal/obs"

// Serving-plane instrumentation. The admission, cache, and batching stages
// each expose their behavior as process metrics so an operator can see — per
// scrape, not per incident — how much load was admitted, shed, coalesced, or
// answered from memory. Per-tenant series are created only for tenants named
// in the quota table; unknown tokens share the "other" series so an
// adversarial client cannot mint unbounded label cardinality.
var (
	obsSessions = obs.Default().Gauge("irtl_serve_sessions",
		"Reader sessions currently admitted (holding a worker slot).")
	obsShedQueue = obs.Default().Counter("irtl_serve_shed_total",
		"Requests shed by admission control.", obs.L("reason", "queue_full"))
	obsShedQuota = obs.Default().Counter("irtl_serve_shed_total",
		"Requests shed by admission control.", obs.L("reason", "quota"))
	obsShedShutdown = obs.Default().Counter("irtl_serve_shed_total",
		"Requests shed by admission control.", obs.L("reason", "shutdown"))

	obsCacheHits = obs.Default().Counter("irtl_serve_cache_hits_total",
		"Aggregate queries answered from the result cache.")
	obsCacheMisses = obs.Default().Counter("irtl_serve_cache_misses_total",
		"Aggregate queries that had to run against the store.")
	obsCacheEvictions = obs.Default().Counter("irtl_serve_cache_evictions_total",
		"Result-cache entries evicted (size budget or generation change).")
	obsCacheBytes = obs.Default().Gauge("irtl_serve_cache_bytes",
		"Bytes currently held by the result cache.")

	obsCoalesced = obs.Default().Counter("irtl_serve_coalesced_total",
		"Aggregate queries coalesced onto an identical in-flight computation.")
	obsRecordsStreamed = obs.Default().Counter("irtl_serve_records_total",
		"Records streamed to remote readers across both protocols.")
	obsSlowQueries = obs.Default().Counter("irtl_serve_slow_queries_total",
		"Requests over the slow-query threshold (one NDJSON profile line each).")
)

// tenantLabel maps a token to its metrics label: named tenants get their own
// series, everything else shares one.
func tenantLabel(known map[string]Quota, token string) string {
	if _, ok := known[token]; ok {
		return token
	}
	return "other"
}

// requestMetrics returns the per-tenant request counter and latency
// histogram for one (tenant, protocol) pair, get-or-create.
func requestMetrics(tenant, proto string) (*obs.Counter, *obs.Histogram) {
	c := obs.Default().Counter("irtl_serve_requests_total",
		"Requests received, by tenant and protocol.",
		obs.L("tenant", tenant), obs.L("proto", proto))
	h := obs.Default().Histogram("irtl_serve_request_seconds",
		"Request latency from admission to last byte, by tenant.",
		nil, obs.L("tenant", tenant))
	return c, h
}

func init() {
	// Pin the per-tenant families so the exposition names exist from process
	// start (the obs golden-name test and dashboards rely on them) even
	// before the first request arrives.
	requestMetrics("other", "http")
	requestMetrics("other", "binary")
}
