// Package obs is the observability layer for the collection→store→classify
// pipeline: atomic counters and gauges, bounded histograms with quantile
// estimates, lightweight pipeline spans, and an HTTP exposition server.
//
// The paper's entire contribution is measurement; obs turns the measurement
// apparatus itself into a measured system. Every hot path (collector ingest,
// WAL appends, segment seals, query pushdown, the streaming classifier)
// publishes into a process-wide Registry, and any of the cmd tools can serve
// it with -metrics-addr:
//
//	/metrics       Prometheus text exposition
//	/varz          JSON snapshot (histograms include p50/p90/p99)
//	/healthz       liveness probe
//	/debug/pprof/  runtime profiling (net/http/pprof)
//
// The package has no dependencies outside the standard library, and the
// instruments are cheap enough for per-record use: a Counter increment is
// one atomic add, a Gauge set is one atomic store, and a Histogram
// observation is a binary search plus two atomic adds. Metric families are
// created get-or-create, so instrumentation sites can cache pointers in
// package variables and share series across subsystems.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind is the metric family type.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Label is one name=value dimension of a metric series.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// series is one labeled instance within a family. Exactly one of the value
// fields is set, according to the family kind (fn overrides counter/gauge
// for func-backed series).
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups the series of one metric name.
type family struct {
	name  string
	help  string
	kind  Kind
	edges []float64 // histogram bucket layout, shared by all series
	byKey map[string]*series
}

// Registry holds metric families. All methods are safe for concurrent use;
// the accessors are get-or-create, so callers need no registration phase.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	start    time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family), start: time.Now()}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the built-in
// instrumentation publishes into.
func Default() *Registry { return defaultRegistry }

// labelKey canonicalizes a label set (sorted by key) into a map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	return sb.String()
}

func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// get returns (creating if necessary) the series for (name, labels),
// checking the kind of an existing family.
func (r *Registry) get(name, help string, kind Kind, edges []float64, labels []Label) *series {
	labels = sortLabels(labels)
	key := labelKey(labels)

	r.mu.RLock()
	f := r.families[name]
	if f != nil {
		if s := f.byKey[key]; s != nil && f.kind == kind {
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f = r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, edges: edges, byKey: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	if f.help == "" {
		f.help = help
	}
	s := f.byKey[key]
	if s == nil {
		s = &series{labels: labels}
		switch kind {
		case KindCounter:
			s.counter = &Counter{}
		case KindGauge:
			s.gauge = &Gauge{}
		case KindHistogram:
			s.hist = newHistogram(f.edges)
		}
		f.byKey[key] = s
	}
	return s
}

// Counter returns the counter series for (name, labels), creating it if
// needed.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.get(name, help, KindCounter, nil, labels).counter
}

// Gauge returns the gauge series for (name, labels), creating it if needed.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.get(name, help, KindGauge, nil, labels).gauge
}

// CounterFunc registers fn as a func-backed counter series: the value is
// read at exposition time, so a subsystem can export monotone totals it
// already maintains (e.g. the classifier's atomic per-class counts) without
// double bookkeeping or locking. Re-registering replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.get(name, help, KindCounter, nil, labels).fn = fn
}

// GaugeFunc registers fn as a func-backed gauge series. Re-registering
// replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.get(name, help, KindGauge, nil, labels).fn = fn
}

// Histogram returns the histogram series for (name, labels), creating it
// with the given bucket upper edges (nil means DurationBuckets). The first
// creation of a family fixes its bucket layout.
func (r *Registry) Histogram(name, help string, edges []float64, labels ...Label) *Histogram {
	if edges == nil {
		edges = DurationBuckets
	}
	return r.get(name, help, KindHistogram, edges, labels).hist
}

// Value returns the current value of the counter or gauge series for
// (name, labels), or 0 if it does not exist. Self-reports use this to read
// back what the instrumentation already counted.
func (r *Registry) Value(name string, labels ...Label) float64 {
	key := labelKey(sortLabels(labels))
	r.mu.RLock()
	defer r.mu.RUnlock()
	f := r.families[name]
	if f == nil {
		return 0
	}
	s := f.byKey[key]
	if s == nil {
		return 0
	}
	return seriesValue(s)
}

// Sum returns the sum of every counter/gauge series of the family, e.g. the
// total across all label values of a per-type counter.
func (r *Registry) Sum(name string) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f := r.families[name]
	if f == nil || f.kind == KindHistogram {
		return 0
	}
	total := 0.0
	for _, s := range f.byKey {
		total += seriesValue(s)
	}
	return total
}

func seriesValue(s *series) float64 {
	switch {
	case s.fn != nil:
		return s.fn()
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return s.gauge.Value()
	}
	return 0
}

// Uptime reports how long ago the registry was created.
func (r *Registry) Uptime() time.Duration { return time.Since(r.start) }

// snapshot returns the families sorted by name and their series sorted by
// label key, for deterministic exposition.
func (r *Registry) snapshot() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns a family's series sorted by label key. Callers must
// hold no registry lock; series maps are only appended to under the
// registry lock, so the read here takes it briefly.
func (r *Registry) sortedSeries(f *family) []*series {
	r.mu.RLock()
	defer r.mu.RUnlock()
	keys := make([]string, 0, len(f.byKey))
	for k := range f.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, len(keys))
	for i, k := range keys {
		out[i] = f.byKey[k]
	}
	return out
}
