package obs

import (
	"testing"
	"time"
)

func TestSpanTiming(t *testing.T) {
	reg := NewRegistry()
	sp := reg.StartSpan("classify")
	sp.Add(100)
	sp.Add(23)
	time.Sleep(10 * time.Millisecond)
	d := sp.End()
	if d < 10*time.Millisecond {
		t.Errorf("span duration = %v, want >= 10ms", d)
	}

	lbl := L("stage", "classify")
	if got := reg.Value("irtl_stage_runs_total", lbl); got != 1 {
		t.Errorf("runs = %g, want 1", got)
	}
	if got := reg.Value("irtl_stage_events_total", lbl); got != 123 {
		t.Errorf("events = %g, want 123", got)
	}
	h := reg.Histogram("irtl_stage_seconds", "", DurationBuckets, lbl)
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
	if h.Sum() < 0.010 {
		t.Errorf("histogram sum = %g, want >= 0.010", h.Sum())
	}

	// A second span of the same stage accumulates into the same series.
	sp2 := reg.StartSpan("classify")
	sp2.Add(1)
	sp2.End()
	if got := reg.Value("irtl_stage_runs_total", lbl); got != 2 {
		t.Errorf("runs after second span = %g, want 2", got)
	}
	if got := h.Count(); got != 2 {
		t.Errorf("histogram count after second span = %d, want 2", got)
	}
}

func TestSpanStagesAreIndependent(t *testing.T) {
	reg := NewRegistry()
	reg.StartSpan("ingest").End()
	reg.StartSpan("seal").End()
	if got := reg.Value("irtl_stage_runs_total", L("stage", "ingest")); got != 1 {
		t.Errorf("ingest runs = %g, want 1", got)
	}
	if got := reg.Value("irtl_stage_runs_total", L("stage", "seal")); got != 1 {
		t.Errorf("seal runs = %g, want 1", got)
	}
	if got := reg.Sum("irtl_stage_runs_total"); got != 2 {
		t.Errorf("total runs = %g, want 2", got)
	}
}
