package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is usable.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n. Negative deltas are ignored; counters are
// monotone.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can go up and down. The zero value
// is usable and reads as 0.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(n int64) { g.Set(float64(n)) }

// Add applies a delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DurationBuckets is the default histogram layout for latencies, in
// seconds: roughly logarithmic from 1µs to 10s, which spans everything from
// a message decode to a multi-window compaction.
var DurationBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// ExpBuckets returns n bucket upper edges starting at start, each factor
// times the previous — for sizing non-latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram is a bounded histogram: observations land in fixed buckets
// (upper edges plus overflow), and quantiles are estimated by linear
// interpolation within the containing bucket. All methods are safe for
// concurrent use; an observation costs a binary search and two atomic adds.
type Histogram struct {
	edges   []float64
	buckets []atomic.Uint64 // len(edges)+1; last is the overflow bucket
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(edges []float64) *Histogram {
	return &Histogram{edges: edges, buckets: make([]atomic.Uint64, len(edges)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.edges, v) // first edge >= v; overflow past the end
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the idiom for timing
// a code path: t0 := time.Now(); ...; h.ObserveSince(t0).
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts:
// the rank is located in its bucket and interpolated linearly between the
// bucket's edges. Values beyond the last edge clamp to it. Returns 0 for an
// empty histogram.
//
// The estimate is read from a live histogram without locking; concurrent
// observations can make the per-bucket counts add to slightly more or less
// than the snapshot total, which only shifts the estimate within a bucket.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		if i >= len(h.edges) {
			return h.edges[len(h.edges)-1] // overflow: clamp to the last edge
		}
		lo := 0.0
		if i > 0 {
			lo = h.edges[i-1]
		}
		hi := h.edges[i]
		return lo + (hi-lo)*((rank-cum)/n)
	}
	return h.edges[len(h.edges)-1]
}
