package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by label
// key, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshot() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range r.sortedSeries(f) {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case KindCounter, KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(s.labels, "", ""), formatFloat(seriesValue(s)))
		return err
	case KindHistogram:
		h := s.hist
		cum := uint64(0)
		for i, edge := range h.edges {
			cum += h.buckets[i].Load()
			le := formatFloat(edge)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(s.labels, "le", le), cum); err != nil {
				return err
			}
		}
		cum += h.buckets[len(h.edges)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(s.labels, "le", "+Inf"), cum); err != nil {
			return err
		}
		ls := labelString(s.labels, "", "")
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", f.name, ls, formatFloat(h.Sum()), f.name, ls, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// labelString renders {k="v",...}, optionally appending one extra label
// (the histogram le). Returns "" for an empty set.
func labelString(labels []Label, extraKey, extraValue string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, escapeValue(l.Value))
	}
	if extraKey != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", extraKey, extraValue)
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeValue(s string) string {
	// %q adds quote escaping; newlines must become \n per the format.
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// varzHistogram is the JSON shape of a histogram snapshot.
type varzHistogram struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// WriteJSON renders the registry as a JSON object: uptime plus one entry
// per series, keyed "name" or "name{k=v,...}". Histograms become
// {count, sum, p50, p90, p99}.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := struct {
		UptimeSeconds float64        `json:"uptime_seconds"`
		Metrics       map[string]any `json:"metrics"`
	}{
		UptimeSeconds: r.Uptime().Seconds(),
		Metrics:       make(map[string]any),
	}
	for _, f := range r.snapshot() {
		for _, s := range r.sortedSeries(f) {
			key := f.name
			if lk := labelKey(s.labels); lk != "" {
				key += "{" + lk + "}"
			}
			switch f.kind {
			case KindCounter, KindGauge:
				out.Metrics[key] = seriesValue(s)
			case KindHistogram:
				h := s.hist
				out.Metrics[key] = varzHistogram{
					Count: h.Count(),
					Sum:   h.Sum(),
					P50:   h.Quantile(0.50),
					P90:   h.Quantile(0.90),
					P99:   h.Quantile(0.99),
				}
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
