package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestPrometheusGolden locks the exposition format: family ordering, label
// rendering, histogram bucket cumulation.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zeta_total", "last by name").Add(3)
	reg.Counter("alpha_events_total", "events by class", L("class", "AADup")).Add(5)
	reg.Counter("alpha_events_total", "", L("class", "WWDup")).Add(7)
	reg.Gauge("beta_open", "open things").Set(2)
	h := reg.Histogram("gamma_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(5) // overflow

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP alpha_events_total events by class
# TYPE alpha_events_total counter
alpha_events_total{class="AADup"} 5
alpha_events_total{class="WWDup"} 7
# HELP beta_open open things
# TYPE beta_open gauge
beta_open 2
# HELP gamma_seconds latency
# TYPE gamma_seconds histogram
gamma_seconds_bucket{le="0.01"} 2
gamma_seconds_bucket{le="0.1"} 2
gamma_seconds_bucket{le="1"} 3
gamma_seconds_bucket{le="+Inf"} 4
gamma_seconds_sum 5.51
gamma_seconds_count 4
# HELP zeta_total last by name
# TYPE zeta_total counter
zeta_total 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusLabeledHistogram(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("stage_seconds", "", []float64{1}, L("stage", "seal")).Observe(0.5)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`stage_seconds_bucket{stage="seal",le="1"} 1`,
		`stage_seconds_bucket{stage="seal",le="+Inf"} 1`,
		`stage_seconds_sum{stage="seal"} 0.5`,
		`stage_seconds_count{stage="seal"} 1`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("missing %q in:\n%s", want, sb.String())
		}
	}
}

func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "").Add(9)
	reg.Gauge("b", "", L("x", "y")).Set(1.5)
	h := reg.Histogram("c_seconds", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)

	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var out struct {
		UptimeSeconds float64                    `json:"uptime_seconds"`
		Metrics       map[string]json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if out.UptimeSeconds < 0 {
		t.Errorf("uptime = %g, want >= 0", out.UptimeSeconds)
	}
	var a float64
	if err := json.Unmarshal(out.Metrics["a_total"], &a); err != nil || a != 9 {
		t.Errorf("a_total = %v (%v), want 9", a, err)
	}
	if _, ok := out.Metrics["b{x=y}"]; !ok {
		t.Errorf("missing labeled gauge key b{x=y}; have %v", keys(out.Metrics))
	}
	var hist varzHistogram
	if err := json.Unmarshal(out.Metrics["c_seconds"], &hist); err != nil {
		t.Fatalf("histogram JSON: %v", err)
	}
	if hist.Count != 2 || hist.Sum != 2 {
		t.Errorf("histogram = %+v, want count 2 sum 2", hist)
	}
	if hist.P99 <= 0 {
		t.Errorf("p99 = %g, want > 0", hist.P99)
	}
}

func keys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestHTTPEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served_total", "").Inc()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "served_total 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get("/varz"); code != 200 || !strings.Contains(body, "served_total") {
		t.Errorf("/varz = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (len %d)", code, len(body))
	}
}

func TestServe(t *testing.T) {
	reg := NewRegistry()
	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
}
