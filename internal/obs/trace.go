package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped tracing: a Trace is a tree of TraceSpans describing one
// request's path through the system (admission wait, cache lookup, segment
// scan, record encode, ...). Spans carry typed key=value annotations and are
// linked by 64-bit span IDs under a 64-bit trace ID, so a trace that crosses
// a process boundary (the serve client → bgpserve → store) reassembles into
// one tree.
//
// Tracing is off by default and the disabled path is allocation-free: every
// *TraceSpan method is nil-receiver safe, SpanFromContext returns nil when no
// trace is active, and Tracer.Start returns (ctx, nil) untouched when the
// tracer is disabled. Hot paths therefore thread a span through
// unconditionally and never branch on "is tracing on".
//
// Completed traces land in a fixed-size ring buffer. Retention is decided at
// the root: head-based probabilistic sampling (decided when the trace starts,
// propagated across the wire so all participants agree) plus
// always-keep-if-over-threshold, so slow outliers survive even at low sample
// rates. The ring is served by /debug/traces (JSON list, per-trace tree, and
// an ASCII waterfall).

// TraceHeader is the HTTP header carrying trace context across the serving
// plane: "<traceID hex16>-<spanID hex16>-<flags hex>", flags bit 0 = sampled.
const TraceHeader = "X-Irtl-Trace"

// TraceFlagSampled marks a trace selected by head sampling at its root.
const TraceFlagSampled = 1

// maxSpansPerTrace bounds a single trace's span count; beyond it StartChild
// returns nil (a no-op span) and the trace is annotated as truncated.
const maxSpansPerTrace = 512

// TraceConfig configures a Tracer.
type TraceConfig struct {
	// SampleRate is the head-sampling probability in [0,1]; a root trace is
	// kept with this probability even if fast.
	SampleRate float64
	// SlowThreshold keeps any trace whose root span runs at least this long,
	// regardless of the sampling decision. Zero means 1s; negative disables
	// the slow path.
	SlowThreshold time.Duration
	// RingSize is the number of completed traces retained (default 256).
	RingSize int
}

// Trace metrics (default registry: all tracers publish into one family set).
var (
	obsTraceStarted     = Default().Counter("irtl_trace_traces_total", "Trace roots started or joined.")
	obsTraceSpans       = Default().Counter("irtl_trace_spans_total", "Trace spans created.")
	obsTraceKeptSampled = Default().Counter("irtl_trace_kept_total", "Completed traces retained in the ring.", L("reason", "sampled"))
	obsTraceKeptSlow    = Default().Counter("irtl_trace_kept_total", "Completed traces retained in the ring.", L("reason", "slow"))
	obsTraceDropped     = Default().Counter("irtl_trace_dropped_total", "Completed traces discarded (not sampled, under threshold).")
)

// Tracer owns the sampling policy and the ring of completed traces.
// The zero value is a disabled tracer; Enable turns it on.
type Tracer struct {
	cfg  atomic.Pointer[TraceConfig] // nil = disabled
	rng  atomic.Uint64               // splitmix64 state, lazily seeded
	mu   sync.Mutex
	ring []*Trace // circular, ring[next] is the oldest slot
	next int
	seen uint64 // total traces collected into the ring
}

var defaultTracer Tracer

// DefaultTracer returns the process-wide tracer, disabled until
// EnableTracing. The serve plane and the CLI -trace-sample flags all use it.
func DefaultTracer() *Tracer { return &defaultTracer }

// EnableTracing enables the default tracer.
func EnableTracing(cfg TraceConfig) { defaultTracer.Enable(cfg) }

// Enable turns the tracer on (or reconfigures it). RingSize changes reset
// the ring.
func (t *Tracer) Enable(cfg TraceConfig) {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = time.Second
	}
	if cfg.SampleRate < 0 {
		cfg.SampleRate = 0
	}
	if cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}
	t.mu.Lock()
	if len(t.ring) != cfg.RingSize {
		t.ring = make([]*Trace, cfg.RingSize)
		t.next = 0
	}
	t.mu.Unlock()
	t.cfg.Store(&cfg)
}

// Disable turns the tracer off. In-flight traces finish but are not
// collected. The ring is kept so already-captured traces stay inspectable.
func (t *Tracer) Disable() { t.cfg.Store(nil) }

// Enabled reports whether the tracer is currently collecting.
func (t *Tracer) Enabled() bool { return t.cfg.Load() != nil }

// splitmix64 is the ID/sampling generator: fast, seedless-crypto-free, and
// good enough for uniqueness across one process's lifetime.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (t *Tracer) nextID() uint64 {
	for {
		old := t.rng.Load()
		seed := old
		if seed == 0 {
			seed = uint64(time.Now().UnixNano()) | 1
		}
		nxt := seed + 0x9e3779b97f4a7c15
		if t.rng.CompareAndSwap(old, nxt) {
			id := splitmix64(nxt)
			if id == 0 {
				id = 1
			}
			return id
		}
	}
}

// Trace is one request's span tree plus its retention decision.
type Trace struct {
	tracer *Tracer
	ID     uint64
	// Sampled is the head-sampling decision, made at the root (or inherited
	// from the remote parent) and propagated on the wire.
	Sampled bool
	// Remote marks traces joined from a wire parent rather than rooted here.
	Remote bool
	start  time.Time

	mu        sync.Mutex
	spans     []*TraceSpan
	truncated bool
	root      *TraceSpan
}

// TraceSpan is one timed operation within a trace. A span belongs to a
// single goroutine: Annotate/AnnotateInt/SetError/Finish must not race with
// each other or with child creation on the same span. Concurrent work gets
// its own child span per goroutine.
type TraceSpan struct {
	tr     *Trace
	ID     uint64
	Parent uint64 // parent span ID; 0 for the root
	Name   string
	start  time.Time
	dur    time.Duration // set by Finish
	done   bool
	attrs  []Annotation
	errMsg string
}

// Annotation is a typed key=value note on a span.
type Annotation struct {
	Key   string
	Str   string // set when !IsInt
	Int   int64  // set when IsInt
	IsInt bool
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sp as the active span. A nil sp
// returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sp *TraceSpan) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the active span, or nil if the context carries
// none. The nil result is usable: every *TraceSpan method no-ops on nil.
func SpanFromContext(ctx context.Context) *TraceSpan {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*TraceSpan)
	return sp
}

// Start begins a new root trace if the tracer is enabled, returning the
// derived context and root span. When disabled it returns (ctx, nil) with no
// allocation, so callers always Finish the result unconditionally.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *TraceSpan) {
	cfg := t.cfg.Load()
	if cfg == nil {
		return ctx, nil
	}
	sampled := cfg.SampleRate > 0 && float64(t.nextID()>>11)/(1<<53) < cfg.SampleRate
	return t.newRoot(ctx, name, t.nextID(), 0, sampled, false)
}

// Join begins a trace that continues a remote parent: the root span here has
// the given trace ID and parent span ID, and inherits the remote sampling
// decision. When the tracer is disabled it returns (ctx, nil).
func (t *Tracer) Join(ctx context.Context, name string, traceID, parentSpanID uint64, sampled bool) (context.Context, *TraceSpan) {
	if t.cfg.Load() == nil {
		return ctx, nil
	}
	if traceID == 0 {
		return t.Start(ctx, name)
	}
	return t.newRoot(ctx, name, traceID, parentSpanID, sampled, true)
}

// JoinHeader is Join for an X-Irtl-Trace header value; an absent or
// malformed header starts a fresh root instead.
func (t *Tracer) JoinHeader(ctx context.Context, name, header string) (context.Context, *TraceSpan) {
	if t.cfg.Load() == nil {
		return ctx, nil
	}
	traceID, spanID, sampled, ok := ParseTraceHeader(header)
	if !ok {
		return t.Start(ctx, name)
	}
	return t.Join(ctx, name, traceID, spanID, sampled)
}

func (t *Tracer) newRoot(ctx context.Context, name string, traceID, parentSpanID uint64, sampled, remote bool) (context.Context, *TraceSpan) {
	now := time.Now()
	tr := &Trace{tracer: t, ID: traceID, Sampled: sampled, Remote: remote, start: now}
	sp := &TraceSpan{tr: tr, ID: t.nextID(), Parent: parentSpanID, Name: name, start: now}
	tr.root = sp
	tr.spans = append(tr.spans, sp)
	obsTraceStarted.Inc()
	obsTraceSpans.Inc()
	return ContextWithSpan(ctx, sp), sp
}

// StartChild begins a child of the span carried by ctx, returning the
// derived context and the child. With no active span it returns (ctx, nil):
// zero allocations, and the nil child's methods all no-op.
func StartChild(ctx context.Context, name string) (context.Context, *TraceSpan) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	if child == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, child), child
}

// StartChild begins a child span. Nil-safe: a nil receiver returns nil.
// Children past maxSpansPerTrace are dropped (nil) and the trace marked
// truncated.
func (sp *TraceSpan) StartChild(name string) *TraceSpan {
	if sp == nil {
		return nil
	}
	tr := sp.tr
	child := &TraceSpan{tr: tr, ID: tr.tracer.nextID(), Parent: sp.ID, Name: name, start: time.Now()}
	tr.mu.Lock()
	if len(tr.spans) >= maxSpansPerTrace {
		tr.truncated = true
		tr.mu.Unlock()
		return nil
	}
	tr.spans = append(tr.spans, child)
	tr.mu.Unlock()
	obsTraceSpans.Inc()
	return child
}

// Annotate attaches a string key=value note. Nil-safe.
func (sp *TraceSpan) Annotate(key, val string) {
	if sp == nil {
		return
	}
	sp.attrs = append(sp.attrs, Annotation{Key: key, Str: val})
}

// AnnotateInt attaches an integer key=value note. Nil-safe.
func (sp *TraceSpan) AnnotateInt(key string, v int64) {
	if sp == nil {
		return
	}
	sp.attrs = append(sp.attrs, Annotation{Key: key, Int: v, IsInt: true})
}

// SetError marks the span failed with err's message. Nil-safe; a nil err is
// ignored.
func (sp *TraceSpan) SetError(err error) {
	if sp == nil || err == nil {
		return
	}
	sp.errMsg = err.Error()
}

// Err returns the span's error message ("" if none). Nil-safe.
func (sp *TraceSpan) Err() string {
	if sp == nil {
		return ""
	}
	return sp.errMsg
}

// Finish ends the span and returns its duration. Finishing the root decides
// retention and, if kept, publishes the trace to the tracer's ring.
// Idempotent and nil-safe (nil or double Finish returns the recorded or zero
// duration).
func (sp *TraceSpan) Finish() time.Duration {
	if sp == nil {
		return 0
	}
	if sp.done {
		return sp.dur
	}
	sp.done = true
	sp.dur = time.Since(sp.start)
	if sp.tr.root == sp && sp.tr.tracer != nil {
		sp.tr.tracer.collect(sp.tr, sp.dur)
	}
	return sp.dur
}

// Duration returns the span's recorded duration (0 until Finish). Nil-safe.
func (sp *TraceSpan) Duration() time.Duration {
	if sp == nil {
		return 0
	}
	return sp.dur
}

// TraceID returns the owning trace's ID, 0 for nil.
func (sp *TraceSpan) TraceID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.tr.ID
}

// SpanID returns the span's ID, 0 for nil.
func (sp *TraceSpan) SpanID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.ID
}

// Sampled reports the trace's head-sampling decision, false for nil.
func (sp *TraceSpan) Sampled() bool {
	if sp == nil {
		return false
	}
	return sp.tr.Sampled
}

// Header renders the span as an X-Irtl-Trace value for propagation, "" for
// nil (send no header).
func (sp *TraceSpan) Header() string {
	if sp == nil {
		return ""
	}
	return FormatTraceHeader(sp.tr.ID, sp.ID, sp.tr.Sampled)
}

// collect decides retention for a completed trace and rings it.
func (t *Tracer) collect(tr *Trace, rootDur time.Duration) {
	cfg := t.cfg.Load()
	if cfg == nil {
		return
	}
	keep := tr.Sampled
	slow := cfg.SlowThreshold >= 0 && rootDur >= cfg.SlowThreshold
	switch {
	case keep:
		obsTraceKeptSampled.Inc()
	case slow:
		obsTraceKeptSlow.Inc()
	default:
		obsTraceDropped.Inc()
		return
	}
	t.mu.Lock()
	if len(t.ring) == 0 {
		t.mu.Unlock()
		return
	}
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
	t.seen++
	t.mu.Unlock()
}

// Traces returns the retained traces, newest first.
func (t *Tracer) Traces() []*Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, len(t.ring))
	for i := 1; i <= len(t.ring); i++ {
		tr := t.ring[(t.next-i+len(t.ring))%len(t.ring)]
		if tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// Spans snapshots the trace's spans in creation order. Valid on a collected
// trace; on an in-flight trace it returns whatever has been started so far.
func (tr *Trace) Spans() []*TraceSpan {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]*TraceSpan, len(tr.spans))
	copy(out, tr.spans)
	return out
}

// Root returns the trace's root span.
func (tr *Trace) Root() *TraceSpan { return tr.root }

// Truncated reports whether the trace hit the span budget.
func (tr *Trace) Truncated() bool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.truncated
}

// Attrs returns the span's annotations. Nil-safe. The slice is the span's
// own; callers must not mutate it and must only read it after the span has
// finished.
func (sp *TraceSpan) Attrs() []Annotation {
	if sp == nil {
		return nil
	}
	return sp.attrs
}

// Find returns the retained trace with the given ID, or nil.
func (t *Tracer) Find(id uint64) *Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tr := range t.ring {
		if tr != nil && tr.ID == id {
			return tr
		}
	}
	return nil
}

// FormatTraceHeader renders trace context in the X-Irtl-Trace wire form:
// "<traceID hex16>-<spanID hex16>-<flags hex>".
func FormatTraceHeader(traceID, spanID uint64, sampled bool) string {
	flags := 0
	if sampled {
		flags = TraceFlagSampled
	}
	return fmt.Sprintf("%016x-%016x-%x", traceID, spanID, flags)
}

// ParseTraceHeader parses an X-Irtl-Trace value. ok is false for an empty or
// malformed value, or a zero trace ID.
func ParseTraceHeader(s string) (traceID, spanID uint64, sampled, ok bool) {
	if len(s) < 35 || s[16] != '-' || s[33] != '-' {
		return 0, 0, false, false
	}
	var flags uint64
	if _, err := fmt.Sscanf(s, "%16x-%16x-%x", &traceID, &spanID, &flags); err != nil {
		return 0, 0, false, false
	}
	if traceID == 0 {
		return 0, 0, false, false
	}
	return traceID, spanID, flags&TraceFlagSampled != 0, true
}
