package obs

import (
	"context"
	"time"
)

// Span measures one execution of a named pipeline stage: wall time plus an
// event count, published on End as
//
//	irtl_stage_seconds{stage=...}       histogram of stage durations
//	irtl_stage_runs_total{stage=...}    completed executions
//	irtl_stage_events_total{stage=...}  events processed across executions
//
// A Span is a thin wrapper over a TraceSpan, so a stage that runs inside a
// traced request (StartSpanCtx) shows up both in the aggregate stage metrics
// and as a node in the request's trace — one timing source, read once at End.
//
// A Span belongs to ONE goroutine. Add, Annotate, and End are not safe for
// concurrent use on the same span, and this is enforced in spirit by the
// race detector: TestSpanSingleGoroutine exercises the documented discipline
// under -race. Concurrent stages take one Span per goroutine. Spans are for
// stage-granularity timing (an ingest pass, a seal, a classify run), not
// per-record use.
type Span struct {
	reg    *Registry
	stage  string
	events int64
	ts     *TraceSpan // detached (traceless) unless created via StartSpanCtx
}

// StartSpan begins a stage span in the registry. The span's TraceSpan is
// detached — it times the stage but belongs to no trace.
func (r *Registry) StartSpan(stage string) *Span {
	return &Span{reg: r, stage: stage, ts: detachedSpan(stage)}
}

// StartSpan begins a stage span in the default registry.
func StartSpan(stage string) *Span { return Default().StartSpan(stage) }

// StartSpanCtx begins a stage span that is also a child TraceSpan of the
// trace carried by ctx (if any), returning the span and the derived context.
// With no active trace the stage metrics still publish; only the trace node
// is absent.
func (r *Registry) StartSpanCtx(ctx context.Context, stage string) (*Span, context.Context) {
	sp := &Span{reg: r, stage: stage}
	cctx, ts := StartChild(ctx, stage)
	if ts == nil {
		sp.ts = detachedSpan(stage)
		return sp, ctx
	}
	sp.ts = ts
	return sp, cctx
}

// StartSpanCtx begins a context-linked stage span in the default registry.
func StartSpanCtx(ctx context.Context, stage string) (*Span, context.Context) {
	return Default().StartSpanCtx(ctx, stage)
}

// detachedSpan makes a TraceSpan that belongs to no trace: it records timing
// for the wrapping Span but Finish never publishes anywhere.
func detachedSpan(name string) *TraceSpan {
	tr := &Trace{start: time.Now()}
	ts := &TraceSpan{tr: tr, Name: name, start: tr.start}
	tr.root = ts
	return ts
}

// Trace returns the span's TraceSpan (never nil), for annotations that
// should appear in the request trace.
func (sp *Span) Trace() *TraceSpan { return sp.ts }

// Add notes n events processed by the stage.
func (sp *Span) Add(n int64) { sp.events += n }

// Events returns the events recorded so far.
func (sp *Span) Events() int64 { return sp.events }

// End publishes the span and returns its duration, read from the underlying
// TraceSpan so trace and metrics agree exactly.
func (sp *Span) End() time.Duration {
	d := sp.ts.Finish()
	sp.ts.AnnotateInt("events", sp.events)
	lbl := L("stage", sp.stage)
	sp.reg.Histogram("irtl_stage_seconds", "Pipeline stage wall time.", DurationBuckets, lbl).Observe(d.Seconds())
	sp.reg.Counter("irtl_stage_runs_total", "Completed pipeline stage executions.", lbl).Inc()
	sp.reg.Counter("irtl_stage_events_total", "Events processed by pipeline stages.", lbl).Add(sp.events)
	return d
}
