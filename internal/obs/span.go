package obs

import "time"

// Span measures one execution of a named pipeline stage: wall time plus an
// event count, published on End as
//
//	irtl_stage_seconds{stage=...}       histogram of stage durations
//	irtl_stage_runs_total{stage=...}    completed executions
//	irtl_stage_events_total{stage=...}  events processed across executions
//
// A Span belongs to one goroutine; Add and End are not safe for concurrent
// use on the same span. Spans are meant for stage-granularity timing (an
// ingest pass, a seal, a classify run), not per-record use.
type Span struct {
	reg    *Registry
	stage  string
	start  time.Time
	events int64
}

// StartSpan begins a stage span in the registry.
func (r *Registry) StartSpan(stage string) *Span {
	return &Span{reg: r, stage: stage, start: time.Now()}
}

// StartSpan begins a stage span in the default registry.
func StartSpan(stage string) *Span { return Default().StartSpan(stage) }

// Add notes n events processed by the stage.
func (sp *Span) Add(n int64) { sp.events += n }

// Events returns the events recorded so far.
func (sp *Span) Events() int64 { return sp.events }

// End publishes the span and returns its duration.
func (sp *Span) End() time.Duration {
	d := time.Since(sp.start)
	lbl := L("stage", sp.stage)
	sp.reg.Histogram("irtl_stage_seconds", "Pipeline stage wall time.", DurationBuckets, lbl).Observe(d.Seconds())
	sp.reg.Counter("irtl_stage_runs_total", "Completed pipeline stage executions.", lbl).Inc()
	sp.reg.Counter("irtl_stage_events_total", "Events processed by pipeline stages.", lbl).Add(sp.events)
	return d
}
