package obs

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// enabledTracer returns a private tracer so tests do not disturb the
// process-wide default.
func enabledTracer(cfg TraceConfig) *Tracer {
	t := &Tracer{}
	t.Enable(cfg)
	return t
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	cases := []struct {
		traceID, spanID uint64
		sampled         bool
	}{
		{1, 2, false},
		{0xdeadbeefcafef00d, 0x0123456789abcdef, true},
		{1 << 63, 1, true},
	}
	for _, c := range cases {
		h := FormatTraceHeader(c.traceID, c.spanID, c.sampled)
		traceID, spanID, sampled, ok := ParseTraceHeader(h)
		if !ok || traceID != c.traceID || spanID != c.spanID || sampled != c.sampled {
			t.Fatalf("round trip %+v via %q: got (%x, %x, %v, %v)", c, h, traceID, spanID, sampled, ok)
		}
	}
	for _, bad := range []string{
		"",
		"not-a-header",
		"0000000000000000-0000000000000001-1", // zero trace ID
		"000000000000000g-0000000000000001-1", // bad hex
		"00000000000000010000000000000001-1",  // missing separator
	} {
		if _, _, _, ok := ParseTraceHeader(bad); ok {
			t.Fatalf("ParseTraceHeader(%q) accepted", bad)
		}
	}
}

// TestTraceDisabledZeroAlloc is the hot-path contract: with tracing off, the
// full span API (root start, child start, annotate, finish) allocates
// nothing.
func TestTraceDisabledZeroAlloc(t *testing.T) {
	tr := &Tracer{} // zero value = disabled
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		cctx, root := tr.Start(ctx, "root")
		_, child := StartChild(cctx, "child")
		child.Annotate("k", "v")
		child.AnnotateInt("n", 42)
		child.SetError(nil)
		child.Finish()
		root.Finish()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f per op, want 0", allocs)
	}
}

// TestTraceSamplingAndRing: SampleRate 1 keeps everything, SampleRate 0 with
// the slow path disabled drops everything, and the ring is bounded and
// newest-first.
func TestTraceSamplingAndRing(t *testing.T) {
	tr := enabledTracer(TraceConfig{SampleRate: 1, SlowThreshold: -1, RingSize: 4})
	for i := 0; i < 6; i++ {
		_, root := tr.Start(context.Background(), "req")
		root.Finish()
	}
	kept := tr.Traces()
	if len(kept) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(kept))
	}
	for _, k := range kept {
		if !k.Sampled {
			t.Fatalf("trace %x not marked sampled", k.ID)
		}
		if tr.Find(k.ID) != k {
			t.Fatalf("Find(%x) missed", k.ID)
		}
	}

	drop := enabledTracer(TraceConfig{SampleRate: 0, SlowThreshold: -1, RingSize: 4})
	for i := 0; i < 6; i++ {
		_, root := drop.Start(context.Background(), "req")
		root.Finish()
	}
	if got := drop.Traces(); len(got) != 0 {
		t.Fatalf("unsampled tracer kept %d traces, want 0", len(got))
	}
}

// TestTraceSlowKeep: a trace over the threshold survives a zero sample rate.
func TestTraceSlowKeep(t *testing.T) {
	tr := enabledTracer(TraceConfig{SampleRate: 0, SlowThreshold: time.Microsecond, RingSize: 4})
	_, root := tr.Start(context.Background(), "slow")
	time.Sleep(2 * time.Millisecond)
	root.Finish()
	kept := tr.Traces()
	if len(kept) != 1 {
		t.Fatalf("slow trace not kept (ring has %d)", len(kept))
	}
	if kept[0].Sampled {
		t.Fatal("slow-kept trace claims head sampling")
	}
}

// TestTraceTreeShape: child spans link to their parents, annotations and
// errors land on the right span, and the span budget truncates gracefully.
func TestTraceTreeShape(t *testing.T) {
	tr := enabledTracer(TraceConfig{SampleRate: 1, SlowThreshold: -1, RingSize: 4})
	ctx, root := tr.Start(context.Background(), "root")
	cctx, c1 := StartChild(ctx, "scan")
	c1.AnnotateInt("blocks", 7)
	_, c2 := StartChild(cctx, "segment")
	c2.SetError(errors.New("boom"))
	c2.Finish()
	c1.Finish()
	root.Finish()

	trc := tr.Find(root.TraceID())
	if trc == nil {
		t.Fatal("trace not collected")
	}
	if len(trc.spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(trc.spans))
	}
	if c1.Parent != root.ID || c2.Parent != c1.ID {
		t.Fatal("parent links wrong")
	}
	if c2.Err() != "boom" {
		t.Fatalf("child error = %q", c2.Err())
	}

	// Exhaust the span budget: children beyond the cap are nil no-ops and the
	// trace is marked truncated.
	_, bigRoot := tr.Start(context.Background(), "big")
	var last *TraceSpan
	for i := 0; i < maxSpansPerTrace+10; i++ {
		last = bigRoot.StartChild("c")
		last.Finish()
	}
	if last != nil {
		t.Fatal("span budget not enforced")
	}
	bigRoot.Finish()
	if big := tr.Find(bigRoot.TraceID()); big == nil || !big.truncated {
		t.Fatal("over-budget trace not marked truncated")
	}
}

// TestTraceJoin: a joined trace shares the remote trace ID, records the
// remote parent span, inherits the sampling decision, and is marked Remote.
func TestTraceJoin(t *testing.T) {
	tr := enabledTracer(TraceConfig{SampleRate: 0, SlowThreshold: -1, RingSize: 4})
	_, root := tr.Join(context.Background(), "serve_query", 0xabc, 0xdef, true)
	if root.TraceID() != 0xabc || root.Parent != 0xdef || !root.Sampled() {
		t.Fatalf("join: trace %x parent %x sampled %v", root.TraceID(), root.Parent, root.Sampled())
	}
	root.Finish()
	trc := tr.Find(0xabc)
	if trc == nil || !trc.Remote {
		t.Fatal("joined trace not collected as remote")
	}

	// A zero trace ID (untraced v2 client) falls back to a fresh root.
	_, fresh := tr.Join(context.Background(), "serve_query", 0, 0, false)
	if fresh.TraceID() == 0 {
		t.Fatal("zero-ID join did not mint a trace ID")
	}
	fresh.Finish()

	// JoinHeader parses the wire form; garbage starts a fresh root.
	_, h := tr.JoinHeader(context.Background(), "q", FormatTraceHeader(0x123, 0x456, true))
	if h.TraceID() != 0x123 || !h.Sampled() {
		t.Fatalf("JoinHeader: trace %x sampled %v", h.TraceID(), h.Sampled())
	}
	h.Finish()
	_, g := tr.JoinHeader(context.Background(), "q", "garbage")
	if g == nil || g.TraceID() == 0x123 {
		t.Fatal("garbage header did not start a fresh root")
	}
	g.Finish()
}

// TestTraceConcurrentChildren is the race-regression test for the
// span-per-goroutine contract: many goroutines each own a child span
// (create, annotate, finish) concurrently, then the completed trace renders
// while new traces are being collected. Run under -race.
func TestTraceConcurrentChildren(t *testing.T) {
	tr := enabledTracer(TraceConfig{SampleRate: 1, SlowThreshold: -1, RingSize: 64})
	ctx, root := tr.Start(context.Background(), "fanout")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sp := StartChild(ctx, "worker")
			sp.AnnotateInt("i", int64(i))
			sp.Annotate("state", "done")
			sp.Finish()
		}(i)
	}
	wg.Wait()
	root.Finish()

	var renders sync.WaitGroup
	for i := 0; i < 4; i++ {
		renders.Add(1)
		go func() {
			defer renders.Done()
			for j := 0; j < 20; j++ {
				for _, trc := range tr.Traces() {
					var sb strings.Builder
					waterfall(trc, &sb)
					_ = tree(trc)
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		cctx, r := tr.Start(context.Background(), "more")
		_, c := StartChild(cctx, "child")
		c.Finish()
		r.Finish()
	}
	renders.Wait()

	trc := tr.Find(root.TraceID())
	if trc == nil {
		t.Fatal("fanout trace not collected")
	}
	if len(trc.spans) != 33 {
		t.Fatalf("fanout trace has %d spans, want 33", len(trc.spans))
	}
}

// TestTracesHandler drives /debug/traces end to end: list, per-trace tree,
// and the waterfall rendering.
func TestTracesHandler(t *testing.T) {
	tr := enabledTracer(TraceConfig{SampleRate: 1, SlowThreshold: -1, RingSize: 4})
	ctx, root := tr.Start(context.Background(), "req")
	_, c := StartChild(ctx, "scan")
	c.AnnotateInt("blocks", 3)
	c.Finish()
	root.Finish()

	h := TracesHandler(tr)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "req") {
		t.Fatalf("list: %d %q", rec.Code, rec.Body.String())
	}

	id := FormatTraceHeader(root.TraceID(), 0, false)[:16]
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id="+id, nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "scan") {
		t.Fatalf("tree: %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id="+id+"&format=waterfall", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "scan") {
		t.Fatalf("waterfall: %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id=ffffffffffffffff", nil))
	if rec.Code != 404 {
		t.Fatalf("missing trace: %d", rec.Code)
	}
}

// TestRuntimeCollector: the background collector publishes the runtime
// gauges, and stop is idempotent.
func TestRuntimeCollector(t *testing.T) {
	r := NewRegistry()
	stop := StartRuntimeCollector(r, time.Hour) // immediate sample, then idle
	defer stop()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, name := range []string{
		"irtl_runtime_goroutines",
		"irtl_runtime_heap_bytes",
		"irtl_runtime_gomaxprocs",
		"irtl_runtime_gc_total",
		"irtl_runtime_gc_pause_seconds",
	} {
		if !strings.Contains(text, name) {
			t.Fatalf("runtime exposition missing %s:\n%s", name, text)
		}
	}
	stop()
	stop() // idempotent
}
