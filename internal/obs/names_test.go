package obs_test

import (
	"strings"
	"testing"
	"time"

	"instability/internal/obs"

	// Imported for their package-level metric registration side effects:
	// the names below are part of the operational interface (dashboards
	// and alerts key on them), so their existence is pinned here.
	_ "instability/internal/detect"
	_ "instability/internal/serve"
	_ "instability/internal/session"
	_ "instability/internal/store"
)

// TestMetricNamesPublished pins the externally visible metric names of the
// fault plane and degraded-mode paths. Renaming one of these silently breaks
// every dashboard and alert that watches it; this test makes the rename loud.
func TestMetricNamesPublished(t *testing.T) {
	// The runtime gauges register when the collector starts (obs.Serve does
	// this in production); start one against the default registry so the
	// names are pinned here too.
	stop := obs.StartRuntimeCollector(obs.Default(), time.Hour)
	defer stop()
	var sb strings.Builder
	if err := obs.Default().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exposition := sb.String()
	names := []string{
		// Degraded reads: corrupt sealed blocks skipped by queries.
		"irtl_store_quarantined_blocks",
		// Collector reconnect loops: dial attempts and chosen backoff.
		"irtl_session_redials_total",
		"irtl_session_backoff_seconds",
		// Pre-existing store and session families the tools already scrape.
		"irtl_store_append_records_total",
		"irtl_store_queries_total",
		"irtl_session_queue_drops_total",
		// Serving plane (bgpserve): admission, cache, batching, streaming.
		"irtl_serve_sessions",
		"irtl_serve_shed_total",
		"irtl_serve_cache_hits_total",
		"irtl_serve_cache_misses_total",
		"irtl_serve_cache_evictions_total",
		"irtl_serve_cache_bytes",
		"irtl_serve_coalesced_total",
		"irtl_serve_records_total",
		"irtl_serve_requests_total",
		"irtl_serve_request_seconds",
		// Observability plane: tracing retention and the slow-query log.
		"irtl_trace_traces_total",
		"irtl_trace_spans_total",
		"irtl_trace_kept_total",
		"irtl_trace_dropped_total",
		"irtl_serve_slow_queries_total",
		// Store EXPLAIN byte accounting.
		"irtl_store_query_bytes_read_total",
		"irtl_store_query_bytes_decompressed_total",
		"irtl_store_query_bytes_from_cache_total",
		"irtl_store_query_records_materialized_total",
		// Write path: background seal pipeline stages and backpressure.
		"irtl_store_seal_seconds",
		"irtl_store_seal_active",
		"irtl_store_seal_workers",
		"irtl_store_seal_stall_seconds",
		"irtl_store_seal_sort_seconds",
		"irtl_store_seal_write_seconds",
		"irtl_store_seal_publish_seconds",
		// Read path: shared decompressed-block cache and segment mappings.
		"irtl_store_blockcache_hits_total",
		"irtl_store_blockcache_misses_total",
		"irtl_store_blockcache_evictions_total",
		"irtl_store_blockcache_bytes",
		"irtl_store_blockcache_entries",
		"irtl_store_mmap_segments",
		"irtl_store_mmap_failures_total",
		// Anomaly detector: event intake, window finalization, alerting.
		"irtl_detect_events_total",
		"irtl_detect_windows_total",
		"irtl_detect_active_alerts",
		"irtl_detect_keys",
		"irtl_detect_alerts_total",
		// Runtime gauges published by the background collector.
		"irtl_runtime_goroutines",
		"irtl_runtime_heap_bytes",
		"irtl_runtime_gomaxprocs",
		"irtl_runtime_gc_total",
		"irtl_runtime_gc_pause_seconds",
	}
	for _, name := range names {
		if !strings.Contains(exposition, "# TYPE "+name+" ") {
			t.Errorf("metric %q not registered on the default registry", name)
		}
	}
}
