package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// /debug/traces exposition:
//
//	/debug/traces                 JSON summary of retained traces, newest first
//	/debug/traces?id=<hex>        one trace as a nested span tree (JSON)
//	/debug/traces?id=<hex>&format=waterfall
//	                              the same trace as an ASCII waterfall
//
// Rendering reads only completed traces out of the ring; the ring publish in
// Tracer.collect is the synchronization point, so span fields are stable by
// the time they are readable here.

// TraceSummary is one row of the /debug/traces listing.
type TraceSummary struct {
	ID        string  `json:"id"`
	Root      string  `json:"root"`
	Start     string  `json:"start"`
	Millis    float64 `json:"ms"`
	Spans     int     `json:"spans"`
	Sampled   bool    `json:"sampled"`
	Remote    bool    `json:"remote,omitempty"`
	Truncated bool    `json:"truncated,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// SpanJSON is one span in the per-trace tree rendering.
type SpanJSON struct {
	ID       string         `json:"id"`
	Name     string         `json:"name"`
	OffsetMs float64        `json:"offset_ms"`
	Millis   float64        `json:"ms"`
	Error    string         `json:"error,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanJSON    `json:"children,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func summarize(tr *Trace) TraceSummary {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return TraceSummary{
		ID:        fmt.Sprintf("%016x", tr.ID),
		Root:      tr.root.Name,
		Start:     tr.start.UTC().Format(time.RFC3339Nano),
		Millis:    ms(tr.root.dur),
		Spans:     len(tr.spans),
		Sampled:   tr.Sampled,
		Remote:    tr.Remote,
		Truncated: tr.truncated,
		Error:     tr.root.errMsg,
	}
}

// tree builds the nested rendering. Spans whose parent is missing (remote
// parents, dropped spans) attach to the root.
func tree(tr *Trace) *SpanJSON {
	tr.mu.Lock()
	spans := append([]*TraceSpan(nil), tr.spans...)
	tr.mu.Unlock()

	nodes := make(map[uint64]*SpanJSON, len(spans))
	for _, sp := range spans {
		n := &SpanJSON{
			ID:       fmt.Sprintf("%016x", sp.ID),
			Name:     sp.Name,
			OffsetMs: ms(sp.start.Sub(tr.start)),
			Millis:   ms(sp.dur),
			Error:    sp.errMsg,
		}
		if len(sp.attrs) > 0 {
			n.Attrs = make(map[string]any, len(sp.attrs))
			for _, a := range sp.attrs {
				if a.IsInt {
					n.Attrs[a.Key] = a.Int
				} else {
					n.Attrs[a.Key] = a.Str
				}
			}
		}
		nodes[sp.ID] = n
	}
	root := nodes[tr.root.ID]
	for _, sp := range spans {
		if sp == tr.root {
			continue
		}
		parent := nodes[sp.Parent]
		if parent == nil {
			parent = root
		}
		parent.Children = append(parent.Children, nodes[sp.ID])
	}
	sortTree(root)
	return root
}

func sortTree(n *SpanJSON) {
	sort.SliceStable(n.Children, func(i, j int) bool {
		return n.Children[i].OffsetMs < n.Children[j].OffsetMs
	})
	for _, c := range n.Children {
		sortTree(c)
	}
}

// waterfall renders the span tree as fixed-width ASCII: indentation is tree
// depth, the bar shows each span's [offset, offset+dur) within the root.
func waterfall(tr *Trace, w *strings.Builder) {
	root := tree(tr)
	total := root.Millis
	if total <= 0 {
		total = 1
	}
	fmt.Fprintf(w, "trace %016x  %s  %.3fms  sampled=%v\n",
		tr.ID, tr.start.UTC().Format(time.RFC3339Nano), root.Millis, tr.Sampled)
	const cols = 48
	var walk func(n *SpanJSON, depth int)
	walk = func(n *SpanJSON, depth int) {
		lo := int(n.OffsetMs / total * cols)
		width := int(n.Millis / total * cols)
		if width < 1 {
			width = 1
		}
		if lo >= cols {
			lo = cols - 1
		}
		if lo+width > cols {
			width = cols - lo
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("=", width) + strings.Repeat(" ", cols-lo-width)
		name := strings.Repeat("  ", depth) + n.Name
		fmt.Fprintf(w, "%-32s |%s| %9.3fms", name, bar, n.Millis)
		if n.Error != "" {
			fmt.Fprintf(w, "  ERROR: %s", n.Error)
		}
		w.WriteByte('\n')
		for _, a := range sortedAttrs(n.Attrs) {
			fmt.Fprintf(w, "%s    %s\n", strings.Repeat("  ", depth), a)
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
}

func sortedAttrs(attrs map[string]any) []string {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]string, 0, len(attrs))
	for k, v := range attrs {
		out = append(out, fmt.Sprintf("%s=%v", k, v))
	}
	sort.Strings(out)
	return out
}

// TracesHandler serves the tracer's ring.
func TracesHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		idStr := req.URL.Query().Get("id")
		if idStr == "" {
			list := t.Traces()
			out := make([]TraceSummary, 0, len(list))
			for _, tr := range list {
				out = append(out, summarize(tr))
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Enabled bool           `json:"enabled"`
				Traces  []TraceSummary `json:"traces"`
			}{t.Enabled(), out})
			return
		}
		id, err := strconv.ParseUint(idStr, 16, 64)
		if err != nil {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		tr := t.Find(id)
		if tr == nil {
			http.Error(w, "trace not found", http.StatusNotFound)
			return
		}
		if req.URL.Query().Get("format") == "waterfall" {
			var sb strings.Builder
			waterfall(tr, &sb)
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, sb.String())
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Summary TraceSummary `json:"summary"`
			Tree    *SpanJSON    `json:"tree"`
		}{summarize(tr), tree(tr)})
	})
}
