package obs

import (
	"math"
	"sync"
	"testing"
)

// TestConcurrentHammer batters every instrument type from many goroutines;
// run under -race this is the data-race proof, and the final values prove
// no increments are lost.
func TestConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const perG = 5000

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Get-or-create races on the same names on purpose.
			c := reg.Counter("hammer_total", "hammered counter")
			g := reg.Gauge("hammer_gauge", "hammered gauge")
			h := reg.Histogram("hammer_seconds", "hammered histogram", nil)
			cl := reg.Counter("hammer_labeled_total", "labeled", L("shard", string(rune('a'+id%4))))
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j%100) / 1000) // 0..0.099s
				cl.Add(2)
			}
		}(i)
	}
	// Concurrent readers while writers run.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				reg.Value("hammer_total")
				reg.Sum("hammer_labeled_total")
				reg.Counter("hammer_total", "").Value()
				reg.Histogram("hammer_seconds", "", nil).Quantile(0.99)
				var sink [0]byte
				_ = sink
				_ = reg.snapshot()
			}
		}()
	}
	wg.Wait()

	want := int64(goroutines * perG)
	if got := reg.Counter("hammer_total", "").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := reg.Gauge("hammer_gauge", "").Value(); got != float64(want) {
		t.Errorf("gauge = %g, want %d", got, want)
	}
	h := reg.Histogram("hammer_seconds", "", nil)
	if got := h.Count(); got != uint64(want) {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got := reg.Sum("hammer_labeled_total"); got != float64(2*want) {
		t.Errorf("labeled sum = %g, want %d", got, 2*want)
	}
}

func TestGaugeSetAndDec(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Dec()
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge = %g, want 9", got)
	}
	g.SetInt(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %g, want -3", got)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-7)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	// 100 observations uniform in (0,1]: all land in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	// Within the first bucket [0,1], p50 interpolates to ~0.5.
	if p := h.Quantile(0.5); math.Abs(p-0.5) > 0.02 {
		t.Errorf("p50 = %g, want ~0.5", p)
	}
	if p := h.Quantile(1); p != 1 {
		t.Errorf("p100 = %g, want 1", p)
	}

	// Add 100 in (1,2]: p75 lands near the 1..2 bucket midpoint region.
	for i := 1; i <= 100; i++ {
		h.Observe(1 + float64(i)/100)
	}
	if p := h.Quantile(0.75); p < 1 || p > 2 {
		t.Errorf("p75 = %g, want in (1,2]", p)
	}
	if got := h.Count(); got != 200 {
		t.Errorf("count = %d, want 200", got)
	}

	// Overflow clamps to the last edge.
	h.Observe(100)
	if p := h.Quantile(1); p != 8 {
		t.Errorf("overflow p100 = %g, want 8", p)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := newHistogram(DurationBuckets)
	if p := h.Quantile(0.99); p != 0 {
		t.Fatalf("empty quantile = %g, want 0", p)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mixed", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	reg.Gauge("mixed", "")
}

func TestFuncBackedSeries(t *testing.T) {
	reg := NewRegistry()
	v := 41.0
	reg.GaugeFunc("fn_gauge", "func gauge", func() float64 { return v })
	v = 42
	if got := reg.Value("fn_gauge"); got != 42 {
		t.Fatalf("GaugeFunc value = %g, want 42", got)
	}
	// Re-registration replaces the function.
	reg.GaugeFunc("fn_gauge", "", func() float64 { return 7 })
	if got := reg.Value("fn_gauge"); got != 7 {
		t.Fatalf("replaced GaugeFunc value = %g, want 7", got)
	}
	reg.CounterFunc("fn_total", "func counter", func() float64 { return 3 }, L("class", "AADup"))
	if got := reg.Value("fn_total", L("class", "AADup")); got != 3 {
		t.Fatalf("CounterFunc value = %g, want 3", got)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(DurationBuckets)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%1000) * 1e-5)
			i++
		}
	})
}
