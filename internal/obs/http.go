package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewHandler returns the exposition mux for a registry: /metrics
// (Prometheus text), /varz (JSON), /healthz, /debug/traces (the default
// tracer's ring), and /debug/pprof/.
func NewHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/varz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/traces", TracesHandler(DefaultTracer()))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running exposition server.
type Server struct {
	ln          net.Listener
	srv         *http.Server
	stopRuntime func()
}

// Serve starts the exposition server on addr (e.g. ":9100" or
// "127.0.0.1:0") and returns once it is listening. The server runs until
// Close. Starting the server also starts the runtime collector (the
// irtl_runtime_* gauges) against the registry.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewHandler(r), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv, stopRuntime: StartRuntimeCollector(r, 0)}, nil
}

// Addr returns the bound address, useful when addr requested port 0.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down and stops its runtime collector.
func (s *Server) Close() error {
	if s.stopRuntime != nil {
		s.stopRuntime()
	}
	return s.srv.Close()
}
