package obs

import (
	"runtime"
	"time"
)

// Runtime health gauges, sampled by a background collector started with the
// exposition server (Serve) or explicitly via StartRuntimeCollector:
//
//	irtl_runtime_goroutines        live goroutine count
//	irtl_runtime_heap_bytes        heap in use (MemStats.HeapAlloc)
//	irtl_runtime_gomaxprocs        GOMAXPROCS at last sample
//	irtl_runtime_gc_total          completed GC cycles
//	irtl_runtime_gc_pause_seconds  histogram of individual GC pause times
//	                               (p99 via /varz quantiles)
//
// Before this, runtime health was invisible outside /debug/pprof.

// runtimePauseBuckets spans 10µs..1s, the plausible range of Go STW pauses.
var runtimePauseBuckets = ExpBuckets(10e-6, 10, 6)

// StartRuntimeCollector samples runtime stats into r every interval (default
// 10s) until the returned stop function is called. Stop is idempotent.
func StartRuntimeCollector(r *Registry, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	goroutines := r.Gauge("irtl_runtime_goroutines", "Live goroutines at last sample.")
	heap := r.Gauge("irtl_runtime_heap_bytes", "Heap bytes in use at last sample.")
	maxprocs := r.Gauge("irtl_runtime_gomaxprocs", "GOMAXPROCS at last sample.")
	gcTotal := r.Gauge("irtl_runtime_gc_total", "Completed GC cycles.")
	pauses := r.Histogram("irtl_runtime_gc_pause_seconds", "Individual GC stop-the-world pause times.", runtimePauseBuckets)

	var lastGC uint32
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heap.Set(float64(ms.HeapAlloc))
		maxprocs.Set(float64(runtime.GOMAXPROCS(0)))
		gcTotal.Set(float64(ms.NumGC))
		// Feed each pause seen since the last sample into the histogram.
		// PauseNs is a 256-entry ring indexed by cycle number.
		n := ms.NumGC - lastGC
		if n > uint32(len(ms.PauseNs)) {
			n = uint32(len(ms.PauseNs))
		}
		for i := uint32(0); i < n; i++ {
			idx := (ms.NumGC - i + uint32(len(ms.PauseNs)) - 1) % uint32(len(ms.PauseNs))
			pauses.Observe(float64(ms.PauseNs[idx]) / 1e9)
		}
		lastGC = ms.NumGC
	}
	sample()

	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				sample()
			case <-done:
				return
			}
		}
	}()
	var once bool
	return func() {
		if once {
			return
		}
		once = true
		close(done)
		<-stopped
	}
}
