package core

import (
	"sort"
	"sync/atomic"
	"time"

	"instability/internal/collector"
)

// Date is a UTC civil date, counted in days since the Unix epoch. It is the
// aggregation key for all per-day statistics.
type Date int

// DateOf returns the Date containing t (UTC).
func DateOf(t time.Time) Date {
	return Date(t.UTC().Unix() / 86400)
}

// Time returns midnight UTC of d.
func (d Date) Time() time.Time { return time.Unix(int64(d)*86400, 0).UTC() }

// String formats the date as YYYY-MM-DD.
func (d Date) String() string { return d.Time().Format("2006-01-02") }

// Weekday returns the day of week.
func (d Date) Weekday() time.Weekday { return d.Time().Weekday() }

// Inter-arrival histogram bins, matching the paper's Figure 8 log-time axis.
// A duration is assigned to the first bin whose upper edge is >= d, so an
// exactly 30-second periodic process fills the "30s" bin and a 60-second one
// the "1m" bin.
var (
	// BinEdges are the upper edges of the inter-arrival bins.
	BinEdges = []time.Duration{
		time.Second, 5 * time.Second, 30 * time.Second, time.Minute,
		5 * time.Minute, 10 * time.Minute, 30 * time.Minute, time.Hour,
		2 * time.Hour, 4 * time.Hour, 8 * time.Hour, 24 * time.Hour,
	}
	// BinLabels name the bins for display.
	BinLabels = []string{"1s", "5s", "30s", "1m", "5m", "10m", "30m", "1h", "2h", "4h", "8h", "24h"}
)

// NumBins is the number of inter-arrival histogram bins.
const NumBins = 12

// BinOf returns the histogram bin index for an inter-arrival duration.
// Durations beyond 24 h clamp into the last bin.
func BinOf(d time.Duration) int {
	for i, edge := range BinEdges {
		if d <= edge {
			return i
		}
	}
	return NumBins - 1
}

// TenMinBins is the number of ten-minute aggregation slots per day, the
// resolution of the paper's Figures 3 and 4.
const TenMinBins = 144

// DayStats aggregates one day of classified updates at one collection point.
type DayStats struct {
	Date Date

	// Counts tallies events per class.
	Counts [NumClasses]int
	// PolicyShifts counts AADup events whose non-tuple attributes changed
	// (routing policy fluctuation).
	PolicyShifts int

	// TenMinInstability counts instability events (AADiff+WADiff+WADup) per
	// ten-minute slot; TenMinAll counts all update events.
	TenMinInstability [TenMinBins]int
	TenMinAll         [TenMinBins]int

	// ByPeer tallies per-peer class counts and raw announce/withdraw splits
	// (Table 1's columns).
	ByPeer map[PeerKey]*PeerDay
	// ByPrefixAS tallies per-Prefix+AS class counts.
	ByPrefixAS map[PrefixAS]*[NumClasses]int
	// InterArrival histograms the same-class inter-arrival times observed
	// this day.
	InterArrival [NumClasses][NumBins]int

	// PeerTable and TotalTable snapshot each peer's announced-route count at
	// the end of the day (the Figure 6 denominator). Populated by EndDay.
	PeerTable  map[PeerKey]int
	TotalTable int

	// PeakSecond is the largest number of updates observed in any single
	// second of the day — the paper's "bursts of updates at rates exceeding
	// 100 prefix announcements a second".
	PeakSecond int
	curSecond  int64
	curCount   int
}

// PeerDay is one peer's tallies for one day.
type PeerDay struct {
	Counts        [NumClasses]int
	Announcements int
	Withdrawals   int
}

func newDayStats(d Date) *DayStats {
	return &DayStats{
		Date:       d,
		ByPeer:     make(map[PeerKey]*PeerDay),
		ByPrefixAS: make(map[PrefixAS]*[NumClasses]int),
	}
}

// Instability returns the day's instability total (AADiff+WADiff+WADup).
func (s *DayStats) Instability() int {
	return s.Counts[AADiff] + s.Counts[WADiff] + s.Counts[WADup]
}

// Pathological returns the day's pathological total (AADup+WWDup).
func (s *DayStats) Pathological() int {
	return s.Counts[AADup] + s.Counts[WWDup]
}

// Total returns all classified events including Other.
func (s *DayStats) Total() int {
	n := 0
	for _, v := range s.Counts {
		n += v
	}
	return n
}

// RoutesAffected counts the distinct Prefix+AS pairs with at least one event
// matching keep.
func (s *DayStats) RoutesAffected(keep func(counts *[NumClasses]int) bool) int {
	n := 0
	for _, counts := range s.ByPrefixAS {
		if keep(counts) {
			n++
		}
	}
	return n
}

// Accumulator folds classified events into per-day statistics.
//
// The accumulator itself is single-writer (Add is not safe for concurrent
// use), but its running class totals are kept in atomics so a concurrent
// reader — a metrics exposition handler, a progress display — can snapshot
// them at any time without stopping ingest or taking a lock.
type Accumulator struct {
	Days map[Date]*DayStats

	// totals and events are the live cross-day tallies, maintained by Add
	// and read lock-free by TotalCounts and the obs gauges.
	totals [NumClasses]atomic.Int64
	events atomic.Int64
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{Days: make(map[Date]*DayStats)}
}

// Day returns (creating if necessary) the stats bucket for d.
func (a *Accumulator) Day(d Date) *DayStats {
	s := a.Days[d]
	if s == nil {
		s = newDayStats(d)
		a.Days[d] = s
	}
	return s
}

// Add folds one classified event in.
func (a *Accumulator) Add(ev Event) {
	t := ev.Record.Time
	s := a.Day(DateOf(t))
	s.Counts[ev.Class]++
	a.totals[ev.Class].Add(1)
	a.events.Add(1)
	if ev.PolicyShift {
		s.PolicyShifts++
	}

	// Burst accounting: records arrive in time order, so a simple
	// current-second counter suffices.
	if sec := t.Unix(); sec != s.curSecond {
		s.curSecond, s.curCount = sec, 0
	}
	s.curCount++
	if s.curCount > s.PeakSecond {
		s.PeakSecond = s.curCount
	}

	slot := (t.UTC().Hour()*60 + t.UTC().Minute()) / 10
	if slot >= 0 && slot < TenMinBins {
		s.TenMinAll[slot]++
		if ev.Class.IsInstability() {
			s.TenMinInstability[slot]++
		}
	}

	peer := PeerKeyOf(ev.Record)
	pc := s.ByPeer[peer]
	if pc == nil {
		pc = new(PeerDay)
		s.ByPeer[peer] = pc
	}
	pc.Counts[ev.Class]++
	switch ev.Record.Type {
	case collector.Announce:
		pc.Announcements++
	case collector.Withdraw:
		pc.Withdrawals++
	}

	pa := PrefixASOf(ev.Record)
	pac := s.ByPrefixAS[pa]
	if pac == nil {
		pac = new([NumClasses]int)
		s.ByPrefixAS[pa] = pac
	}
	pac[ev.Class]++

	// The paper's Figure 8 measures the spacing between consecutive updates
	// for a Prefix+AS, attributed to the class of the later update.
	if ev.SinceAny > 0 {
		s.InterArrival[ev.Class][BinOf(ev.SinceAny)]++
	}
}

// Merge folds src's per-day statistics and running totals into a. All
// tallies are summed key-by-key; PeerTable and TotalTable (present only on
// days that were EndDay'd) are summed per peer, which is exact when the
// merged accumulators partitioned one stream by (peer, prefix).
//
// PeakSecond is the one field that cannot be reconstructed from partitions:
// each shard only saw its own share of any given second, so Merge keeps the
// maximum, a lower bound. Callers that watched the undivided stream (the
// ParallelPipeline feeder does) should overwrite DayStats.PeakSecond with
// the exact value after merging.
//
// Merge is not safe for concurrent use with Add on either accumulator; the
// caller must own both (the parallel pipeline's EndDay barrier guarantees
// this by taking ownership of each shard's accumulator before merging).
func (a *Accumulator) Merge(src *Accumulator) {
	for d, s := range src.Days {
		a.Day(d).mergeFrom(s)
	}
	for i := range a.totals {
		a.totals[i].Add(src.totals[i].Load())
	}
	a.events.Add(src.events.Load())
}

// mergeFrom adds src's tallies into dst.
func (dst *DayStats) mergeFrom(src *DayStats) {
	for i, v := range src.Counts {
		dst.Counts[i] += v
	}
	dst.PolicyShifts += src.PolicyShifts
	for i, v := range src.TenMinInstability {
		dst.TenMinInstability[i] += v
	}
	for i, v := range src.TenMinAll {
		dst.TenMinAll[i] += v
	}
	for peer, pd := range src.ByPeer {
		d := dst.ByPeer[peer]
		if d == nil {
			d = new(PeerDay)
			dst.ByPeer[peer] = d
		}
		for i, v := range pd.Counts {
			d.Counts[i] += v
		}
		d.Announcements += pd.Announcements
		d.Withdrawals += pd.Withdrawals
	}
	for pa, counts := range src.ByPrefixAS {
		d := dst.ByPrefixAS[pa]
		if d == nil {
			d = new([NumClasses]int)
			dst.ByPrefixAS[pa] = d
		}
		for i, v := range counts {
			d[i] += v
		}
	}
	for c := range src.InterArrival {
		for b, v := range src.InterArrival[c] {
			dst.InterArrival[c][b] += v
		}
	}
	if src.PeerTable != nil {
		if dst.PeerTable == nil {
			dst.PeerTable = make(map[PeerKey]int, len(src.PeerTable))
		}
		for k, v := range src.PeerTable {
			dst.PeerTable[k] += v
		}
		dst.TotalTable += src.TotalTable
	}
	if src.PeakSecond > dst.PeakSecond {
		dst.PeakSecond = src.PeakSecond
	}
}

// EndDay snapshots the routing-table shares from the classifier into the
// day's stats. Call once per simulated day, after the day's records.
func (a *Accumulator) EndDay(c *Classifier, d Date) {
	s := a.Day(d)
	s.PeerTable = c.ActiveByPeer()
	s.TotalTable = 0
	for _, n := range s.PeerTable {
		s.TotalTable += n
	}
	// Day boundaries are the natural publication points for the interner's
	// batched hit/miss tallies: short runs never reach the batch threshold,
	// so without this the process-wide intern.Stats() would read zero.
	c.Interner().FlushStats()
}

// Dates returns the days present, sorted.
func (a *Accumulator) Dates() []Date {
	out := make([]Date, 0, len(a.Days))
	for d := range a.Days {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalCounts returns the class counts summed across all days. It reads
// the live atomic totals, so it is O(1), safe to call concurrently with
// Add, and equal to summing Days' Counts.
func (a *Accumulator) TotalCounts() [NumClasses]int {
	var total [NumClasses]int
	for i := range total {
		total[i] = int(a.totals[i].Load())
	}
	return total
}

// TotalEvents returns the number of events folded in so far (the sum of
// TotalCounts), readable concurrently with Add.
func (a *Accumulator) TotalEvents() int64 { return a.events.Load() }

// MonthKey identifies a calendar month.
type MonthKey struct {
	Year  int
	Month time.Month
}

// String formats the month as "January 1996".
func (m MonthKey) String() string {
	return time.Date(m.Year, m.Month, 1, 0, 0, 0, 0, time.UTC).Format("January 2006")
}

// MonthlyCounts sums class counts per calendar month (Figure 2's series).
func (a *Accumulator) MonthlyCounts() map[MonthKey][NumClasses]int {
	out := make(map[MonthKey][NumClasses]int)
	for d, s := range a.Days {
		t := d.Time()
		k := MonthKey{Year: t.Year(), Month: t.Month()}
		counts := out[k]
		for i, v := range s.Counts {
			counts[i] += v
		}
		out[k] = counts
	}
	return out
}

// HourlySeries returns the instability count per hour across the full range
// of days, in time order — the input for the paper's spectral analysis
// (Figure 5). Missing days contribute zero-filled hours.
func (a *Accumulator) HourlySeries() (start time.Time, series []float64) {
	dates := a.Dates()
	if len(dates) == 0 {
		return time.Time{}, nil
	}
	first, last := dates[0], dates[len(dates)-1]
	n := int(last-first+1) * 24
	series = make([]float64, n)
	for d, s := range a.Days {
		base := int(d-first) * 24
		for slot, v := range s.TenMinInstability {
			series[base+slot/6] += float64(v)
		}
	}
	return first.Time(), series
}

// TenMinSeries returns the instability count per ten-minute slot across the
// full day range (Figures 3 and 4).
func (a *Accumulator) TenMinSeries() (start time.Time, series []float64) {
	dates := a.Dates()
	if len(dates) == 0 {
		return time.Time{}, nil
	}
	first, last := dates[0], dates[len(dates)-1]
	n := int(last-first+1) * TenMinBins
	series = make([]float64, n)
	for d, s := range a.Days {
		base := int(d-first) * TenMinBins
		for slot, v := range s.TenMinInstability {
			series[base+slot] = float64(v)
		}
	}
	return first.Time(), series
}
