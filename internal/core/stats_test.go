package core

import (
	"testing"
	"time"
)

func TestDateOf(t *testing.T) {
	d := DateOf(time.Date(1996, 8, 1, 23, 59, 59, 0, time.UTC))
	if d.String() != "1996-08-01" {
		t.Fatalf("got %s", d)
	}
	if DateOf(time.Date(1996, 8, 2, 0, 0, 0, 0, time.UTC)) != d+1 {
		t.Fatal("next day should be d+1")
	}
	if d.Weekday() != time.Thursday {
		t.Fatalf("1996-08-01 was a Thursday, got %v", d.Weekday())
	}
	if !d.Time().Equal(time.Date(1996, 8, 1, 0, 0, 0, 0, time.UTC)) {
		t.Fatalf("Time() = %v", d.Time())
	}
}

func TestBinOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{500 * time.Millisecond, 0},
		{time.Second, 0},
		{3 * time.Second, 1},
		{30 * time.Second, 2}, // the paper's dominant bin
		{60 * time.Second, 3}, // and its second
		{31 * time.Second, 3},
		{4 * time.Minute, 4},
		{23 * time.Hour, 11},
		{48 * time.Hour, 11}, // clamped
	}
	for _, c := range cases {
		if got := BinOf(c.d); got != c.want {
			t.Errorf("BinOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	if len(BinEdges) != NumBins || len(BinLabels) != NumBins {
		t.Fatal("bin tables inconsistent")
	}
}

func TestAccumulatorCounts(t *testing.T) {
	c := NewClassifier()
	a := NewAccumulator()
	// Day 1: announce, dup, withdraw, spurious withdraw.
	a.Add(c.Classify(ann(t0, peerA, pfxX, attrs1())))
	a.Add(c.Classify(ann(t0.Add(30*time.Second), peerA, pfxX, attrs1())))
	a.Add(c.Classify(wd(t0.Add(time.Minute), peerA, pfxX)))
	a.Add(c.Classify(wd(t0.Add(2*time.Minute), peerA, pfxX)))
	a.EndDay(c, DateOf(t0))

	s := a.Day(DateOf(t0))
	if s.Counts[Other] != 2 || s.Counts[AADup] != 1 || s.Counts[WWDup] != 1 {
		t.Fatalf("counts %+v", s.Counts)
	}
	if s.Total() != 4 {
		t.Fatalf("total %d", s.Total())
	}
	if s.Instability() != 0 || s.Pathological() != 2 {
		t.Fatalf("instability %d pathological %d", s.Instability(), s.Pathological())
	}
	if s.TotalTable != 0 { // everything withdrawn by end of day
		t.Fatalf("table %d", s.TotalTable)
	}
}

func TestAccumulatorTenMinSlots(t *testing.T) {
	c := NewClassifier()
	a := NewAccumulator()
	// An instability event at 12:05 lands in slot 72 (12*6).
	c.Classify(ann(t0, peerA, pfxX, attrs1()))
	c.Classify(wd(t0.Add(time.Minute), peerA, pfxX))
	ev := c.Classify(ann(t0.Add(5*time.Minute), peerA, pfxX, attrs1())) // WADup at 12:05
	if ev.Class != WADup {
		t.Fatalf("class %v", ev.Class)
	}
	a.Add(ev)
	s := a.Day(DateOf(t0))
	slot := (12*60 + 5) / 10
	if s.TenMinInstability[slot] != 1 || s.TenMinAll[slot] != 1 {
		t.Fatalf("slot %d counts %d/%d", slot, s.TenMinInstability[slot], s.TenMinAll[slot])
	}
}

func TestAccumulatorPerPeerPerPrefixAS(t *testing.T) {
	c := NewClassifier()
	a := NewAccumulator()
	a.Add(c.Classify(ann(t0, peerA, pfxX, attrs1())))
	a.Add(c.Classify(ann(t0.Add(time.Second), peerA, pfxX, attrs1())))
	a.Add(c.Classify(wd(t0.Add(2*time.Second), peerB, pfxY)))
	s := a.Day(DateOf(t0))
	if s.ByPeer[peerA].Counts[AADup] != 1 || s.ByPeer[peerB].Counts[WWDup] != 1 {
		t.Fatal("per-peer counts wrong")
	}
	if s.ByPeer[peerA].Announcements != 2 || s.ByPeer[peerB].Withdrawals != 1 {
		t.Fatal("per-peer announce/withdraw splits wrong")
	}
	if s.ByPrefixAS[PrefixAS{Prefix: pfxX, AS: peerA.AS}][AADup] != 1 {
		t.Fatal("per-prefixAS counts wrong")
	}
	n := s.RoutesAffected(func(counts *[NumClasses]int) bool { return counts[AADup] > 0 })
	if n != 1 {
		t.Fatalf("routes affected %d", n)
	}
}

func TestAccumulatorInterArrivalHistogram(t *testing.T) {
	c := NewClassifier()
	a := NewAccumulator()
	c.Classify(ann(t0, peerA, pfxX, attrs1()))
	// Three duplicates exactly 30 s apart: two measurable inter-arrivals.
	for i := 1; i <= 3; i++ {
		a.Add(c.Classify(ann(t0.Add(time.Duration(i)*30*time.Second), peerA, pfxX, attrs1())))
	}
	s := a.Day(DateOf(t0))
	// Each duplicate arrives 30 s after the previous update of the pair, so
	// all three land in the 30 s bin.
	if s.InterArrival[AADup][BinOf(30*time.Second)] != 3 {
		t.Fatalf("30s bin = %d", s.InterArrival[AADup][BinOf(30*time.Second)])
	}
}

func TestAccumulatorDaySplit(t *testing.T) {
	c := NewClassifier()
	a := NewAccumulator()
	a.Add(c.Classify(ann(t0, peerA, pfxX, attrs1())))
	nextDay := t0.Add(24 * time.Hour)
	a.Add(c.Classify(ann(nextDay, peerA, pfxX, attrs1())))
	if len(a.Days) != 2 {
		t.Fatalf("%d days", len(a.Days))
	}
	dates := a.Dates()
	if len(dates) != 2 || dates[0] >= dates[1] {
		t.Fatalf("dates %v", dates)
	}
	tot := a.TotalCounts()
	if tot[Other]+tot[AADup] != 2 {
		t.Fatalf("totals %v", tot)
	}
}

func TestMonthlyCounts(t *testing.T) {
	c := NewClassifier()
	a := NewAccumulator()
	aug := time.Date(1996, 8, 15, 12, 0, 0, 0, time.UTC)
	sep := time.Date(1996, 9, 15, 12, 0, 0, 0, time.UTC)
	a.Add(c.Classify(ann(aug, peerA, pfxX, attrs1())))
	a.Add(c.Classify(ann(sep, peerA, pfxX, attrs1()))) // AADup in September
	m := a.MonthlyCounts()
	if len(m) != 2 {
		t.Fatalf("%d months", len(m))
	}
	augK := MonthKey{1996, time.August}
	sepK := MonthKey{1996, time.September}
	if m[augK][Other] != 1 || m[sepK][AADup] != 1 {
		t.Fatalf("monthly %v", m)
	}
	if augK.String() != "August 1996" {
		t.Fatalf("month name %q", augK.String())
	}
}

func TestHourlyAndTenMinSeries(t *testing.T) {
	c := NewClassifier()
	a := NewAccumulator()
	// Create instability at hours 0 and 25 (next day, 01:00).
	base := time.Date(1996, 8, 1, 0, 5, 0, 0, time.UTC)
	c.Classify(ann(base.Add(-time.Hour), peerA, pfxX, attrs1()))
	c.Classify(wd(base.Add(-30*time.Minute), peerA, pfxX))
	a.Add(c.Classify(ann(base, peerA, pfxX, attrs1()))) // WADup day 1 hour 0
	c.Classify(wd(base.Add(time.Hour), peerA, pfxX))
	a.Add(c.Classify(ann(base.Add(25*time.Hour), peerA, pfxX, attrs1()))) // WADup day 2 hour 1

	start, hourly := a.HourlySeries()
	if len(hourly) != 48 {
		t.Fatalf("hourly len %d", len(hourly))
	}
	if !start.Equal(time.Date(1996, 8, 1, 0, 0, 0, 0, time.UTC)) {
		t.Fatalf("start %v", start)
	}
	if hourly[0] != 1 || hourly[25] != 1 {
		t.Fatalf("hourly %v", hourly[:26])
	}
	_, tenmin := a.TenMinSeries()
	if len(tenmin) != 2*TenMinBins {
		t.Fatalf("tenmin len %d", len(tenmin))
	}
	if tenmin[0] != 1 { // 00:05 is slot 0
		t.Fatal("tenmin slot 0 missing event")
	}
	sum := 0.0
	for _, v := range tenmin {
		sum += v
	}
	if sum != 2 {
		t.Fatalf("tenmin sum %v", sum)
	}
}

func TestEmptyAccumulatorSeries(t *testing.T) {
	a := NewAccumulator()
	if _, s := a.HourlySeries(); s != nil {
		t.Fatal("empty accumulator should yield nil series")
	}
	if _, s := a.TenMinSeries(); s != nil {
		t.Fatal("empty accumulator should yield nil series")
	}
	if len(a.Dates()) != 0 {
		t.Fatal("empty accumulator has dates")
	}
}
