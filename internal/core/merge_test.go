package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"instability/internal/collector"
	"instability/internal/netaddr"
)

// TestAccumulatorMerge checks the sharded-pipeline contract: splitting a
// stream by (peer, prefix) key across private classifier+accumulator pairs
// and merging must reproduce the single accumulator's statistics, except
// PeakSecond, which merges as a lower bound (no shard sees a whole second).
func TestAccumulatorMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	peers := []PeerKey{peerA, peerB, {AS: 1239, Addr: netaddr.MustParseAddr("198.32.186.9")}}
	prefixes := []netaddr.Prefix{pfxX, pfxY, netaddr.MustParsePrefix("128.9.0.0/16")}

	var recs []collector.Record
	tm := t0
	for i := 0; i < 4000; i++ {
		p := peers[rng.Intn(len(peers))]
		pfx := prefixes[rng.Intn(len(prefixes))]
		tm = tm.Add(time.Duration(rng.Intn(40)) * time.Second)
		if rng.Intn(3) == 0 {
			recs = append(recs, wd(tm, p, pfx))
		} else {
			a := attrs1()
			if rng.Intn(2) == 0 {
				a = attrs2()
			}
			recs = append(recs, ann(tm, p, pfx, a))
		}
	}

	// Reference: one classifier, one accumulator, EndDay at date boundaries.
	refCls, ref := NewClassifier(), NewAccumulator()
	cur, have := Date(0), false
	endAll := func(cls []*Classifier, accs []*Accumulator, d Date) {
		for i := range accs {
			accs[i].EndDay(cls[i], d)
		}
	}
	const shards = 3
	shCls := make([]*Classifier, shards)
	shAcc := make([]*Accumulator, shards)
	for i := range shCls {
		shCls[i], shAcc[i] = NewClassifier(), NewAccumulator()
	}
	for _, rec := range recs {
		d := DateOf(rec.Time)
		if have && d != cur {
			ref.EndDay(refCls, cur)
			endAll(shCls, shAcc, cur)
		}
		cur, have = d, true
		ref.Add(refCls.Classify(rec))
		si := ShardOf(rec, shards)
		shAcc[si].Add(shCls[si].Classify(rec))
	}
	ref.EndDay(refCls, cur)
	endAll(shCls, shAcc, cur)

	merged := NewAccumulator()
	for _, a := range shAcc {
		merged.Merge(a)
	}

	if got, want := merged.TotalCounts(), ref.TotalCounts(); got != want {
		t.Fatalf("TotalCounts: merged %v, reference %v", got, want)
	}
	if got, want := merged.Dates(), ref.Dates(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Dates: merged %v, reference %v", got, want)
	}
	for _, d := range ref.Dates() {
		ms, rs := merged.Days[d], ref.Days[d]
		if ms.Counts != rs.Counts {
			t.Errorf("day %v Counts: merged %v, reference %v", d, ms.Counts, rs.Counts)
		}
		if ms.PolicyShifts != rs.PolicyShifts {
			t.Errorf("day %v PolicyShifts: merged %d, reference %d", d, ms.PolicyShifts, rs.PolicyShifts)
		}
		if ms.TenMinInstability != rs.TenMinInstability || ms.TenMinAll != rs.TenMinAll {
			t.Errorf("day %v ten-minute series differ", d)
		}
		if !reflect.DeepEqual(ms.ByPeer, rs.ByPeer) {
			t.Errorf("day %v ByPeer differs", d)
		}
		if !reflect.DeepEqual(ms.ByPrefixAS, rs.ByPrefixAS) {
			t.Errorf("day %v ByPrefixAS differs", d)
		}
		if ms.InterArrival != rs.InterArrival {
			t.Errorf("day %v InterArrival differs", d)
		}
		if !reflect.DeepEqual(ms.PeerTable, rs.PeerTable) {
			t.Errorf("day %v PeerTable differs", d)
		}
		if ms.TotalTable != rs.TotalTable {
			t.Errorf("day %v TotalTable: merged %d, reference %d", d, ms.TotalTable, rs.TotalTable)
		}
		// Sharded peaks are a lower bound on the true peak.
		if ms.PeakSecond > rs.PeakSecond {
			t.Errorf("day %v PeakSecond: merged %d exceeds reference %d", d, ms.PeakSecond, rs.PeakSecond)
		}
	}
}

// TestShardOfStable pins the partition contract: same key, same shard;
// records shared across peers land per-peer; all shards are reachable.
func TestShardOfStable(t *testing.T) {
	r1 := ann(t0, peerA, pfxX, attrs1())
	r2 := wd(t0.Add(time.Hour), peerA, pfxX)
	for n := 1; n <= 16; n++ {
		if ShardOf(r1, n) != ShardOf(r2, n) {
			t.Fatalf("same (peer,prefix) key split across shards at n=%d", n)
		}
		if s := ShardOf(r1, n); s < 0 || s >= n {
			t.Fatalf("shard %d out of range [0,%d)", s, n)
		}
		if s := PrefixShardOf(pfxX, n); s < 0 || s >= n {
			t.Fatalf("prefix shard %d out of range [0,%d)", s, n)
		}
	}
	// With enough distinct keys every shard must receive some traffic.
	const n = 8
	seen := make(map[int]bool)
	for i := 0; i < 512; i++ {
		p := netaddr.MustPrefix(netaddr.Addr(0x0a000000+uint32(i)<<8), 24)
		seen[PrefixShardOf(p, n)] = true
	}
	if len(seen) != n {
		t.Fatalf("prefix hashing reached %d of %d shards", len(seen), n)
	}
}
