package core

import (
	"sort"
	"time"
)

// EpisodeTracker groups a route's updates into flap episodes: runs of
// events for one (peer, prefix) separated by gaps no longer than MaxGap.
// The paper's §4 reports that "the persistence of most pathological BGP
// behaviors is under five minutes"; this tracker measures exactly that
// distribution.
type EpisodeTracker struct {
	// MaxGap splits episodes (default five minutes).
	MaxGap time.Duration
	// MinEvents is the smallest run that counts as an episode rather than
	// an isolated update (default 2).
	MinEvents int

	open map[stateKey]*episode
	// Durations collects closed episodes' durations.
	Durations []time.Duration
	// Events collects closed episodes' event counts.
	Events []int
}

type episode struct {
	start, last time.Time
	events      int
}

// NewEpisodeTracker returns a tracker with the paper's parameters.
func NewEpisodeTracker() *EpisodeTracker {
	return &EpisodeTracker{
		MaxGap:    5 * time.Minute,
		MinEvents: 2,
		open:      make(map[stateKey]*episode),
	}
}

// Observe folds one classified event in. Only instability and pathological
// classes participate; Other events (first announcements, clean
// withdrawals) neither start nor extend episodes.
func (t *EpisodeTracker) Observe(ev Event) {
	if ev.Class == Other {
		return
	}
	key := stateKey{peer: PeerKeyOf(ev.Record), prefix: ev.Record.Prefix}
	now := ev.Record.Time
	ep := t.open[key]
	if ep != nil && now.Sub(ep.last) > t.MaxGap {
		t.close(key, ep)
		ep = nil
	}
	if ep == nil {
		t.open[key] = &episode{start: now, last: now, events: 1}
		return
	}
	ep.last = now
	ep.events++
}

// Flush closes every open episode (call at the end of the stream).
func (t *EpisodeTracker) Flush() {
	for key, ep := range t.open {
		t.close(key, ep)
	}
}

func (t *EpisodeTracker) close(key stateKey, ep *episode) {
	delete(t.open, key)
	if ep.events < t.MinEvents {
		return
	}
	t.Durations = append(t.Durations, ep.last.Sub(ep.start))
	t.Events = append(t.Events, ep.events)
}

// ShareUnder returns the fraction of closed episodes shorter than d.
func (t *EpisodeTracker) ShareUnder(d time.Duration) float64 {
	if len(t.Durations) == 0 {
		return 0
	}
	n := 0
	for _, dur := range t.Durations {
		if dur < d {
			n++
		}
	}
	return float64(n) / float64(len(t.Durations))
}

// MedianDuration returns the median episode duration.
func (t *EpisodeTracker) MedianDuration() time.Duration {
	if len(t.Durations) == 0 {
		return 0
	}
	ds := append([]time.Duration(nil), t.Durations...)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}
