// Package core implements the paper's primary contribution: the taxonomy of
// inter-domain routing updates (WADiff, AADiff, WADup, AADup, WWDup) and the
// streaming classifier that assigns every observed BGP update to a class by
// tracking the (Prefix, NextHop, ASPATH) tuple last announced by each peer
// for each prefix.
//
// Terminology follows §4 of the paper:
//
//   - WADiff: a route is explicitly withdrawn and later replaced by a
//     different route — forwarding instability.
//   - AADiff: a route is implicitly withdrawn, replaced in place by a
//     different route — forwarding instability.
//   - WADup: a route is explicitly withdrawn and re-announced unchanged —
//     forwarding instability or pathological oscillation.
//   - AADup: a route is re-announced identically while still reachable —
//     pathological (or pure policy fluctuation when only non-tuple
//     attributes changed).
//   - WWDup: a withdrawal for a prefix that is already unreachable (often
//     never announced by that peer at all) — pathological.
//
// The paper calls {AADiff, WADiff, WADup} "instability" and
// {AADup, WWDup} "pathological instability"; Other covers initial
// announcements and the ordinary withdrawal of a reachable route.
package core

import "fmt"

// Class is the taxonomy bucket assigned to one update.
type Class uint8

// Update classes.
const (
	// Other is an update that begins a history: a first announcement of a
	// prefix by a peer, or the plain withdrawal of a currently reachable
	// route (the W half of a later WA pair), or a session event.
	Other Class = iota
	// AADiff is an implicit withdrawal: a new route replacing a different
	// existing route.
	AADiff
	// AADup is a duplicate announcement of the existing route.
	AADup
	// WADiff is a re-announcement, after explicit withdrawal, of a route
	// different from the one withdrawn.
	WADiff
	// WADup is a re-announcement, after explicit withdrawal, identical to
	// the withdrawn route.
	WADup
	// WWDup is a withdrawal for a prefix the peer does not currently
	// announce (repeated or entirely spurious withdrawal).
	WWDup

	// NumClasses is the number of taxonomy buckets.
	NumClasses = 6
)

// String returns the paper's name for the class.
func (c Class) String() string {
	switch c {
	case Other:
		return "Other"
	case AADiff:
		return "AADiff"
	case AADup:
		return "AADup"
	case WADiff:
		return "WADiff"
	case WADup:
		return "WADup"
	case WWDup:
		return "WWDup"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// IsInstability reports whether the class counts as instability
// (forwarding instability or policy fluctuation) under the paper's §4.1
// definition.
func (c Class) IsInstability() bool {
	return c == AADiff || c == WADiff || c == WADup
}

// IsPathological reports whether the class is redundant, pathological
// information.
func (c Class) IsPathological() bool {
	return c == AADup || c == WWDup
}

// IsForwarding reports whether the class may directly reflect a change in
// forwarding paths (the categories that can follow from exogenous network
// events).
func (c Class) IsForwarding() bool {
	return c == AADiff || c == WADiff
}

// Classes lists all classes in display order (matching the paper's
// figures: instability categories first, then pathologies).
func Classes() []Class {
	return []Class{AADiff, WADiff, WADup, AADup, WWDup, Other}
}
