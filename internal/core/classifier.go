package core

import (
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/intern"
	"instability/internal/netaddr"
)

// PeerKey identifies the peer a record was heard from.
type PeerKey struct {
	AS   bgp.ASN
	Addr netaddr.Addr
}

// PrefixAS is the paper's §5.2 aggregation unit: "a set of routes that an AS
// announces for a given destination — more specific than a prefix, more
// general than a route."
type PrefixAS struct {
	Prefix netaddr.Prefix
	AS     bgp.ASN
}

// stateKey tracks history per (peer, prefix). Distinct routers of one AS are
// distinct peers, as in the route-server logs.
type stateKey struct {
	peer   PeerKey
	prefix netaddr.Prefix
}

type routeState struct {
	announced bool
	ever      bool
	// last is the interned handle of the previous announcement's attributes:
	// the AADup/WADup comparisons against it are pointer and integer
	// compares, and the state holds no per-key copy of path or community
	// slices.
	last *intern.Handle
	// lastEvent[c] is the time of the previous class-c event, for
	// inter-arrival analysis.
	lastEvent [NumClasses]time.Time
}

// Event is the classifier's verdict on one record.
type Event struct {
	Record collector.Record
	Class  Class
	// PolicyShift marks an AADup whose forwarding tuple was unchanged but
	// whose other attributes (MED, communities, ...) differed — the paper's
	// routing policy fluctuation.
	PolicyShift bool
	// SinceLast is the interval since the previous event of the same class
	// for this (peer, prefix); zero for the first such event.
	SinceLast time.Duration
	// SinceAny is the interval since the previous event of any class for
	// this (peer, prefix); zero for the first.
	SinceAny time.Duration
}

// PeerKeyOf extracts the peer identity from a record.
func PeerKeyOf(rec collector.Record) PeerKey {
	return PeerKey{AS: rec.PeerAS, Addr: rec.PeerAddr}
}

// PrefixASOf extracts the Prefix+AS aggregation key from a record.
func PrefixASOf(rec collector.Record) PrefixAS {
	return PrefixAS{Prefix: rec.Prefix, AS: rec.PeerAS}
}

// Classifier assigns classes to a stream of records. It must see each
// collection point's records in timestamp order.
type Classifier struct {
	states map[stateKey]*routeState
	// active tracks how many prefixes each peer currently announces — the
	// per-peer routing table share of Figure 6.
	active map[PeerKey]int
	// tab interns every announcement's attribute tuple. The duplicate-
	// dominated stream means almost every lookup is a hit returning a shared
	// handle; the table is private to this classifier, so the parallel
	// pipeline's per-shard classifiers never share interner state.
	tab *intern.Table
}

// NewClassifier returns an empty classifier.
func NewClassifier() *Classifier {
	return &Classifier{
		states: make(map[stateKey]*routeState),
		active: make(map[PeerKey]int),
		tab:    intern.New(),
	}
}

// Interner exposes the classifier's private attribute table (hit-rate
// accounting, tests).
func (c *Classifier) Interner() *intern.Table { return c.tab }

// Classify processes one record and returns its event.
func (c *Classifier) Classify(rec collector.Record) Event {
	ev := Event{Record: rec, Class: Other}
	switch rec.Type {
	case collector.Announce, collector.Withdraw:
	default:
		// Session records carry no route state; the study's logs likewise
		// interleave state messages that the update taxonomy ignores.
		return ev
	}
	key := stateKey{peer: PeerKeyOf(rec), prefix: rec.Prefix}
	st := c.states[key]
	if st == nil {
		st = &routeState{}
		c.states[key] = st
	}

	switch rec.Type {
	case collector.Announce:
		// One intern lookup replaces every deep comparison below: handle
		// pointer equality is PolicyEqual, (NextHop, PathID) equality is
		// ForwardingEqual.
		h := c.tab.Attrs(rec.Attrs)
		switch {
		case st.announced:
			if intern.ForwardingEqual(st.last, h) {
				ev.Class = AADup
				ev.PolicyShift = st.last != h
			} else {
				ev.Class = AADiff
			}
		case st.ever:
			if intern.ForwardingEqual(st.last, h) {
				ev.Class = WADup
			} else {
				ev.Class = WADiff
			}
		default:
			ev.Class = Other // first announcement ever seen
		}
		if !st.announced {
			c.active[key.peer]++
		}
		st.announced, st.ever, st.last = true, true, h

	case collector.Withdraw:
		if st.announced {
			ev.Class = Other // ordinary withdrawal of a live route
			st.announced = false
			c.active[key.peer]--
		} else {
			ev.Class = WWDup
		}
	}

	// Inter-arrival bookkeeping.
	var lastAny time.Time
	for i := range st.lastEvent {
		if t := st.lastEvent[i]; !t.IsZero() && t.After(lastAny) {
			lastAny = t
		}
	}
	if !lastAny.IsZero() {
		ev.SinceAny = rec.Time.Sub(lastAny)
	}
	if t := st.lastEvent[ev.Class]; !t.IsZero() {
		ev.SinceLast = rec.Time.Sub(t)
	}
	st.lastEvent[ev.Class] = rec.Time
	return ev
}

// ActiveRoutes returns the number of prefixes peer currently announces.
func (c *Classifier) ActiveRoutes(p PeerKey) int { return c.active[p] }

// ActiveByPeer returns a copy of the per-peer active route counts: each
// peer's share of the default-free table.
func (c *Classifier) ActiveByPeer() map[PeerKey]int {
	out := make(map[PeerKey]int, len(c.active))
	for k, v := range c.active {
		if v > 0 {
			out[k] = v
		}
	}
	return out
}

// TotalActive returns the number of (peer, prefix) pairs currently announced.
func (c *Classifier) TotalActive() int {
	n := 0
	for _, v := range c.active {
		n += v
	}
	return n
}

// KnownPairs returns the number of (peer, prefix) pairs ever observed.
func (c *Classifier) KnownPairs() int { return len(c.states) }
