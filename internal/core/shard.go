package core

import (
	"instability/internal/collector"
	"instability/internal/netaddr"
)

// The classifier's history is keyed strictly per (peer, prefix): no record's
// classification ever reads another key's state. That makes classification
// embarrassingly parallel under one constraint — every record of a key must
// be processed by the same worker, in arrival order. ShardOf is the
// partition function that enforces it: a stable hash of exactly the fields
// of the classifier's stateKey.

// ShardOf returns a stable shard index in [0, shards) for rec's classifier
// state key (peer AS, peer address, prefix). Records with equal keys always
// land on the same shard, so a per-shard Classifier sees exactly the
// per-key-ordered substream it needs.
func ShardOf(rec collector.Record, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := mix64(uint64(rec.PeerAS)<<48 ^ uint64(rec.PeerAddr)<<16 ^ uint64(rec.Prefix.Bits()))
	h ^= mix64(uint64(rec.Prefix.Addr()) ^ 0x9e3779b97f4a7c15)
	return int(h % uint64(shards))
}

// PrefixShardOf returns a stable shard index in [0, shards) keyed by prefix
// alone. The RIB mirror partitions by prefix (all of a prefix's candidate
// routes must live in one table for the census to count it once), so its
// partition function deliberately ignores the peer.
func PrefixShardOf(p netaddr.Prefix, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := mix64(uint64(p.Addr())<<8 ^ uint64(p.Bits()))
	return int(h % uint64(shards))
}

// mix64 is the SplitMix64 finalizer: cheap, stateless, and avalanche-quality
// enough that consecutive prefixes spread evenly over small shard counts.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
