package core

import (
	"testing"
	"testing/quick"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/netaddr"
)

// TestBinOfMonotoneQuick: longer inter-arrivals never land in earlier bins.
func TestBinOfMonotoneQuick(t *testing.T) {
	f := func(a, b uint32) bool {
		da := time.Duration(a) * time.Millisecond
		db := time.Duration(b) * time.Millisecond
		if da > db {
			da, db = db, da
		}
		return BinOf(da) <= BinOf(db)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestBinEdgesCoverQuick: every duration lands in a valid bin whose edge
// bounds it (except the clamped last bin).
func TestBinEdgesCoverQuick(t *testing.T) {
	f := func(ms uint32) bool {
		d := time.Duration(ms) * time.Millisecond
		b := BinOf(d)
		if b < 0 || b >= NumBins {
			return false
		}
		if b < NumBins-1 && d > BinEdges[b] {
			return false
		}
		if b > 0 && d <= BinEdges[b-1] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestClassifierTotalPartitionQuick: every record gets exactly one class and
// the per-class counts always sum to the record count.
func TestClassifierTotalPartitionQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		c := NewClassifier()
		var counts [NumClasses]int
		now := t0
		for _, op := range ops {
			now = now.Add(time.Duration(op%120) * time.Second)
			prefix := netaddr.MustPrefix(netaddr.Addr(uint32(op%4)<<24|0x0a000000), 24)
			var rec collector.Record
			if op%2 == 0 {
				rec = ann(now, peerA, prefix, attrs1())
			} else {
				rec = wd(now, peerA, prefix)
			}
			ev := c.Classify(rec)
			counts[ev.Class]++
		}
		total := 0
		for _, v := range counts {
			total += v
		}
		return total == len(ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestActiveNeverNegativeQuick: the classifier's active-route accounting
// cannot go negative no matter the withdrawal pattern.
func TestActiveNeverNegativeQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		c := NewClassifier()
		now := t0
		for _, op := range ops {
			now = now.Add(time.Second)
			peer := PeerKey{AS: bgp.ASN(op%3 + 1), Addr: netaddr.Addr(op % 3)}
			prefix := netaddr.MustPrefix(netaddr.Addr(uint32(op%8)<<24|0x0a000000), 24)
			var rec collector.Record
			if op%5 < 2 {
				rec = collector.Record{Time: now, Type: collector.Announce, PeerAS: peer.AS, PeerAddr: peer.Addr, Prefix: prefix, Attrs: attrs1()}
			} else {
				rec = collector.Record{Time: now, Type: collector.Withdraw, PeerAS: peer.AS, PeerAddr: peer.Addr, Prefix: prefix}
			}
			c.Classify(rec)
			if c.ActiveRoutes(peer) < 0 || c.TotalActive() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
