package core

import (
	"math/rand"
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/netaddr"
)

var (
	t0    = time.Date(1996, 8, 1, 12, 0, 0, 0, time.UTC)
	peerA = PeerKey{AS: 690, Addr: netaddr.MustParseAddr("198.32.186.1")}
	peerB = PeerKey{AS: 701, Addr: netaddr.MustParseAddr("198.32.186.7")}
	pfxX  = netaddr.MustParsePrefix("192.42.113.0/24")
	pfxY  = netaddr.MustParsePrefix("35.0.0.0/8")
)

func attrs1() bgp.Attrs {
	return bgp.Attrs{Origin: bgp.OriginIGP, Path: bgp.PathFromASNs(690, 237), NextHop: 1}
}

func attrs2() bgp.Attrs {
	return bgp.Attrs{Origin: bgp.OriginIGP, Path: bgp.PathFromASNs(690, 1239, 237), NextHop: 1}
}

func ann(t time.Time, p PeerKey, prefix netaddr.Prefix, a bgp.Attrs) collector.Record {
	return collector.Record{Time: t, Type: collector.Announce, PeerAS: p.AS, PeerAddr: p.Addr, Prefix: prefix, Attrs: a}
}

func wd(t time.Time, p PeerKey, prefix netaddr.Prefix) collector.Record {
	return collector.Record{Time: t, Type: collector.Withdraw, PeerAS: p.AS, PeerAddr: p.Addr, Prefix: prefix}
}

func TestFirstAnnouncementIsOther(t *testing.T) {
	c := NewClassifier()
	ev := c.Classify(ann(t0, peerA, pfxX, attrs1()))
	if ev.Class != Other {
		t.Fatalf("class %v", ev.Class)
	}
	if c.ActiveRoutes(peerA) != 1 || c.TotalActive() != 1 {
		t.Fatal("active accounting wrong")
	}
}

func TestAADup(t *testing.T) {
	c := NewClassifier()
	c.Classify(ann(t0, peerA, pfxX, attrs1()))
	ev := c.Classify(ann(t0.Add(30*time.Second), peerA, pfxX, attrs1()))
	if ev.Class != AADup || ev.PolicyShift {
		t.Fatalf("event %+v", ev)
	}
	if c.ActiveRoutes(peerA) != 1 {
		t.Fatal("duplicate should not grow active count")
	}
}

func TestAADupPolicyShift(t *testing.T) {
	c := NewClassifier()
	c.Classify(ann(t0, peerA, pfxX, attrs1()))
	a := attrs1()
	a.Communities = []bgp.Community{bgp.Community(690<<16 | 1)}
	ev := c.Classify(ann(t0.Add(time.Minute), peerA, pfxX, a))
	if ev.Class != AADup || !ev.PolicyShift {
		t.Fatalf("event %+v", ev)
	}
}

func TestAADiff(t *testing.T) {
	c := NewClassifier()
	c.Classify(ann(t0, peerA, pfxX, attrs1()))
	ev := c.Classify(ann(t0.Add(time.Minute), peerA, pfxX, attrs2()))
	if ev.Class != AADiff {
		t.Fatalf("class %v", ev.Class)
	}
}

func TestWADupAndWADiff(t *testing.T) {
	c := NewClassifier()
	c.Classify(ann(t0, peerA, pfxX, attrs1()))
	evW := c.Classify(wd(t0.Add(time.Minute), peerA, pfxX))
	if evW.Class != Other {
		t.Fatalf("legit withdrawal class %v", evW.Class)
	}
	if c.ActiveRoutes(peerA) != 0 {
		t.Fatal("withdrawal should clear active count")
	}
	// Identical re-announcement: WADup.
	ev := c.Classify(ann(t0.Add(2*time.Minute), peerA, pfxX, attrs1()))
	if ev.Class != WADup {
		t.Fatalf("class %v", ev.Class)
	}
	// Withdraw again, re-announce different: WADiff.
	c.Classify(wd(t0.Add(3*time.Minute), peerA, pfxX))
	ev = c.Classify(ann(t0.Add(4*time.Minute), peerA, pfxX, attrs2()))
	if ev.Class != WADiff {
		t.Fatalf("class %v", ev.Class)
	}
}

func TestWWDup(t *testing.T) {
	c := NewClassifier()
	// Withdrawal from a peer that never announced the prefix — the paper's
	// headline pathology (ISP-Y withdrawing ISP-X's route).
	ev := c.Classify(wd(t0, peerB, pfxX))
	if ev.Class != WWDup {
		t.Fatalf("class %v", ev.Class)
	}
	// Repeat withdrawals keep being WWDup.
	for i := 1; i <= 5; i++ {
		ev = c.Classify(wd(t0.Add(time.Duration(i)*30*time.Second), peerB, pfxX))
		if ev.Class != WWDup {
			t.Fatalf("iteration %d class %v", i, ev.Class)
		}
	}
	// After announce+withdraw, the next withdrawal is WWDup again.
	c.Classify(ann(t0.Add(time.Hour), peerB, pfxX, attrs1()))
	c.Classify(wd(t0.Add(time.Hour+time.Minute), peerB, pfxX))
	ev = c.Classify(wd(t0.Add(time.Hour+2*time.Minute), peerB, pfxX))
	if ev.Class != WWDup {
		t.Fatalf("class %v", ev.Class)
	}
}

func TestPeersIndependent(t *testing.T) {
	c := NewClassifier()
	c.Classify(ann(t0, peerA, pfxX, attrs1()))
	// Peer B announcing the same prefix is B's first announcement.
	ev := c.Classify(ann(t0.Add(time.Second), peerB, pfxX, attrs1()))
	if ev.Class != Other {
		t.Fatalf("class %v", ev.Class)
	}
	// B's withdrawal does not disturb A's state.
	c.Classify(wd(t0.Add(2*time.Second), peerB, pfxX))
	ev = c.Classify(ann(t0.Add(3*time.Second), peerA, pfxX, attrs1()))
	if ev.Class != AADup {
		t.Fatalf("class %v", ev.Class)
	}
}

func TestPrefixesIndependent(t *testing.T) {
	c := NewClassifier()
	c.Classify(ann(t0, peerA, pfxX, attrs1()))
	ev := c.Classify(ann(t0.Add(time.Second), peerA, pfxY, attrs1()))
	if ev.Class != Other {
		t.Fatalf("class %v", ev.Class)
	}
	if c.ActiveRoutes(peerA) != 2 {
		t.Fatalf("active %d", c.ActiveRoutes(peerA))
	}
}

func TestSessionRecordsIgnored(t *testing.T) {
	c := NewClassifier()
	rec := collector.Record{Time: t0, Type: collector.SessionUp, PeerAS: peerA.AS, PeerAddr: peerA.Addr}
	if ev := c.Classify(rec); ev.Class != Other {
		t.Fatalf("class %v", ev.Class)
	}
	if c.KnownPairs() != 0 {
		t.Fatal("session record created route state")
	}
}

func TestInterArrivalTimes(t *testing.T) {
	c := NewClassifier()
	c.Classify(ann(t0, peerA, pfxX, attrs1()))
	ev := c.Classify(ann(t0.Add(30*time.Second), peerA, pfxX, attrs1())) // AADup #1
	if ev.SinceLast != 0 {
		t.Fatalf("first AADup SinceLast %v", ev.SinceLast)
	}
	if ev.SinceAny != 30*time.Second {
		t.Fatalf("SinceAny %v", ev.SinceAny)
	}
	ev = c.Classify(ann(t0.Add(60*time.Second), peerA, pfxX, attrs1())) // AADup #2
	if ev.SinceLast != 30*time.Second {
		t.Fatalf("second AADup SinceLast %v", ev.SinceLast)
	}
}

func TestClassPredicates(t *testing.T) {
	if !AADiff.IsInstability() || !WADiff.IsInstability() || !WADup.IsInstability() {
		t.Fatal("instability predicate wrong")
	}
	if AADup.IsInstability() || WWDup.IsInstability() || Other.IsInstability() {
		t.Fatal("pathology classified as instability")
	}
	if !AADup.IsPathological() || !WWDup.IsPathological() {
		t.Fatal("pathology predicate wrong")
	}
	if !AADiff.IsForwarding() || !WADiff.IsForwarding() || WADup.IsForwarding() {
		t.Fatal("forwarding predicate wrong")
	}
	if len(Classes()) != NumClasses {
		t.Fatal("Classes() incomplete")
	}
	for _, c := range Classes() {
		if c.String() == "" {
			t.Fatal("empty class name")
		}
	}
	if Class(42).String() == "" {
		t.Fatal("unknown class should print")
	}
}

// TestClassifierInvariants drives a random stream through the classifier and
// checks structural invariants against a reference model.
func TestClassifierInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := NewClassifier()
	type refState struct {
		announced bool
		ever      bool
		last      bgp.Attrs
	}
	ref := map[stateKey]*refState{}
	peers := []PeerKey{peerA, peerB, {AS: 1239, Addr: 9}}
	prefixes := []netaddr.Prefix{pfxX, pfxY, netaddr.MustParsePrefix("141.213.0.0/16")}
	attrsPool := []bgp.Attrs{attrs1(), attrs2(), {Origin: bgp.OriginEGP, Path: bgp.PathFromASNs(3561, 237), NextHop: 7}}
	now := t0
	var counts [NumClasses]int
	for i := 0; i < 20000; i++ {
		now = now.Add(time.Duration(rng.Intn(100)) * time.Second)
		p := peers[rng.Intn(len(peers))]
		prefix := prefixes[rng.Intn(len(prefixes))]
		key := stateKey{peer: p, prefix: prefix}
		st := ref[key]
		if st == nil {
			st = &refState{}
			ref[key] = st
		}
		var ev Event
		if rng.Intn(2) == 0 {
			a := attrsPool[rng.Intn(len(attrsPool))]
			ev = c.Classify(ann(now, p, prefix, a))
			var want Class
			switch {
			case st.announced && st.last.ForwardingEqual(a):
				want = AADup
			case st.announced:
				want = AADiff
			case st.ever && st.last.ForwardingEqual(a):
				want = WADup
			case st.ever:
				want = WADiff
			default:
				want = Other
			}
			if ev.Class != want {
				t.Fatalf("step %d: announce class %v, want %v", i, ev.Class, want)
			}
			st.announced, st.ever, st.last = true, true, a
		} else {
			ev = c.Classify(wd(now, p, prefix))
			want := WWDup
			if st.announced {
				want = Other
			}
			if ev.Class != want {
				t.Fatalf("step %d: withdraw class %v, want %v", i, ev.Class, want)
			}
			st.announced = false
		}
		counts[ev.Class]++
	}
	// The classes partition the stream.
	total := 0
	for _, v := range counts {
		total += v
	}
	if total != 20000 {
		t.Fatalf("classified %d of 20000", total)
	}
	// Active accounting agrees with the reference.
	active := 0
	for _, st := range ref {
		if st.announced {
			active++
		}
	}
	if c.TotalActive() != active {
		t.Fatalf("active %d, want %d", c.TotalActive(), active)
	}
}

func BenchmarkClassify(b *testing.B) {
	c := NewClassifier()
	recs := []collector.Record{
		ann(t0, peerA, pfxX, attrs1()),
		wd(t0.Add(time.Second), peerA, pfxX),
		ann(t0.Add(2*time.Second), peerA, pfxX, attrs1()),
		wd(t0.Add(3*time.Second), peerB, pfxX),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Classify(recs[i%len(recs)])
	}
}
