package core

import (
	"testing"
	"time"

	"instability/internal/netaddr"
)

// pfx builds distinct /24 prefixes for burst tests.
func pfx(i int) netaddr.Prefix {
	return netaddr.MustPrefix(netaddr.Addr(0x0a000000+uint32(i)<<8), 24)
}

func TestEpisodeGrouping(t *testing.T) {
	tr := NewEpisodeTracker()
	c := NewClassifier()
	// Episode 1: four AADups 30s apart (90s span).
	c.Classify(ann(t0, peerA, pfxX, attrs1()))
	for i := 1; i <= 4; i++ {
		tr.Observe(c.Classify(ann(t0.Add(time.Duration(i)*30*time.Second), peerA, pfxX, attrs1())))
	}
	// Quiet for an hour, then episode 2: two AADups.
	later := t0.Add(time.Hour)
	tr.Observe(c.Classify(ann(later, peerA, pfxX, attrs1())))
	tr.Observe(c.Classify(ann(later.Add(time.Minute), peerA, pfxX, attrs1())))
	tr.Flush()

	if len(tr.Durations) != 2 {
		t.Fatalf("episodes %d, want 2", len(tr.Durations))
	}
	if tr.Durations[0] != 90*time.Second {
		t.Fatalf("episode 1 duration %v", tr.Durations[0])
	}
	if tr.Events[0] != 4 || tr.Events[1] != 2 {
		t.Fatalf("episode events %v", tr.Events)
	}
}

func TestIsolatedEventsAreNotEpisodes(t *testing.T) {
	tr := NewEpisodeTracker()
	c := NewClassifier()
	c.Classify(ann(t0, peerA, pfxX, attrs1()))
	// One lone duplicate, then silence.
	tr.Observe(c.Classify(ann(t0.Add(time.Minute), peerA, pfxX, attrs1())))
	tr.Flush()
	if len(tr.Durations) != 0 {
		t.Fatalf("isolated event closed as episode: %v", tr.Durations)
	}
}

func TestOtherEventsIgnored(t *testing.T) {
	tr := NewEpisodeTracker()
	c := NewClassifier()
	tr.Observe(c.Classify(ann(t0, peerA, pfxX, attrs1())))       // first announce: Other
	tr.Observe(c.Classify(wd(t0.Add(time.Minute), peerA, pfxX))) // clean withdraw: Other
	tr.Flush()
	if len(tr.Durations) != 0 || len(tr.open) != 0 {
		t.Fatal("Other events should not form episodes")
	}
}

func TestEpisodesPerRouteIndependent(t *testing.T) {
	tr := NewEpisodeTracker()
	c := NewClassifier()
	c.Classify(ann(t0, peerA, pfxX, attrs1()))
	c.Classify(ann(t0, peerB, pfxX, attrs1()))
	for i := 1; i <= 3; i++ {
		at := t0.Add(time.Duration(i) * 30 * time.Second)
		tr.Observe(c.Classify(ann(at, peerA, pfxX, attrs1())))
		tr.Observe(c.Classify(ann(at.Add(time.Second), peerB, pfxX, attrs1())))
	}
	tr.Flush()
	if len(tr.Durations) != 2 {
		t.Fatalf("per-route episodes %d, want 2", len(tr.Durations))
	}
}

func TestShareUnderAndMedian(t *testing.T) {
	tr := NewEpisodeTracker()
	tr.Durations = []time.Duration{time.Minute, 2 * time.Minute, 10 * time.Minute}
	if got := tr.ShareUnder(5 * time.Minute); got < 0.66 || got > 0.67 {
		t.Fatalf("share %v", got)
	}
	if tr.MedianDuration() != 2*time.Minute {
		t.Fatalf("median %v", tr.MedianDuration())
	}
	empty := NewEpisodeTracker()
	if empty.ShareUnder(time.Minute) != 0 || empty.MedianDuration() != 0 {
		t.Fatal("empty tracker stats")
	}
}

func TestPeakSecondTracking(t *testing.T) {
	c := NewClassifier()
	a := NewAccumulator()
	// Burst: 5 updates in one second (distinct prefixes), then a single.
	for i := 0; i < 5; i++ {
		p := pfx(i)
		a.Add(c.Classify(ann(t0.Add(time.Duration(i)*100*time.Millisecond), peerA, p, attrs1())))
	}
	a.Add(c.Classify(ann(t0.Add(10*time.Second), peerA, pfxY, attrs1())))
	s := a.Day(DateOf(t0))
	if s.PeakSecond != 5 {
		t.Fatalf("peak %d, want 5", s.PeakSecond)
	}
}
