package core

import "instability/internal/obs"

// Register exports the accumulator's live taxonomy tallies into reg as
// func-backed counters:
//
//	irtl_classify_class_total{class=...}  per-class event counts
//	irtl_classify_events_total            all classified events
//
// The functions read the accumulator's atomic totals, so exposition never
// takes a lock and never touches the per-day maps that Add is mutating —
// a scrape during full-rate ingest costs seven atomic loads.
// Re-registering (e.g. a fresh pipeline in the same process) rebinds the
// series to the new accumulator.
func (a *Accumulator) Register(reg *obs.Registry) {
	for _, c := range Classes() {
		c := c
		reg.CounterFunc("irtl_classify_class_total",
			"Classified updates per taxonomy class.",
			func() float64 { return float64(a.totals[c].Load()) },
			obs.L("class", c.String()))
	}
	reg.CounterFunc("irtl_classify_events_total",
		"Updates classified by the streaming classifier.",
		func() float64 { return float64(a.events.Load()) })
}
