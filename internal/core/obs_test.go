package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/netaddr"
	"instability/internal/obs"
)

func obsRec(t *testing.T, sec int, typ collector.RecType) collector.Record {
	t.Helper()
	p, err := netaddr.ParsePrefix("10.1.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	return collector.Record{
		Time:   time.Unix(int64(sec), 0).UTC(),
		Type:   typ,
		PeerAS: 690,
		Prefix: p,
		Attrs:  bgp.Attrs{Origin: bgp.OriginIGP, Path: bgp.PathFromASNs(690, 237), NextHop: 1},
	}
}

// TestTotalCountsMatchesDays proves the atomic running totals agree with
// summing the per-day maps, which is what TotalCounts used to do.
func TestTotalCountsMatchesDays(t *testing.T) {
	c := NewClassifier()
	a := NewAccumulator()
	for i := 0; i < 50; i++ {
		a.Add(c.Classify(obsRec(t, i, collector.Announce)))
		a.Add(c.Classify(obsRec(t, 86400+i, collector.Withdraw)))
	}
	var fromDays [NumClasses]int
	for _, s := range a.Days {
		for i, v := range s.Counts {
			fromDays[i] += v
		}
	}
	if got := a.TotalCounts(); got != fromDays {
		t.Errorf("TotalCounts = %v, day sums = %v", got, fromDays)
	}
	if got := a.TotalEvents(); got != 100 {
		t.Errorf("TotalEvents = %d, want 100", got)
	}
}

// TestRegisterExposesLiveTotals scrapes the registry concurrently with
// ingest; under -race this proves exposition takes no accumulator lock and
// races with nothing.
func TestRegisterExposesLiveTotals(t *testing.T) {
	cl := NewClassifier()
	a := NewAccumulator()
	reg := obs.NewRegistry()
	a.Register(reg)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			a.Add(cl.Classify(obsRec(t, i/10, collector.Announce)))
		}
	}()
	// Concurrent scrapes while Add runs.
	for i := 0; i < 100; i++ {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	if got := reg.Value("irtl_classify_events_total"); got != 2000 {
		t.Errorf("events total = %g, want 2000", got)
	}
	// Identical re-announcements after the first are AADups.
	if got := reg.Value("irtl_classify_class_total", obs.L("class", "AADup")); got != 1999 {
		t.Errorf("AADup total = %g, want 1999", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `irtl_classify_class_total{class="AADup"} 1999`) {
		t.Errorf("exposition missing AADup series:\n%s", sb.String())
	}

	// Re-registration rebinds to a fresh accumulator.
	b := NewAccumulator()
	b.Register(reg)
	if got := reg.Value("irtl_classify_events_total"); got != 0 {
		t.Errorf("after rebind, events total = %g, want 0", got)
	}
}
