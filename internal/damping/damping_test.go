package damping

import (
	"testing"
	"time"
)

var t0 = time.Date(1996, time.August, 1, 0, 0, 0, 0, time.UTC)

func TestSingleFlapNotSuppressed(t *testing.T) {
	d := New[string](DefaultConfig())
	if d.Record("r", EventWithdraw, t0) {
		t.Fatal("one flap should not suppress")
	}
	if d.Penalty("r", t0) != 1000 {
		t.Fatalf("penalty %v", d.Penalty("r", t0))
	}
}

func TestRepeatedFlapsSuppress(t *testing.T) {
	d := New[string](DefaultConfig())
	now := t0
	suppressed := false
	// Flap once a minute: withdraw + attr-change reannounce.
	for i := 0; i < 5 && !suppressed; i++ {
		suppressed = d.Record("r", EventWithdraw, now)
		now = now.Add(30 * time.Second)
		suppressed = d.Record("r", EventAttrChange, now) || suppressed
		now = now.Add(30 * time.Second)
	}
	if !suppressed {
		t.Fatal("persistent flapping should suppress")
	}
	if d.Suppressions != 1 {
		t.Fatalf("suppressions %d", d.Suppressions)
	}
	if !d.Suppressed("r", now) {
		t.Fatal("should remain suppressed immediately after")
	}
}

func TestPenaltyDecaysByHalfLife(t *testing.T) {
	cfg := DefaultConfig()
	d := New[string](cfg)
	d.Record("r", EventWithdraw, t0)
	p := d.Penalty("r", t0.Add(cfg.HalfLife))
	if p < 499 || p > 501 {
		t.Fatalf("after one half-life penalty %v, want ~500", p)
	}
	p = d.Penalty("r", t0.Add(2*cfg.HalfLife))
	if p < 249 || p > 251 {
		t.Fatalf("after two half-lives penalty %v, want ~250", p)
	}
}

func TestReuseAfterDecay(t *testing.T) {
	cfg := DefaultConfig()
	d := New[string](cfg)
	now := t0
	for i := 0; i < 4; i++ {
		d.Record("r", EventWithdraw, now)
		now = now.Add(time.Minute)
	}
	if !d.Suppressed("r", now) {
		t.Fatal("should be suppressed")
	}
	reuse, ok := d.ReuseTime("r", now)
	if !ok {
		t.Fatal("reuse time should exist")
	}
	if !d.Suppressed("r", reuse.Add(-time.Minute)) {
		t.Fatal("should still be suppressed just before reuse time")
	}
	if d.Suppressed("r", reuse.Add(time.Second)) {
		t.Fatal("should be reusable just after reuse time")
	}
	if _, ok := d.ReuseTime("r", reuse.Add(time.Second)); ok {
		t.Fatal("reuse time for unsuppressed route")
	}
}

func TestMaxSuppressCapsHoldDown(t *testing.T) {
	cfg := DefaultConfig()
	d := New[string](cfg)
	now := t0
	// Hammer the route far beyond the suppress threshold.
	for i := 0; i < 500; i++ {
		d.Record("r", EventWithdraw, now)
		now = now.Add(time.Second)
	}
	reuse, ok := d.ReuseTime("r", now)
	if !ok {
		t.Fatal("should be suppressed")
	}
	if held := reuse.Sub(now); held > cfg.MaxSuppress+time.Minute {
		t.Fatalf("held down %v, cap %v", held, cfg.MaxSuppress)
	}
}

func TestStableRouteNeverSuppressed(t *testing.T) {
	d := New[string](DefaultConfig())
	now := t0
	// One withdrawal per day is legitimate topology change.
	for i := 0; i < 30; i++ {
		if d.Record("r", EventWithdraw, now) {
			t.Fatal("daily flap suppressed")
		}
		now = now.Add(24 * time.Hour)
	}
}

func TestKeysIndependent(t *testing.T) {
	d := New[int](DefaultConfig())
	now := t0
	for i := 0; i < 4; i++ {
		d.Record(1, EventWithdraw, now)
		now = now.Add(time.Minute)
	}
	if !d.Suppressed(1, now) {
		t.Fatal("key 1 should be suppressed")
	}
	if d.Suppressed(2, now) {
		t.Fatal("key 2 was never flapped")
	}
	if d.Penalty(2, now) != 0 {
		t.Fatal("untouched key has penalty")
	}
}

func TestPenaltyMonotoneInFlapCount(t *testing.T) {
	// More flaps in the same window never yields a lower penalty.
	cfg := DefaultConfig()
	prev := 0.0
	for n := 1; n <= 10; n++ {
		d := New[string](cfg)
		now := t0
		for i := 0; i < n; i++ {
			d.Record("r", EventWithdraw, now)
			now = now.Add(time.Second)
		}
		p := d.Penalty("r", now)
		if p < prev {
			t.Fatalf("penalty decreased: %d flaps -> %v, %d flaps -> %v", n-1, prev, n, p)
		}
		prev = p
	}
}

func TestLenAndGC(t *testing.T) {
	cfg := DefaultConfig()
	d := New[string](cfg)
	d.Record("r", EventWithdraw, t0)
	if d.Len() != 1 {
		t.Fatalf("len %d", d.Len())
	}
	// After ~10 half-lives the penalty rounds to zero and the state is
	// considered dead.
	if got := d.Penalty("r", t0.Add(11*cfg.HalfLife)); got != 0 {
		t.Fatalf("penalty %v, want 0", got)
	}
	if d.Len() != 0 {
		t.Fatalf("len %d after decay", d.Len())
	}
}

func TestOutOfOrderTimeDoesNotCredit(t *testing.T) {
	d := New[string](DefaultConfig())
	d.Record("r", EventWithdraw, t0)
	// A timestamp in the past must not decay (nor inflate) the penalty.
	p := d.Penalty("r", t0.Add(-time.Hour))
	if p != 1000 {
		t.Fatalf("penalty %v", p)
	}
}

func TestZeroHalfLifeNeverCaps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HalfLife = 0
	cfg.MaxSuppress = 0
	d := New[string](cfg)
	// Without decay configuration, maxPenalty is +Inf; Record must not
	// panic or clamp.
	for i := 0; i < 10; i++ {
		d.Record("r", EventWithdraw, t0)
	}
	if p := d.routes["r"].penalty; p != 10000 {
		t.Fatalf("penalty %v", p)
	}
}

func BenchmarkRecord(b *testing.B) {
	d := New[int](DefaultConfig())
	now := t0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Record(i%4096, EventWithdraw, now)
		now = now.Add(time.Millisecond)
	}
}
