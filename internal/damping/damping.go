// Package damping implements route flap damping in the style of the
// Villamizar/Chandra/Govindan Internet-Draft cited by the paper (later
// RFC 2439): each flapping route accumulates a penalty that decays
// exponentially; routes whose penalty exceeds a suppress threshold are held
// down until the penalty decays below a reuse threshold.
//
// The paper discusses damping as the principal deployed countermeasure to
// instability — and notes its downside, that legitimate announcements of a
// newly available network may be delayed by earlier damped instability. Both
// effects are measurable with this implementation.
package damping

import (
	"math"
	"time"
)

// Config holds the damping parameters. The zero Config is not valid; use
// DefaultConfig (the draft's commonly deployed values) as a starting point.
type Config struct {
	// WithdrawPenalty is added when a route is withdrawn (a flap).
	WithdrawPenalty float64
	// ReannouncePenalty is added when a route is re-announced after a
	// withdrawal.
	ReannouncePenalty float64
	// AttrChangePenalty is added when a route is re-announced with changed
	// attributes (an implicit withdrawal).
	AttrChangePenalty float64
	// SuppressThreshold is the penalty above which a route is suppressed.
	SuppressThreshold float64
	// ReuseThreshold is the penalty below which a suppressed route is
	// reusable again.
	ReuseThreshold float64
	// HalfLife is the exponential decay half-life of the penalty.
	HalfLife time.Duration
	// MaxSuppress caps how long a route may remain suppressed; the penalty
	// is clamped so it can always decay to ReuseThreshold within this time.
	MaxSuppress time.Duration
}

// DefaultConfig mirrors the draft's widely deployed defaults (Cisco-style
// units: penalty 1000 per flap).
func DefaultConfig() Config {
	return Config{
		WithdrawPenalty:   1000,
		ReannouncePenalty: 0,
		AttrChangePenalty: 500,
		SuppressThreshold: 2000,
		ReuseThreshold:    750,
		HalfLife:          15 * time.Minute,
		MaxSuppress:       60 * time.Minute,
	}
}

// maxPenalty returns the ceiling implied by MaxSuppress: a penalty that
// decays to ReuseThreshold in exactly MaxSuppress.
func (c Config) maxPenalty() float64 {
	if c.HalfLife <= 0 || c.MaxSuppress <= 0 {
		return math.Inf(1)
	}
	return c.ReuseThreshold * math.Pow(2, float64(c.MaxSuppress)/float64(c.HalfLife))
}

// state tracks one route's figure of merit.
type state struct {
	penalty    float64
	lastUpdate time.Time
	suppressed bool
}

// Event is the kind of route change reported to the damper.
type Event int

// Route change events.
const (
	// EventWithdraw is an explicit withdrawal.
	EventWithdraw Event = iota
	// EventReannounce is an announcement of a previously withdrawn route.
	EventReannounce
	// EventAttrChange is a re-announcement with changed path attributes.
	EventAttrChange
)

// Damper applies flap damping per key (typically a (peer, prefix) pair
// rendered to a comparable value by the caller).
type Damper[K comparable] struct {
	cfg    Config
	routes map[K]*state
	// Suppressions counts transitions into the suppressed state.
	Suppressions int
}

// New returns a Damper with the given configuration.
func New[K comparable](cfg Config) *Damper[K] {
	return &Damper[K]{cfg: cfg, routes: make(map[K]*state)}
}

// decayTo brings the penalty forward to time now.
func (d *Damper[K]) decayTo(s *state, now time.Time) {
	if s.lastUpdate.IsZero() || !now.After(s.lastUpdate) {
		s.lastUpdate = now
		return
	}
	dt := now.Sub(s.lastUpdate)
	s.penalty *= math.Pow(0.5, float64(dt)/float64(d.cfg.HalfLife))
	s.lastUpdate = now
	if s.suppressed && s.penalty < d.cfg.ReuseThreshold {
		s.suppressed = false
	}
	// Garbage-collect negligible penalties.
	if s.penalty < 1 {
		s.penalty = 0
	}
}

// Record reports a route change at virtual time now and returns whether the
// route is currently suppressed (i.e. the change should be withheld from
// peers).
func (d *Damper[K]) Record(key K, ev Event, now time.Time) bool {
	s := d.routes[key]
	if s == nil {
		s = &state{lastUpdate: now}
		d.routes[key] = s
	}
	d.decayTo(s, now)
	switch ev {
	case EventWithdraw:
		s.penalty += d.cfg.WithdrawPenalty
	case EventReannounce:
		s.penalty += d.cfg.ReannouncePenalty
	case EventAttrChange:
		s.penalty += d.cfg.AttrChangePenalty
	}
	if maxP := d.cfg.maxPenalty(); s.penalty > maxP {
		s.penalty = maxP
	}
	if !s.suppressed && s.penalty > d.cfg.SuppressThreshold {
		s.suppressed = true
		d.Suppressions++
	}
	return s.suppressed
}

// Suppressed reports whether key is suppressed at time now, applying decay.
func (d *Damper[K]) Suppressed(key K, now time.Time) bool {
	s := d.routes[key]
	if s == nil {
		return false
	}
	d.decayTo(s, now)
	return s.suppressed
}

// Penalty returns the current figure of merit for key at time now.
func (d *Damper[K]) Penalty(key K, now time.Time) float64 {
	s := d.routes[key]
	if s == nil {
		return 0
	}
	d.decayTo(s, now)
	return s.penalty
}

// ReuseTime predicts when a currently suppressed key becomes reusable; the
// second return is false if the key is not suppressed.
func (d *Damper[K]) ReuseTime(key K, now time.Time) (time.Time, bool) {
	s := d.routes[key]
	if s == nil {
		return time.Time{}, false
	}
	d.decayTo(s, now)
	if !s.suppressed {
		return time.Time{}, false
	}
	// penalty * 0.5^(t/halfLife) = reuse  =>  t = halfLife * log2(p/reuse)
	t := float64(d.cfg.HalfLife) * math.Log2(s.penalty/d.cfg.ReuseThreshold)
	return now.Add(time.Duration(t)), true
}

// Len returns the number of routes with tracked (nonzero) damping state.
func (d *Damper[K]) Len() int {
	n := 0
	for _, s := range d.routes {
		if s.penalty > 0 || s.suppressed {
			n++
		}
	}
	return n
}
