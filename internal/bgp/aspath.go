package bgp

import (
	"fmt"
	"strconv"
	"strings"
)

// ASN is a 16-bit autonomous system number (the 1996 Internet predates
// 4-octet AS numbers).
type ASN uint16

// String returns the decimal form, e.g. "AS690".
func (a ASN) String() string { return "AS" + strconv.Itoa(int(a)) }

// Segment types in an AS_PATH attribute.
const (
	ASSet      uint8 = 1
	ASSequence uint8 = 2
)

// PathSegment is one segment of an AS_PATH: an ordered AS_SEQUENCE or an
// unordered AS_SET (produced by aggregation).
type PathSegment struct {
	Type uint8
	ASNs []ASN
}

// ASPath is the AS_PATH attribute: the sequence of autonomous systems a
// route's reachability information has traversed.
type ASPath struct {
	Segments []PathSegment
}

// PathFromASNs builds a single AS_SEQUENCE path. An empty argument list
// yields the empty path announced for locally originated routes to internal
// peers.
func PathFromASNs(asns ...ASN) ASPath {
	if len(asns) == 0 {
		return ASPath{}
	}
	return ASPath{Segments: []PathSegment{{Type: ASSequence, ASNs: append([]ASN(nil), asns...)}}}
}

// Prepend returns a new path with asn prepended, as a border router does when
// propagating a route to an external peer.
func (p ASPath) Prepend(asn ASN) ASPath {
	segs := make([]PathSegment, 0, len(p.Segments)+1)
	if len(p.Segments) > 0 && p.Segments[0].Type == ASSequence {
		first := PathSegment{Type: ASSequence, ASNs: make([]ASN, 0, len(p.Segments[0].ASNs)+1)}
		first.ASNs = append(first.ASNs, asn)
		first.ASNs = append(first.ASNs, p.Segments[0].ASNs...)
		segs = append(segs, first)
		segs = append(segs, cloneSegments(p.Segments[1:])...)
	} else {
		segs = append(segs, PathSegment{Type: ASSequence, ASNs: []ASN{asn}})
		segs = append(segs, cloneSegments(p.Segments)...)
	}
	return ASPath{Segments: segs}
}

func cloneSegments(segs []PathSegment) []PathSegment {
	out := make([]PathSegment, len(segs))
	for i, s := range segs {
		out[i] = PathSegment{Type: s.Type, ASNs: append([]ASN(nil), s.ASNs...)}
	}
	return out
}

// Contains reports whether asn appears anywhere in the path. Routers use this
// for loop detection: an update whose AS_PATH already contains the local AS
// must be discarded.
func (p ASPath) Contains(asn ASN) bool {
	for _, seg := range p.Segments {
		for _, a := range seg.ASNs {
			if a == asn {
				return true
			}
		}
	}
	return false
}

// Len returns the path length used by route selection: each AS in a sequence
// counts 1, each AS_SET counts 1 regardless of size.
func (p ASPath) Len() int {
	n := 0
	for _, seg := range p.Segments {
		if seg.Type == ASSet {
			n++
		} else {
			n += len(seg.ASNs)
		}
	}
	return n
}

// Origin returns the last AS in the path — the AS that originated the route —
// and false for an empty path.
func (p ASPath) Origin() (ASN, bool) {
	for i := len(p.Segments) - 1; i >= 0; i-- {
		seg := p.Segments[i]
		if len(seg.ASNs) == 0 {
			continue
		}
		if seg.Type == ASSet {
			// Aggregates have no single origin; report the first set member
			// for accounting purposes.
			return seg.ASNs[0], true
		}
		return seg.ASNs[len(seg.ASNs)-1], true
	}
	return 0, false
}

// First returns the neighboring AS the route was learned from (the first AS
// in the path), and false for an empty path.
func (p ASPath) First() (ASN, bool) {
	for _, seg := range p.Segments {
		if len(seg.ASNs) == 0 {
			continue
		}
		return seg.ASNs[0], true
	}
	return 0, false
}

// Equal reports whether two paths are identical segment for segment.
func (p ASPath) Equal(q ASPath) bool {
	if len(p.Segments) != len(q.Segments) {
		return false
	}
	for i := range p.Segments {
		a, b := p.Segments[i], q.Segments[i]
		if a.Type != b.Type || len(a.ASNs) != len(b.ASNs) {
			return false
		}
		for j := range a.ASNs {
			if a.ASNs[j] != b.ASNs[j] {
				return false
			}
		}
	}
	return true
}

// Key returns a compact string identity for the path, suitable as a map key.
// Distinct paths have distinct keys.
func (p ASPath) Key() string {
	if len(p.Segments) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, seg := range p.Segments {
		if i > 0 {
			sb.WriteByte('|')
		}
		if seg.Type == ASSet {
			sb.WriteByte('{')
		}
		for j, a := range seg.ASNs {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(strconv.Itoa(int(a)))
		}
		if seg.Type == ASSet {
			sb.WriteByte('}')
		}
	}
	return sb.String()
}

// String renders the path in the conventional "701 1239 {690 1800}" display
// form.
func (p ASPath) String() string {
	if len(p.Segments) == 0 {
		return "<empty>"
	}
	return strings.ReplaceAll(p.Key(), "|", " ")
}

// marshal appends the wire form of the path.
func (p ASPath) marshal(b []byte) ([]byte, error) {
	for _, seg := range p.Segments {
		if len(seg.ASNs) == 0 || len(seg.ASNs) > 255 {
			return nil, fmt.Errorf("bgp: AS_PATH segment with %d ASNs", len(seg.ASNs))
		}
		if seg.Type != ASSet && seg.Type != ASSequence {
			return nil, fmt.Errorf("bgp: AS_PATH segment type %d", seg.Type)
		}
		b = append(b, seg.Type, byte(len(seg.ASNs)))
		for _, a := range seg.ASNs {
			b = append(b, byte(a>>8), byte(a))
		}
	}
	return b, nil
}

func unmarshalASPath(b []byte) (ASPath, error) {
	var p ASPath
	for len(b) > 0 {
		if len(b) < 2 {
			return ASPath{}, fmt.Errorf("%w: AS_PATH segment header", ErrTruncated)
		}
		typ, n := b[0], int(b[1])
		if typ != ASSet && typ != ASSequence {
			return ASPath{}, fmt.Errorf("bgp: malformed AS_PATH segment type %d", typ)
		}
		if n == 0 {
			return ASPath{}, fmt.Errorf("bgp: empty AS_PATH segment")
		}
		b = b[2:]
		if len(b) < 2*n {
			return ASPath{}, fmt.Errorf("%w: AS_PATH segment ASNs", ErrTruncated)
		}
		seg := PathSegment{Type: typ, ASNs: make([]ASN, n)}
		for i := 0; i < n; i++ {
			seg.ASNs[i] = ASN(uint16(b[2*i])<<8 | uint16(b[2*i+1]))
		}
		b = b[2*n:]
		p.Segments = append(p.Segments, seg)
	}
	return p, nil
}
