package bgp

import "sync"

// The paper's central measurement is that update streams are dominated by
// redundant duplicates: the same AS path recurs millions of times across
// announcements. Interning maps each distinct path to a small dense integer
// once, so every later comparison, census set-insert, or map key is an
// integer operation instead of a segment-by-segment walk or a built string.

// PathID is the dense integer identity of an interned ASPath. IDs are only
// comparable between paths interned through the same PathTable: equal IDs
// mean equal paths, distinct IDs mean distinct paths.
type PathID uint32

// PathTable interns AS paths: the first ID call for a path assigns the next
// dense ID and stores a private copy; later calls with an equal path return
// the same ID without allocating. The zero value is not usable; call
// NewPathTable. A PathTable is not safe for concurrent use — callers that
// share one across goroutines (the store's decode path) must lock around it,
// while per-shard owners (classifier, RIB) need no locks at all.
type PathTable struct {
	byHash map[uint64][]PathID
	paths  []ASPath
}

// NewPathTable returns an empty table.
func NewPathTable() *PathTable {
	return &PathTable{byHash: make(map[uint64][]PathID)}
}

// ID returns the table's dense ID for p, interning it on first sight. The
// stored copy is deep: the caller's slices are never retained.
func (t *PathTable) ID(p ASPath) PathID {
	h := HashPath(p)
	for _, id := range t.byHash[h] {
		if t.paths[id].Equal(p) {
			return id
		}
	}
	id := PathID(len(t.paths))
	t.paths = append(t.paths, ASPath{Segments: cloneSegments(p.Segments)})
	t.byHash[h] = append(t.byHash[h], id)
	return id
}

// Lookup returns the interned path for id. The returned path shares the
// table's storage and must not be mutated.
func (t *PathTable) Lookup(id PathID) ASPath { return t.paths[id] }

// Len returns the number of distinct paths interned.
func (t *PathTable) Len() int { return len(t.paths) }

// HashPath returns a 64-bit hash of the path's full segment structure,
// without allocating. Paths that Equal hash identically.
func HashPath(p ASPath) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, seg := range p.Segments {
		h = mixPath(h ^ uint64(seg.Type)<<32 ^ uint64(len(seg.ASNs)))
		for _, a := range seg.ASNs {
			h = mixPath(h ^ uint64(a))
		}
	}
	return h
}

// mixPath is the SplitMix64 finalizer (same construction as the pipeline's
// shard hash): cheap, stateless, avalanche-quality.
func mixPath(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// routeKeyPaths backs Route.Key's process-wide path identities. Route.Key
// can be called from any goroutine, so unlike ordinary PathTables this one
// is locked.
var routeKeyPaths = struct {
	mu  sync.Mutex
	tab *PathTable
}{tab: NewPathTable()}

// GlobalPathID interns p in the process-wide table used by Route.Key and
// returns its ID. Use a private PathTable instead wherever one component owns
// the paths it compares; the global table exists so RouteKey stays a cheap
// comparable value anywhere in the process.
func GlobalPathID(p ASPath) PathID {
	routeKeyPaths.mu.Lock()
	defer routeKeyPaths.mu.Unlock()
	return routeKeyPaths.tab.ID(p)
}
