// Package bgp implements the BGP-4 wire protocol (RFC 1163/1771 era, as
// deployed in the 1996-97 Internet the paper measured): message framing,
// OPEN / UPDATE / KEEPALIVE / NOTIFICATION encoding and decoding, and the
// path attributes that carry inter-domain routing information.
//
// The package is transport-agnostic: messages marshal to and from byte
// slices, and ReadMessage/WriteMessage frame them over any io.Reader/Writer
// (a real TCP connection, a net.Pipe, or the simulator's in-memory links).
package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"instability/internal/netaddr"
)

// Protocol constants from RFC 1771 §4.1.
const (
	// Version is the BGP protocol version spoken by this implementation.
	Version = 4

	// HeaderLen is the fixed size of the BGP message header: a 16-byte
	// marker, 2-byte length, and 1-byte type.
	HeaderLen = 19

	// MaxMessageLen is the largest legal BGP message, header included.
	MaxMessageLen = 4096

	// MinMessageLen is the smallest legal BGP message (a KEEPALIVE).
	MinMessageLen = HeaderLen
)

// MsgType identifies the kind of BGP message.
type MsgType uint8

// BGP message types.
const (
	MsgOpen         MsgType = 1
	MsgUpdate       MsgType = 2
	MsgNotification MsgType = 3
	MsgKeepalive    MsgType = 4
)

// String returns the conventional name of t.
func (t MsgType) String() string {
	switch t {
	case MsgOpen:
		return "OPEN"
	case MsgUpdate:
		return "UPDATE"
	case MsgNotification:
		return "NOTIFICATION"
	case MsgKeepalive:
		return "KEEPALIVE"
	}
	return fmt.Sprintf("UNKNOWN(%d)", uint8(t))
}

// Message is any BGP message body.
type Message interface {
	// Type returns the message type carried in the header.
	Type() MsgType
	// MarshalBody appends the message body (everything after the common
	// header) to b and returns the extended slice.
	MarshalBody(b []byte) ([]byte, error)
}

// marker is the all-ones authentication marker required when no
// authentication is in use.
var marker = [16]byte{
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
}

// Framing and validation errors.
var (
	ErrBadMarker   = errors.New("bgp: connection not synchronized (bad marker)")
	ErrBadLength   = errors.New("bgp: bad message length")
	ErrBadType     = errors.New("bgp: bad message type")
	ErrTruncated   = errors.New("bgp: truncated message")
	ErrMessageSize = errors.New("bgp: message exceeds 4096 octets")
)

// Marshal encodes msg as a complete wire message, header included.
func Marshal(msg Message) ([]byte, error) {
	buf := make([]byte, HeaderLen, 64)
	copy(buf, marker[:])
	buf[18] = byte(msg.Type())
	buf, err := msg.MarshalBody(buf)
	if err != nil {
		return nil, err
	}
	if len(buf) > MaxMessageLen {
		return nil, fmt.Errorf("%w: %d", ErrMessageSize, len(buf))
	}
	binary.BigEndian.PutUint16(buf[16:18], uint16(len(buf)))
	return buf, nil
}

// Unmarshal decodes a complete wire message (header included).
func Unmarshal(b []byte) (Message, error) {
	body, typ, err := checkHeader(b)
	if err != nil {
		return nil, err
	}
	switch typ {
	case MsgOpen:
		return unmarshalOpen(body)
	case MsgUpdate:
		return unmarshalUpdate(body)
	case MsgNotification:
		return unmarshalNotification(body)
	case MsgKeepalive:
		if len(body) != 0 {
			return nil, fmt.Errorf("%w: keepalive with %d body octets", ErrBadLength, len(body))
		}
		return Keepalive{}, nil
	}
	return nil, fmt.Errorf("%w: %d", ErrBadType, typ)
}

func checkHeader(b []byte) (body []byte, typ MsgType, err error) {
	if len(b) < HeaderLen {
		return nil, 0, ErrTruncated
	}
	for i := 0; i < 16; i++ {
		if b[i] != 0xff {
			return nil, 0, ErrBadMarker
		}
	}
	length := int(binary.BigEndian.Uint16(b[16:18]))
	typ = MsgType(b[18])
	if length < MinMessageLen || length > MaxMessageLen {
		return nil, 0, fmt.Errorf("%w: %d", ErrBadLength, length)
	}
	if length != len(b) {
		return nil, 0, fmt.Errorf("%w: header says %d, have %d", ErrBadLength, length, len(b))
	}
	return b[HeaderLen:], typ, nil
}

// WriteMessage marshals msg and writes it to w.
func WriteMessage(w io.Writer, msg Message) error {
	b, err := Marshal(msg)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadRaw reads exactly one framed BGP message from r and returns its raw
// bytes (header included) without decoding. Splitting the blocking read
// from the parse lets callers time the decode itself, excluding the time
// spent waiting for the peer to send.
func ReadRaw(r io.Reader) ([]byte, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length := int(binary.BigEndian.Uint16(hdr[16:18]))
	if length < MinMessageLen || length > MaxMessageLen {
		return nil, fmt.Errorf("%w: %d", ErrBadLength, length)
	}
	buf := make([]byte, length)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[HeaderLen:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// ReadMessage reads exactly one framed BGP message from r and decodes it.
func ReadMessage(r io.Reader) (Message, error) {
	buf, err := ReadRaw(r)
	if err != nil {
		return nil, err
	}
	return Unmarshal(buf)
}

// Keepalive is the empty-bodied KEEPALIVE message.
type Keepalive struct{}

// Type implements Message.
func (Keepalive) Type() MsgType { return MsgKeepalive }

// MarshalBody implements Message.
func (Keepalive) MarshalBody(b []byte) ([]byte, error) { return b, nil }

// Open is the BGP OPEN message sent when a session starts.
type Open struct {
	Version  uint8
	AS       uint16
	HoldTime uint16 // seconds; 0 disables keepalives
	BGPID    netaddr.Addr
	OptParms []byte // raw optional parameters (unused by the 1996-era core)
}

// Type implements Message.
func (Open) Type() MsgType { return MsgOpen }

// MarshalBody implements Message.
func (o Open) MarshalBody(b []byte) ([]byte, error) {
	if len(o.OptParms) > 255 {
		return nil, fmt.Errorf("bgp: optional parameters too long (%d)", len(o.OptParms))
	}
	b = append(b, o.Version)
	b = binary.BigEndian.AppendUint16(b, o.AS)
	b = binary.BigEndian.AppendUint16(b, o.HoldTime)
	b = binary.BigEndian.AppendUint32(b, uint32(o.BGPID))
	b = append(b, byte(len(o.OptParms)))
	b = append(b, o.OptParms...)
	return b, nil
}

func unmarshalOpen(body []byte) (Open, error) {
	if len(body) < 10 {
		return Open{}, fmt.Errorf("%w: open body %d octets", ErrTruncated, len(body))
	}
	o := Open{
		Version:  body[0],
		AS:       binary.BigEndian.Uint16(body[1:3]),
		HoldTime: binary.BigEndian.Uint16(body[3:5]),
		BGPID:    netaddr.Addr(binary.BigEndian.Uint32(body[5:9])),
	}
	optLen := int(body[9])
	if len(body) != 10+optLen {
		return Open{}, fmt.Errorf("%w: open optional parameters", ErrBadLength)
	}
	if optLen > 0 {
		o.OptParms = append([]byte(nil), body[10:]...)
	}
	return o, nil
}

// Notification error codes (RFC 1771 §4.5).
type NotifCode uint8

// Notification codes.
const (
	NotifMessageHeaderError NotifCode = 1
	NotifOpenMessageError   NotifCode = 2
	NotifUpdateMessageError NotifCode = 3
	NotifHoldTimerExpired   NotifCode = 4
	NotifFSMError           NotifCode = 5
	NotifCease              NotifCode = 6
)

// String returns the RFC name for c.
func (c NotifCode) String() string {
	switch c {
	case NotifMessageHeaderError:
		return "Message Header Error"
	case NotifOpenMessageError:
		return "OPEN Message Error"
	case NotifUpdateMessageError:
		return "UPDATE Message Error"
	case NotifHoldTimerExpired:
		return "Hold Timer Expired"
	case NotifFSMError:
		return "Finite State Machine Error"
	case NotifCease:
		return "Cease"
	}
	return fmt.Sprintf("Unknown(%d)", uint8(c))
}

// Notification reports a fatal protocol error; the sender closes the session
// immediately after transmitting it.
type Notification struct {
	Code    NotifCode
	Subcode uint8
	Data    []byte
}

// Type implements Message.
func (Notification) Type() MsgType { return MsgNotification }

// MarshalBody implements Message.
func (n Notification) MarshalBody(b []byte) ([]byte, error) {
	b = append(b, byte(n.Code), n.Subcode)
	return append(b, n.Data...), nil
}

func unmarshalNotification(body []byte) (Notification, error) {
	if len(body) < 2 {
		return Notification{}, fmt.Errorf("%w: notification body %d octets", ErrTruncated, len(body))
	}
	n := Notification{Code: NotifCode(body[0]), Subcode: body[1]}
	if len(body) > 2 {
		n.Data = append([]byte(nil), body[2:]...)
	}
	return n, nil
}

// Error lets a Notification travel as a Go error through session plumbing.
func (n Notification) Error() string {
	return fmt.Sprintf("bgp: notification %v subcode %d", n.Code, n.Subcode)
}
