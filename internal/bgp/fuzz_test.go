package bgp

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalAttrs feeds arbitrary bytes through the attribute decoder and
// checks the round-trip invariant: anything that decodes must re-encode, and
// the re-encoding must decode back to an equal tuple. The decoder must never
// panic on garbage — segment blocks and WAL tails hand it raw disk bytes.
func FuzzUnmarshalAttrs(f *testing.F) {
	seed := []Attrs{
		{},
		{Origin: OriginIGP, Path: PathFromASNs(3561, 701), NextHop: 0x0a000001},
		{
			Origin:       OriginEGP,
			Path:         PathFromASNs(1239, 3561, 690).Prepend(1239),
			NextHop:      0xc0a80101,
			MED:          42,
			HasMED:       true,
			LocalPref:    100,
			HasLocalPref: true,
			Communities:  []Community{0x02bd0001, 0x02bd0002},
		},
		{
			Origin:          OriginIncomplete,
			Path:            ASPath{Segments: []PathSegment{{Type: ASSet, ASNs: []ASN{690, 701, 1800}}}},
			NextHop:         1,
			AtomicAggregate: true,
			HasAggregator:   true,
			AggregatorAS:    690,
			AggregatorAddr:  0x0a0a0a0a,
		},
	}
	for _, a := range seed {
		w, err := MarshalAttrs(a)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(w)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := UnmarshalAttrs(data)
		if err != nil {
			return
		}
		w, err := MarshalAttrs(a)
		if err != nil {
			t.Fatalf("decoded attrs failed to re-encode: %v", err)
		}
		b, err := UnmarshalAttrs(w)
		if err != nil {
			t.Fatalf("re-encoded attrs failed to decode: %v", err)
		}
		if !a.PolicyEqual(b) {
			t.Fatalf("round-trip changed attrs: %+v != %+v", a, b)
		}
		// Canonical encodings are a fixed point: encoding the decoded form
		// again must be byte-identical.
		w2, err := MarshalAttrs(b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w, w2) {
			t.Fatalf("re-encoding is not canonical: %x != %x", w, w2)
		}
	})
}
