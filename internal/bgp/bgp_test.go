package bgp

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"testing/quick"

	"instability/internal/netaddr"
)

func TestKeepaliveRoundTrip(t *testing.T) {
	b, err := Marshal(Keepalive{})
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != HeaderLen {
		t.Fatalf("keepalive length %d", len(b))
	}
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type() != MsgKeepalive {
		t.Fatalf("type %v", m.Type())
	}
}

func TestOpenRoundTrip(t *testing.T) {
	o := Open{Version: 4, AS: 690, HoldTime: 180, BGPID: netaddr.MustParseAddr("198.32.186.1")}
	b, err := Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.(Open)
	if !ok {
		t.Fatalf("decoded %T", m)
	}
	if !reflect.DeepEqual(got, o) {
		t.Fatalf("got %+v want %+v", got, o)
	}
}

func TestOpenWithOptParms(t *testing.T) {
	o := Open{Version: 4, AS: 1, HoldTime: 90, BGPID: 1, OptParms: []byte{1, 2, 3}}
	b, err := Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.(Open); !bytes.Equal(got.OptParms, o.OptParms) {
		t.Fatalf("optparms %v", got.OptParms)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := Notification{Code: NotifHoldTimerExpired, Subcode: 0, Data: []byte("late")}
	b, err := Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(Notification)
	if got.Code != n.Code || !bytes.Equal(got.Data, n.Data) {
		t.Fatalf("got %+v", got)
	}
	if got.Error() == "" {
		t.Fatal("notification should describe itself as an error")
	}
}

func testAttrs() Attrs {
	return Attrs{
		Origin:  OriginIGP,
		Path:    PathFromASNs(690, 1239, 174),
		NextHop: netaddr.MustParseAddr("192.41.177.69"),
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := Update{
		Withdrawn: []netaddr.Prefix{
			netaddr.MustParsePrefix("192.42.113.0/24"),
			netaddr.MustParsePrefix("10.0.0.0/8"),
		},
		Attrs: Attrs{
			Origin:          OriginEGP,
			Path:            ASPath{Segments: []PathSegment{{Type: ASSequence, ASNs: []ASN{690, 701}}, {Type: ASSet, ASNs: []ASN{1800, 1239}}}},
			NextHop:         netaddr.MustParseAddr("198.32.186.7"),
			HasMED:          true,
			MED:             50,
			HasLocalPref:    true,
			LocalPref:       100,
			AtomicAggregate: true,
			HasAggregator:   true,
			AggregatorAS:    690,
			AggregatorAddr:  netaddr.MustParseAddr("198.32.186.1"),
			Communities:     []Community{Community(690<<16 | 100), Community(690<<16 | 200)},
		},
		Announced: []netaddr.Prefix{
			netaddr.MustParsePrefix("35.0.0.0/8"),
			netaddr.MustParsePrefix("141.213.0.0/16"),
			netaddr.MustParsePrefix("198.108.0.0/17"),
			netaddr.MustParsePrefix("0.0.0.0/0"),
		},
	}
	b, err := Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(Update)
	if !reflect.DeepEqual(got, u) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, u)
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	u := Update{Withdrawn: []netaddr.Prefix{netaddr.MustParsePrefix("192.42.113.0/24")}}
	b, err := Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(Update)
	if len(got.Announced) != 0 || len(got.Withdrawn) != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestUpdateEmptyPathLocalOrigination(t *testing.T) {
	u := Update{
		Attrs:     Attrs{Origin: OriginIGP, NextHop: 1},
		Announced: []netaddr.Prefix{netaddr.MustParsePrefix("10.0.0.0/8")},
	}
	b, err := Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(Update)
	if got.Attrs.Path.Len() != 0 {
		t.Fatalf("path %v", got.Attrs.Path)
	}
}

func randomPrefix(rng *rand.Rand) netaddr.Prefix {
	bits := rng.Intn(25) + 8
	return netaddr.MustPrefix(netaddr.Addr(rng.Uint32()), bits)
}

func TestUpdateRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		var u Update
		for n := rng.Intn(5); n > 0; n-- {
			u.Withdrawn = append(u.Withdrawn, randomPrefix(rng))
		}
		nAnn := rng.Intn(5)
		if nAnn > 0 {
			asns := make([]ASN, rng.Intn(6)+1)
			for j := range asns {
				asns[j] = ASN(rng.Intn(65535) + 1)
			}
			u.Attrs = Attrs{
				Origin:  OriginCode(rng.Intn(3)),
				Path:    PathFromASNs(asns...),
				NextHop: netaddr.Addr(rng.Uint32()),
			}
			if rng.Intn(2) == 0 {
				u.Attrs.HasMED = true
				u.Attrs.MED = rng.Uint32()
			}
			for n := nAnn; n > 0; n-- {
				u.Announced = append(u.Announced, randomPrefix(rng))
			}
		}
		b, err := Marshal(u)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		m, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got := m.(Update)
		if !reflect.DeepEqual(got, u) {
			t.Fatalf("case %d mismatch\ngot  %+v\nwant %+v", i, got, u)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		bytes.Repeat([]byte{0}, HeaderLen), // bad marker
	}
	for i, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Valid keepalive with corrupted declared length.
	b, _ := Marshal(Keepalive{})
	b[16], b[17] = 0xff, 0xff
	if _, err := Unmarshal(b); !errors.Is(err, ErrBadLength) {
		t.Errorf("bad length: got %v", err)
	}
	// Bad type.
	b, _ = Marshal(Keepalive{})
	b[18] = 99
	if _, err := Unmarshal(b); err == nil {
		t.Error("bad type accepted")
	}
}

func TestUnmarshalTruncatedUpdates(t *testing.T) {
	u := Update{
		Attrs:     testAttrs(),
		Announced: []netaddr.Prefix{netaddr.MustParsePrefix("35.0.0.0/8")},
	}
	full, err := Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	// Every strict truncation of the body must either be rejected or decode
	// to a message that lost the announcement (cutting on an exact NLRI
	// boundary yields a legal attrs-only UPDATE). It must never panic or
	// fabricate routes.
	for cut := HeaderLen; cut < len(full); cut++ {
		b := append([]byte(nil), full[:cut]...)
		// Fix up length so header checks pass and body parsing is exercised.
		b[16], b[17] = byte(cut>>8), byte(cut)
		m, err := Unmarshal(b)
		if err != nil {
			continue
		}
		if got := m.(Update); len(got.Announced) != 0 {
			t.Errorf("truncation at %d fabricated announcements %v", cut, got.Announced)
		}
	}
}

func TestAttrsFuzzNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		b := make([]byte, n)
		rng.Read(b)
		_, _ = unmarshalAttrs(b) // must not panic
		_, _ = parseNLRIList(b)
		_, _ = unmarshalASPath(b)
	}
}

func TestReadWriteMessageStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		Open{Version: 4, AS: 690, HoldTime: 180, BGPID: 42},
		Keepalive{},
		Update{Attrs: testAttrs(), Announced: []netaddr.Prefix{netaddr.MustParsePrefix("35.0.0.0/8")}},
		Notification{Code: NotifCease},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("msg %d: type %v want %v", i, got.Type(), want.Type())
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReadMessageShortStream(t *testing.T) {
	b, _ := Marshal(Open{Version: 4, AS: 1, HoldTime: 180, BGPID: 9})
	r := bytes.NewReader(b[:len(b)-3])
	if _, err := ReadMessage(r); err == nil {
		t.Fatal("expected error on short stream")
	}
}

func TestReadMessageOverTCP(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		_ = WriteMessage(c1, Update{Attrs: testAttrs(), Announced: []netaddr.Prefix{netaddr.MustParsePrefix("141.213.0.0/16")}})
	}()
	m, err := ReadMessage(c2)
	if err != nil {
		t.Fatal(err)
	}
	u := m.(Update)
	if len(u.Announced) != 1 || u.Announced[0] != netaddr.MustParsePrefix("141.213.0.0/16") {
		t.Fatalf("got %+v", u)
	}
}

func TestASPathPrependContains(t *testing.T) {
	p := PathFromASNs(1239, 174)
	p2 := p.Prepend(690)
	if p2.Key() != "690 1239 174" {
		t.Fatalf("key %q", p2.Key())
	}
	if p.Key() != "1239 174" {
		t.Fatalf("prepend mutated receiver: %q", p.Key())
	}
	if !p2.Contains(690) || !p2.Contains(174) || p2.Contains(7) {
		t.Fatal("Contains wrong")
	}
	var empty ASPath
	p3 := empty.Prepend(690)
	if p3.Key() != "690" {
		t.Fatalf("prepend to empty: %q", p3.Key())
	}
}

func TestASPathLenOriginFirst(t *testing.T) {
	p := ASPath{Segments: []PathSegment{
		{Type: ASSequence, ASNs: []ASN{690, 701}},
		{Type: ASSet, ASNs: []ASN{1800, 1239}},
	}}
	if p.Len() != 3 { // set counts 1
		t.Fatalf("len %d", p.Len())
	}
	if o, ok := p.Origin(); !ok || o != 1800 {
		t.Fatalf("origin %v %v", o, ok)
	}
	if f, ok := p.First(); !ok || f != 690 {
		t.Fatalf("first %v %v", f, ok)
	}
	var empty ASPath
	if _, ok := empty.Origin(); ok {
		t.Fatal("empty path has no origin")
	}
	if _, ok := empty.First(); ok {
		t.Fatal("empty path has no first")
	}
	seq := PathFromASNs(690, 701, 1239)
	if o, _ := seq.Origin(); o != 1239 {
		t.Fatalf("seq origin %v", o)
	}
}

func TestASPathKeyDistinguishesSetFromSequence(t *testing.T) {
	seq := PathFromASNs(690, 701)
	set := ASPath{Segments: []PathSegment{{Type: ASSet, ASNs: []ASN{690, 701}}}}
	if seq.Key() == set.Key() {
		t.Fatal("set and sequence keys must differ")
	}
	if seq.Equal(set) {
		t.Fatal("set and sequence should not be Equal")
	}
}

func TestASPathKeyInjective(t *testing.T) {
	f := func(a, b []uint16) bool {
		pa := PathFromASNs(toASNs(a)...)
		pb := PathFromASNs(toASNs(b)...)
		return (pa.Key() == pb.Key()) == pa.Equal(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func toASNs(xs []uint16) []ASN {
	out := make([]ASN, len(xs))
	for i, x := range xs {
		out[i] = ASN(x)
	}
	return out
}

func TestAttrsEquality(t *testing.T) {
	a := testAttrs()
	b := testAttrs()
	if !a.ForwardingEqual(b) || !a.PolicyEqual(b) {
		t.Fatal("identical attrs must be equal")
	}
	b.Communities = []Community{1}
	if !a.ForwardingEqual(b) {
		t.Fatal("community change should not affect forwarding equality")
	}
	if a.PolicyEqual(b) {
		t.Fatal("community change is a policy change")
	}
	c := testAttrs()
	c.NextHop++
	if a.ForwardingEqual(c) {
		t.Fatal("nexthop change is forwarding change")
	}
	d := testAttrs()
	d.Path = d.Path.Prepend(7)
	if a.ForwardingEqual(d) {
		t.Fatal("path change is forwarding change")
	}
}

func TestRouteKey(t *testing.T) {
	r1 := Route{Prefix: netaddr.MustParsePrefix("35.0.0.0/8"), Attrs: testAttrs()}
	r2 := Route{Prefix: netaddr.MustParsePrefix("35.0.0.0/8"), Attrs: testAttrs()}
	if r1.Key() != r2.Key() {
		t.Fatal("identical routes must share a key")
	}
	r2.Attrs.Path = r2.Attrs.Path.Prepend(3561)
	if r1.Key() == r2.Key() {
		t.Fatal("different paths must differ in key")
	}
}

func TestCommunityString(t *testing.T) {
	c := Community(690<<16 | 120)
	if c.String() != "690:120" {
		t.Fatalf("got %q", c.String())
	}
}

func TestMsgTypeNotifCodeStrings(t *testing.T) {
	if MsgUpdate.String() != "UPDATE" || MsgType(9).String() == "" {
		t.Fatal("MsgType.String wrong")
	}
	if NotifCease.String() != "Cease" || NotifCode(42).String() == "" {
		t.Fatal("NotifCode.String wrong")
	}
	if OriginIGP.String() != "i" || OriginEGP.String() != "e" || OriginIncomplete.String() != "?" {
		t.Fatal("OriginCode.String wrong")
	}
}

func TestOversizeUpdateRejected(t *testing.T) {
	var u Update
	for i := 0; i < 1200; i++ {
		u.Withdrawn = append(u.Withdrawn, netaddr.MustPrefix(netaddr.Addr(uint32(i)<<8), 32))
	}
	if _, err := Marshal(u); !errors.Is(err, ErrMessageSize) {
		t.Fatalf("expected ErrMessageSize, got %v", err)
	}
}

func BenchmarkMarshalUpdate(b *testing.B) {
	u := Update{Attrs: testAttrs(), Announced: []netaddr.Prefix{
		netaddr.MustParsePrefix("35.0.0.0/8"),
		netaddr.MustParsePrefix("141.213.0.0/16"),
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalUpdate(b *testing.B) {
	u := Update{Attrs: testAttrs(), Announced: []netaddr.Prefix{
		netaddr.MustParsePrefix("35.0.0.0/8"),
		netaddr.MustParsePrefix("141.213.0.0/16"),
	}}
	buf, err := Marshal(u)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
