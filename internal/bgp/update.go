package bgp

import (
	"encoding/binary"
	"fmt"
	"sort"

	"instability/internal/netaddr"
)

// Origin attribute values.
type OriginCode uint8

// ORIGIN codes.
const (
	OriginIGP        OriginCode = 0
	OriginEGP        OriginCode = 1
	OriginIncomplete OriginCode = 2
)

// String returns the conventional one-letter display form.
func (o OriginCode) String() string {
	switch o {
	case OriginIGP:
		return "i"
	case OriginEGP:
		return "e"
	case OriginIncomplete:
		return "?"
	}
	return "invalid"
}

// Path attribute type codes.
const (
	attrOrigin          uint8 = 1
	attrASPath          uint8 = 2
	attrNextHop         uint8 = 3
	attrMED             uint8 = 4
	attrLocalPref       uint8 = 5
	attrAtomicAggregate uint8 = 6
	attrAggregator      uint8 = 7
	attrCommunity       uint8 = 8
)

// Attribute flag bits.
const (
	flagOptional   uint8 = 0x80
	flagTransitive uint8 = 0x40
	flagExtLen     uint8 = 0x10
)

// Community is a 32-bit route tagging value (RFC 1997).
type Community uint32

// String renders the conventional "AS:value" form.
func (c Community) String() string { return fmt.Sprintf("%d:%d", uint32(c)>>16, uint32(c)&0xffff) }

// Attrs carries the path attributes of an UPDATE. The (NextHop, ASPath) pair
// together with the prefix forms the forwarding-relevant tuple the paper's
// taxonomy compares; the remaining attributes are policy information whose
// change alone constitutes policy fluctuation rather than forwarding
// instability.
type Attrs struct {
	Origin OriginCode
	Path   ASPath
	// NextHop is the border router that traffic for the announced prefixes
	// should be forwarded to.
	NextHop netaddr.Addr
	// MED (multi-exit discriminator) and its presence flag.
	MED    uint32
	HasMED bool
	// LocalPref and its presence flag (only on internal sessions).
	HasLocalPref bool
	LocalPref    uint32
	// AtomicAggregate marks a route that lost specific path information to
	// aggregation.
	AtomicAggregate bool
	// Aggregator identifies the AS and router that formed an aggregate.
	HasAggregator  bool
	AggregatorAS   ASN
	AggregatorAddr netaddr.Addr
	// Communities carry opaque policy tags; the paper cites a community
	// change as an example of policy fluctuation that is not forwarding
	// instability.
	Communities []Community
}

// PolicyEqual reports whether every attribute of a and b matches, i.e. the
// announcements are exact duplicates (the paper's AADup test considers
// (Prefix, NextHop, ASPATH); full equality distinguishes policy fluctuation
// from pure duplication).
func (a Attrs) PolicyEqual(b Attrs) bool {
	if !a.ForwardingEqual(b) {
		return false
	}
	if a.Origin != b.Origin || a.HasMED != b.HasMED || a.MED != b.MED ||
		a.HasLocalPref != b.HasLocalPref || a.LocalPref != b.LocalPref ||
		a.AtomicAggregate != b.AtomicAggregate ||
		a.HasAggregator != b.HasAggregator || a.AggregatorAS != b.AggregatorAS ||
		a.AggregatorAddr != b.AggregatorAddr || len(a.Communities) != len(b.Communities) {
		return false
	}
	for i := range a.Communities {
		if a.Communities[i] != b.Communities[i] {
			return false
		}
	}
	return true
}

// ForwardingEqual reports whether a and b agree on the forwarding-relevant
// (NextHop, ASPATH) portion of the tuple.
func (a Attrs) ForwardingEqual(b Attrs) bool {
	return a.NextHop == b.NextHop && a.Path.Equal(b.Path)
}

// Update is the BGP UPDATE message: a set of withdrawn prefixes plus a set of
// announced prefixes sharing one group of path attributes.
type Update struct {
	Withdrawn []netaddr.Prefix
	Attrs     Attrs
	Announced []netaddr.Prefix
}

// Type implements Message.
func (Update) Type() MsgType { return MsgUpdate }

// MarshalBody implements Message.
func (u Update) MarshalBody(b []byte) ([]byte, error) {
	// Withdrawn routes.
	start := len(b)
	b = append(b, 0, 0)
	for _, p := range u.Withdrawn {
		b = appendNLRI(b, p)
	}
	binary.BigEndian.PutUint16(b[start:], uint16(len(b)-start-2))

	// Path attributes (only when there are announcements).
	attrStart := len(b)
	b = append(b, 0, 0)
	if len(u.Announced) > 0 {
		var err error
		b, err = u.Attrs.marshal(b)
		if err != nil {
			return nil, err
		}
	}
	binary.BigEndian.PutUint16(b[attrStart:], uint16(len(b)-attrStart-2))

	// NLRI.
	for _, p := range u.Announced {
		b = appendNLRI(b, p)
	}
	return b, nil
}

func (a Attrs) marshal(b []byte) ([]byte, error) {
	appendAttr := func(flags, typ uint8, val []byte) {
		if len(val) > 255 {
			flags |= flagExtLen
			b = append(b, flags, typ, byte(len(val)>>8), byte(len(val)))
		} else {
			b = append(b, flags, typ, byte(len(val)))
		}
		b = append(b, val...)
	}

	if a.Origin > OriginIncomplete {
		return nil, fmt.Errorf("bgp: invalid origin %d", a.Origin)
	}
	appendAttr(flagTransitive, attrOrigin, []byte{byte(a.Origin)})

	path, err := a.Path.marshal(nil)
	if err != nil {
		return nil, err
	}
	appendAttr(flagTransitive, attrASPath, path)

	var nh [4]byte
	binary.BigEndian.PutUint32(nh[:], uint32(a.NextHop))
	appendAttr(flagTransitive, attrNextHop, nh[:])

	if a.HasMED {
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], a.MED)
		appendAttr(flagOptional, attrMED, v[:])
	}
	if a.HasLocalPref {
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], a.LocalPref)
		appendAttr(flagTransitive, attrLocalPref, v[:])
	}
	if a.AtomicAggregate {
		appendAttr(flagTransitive, attrAtomicAggregate, nil)
	}
	if a.HasAggregator {
		var v [6]byte
		binary.BigEndian.PutUint16(v[:2], uint16(a.AggregatorAS))
		binary.BigEndian.PutUint32(v[2:], uint32(a.AggregatorAddr))
		appendAttr(flagOptional|flagTransitive, attrAggregator, v[:])
	}
	if len(a.Communities) > 0 {
		v := make([]byte, 4*len(a.Communities))
		for i, c := range a.Communities {
			binary.BigEndian.PutUint32(v[4*i:], uint32(c))
		}
		appendAttr(flagOptional|flagTransitive, attrCommunity, v)
	}
	return b, nil
}

func unmarshalUpdate(body []byte) (Update, error) {
	var u Update
	if len(body) < 2 {
		return u, fmt.Errorf("%w: update withdrawn length", ErrTruncated)
	}
	wdLen := int(binary.BigEndian.Uint16(body[:2]))
	body = body[2:]
	if len(body) < wdLen {
		return u, fmt.Errorf("%w: withdrawn routes", ErrTruncated)
	}
	var err error
	u.Withdrawn, err = parseNLRIList(body[:wdLen])
	if err != nil {
		return u, err
	}
	body = body[wdLen:]

	if len(body) < 2 {
		return u, fmt.Errorf("%w: update attribute length", ErrTruncated)
	}
	attrLen := int(binary.BigEndian.Uint16(body[:2]))
	body = body[2:]
	if len(body) < attrLen {
		return u, fmt.Errorf("%w: path attributes", ErrTruncated)
	}
	if attrLen > 0 {
		u.Attrs, err = unmarshalAttrs(body[:attrLen])
		if err != nil {
			return u, err
		}
	}
	u.Announced, err = parseNLRIList(body[attrLen:])
	if err != nil {
		return u, err
	}
	if len(u.Announced) > 0 && attrLen == 0 {
		return u, fmt.Errorf("bgp: NLRI present without path attributes")
	}
	return u, nil
}

func unmarshalAttrs(b []byte) (Attrs, error) {
	var a Attrs
	seen := make(map[uint8]bool, 8)
	var haveOrigin, havePath, haveNextHop bool
	for len(b) > 0 {
		if len(b) < 3 {
			return a, fmt.Errorf("%w: attribute header", ErrTruncated)
		}
		flags, typ := b[0], b[1]
		var alen int
		if flags&flagExtLen != 0 {
			if len(b) < 4 {
				return a, fmt.Errorf("%w: extended attribute header", ErrTruncated)
			}
			alen = int(binary.BigEndian.Uint16(b[2:4]))
			b = b[4:]
		} else {
			alen = int(b[2])
			b = b[3:]
		}
		if len(b) < alen {
			return a, fmt.Errorf("%w: attribute %d value", ErrTruncated, typ)
		}
		val := b[:alen]
		b = b[alen:]
		if seen[typ] {
			return a, fmt.Errorf("bgp: duplicate attribute %d", typ)
		}
		seen[typ] = true
		switch typ {
		case attrOrigin:
			if alen != 1 || val[0] > byte(OriginIncomplete) {
				return a, fmt.Errorf("bgp: malformed ORIGIN")
			}
			a.Origin = OriginCode(val[0])
			haveOrigin = true
		case attrASPath:
			p, err := unmarshalASPath(val)
			if err != nil {
				return a, err
			}
			a.Path = p
			havePath = true
		case attrNextHop:
			if alen != 4 {
				return a, fmt.Errorf("bgp: malformed NEXT_HOP")
			}
			a.NextHop = netaddr.Addr(binary.BigEndian.Uint32(val))
			haveNextHop = true
		case attrMED:
			if alen != 4 {
				return a, fmt.Errorf("bgp: malformed MULTI_EXIT_DISC")
			}
			a.MED = binary.BigEndian.Uint32(val)
			a.HasMED = true
		case attrLocalPref:
			if alen != 4 {
				return a, fmt.Errorf("bgp: malformed LOCAL_PREF")
			}
			a.LocalPref = binary.BigEndian.Uint32(val)
			a.HasLocalPref = true
		case attrAtomicAggregate:
			if alen != 0 {
				return a, fmt.Errorf("bgp: malformed ATOMIC_AGGREGATE")
			}
			a.AtomicAggregate = true
		case attrAggregator:
			if alen != 6 {
				return a, fmt.Errorf("bgp: malformed AGGREGATOR")
			}
			a.HasAggregator = true
			a.AggregatorAS = ASN(binary.BigEndian.Uint16(val[:2]))
			a.AggregatorAddr = netaddr.Addr(binary.BigEndian.Uint32(val[2:]))
		case attrCommunity:
			if alen%4 != 0 {
				return a, fmt.Errorf("bgp: malformed COMMUNITY")
			}
			a.Communities = make([]Community, alen/4)
			for i := range a.Communities {
				a.Communities[i] = Community(binary.BigEndian.Uint32(val[4*i:]))
			}
		default:
			if flags&flagOptional == 0 {
				return a, fmt.Errorf("bgp: unrecognized well-known attribute %d", typ)
			}
			// Unknown optional attributes are tolerated and dropped.
		}
	}
	if !haveOrigin || !havePath || !haveNextHop {
		return a, fmt.Errorf("bgp: missing well-known mandatory attribute")
	}
	return a, nil
}

// appendNLRI encodes one prefix in the (length, truncated address) NLRI form.
func appendNLRI(b []byte, p netaddr.Prefix) []byte {
	b = append(b, byte(p.Bits()))
	o := p.Addr().Octets()
	return append(b, o[:(p.Bits()+7)/8]...)
}

func parseNLRIList(b []byte) ([]netaddr.Prefix, error) {
	if len(b) == 0 {
		return nil, nil
	}
	var out []netaddr.Prefix
	for len(b) > 0 {
		bits := int(b[0])
		if bits > 32 {
			return nil, fmt.Errorf("bgp: NLRI mask length %d", bits)
		}
		n := (bits + 7) / 8
		if len(b) < 1+n {
			return nil, fmt.Errorf("%w: NLRI", ErrTruncated)
		}
		var o [4]byte
		copy(o[:], b[1:1+n])
		p, err := netaddr.PrefixFrom(netaddr.AddrFromOctets(o), bits)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		b = b[1+n:]
	}
	return out, nil
}

// Route is the (Prefix, NextHop, ASPATH) tuple whose identity defines the
// paper's duplicate-vs-different distinction, plus the full attribute set for
// policy comparison.
type Route struct {
	Prefix netaddr.Prefix
	Attrs  Attrs
}

// Key returns a map-key identity for the forwarding tuple
// (Prefix, NextHop, ASPATH). The path component is an interned PathID rather
// than a built string, so Key costs a table probe instead of an allocation
// on every call; ASPath.Key remains available for display.
func (r Route) Key() RouteKey {
	return RouteKey{Prefix: r.Prefix, NextHop: r.Attrs.NextHop, PathID: GlobalPathID(r.Attrs.Path)}
}

// RouteKey is the comparable identity of a forwarding tuple. PathID values
// come from the process-wide path table, so RouteKeys are comparable with
// each other anywhere in the process but are not stable across processes.
type RouteKey struct {
	Prefix  netaddr.Prefix
	NextHop netaddr.Addr
	PathID  PathID
}

// SortPrefixes orders a prefix slice in routing-table display order. UPDATE
// packing uses it so marshaled messages are deterministic.
func SortPrefixes(ps []netaddr.Prefix) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Compare(ps[j]) < 0 })
}

// MarshalAttrs encodes a path attribute set in wire form, for callers (such
// as the collector's log codec) that persist attributes outside an UPDATE.
func MarshalAttrs(a Attrs) ([]byte, error) { return a.marshal(nil) }

// AppendAttrs appends the wire form of a to b, for callers that reuse an
// encode buffer across records instead of allocating per MarshalAttrs call.
func AppendAttrs(b []byte, a Attrs) ([]byte, error) { return a.marshal(b) }

// UnmarshalAttrs decodes a path attribute set produced by MarshalAttrs. An
// empty input yields the zero Attrs (used for withdrawal records that carry
// no attributes).
func UnmarshalAttrs(b []byte) (Attrs, error) {
	if len(b) == 0 {
		return Attrs{}, nil
	}
	return unmarshalAttrs(b)
}
