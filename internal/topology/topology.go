// Package topology generates Internet-like autonomous-system structure as it
// stood in 1996-97: a handful of backbone providers dominating the routing
// tables, a layer of regional providers, and a long tail of customer ASes —
// a quarter of them multi-homed — originating roughly 42,000 prefixes drawn
// from provider CIDR blocks and the unaggregatable pre-CIDR "swamp". The
// five U.S. public exchange points and their route-server peer counts follow
// the paper's Figure 1.
package topology

import (
	"fmt"
	"math/rand"
	"sort"

	"instability/internal/bgp"
	"instability/internal/netaddr"
)

// Tier classifies an AS's role.
type Tier int

// AS tiers.
const (
	// Backbone is a national service provider peering at the public
	// exchange points.
	Backbone Tier = iota
	// Regional is a mid-level provider buying transit from backbones.
	Regional
	// Customer is an edge AS: campus, corporate network, or small ISP.
	Customer
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case Backbone:
		return "backbone"
	case Regional:
		return "regional"
	case Customer:
		return "customer"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// VendorProfile captures the router-implementation traits the paper links to
// pathology levels.
type VendorProfile struct {
	// Stateless marks the vendor that keeps no Adj-RIB-Out (WWDup source).
	Stateless bool
	// UnjitteredTimer marks the fixed 30-second interval timer (AADup and
	// periodicity source).
	UnjitteredTimer bool
}

// AS is one autonomous system.
type AS struct {
	ASN  bgp.ASN
	Tier Tier
	// Providers lists upstream transit ASes (empty for backbones).
	Providers []bgp.ASN
	// Prefixes originated by this AS.
	Prefixes []netaddr.Prefix
	// Multihomed marks an AS with more than one provider.
	Multihomed bool
	// Vendor is the router implementation this AS runs.
	Vendor VendorProfile
	// RouterID identifies the AS's border router.
	RouterID netaddr.Addr
	// Aggregates marks that the AS announces its address space as
	// aggregated supernets where possible (hides component instability).
	Aggregates bool
}

// ExchangePoint is one public exchange with a Routing Arbiter route server.
type ExchangePoint struct {
	Name string
	// Peers lists the backbone ASes whose routers peer with the route
	// server here.
	Peers []bgp.ASN
}

// Topology is a generated AS-level Internet.
type Topology struct {
	ASes      map[bgp.ASN]*AS
	Order     []bgp.ASN // deterministic iteration order
	Exchanges []*ExchangePoint
}

// Config parameterizes generation. Zero values select the paper-scale
// defaults via Defaults.
type Config struct {
	// Backbones is the number of national providers (paper: routing tables
	// dominated by six to eight ISPs).
	Backbones int
	// Regionals is the number of mid-tier providers.
	Regionals int
	// Customers is the number of edge ASes.
	Customers int
	// PrefixesPerCustomer draws the per-customer prefix count from
	// 1..2*PrefixesPerCustomer-1 (mean PrefixesPerCustomer).
	PrefixesPerCustomer int
	// MultihomedFrac is the fraction of customer ASes with two providers
	// (paper: more than 25 percent of prefixes multi-homed).
	MultihomedFrac float64
	// StatelessFrac is the fraction of ASes running the stateless vendor.
	StatelessFrac float64
	// UnjitteredFrac is the fraction of ASes with the fixed 30 s timer.
	UnjitteredFrac float64
	// SwampFrac is the fraction of customer prefixes drawn from the
	// unaggregatable pre-CIDR space.
	SwampFrac float64
}

// Defaults fills zero fields with a scaled-down 1996 Internet: ~1300 ASes
// and tens of thousands of prefixes are generated at full scale; tests use
// smaller numbers.
func (c Config) Defaults() Config {
	if c.Backbones == 0 {
		c.Backbones = 8
	}
	if c.Regionals == 0 {
		c.Regionals = 40
	}
	if c.Customers == 0 {
		c.Customers = 1250
	}
	if c.PrefixesPerCustomer == 0 {
		c.PrefixesPerCustomer = 16
	}
	if c.MultihomedFrac == 0 {
		c.MultihomedFrac = 0.27
	}
	if c.StatelessFrac == 0 {
		c.StatelessFrac = 0.35
	}
	if c.UnjitteredFrac == 0 {
		c.UnjitteredFrac = 0.5
	}
	if c.SwampFrac == 0 {
		c.SwampFrac = 0.3
	}
	return c
}

// ExchangeNames are the five measured exchange points, largest first.
var ExchangeNames = []string{"Mae-East", "Sprint", "AADS", "PacBell", "Mae-West"}

// Generate builds a topology from cfg using the given RNG. Generation is
// deterministic for a given seed and configuration.
func Generate(cfg Config, rng *rand.Rand) *Topology {
	cfg = cfg.Defaults()
	t := &Topology{ASes: make(map[bgp.ASN]*AS)}

	nextASN := bgp.ASN(100)
	newAS := func(tier Tier) *AS {
		a := &AS{
			ASN:      nextASN,
			Tier:     tier,
			RouterID: netaddr.Addr(0xc6000000 + uint32(nextASN)), // 198.x router IDs
			Vendor: VendorProfile{
				Stateless:       rng.Float64() < cfg.StatelessFrac,
				UnjitteredTimer: rng.Float64() < cfg.UnjitteredFrac,
			},
		}
		nextASN++
		t.ASes[a.ASN] = a
		t.Order = append(t.Order, a.ASN)
		return a
	}

	// Backbones: big providers with large CIDR blocks, present at every
	// exchange (the biggest at all five, smaller ones at fewer).
	backbones := make([]*AS, cfg.Backbones)
	for i := range backbones {
		b := newAS(Backbone)
		b.Aggregates = true
		backbones[i] = b
	}

	// Address space: each backbone owns one /8-equivalent block carved into
	// customer assignments; the swamp is 192/8-style space handed out as
	// unaggregatable /24s.
	allocators := make([]*netaddr.Allocator, len(backbones))
	for i := range allocators {
		base := netaddr.MustPrefix(netaddr.Addr(uint32(24+i)<<24), 8)
		allocators[i] = netaddr.NewAllocator(base)
		// The backbone announces its aggregate.
		backbones[i].Prefixes = append(backbones[i].Prefixes, base)
	}
	swamp := netaddr.NewAllocator(netaddr.MustParsePrefix("192.0.0.0/8"))

	// Regionals: buy transit from 1-2 backbones.
	regionals := make([]*AS, cfg.Regionals)
	for i := range regionals {
		r := newAS(Regional)
		p1 := backbones[rng.Intn(len(backbones))]
		r.Providers = []bgp.ASN{p1.ASN}
		if rng.Float64() < 0.3 {
			p2 := backbones[rng.Intn(len(backbones))]
			if p2.ASN != p1.ASN {
				r.Providers = append(r.Providers, p2.ASN)
				r.Multihomed = true
			}
		}
		regionals[i] = r
	}

	// Customers: attach to a regional or directly to a backbone; a fraction
	// multihome across two distinct providers; prefixes come from the first
	// provider's backbone block (aggregatable) or the swamp.
	providerPool := make([]*AS, 0, len(backbones)+len(regionals))
	providerPool = append(providerPool, backbones...)
	providerPool = append(providerPool, regionals...)
	for i := 0; i < cfg.Customers; i++ {
		cust := newAS(Customer)
		p1 := providerPool[rng.Intn(len(providerPool))]
		cust.Providers = []bgp.ASN{p1.ASN}
		if rng.Float64() < cfg.MultihomedFrac {
			for tries := 0; tries < 8; tries++ {
				p2 := providerPool[rng.Intn(len(providerPool))]
				if p2.ASN != p1.ASN {
					cust.Providers = append(cust.Providers, p2.ASN)
					cust.Multihomed = true
					break
				}
			}
		}
		nPrefix := 1 + rng.Intn(2*cfg.PrefixesPerCustomer-1)
		for j := 0; j < nPrefix; j++ {
			var p netaddr.Prefix
			var err error
			if cust.Multihomed || rng.Float64() < cfg.SwampFrac {
				// Multihomed prefixes must stay globally visible, so they
				// are never drawn from an aggregatable provider block.
				p, err = swamp.Alloc(24)
			} else {
				bb := t.backboneAncestor(p1.ASN, rng)
				p, err = allocators[bb].Alloc(22 + rng.Intn(3))
			}
			if err != nil {
				break // block exhausted; customer gets fewer prefixes
			}
			cust.Prefixes = append(cust.Prefixes, p)
		}
	}

	// Exchange points: the largest hosts every backbone; the rest host
	// decreasing subsets. (The real Mae-East hosted 60+ providers; peer
	// counts here scale with cfg.Backbones.)
	for i, name := range ExchangeNames {
		ep := &ExchangePoint{Name: name}
		for j, b := range backbones {
			// Backbone j attends exchange i if j's footprint covers it:
			// every backbone at exchange 0, then progressively fewer.
			if j < len(backbones)-i || rng.Float64() < 0.5 {
				ep.Peers = append(ep.Peers, b.ASN)
			}
		}
		sort.Slice(ep.Peers, func(a, b int) bool { return ep.Peers[a] < ep.Peers[b] })
		t.Exchanges = append(t.Exchanges, ep)
	}
	return t
}

// backboneAncestor resolves the index of a backbone above the given provider
// AS (itself if already a backbone).
func (t *Topology) backboneAncestor(asn bgp.ASN, rng *rand.Rand) int {
	a := t.ASes[asn]
	for a.Tier != Backbone {
		a = t.ASes[a.Providers[rng.Intn(len(a.Providers))]]
	}
	// Backbones were created first in Order.
	for i, o := range t.Order {
		if o == a.ASN {
			return i
		}
	}
	panic("topology: backbone not in order")
}

// Backbones returns the backbone ASes in creation order.
func (t *Topology) Backbones() []*AS {
	var out []*AS
	for _, asn := range t.Order {
		if a := t.ASes[asn]; a.Tier == Backbone {
			out = append(out, a)
		}
	}
	return out
}

// Exchange returns the named exchange point, or nil.
func (t *Topology) Exchange(name string) *ExchangePoint {
	for _, e := range t.Exchanges {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// TotalPrefixes counts all originated prefixes.
func (t *Topology) TotalPrefixes() int {
	n := 0
	for _, a := range t.ASes {
		n += len(a.Prefixes)
	}
	return n
}

// MultihomedPrefixes counts prefixes originated by multihomed ASes.
func (t *Topology) MultihomedPrefixes() int {
	n := 0
	for _, a := range t.ASes {
		if a.Multihomed {
			n += len(a.Prefixes)
		}
	}
	return n
}

// Route is one (peer, prefix, path) tuple visible at an exchange point's
// route server.
type Route struct {
	// PeerAS is the backbone whose router announces the route to the route
	// server.
	PeerAS bgp.ASN
	// PeerAddr is that router's address.
	PeerAddr netaddr.Addr
	// Prefix is the destination.
	Prefix netaddr.Prefix
	// Path is the full AS path from the peer down to the origin.
	Path bgp.ASPath
	// Origin is the originating AS.
	Origin bgp.ASN
}

// RoutesAt computes the steady-state routing table a route server at the
// named exchange point holds: for every prefix, one route via each backbone
// ancestor of the origin that peers at this exchange. Multihomed origins
// thus contribute multiple Prefix+AS pairs — the paper's Figure 10 census.
func (t *Topology) RoutesAt(name string) []Route {
	ep := t.Exchange(name)
	if ep == nil {
		return nil
	}
	atExchange := make(map[bgp.ASN]bool, len(ep.Peers))
	for _, p := range ep.Peers {
		atExchange[p] = true
	}
	var out []Route
	for _, asn := range t.Order {
		a := t.ASes[asn]
		for _, prefix := range a.Prefixes {
			for _, path := range t.PathsToBackbones(asn) {
				peer, _ := path.First()
				if !atExchange[peer] {
					continue
				}
				out = append(out, Route{
					PeerAS:   peer,
					PeerAddr: t.ASes[peer].RouterID,
					Prefix:   prefix,
					Path:     path,
					Origin:   asn,
				})
			}
		}
	}
	return out
}

// PathsToBackbones enumerates the distinct AS paths from each backbone
// ancestor down to origin (paths are in announcement direction: backbone
// first, origin last). Single-homed chains yield one path.
func (t *Topology) PathsToBackbones(origin bgp.ASN) []bgp.ASPath {
	var out []bgp.ASPath
	seen := make(map[string]bool)
	var walk func(asn bgp.ASN, suffix []bgp.ASN)
	walk = func(asn bgp.ASN, suffix []bgp.ASN) {
		chain := append([]bgp.ASN{asn}, suffix...)
		a := t.ASes[asn]
		if a.Tier == Backbone {
			p := bgp.PathFromASNs(chain...)
			if k := p.Key(); !seen[k] {
				seen[k] = true
				out = append(out, p)
			}
			return
		}
		for _, prov := range a.Providers {
			walk(prov, chain)
		}
	}
	walk(origin, nil)
	return out
}
