package topology

import (
	"math/rand"
	"testing"

	"instability/internal/bgp"
)

func smallConfig() Config {
	return Config{
		Backbones:           6,
		Regionals:           10,
		Customers:           120,
		PrefixesPerCustomer: 4,
		MultihomedFrac:      0.27,
		StatelessFrac:       0.35,
		UnjitteredFrac:      0.5,
		SwampFrac:           0.3,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	t1 := Generate(smallConfig(), rand.New(rand.NewSource(42)))
	t2 := Generate(smallConfig(), rand.New(rand.NewSource(42)))
	if len(t1.Order) != len(t2.Order) {
		t.Fatal("AS counts differ")
	}
	for i := range t1.Order {
		a1, a2 := t1.ASes[t1.Order[i]], t2.ASes[t2.Order[i]]
		if a1.ASN != a2.ASN || a1.Tier != a2.Tier || len(a1.Prefixes) != len(a2.Prefixes) {
			t.Fatalf("AS %d differs between runs", i)
		}
	}
	t3 := Generate(smallConfig(), rand.New(rand.NewSource(43)))
	same := true
	for i := range t1.Order {
		if len(t1.ASes[t1.Order[i]].Prefixes) != len(t3.ASes[t3.Order[i]].Prefixes) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical topologies (suspicious)")
	}
}

func TestGenerateStructure(t *testing.T) {
	topo := Generate(smallConfig(), rand.New(rand.NewSource(1)))
	if len(topo.Backbones()) != 6 {
		t.Fatalf("%d backbones", len(topo.Backbones()))
	}
	if got := len(topo.Order); got != 6+10+120 {
		t.Fatalf("%d ASes", got)
	}
	customers, regionals := 0, 0
	for _, asn := range topo.Order {
		a := topo.ASes[asn]
		switch a.Tier {
		case Customer:
			customers++
			if len(a.Providers) == 0 {
				t.Fatal("customer without provider")
			}
			if a.Multihomed && len(a.Providers) < 2 {
				t.Fatal("multihomed customer with one provider")
			}
			for _, p := range a.Providers {
				pt := topo.ASes[p].Tier
				if pt == Customer {
					t.Fatal("customer providing transit")
				}
			}
		case Regional:
			regionals++
			for _, p := range a.Providers {
				if topo.ASes[p].Tier != Backbone {
					t.Fatal("regional provider must be backbone")
				}
			}
		case Backbone:
			if len(a.Providers) != 0 {
				t.Fatal("backbone with provider")
			}
		}
	}
	if customers != 120 || regionals != 10 {
		t.Fatalf("customers %d regionals %d", customers, regionals)
	}
	if topo.TotalPrefixes() == 0 {
		t.Fatal("no prefixes")
	}
}

func TestMultihomingFraction(t *testing.T) {
	cfg := smallConfig()
	cfg.Customers = 2000
	topo := Generate(cfg, rand.New(rand.NewSource(2)))
	mh := 0
	for _, asn := range topo.Order {
		a := topo.ASes[asn]
		if a.Tier == Customer && a.Multihomed {
			mh++
		}
	}
	frac := float64(mh) / 2000
	if frac < 0.20 || frac > 0.35 {
		t.Fatalf("multihomed fraction %v, want ~0.27", frac)
	}
	if topo.MultihomedPrefixes() == 0 {
		t.Fatal("no multihomed prefixes")
	}
}

func TestPrefixesDisjointPerOrigin(t *testing.T) {
	topo := Generate(smallConfig(), rand.New(rand.NewSource(3)))
	// Customer and swamp prefixes must not collide across ASes (backbone
	// aggregates legitimately cover customer blocks).
	seen := map[string]bgp.ASN{}
	for _, asn := range topo.Order {
		a := topo.ASes[asn]
		if a.Tier == Backbone {
			continue
		}
		for _, p := range a.Prefixes {
			if prev, dup := seen[p.String()]; dup {
				t.Fatalf("prefix %v originated by both %v and %v", p, prev, asn)
			}
			seen[p.String()] = asn
		}
	}
}

func TestExchangesFollowPaper(t *testing.T) {
	topo := Generate(smallConfig(), rand.New(rand.NewSource(4)))
	if len(topo.Exchanges) != 5 {
		t.Fatalf("%d exchanges", len(topo.Exchanges))
	}
	maeEast := topo.Exchange("Mae-East")
	if maeEast == nil {
		t.Fatal("Mae-East missing")
	}
	if len(maeEast.Peers) != 6 {
		t.Fatalf("Mae-East should host every backbone, has %d", len(maeEast.Peers))
	}
	for _, e := range topo.Exchanges {
		if len(e.Peers) == 0 {
			t.Fatalf("exchange %s has no peers", e.Name)
		}
		if len(e.Peers) > len(maeEast.Peers) {
			t.Fatalf("exchange %s larger than Mae-East", e.Name)
		}
	}
	if topo.Exchange("LINX") != nil {
		t.Fatal("unknown exchange should be nil")
	}
}

func TestPathsToBackbones(t *testing.T) {
	topo := Generate(smallConfig(), rand.New(rand.NewSource(5)))
	for _, asn := range topo.Order {
		a := topo.ASes[asn]
		if a.Tier != Customer {
			continue
		}
		paths := topo.PathsToBackbones(asn)
		if len(paths) == 0 {
			t.Fatalf("customer %v unreachable from backbones", asn)
		}
		for _, p := range paths {
			origin, ok := p.Origin()
			if !ok || origin != asn {
				t.Fatalf("path %v does not originate at %v", p, asn)
			}
			first, _ := p.First()
			if topo.ASes[first].Tier != Backbone {
				t.Fatalf("path %v does not start at a backbone", p)
			}
		}
		if a.Multihomed && len(paths) < 2 {
			t.Fatalf("multihomed customer %v has %d paths", asn, len(paths))
		}
	}
}

func TestRoutesAt(t *testing.T) {
	topo := Generate(smallConfig(), rand.New(rand.NewSource(6)))
	routes := topo.RoutesAt("Mae-East")
	if len(routes) == 0 {
		t.Fatal("no routes at Mae-East")
	}
	atEx := map[bgp.ASN]bool{}
	for _, p := range topo.Exchange("Mae-East").Peers {
		atEx[p] = true
	}
	pairSeen := map[string]bool{}
	multipath := 0
	prefixPeers := map[string]map[bgp.ASN]bool{}
	for _, r := range routes {
		if !atEx[r.PeerAS] {
			t.Fatalf("route via %v which does not peer at Mae-East", r.PeerAS)
		}
		first, _ := r.Path.First()
		if first != r.PeerAS {
			t.Fatalf("path %v does not start at peer %v", r.Path, r.PeerAS)
		}
		key := r.Prefix.String() + "|" + r.Path.Key()
		if pairSeen[key] {
			t.Fatalf("duplicate route %s", key)
		}
		pairSeen[key] = true
		pp := prefixPeers[r.Prefix.String()]
		if pp == nil {
			pp = map[bgp.ASN]bool{}
			prefixPeers[r.Prefix.String()] = pp
		}
		pp[r.PeerAS] = true
	}
	for _, pp := range prefixPeers {
		if len(pp) > 1 {
			multipath++
		}
	}
	if multipath == 0 {
		t.Fatal("no multihomed prefixes visible at the exchange")
	}
	if topo.RoutesAt("nowhere") != nil {
		t.Fatal("unknown exchange should yield nil")
	}
}

func TestDefaultsFullScale(t *testing.T) {
	cfg := Config{}.Defaults()
	if cfg.Backbones != 8 || cfg.Customers != 1250 {
		t.Fatalf("defaults %+v", cfg)
	}
	topo := Generate(Config{}, rand.New(rand.NewSource(7)))
	// Paper scale: ~1300 ASes, tens of thousands of prefixes.
	if got := len(topo.Order); got != 8+40+1250 {
		t.Fatalf("AS count %d", got)
	}
	total := topo.TotalPrefixes()
	if total < 10000 {
		t.Fatalf("only %d prefixes at full scale", total)
	}
	mhFrac := float64(topo.MultihomedPrefixes()) / float64(total)
	if mhFrac < 0.15 {
		t.Fatalf("multihomed prefix share %v too low", mhFrac)
	}
	if Customer.String() == "" || Regional.String() == "" || Backbone.String() == "" || Tier(9).String() == "" {
		t.Fatal("tier names")
	}
}
