package rib

import (
	"math/rand"
	"testing"
	"testing/quick"

	"instability/internal/bgp"
	"instability/internal/netaddr"
)

func peer(as bgp.ASN, id uint32) PeerID {
	return PeerID{AS: as, ID: netaddr.Addr(id)}
}

func attrs(nextHop uint32, path ...bgp.ASN) bgp.Attrs {
	return bgp.Attrs{
		Origin:  bgp.OriginIGP,
		Path:    bgp.PathFromASNs(path...),
		NextHop: netaddr.Addr(nextHop),
	}
}

func TestRIBFirstAnnounce(t *testing.T) {
	r := New(690)
	d := r.Update(peer(701, 1), pfx("35.0.0.0/8"), attrs(1, 701, 237))
	if !d.Changed() || d.HadBest || !d.HasBest {
		t.Fatalf("decision %+v", d)
	}
	a, p, ok := r.Best(pfx("35.0.0.0/8"))
	if !ok || p != peer(701, 1) || a.NextHop != 1 {
		t.Fatalf("best %+v %v %v", a, p, ok)
	}
	if r.Len() != 1 {
		t.Fatalf("len %d", r.Len())
	}
}

func TestRIBPrefersShorterPath(t *testing.T) {
	r := New(690)
	r.Update(peer(701, 1), pfx("35.0.0.0/8"), attrs(1, 701, 1239, 237))
	d := r.Update(peer(174, 2), pfx("35.0.0.0/8"), attrs(2, 174, 237))
	if !d.Changed() {
		t.Fatal("shorter path should win")
	}
	_, p, _ := r.Best(pfx("35.0.0.0/8"))
	if p != peer(174, 2) {
		t.Fatalf("best peer %v", p)
	}
	// A longer path from a third peer must not change the best.
	d = r.Update(peer(3561, 3), pfx("35.0.0.0/8"), attrs(3, 3561, 701, 1239, 237))
	if d.Changed() {
		t.Fatal("longer path must not displace best")
	}
	if r.Candidates(pfx("35.0.0.0/8")) != 3 {
		t.Fatalf("candidates %d", r.Candidates(pfx("35.0.0.0/8")))
	}
}

func TestRIBLocalPrefDominates(t *testing.T) {
	r := New(690)
	a1 := attrs(1, 701, 1239, 9, 237) // long path, high localpref
	a1.HasLocalPref, a1.LocalPref = true, 200
	r.Update(peer(701, 1), pfx("35.0.0.0/8"), a1)
	d := r.Update(peer(174, 2), pfx("35.0.0.0/8"), attrs(2, 174, 237))
	if d.Changed() {
		t.Fatal("higher localpref should beat shorter path")
	}
}

func TestRIBOriginAndMEDAndTieBreak(t *testing.T) {
	r := New(690)
	aIGP := attrs(1, 701, 237)
	aEGP := attrs(2, 174, 237)
	aEGP.Origin = bgp.OriginEGP
	r.Update(peer(174, 2), pfx("35.0.0.0/8"), aEGP)
	d := r.Update(peer(701, 1), pfx("35.0.0.0/8"), aIGP)
	if !d.Changed() {
		t.Fatal("lower origin should win at equal path length")
	}

	// MED: lower wins at equal localpref/length/origin.
	r2 := New(690)
	hi := attrs(1, 701, 237)
	hi.HasMED, hi.MED = true, 50
	lo := attrs(2, 1239, 237)
	lo.HasMED, lo.MED = true, 10
	r2.Update(peer(701, 1), pfx("10.0.0.0/8"), hi)
	d = r2.Update(peer(1239, 2), pfx("10.0.0.0/8"), lo)
	if !d.Changed() {
		t.Fatal("lower MED should win")
	}

	// Final tie-break: lower peer BGP ID.
	r3 := New(690)
	r3.Update(peer(701, 9), pfx("10.0.0.0/8"), attrs(1, 701, 237))
	d = r3.Update(peer(1239, 2), pfx("10.0.0.0/8"), attrs(2, 1239, 237))
	if !d.Changed() {
		t.Fatal("lower router ID should win the final tie-break")
	}
}

func TestRIBWithdraw(t *testing.T) {
	r := New(690)
	r.Update(peer(701, 1), pfx("35.0.0.0/8"), attrs(1, 701, 237))
	r.Update(peer(174, 2), pfx("35.0.0.0/8"), attrs(2, 174, 1239, 237))
	// Withdraw the best; the alternate takes over (the paper's WADiff at the
	// receiving router).
	d := r.Withdraw(peer(701, 1), pfx("35.0.0.0/8"))
	if !d.Changed() || !d.HasBest || d.NewPeer != peer(174, 2) {
		t.Fatalf("decision %+v", d)
	}
	// Withdraw the last candidate; the prefix disappears.
	d = r.Withdraw(peer(174, 2), pfx("35.0.0.0/8"))
	if !d.Changed() || d.HasBest {
		t.Fatalf("decision %+v", d)
	}
	if r.Len() != 0 {
		t.Fatalf("len %d", r.Len())
	}
}

func TestRIBSpuriousWithdrawIsNoChange(t *testing.T) {
	r := New(690)
	r.Update(peer(701, 1), pfx("35.0.0.0/8"), attrs(1, 701, 237))
	// A peer that never announced the prefix withdraws it — the WWDup
	// pathology. The RIB must not change.
	d := r.Withdraw(peer(9999, 7), pfx("35.0.0.0/8"))
	if d.Changed() {
		t.Fatal("spurious withdraw changed the RIB")
	}
	d = r.Withdraw(peer(9999, 7), pfx("203.0.113.0/24"))
	if d.Changed() {
		t.Fatal("withdraw of unknown prefix changed the RIB")
	}
}

func TestRIBLoopRejected(t *testing.T) {
	r := New(690)
	d := r.Update(peer(701, 1), pfx("35.0.0.0/8"), attrs(1, 701, 690, 237))
	if d.Changed() {
		t.Fatal("looped path must be rejected")
	}
	if r.Len() != 0 {
		t.Fatal("looped path was installed")
	}
	// And a loop must not displace an existing best.
	r.Update(peer(174, 2), pfx("35.0.0.0/8"), attrs(2, 174, 237))
	d = r.Update(peer(701, 1), pfx("35.0.0.0/8"), attrs(1, 701, 690, 237))
	if d.Changed() {
		t.Fatal("looped path displaced best")
	}
}

func TestRIBImplicitReplace(t *testing.T) {
	r := New(690)
	r.Update(peer(701, 1), pfx("35.0.0.0/8"), attrs(1, 701, 237))
	// Same peer re-announces with a different path: implicit withdrawal.
	d := r.Update(peer(701, 1), pfx("35.0.0.0/8"), attrs(1, 701, 1239, 237))
	if !d.Changed() {
		t.Fatal("path change should be visible")
	}
	if r.Candidates(pfx("35.0.0.0/8")) != 1 {
		t.Fatal("replace must not grow candidates")
	}
	// Exact duplicate: no change (receiving a duplicate is the AADup case).
	d = r.Update(peer(701, 1), pfx("35.0.0.0/8"), attrs(1, 701, 1239, 237))
	if d.Changed() || d.PolicyChanged() {
		t.Fatal("duplicate should be a no-op")
	}
}

func TestDecisionPolicyChanged(t *testing.T) {
	r := New(690)
	a := attrs(1, 701, 237)
	r.Update(peer(701, 1), pfx("35.0.0.0/8"), a)
	a2 := attrs(1, 701, 237)
	a2.Communities = []bgp.Community{42}
	d := r.Update(peer(701, 1), pfx("35.0.0.0/8"), a2)
	if d.Changed() {
		t.Fatal("community change is not forwarding change")
	}
	if !d.PolicyChanged() {
		t.Fatal("community change is a policy change")
	}
}

func TestWithdrawPeer(t *testing.T) {
	r := New(690)
	for i := uint32(0); i < 10; i++ {
		p := netaddr.MustPrefix(netaddr.Addr(0x0a000000|i<<16), 16)
		r.Update(peer(701, 1), p, attrs(1, 701, bgp.ASN(1000+i)))
		if i%2 == 0 {
			r.Update(peer(174, 2), p, attrs(2, 174, 9, bgp.ASN(1000+i)))
		}
	}
	ds := r.WithdrawPeer(peer(701, 1))
	if len(ds) != 10 {
		t.Fatalf("%d decisions", len(ds))
	}
	lost, switched := 0, 0
	for _, d := range ds {
		if d.HasBest {
			switched++
		} else {
			lost++
		}
	}
	if switched != 5 || lost != 5 {
		t.Fatalf("switched %d lost %d", switched, lost)
	}
	if r.Len() != 5 {
		t.Fatalf("len %d", r.Len())
	}
}

func TestRIBLookup(t *testing.T) {
	r := New(690)
	r.Update(peer(701, 1), pfx("10.0.0.0/8"), attrs(1, 701, 237))
	r.Update(peer(174, 2), pfx("10.1.0.0/16"), attrs(2, 174, 9))
	p, a, ok := r.Lookup(netaddr.MustParseAddr("10.1.2.3"))
	if !ok || p != pfx("10.1.0.0/16") || a.NextHop != 2 {
		t.Fatalf("lookup %v %+v %v", p, a, ok)
	}
	if _, _, ok := r.Lookup(netaddr.MustParseAddr("192.0.2.1")); ok {
		t.Fatal("lookup off-table matched")
	}
}

func TestTakeCensusMultihoming(t *testing.T) {
	r := New(690)
	// Prefix A: single-homed behind 701.
	r.Update(peer(701, 1), pfx("35.0.0.0/8"), attrs(1, 701, 237))
	// Prefix B: multihomed via 701 and 174, same origin.
	r.Update(peer(701, 1), pfx("198.108.0.0/16"), attrs(1, 701, 237))
	r.Update(peer(174, 2), pfx("198.108.0.0/16"), attrs(2, 174, 237))
	// Prefix C: two candidates through the same first AS: not multihomed.
	r.Update(peer(701, 1), pfx("192.168.0.0/16"), attrs(1, 701, 100))
	c := r.TakeCensus()
	if c.Prefixes != 3 {
		t.Fatalf("prefixes %d", c.Prefixes)
	}
	if c.Multihomed != 1 {
		t.Fatalf("multihomed %d", c.Multihomed)
	}
	if got := c.MultihomedShare(); got < 0.33 || got > 0.34 {
		t.Fatalf("share %v", got)
	}
	if c.OriginASes != 2 { // 237 and 100
		t.Fatalf("origins %d", c.OriginASes)
	}
	if c.UniquePaths != 3 {
		t.Fatalf("paths %d", c.UniquePaths)
	}
	if (Census{}).MultihomedShare() != 0 {
		t.Fatal("empty census share should be 0")
	}
}

func TestWalkBest(t *testing.T) {
	r := New(690)
	r.Update(peer(701, 1), pfx("10.0.0.0/8"), attrs(1, 701, 237))
	r.Update(peer(701, 1), pfx("35.0.0.0/8"), attrs(1, 701, 42))
	n := 0
	r.WalkBest(func(netaddr.Prefix, bgp.Attrs, PeerID) bool { n++; return true })
	if n != 2 {
		t.Fatalf("visited %d", n)
	}
}

func TestAggregateSiblings(t *testing.T) {
	got := Aggregate([]netaddr.Prefix{
		pfx("10.0.0.0/24"), pfx("10.0.1.0/24"), pfx("10.0.2.0/24"), pfx("10.0.3.0/24"),
	})
	if len(got) != 1 || got[0] != pfx("10.0.0.0/22") {
		t.Fatalf("got %v", got)
	}
}

func TestAggregateDropsNested(t *testing.T) {
	got := Aggregate([]netaddr.Prefix{pfx("10.0.0.0/8"), pfx("10.1.0.0/16"), pfx("10.0.0.0/8")})
	if len(got) != 1 || got[0] != pfx("10.0.0.0/8") {
		t.Fatalf("got %v", got)
	}
}

func TestAggregateNonAdjacent(t *testing.T) {
	in := []netaddr.Prefix{pfx("10.0.0.0/24"), pfx("10.0.2.0/24")}
	got := Aggregate(in)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	// Not siblings: 10.0.1.0/24 and 10.0.2.0/24 differ at bit 22 vs 23.
	got = Aggregate([]netaddr.Prefix{pfx("10.0.1.0/24"), pfx("10.0.2.0/24")})
	if len(got) != 2 {
		t.Fatalf("false merge: %v", got)
	}
}

func TestAggregateEmpty(t *testing.T) {
	if Aggregate(nil) != nil {
		t.Fatal("nil input should aggregate to nil")
	}
}

func TestAggregateCoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(30) + 1
		in := make([]netaddr.Prefix, n)
		for i := range in {
			// Confine to 10/8 to force overlap and merging.
			a := 0x0a000000 | rng.Uint32()&0x00ffffff
			in[i] = netaddr.MustPrefix(netaddr.Addr(a), 9+rng.Intn(16))
		}
		out := Aggregate(in)
		if !CoverageEqual(in, out) {
			t.Fatalf("coverage changed: in=%v out=%v", in, out)
		}
		if len(out) > len(in) {
			t.Fatalf("aggregation grew the set")
		}
		// Idempotence.
		again := Aggregate(out)
		if len(again) != len(out) {
			t.Fatalf("not idempotent: %v vs %v", out, again)
		}
		// Output prefixes must be disjoint.
		for i := range out {
			for j := i + 1; j < len(out); j++ {
				if out[i].Overlaps(out[j]) {
					t.Fatalf("output overlaps: %v %v", out[i], out[j])
				}
			}
		}
	}
}

func TestCoverageEqual(t *testing.T) {
	a := []netaddr.Prefix{pfx("10.0.0.0/23")}
	b := []netaddr.Prefix{pfx("10.0.0.0/24"), pfx("10.0.1.0/24")}
	if !CoverageEqual(a, b) {
		t.Fatal("equal coverage not detected")
	}
	c := []netaddr.Prefix{pfx("10.0.0.0/24")}
	if CoverageEqual(a, c) {
		t.Fatal("unequal coverage accepted")
	}
}

func TestDecisionChangedQuick(t *testing.T) {
	// Changed() must be false whenever before and after are identical.
	f := func(nh uint32, has bool) bool {
		a := attrs(nh, 701)
		d := Decision{HadBest: has, HasBest: has, Old: a, New: a, OldPeer: peer(1, 1), NewPeer: peer(1, 1)}
		return !d.Changed() && !d.PolicyChanged()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkRIBUpdateWithdraw(b *testing.B) {
	r := New(690)
	a := attrs(1, 701, 237)
	p := pfx("35.0.0.0/8")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Update(peer(701, 1), p, a)
		r.Withdraw(peer(701, 1), p)
	}
}
