package rib

import (
	"fmt"

	"instability/internal/bgp"
	"instability/internal/netaddr"
)

// PeerID identifies a peering session in a RIB: the neighbor's AS plus its
// BGP identifier.
type PeerID struct {
	AS bgp.ASN
	ID netaddr.Addr
}

// String formats the peer for logs and tables.
func (p PeerID) String() string { return fmt.Sprintf("%v/%v", p.AS, p.ID) }

// entry is one candidate route learned from one peer. pathID is the route's
// AS path interned in the owning RIB's path table at Update time, so the
// census counts distinct paths by integer set-insert instead of building a
// key string per candidate per day.
type entry struct {
	peer   PeerID
	attrs  bgp.Attrs
	pathID bgp.PathID
}

// prefixState holds all candidates for a prefix plus the current best index.
// A state whose candidate list has emptied is kept in the trie as a
// tombstone (best == -1) rather than deleted: route flaps withdraw and
// re-announce the same prefixes over and over, and reusing the state and its
// candidate capacity makes the steady-state flap cycle allocation-free.
type prefixState struct {
	candidates []entry
	best       int // index into candidates, -1 when none
}

// Decision describes how a RIB change affected the best route for a prefix,
// which is exactly what a border router propagates to its peers.
type Decision struct {
	Prefix netaddr.Prefix
	// HadBest/NewBest describe the before/after best route.
	HadBest bool
	Old     bgp.Attrs
	OldPeer PeerID
	HasBest bool
	New     bgp.Attrs
	NewPeer PeerID
}

// Changed reports whether the best forwarding route differs after the update
// (including appearing or disappearing).
func (d Decision) Changed() bool {
	if d.HadBest != d.HasBest {
		return true
	}
	if !d.HasBest {
		return false
	}
	return d.OldPeer != d.NewPeer || !d.Old.ForwardingEqual(d.New)
}

// PolicyChanged reports whether any attribute of the best route differs, even
// if the forwarding tuple is unchanged (the paper's policy fluctuation).
func (d Decision) PolicyChanged() bool {
	if d.HadBest != d.HasBest {
		return true
	}
	if !d.HasBest {
		return false
	}
	return d.OldPeer != d.NewPeer || !d.Old.PolicyEqual(d.New)
}

// RIB is a router's routing information base: per-peer Adj-RIB-In candidates
// merged into a Loc-RIB by the BGP decision process.
type RIB struct {
	localAS bgp.ASN
	table   Trie[*prefixState]
	paths   *bgp.PathTable
	// live counts prefixes with at least one candidate; the trie may
	// additionally hold tombstoned states awaiting reuse.
	live int
}

// New returns an empty RIB for a router in the given AS.
func New(localAS bgp.ASN) *RIB {
	return &RIB{localAS: localAS, paths: bgp.NewPathTable()}
}

// LocalAS returns the AS this RIB belongs to.
func (r *RIB) LocalAS() bgp.ASN { return r.localAS }

// Len returns the number of prefixes with at least one candidate route.
func (r *RIB) Len() int { return r.live }

// PathTable exposes the RIB's private path interner: census partials carry
// IDs from this table, and MergeCensuses remaps them when partitions merge.
func (r *RIB) PathTable() *bgp.PathTable { return r.paths }

// Update installs (or replaces) the route for prefix learned from peer and
// re-runs the decision process. Routes whose AS_PATH contains the local AS
// are rejected as loops: the candidate is not installed and the returned
// Decision reflects no change.
func (r *RIB) Update(peer PeerID, prefix netaddr.Prefix, attrs bgp.Attrs) Decision {
	d := Decision{Prefix: prefix}
	st, ok := r.table.Get(prefix)
	if ok && st.best >= 0 {
		d.HadBest = true
		d.Old = st.candidates[st.best].attrs
		d.OldPeer = st.candidates[st.best].peer
	}
	if attrs.Path.Contains(r.localAS) {
		// Loop detected; leave state untouched.
		d.HasBest, d.New, d.NewPeer = d.HadBest, d.Old, d.OldPeer
		return d
	}
	if !ok {
		st = &prefixState{best: -1}
		r.table.Insert(prefix, st)
	}
	if len(st.candidates) == 0 {
		r.live++ // fresh prefix, or a tombstone coming back to life
	}
	pid := r.paths.ID(attrs.Path)
	replaced := false
	for i := range st.candidates {
		if st.candidates[i].peer == peer {
			st.candidates[i].attrs = attrs
			st.candidates[i].pathID = pid
			replaced = true
			break
		}
	}
	if !replaced {
		st.candidates = append(st.candidates, entry{peer: peer, attrs: attrs, pathID: pid})
	}
	r.decide(st)
	if st.best >= 0 {
		d.HasBest = true
		d.New = st.candidates[st.best].attrs
		d.NewPeer = st.candidates[st.best].peer
	}
	return d
}

// Withdraw removes peer's candidate for prefix and re-runs the decision
// process. Withdrawing a route that was never announced is a no-op whose
// Decision reports no change — the pathological WWDup case.
func (r *RIB) Withdraw(peer PeerID, prefix netaddr.Prefix) Decision {
	d := Decision{Prefix: prefix}
	st, ok := r.table.Get(prefix)
	if !ok || len(st.candidates) == 0 {
		return d // unknown prefix or an existing tombstone: WWDup either way
	}
	if st.best >= 0 {
		d.HadBest = true
		d.Old = st.candidates[st.best].attrs
		d.OldPeer = st.candidates[st.best].peer
	}
	for i := range st.candidates {
		if st.candidates[i].peer == peer {
			st.candidates = append(st.candidates[:i], st.candidates[i+1:]...)
			break
		}
	}
	if len(st.candidates) == 0 {
		// Tombstone the state in place of a trie delete: the next announce
		// of this prefix (the flap pattern) reuses it and its capacity.
		st.best = -1
		r.live--
		return d
	}
	r.decide(st)
	if st.best >= 0 {
		d.HasBest = true
		d.New = st.candidates[st.best].attrs
		d.NewPeer = st.candidates[st.best].peer
	}
	return d
}

// WithdrawPeer removes every candidate learned from peer — the effect of a
// session loss — and returns the decisions for all prefixes whose best route
// changed. This is the mechanism by which one failed peering session floods
// topology changes to every other peer (the seed of a route flap storm).
func (r *RIB) WithdrawPeer(peer PeerID) []Decision {
	var affected []netaddr.Prefix
	r.table.Walk(func(p netaddr.Prefix, st *prefixState) bool {
		for _, c := range st.candidates {
			if c.peer == peer {
				affected = append(affected, p)
				break
			}
		}
		return true
	})
	out := make([]Decision, 0, len(affected))
	for _, p := range affected {
		d := r.Withdraw(peer, p)
		if d.Changed() {
			out = append(out, d)
		}
	}
	return out
}

// decide runs the BGP decision process over the candidates.
//
// Preference order (RFC 1771 §9.1 as commonly implemented in 1996):
//  1. highest LOCAL_PREF (absent treated as 100)
//  2. shortest AS_PATH
//  3. lowest ORIGIN code
//  4. lowest MED (absent treated as 0; compared across all neighbors, the
//     era's common "always-compare-med" simplification)
//  5. lowest peer BGP identifier (deterministic tie-break)
func (r *RIB) decide(st *prefixState) {
	best := -1
	for i := range st.candidates {
		if best < 0 || better(st.candidates[i], st.candidates[best]) {
			best = i
		}
	}
	st.best = best
}

func better(a, b entry) bool {
	la, lb := localPref(a.attrs), localPref(b.attrs)
	if la != lb {
		return la > lb
	}
	if al, bl := a.attrs.Path.Len(), b.attrs.Path.Len(); al != bl {
		return al < bl
	}
	if a.attrs.Origin != b.attrs.Origin {
		return a.attrs.Origin < b.attrs.Origin
	}
	if ma, mb := med(a.attrs), med(b.attrs); ma != mb {
		return ma < mb
	}
	return a.peer.ID < b.peer.ID
}

func localPref(a bgp.Attrs) uint32 {
	if a.HasLocalPref {
		return a.LocalPref
	}
	return 100
}

func med(a bgp.Attrs) uint32 {
	if a.HasMED {
		return a.MED
	}
	return 0
}

// Best returns the current best route for prefix.
func (r *RIB) Best(prefix netaddr.Prefix) (bgp.Attrs, PeerID, bool) {
	st, ok := r.table.Get(prefix)
	if !ok || st.best < 0 {
		return bgp.Attrs{}, PeerID{}, false
	}
	return st.candidates[st.best].attrs, st.candidates[st.best].peer, true
}

// Candidates returns the number of candidate routes held for prefix.
func (r *RIB) Candidates(prefix netaddr.Prefix) int {
	st, ok := r.table.Get(prefix)
	if !ok {
		return 0
	}
	return len(st.candidates)
}

// Lookup performs a longest-prefix-match forwarding lookup for a. Tombstoned
// prefixes are skipped, so a withdrawn specific falls through to any shorter
// covering prefix exactly as if it had been deleted.
func (r *RIB) Lookup(a netaddr.Addr) (netaddr.Prefix, bgp.Attrs, bool) {
	p, st, ok := r.table.LongestMatchFunc(a, func(st *prefixState) bool { return st.best >= 0 })
	if !ok {
		return netaddr.Prefix{}, bgp.Attrs{}, false
	}
	return p, st.candidates[st.best].attrs, true
}

// WalkBest visits every prefix that currently has a best route.
func (r *RIB) WalkBest(fn func(p netaddr.Prefix, attrs bgp.Attrs, peer PeerID) bool) {
	r.table.Walk(func(p netaddr.Prefix, st *prefixState) bool {
		if st.best < 0 {
			return true
		}
		c := st.candidates[st.best]
		return fn(p, c.attrs, c.peer)
	})
}

// Census summarizes the routing table the way the paper's §6 does: total
// prefixes, the number reachable via two or more distinct paths (multihomed,
// Figure 10), distinct origin ASes, and distinct AS paths.
type Census struct {
	Prefixes    int
	Multihomed  int
	OriginASes  int
	UniquePaths int
}

// MultihomedShare returns the multihomed fraction of the table (the paper
// reports >25%).
func (c Census) MultihomedShare() float64 {
	if c.Prefixes == 0 {
		return 0
	}
	return float64(c.Multihomed) / float64(c.Prefixes)
}

// TakeCensus computes a Census over the current table. A prefix counts as
// multihomed when its candidates traverse at least two distinct neighboring
// ASes or two distinct origin ASes — i.e. the destination is reachable over
// more than one provider and the prefix cannot be aggregated away.
func (r *RIB) TakeCensus() Census {
	return MergeCensuses(r.TakePartialCensus())
}

// PartialCensus is the mergeable form of a Census, for tables that hold
// disjoint prefix partitions of one logical routing table (the parallel
// pipeline's per-shard RIB mirrors). Prefix-level tallies sum across
// partitions; origin ASes and AS paths are global distinct-counts, so the
// partial keeps the sets and MergeCensuses takes the union.
//
// Paths holds interned PathIDs local to PathTab — the table of the RIB the
// partial was taken from. IDs from different partials are not comparable;
// MergeCensuses unions them by remapping every partial's IDs through one
// fresh table (the per-shard ID-remap contract).
type PartialCensus struct {
	Prefixes   int
	Multihomed int
	Origins    map[bgp.ASN]struct{}
	Paths      map[bgp.PathID]struct{}
	PathTab    *bgp.PathTable
}

// TakePartialCensus computes the mergeable census of this table.
func (r *RIB) TakePartialCensus() PartialCensus {
	pc := PartialCensus{
		Origins: make(map[bgp.ASN]struct{}),
		Paths:   make(map[bgp.PathID]struct{}),
		PathTab: r.paths,
	}
	r.table.Walk(func(_ netaddr.Prefix, st *prefixState) bool {
		if len(st.candidates) == 0 {
			return true
		}
		pc.Prefixes++
		firsts := make(map[bgp.ASN]struct{}, len(st.candidates))
		origs := make(map[bgp.ASN]struct{}, len(st.candidates))
		for _, cand := range st.candidates {
			if f, ok := cand.attrs.Path.First(); ok {
				firsts[f] = struct{}{}
			}
			if o, ok := cand.attrs.Path.Origin(); ok {
				origs[o] = struct{}{}
				pc.Origins[o] = struct{}{}
			}
			pc.Paths[cand.pathID] = struct{}{}
		}
		if len(firsts) > 1 || len(origs) > 1 {
			pc.Multihomed++
		}
		return true
	})
	return pc
}

// MergeCensuses combines partial censuses of disjoint prefix partitions into
// the Census the undivided table would have produced: prefix counts sum,
// origin sets union, and each partial's local PathIDs are remapped through
// one fresh PathTable whose final size is the global distinct-path count.
// Because interning is content-addressed, the remap is order-independent:
// any merge order of any partition of the same table yields the same Census.
func MergeCensuses(parts ...PartialCensus) Census {
	var c Census
	origins := make(map[bgp.ASN]struct{})
	merged := bgp.NewPathTable()
	for _, pc := range parts {
		c.Prefixes += pc.Prefixes
		c.Multihomed += pc.Multihomed
		for o := range pc.Origins {
			origins[o] = struct{}{}
		}
		if pc.PathTab == nil {
			continue
		}
		for id := range pc.Paths {
			merged.ID(pc.PathTab.Lookup(id))
		}
	}
	c.OriginASes = len(origins)
	c.UniquePaths = merged.Len()
	return c
}
