package rib

import (
	"sort"

	"instability/internal/netaddr"
)

// Aggregate computes the minimal set of CIDR prefixes covering exactly the
// given prefixes: adjacent sibling blocks are merged recursively and blocks
// nested inside others are dropped. This is the supernetting operation the
// paper credits with hiding customer-circuit instability inside a provider's
// autonomous system.
func Aggregate(prefixes []netaddr.Prefix) []netaddr.Prefix {
	if len(prefixes) == 0 {
		return nil
	}
	ps := append([]netaddr.Prefix(nil), prefixes...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Compare(ps[j]) < 0 })

	// Drop prefixes covered by an earlier (shorter or equal) prefix.
	kept := ps[:0]
	for _, p := range ps {
		if len(kept) > 0 {
			last := kept[len(kept)-1]
			if last == p || last.ContainsPrefix(p) {
				continue
			}
		}
		kept = append(kept, p)
	}

	// Merge sibling pairs repeatedly until a fixed point. Each merge can
	// enable another one level up, so iterate.
	for {
		merged := false
		out := kept[:0]
		for i := 0; i < len(kept); i++ {
			if i+1 < len(kept) && kept[i].Bits() == kept[i+1].Bits() &&
				kept[i].Bits() > 0 && kept[i].Sibling() == kept[i+1] {
				out = append(out, kept[i].Supernet())
				i++
				merged = true
				continue
			}
			out = append(out, kept[i])
		}
		kept = out
		if !merged {
			break
		}
	}
	return append([]netaddr.Prefix(nil), kept...)
}

// CoverageEqual reports whether two prefix sets cover exactly the same
// address space. Used to verify aggregation soundness.
func CoverageEqual(a, b []netaddr.Prefix) bool {
	return coverageWithin(a, b) && coverageWithin(b, a)
}

func coverageWithin(a, b []netaddr.Prefix) bool {
	for _, p := range a {
		if !covered(p, b) {
			return false
		}
	}
	return true
}

// covered reports whether every address in p is inside some prefix of set.
func covered(p netaddr.Prefix, set []netaddr.Prefix) bool {
	for _, q := range set {
		if q.ContainsPrefix(p) {
			return true
		}
	}
	if p.Bits() >= 32 {
		return false
	}
	// Split and recurse: p may be covered by multiple smaller prefixes.
	for _, q := range set {
		if p.ContainsPrefix(q) {
			lo, hi := p.Halves()
			return covered(lo, set) && covered(hi, set)
		}
	}
	return false
}
