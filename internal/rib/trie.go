// Package rib implements the routing information base used by the simulated
// routers and route servers: a binary radix trie keyed by prefix, the
// Adj-RIB-In / Loc-RIB / Adj-RIB-Out split of RFC 1771, the BGP decision
// process, CIDR aggregation, and the multihoming census the paper's Figure 10
// is built on.
package rib

import (
	"instability/internal/netaddr"
)

// Trie is a binary radix trie mapping prefixes to values. The zero value is
// an empty trie ready to use.
//
// The trie supports exact-match insert/delete/lookup, longest-prefix match,
// and ordered traversal. It is not safe for concurrent mutation.
type Trie[V any] struct {
	root *node[V]
	size int
}

type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// Insert stores val under p, replacing any previous value. It reports whether
// the prefix was newly added.
func (t *Trie[V]) Insert(p netaddr.Prefix, val V) bool {
	if t.root == nil {
		t.root = &node[V]{}
	}
	n := t.root
	for i := 0; i < p.Bits(); i++ {
		b := p.Bit(i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	added := !n.set
	n.val, n.set = val, true
	if added {
		t.size++
	}
	return added
}

// Get returns the value stored exactly at p.
func (t *Trie[V]) Get(p netaddr.Prefix) (V, bool) {
	var zero V
	n := t.root
	for i := 0; n != nil && i < p.Bits(); i++ {
		n = n.child[p.Bit(i)]
	}
	if n == nil || !n.set {
		return zero, false
	}
	return n.val, true
}

// Delete removes the value stored exactly at p, pruning empty branches. It
// reports whether a value was present.
func (t *Trie[V]) Delete(p netaddr.Prefix) bool {
	// Track the path for pruning.
	path := make([]*node[V], 0, p.Bits()+1)
	n := t.root
	for i := 0; n != nil && i < p.Bits(); i++ {
		path = append(path, n)
		n = n.child[p.Bit(i)]
	}
	if n == nil || !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	// Prune leaf chains bottom-up.
	for i := len(path) - 1; i >= 0; i-- {
		child := path[i].child[p.Bit(i)]
		if child.set || child.child[0] != nil || child.child[1] != nil {
			break
		}
		path[i].child[p.Bit(i)] = nil
	}
	if t.root != nil && !t.root.set && t.root.child[0] == nil && t.root.child[1] == nil {
		t.root = nil
	}
	return true
}

// LongestMatch returns the most specific stored prefix containing a, in the
// manner of a forwarding lookup.
func (t *Trie[V]) LongestMatch(a netaddr.Addr) (netaddr.Prefix, V, bool) {
	var (
		bestP  netaddr.Prefix
		bestV  V
		found  bool
		prefix uint32
	)
	n := t.root
	for i := 0; n != nil; i++ {
		if n.set {
			bestP = netaddr.MustPrefix(netaddr.Addr(prefix), i)
			bestV = n.val
			found = true
		}
		if i == 32 {
			break
		}
		b := int(a>>(31-uint(i))) & 1
		if b == 1 {
			prefix |= 1 << (31 - uint(i))
		}
		n = n.child[b]
	}
	return bestP, bestV, found
}

// LongestMatchFunc is LongestMatch restricted to stored values satisfying
// ok: the most specific stored prefix containing a whose value passes the
// predicate. The RIB uses it to skip tombstoned prefixes (states kept for
// reuse after their last candidate was withdrawn) without letting them
// shadow a shorter live prefix.
func (t *Trie[V]) LongestMatchFunc(a netaddr.Addr, ok func(V) bool) (netaddr.Prefix, V, bool) {
	var (
		bestP  netaddr.Prefix
		bestV  V
		found  bool
		prefix uint32
	)
	n := t.root
	for i := 0; n != nil; i++ {
		if n.set && ok(n.val) {
			bestP = netaddr.MustPrefix(netaddr.Addr(prefix), i)
			bestV = n.val
			found = true
		}
		if i == 32 {
			break
		}
		b := int(a>>(31-uint(i))) & 1
		if b == 1 {
			prefix |= 1 << (31 - uint(i))
		}
		n = n.child[b]
	}
	return bestP, bestV, found
}

// Walk visits every stored prefix in Compare order (address, then mask
// length). Returning false from fn stops the walk.
func (t *Trie[V]) Walk(fn func(p netaddr.Prefix, v V) bool) {
	t.walk(t.root, 0, 0, fn)
}

func (t *Trie[V]) walk(n *node[V], addr uint32, depth int, fn func(netaddr.Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.set {
		if !fn(netaddr.MustPrefix(netaddr.Addr(addr), depth), n.val) {
			return false
		}
	}
	if depth == 32 {
		return true
	}
	if !t.walk(n.child[0], addr, depth+1, fn) {
		return false
	}
	return t.walk(n.child[1], addr|1<<(31-uint(depth)), depth+1, fn)
}

// Covered visits every stored prefix contained within p (including p itself).
func (t *Trie[V]) Covered(p netaddr.Prefix, fn func(q netaddr.Prefix, v V) bool) {
	n := t.root
	for i := 0; n != nil && i < p.Bits(); i++ {
		n = n.child[p.Bit(i)]
	}
	t.walk(n, uint32(p.Addr()), p.Bits(), fn)
}

// Prefixes returns all stored prefixes in Compare order.
func (t *Trie[V]) Prefixes() []netaddr.Prefix {
	out := make([]netaddr.Prefix, 0, t.size)
	t.Walk(func(p netaddr.Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	return out
}
