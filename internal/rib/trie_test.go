package rib

import (
	"math/rand"
	"sort"
	"testing"

	"instability/internal/netaddr"
)

func pfx(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

func TestTrieInsertGetDelete(t *testing.T) {
	var tr Trie[int]
	if tr.Len() != 0 {
		t.Fatal("empty trie len")
	}
	if !tr.Insert(pfx("10.0.0.0/8"), 1) {
		t.Fatal("first insert should add")
	}
	if tr.Insert(pfx("10.0.0.0/8"), 2) {
		t.Fatal("second insert should replace, not add")
	}
	if v, ok := tr.Get(pfx("10.0.0.0/8")); !ok || v != 2 {
		t.Fatalf("get = %v %v", v, ok)
	}
	if _, ok := tr.Get(pfx("10.0.0.0/16")); ok {
		t.Fatal("exact match must not find supernets' entries")
	}
	if !tr.Delete(pfx("10.0.0.0/8")) {
		t.Fatal("delete should find entry")
	}
	if tr.Delete(pfx("10.0.0.0/8")) {
		t.Fatal("second delete should report absent")
	}
	if tr.Len() != 0 {
		t.Fatalf("len %d after delete", tr.Len())
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	var tr Trie[string]
	tr.Insert(pfx("0.0.0.0/0"), "default")
	p, v, ok := tr.LongestMatch(netaddr.MustParseAddr("203.0.113.9"))
	if !ok || v != "default" || p != pfx("0.0.0.0/0") {
		t.Fatalf("lpm = %v %v %v", p, v, ok)
	}
}

func TestTrieLongestMatch(t *testing.T) {
	var tr Trie[string]
	tr.Insert(pfx("0.0.0.0/0"), "default")
	tr.Insert(pfx("10.0.0.0/8"), "eight")
	tr.Insert(pfx("10.1.0.0/16"), "sixteen")
	tr.Insert(pfx("10.1.2.0/24"), "twentyfour")
	cases := []struct {
		addr string
		want string
	}{
		{"10.1.2.3", "twentyfour"},
		{"10.1.9.9", "sixteen"},
		{"10.200.0.1", "eight"},
		{"192.0.2.1", "default"},
	}
	for _, c := range cases {
		_, v, ok := tr.LongestMatch(netaddr.MustParseAddr(c.addr))
		if !ok || v != c.want {
			t.Errorf("lpm(%s) = %q %v, want %q", c.addr, v, ok, c.want)
		}
	}
	var empty Trie[string]
	if _, _, ok := empty.LongestMatch(netaddr.MustParseAddr("10.0.0.1")); ok {
		t.Error("empty trie matched")
	}
}

func TestTrieWalkOrder(t *testing.T) {
	var tr Trie[int]
	want := []netaddr.Prefix{
		pfx("0.0.0.0/0"),
		pfx("10.0.0.0/8"),
		pfx("10.0.0.0/16"),
		pfx("10.1.0.0/16"),
		pfx("192.168.0.0/16"),
		pfx("192.168.1.0/24"),
	}
	// Insert shuffled.
	rng := rand.New(rand.NewSource(5))
	for _, i := range rng.Perm(len(want)) {
		tr.Insert(want[i], i)
	}
	got := tr.Prefixes()
	if len(got) != len(want) {
		t.Fatalf("%d prefixes", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v want %v", got, want)
		}
	}
	// Early termination.
	n := 0
	tr.Walk(func(netaddr.Prefix, int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("walk visited %d after early stop", n)
	}
}

func TestTrieCovered(t *testing.T) {
	var tr Trie[int]
	tr.Insert(pfx("10.0.0.0/8"), 0)
	tr.Insert(pfx("10.1.0.0/16"), 1)
	tr.Insert(pfx("10.1.2.0/24"), 2)
	tr.Insert(pfx("11.0.0.0/8"), 3)
	var got []netaddr.Prefix
	tr.Covered(pfx("10.0.0.0/8"), func(q netaddr.Prefix, _ int) bool {
		got = append(got, q)
		return true
	})
	if len(got) != 3 {
		t.Fatalf("covered = %v", got)
	}
}

func TestTrieAgainstReferenceMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var tr Trie[uint32]
	ref := map[netaddr.Prefix]uint32{}
	randPfx := func() netaddr.Prefix {
		return netaddr.MustPrefix(netaddr.Addr(rng.Uint32()), rng.Intn(33))
	}
	for i := 0; i < 20000; i++ {
		p := randPfx()
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Uint32()
			tr.Insert(p, v)
			ref[p] = v
		case 2:
			got := tr.Delete(p)
			_, want := ref[p]
			if got != want {
				t.Fatalf("delete(%v) = %v, want %v", p, got, want)
			}
			delete(ref, p)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("len %d vs ref %d", tr.Len(), len(ref))
		}
	}
	// Final content check.
	for p, v := range ref {
		got, ok := tr.Get(p)
		if !ok || got != v {
			t.Fatalf("get(%v) = %v %v, want %v", p, got, ok, v)
		}
	}
	// LPM cross-check against brute force.
	for i := 0; i < 2000; i++ {
		a := netaddr.Addr(rng.Uint32())
		gotP, gotV, gotOK := tr.LongestMatch(a)
		var (
			bestP  netaddr.Prefix
			bestOK bool
		)
		for p := range ref {
			if p.Contains(a) && (!bestOK || p.Bits() > bestP.Bits()) {
				bestP, bestOK = p, true
			}
		}
		if gotOK != bestOK || (gotOK && gotP != bestP) {
			t.Fatalf("lpm(%v) = %v %v, want %v %v", a, gotP, gotOK, bestP, bestOK)
		}
		if gotOK && gotV != ref[bestP] {
			t.Fatalf("lpm(%v) value mismatch", a)
		}
	}
}

func TestTrieWalkSortedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var tr Trie[int]
	ref := map[netaddr.Prefix]bool{}
	for i := 0; i < 500; i++ {
		p := netaddr.MustPrefix(netaddr.Addr(rng.Uint32()), 8+rng.Intn(25))
		tr.Insert(p, i)
		ref[p] = true
	}
	want := make([]netaddr.Prefix, 0, len(ref))
	for p := range ref {
		want = append(want, p)
	}
	sort.Slice(want, func(i, j int) bool { return want[i].Compare(want[j]) < 0 })
	got := tr.Prefixes()
	if len(got) != len(want) {
		t.Fatalf("len %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func BenchmarkTrieInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ps := make([]netaddr.Prefix, 4096)
	for i := range ps {
		ps[i] = netaddr.MustPrefix(netaddr.Addr(rng.Uint32()), 8+rng.Intn(17))
	}
	b.ResetTimer()
	var tr Trie[int]
	for i := 0; i < b.N; i++ {
		tr.Insert(ps[i%len(ps)], i)
	}
}

func BenchmarkTrieLongestMatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var tr Trie[int]
	for i := 0; i < 42000; i++ {
		tr.Insert(netaddr.MustPrefix(netaddr.Addr(rng.Uint32()), 8+rng.Intn(17)), i)
	}
	addrs := make([]netaddr.Addr, 1024)
	for i := range addrs {
		addrs[i] = netaddr.Addr(rng.Uint32())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.LongestMatch(addrs[i%len(addrs)])
	}
}
