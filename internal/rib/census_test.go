package rib

import (
	"math/rand"
	"testing"

	"instability/internal/bgp"
	"instability/internal/netaddr"
)

// TestPartialCensusMerge checks the prefix-partitioned census contract used
// by the parallel pipeline: splitting one logical table's prefixes across
// several RIBs and merging their partial censuses must equal the undivided
// table's census. Origin-AS and unique-path counts are global distinct
// counts, so they specifically need the set-union merge, not a sum.
func TestPartialCensusMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	peers := []PeerID{
		{AS: 690, ID: 1}, {AS: 701, ID: 2}, {AS: 1239, ID: 3},
	}
	paths := []bgp.ASPath{
		bgp.PathFromASNs(690, 237),
		bgp.PathFromASNs(701, 237), // same origin via another peer
		bgp.PathFromASNs(701, 145),
		bgp.PathFromASNs(1239, 145),
	}

	whole := New(0)
	const parts = 4
	shards := make([]*RIB, parts)
	for i := range shards {
		shards[i] = New(0)
	}
	for i := 0; i < 300; i++ {
		pfx := netaddr.MustPrefix(netaddr.Addr(0xc0000000+uint32(i)<<8), 24)
		// Each prefix gets 1-3 candidate routes; all of them must land in
		// the same partition for the multihoming count to be right.
		n := 1 + rng.Intn(3)
		shard := int(uint32(i*2654435761) % parts)
		for j := 0; j < n; j++ {
			peer := peers[(i+j)%len(peers)]
			attrs := bgp.Attrs{Origin: bgp.OriginIGP, Path: paths[rng.Intn(len(paths))], NextHop: 1}
			whole.Update(peer, pfx, attrs)
			shards[shard].Update(peer, pfx, attrs)
		}
	}

	want := whole.TakeCensus()
	pcs := make([]PartialCensus, parts)
	for i, r := range shards {
		pcs[i] = r.TakePartialCensus()
	}
	if got := MergeCensuses(pcs...); got != want {
		t.Fatalf("merged census %+v, undivided table %+v", got, want)
	}
	if want.OriginASes == 0 || want.UniquePaths == 0 || want.Multihomed == 0 {
		t.Fatalf("degenerate reference census %+v", want)
	}
	// TakeCensus itself routes through the partial form; a census of one
	// partition alone must also be self-consistent.
	if one := MergeCensuses(shards[0].TakePartialCensus()); one != shards[0].TakeCensus() {
		t.Fatalf("single-partition merge %+v != TakeCensus %+v", one, shards[0].TakeCensus())
	}
}
