// Package intern implements a canonicalizing attribute interner for the
// duplicate-dominated update streams the paper measures: each distinct
// bgp.Attrs tuple (and each distinct bare AS path) is stored once, and every
// later occurrence resolves to the same immutable *Handle. Interning turns
// the hot-path comparisons — PolicyEqual on the classifier's AADup test,
// ForwardingEqual on the WADup test, path-set membership in the RIB census —
// into pointer and integer compares, and eliminates the per-record deep
// copies of path segments and community slices that otherwise dominate
// allocation.
package intern

import (
	"sync/atomic"

	"instability/internal/bgp"
	"instability/internal/netaddr"
	"instability/internal/obs"
)

// Handle is the shared immutable representative of one distinct attribute
// tuple within one Table. Two handles from the same table are the same
// pointer exactly when their tuples are PolicyEqual; the PathID fields of two
// handles from the same table are equal exactly when their AS paths are
// equal. Handles from different tables must not be compared.
type Handle struct {
	attrs bgp.Attrs
	// FwdHash is a precomputed 64-bit hash of the forwarding-relevant
	// (NextHop, ASPATH) portion of the tuple, for callers that need a
	// hash-distributed key without rehashing the path.
	FwdHash uint64
	// ID is the dense per-table identity of the full tuple (assigned in
	// first-seen order).
	ID uint32
	// PathID is the dense per-table identity of the AS path alone.
	PathID bgp.PathID
}

// Attrs returns the canonical attribute tuple. The returned value shares the
// handle's interned slices and must be treated as read-only.
func (h *Handle) Attrs() bgp.Attrs { return h.attrs }

// NextHop returns the tuple's next hop without copying the full Attrs.
func (h *Handle) NextHop() netaddr.Addr { return h.attrs.NextHop }

// ForwardingEqual reports whether two handles from the same table agree on
// the forwarding-relevant (NextHop, ASPATH) tuple — the paper's duplicate
// test — as one pointer compare or two integer compares, never a path walk.
func ForwardingEqual(a, b *Handle) bool {
	if a == b {
		return a != nil
	}
	if a == nil || b == nil {
		return false
	}
	return a.attrs.NextHop == b.attrs.NextHop && a.PathID == b.PathID
}

// Table interns attribute tuples and AS paths. It is NOT safe for concurrent
// use: each pipeline shard, RIB, session, and generator owns a private
// table, and the store wraps its shared decode-side table in a mutex. Tables
// retain every tuple ever interned; the working sets here (distinct
// attribute tuples in a BGP stream) are small by construction — that
// smallness is the paper's whole point.
type Table struct {
	byHash map[uint64][]*Handle
	n      uint32
	paths  *bgp.PathTable

	// Stats are accumulated locally and flushed to the process-wide obs
	// counters in batches, so shards never contend on a shared cache line
	// per record.
	hits, misses, pathMisses uint64
}

// statsFlushEvery is the local lookup count at which a table folds its hit
// and miss tallies into the process counters.
const statsFlushEvery = 4096

// New returns an empty interner.
func New() *Table {
	return &Table{
		byHash: make(map[uint64][]*Handle),
		paths:  bgp.NewPathTable(),
	}
}

// Attrs interns a and returns its canonical handle. On a miss the tuple is
// deep-copied (path segments and communities), so the caller's slices are
// never retained; on a hit nothing is allocated.
func (t *Table) Attrs(a bgp.Attrs) *Handle {
	h := hashAttrs(a)
	for _, cand := range t.byHash[h] {
		if cand.attrs.PolicyEqual(a) {
			t.hits++
			t.maybeFlush()
			return cand
		}
	}
	before := t.paths.Len()
	pid := t.paths.ID(a.Path)
	if t.paths.Len() != before {
		t.pathMisses++
	}
	canon := a
	canon.Path = t.paths.Lookup(pid)
	if len(a.Communities) > 0 {
		canon.Communities = append([]bgp.Community(nil), a.Communities...)
	}
	hd := &Handle{
		attrs:   canon,
		FwdHash: fwdHash(canon.NextHop, pid),
		ID:      t.n,
		PathID:  pid,
	}
	t.n++
	t.byHash[h] = append(t.byHash[h], hd)
	t.misses++
	t.maybeFlush()
	return hd
}

// Path interns a bare AS path and returns its dense per-table ID.
func (t *Table) Path(p bgp.ASPath) bgp.PathID {
	before := t.paths.Len()
	id := t.paths.ID(p)
	if t.paths.Len() != before {
		t.pathMisses++
	}
	return id
}

// Paths exposes the table's path store, for merge-time ID remapping.
func (t *Table) Paths() *bgp.PathTable { return t.paths }

// Len returns the number of distinct attribute tuples interned.
func (t *Table) Len() int { return int(t.n) }

// PathLen returns the number of distinct AS paths interned.
func (t *Table) PathLen() int { return t.paths.Len() }

func (t *Table) maybeFlush() {
	if t.hits+t.misses >= statsFlushEvery {
		t.FlushStats()
	}
}

// FlushStats folds the table's local hit/miss tallies into the process-wide
// counters. Tables flush automatically every few thousand lookups; owners
// with a natural quiescent point (day barriers, Close) may flush explicitly
// so the exported numbers are exact.
func (t *Table) FlushStats() {
	if t.hits == 0 && t.misses == 0 && t.pathMisses == 0 {
		return
	}
	totalHits.Add(t.hits)
	totalMisses.Add(t.misses)
	totalPaths.Add(t.pathMisses)
	obsHits.Add(int64(t.hits))
	obsMisses.Add(int64(t.misses))
	obsPaths.Add(int64(t.pathMisses))
	t.hits, t.misses, t.pathMisses = 0, 0, 0
}

// hashAttrs hashes the full policy tuple without allocating. PolicyEqual
// tuples hash identically.
func hashAttrs(a bgp.Attrs) uint64 {
	h := bgp.HashPath(a.Path)
	h = mix(h ^ uint64(a.NextHop))
	var flags uint64
	if a.HasMED {
		flags |= 1
	}
	if a.HasLocalPref {
		flags |= 2
	}
	if a.AtomicAggregate {
		flags |= 4
	}
	if a.HasAggregator {
		flags |= 8
	}
	h = mix(h ^ uint64(a.Origin)<<8 ^ flags<<16 ^ uint64(a.MED)<<24 ^ uint64(a.LocalPref))
	h = mix(h ^ uint64(a.AggregatorAS)<<32 ^ uint64(a.AggregatorAddr))
	for _, c := range a.Communities {
		h = mix(h ^ uint64(c))
	}
	return h
}

// fwdHash is the precomputed forwarding hash stored on every handle: a mix
// of the next hop and the interned path identity, so the full (NextHop,
// ASPATH) tuple hashes in two mixes with no path walk.
func fwdHash(nextHop netaddr.Addr, pid bgp.PathID) uint64 {
	return mix(uint64(nextHop)<<32 ^ uint64(pid))
}

// mix is the SplitMix64 finalizer.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Process-wide interning statistics: the obs series double as the CLI
// summaries' data source via Stats.
var (
	totalHits, totalMisses, totalPaths atomic.Uint64

	obsHits = obs.Default().Counter("irtl_intern_hits_total",
		"Attribute-tuple intern lookups that returned an existing handle.")
	obsMisses = obs.Default().Counter("irtl_intern_misses_total",
		"Attribute-tuple intern lookups that created a new handle (equals the distinct tuples seen process-wide).")
	obsPaths = obs.Default().Counter("irtl_intern_paths_total",
		"Distinct AS paths interned process-wide.")
)

// Stats returns the process-wide flushed interning tallies: lookup hits,
// misses (distinct tuples created), and distinct paths interned. Tables
// flush in batches, so totals lag live tables by at most statsFlushEvery
// lookups each unless FlushStats was called.
func Stats() (hits, misses, paths uint64) {
	return totalHits.Load(), totalMisses.Load(), totalPaths.Load()
}
