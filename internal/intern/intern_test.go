package intern

import (
	"testing"

	"instability/internal/bgp"
	"instability/internal/netaddr"
)

func attrs(nextHop string, path bgp.ASPath, comms ...bgp.Community) bgp.Attrs {
	return bgp.Attrs{
		Origin:      bgp.OriginIGP,
		Path:        path,
		NextHop:     netaddr.MustParseAddr(nextHop),
		Communities: comms,
	}
}

func TestInternDedupes(t *testing.T) {
	tab := New()
	p := bgp.PathFromASNs(701, 1239, 690)
	h1 := tab.Attrs(attrs("10.0.0.1", p))
	h2 := tab.Attrs(attrs("10.0.0.1", bgp.PathFromASNs(701, 1239, 690)))
	if h1 != h2 {
		t.Fatalf("equal tuples interned to distinct handles")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
	h3 := tab.Attrs(attrs("10.0.0.2", p))
	if h3 == h1 {
		t.Fatalf("distinct next hops shared a handle")
	}
	if h3.ID == h1.ID {
		t.Fatalf("distinct tuples shared an ID")
	}
	if h3.PathID != h1.PathID {
		t.Fatalf("same path got distinct PathIDs: %d vs %d", h3.PathID, h1.PathID)
	}
}

func TestInternPolicyDistinguishes(t *testing.T) {
	tab := New()
	p := bgp.PathFromASNs(701, 690)
	plain := tab.Attrs(attrs("10.0.0.1", p))
	tagged := tab.Attrs(attrs("10.0.0.1", p, bgp.Community(0x02BD0001)))
	if plain == tagged {
		t.Fatalf("community change interned to the same handle")
	}
	if !ForwardingEqual(plain, tagged) {
		t.Fatalf("ForwardingEqual false for policy-only difference")
	}
	med := attrs("10.0.0.1", p)
	med.HasMED, med.MED = true, 50
	hm := tab.Attrs(med)
	if hm == plain {
		t.Fatalf("MED change interned to the same handle")
	}
	if !ForwardingEqual(hm, plain) {
		t.Fatalf("ForwardingEqual must ignore MED")
	}
}

func TestForwardingEqual(t *testing.T) {
	tab := New()
	a := tab.Attrs(attrs("10.0.0.1", bgp.PathFromASNs(701, 690)))
	b := tab.Attrs(attrs("10.0.0.1", bgp.PathFromASNs(701, 1239, 690)))
	if ForwardingEqual(a, b) {
		t.Fatalf("distinct paths reported forwarding-equal")
	}
	if ForwardingEqual(a, nil) || ForwardingEqual(nil, a) || ForwardingEqual(nil, nil) {
		t.Fatalf("nil handles must never be forwarding-equal")
	}
	if !ForwardingEqual(a, a) {
		t.Fatalf("handle not forwarding-equal to itself")
	}
	if a.FwdHash != tab.Attrs(attrs("10.0.0.1", bgp.PathFromASNs(701, 690), bgp.Community(7))).FwdHash {
		t.Fatalf("forwarding hash must ignore policy attributes")
	}
}

func TestInternDeepCopies(t *testing.T) {
	tab := New()
	comms := []bgp.Community{bgp.Community(1)}
	path := bgp.PathFromASNs(701, 690)
	h := tab.Attrs(attrs("10.0.0.1", path, comms...))
	comms[0] = bgp.Community(999)
	path.Segments[0].ASNs[0] = 4242
	got := h.Attrs()
	if got.Communities[0] != bgp.Community(1) {
		t.Fatalf("interned communities alias the caller's slice")
	}
	if got.Path.Segments[0].ASNs[0] != 701 {
		t.Fatalf("interned path aliases the caller's segments")
	}
	// The mutated originals now describe a different tuple.
	if h2 := tab.Attrs(attrs("10.0.0.1", path, comms...)); h2 == h {
		t.Fatalf("mutated tuple resolved to the stale handle")
	}
}

func TestPathIntern(t *testing.T) {
	tab := New()
	id1 := tab.Path(bgp.PathFromASNs(701, 690))
	id2 := tab.Path(bgp.PathFromASNs(701, 690))
	id3 := tab.Path(bgp.PathFromASNs(690))
	if id1 != id2 {
		t.Fatalf("equal paths got distinct IDs")
	}
	if id1 == id3 {
		t.Fatalf("distinct paths shared an ID")
	}
	if tab.PathLen() != 2 {
		t.Fatalf("PathLen = %d, want 2", tab.PathLen())
	}
	if !tab.Paths().Lookup(id3).Equal(bgp.PathFromASNs(690)) {
		t.Fatalf("Lookup returned the wrong path")
	}
	// A handle interned after the bare path reuses its PathID.
	h := tab.Attrs(attrs("10.0.0.1", bgp.PathFromASNs(690)))
	if h.PathID != id3 {
		t.Fatalf("handle PathID %d, want %d", h.PathID, id3)
	}
}

func TestStatsFlush(t *testing.T) {
	h0, m0, p0 := Stats()
	tab := New()
	a := attrs("10.0.0.1", bgp.PathFromASNs(701, 690))
	tab.Attrs(a)
	tab.Attrs(a)
	tab.Attrs(a)
	tab.FlushStats()
	h1, m1, p1 := Stats()
	if m1-m0 != 1 || p1-p0 != 1 {
		t.Fatalf("misses/paths delta = %d/%d, want 1/1", m1-m0, p1-p0)
	}
	if h1-h0 != 2 {
		t.Fatalf("hits delta = %d, want 2", h1-h0)
	}
	tab.FlushStats() // second flush with nothing pending must not move totals
	h2, m2, _ := Stats()
	if h2 != h1 || m2 != m1 {
		t.Fatalf("empty flush moved totals")
	}
}

func BenchmarkInternHit(b *testing.B) {
	tab := New()
	a := attrs("10.0.0.1", bgp.PathFromASNs(701, 1239, 690), bgp.Community(0x02BD0001))
	tab.Attrs(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Attrs(a)
	}
}
