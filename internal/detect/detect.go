// Package detect is a streaming anomaly detector over the classifier's
// output: the taxonomy of "Internet Routing Instability" turned into a
// real-time feature extractor, in the spirit of the novelty-detection
// literature the ROADMAP cites (Lychev et al.'s destabilizing attacks,
// Marais & Marwala's worm prediction from update-rate novelty).
//
// The detector buckets classified events into fixed windows on four
// channels — per-(peer, prefix, class) fine keys, per-(peer, class),
// global per-class volume, and a per-prefix origin channel (MOAS) — and
// maintains an exponentially-decayed rate baseline (EWMA mean + variance)
// per key. Each finalized window yields a novelty score
//
//	z = (count − mean) / max(σ, √mean, 1)
//
// and alerts open with hysteresis: a window must clear both the z-score
// threshold ZOn and an absolute count floor to open, stays open while
// windows clear ZOff, and closes after MaxGap silent windows. Baselines
// freeze while a key is alerting, so an anomaly cannot teach the detector
// that it is normal. The origin channel is pure novelty: a never-seen
// origin announcing an established prefix (multi-origin conflict) alerts
// regardless of rate.
//
// Concurrency contract: Add is safe from many goroutines (the parallel
// pipeline's Events hook calls it from shard workers); it only performs
// commutative window counting. Advance and Finish — which finalize
// windows in ascending order with sorted keys and therefore produce a
// deterministic alert stream — must be called from the feeder at barrier
// points (day ends), where all Adds for the finalized span have
// happened-before. Serial and parallel pipeline feeds of the same record
// stream yield byte-identical alert sequences.
package detect

import (
	"math"
	"sort"
	"sync"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/core"
	"instability/internal/netaddr"
	"instability/internal/obs"
)

// Channel names one of the detector's aggregation planes.
type Channel uint8

// Detection channels.
const (
	// ChanKey is the fine-grained (peer, prefix, class) rate channel,
	// restricted to the forwarding classes (AADiff, WADiff) — the
	// signature of targeted path churn such as poisoning.
	ChanKey Channel = iota
	// ChanPeer is the per-(peer, class) rate channel: leaks, session
	// storms, and per-peer floods surface here.
	ChanPeer
	// ChanGlobal is the exchange-wide per-class volume channel: load
	// coupling (worm propagation) surfaces here.
	ChanGlobal
	// ChanOrigin is the per-prefix origin-novelty (MOAS) channel: a
	// prefix announced by an origin AS never previously seen for it.
	ChanOrigin
)

// String names the channel.
func (c Channel) String() string {
	switch c {
	case ChanKey:
		return "key"
	case ChanPeer:
		return "peer"
	case ChanGlobal:
		return "global"
	case ChanOrigin:
		return "origin"
	}
	return "channel?"
}

// Key identifies one monitored series. For rate channels Peer/Prefix are
// filled per the channel's granularity; for ChanOrigin, Peer holds the
// conflicting origin AS and Prefix the contested prefix.
type Key struct {
	Chan   Channel
	Peer   bgp.ASN
	Prefix netaddr.Prefix
	Class  core.Class
}

func keyLess(a, b Key) bool {
	if a.Chan != b.Chan {
		return a.Chan < b.Chan
	}
	if a.Peer != b.Peer {
		return a.Peer < b.Peer
	}
	if c := a.Prefix.Compare(b.Prefix); c != 0 {
		return c < 0
	}
	return a.Class < b.Class
}

// Config parameterizes a Detector. The zero value selects the defaults.
type Config struct {
	// Window is the counting-bucket width (default 10 minutes — the
	// paper's fine-grained analysis granularity).
	Window time.Duration
	// HalfLife is the baseline memory in windows: an observation's
	// weight halves every HalfLife windows (default 36, six hours at
	// the default window).
	HalfLife int
	// ZOn and ZOff are the hysteresis thresholds on the novelty score
	// (defaults 8 and 3).
	ZOn, ZOff float64
	// MinCountKey/Peer/Global are per-channel absolute count floors a
	// window must also clear to open an alert (defaults 12, 24, 64).
	// Pathological classes (AADup, WWDup) use twice the floor: they are
	// the noisy bulk of a healthy-unhealthy 1996 stream.
	MinCountKey, MinCountPeer, MinCountGlobal float64
	// KeyPersistence is the number of consecutive anomalous windows a
	// ChanKey or ChanPeer series needs before an alert opens (default 2).
	// Legitimate flap episodes produce intense single-window bursts on one
	// (peer, prefix) key — the unjittered-timer interleave artifact — and
	// those bursts bleed into the per-peer aggregate too, while targeted
	// attacks sustain the churn across windows. The global and origin
	// channels stay immediate.
	KeyPersistence int
	// Warmup suppresses alerting until this much stream time has passed
	// the first event (default 36h), so the initial table transfer and
	// cold baselines cannot alert.
	Warmup time.Duration
	// MaxGap closes an alert after this many consecutive windows without
	// an anomalous observation (default 3).
	MaxGap int
	// EstablishAge is how old a prefix must be before a never-seen
	// origin for it is treated as a MOAS conflict rather than a
	// legitimate new origination (default 24h).
	EstablishAge time.Duration
	// OnAlert, when set, observes every closed alert as it is emitted
	// (alert-log persistence, live endpoints). Called from Advance or
	// Finish, on the feeder goroutine, in deterministic order.
	OnAlert func(Alert)
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 10 * time.Minute
	}
	if c.HalfLife <= 0 {
		c.HalfLife = 36
	}
	if c.ZOn == 0 {
		c.ZOn = 8
	}
	if c.ZOff == 0 {
		c.ZOff = 3
	}
	if c.MinCountKey == 0 {
		c.MinCountKey = 12
	}
	if c.MinCountPeer == 0 {
		c.MinCountPeer = 24
	}
	if c.MinCountGlobal == 0 {
		c.MinCountGlobal = 64
	}
	if c.KeyPersistence <= 0 {
		c.KeyPersistence = 2
	}
	if c.Warmup == 0 {
		c.Warmup = 36 * time.Hour
	}
	if c.MaxGap <= 0 {
		c.MaxGap = 3
	}
	if c.EstablishAge == 0 {
		c.EstablishAge = 24 * time.Hour
	}
	return c
}

// Alert is one detected anomaly episode: a run of anomalous windows on
// one key, closed after MaxGap quiet windows (or at Finish).
type Alert struct {
	Key Key `json:"-"`

	Channel string  `json:"channel"`
	Peer    bgp.ASN `json:"peer,omitempty"`
	Prefix  string  `json:"prefix,omitempty"`
	Class   string  `json:"class,omitempty"`
	// Start is the start of the first anomalous window; End the end of
	// the last.
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Windows is the number of anomalous windows in the episode.
	Windows int `json:"windows"`
	// Records is the event count summed over the anomalous windows.
	Records int64 `json:"records"`
	// Peak is the maximum novelty score (z for rate channels, the
	// window observation count for origin conflicts).
	Peak float64 `json:"peak"`
	// Baseline is the key's EWMA rate per window when the alert opened.
	Baseline float64 `json:"baseline"`
}

// windowPend accumulates one not-yet-finalized window's counts.
type windowPend struct {
	counts  map[Key]int64
	origins map[originObs]int64
}

type originObs struct {
	prefix netaddr.Prefix
	origin bgp.ASN
}

type activeAlert struct {
	startWin, lastWin int64
	windows           int
	records           int64
	peak              float64
	baseMean          float64
}

type baseline struct {
	mean, varr float64
	lastWin    int64
	// run counts consecutive anomalous windows not yet promoted to an
	// alert (the ChanKey persistence requirement).
	run int
	act *activeAlert
}

type originState struct {
	firstWin int64
	known    map[bgp.ASN]struct{}
}

// Detector metrics.
var (
	obsDetEvents = obs.Default().Counter("irtl_detect_events_total",
		"Classified events observed by the anomaly detector.")
	obsDetWindows = obs.Default().Counter("irtl_detect_windows_total",
		"Detection windows finalized across all keys.")
	obsDetActive = obs.Default().Gauge("irtl_detect_active_alerts",
		"Alert episodes currently open.")
	obsDetKeys = obs.Default().Gauge("irtl_detect_keys",
		"Monitored (channel, peer, prefix, class) series with a baseline.")
	obsDetAlerts = [...]*obs.Counter{
		ChanKey:    obs.Default().Counter("irtl_detect_alerts_total", "Alert episodes emitted.", obs.L("channel", "key")),
		ChanPeer:   obs.Default().Counter("irtl_detect_alerts_total", "Alert episodes emitted.", obs.L("channel", "peer")),
		ChanGlobal: obs.Default().Counter("irtl_detect_alerts_total", "Alert episodes emitted.", obs.L("channel", "global")),
		ChanOrigin: obs.Default().Counter("irtl_detect_alerts_total", "Alert episodes emitted.", obs.L("channel", "origin")),
	}
)

// Detector is the streaming anomaly detector. See the package comment for
// the concurrency contract.
type Detector struct {
	cfg     Config
	winNs   int64
	alpha   float64 // EWMA weight per window
	estWins int64   // EstablishAge in windows
	warmNs  int64

	mu        sync.Mutex
	pend      map[int64]*windowPend
	base      map[Key]*baseline
	alerting  map[Key]struct{}
	origins   map[netaddr.Prefix]*originState
	firstNano int64
	haveFirst bool
	finalized int64 // all windows < finalized are processed
	haveFinal bool
	alerts    []Alert
}

// New returns a detector with cfg (zero value = defaults).
func New(cfg Config) *Detector {
	cfg = cfg.withDefaults()
	d := &Detector{
		cfg:      cfg,
		winNs:    cfg.Window.Nanoseconds(),
		alpha:    1 - math.Exp(math.Ln2/float64(cfg.HalfLife)*-1),
		warmNs:   cfg.Warmup.Nanoseconds(),
		pend:     make(map[int64]*windowPend),
		base:     make(map[Key]*baseline),
		alerting: make(map[Key]struct{}),
		origins:  make(map[netaddr.Prefix]*originState),
	}
	d.estWins = int64(cfg.EstablishAge / cfg.Window)
	if d.estWins < 1 {
		d.estWins = 1
	}
	return d
}

// Config returns the detector's resolved configuration.
func (d *Detector) Config() Config { return d.cfg }

func (d *Detector) windowOf(t time.Time) int64 {
	ns := t.UnixNano()
	w := ns / d.winNs
	if ns < 0 && ns%d.winNs != 0 {
		w--
	}
	return w
}

// Add observes one classified event. Safe for concurrent use.
func (d *Detector) Add(ev core.Event) {
	rec := ev.Record
	switch rec.Type {
	case collector.Announce, collector.Withdraw:
	default:
		return
	}
	w := d.windowOf(rec.Time)
	ns := rec.Time.UnixNano()

	d.mu.Lock()
	defer d.mu.Unlock()
	obsDetEvents.Inc()
	if !d.haveFirst || ns < d.firstNano {
		d.firstNano, d.haveFirst = ns, true
	}
	pd := d.pend[w]
	if pd == nil {
		pd = &windowPend{counts: make(map[Key]int64)}
		d.pend[w] = pd
	}
	pd.counts[Key{Chan: ChanGlobal, Class: ev.Class}]++
	pd.counts[Key{Chan: ChanPeer, Peer: rec.PeerAS, Class: ev.Class}]++
	if ev.Class.IsForwarding() {
		pd.counts[Key{Chan: ChanKey, Peer: rec.PeerAS, Prefix: rec.Prefix, Class: ev.Class}]++
	}
	if rec.Type == collector.Announce {
		if origin, ok := rec.Attrs.Path.Origin(); ok {
			if pd.origins == nil {
				pd.origins = make(map[originObs]int64)
			}
			pd.origins[originObs{prefix: rec.Prefix, origin: origin}]++
		}
	}
}

// warmedAt reports whether windows starting at window w are past warmup.
func (d *Detector) warmedAt(w int64) bool {
	return d.haveFirst && w*d.winNs >= d.firstNano+d.warmNs
}

// minCount returns the absolute floor for (channel, class).
func (d *Detector) minCount(ch Channel, cl core.Class) float64 {
	var m float64
	switch ch {
	case ChanKey:
		m = d.cfg.MinCountKey
	case ChanPeer:
		m = d.cfg.MinCountPeer
	default:
		m = d.cfg.MinCountGlobal
	}
	if cl.IsPathological() {
		m *= 2
	}
	return m
}

// decayTo rolls b's baseline forward through zero-count windows up to (but
// not including) window w. Frozen while an alert is active.
func (d *Detector) decayTo(b *baseline, w int64) {
	if b.act != nil {
		b.lastWin = w
		return
	}
	gap := w - b.lastWin
	if gap <= 0 {
		return
	}
	// Consecutive windows (gap 1) have no silence between them; only the
	// gap-1 windows strictly between lastWin and w were zero-count.
	silent := gap - 1
	if silent > 0 {
		b.run = 0 // a silent window breaks any anomalous run
		if silent > 512 {
			// Beyond 512 halvings-worth of silence the baseline is
			// numerically dead; reset instead of looping.
			b.mean, b.varr = 0, 0
		} else {
			for i := int64(0); i < silent; i++ {
				diff := -b.mean
				incr := d.alpha * diff
				b.mean += incr
				b.varr = (1 - d.alpha) * (b.varr + diff*incr)
			}
		}
	}
	b.lastWin = w
}

// observe folds count x at window w into b (no alert active).
func (d *Detector) observe(b *baseline, w int64, x float64) {
	// Winsorize: clamp the observation at mean+4σ before folding it in, so
	// the decaying tail of a closed episode cannot inflate the variance
	// enough to mask the next surge (robust-EWMA practice).
	if cap := b.mean + 4*sigmaOf(b); x > cap {
		x = cap
	}
	diff := x - b.mean
	incr := d.alpha * diff
	b.mean += incr
	b.varr = (1 - d.alpha) * (b.varr + diff*incr)
	b.lastWin = w
}

// sigmaOf is the scoring deviation: sample σ floored by the Poisson √mean
// and an absolute floor of one record per window.
func sigmaOf(b *baseline) float64 {
	sigma := math.Sqrt(b.varr)
	if f := math.Sqrt(b.mean); f > sigma {
		sigma = f
	}
	if sigma < 1 {
		sigma = 1
	}
	return sigma
}

// score computes the novelty score of count x against baseline b.
func score(b *baseline, x float64) float64 {
	return (x - b.mean) / sigmaOf(b)
}

// evalCount processes one finalized (key, window, count) observation.
// Caller holds d.mu.
func (d *Detector) evalCount(k Key, w int64, x float64) {
	b := d.base[k]
	if b == nil {
		b = &baseline{lastWin: w}
		d.base[k] = b
	}
	d.decayTo(b, w)
	z := score(b, x)
	if act := b.act; act != nil {
		if z >= d.cfg.ZOff {
			act.lastWin = w
			act.windows++
			act.records += int64(x)
			if z > act.peak {
				act.peak = z
			}
			return
		}
		d.closeAlert(k, b)
		// The closing observation is ordinary traffic; learn it.
	}
	if z >= d.cfg.ZOn && x >= d.minCount(k.Chan, k.Class) && d.warmedAt(w) {
		need := 1
		if k.Chan == ChanKey || k.Chan == ChanPeer {
			need = d.cfg.KeyPersistence
		}
		b.run++
		b.lastWin = w // anomalous precursors freeze the baseline too
		if b.run < need {
			return
		}
		b.run = 0
		b.act = &activeAlert{
			startWin: w, lastWin: w,
			windows: 1, records: int64(x),
			peak: z, baseMean: b.mean,
		}
		d.alerting[k] = struct{}{}
		return
	}
	b.run = 0
	d.observe(b, w, x)
}

// evalOrigin processes one finalized (prefix, origin) sighting: the MOAS
// novelty rule. Caller holds d.mu.
func (d *Detector) evalOrigin(ob originObs, w int64, n int64) {
	os := d.origins[ob.prefix]
	if os == nil {
		d.origins[ob.prefix] = &originState{
			firstWin: w,
			known:    map[bgp.ASN]struct{}{ob.origin: {}},
		}
		return
	}
	if _, ok := os.known[ob.origin]; ok {
		return
	}
	if w-os.firstWin < d.estWins || !d.warmedAt(w) {
		// Young prefix or cold detector: accept the origin as
		// legitimate (new originations, initial transfer).
		os.known[ob.origin] = struct{}{}
		return
	}
	// A never-seen origin for an established prefix. The origin is NOT
	// added to the known set: while the conflict persists the alert
	// extends, and a recurrence after closure re-alerts.
	k := Key{Chan: ChanOrigin, Peer: ob.origin, Prefix: ob.prefix}
	b := d.base[k]
	if b == nil {
		b = &baseline{lastWin: w}
		d.base[k] = b
	}
	if act := b.act; act != nil {
		act.lastWin = w
		act.windows++
		act.records += n
		if float64(n) > act.peak {
			act.peak = float64(n)
		}
		return
	}
	b.act = &activeAlert{
		startWin: w, lastWin: w,
		windows: 1, records: n, peak: float64(n),
	}
	b.lastWin = w
	d.alerting[k] = struct{}{}
}

// closeAlert emits k's active episode. Caller holds d.mu.
func (d *Detector) closeAlert(k Key, b *baseline) {
	act := b.act
	b.act = nil
	b.lastWin = act.lastWin
	delete(d.alerting, k)

	a := Alert{
		Key:      k,
		Channel:  k.Chan.String(),
		Peer:     k.Peer,
		Start:    time.Unix(0, act.startWin*d.winNs).UTC(),
		End:      time.Unix(0, (act.lastWin+1)*d.winNs).UTC(),
		Windows:  act.windows,
		Records:  act.records,
		Peak:     act.peak,
		Baseline: act.baseMean,
	}
	if k.Prefix.IsValid() && k.Prefix != (netaddr.Prefix{}) {
		a.Prefix = k.Prefix.String()
	}
	if k.Chan != ChanOrigin {
		a.Class = k.Class.String()
	}
	d.alerts = append(d.alerts, a)
	obsDetAlerts[k.Chan].Inc()
	obsDetActive.SetInt(int64(len(d.alerting)))
	sp := obs.StartSpan("detect_alert")
	sp.Add(act.records)
	sp.End()
	if d.cfg.OnAlert != nil {
		d.cfg.OnAlert(a)
	}
}

// Advance finalizes every window that ends at or before now, evaluating
// pending counts in deterministic order and closing alerts whose keys
// have been quiet for MaxGap windows. Call from the feeder at barriers
// (e.g. day ends): all Adds for the finalized span must have completed.
func (d *Detector) Advance(now time.Time) {
	target := d.windowOf(now.Add(1)) // windows strictly before this are complete
	d.mu.Lock()
	defer d.mu.Unlock()
	d.advanceLocked(target)
}

func (d *Detector) advanceLocked(target int64) {
	if d.haveFinal && target <= d.finalized {
		return
	}
	wins := make([]int64, 0, len(d.pend))
	for w := range d.pend {
		if w < target {
			wins = append(wins, w)
		}
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i] < wins[j] })
	keys := make([]Key, 0, 64)
	obsList := make([]originObs, 0, 16)
	for _, w := range wins {
		pd := d.pend[w]
		delete(d.pend, w)
		keys = keys[:0]
		for k := range pd.counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
		for _, k := range keys {
			d.evalCount(k, w, float64(pd.counts[k]))
		}
		obsList = obsList[:0]
		for ob := range pd.origins {
			obsList = append(obsList, ob)
		}
		sort.Slice(obsList, func(i, j int) bool {
			a, b := obsList[i], obsList[j]
			if c := a.prefix.Compare(b.prefix); c != 0 {
				return c < 0
			}
			return a.origin < b.origin
		})
		for _, ob := range obsList {
			d.evalOrigin(ob, w, pd.origins[ob])
		}
		obsDetWindows.Inc()
		// Sweep after each window so an episode closes MaxGap quiet
		// windows after its last anomalous one, however coarse the
		// Advance cadence — a later burst must not be bridged into it.
		d.sweepLocked(w+1, int64(d.cfg.MaxGap))
	}
	// Close alerts that have gone quiet: MaxGap fully-finalized windows
	// with no anomalous observation.
	d.sweepLocked(target, int64(d.cfg.MaxGap))
	d.finalized, d.haveFinal = target, true
	obsDetKeys.SetInt(int64(len(d.base)))
	obsDetActive.SetInt(int64(len(d.alerting)))
}

// sweepLocked closes alerting keys quiet for at least gap windows before
// target.
func (d *Detector) sweepLocked(target, gap int64) {
	if len(d.alerting) == 0 {
		return
	}
	stale := make([]Key, 0, len(d.alerting))
	for k := range d.alerting {
		if b := d.base[k]; b.act != nil && b.act.lastWin+gap < target {
			stale = append(stale, k)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return keyLess(stale[i], stale[j]) })
	for _, k := range stale {
		d.closeAlert(k, d.base[k])
	}
}

// Finish finalizes every pending window and closes every open alert,
// returning the complete alert list. The detector remains usable for
// reads but should not be fed further.
func (d *Detector) Finish() []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	var target int64
	for w := range d.pend {
		if w+1 > target {
			target = w + 1
		}
	}
	if d.haveFinal && d.finalized > target {
		target = d.finalized
	}
	d.advanceLocked(target)
	d.sweepLocked(target, -1<<30) // close everything still open
	obsDetActive.SetInt(0)
	return d.alertsLocked()
}

// Alerts returns the alerts emitted so far, sorted by start time then key.
func (d *Detector) Alerts() []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.alertsLocked()
}

func (d *Detector) alertsLocked() []Alert {
	out := make([]Alert, len(d.alerts))
	copy(out, d.alerts)
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return keyLess(out[i].Key, out[j].Key)
	})
	return out
}

// ActiveAlerts returns the number of currently open episodes.
func (d *Detector) ActiveAlerts() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.alerting)
}
