package detect

import (
	"sync"
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/core"
	"instability/internal/netaddr"
)

// testConfig shrinks the windows so a lifecycle fits in a few hundred
// synthetic events: 1-minute windows, 30-minute warmup, 20-minute
// establishment age.
func testConfig() Config {
	return Config{
		Window:       time.Minute,
		HalfLife:     10,
		Warmup:       30 * time.Minute,
		EstablishAge: 20 * time.Minute,
	}
}

var t0 = time.Date(1996, 5, 1, 0, 0, 0, 0, time.UTC)

// withdrawEv builds a rate-channel event that stays off the origin channel.
func withdrawEv(t time.Time, peer bgp.ASN, prefix string, class core.Class) core.Event {
	return core.Event{
		Class: class,
		Record: collector.Record{
			Time: t, Type: collector.Withdraw,
			PeerAS: peer, Prefix: netaddr.MustParsePrefix(prefix),
		},
	}
}

// announceEv builds an announce with the given origin AS as its path.
func announceEv(t time.Time, peer, origin bgp.ASN, prefix string) core.Event {
	return core.Event{
		Class: core.AADup,
		Record: collector.Record{
			Time: t, Type: collector.Announce,
			PeerAS: peer, Prefix: netaddr.MustParsePrefix(prefix),
			Attrs: bgp.Attrs{Path: bgp.PathFromASNs(peer, origin)},
		},
	}
}

// feedRate adds n withdraw events of class cl spread through the window
// starting at ws.
func feedRate(d *Detector, ws time.Time, peer bgp.ASN, cl core.Class, n int) {
	step := time.Minute / time.Duration(n+1)
	for i := 0; i < n; i++ {
		d.Add(withdrawEv(ws.Add(time.Duration(i+1)*step), peer, "10.0.0.0/8", cl))
	}
}

func alertsOn(alerts []Alert, ch Channel) []Alert {
	var out []Alert
	for _, a := range alerts {
		if a.Key.Chan == ch {
			out = append(out, a)
		}
	}
	return out
}

// TestGlobalAlertLifecycle trains a steady global baseline, injects a
// three-window surge, and checks the emitted episode's shape: one alert,
// covering the surge windows, with the pre-surge baseline recorded.
func TestGlobalAlertLifecycle(t *testing.T) {
	d := New(testConfig())
	w := t0
	for i := 0; i < 60; i++ { // warmup + baseline training at 100/window
		feedRate(d, w, 7, core.WADup, 100)
		w = w.Add(time.Minute)
	}
	surgeStart := w
	for i := 0; i < 3; i++ {
		feedRate(d, w, 7, core.WADup, 1000)
		w = w.Add(time.Minute)
	}
	for i := 0; i < 10; i++ { // back to normal, then quiet closes it
		feedRate(d, w, 7, core.WADup, 100)
		w = w.Add(time.Minute)
	}
	d.Advance(w)
	alerts := alertsOn(d.Finish(), ChanGlobal)
	if len(alerts) != 1 {
		t.Fatalf("got %d global alerts %+v, want 1", len(alerts), alerts)
	}
	a := alerts[0]
	if !a.Start.Equal(surgeStart) {
		t.Errorf("alert start %s, want %s", a.Start, surgeStart)
	}
	if a.Windows != 3 || a.Records != 3000 {
		t.Errorf("alert windows=%d records=%d, want 3 and 3000", a.Windows, a.Records)
	}
	if a.Peak < d.Config().ZOn {
		t.Errorf("alert peak %.1f below ZOn %.1f", a.Peak, d.Config().ZOn)
	}
	// The baseline recorded at open is the trained pre-surge rate, and the
	// surge must not have taught the detector: it stays near 100.
	if a.Baseline < 80 || a.Baseline > 120 {
		t.Errorf("alert baseline %.1f, want ~100 (frozen during surge)", a.Baseline)
	}
}

// TestWarmupSuppressesAlerts injects the same surge inside the warmup
// window and expects silence.
func TestWarmupSuppressesAlerts(t *testing.T) {
	d := New(testConfig())
	w := t0
	for i := 0; i < 10; i++ {
		feedRate(d, w, 7, core.WADup, 100)
		w = w.Add(time.Minute)
	}
	for i := 0; i < 3; i++ { // minute 10-13: well inside the 30m warmup
		feedRate(d, w, 7, core.WADup, 1000)
		w = w.Add(time.Minute)
	}
	d.Advance(w)
	if alerts := d.Finish(); len(alerts) != 0 {
		t.Fatalf("got %d alerts during warmup, want 0: %+v", len(alerts), alerts)
	}
}

// TestKeyPersistence checks the ChanPeer two-window requirement: a
// single-window burst (the flap-interleave artifact) stays silent, a
// two-window burst alerts.
func TestKeyPersistence(t *testing.T) {
	runPeer := func(burstWindows int) []Alert {
		cfg := testConfig()
		cfg.MinCountGlobal = 1e9 // isolate the peer channel
		d := New(cfg)
		w := t0
		for i := 0; i < 60; i++ {
			feedRate(d, w, 7, core.WADup, 10)
			w = w.Add(time.Minute)
		}
		for i := 0; i < burstWindows; i++ {
			feedRate(d, w, 7, core.WADup, 300)
			w = w.Add(time.Minute)
		}
		for i := 0; i < 10; i++ {
			feedRate(d, w, 7, core.WADup, 10)
			w = w.Add(time.Minute)
		}
		d.Advance(w)
		return alertsOn(d.Finish(), ChanPeer)
	}
	if alerts := runPeer(1); len(alerts) != 0 {
		t.Errorf("single-window burst alerted: %+v", alerts)
	}
	if alerts := runPeer(2); len(alerts) != 1 {
		t.Errorf("got %d peer alerts for a 2-window burst, want 1: %+v", len(alerts), alerts)
	}
}

// TestOriginNovelty checks the MOAS channel: a new origin for an
// established prefix alerts; a new origin for a young prefix does not.
func TestOriginNovelty(t *testing.T) {
	d := New(testConfig())
	w := t0
	// Establish 10.0.0.0/8 from origin 100 through warmup + establish age.
	for i := 0; i < 60; i++ {
		d.Add(announceEv(w.Add(30*time.Second), 7, 100, "10.0.0.0/8"))
		w = w.Add(time.Minute)
	}
	// A young prefix appears, then gains a second origin immediately: fine.
	d.Add(announceEv(w.Add(10*time.Second), 7, 200, "192.168.0.0/16"))
	d.Add(announceEv(w.Add(20*time.Second), 8, 201, "192.168.0.0/16"))
	// The established prefix gains a never-seen origin: MOAS conflict.
	d.Add(announceEv(w.Add(30*time.Second), 8, 666, "10.0.0.0/8"))
	w = w.Add(time.Minute)
	d.Advance(w)
	alerts := alertsOn(d.Finish(), ChanOrigin)
	if len(alerts) != 1 {
		t.Fatalf("got %d origin alerts, want 1: %+v", len(alerts), alerts)
	}
	a := alerts[0]
	if a.Peer != 666 || a.Prefix != "10.0.0.0/8" {
		t.Errorf("origin alert names peer=%d prefix=%s, want 666 and 10.0.0.0/8", a.Peer, a.Prefix)
	}
}

// TestAdvanceIdempotent re-advances over already-finalized windows and
// expects no double-counting.
func TestAdvanceIdempotent(t *testing.T) {
	d := New(testConfig())
	w := t0
	for i := 0; i < 40; i++ {
		feedRate(d, w, 7, core.WADup, 50)
		w = w.Add(time.Minute)
	}
	d.Advance(w)
	d.Advance(w)
	d.Advance(w.Add(-20 * time.Minute)) // going backwards is a no-op
	if n := d.ActiveAlerts(); n != 0 {
		t.Fatalf("ActiveAlerts = %d after steady traffic, want 0", n)
	}
	if alerts := d.Finish(); len(alerts) != 0 {
		t.Fatalf("steady traffic alerted: %+v", alerts)
	}
}

// TestConcurrentAddHammer drives Add from many goroutines between Advance
// barriers with concurrent readers — the parallel pipeline's shape, run
// under -race in CI.
func TestConcurrentAddHammer(t *testing.T) {
	d := New(testConfig())
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d.Alerts()
				d.ActiveAlerts()
			}
		}
	}()
	w := t0
	for round := 0; round < 50; round++ {
		var feeders sync.WaitGroup
		for p := 0; p < 8; p++ {
			peer := bgp.ASN(100 + p)
			feeders.Add(1)
			go func() {
				defer feeders.Done()
				n := 20
				if round == 40 { // one surge round
					n = 400
				}
				feedRate(d, w, peer, core.WADup, n)
				d.Add(announceEv(w.Add(45*time.Second), peer, peer, "10.0.0.0/8"))
			}()
		}
		feeders.Wait() // the barrier: all Adds happen-before Advance
		w = w.Add(time.Minute)
		d.Advance(w)
	}
	close(stop)
	readers.Wait()
	d.Finish()
}

// BenchmarkDetectorAdd measures the per-event intake cost (one mutex
// round and up to three map bumps).
func BenchmarkDetectorAdd(b *testing.B) {
	d := New(Config{})
	evs := make([]core.Event, 4096)
	for i := range evs {
		evs[i] = withdrawEv(t0.Add(time.Duration(i)*200*time.Millisecond),
			bgp.ASN(100+i%16), "10.0.0.0/8", core.WADup)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Add(evs[i%len(evs)])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events_per_sec")
}

// BenchmarkDetectorAddParallel hammers the intake mutex from all cores —
// the shape of the sharded pipeline's Events hook.
func BenchmarkDetectorAddParallel(b *testing.B) {
	d := New(Config{})
	evs := make([]core.Event, 4096)
	for i := range evs {
		evs[i] = withdrawEv(t0.Add(time.Duration(i)*200*time.Millisecond),
			bgp.ASN(100+i%16), "10.0.0.0/8", core.WADup)
	}
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			d.Add(evs[i%len(evs)])
			i++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events_per_sec")
}

// BenchmarkDetectorWindow measures one finalized window end to end: 16
// peer series fed and advanced past, including baseline update and sweep.
func BenchmarkDetectorWindow(b *testing.B) {
	d := New(Config{})
	w := t0
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for p := 0; p < 16; p++ {
			d.Add(withdrawEv(w.Add(time.Second), bgp.ASN(100+p), "10.0.0.0/8", core.WADup))
		}
		w = w.Add(10 * time.Minute)
		d.Advance(w)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "windows_per_sec")
}
