package detect

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"instability/internal/bgp"
)

// Truth is one labeled ground-truth anomaly interval, emitted by the
// workload generator's adversarial scenarios.
type Truth struct {
	// Scenario names the injected scenario ("hijack", "leak", "poison",
	// "storm", "worm").
	Scenario string    `json:"scenario"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	// Peer is the adversarial AS (zero for global scenarios).
	Peer bgp.ASN `json:"peer,omitempty"`
	// Prefixes is the number of prefixes the episode touched, when
	// bounded (hijack, leak).
	Prefixes int `json:"prefixes,omitempty"`
}

// ScenarioScore is the per-scenario slice of an evaluation.
type ScenarioScore struct {
	Scenario string `json:"scenario"`
	// Truths is the number of injected episodes; Detected how many had
	// at least one overlapping alert.
	Truths   int `json:"truths"`
	Detected int `json:"detected"`
	// Alerts is the number of alerts attributed to this scenario.
	Alerts int `json:"alerts"`
	// Recall is Detected/Truths.
	Recall float64 `json:"recall"`
	// MeanLatency and MaxLatency measure, over detected episodes, the
	// delay from episode start to the earliest overlapping alert's
	// start (clamped at zero).
	MeanLatency time.Duration `json:"mean_latency"`
	MaxLatency  time.Duration `json:"max_latency"`
}

// Score is the result of matching an alert stream against ground truth.
type Score struct {
	Alerts         int     `json:"alerts"`
	TruePositives  int     `json:"true_positives"`
	FalsePositives int     `json:"false_positives"`
	Precision      float64 `json:"precision"`
	Recall         float64 `json:"recall"`
	// MeanLatency averages detection latency over all detected episodes.
	MeanLatency time.Duration   `json:"mean_latency"`
	Scenarios   []ScenarioScore `json:"scenarios"`
}

// String renders the score for CLI output.
func (s Score) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "alerts=%d tp=%d fp=%d precision=%.3f recall=%.3f mean_latency=%s",
		s.Alerts, s.TruePositives, s.FalsePositives, s.Precision, s.Recall, s.MeanLatency)
	for _, sc := range s.Scenarios {
		fmt.Fprintf(&b, "\n  %-8s truths=%d detected=%d alerts=%d recall=%.3f latency(mean=%s max=%s)",
			sc.Scenario, sc.Truths, sc.Detected, sc.Alerts, sc.Recall, sc.MeanLatency, sc.MaxLatency)
	}
	return b.String()
}

// Evaluate matches alerts against truth intervals: an alert is a true
// positive when it overlaps a truth interval widened by slack on both
// sides; an episode is detected when at least one alert overlaps it.
// Precision is over alerts, recall over truth episodes, and detection
// latency is the delay from episode start to its earliest alert.
func Evaluate(alerts []Alert, truths []Truth, slack time.Duration) Score {
	sc := Score{Alerts: len(alerts)}
	type agg struct {
		score     ScenarioScore
		latencies []time.Duration
	}
	byScenario := make(map[string]*agg)
	order := make([]string, 0, 8)
	for _, t := range truths {
		a := byScenario[t.Scenario]
		if a == nil {
			a = &agg{score: ScenarioScore{Scenario: t.Scenario}}
			byScenario[t.Scenario] = a
			order = append(order, t.Scenario)
		}
		a.score.Truths++
	}

	overlaps := func(al Alert, t Truth) bool {
		return al.Start.Before(t.End.Add(slack)) && al.End.After(t.Start.Add(-slack))
	}

	// Alert attribution: each alert matches the earliest-starting truth
	// interval it overlaps.
	matched := make([]bool, len(truths))
	earliest := make([]time.Time, len(truths))
	for _, al := range alerts {
		best := -1
		for i, t := range truths {
			if !overlaps(al, t) {
				continue
			}
			if best == -1 || t.Start.Before(truths[best].Start) {
				best = i
			}
		}
		if best == -1 {
			sc.FalsePositives++
			continue
		}
		sc.TruePositives++
		byScenario[truths[best].Scenario].score.Alerts++
		if !matched[best] || al.Start.Before(earliest[best]) {
			earliest[best] = al.Start
		}
		matched[best] = true
	}

	var totalLat time.Duration
	var detected int
	for i, t := range truths {
		if !matched[i] {
			continue
		}
		detected++
		lat := earliest[i].Sub(t.Start)
		if lat < 0 {
			lat = 0
		}
		totalLat += lat
		a := byScenario[t.Scenario]
		a.score.Detected++
		a.latencies = append(a.latencies, lat)
	}

	if sc.Alerts > 0 {
		sc.Precision = float64(sc.TruePositives) / float64(sc.Alerts)
	}
	if len(truths) > 0 {
		sc.Recall = float64(detected) / float64(len(truths))
	}
	if detected > 0 {
		sc.MeanLatency = totalLat / time.Duration(detected)
	}
	sort.Strings(order)
	for _, name := range order {
		a := byScenario[name]
		if a.score.Truths > 0 {
			a.score.Recall = float64(a.score.Detected) / float64(a.score.Truths)
		}
		var sum, max time.Duration
		for _, l := range a.latencies {
			sum += l
			if l > max {
				max = l
			}
		}
		if n := len(a.latencies); n > 0 {
			a.score.MeanLatency = sum / time.Duration(n)
			a.score.MaxLatency = max
		}
		sc.Scenarios = append(sc.Scenarios, a.score)
	}
	return sc
}
