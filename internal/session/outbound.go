package session

import (
	"time"

	"instability/internal/bgp"
	"instability/internal/intern"
	"instability/internal/netaddr"
)

// Announce queues an announcement of prefix with the given attributes toward
// the peer. Successive calls for the same prefix within one MRAI interval
// supersede each other; only the latest state is flushed.
func (p *Peer) Announce(prefix netaddr.Prefix, attrs bgp.Attrs) {
	delete(p.pendingWd, prefix)
	p.pendingAnn[prefix] = attrs
	p.kickFlush()
}

// Withdraw queues a withdrawal of prefix toward the peer.
//
// A stateless implementation queues the withdrawal unconditionally — even if
// the prefix was never advertised to this peer — reproducing the paper's
// WWDup-generating vendor behavior. A stateful implementation consults its
// Adj-RIB-Out and drops withdrawals for prefixes the peer was never told
// about.
func (p *Peer) Withdraw(prefix netaddr.Prefix) {
	_, wasPending := p.pendingAnn[prefix]
	delete(p.pendingAnn, prefix)
	if !p.cfg.Stateless {
		_, wasAdvertised := p.advertised[prefix]
		if !wasAdvertised && !wasPending {
			return
		}
	}
	p.pendingWd[prefix] = struct{}{}
	p.kickFlush()
}

// Advertised reports whether the Adj-RIB-Out currently records prefix as
// announced to the peer. Stateless sessions keep no such record and always
// report false.
func (p *Peer) Advertised(prefix netaddr.Prefix) bool {
	if p.cfg.Stateless {
		return false
	}
	_, ok := p.advertised[prefix]
	return ok
}

// PendingChanges returns the number of queued, unflushed route changes.
func (p *Peer) PendingChanges() int { return len(p.pendingAnn) + len(p.pendingWd) }

// kickFlush arranges for pending changes to be transmitted: immediately when
// MRAI is zero, otherwise on the free-running interval timer started at
// session establishment.
func (p *Peer) kickFlush() {
	if p.state != Established {
		return
	}
	if p.cfg.MRAI == 0 && p.mraiTimer == nil {
		gen := p.generation
		p.mraiTimer = p.clock.After(0, func() {
			if p.generation != gen {
				return
			}
			p.mraiTimer = nil
			p.Flush()
		})
	}
}

// scheduleMRAI starts the free-running interval timer. A fixed (unjittered)
// period is exactly the vendor timer the paper identifies; per-tick jitter is
// the remedy.
func (p *Peer) scheduleMRAI() {
	if p.cfg.MRAI == 0 {
		return
	}
	gen := p.generation
	var tick func()
	tick = func() {
		if p.generation != gen || p.state != Established {
			return
		}
		p.Flush()
		p.mraiTimer = p.clock.After(p.clock.Jitter(p.cfg.MRAI, p.cfg.MRAIJitter), tick)
	}
	p.mraiTimer = p.clock.After(p.clock.Jitter(p.cfg.MRAI, p.cfg.MRAIJitter), tick)
}

// Flush transmits all pending changes now, packing them into as few UPDATE
// messages as fit. It is normally driven by the MRAI timer but may be called
// directly (e.g. for the initial table dump right after establishment).
func (p *Peer) Flush() {
	if p.state != Established || (len(p.pendingAnn) == 0 && len(p.pendingWd) == 0) {
		return
	}
	p.stats.FlushCount++

	withdrawals := make([]netaddr.Prefix, 0, len(p.pendingWd))
	for pre := range p.pendingWd {
		if !p.cfg.Stateless {
			if _, ok := p.advertised[pre]; !ok {
				continue // peer never heard of it; suppress the duplicate
			}
		}
		withdrawals = append(withdrawals, pre)
	}
	bgp.SortPrefixes(withdrawals)

	// Group announcements by identical attribute sets so they share one
	// UPDATE, as real speakers pack them. Interned handle identity is the
	// grouping key — one table probe per prefix, no key-string construction.
	// Groups keep the order their first prefix appears in the sorted prefix
	// list, so emission is deterministic.
	type annGroup struct {
		attrs bgp.Attrs
		pres  []netaddr.Prefix
	}
	groupOf := make(map[*intern.Handle]int)
	var groups []annGroup
	annPrefixes := make([]netaddr.Prefix, 0, len(p.pendingAnn))
	for pre := range p.pendingAnn {
		annPrefixes = append(annPrefixes, pre)
	}
	bgp.SortPrefixes(annPrefixes)
	for _, pre := range annPrefixes {
		attrs := p.pendingAnn[pre]
		if p.cfg.CompareLastSent && !p.cfg.Stateless {
			if prev, ok := p.advertised[pre]; ok && prev.PolicyEqual(attrs) {
				continue // identical to what the peer holds; suppress
			}
		}
		h := p.tab.Attrs(attrs)
		gi, ok := groupOf[h]
		if !ok {
			gi = len(groups)
			groups = append(groups, annGroup{attrs: h.Attrs()})
			groupOf[h] = gi
		}
		groups[gi].pres = append(groups[gi].pres, pre)
	}

	// Record Adj-RIB-Out effects (stateful only).
	if !p.cfg.Stateless {
		for _, pre := range withdrawals {
			delete(p.advertised, pre)
		}
		for _, g := range groups {
			for _, pre := range g.pres {
				p.advertised[pre] = p.pendingAnn[pre]
			}
		}
	}
	p.pendingAnn = make(map[netaddr.Prefix]bgp.Attrs)
	p.pendingWd = make(map[netaddr.Prefix]struct{})

	// Emit withdrawals, chunked to honor the 4096-octet message limit.
	const maxPerMsg = 800 // conservative: 5 octets per /32 NLRI
	for len(withdrawals) > 0 {
		n := len(withdrawals)
		if n > maxPerMsg {
			n = maxPerMsg
		}
		p.send(bgp.Update{Withdrawn: withdrawals[:n]})
		withdrawals = withdrawals[n:]
	}

	// Emit announcement groups in deterministic first-seen order (the
	// prefixes were sorted before grouping).
	for _, g := range groups {
		pres := g.pres
		for len(pres) > 0 {
			n := len(pres)
			if n > maxPerMsg {
				n = maxPerMsg
			}
			p.send(bgp.Update{Attrs: g.attrs, Announced: pres[:n]})
			pres = pres[n:]
		}
	}
}

// HoldTimeNegotiated returns the negotiated hold time (zero before OPEN
// exchange or when keepalives are disabled).
func (p *Peer) HoldTimeNegotiated() time.Duration { return p.holdTime }
