package session

import (
	"errors"
	"time"

	"instability/internal/bgp"
	"instability/internal/events"
	"instability/internal/faults"
)

// Pipe couples two Peers through the discrete-event simulator with a fixed
// one-way propagation delay, standing in for the TCP connection between two
// border routers at an exchange point.
//
// Construct the Pipe first, build each Peer with the corresponding
// SendA/SendB function as its Callbacks.Send, then call Bind and Up.
type Pipe struct {
	sim   *events.Sim
	delay time.Duration
	a, b  *Peer
	up    bool
	// Verify marshals and re-parses every message in flight, so simulated
	// traffic exercises the full wire codec. Off by default for speed.
	Verify bool
	// Chaos, when non-nil, consults a seeded fault plan on every transmit:
	// messages may be dropped, duplicated, or delayed, and a reset tears the
	// whole link down (both FSMs see TransportDown). Nil means a faithful
	// link.
	Chaos *faults.Transport
	// Delivered counts messages that completed transit in each direction.
	DeliveredAB, DeliveredBA int
	epoch                    uint64 // invalidates in-flight messages on Down
}

// NewPipe returns a Pipe over sim with the given one-way delay.
func NewPipe(sim *events.Sim, delay time.Duration) *Pipe {
	return &Pipe{sim: sim, delay: delay}
}

// Bind attaches the two endpoints. It must be called before Up.
func (l *Pipe) Bind(a, b *Peer) {
	l.a, l.b = a, b
}

// Up marks the transport connected and informs both FSMs.
func (l *Pipe) Up() {
	if l.a == nil || l.b == nil {
		panic("session: Pipe.Up before Bind")
	}
	l.up = true
	l.a.TransportUp()
	l.b.TransportUp()
}

// IsUp reports whether the transport is currently connected.
func (l *Pipe) IsUp() bool { return l.up }

// ErrLinkDown is delivered to both FSMs when the pipe fails.
var ErrLinkDown = errors.New("session: transport link down")

// Down fails the transport: in-flight messages are lost and both FSMs see
// TransportDown. The peers' ConnectRetry machinery will later call Connect;
// the environment decides when to call Up again.
func (l *Pipe) Down() {
	if !l.up {
		return
	}
	l.up = false
	l.epoch++
	l.a.TransportDown(ErrLinkDown)
	l.b.TransportDown(ErrLinkDown)
}

// SendA is the Callbacks.Send for the A-side peer.
func (l *Pipe) SendA(msg bgp.Message) { l.transmit(msg, true) }

// SendB is the Callbacks.Send for the B-side peer.
func (l *Pipe) SendB(msg bgp.Message) { l.transmit(msg, false) }

func (l *Pipe) transmit(msg bgp.Message, fromA bool) {
	if !l.up {
		return
	}
	if l.Verify {
		wire, err := bgp.Marshal(msg)
		if err != nil {
			panic("session: unmarshalable message offered to pipe: " + err.Error())
		}
		decoded, err := bgp.Unmarshal(wire)
		if err != nil {
			panic("session: wire round-trip failed: " + err.Error())
		}
		msg = decoded
	}
	delay, copies := l.delay, 1
	if l.Chaos != nil {
		d := l.Chaos.Decide()
		switch {
		case d.Reset:
			// Fail the link from a fresh event, not from inside the FSM
			// action that is sending this message: Down re-enters both FSMs.
			l.sim.Schedule(0, l.Down)
			return
		case d.Drop:
			return
		case d.Dup:
			copies = 2
		}
		delay += d.Extra
	}
	epoch := l.epoch
	for c := 0; c < copies; c++ {
		l.sim.Schedule(delay, func() {
			if !l.up || l.epoch != epoch {
				return // lost in transit
			}
			if fromA {
				l.DeliveredAB++
				l.b.Deliver(msg)
			} else {
				l.DeliveredBA++
				l.a.Deliver(msg)
			}
		})
	}
}

// Establish runs the standard bring-up sequence for a freshly built pair:
// Start both peers, connect the transport, and advance the simulator until
// both report Established (or the deadline passes). It reports success.
func Establish(sim *events.Sim, l *Pipe, a, b *Peer, deadline time.Duration) bool {
	a.Start()
	b.Start()
	l.Up()
	horizon := sim.Now().Add(deadline)
	for sim.Now().Before(horizon) {
		if a.State() == Established && b.State() == Established {
			return true
		}
		if sim.RunFor(l.delay+time.Millisecond) == 0 && sim.Pending() == 0 {
			break
		}
	}
	return a.State() == Established && b.State() == Established
}
