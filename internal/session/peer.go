package session

import (
	"errors"
	"fmt"
	"time"

	"instability/internal/bgp"
	"instability/internal/intern"
	"instability/internal/netaddr"
)

// State is a BGP FSM state (RFC 1771 §8).
type State int

// FSM states.
const (
	Idle State = iota
	Connect
	Active
	OpenSent
	OpenConfirm
	Established
)

// String returns the RFC name of s.
func (s State) String() string {
	switch s {
	case Idle:
		return "Idle"
	case Connect:
		return "Connect"
	case Active:
		return "Active"
	case OpenSent:
		return "OpenSent"
	case OpenConfirm:
		return "OpenConfirm"
	case Established:
		return "Established"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Default protocol timer values.
const (
	DefaultHoldTime     = 180 * time.Second
	DefaultMRAI         = 30 * time.Second
	DefaultConnectRetry = 120 * time.Second
	openHoldTime        = 4 * time.Minute
)

// Config parameterizes one side of a peering session.
type Config struct {
	LocalAS bgp.ASN
	LocalID netaddr.Addr

	// HoldTime is the proposed hold time (default 180 s). The session uses
	// the minimum of both sides' proposals; keepalives go out at a third of
	// the negotiated value.
	HoldTime time.Duration

	// MRAI is the MinRouteAdvertisementInterval: outbound changes are
	// batched and flushed on this period (default 30 s). Zero flushes
	// immediately.
	MRAI time.Duration

	// MRAIJitter is the fractional jitter applied to each MRAI period.
	// Zero reproduces the unjittered vendor timer the paper implicates in
	// the 30-second periodicity and self-synchronization.
	MRAIJitter float64

	// Stateless selects the paper's "stateless BGP" implementation: the
	// router keeps no Adj-RIB-Out and transmits withdrawals to all peers for
	// every withdrawn prefix, announced to them or not.
	Stateless bool

	// CompareLastSent, in stateful mode, suppresses flushes that would
	// re-send exactly what the peer already holds (the post-fix vendor
	// software the paper describes deploying).
	CompareLastSent bool

	// ConnectRetry is the delay before re-initiating a failed session
	// (default 120 s).
	ConnectRetry time.Duration

	// Passive suppresses connection initiation; the peer waits for the
	// remote side (route-server collectors listen passively).
	Passive bool
}

func (c Config) withDefaults() Config {
	if c.HoldTime == 0 {
		c.HoldTime = DefaultHoldTime
	}
	if c.ConnectRetry == 0 {
		c.ConnectRetry = DefaultConnectRetry
	}
	return c
}

// StatelessVendorConfig returns the configuration matching the router
// implementation the paper blames for WWDup floods: no per-peer state and a
// fixed, unjittered 30-second interval timer.
func StatelessVendorConfig(as bgp.ASN, id netaddr.Addr) Config {
	return Config{LocalAS: as, LocalID: id, MRAI: DefaultMRAI, Stateless: true}
}

// StatefulVendorConfig returns the post-fix configuration: per-peer
// Adj-RIB-Out state, duplicate suppression, and a jittered timer.
func StatefulVendorConfig(as bgp.ASN, id netaddr.Addr) Config {
	return Config{LocalAS: as, LocalID: id, MRAI: DefaultMRAI, MRAIJitter: 0.25, CompareLastSent: true}
}

// Callbacks connect the FSM to its environment. Send and Connect must be
// non-nil before Start; the rest are optional.
type Callbacks struct {
	// Send transmits a marshaled-ready message toward the peer.
	Send func(bgp.Message)
	// Connect asks the environment to bring the transport up (ignored for
	// passive sessions). The environment later calls TransportUp or
	// TransportDown.
	Connect func()
	// CloseTransport tears the transport down.
	CloseTransport func()
	// Established fires when the session reaches Established.
	Established func()
	// Down fires when an established or establishing session fails.
	Down func(err error)
	// Update delivers a received UPDATE to the routing layer.
	Update func(u bgp.Update)
	// KeepaliveDelay, if set, returns extra delay added to each outbound
	// keepalive — the hook the router model uses to starve keepalives under
	// CPU overload, which is how route flap storms ignite.
	KeepaliveDelay func() time.Duration
}

// Stats counts session activity.
type Stats struct {
	MsgsSent, MsgsReceived       int
	UpdatesSent, UpdatesReceived int
	AnnSent, WdSent              int
	AnnReceived, WdReceived      int
	EstablishedCount, DropCount  int
	FlushCount                   int
}

// Peer is one endpoint of a BGP session. All methods must be called from a
// single serialization domain (the simulator loop, or under Runner's lock).
type Peer struct {
	cfg   Config
	clock Clock
	cb    Callbacks

	state    State
	holdTime time.Duration
	peerAS   bgp.ASN
	peerID   netaddr.Addr

	holdTimer    Canceler
	keepTimer    Canceler
	connectTimer Canceler
	mraiTimer    Canceler

	pendingAnn map[netaddr.Prefix]bgp.Attrs
	pendingWd  map[netaddr.Prefix]struct{}
	advertised map[netaddr.Prefix]bgp.Attrs
	// tab interns outbound attribute tuples so Flush groups announcements
	// into shared UPDATEs by handle identity instead of building a key
	// string per prefix per flush.
	tab *intern.Table

	stats Stats
	// generation invalidates stale timer callbacks after a reset.
	generation uint64
}

// New constructs a peer session endpoint.
func New(cfg Config, clock Clock, cb Callbacks) *Peer {
	if cb.Send == nil {
		panic("session: Callbacks.Send is required")
	}
	p := &Peer{
		cfg:        cfg.withDefaults(),
		clock:      clock,
		cb:         cb,
		pendingAnn: make(map[netaddr.Prefix]bgp.Attrs),
		pendingWd:  make(map[netaddr.Prefix]struct{}),
		advertised: make(map[netaddr.Prefix]bgp.Attrs),
		tab:        intern.New(),
	}
	return p
}

// State returns the current FSM state.
func (p *Peer) State() State { return p.state }

// Stats returns a copy of the session counters.
func (p *Peer) Stats() Stats { return p.stats }

// PeerAS returns the neighbor's AS number as learned from its OPEN (zero
// before the OPEN exchange).
func (p *Peer) PeerAS() bgp.ASN { return p.peerAS }

// PeerID returns the neighbor's BGP identifier from its OPEN.
func (p *Peer) PeerID() netaddr.Addr { return p.peerID }

// Config returns the session configuration.
func (p *Peer) Config() Config { return p.cfg }

// Start moves the session out of Idle and, for active sessions, initiates
// the transport.
func (p *Peer) Start() {
	if p.state != Idle {
		return
	}
	if p.cfg.Passive {
		p.state = Active
		return
	}
	p.state = Connect
	p.tryConnect()
}

// tryConnect asks the environment for a transport and keeps retrying on the
// ConnectRetry interval while the session sits in Connect.
func (p *Peer) tryConnect() {
	if p.cb.Connect != nil {
		p.cb.Connect()
	}
	gen := p.generation
	p.stopTimer(&p.connectTimer)
	p.connectTimer = p.clock.After(p.cfg.ConnectRetry, func() {
		if p.generation == gen && p.state == Connect {
			p.tryConnect()
		}
	})
}

// TransportUp signals that the underlying transport is connected; the FSM
// sends OPEN and waits for the peer's.
func (p *Peer) TransportUp() {
	if p.state != Connect && p.state != Active && p.state != Idle {
		return
	}
	p.stopTimer(&p.connectTimer)
	p.state = OpenSent
	p.send(bgp.Open{
		Version:  bgp.Version,
		AS:       uint16(p.cfg.LocalAS),
		HoldTime: uint16(p.cfg.HoldTime / time.Second),
		BGPID:    p.cfg.LocalID,
	})
	p.resetHoldTimer(openHoldTime)
}

// TransportDown signals transport loss. The session drops to Idle and
// schedules a reconnect.
func (p *Peer) TransportDown(err error) {
	if p.state == Idle {
		return
	}
	p.drop(err, false)
}

// ErrHoldTimerExpired is reported through Callbacks.Down when the peer went
// silent past the negotiated hold time.
var ErrHoldTimerExpired = errors.New("session: hold timer expired")

// Deliver injects a received message into the FSM.
func (p *Peer) Deliver(msg bgp.Message) {
	p.stats.MsgsReceived++
	switch m := msg.(type) {
	case bgp.Open:
		p.handleOpen(m)
	case bgp.Keepalive:
		p.handleKeepalive()
	case bgp.Update:
		p.handleUpdate(m)
	case bgp.Notification:
		p.drop(m, false)
	default:
		p.notifyAndDrop(bgp.Notification{Code: bgp.NotifMessageHeaderError})
	}
}

func (p *Peer) handleOpen(m bgp.Open) {
	if p.state != OpenSent && p.state != Active {
		p.notifyAndDrop(bgp.Notification{Code: bgp.NotifFSMError})
		return
	}
	if p.state == Active {
		// Passive side: the remote connected and opened first; respond.
		p.state = OpenSent
		p.send(bgp.Open{
			Version:  bgp.Version,
			AS:       uint16(p.cfg.LocalAS),
			HoldTime: uint16(p.cfg.HoldTime / time.Second),
			BGPID:    p.cfg.LocalID,
		})
	}
	if m.Version != bgp.Version {
		p.notifyAndDrop(bgp.Notification{Code: bgp.NotifOpenMessageError, Subcode: 1})
		return
	}
	if m.AS == 0 {
		p.notifyAndDrop(bgp.Notification{Code: bgp.NotifOpenMessageError, Subcode: 2})
		return
	}
	p.peerAS = bgp.ASN(m.AS)
	p.peerID = m.BGPID
	p.holdTime = p.cfg.HoldTime
	if peerHold := time.Duration(m.HoldTime) * time.Second; peerHold < p.holdTime {
		p.holdTime = peerHold
	}
	p.send(bgp.Keepalive{})
	p.state = OpenConfirm
	if p.holdTime > 0 {
		p.resetHoldTimer(p.holdTime)
	}
}

func (p *Peer) handleKeepalive() {
	switch p.state {
	case OpenConfirm:
		p.state = Established
		p.stats.EstablishedCount++
		if p.holdTime > 0 {
			p.resetHoldTimer(p.holdTime)
			p.scheduleKeepalive()
		}
		p.scheduleMRAI()
		if p.cb.Established != nil {
			p.cb.Established()
		}
	case Established:
		if p.holdTime > 0 {
			p.resetHoldTimer(p.holdTime)
		}
	default:
		p.notifyAndDrop(bgp.Notification{Code: bgp.NotifFSMError})
	}
}

func (p *Peer) handleUpdate(m bgp.Update) {
	if p.state != Established {
		p.notifyAndDrop(bgp.Notification{Code: bgp.NotifFSMError})
		return
	}
	p.stats.UpdatesReceived++
	p.stats.AnnReceived += len(m.Announced)
	p.stats.WdReceived += len(m.Withdrawn)
	if p.holdTime > 0 {
		p.resetHoldTimer(p.holdTime)
	}
	if p.cb.Update != nil {
		p.cb.Update(m)
	}
}

func (p *Peer) send(msg bgp.Message) {
	p.stats.MsgsSent++
	if u, ok := msg.(bgp.Update); ok {
		p.stats.UpdatesSent++
		p.stats.AnnSent += len(u.Announced)
		p.stats.WdSent += len(u.Withdrawn)
	}
	p.cb.Send(msg)
}

func (p *Peer) notifyAndDrop(n bgp.Notification) {
	p.send(n)
	p.drop(n, true)
}

// drop tears the session down to Idle and schedules a reconnect.
func (p *Peer) drop(err error, _ bool) {
	wasUp := p.state == Established
	p.state = Idle
	p.generation++
	p.stopTimer(&p.holdTimer)
	p.stopTimer(&p.keepTimer)
	p.stopTimer(&p.mraiTimer)
	p.stopTimer(&p.connectTimer)
	// A restarted session re-sends its entire table ("large state dump"), so
	// both pending and advertised state are discarded here; the routing
	// layer repopulates on the next Established.
	p.pendingAnn = make(map[netaddr.Prefix]bgp.Attrs)
	p.pendingWd = make(map[netaddr.Prefix]struct{})
	p.advertised = make(map[netaddr.Prefix]bgp.Attrs)
	if p.cb.CloseTransport != nil {
		p.cb.CloseTransport()
	}
	if wasUp {
		p.stats.DropCount++
	}
	if p.cb.Down != nil {
		p.cb.Down(err)
	}
	// Automatic restart.
	gen := p.generation
	p.connectTimer = p.clock.After(p.cfg.ConnectRetry, func() {
		if p.generation == gen && p.state == Idle {
			p.Start()
		}
	})
}

func (p *Peer) stopTimer(t *Canceler) {
	if *t != nil {
		(*t).Stop()
		*t = nil
	}
}

func (p *Peer) resetHoldTimer(d time.Duration) {
	p.stopTimer(&p.holdTimer)
	gen := p.generation
	p.holdTimer = p.clock.After(d, func() {
		if p.generation != gen {
			return
		}
		p.send(bgp.Notification{Code: bgp.NotifHoldTimerExpired})
		p.drop(ErrHoldTimerExpired, true)
	})
}

func (p *Peer) scheduleKeepalive() {
	interval := p.holdTime / 3
	if interval <= 0 {
		return
	}
	gen := p.generation
	var tick func()
	tick = func() {
		if p.generation != gen || p.state != Established {
			return
		}
		delay := time.Duration(0)
		if p.cb.KeepaliveDelay != nil {
			delay = p.cb.KeepaliveDelay()
		}
		if delay > 0 {
			// CPU-starved router: the keepalive goes out late. If the delay
			// pushes past the peer's hold time the session will die — the
			// flap-storm ignition the paper describes.
			p.keepTimer = p.clock.After(delay, func() {
				if p.generation != gen || p.state != Established {
					return
				}
				p.send(bgp.Keepalive{})
				p.keepTimer = p.clock.After(interval, tick)
			})
			return
		}
		p.send(bgp.Keepalive{})
		p.keepTimer = p.clock.After(interval, tick)
	}
	p.keepTimer = p.clock.After(interval, tick)
}
