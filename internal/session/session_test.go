package session

import (
	"net"
	"testing"
	"time"

	"instability/internal/bgp"
	"instability/internal/events"
	"instability/internal/netaddr"
)

func pfx(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

func attrs(nh uint32, path ...bgp.ASN) bgp.Attrs {
	return bgp.Attrs{Origin: bgp.OriginIGP, Path: bgp.PathFromASNs(path...), NextHop: netaddr.Addr(nh)}
}

// pair builds two peers over a verified pipe and establishes the session.
type pair struct {
	sim  *events.Sim
	pipe *Pipe
	a, b *Peer
	// received updates per side
	gotA, gotB []bgp.Update
	downA      []error
}

func newPair(t *testing.T, cfgA, cfgB Config) *pair {
	t.Helper()
	sim := events.New(1)
	p := &pair{sim: sim, pipe: NewPipe(sim, 5*time.Millisecond)}
	p.pipe.Verify = true
	p.a = New(cfgA, SimClock(sim, "a"), Callbacks{
		Send:   p.pipe.SendA,
		Update: func(u bgp.Update) { p.gotA = append(p.gotA, u) },
		Down:   func(err error) { p.downA = append(p.downA, err) },
	})
	p.b = New(cfgB, SimClock(sim, "b"), Callbacks{
		Send:   p.pipe.SendB,
		Update: func(u bgp.Update) { p.gotB = append(p.gotB, u) },
	})
	p.pipe.Bind(p.a, p.b)
	if !Establish(sim, p.pipe, p.a, p.b, time.Minute) {
		t.Fatalf("session did not establish: a=%v b=%v", p.a.State(), p.b.State())
	}
	return p
}

func cfg(as bgp.ASN, id uint32) Config {
	return Config{LocalAS: as, LocalID: netaddr.Addr(id), MRAI: 30 * time.Second}
}

func TestEstablishment(t *testing.T) {
	p := newPair(t, cfg(690, 1), cfg(701, 2))
	if p.a.State() != Established || p.b.State() != Established {
		t.Fatal("not established")
	}
	if p.a.Stats().EstablishedCount != 1 {
		t.Fatalf("established count %d", p.a.Stats().EstablishedCount)
	}
	if p.a.HoldTimeNegotiated() != DefaultHoldTime {
		t.Fatalf("hold time %v", p.a.HoldTimeNegotiated())
	}
}

func TestHoldTimeNegotiatesToMinimum(t *testing.T) {
	ca := cfg(690, 1)
	ca.HoldTime = 90 * time.Second
	cb := cfg(701, 2)
	cb.HoldTime = 180 * time.Second
	p := newPair(t, ca, cb)
	if p.a.HoldTimeNegotiated() != 90*time.Second || p.b.HoldTimeNegotiated() != 90*time.Second {
		t.Fatalf("hold %v / %v", p.a.HoldTimeNegotiated(), p.b.HoldTimeNegotiated())
	}
}

func TestKeepalivesSustainSession(t *testing.T) {
	p := newPair(t, cfg(690, 1), cfg(701, 2))
	p.sim.RunFor(time.Hour)
	if p.a.State() != Established || p.b.State() != Established {
		t.Fatal("session dropped despite keepalives")
	}
	if len(p.downA) != 0 {
		t.Fatalf("unexpected downs: %v", p.downA)
	}
}

func TestKeepaliveStarvationDropsSession(t *testing.T) {
	sim := events.New(2)
	pipe := NewPipe(sim, 5*time.Millisecond)
	// Peer A delays every keepalive beyond the hold time — the CPU-starved
	// router of the paper's flap-storm narrative.
	var downB error
	a := New(cfg(690, 1), SimClock(sim, "a"), Callbacks{
		Send:           pipe.SendA,
		KeepaliveDelay: func() time.Duration { return 5 * time.Minute },
	})
	b := New(cfg(701, 2), SimClock(sim, "b"), Callbacks{
		Send: pipe.SendB,
		Down: func(err error) { downB = err },
	})
	pipe.Bind(a, b)
	if !Establish(sim, pipe, a, b, time.Minute) {
		t.Fatal("no establishment")
	}
	sim.RunFor(10 * time.Minute)
	if downB == nil {
		t.Fatal("B should have dropped the session on hold timer expiry")
	}
	if b.Stats().DropCount == 0 {
		t.Fatal("drop not counted")
	}
}

func TestAnnounceFlushesOnMRAI(t *testing.T) {
	p := newPair(t, cfg(690, 1), cfg(701, 2))
	p.a.Announce(pfx("35.0.0.0/8"), attrs(1, 690, 237))
	p.a.Announce(pfx("141.213.0.0/16"), attrs(1, 690, 237))
	p.a.Announce(pfx("198.108.0.0/16"), attrs(2, 690, 177))
	if len(p.gotB) != 0 {
		t.Fatal("nothing should arrive before the MRAI fires")
	}
	p.sim.RunFor(31 * time.Second)
	// Two attribute groups → two UPDATE messages, first carrying two NLRI.
	if len(p.gotB) != 2 {
		t.Fatalf("got %d updates", len(p.gotB))
	}
	total := 0
	for _, u := range p.gotB {
		total += len(u.Announced)
	}
	if total != 3 {
		t.Fatalf("total NLRI %d", total)
	}
	if !p.a.Advertised(pfx("35.0.0.0/8")) {
		t.Fatal("adj-rib-out not recorded")
	}
}

func TestImmediateFlushWithZeroMRAI(t *testing.T) {
	ca := cfg(690, 1)
	ca.MRAI = 0
	p := newPair(t, ca, cfg(701, 2))
	p.a.Announce(pfx("35.0.0.0/8"), attrs(1, 690, 237))
	p.sim.RunFor(time.Second)
	if len(p.gotB) != 1 {
		t.Fatalf("got %d updates", len(p.gotB))
	}
}

func TestWithdrawSupersedesPendingAnnounce(t *testing.T) {
	p := newPair(t, cfg(690, 1), cfg(701, 2))
	// Announce then withdraw within one interval, starting from nothing
	// advertised: stateful peers send nothing at all.
	p.a.Announce(pfx("35.0.0.0/8"), attrs(1, 690, 237))
	p.a.Withdraw(pfx("35.0.0.0/8"))
	p.sim.RunFor(31 * time.Second)
	if got := p.a.Stats().WdSent; got != 0 {
		t.Fatalf("stateful peer sent %d withdrawals for a never-advertised route", got)
	}
	if len(p.gotB) != 0 {
		t.Fatalf("peer received %d updates", len(p.gotB))
	}
}

func TestStatelessSendsSpuriousWithdrawals(t *testing.T) {
	ca := StatelessVendorConfig(690, 1)
	p := newPair(t, ca, cfg(701, 2))
	// The route was never announced on this session, yet a stateless router
	// withdraws it to every peer — the WWDup generator.
	p.a.Withdraw(pfx("192.42.113.0/24"))
	p.sim.RunFor(31 * time.Second)
	if p.a.Stats().WdSent != 1 {
		t.Fatalf("wd sent %d", p.a.Stats().WdSent)
	}
	if len(p.gotB) != 1 || len(p.gotB[0].Withdrawn) != 1 {
		t.Fatalf("peer got %v", p.gotB)
	}
	// Repeating it keeps producing duplicates.
	p.a.Withdraw(pfx("192.42.113.0/24"))
	p.sim.RunFor(31 * time.Second)
	if p.a.Stats().WdSent != 2 {
		t.Fatalf("wd sent %d", p.a.Stats().WdSent)
	}
}

func TestStatefulSuppressesSpuriousWithdrawals(t *testing.T) {
	ca := StatefulVendorConfig(690, 1)
	p := newPair(t, ca, cfg(701, 2))
	p.a.Withdraw(pfx("192.42.113.0/24"))
	p.sim.RunFor(31 * time.Second)
	if p.a.Stats().WdSent != 0 {
		t.Fatalf("stateful peer sent %d spurious withdrawals", p.a.Stats().WdSent)
	}
}

func TestOscillationProducesDuplicateAnnouncement(t *testing.T) {
	// A1, A2, A1 within one interval: a naive (non-comparing) sender flushes
	// a duplicate of the pre-interval state — the AADup generator.
	p := newPair(t, cfg(690, 1), cfg(701, 2))
	a1 := attrs(1, 690, 237)
	a2 := attrs(1, 690, 1239, 237)
	p.a.Announce(pfx("35.0.0.0/8"), a1)
	p.sim.RunFor(31 * time.Second)
	if len(p.gotB) != 1 {
		t.Fatalf("setup: %d updates", len(p.gotB))
	}
	p.a.Announce(pfx("35.0.0.0/8"), a2)
	p.a.Announce(pfx("35.0.0.0/8"), a1)
	p.sim.RunFor(31 * time.Second)
	if len(p.gotB) != 2 {
		t.Fatalf("naive sender should emit the duplicate, got %d updates", len(p.gotB))
	}
	if !p.gotB[1].Attrs.PolicyEqual(p.gotB[0].Attrs) {
		t.Fatal("flushed update should duplicate the original")
	}
}

func TestCompareLastSentSuppressesDuplicate(t *testing.T) {
	ca := cfg(690, 1)
	ca.CompareLastSent = true
	p := newPair(t, ca, cfg(701, 2))
	a1 := attrs(1, 690, 237)
	a2 := attrs(1, 690, 1239, 237)
	p.a.Announce(pfx("35.0.0.0/8"), a1)
	p.sim.RunFor(31 * time.Second)
	p.a.Announce(pfx("35.0.0.0/8"), a2)
	p.a.Announce(pfx("35.0.0.0/8"), a1)
	p.sim.RunFor(31 * time.Second)
	if len(p.gotB) != 1 {
		t.Fatalf("comparing sender should suppress the duplicate, got %d", len(p.gotB))
	}
}

func TestUnjitteredFlushPeriodIsExact(t *testing.T) {
	p := newPair(t, cfg(690, 1), cfg(701, 2))
	established := p.sim.Now()
	var arrivals []time.Time
	feed := p.sim.Every(7*time.Second, func() {
		p.a.Announce(pfx("35.0.0.0/8"), attrs(uint32(len(arrivals)+2), 690, 237))
	})
	defer feed.Stop()
	prev := len(p.gotB)
	for p.sim.Now().Before(established.Add(10 * time.Minute)) {
		p.sim.RunFor(time.Second)
		if len(p.gotB) > prev {
			arrivals = append(arrivals, p.sim.Now())
			prev = len(p.gotB)
		}
	}
	if len(arrivals) < 5 {
		t.Fatalf("only %d flushes", len(arrivals))
	}
	for i := 1; i < len(arrivals); i++ {
		gap := arrivals[i].Sub(arrivals[i-1])
		if gap%(30*time.Second) != 0 {
			t.Fatalf("inter-flush gap %v not a multiple of 30s", gap)
		}
	}
}

func TestLinkDownDropsAndReconnects(t *testing.T) {
	sim := events.New(3)
	pipe := NewPipe(sim, 5*time.Millisecond)
	pipe.Verify = true
	reconnects := 0
	var a, b *Peer
	a = New(cfg(690, 1), SimClock(sim, "a"), Callbacks{
		Send: pipe.SendA,
		Connect: func() {
			reconnects++
			if reconnects > 1 {
				// Environment restores the link on reconnect attempt.
				sim.Schedule(time.Second, pipe.Up)
			}
		},
	})
	b = New(cfg(701, 2), SimClock(sim, "b"), Callbacks{Send: pipe.SendB})
	pipe.Bind(a, b)
	if !Establish(sim, pipe, a, b, time.Minute) {
		t.Fatal("no establishment")
	}
	pipe.Down()
	if a.State() != Idle || b.State() != Idle {
		t.Fatalf("states after down: %v %v", a.State(), b.State())
	}
	// ConnectRetry (120 s) later both sides retry and re-establish.
	sim.RunFor(5 * time.Minute)
	if a.State() != Established || b.State() != Established {
		t.Fatalf("states after retry: %v %v", a.State(), b.State())
	}
	if reconnects < 2 {
		t.Fatalf("reconnects %d", reconnects)
	}
}

func TestAdjRIBOutClearedOnDrop(t *testing.T) {
	p := newPair(t, cfg(690, 1), cfg(701, 2))
	p.a.Announce(pfx("35.0.0.0/8"), attrs(1, 690, 237))
	p.sim.RunFor(31 * time.Second)
	if !p.a.Advertised(pfx("35.0.0.0/8")) {
		t.Fatal("not advertised")
	}
	p.pipe.Down()
	if p.a.Advertised(pfx("35.0.0.0/8")) {
		t.Fatal("adj-rib-out should be cleared on session loss")
	}
	if p.a.PendingChanges() != 0 {
		t.Fatal("pending changes should be cleared on session loss")
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	sim := events.New(4)
	pipe := NewPipe(sim, time.Millisecond)
	var downA error
	a := New(cfg(690, 1), SimClock(sim, "a"), Callbacks{
		Send: pipe.SendA,
		Down: func(err error) { downA = err },
	})
	b := New(cfg(701, 2), SimClock(sim, "b"), Callbacks{Send: pipe.SendB})
	pipe.Bind(a, b)
	a.Start()
	pipe.up = true
	a.TransportUp()
	// Inject a bad OPEN directly, without running the simulator, so peer B's
	// own FSM cannot interfere.
	a.Deliver(bgp.Open{Version: 3, AS: 701, HoldTime: 180, BGPID: 2})
	if a.State() != Idle {
		t.Fatalf("state %v after bad version", a.State())
	}
	if downA == nil {
		t.Fatal("down callback not fired")
	}
	n, ok := downA.(bgp.Notification)
	if !ok || n.Code != bgp.NotifOpenMessageError {
		t.Fatalf("down error %v", downA)
	}
}

func TestUpdateInWrongStateDropsSession(t *testing.T) {
	sim := events.New(5)
	pipe := NewPipe(sim, time.Millisecond)
	a := New(cfg(690, 1), SimClock(sim, "a"), Callbacks{Send: pipe.SendA})
	b := New(cfg(701, 2), SimClock(sim, "b"), Callbacks{Send: pipe.SendB})
	pipe.Bind(a, b)
	a.Start()
	pipe.up = true
	a.TransportUp()
	a.Deliver(bgp.Update{})
	if a.State() != Idle {
		t.Fatalf("state %v", a.State())
	}
}

func TestLargeFlushChunksMessages(t *testing.T) {
	p := newPair(t, cfg(690, 1), cfg(701, 2))
	shared := attrs(1, 690, 237)
	for i := 0; i < 2000; i++ {
		p.a.Announce(netaddr.MustPrefix(netaddr.Addr(uint32(0x0a000000+i*256)), 24), shared)
	}
	p.sim.RunFor(31 * time.Second)
	if len(p.gotB) < 3 {
		t.Fatalf("expected chunked updates, got %d", len(p.gotB))
	}
	total := 0
	for _, u := range p.gotB {
		total += len(u.Announced)
	}
	if total != 2000 {
		t.Fatalf("delivered %d NLRI", total)
	}
}

func TestRunnerOverNetPipe(t *testing.T) {
	c1, c2 := net.Pipe()
	var gotUpdates []bgp.Update
	estA := make(chan struct{}, 1)
	estB := make(chan struct{}, 1)

	ra := NewRunner(Config{LocalAS: 690, LocalID: 1, MRAI: 0}, c1, Callbacks{
		Established: func() { estA <- struct{}{} },
	})
	rb := NewRunner(Config{LocalAS: 701, LocalID: 2, MRAI: 0}, c2, Callbacks{
		Established: func() { estB <- struct{}{} },
		Update:      func(u bgp.Update) { gotUpdates = append(gotUpdates, u) },
	})

	doneA := make(chan error, 1)
	doneB := make(chan error, 1)
	go func() { doneA <- ra.Run() }()
	go func() { doneB <- rb.Run() }()

	waitOrFail := func(ch chan struct{}, what string) {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout waiting for %s", what)
		}
	}
	waitOrFail(estA, "A established")
	waitOrFail(estB, "B established")

	ra.Do(func(p *Peer) {
		p.Announce(pfx("35.0.0.0/8"), attrs(1, 690, 237))
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		var n int
		rb.Do(func(p *Peer) { n = p.Stats().UpdatesReceived })
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("update never arrived over net.Pipe")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ra.Close()
	<-doneA
	select {
	case <-doneB:
	case <-time.After(5 * time.Second):
		t.Fatal("B runner did not exit after remote close")
	}
	rb.Do(func(p *Peer) {
		if len(gotUpdates) == 0 {
			t.Error("no updates recorded")
		}
	})
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		Idle: "Idle", Connect: "Connect", Active: "Active",
		OpenSent: "OpenSent", OpenConfirm: "OpenConfirm", Established: "Established",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d -> %q", int(s), s.String())
		}
	}
	if State(42).String() == "" {
		t.Error("unknown state should still print")
	}
}

func TestJitteredFlushPeriodVaries(t *testing.T) {
	ca := cfg(690, 1)
	ca.MRAIJitter = 0.25
	p := newPair(t, ca, cfg(701, 2))
	var arrivals []time.Time
	i := 0
	feed := p.sim.Every(7*time.Second, func() {
		i++
		p.a.Announce(pfx("35.0.0.0/8"), attrs(uint32(i+2), 690, 237))
	})
	defer feed.Stop()
	prev := len(p.gotB)
	start := p.sim.Now()
	for p.sim.Now().Before(start.Add(20 * time.Minute)) {
		p.sim.RunFor(time.Second)
		if len(p.gotB) > prev {
			arrivals = append(arrivals, p.sim.Now())
			prev = len(p.gotB)
		}
	}
	if len(arrivals) < 10 {
		t.Fatalf("only %d flushes", len(arrivals))
	}
	offGrid := 0
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i].Sub(arrivals[i-1])%(30*time.Second) != 0 {
			offGrid++
		}
	}
	if offGrid == 0 {
		t.Fatal("jittered timer produced perfectly gridded flushes")
	}
}

func TestPassiveSideEstablishes(t *testing.T) {
	sim := events.New(8)
	pipe := NewPipe(sim, 5*time.Millisecond)
	cb := cfg(701, 2)
	cb.Passive = true
	a := New(cfg(690, 1), SimClock(sim, "a"), Callbacks{Send: pipe.SendA})
	b := New(cb, SimClock(sim, "b"), Callbacks{Send: pipe.SendB})
	pipe.Bind(a, b)
	a.Start()
	b.Start()
	if b.State() != Active {
		t.Fatalf("passive side state %v, want Active", b.State())
	}
	pipe.Up()
	// Only the active side announces the transport; the passive side reacts
	// to the incoming OPEN.
	sim.RunFor(time.Second)
	if a.State() != Established || b.State() != Established {
		t.Fatalf("states %v / %v", a.State(), b.State())
	}
}

func TestPeerIdentityLearnedFromOpen(t *testing.T) {
	p := newPair(t, cfg(690, 1), cfg(701, 2))
	if p.a.PeerAS() != 701 || p.a.PeerID() != 2 {
		t.Fatalf("A learned peer %v/%v", p.a.PeerAS(), p.a.PeerID())
	}
	if p.b.PeerAS() != 690 || p.b.PeerID() != 1 {
		t.Fatalf("B learned peer %v/%v", p.b.PeerAS(), p.b.PeerID())
	}
}

func TestNotificationDropsSession(t *testing.T) {
	p := newPair(t, cfg(690, 1), cfg(701, 2))
	p.a.Deliver(bgp.Notification{Code: bgp.NotifCease})
	if p.a.State() != Idle {
		t.Fatalf("state %v after notification", p.a.State())
	}
	if len(p.downA) != 1 {
		t.Fatalf("downs %d", len(p.downA))
	}
}
