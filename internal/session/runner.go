package session

import (
	"math/rand"
	"net"
	"sync"
	"time"

	"instability/internal/bgp"
	"instability/internal/obs"
)

// Live-session instrumentation, shared by every Runner in the process.
var (
	obsMessages = obs.Default().Counter("irtl_session_messages_total",
		"BGP messages received and decoded by live session runners.")
	obsDecodeSeconds = obs.Default().Histogram("irtl_session_decode_seconds",
		"Time to decode one received BGP message (excludes socket wait).", nil)
	obsDecodeErrors = obs.Default().Counter("irtl_session_decode_errors_total",
		"Received BGP messages that failed to decode.")
	obsQueueDrops = obs.Default().Counter("irtl_session_queue_drops_total",
		"Sessions torn down because the outbound queue overflowed.")
)

// Runner drives a Peer over a real net.Conn: it serializes FSM input from
// the reader goroutine and wall-clock timers behind one mutex, and ships
// outbound messages through a writer goroutine so the FSM never blocks on a
// slow connection. This is the engine behind the bgpcollect route-server
// collector.
type Runner struct {
	mu     sync.Mutex
	peer   *Peer
	conn   net.Conn
	out    chan bgp.Message
	closed bool
	done   chan struct{}
}

// NewRunner wraps conn in a session endpoint. The caller's callbacks are
// invoked with the Runner's lock held; they must not call back into the
// Runner synchronously. Send, Connect and CloseTransport are supplied by the
// Runner itself and must be left nil in cb.
func NewRunner(cfg Config, conn net.Conn, cb Callbacks) *Runner {
	r := &Runner{
		conn: conn,
		out:  make(chan bgp.Message, 4096),
		done: make(chan struct{}),
	}
	rng := rand.New(rand.NewSource(rand.Int63()))
	clock := RealClock(&r.mu, rng.Float64)
	cb.Send = r.enqueue
	cb.Connect = func() {} // the connection already exists
	cb.CloseTransport = r.closeConn
	r.peer = New(cfg, clock, cb)
	return r
}

// Peer exposes the underlying session for inspection. Use Do to touch it
// safely.
func (r *Runner) Peer() *Peer { return r.peer }

// Do runs fn with the Runner's lock held, for safe access to the Peer from
// outside the reader goroutine (e.g. to call Announce/Withdraw/Flush).
func (r *Runner) Do(fn func(p *Peer)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(r.peer)
}

// enqueue hands a message to the writer goroutine. Called with r.mu held. A
// full queue means the peer cannot drain our updates; the session is torn
// down rather than blocked.
func (r *Runner) enqueue(msg bgp.Message) {
	if r.closed {
		return
	}
	select {
	case r.out <- msg:
	default:
		obsQueueDrops.Inc()
		r.closeConn()
	}
}

func (r *Runner) closeConn() {
	if !r.closed {
		r.closed = true
		r.conn.Close()
	}
}

func (r *Runner) writer() {
	for {
		select {
		case msg := <-r.out:
			if err := bgp.WriteMessage(r.conn, msg); err != nil {
				r.conn.Close()
				return
			}
		case <-r.done:
			return
		}
	}
}

// Run starts the session over the existing connection and blocks reading
// messages until the connection fails or Close is called. It returns the
// terminal read error (io.EOF for an orderly remote close).
func (r *Runner) Run() error {
	go r.writer()
	r.mu.Lock()
	r.peer.Start()
	r.peer.TransportUp()
	r.mu.Unlock()

	var err error
	for {
		var raw []byte
		raw, err = bgp.ReadRaw(r.conn)
		if err != nil {
			break
		}
		t0 := time.Now()
		var msg bgp.Message
		msg, err = bgp.Unmarshal(raw)
		if err != nil {
			obsDecodeErrors.Inc()
			break
		}
		obsDecodeSeconds.ObserveSince(t0)
		obsMessages.Inc()
		r.mu.Lock()
		r.peer.Deliver(msg)
		closed := r.closed
		r.mu.Unlock()
		if closed {
			break
		}
	}
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		r.conn.Close()
	}
	// Suppress the automatic reconnect: the conn is gone for good.
	r.peer.generation++
	r.peer.state = Idle
	r.mu.Unlock()
	close(r.done)
	return err
}

// Close tears the session down and unblocks Run. It must only be called
// after Run has been started.
func (r *Runner) Close() {
	r.mu.Lock()
	r.closeConn()
	r.mu.Unlock()
	<-r.done
}
