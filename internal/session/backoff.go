package session

import (
	"math/rand"
	"time"

	"instability/internal/obs"
)

// Reconnect instrumentation, shared by every dial loop in the process. The
// histogram records the delays actually slept, so a collector stuck in a
// redial storm is visible as mass accumulating at the backoff cap.
var (
	obsRedials = obs.Default().Counter("irtl_session_redials_total",
		"Transport dial attempts made by reconnect loops.")
	obsBackoffSeconds = obs.Default().Histogram("irtl_session_backoff_seconds",
		"Delay chosen before each redial attempt.",
		[]float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120})
)

// Backoff computes jittered exponential retry delays for transport dials.
// The zero value is usable and defaults to 500ms growing 2x per attempt up
// to 1 minute, with ±20% jitter. It is the collector-side answer to the
// paper's observation that synchronized retry timers turn one outage into a
// self-reinforcing storm: jitter decorrelates the herd, the cap bounds the
// recovery delay once the peer returns, and Reset restores fast retries
// after a success.
//
// Backoff is not safe for concurrent use; give each dial loop its own.
type Backoff struct {
	Base   time.Duration // first delay; default 500ms
	Max    time.Duration // delay cap, applied before jitter; default 1m
	Factor float64       // per-attempt growth; default 2
	Jitter float64       // ± fraction of the capped delay; default 0.2
	// Rand supplies uniform [0,1) variates for jitter. Nil means the global
	// math/rand source; tests seed it for reproducible schedules.
	Rand func() float64

	attempts int
}

// Next returns the delay to sleep before the next dial attempt and advances
// the schedule. The result is always within ±Jitter of min(Max, Base·Factorⁿ).
func (b *Backoff) Next() time.Duration {
	base := b.Base
	if base <= 0 {
		base = 500 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = time.Minute
	}
	factor := b.Factor
	if factor <= 1 {
		factor = 2
	}
	jitter := b.Jitter
	if jitter == 0 {
		jitter = 0.2
	}
	rnd := b.Rand
	if rnd == nil {
		rnd = rand.Float64
	}

	d := float64(base)
	for i := 0; i < b.attempts && d < float64(max); i++ {
		d *= factor
	}
	if d > float64(max) {
		d = float64(max)
	}
	b.attempts++
	d *= 1 + jitter*(2*rnd()-1)
	delay := time.Duration(d)
	obsRedials.Inc()
	obsBackoffSeconds.Observe(delay.Seconds())
	return delay
}

// Reset restores the schedule to its first step. Call it after a successful
// session establishment so the next failure retries quickly.
func (b *Backoff) Reset() { b.attempts = 0 }

// Attempts reports how many delays have been handed out since the last Reset.
func (b *Backoff) Attempts() int { return b.attempts }
